// Umbrella header: the full public API of the B-CSF / HB-CSF MTTKRP
// library (reproduction of Nisa et al., "Load-Balanced Sparse MTTKRP on
// GPUs", IPDPS 2019).
//
// Typical use:
//   #include "bcsf/bcsf.hpp"
//   bcsf::SparseTensor x = bcsf::read_tns_file("data.tns");
//   auto factors = bcsf::make_random_factors(x.dims(), 32, 42);
//   auto hb = bcsf::build_hbcsf(x, /*mode=*/0);
//   auto res = bcsf::mttkrp_hbcsf_gpu(hb, factors, bcsf::DeviceModel::p100());
//   // res.output is the MTTKRP result, res.report the simulated metrics.
#pragma once

#include "core/auto_policy.hpp"
#include "core/factors.hpp"
#include "core/format_registry.hpp"
#include "core/sharded_plan.hpp"
#include "core/tensor_op.hpp"
#include "core/tensor_op_plan.hpp"
#include "cpd/cpd_als.hpp"
#include "formats/bcsf.hpp"
#include "formats/csf.hpp"
#include "formats/csl.hpp"
#include "formats/fcoo.hpp"
#include "formats/hbcsf.hpp"
#include "formats/hicoo.hpp"
#include "formats/storage.hpp"
#include "gpusim/cache.hpp"
#include "gpusim/device.hpp"
#include "gpusim/metrics.hpp"
#include "gpusim/scheduler.hpp"
#include "kernels/cpu_model.hpp"
#include "kernels/mttkrp.hpp"
#include "kernels/splatt.hpp"
#include "kernels/ttv_fit.hpp"
#include "linalg/dense_matrix.hpp"
#include "linalg/ops.hpp"
#include "linalg/spd_solve.hpp"
#include "serve/concurrent_plan_cache.hpp"
#include "serve/tensor_op_service.hpp"
#include "tensor/datasets.hpp"
#include "tensor/dynamic_tensor.hpp"
#include "tensor/frostt_io.hpp"
#include "tensor/partitioner.hpp"
#include "tensor/generator.hpp"
#include "tensor/sparse_tensor.hpp"
#include "tensor/tensor_stats.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "util/types.hpp"
