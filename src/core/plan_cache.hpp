// Memoized plan construction keyed by (format, mode): the ALLMODE
// strategy (§VI-A) as a reusable component.  CPD-ALS touches every mode
// each iteration over the same tensor, so the first iteration populates
// the cache and later ones run for free; mixing formats (e.g. comparing
// backends on one tensor) shares nothing but also rebuilds nothing.
#pragma once

#include <map>
#include <string>
#include <utility>

#include "core/format_registry.hpp"
#include "core/mttkrp_plan.hpp"
#include "tensor/sparse_tensor.hpp"
#include "util/types.hpp"

namespace bcsf {

class PlanCache {
 public:
  /// The cache holds a reference to `tensor`; it must outlive the cache.
  explicit PlanCache(const SparseTensor& tensor, PlanOptions opts = {})
      : tensor_(&tensor), opts_(std::move(opts)) {}

  /// Returns the plan for (format, mode), building it on first use.
  const MttkrpPlan& get(const std::string& format, index_t mode);

  /// Sum of build_seconds() over every plan constructed so far (the
  /// paper's all-mode pre-processing cost).
  double total_build_seconds() const;

  std::size_t size() const { return plans_.size(); }

 private:
  const SparseTensor* tensor_;
  PlanOptions opts_;
  std::map<std::pair<std::string, index_t>, PlanPtr> plans_;
};

}  // namespace bcsf
