// The plan layer: one uniform contract over every MTTKRP format/kernel
// pair in the library (see DESIGN.md §2).
//
// A plan is built ONCE from a (tensor, mode) pair -- paying the format
// construction cost the paper calls pre-processing (Figs. 9/10) -- and
// then RUN many times against evolving factor matrices, which is exactly
// the CPD-ALS access pattern (Alg. 1 performs order x iterations MTTKRP
// calls over the same structure).  The plan exposes what every consumer
// layer needs to reason about that trade:
//   * build_seconds()  -- the amortizable pre-processing cost
//   * storage_bytes()  -- index storage (§III accounting, Fig. 16)
//   * run()            -- output matrix + SimReport (simulated GPU
//                         kernels) or wall-clock report (CPU kernels)
//
// Lifecycle and thread-safety contract (what serve/ relies on):
//
//   * A plan is IMMUTABLE after construction.  run() never mutates plan
//     state, so any number of threads may call run() on one plan
//     concurrently; outputs are bitwise reproducible for given factors.
//   * Structured plans own their representation.  COO-family plans
//     ("coo", "cpu-coo", "reference") REFERENCE the source tensor --
//     their format IS the tensor -- so the tensor must outlive the
//     plan.  ConcurrentPlanCache (DESIGN.md §5) closes that hazard
//     structurally by pinning the tensor shared_ptr into every plan
//     deleter it hands out; code building plans directly through the
//     registry owns the lifetime problem itself.
//   * A plan is bound to one frozen tensor snapshot forever.  Growing
//     tensors are served as snapshot + delta (DESIGN.md §6): the plan
//     answers for its snapshot and the delta is swept separately --
//     plans never see in-place updates.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "formats/bcsf.hpp"
#include "formats/fcoo.hpp"
#include "gpusim/device.hpp"
#include "gpusim/metrics.hpp"
#include "linalg/dense_matrix.hpp"
#include "tensor/sparse_tensor.hpp"
#include "util/types.hpp"

namespace bcsf {

/// Everything a plan factory may need beyond (tensor, mode).  One struct
/// so adding a knob for a new format does not ripple through signatures.
struct PlanOptions {
  DeviceModel device = DeviceModel::p100();
  BcsfOptions bcsf;
  FcooOptions fcoo;
  /// Expected number of MTTKRP calls the plan will serve; drives the
  /// `auto` policy's Fig-10 break-even decision (CPD-ALS: iterations x
  /// order).
  double expected_mttkrp_calls = 50.0;
};

struct PlanRunResult {
  DenseMatrix output;
  /// Simulated metrics for GPU plans; for CPU plans, `kernel` and
  /// `seconds` (wall clock) plus derived gflops are filled in.
  SimReport report;
};

class MttkrpPlan {
 public:
  virtual ~MttkrpPlan() = default;

  /// The registry key this plan was created under (e.g. "hbcsf").
  const std::string& format() const { return format_; }
  /// The format actually executing; differs from format() only for meta
  /// plans ("auto" reports its delegate's key).
  virtual const std::string& resolved_format() const { return format_; }
  /// Human-facing name matching the paper's figures (e.g. "HB-CSF").
  const std::string& display_name() const { return display_name_; }
  index_t mode() const { return mode_; }

  /// Format construction wall time, measured by the registry around the
  /// factory call (the paper's pre-processing cost).
  double build_seconds() const { return build_seconds_; }

  /// Index storage of this plan's representation (§III accounting).
  virtual std::size_t storage_bytes() const = 0;

  /// True when run() reports simulated-GPU metrics (SimReport semantics);
  /// false for real CPU kernels timed with wall clocks.
  virtual bool is_gpu() const = 0;

  /// Format-specific one-liner (e.g. HB-CSF's coo/csl/csf nnz split, the
  /// auto policy's rationale).  Empty when there is nothing to add.
  virtual std::string detail() const { return {}; }

  /// Executes MTTKRP against the given factors.  Callable any number of
  /// times; the plan is immutable after construction.
  virtual PlanRunResult run(const std::vector<DenseMatrix>& factors) const = 0;

 protected:
  MttkrpPlan(std::string format, std::string display_name, index_t mode)
      : format_(std::move(format)),
        display_name_(std::move(display_name)),
        mode_(mode) {}

 private:
  friend class FormatRegistry;  // stamps build_seconds_ after the factory

  std::string format_;
  std::string display_name_;
  index_t mode_ = 0;
  double build_seconds_ = 0.0;
};

using PlanPtr = std::unique_ptr<MttkrpPlan>;

}  // namespace bcsf
