// Op-protocol plumbing: name mapping and the generic execute() path that
// serves every op through a format's MTTKRP traversal (DESIGN.md §7).
#include "core/tensor_op.hpp"

#include <utility>

#include "core/tensor_op_plan.hpp"
#include "util/error.hpp"

namespace bcsf {

const char* op_name(OpKind op) {
  switch (op) {
    case OpKind::kMttkrp: return "mttkrp";
    case OpKind::kTtv: return "ttv";
    case OpKind::kFit: return "fit";
    case OpKind::kStats: return "stats";
  }
  return "?";
}

OpKind op_from_name(const std::string& name) {
  for (OpKind op : kAllOps) {
    if (name == op_name(op)) return op;
  }
  if (name == op_name(OpKind::kStats)) return OpKind::kStats;
  BCSF_CHECK(false,
             "unknown op '" << name << "' (valid: mttkrp, ttv, fit, stats)");
  return OpKind::kMttkrp;  // unreachable
}

void TensorOpPlan::check_request(const OpRequest& request) const {
  BCSF_CHECK(request.factors != nullptr,
             "execute(" << op_name(request.kind) << "): null factors");
  BCSF_CHECK(request.mode == mode_,
             "execute(" << op_name(request.kind) << "): request mode "
                        << request.mode << " but this plan was built for mode "
                        << mode_);
  if (request.kind == OpKind::kFit && request.lambda != nullptr &&
      !request.factors->empty()) {
    BCSF_CHECK(request.lambda->size() ==
                   static_cast<std::size_t>(request.factors->front().cols()),
               "execute(fit): lambda has " << request.lambda->size()
                                           << " entries, rank is "
                                           << request.factors->front().cols());
  }
}

OpResult TensorOpPlan::execute(const OpRequest& request) const {
  check_request(request);
  const std::vector<DenseMatrix>& factors = *request.factors;
  OpResult result;
  switch (request.kind) {
    case OpKind::kMttkrp: {
      PlanRunResult r = run(factors);
      result.output = std::move(r.output);
      result.report = std::move(r.report);
      return result;
    }
    case OpKind::kTtv: {
      // Rank-1 inputs make the format's MTTKRP schedule compute exactly
      // the multi-TTV: same traversal, same balance, R collapsed to 1.
      // (Row counts are checked against the tensor dims by the kernel's
      // own check_factors; only the rank-1 shape is TTV-specific.)
      for (std::size_t m = 0; m < factors.size(); ++m) {
        BCSF_CHECK(factors[m].cols() == 1,
                   "execute(ttv): mode " << m << " input has "
                                         << factors[m].cols()
                                         << " columns, expected dims[m] x 1");
      }
      PlanRunResult r = run(factors);
      result.output = std::move(r.output);
      result.report = std::move(r.report);
      return result;
    }
    case OpKind::kFit: {
      // <X, Xhat> = <MTTKRP_mode(X), A_mode * diag(lambda)>: one
      // traversal through the plan, then an O(dims[mode] x R) dense
      // contraction in double.
      PlanRunResult r = run(factors);
      const DenseMatrix& m = r.output;
      const DenseMatrix& a = factors[mode_];
      const rank_t rank = m.cols();
      double inner = 0.0;
      for (index_t i = 0; i < m.rows(); ++i) {
        const auto mrow = m.row(i);
        const auto arow = a.row(i);
        for (rank_t c = 0; c < rank; ++c) {
          const double l =
              request.lambda ? static_cast<double>((*request.lambda)[c]) : 1.0;
          inner += l * static_cast<double>(mrow[c]) * arow[c];
        }
      }
      result.scalar = inner;
      result.report = std::move(r.report);
      return result;
    }
    case OpKind::kStats:
      BCSF_CHECK(false,
                 "execute(stats): kStats is answered from the serving "
                 "layer's sketches, never by a plan");
      return result;
  }
  BCSF_CHECK(false, "execute: unknown op kind");
  return result;  // unreachable
}

}  // namespace bcsf
