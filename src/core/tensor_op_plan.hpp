// The plan layer: one uniform contract over every format/kernel pair in
// the library (see DESIGN.md §2, §7).
//
// A plan is built ONCE from a (tensor, mode) pair -- paying the format
// construction cost the paper calls pre-processing (Figs. 9/10) -- and
// then EXECUTED many times against evolving inputs.  Since PR 4 the plan
// is op-generic: the same built structure serves MTTKRP, TTV and the CPD
// fit inner product through execute(), because all three ops walk the
// identical (slice, fiber, nonzero) traversal the format balances.  One
// build amortizes across every op on the tensor.  The plan exposes what
// every consumer layer needs to reason about that trade:
//   * build_seconds()  -- the amortizable pre-processing cost
//   * storage_bytes()  -- index storage (§III accounting, Fig. 16)
//   * execute()        -- any OpKind; run() is the MTTKRP fast path
//
// Lifecycle and thread-safety contract (what serve/ relies on):
//
//   * A plan is IMMUTABLE after construction.  run()/execute() never
//     mutate plan state, so any number of threads may execute on one plan
//     concurrently; outputs are bitwise reproducible for given inputs.
//   * Structured plans own their representation.  COO-family plans
//     ("coo", "cpu-coo", "reference") REFERENCE the source tensor --
//     their format IS the tensor -- so the tensor must outlive the
//     plan.  ConcurrentPlanCache (DESIGN.md §5) closes that hazard
//     structurally by pinning the tensor shared_ptr into every plan
//     deleter it hands out; code building plans directly through the
//     registry owns the lifetime problem itself.
//   * A plan is bound to one frozen tensor snapshot forever.  Growing
//     tensors are served as snapshot + delta (DESIGN.md §6): the plan
//     answers for its snapshot and the delta is swept separately --
//     plans never see in-place updates.  Every op is linear in the
//     tensor values, so the split is exact for all of them.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/tensor_op.hpp"
#include "formats/bcsf.hpp"
#include "formats/fcoo.hpp"
#include "gpusim/device.hpp"
#include "gpusim/metrics.hpp"
#include "linalg/dense_matrix.hpp"
#include "tensor/sparse_tensor.hpp"
#include "util/types.hpp"

namespace bcsf {

class ThreadPool;  // util/thread_pool.hpp; forward-declared to keep the
                   // plan header free of threading machinery

/// Knobs for the "sharded" meta format (core/sharded_plan.hpp,
/// DESIGN.md §8): how many nnz-balanced shards to cut the tensor into
/// and what to build per shard.
struct ShardingOptions {
  /// Number of shards; 1 = monolithic (a pass-through around one inner
  /// plan), 0 = let auto_shard_count price K from nnz and device
  /// saturation.  Always clamped so every shard is non-empty.
  unsigned shards = 1;
  /// Registry key built per shard.  "auto" re-runs the §V policy on each
  /// shard's own slice population, so dense shards go structured while
  /// sparse tails stay COO.  Must not itself be "sharded".
  std::string shard_format = "auto";
  /// Optional worker pool for PARALLEL shard builds and executions.  The
  /// calling thread always participates (util/thread_pool.hpp run_tasks),
  /// so passing a pool the caller is itself running on cannot deadlock.
  /// Null = sequential.  Non-owning; the pool must outlive the plan.
  ThreadPool* pool = nullptr;
};

/// Everything a plan factory may need beyond (tensor, mode).  One struct
/// so adding a knob for a new format does not ripple through signatures.
struct PlanOptions {
  DeviceModel device = DeviceModel::p100();
  BcsfOptions bcsf;
  FcooOptions fcoo;
  /// Consumed by the "sharded" meta format only (other formats ignore it).
  ShardingOptions sharding;
  /// Expected number of plan executions; drives the `auto` policy's
  /// Fig-10 break-even decision (CPD-ALS: iterations per mode).
  double expected_mttkrp_calls = 50.0;
  /// Workload hint for meta plans: "auto" resolves its delegate for THIS
  /// op (TTV's rank-1 arithmetic amortizes a build much more slowly than
  /// full-rank MTTKRP/FIT traffic).  Concrete formats ignore it -- their
  /// built structure serves every op.
  OpKind op = OpKind::kMttkrp;
};

struct PlanRunResult {
  DenseMatrix output;
  /// Simulated metrics for GPU plans; for CPU plans, `kernel` and
  /// `seconds` (wall clock) plus derived gflops are filled in.
  SimReport report;
};

class TensorOpPlan {
 public:
  virtual ~TensorOpPlan() = default;

  /// The registry key this plan was created under (e.g. "hbcsf").
  const std::string& format() const { return format_; }
  /// The format actually executing; differs from format() only for meta
  /// plans ("auto" reports its delegate's key).
  virtual const std::string& resolved_format() const { return format_; }
  /// Human-facing name matching the paper's figures (e.g. "HB-CSF").
  const std::string& display_name() const { return display_name_; }
  index_t mode() const { return mode_; }

  /// Format construction wall time, measured by the registry around the
  /// factory call (the paper's pre-processing cost).
  double build_seconds() const { return build_seconds_; }

  /// Index storage of this plan's representation (§III accounting).
  virtual std::size_t storage_bytes() const = 0;

  /// True when run() reports simulated-GPU metrics (SimReport semantics);
  /// false for real CPU kernels timed with wall clocks.
  virtual bool is_gpu() const = 0;

  /// Format-specific one-liner (e.g. HB-CSF's coo/csl/csf nnz split, the
  /// auto policy's rationale).  Empty when there is nothing to add.
  virtual std::string detail() const { return {}; }

  /// Executes MTTKRP against the given factors -- the format's native
  /// traversal, and the engine behind every other op.  Callable any
  /// number of times; the plan is immutable after construction.
  virtual PlanRunResult run(const std::vector<DenseMatrix>& factors) const = 0;

  /// Executes any op (DESIGN.md §7).  `request.mode` must equal mode():
  /// a plan's representation is built for one traversal root.  The base
  /// implementation reuses the format's run() traversal -- TTV executes
  /// it at rank 1, FIT contracts its output with factors[mode] and
  /// lambda in double precision -- so every format supports every op
  /// with zero per-format kernel code.  Overrides may fuse (the COO
  /// family substitutes the dedicated kernels in kernels/ttv_fit.hpp).
  virtual OpResult execute(const OpRequest& request) const;

 protected:
  TensorOpPlan(std::string format, std::string display_name, index_t mode)
      : format_(std::move(format)),
        display_name_(std::move(display_name)),
        mode_(mode) {}

  /// Shared input validation + mode check for execute() overrides.
  void check_request(const OpRequest& request) const;

 private:
  friend class FormatRegistry;  // stamps build_seconds_ after the factory

  std::string format_;
  std::string display_name_;
  index_t mode_ = 0;
  double build_seconds_ = 0.0;
};

/// Back-compat alias from the MTTKRP-only era; new code should say
/// TensorOpPlan.
using MttkrpPlan = TensorOpPlan;

using PlanPtr = std::unique_ptr<TensorOpPlan>;

}  // namespace bcsf
