// ShardedPlan: one tensor served as K nnz-balanced shard plans
// (DESIGN.md §8).
//
// The registry's "sharded" meta format cuts the tensor along the plan's
// mode with tensor/partitioner.hpp, builds one inner plan per shard --
// IN PARALLEL when ShardingOptions::pool is set, with the calling thread
// participating so nested use from a pool task cannot deadlock -- and
// executes every op of the protocol as per-shard runs reduced into one
// result.  All three ops are linear in the tensor values and the shards
// partition the nonzeros, so
//
//     op(tensor) = sum over shards of op(shard)
//
// is exact; matrix partials and FIT partial inner products are reduced
// in double with a single cast back to float.  When the REQUEST mode is
// the partition mode and no slice was split, the reduce disappears
// entirely: shard slice ranges are then disjoint output rows, so each
// shard writes its own [begin, end) row window of one shared output
// (the disjoint-output path; the merge path serves the other modes from
// pooled scratch buffers).  Because each shard runs
// the inner format's own factory, "auto" per shard mixes formats: dense
// shard cores go to B-CSF/HB-CSF while sparse tails stay COO.
//
// What shards buy (the paper's load-balance argument, one level up):
//   * build latency -- K builds of nnz/K each, run concurrently, beat one
//     monolithic nnz build (sort-dominated, superlinear);
//   * bounded maintenance units -- the serving layer upgrades and
//     compacts per shard (serve/, DESIGN.md §8), so a hot shard pays
//     O(shard nnz), never O(total nnz);
//   * intra-request parallelism -- one request fans K kernel runs across
//     the pool instead of serializing on one monolithic kernel.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/tensor_op_plan.hpp"
#include "tensor/partitioner.hpp"
#include "util/scratch_arena.hpp"

namespace bcsf {

/// Sums per-shard double partials (each row-major rows x rank) into one
/// float matrix with a SINGLE cast back -- the §8 cross-shard reduction
/// contract, shared by ShardedPlan and the sharded serving path so the
/// two can never drift.  Exact wherever the partials are (linearity).
/// Spans, not vectors: partials may live in pooled arena buffers.
DenseMatrix reduce_shard_partials(
    index_t rows, rank_t rank, std::span<const std::span<const double>> partials);

class ShardedPlan final : public TensorOpPlan {
 public:
  /// Partitions `tensor` along `mode` into opts.sharding.shards shards
  /// (0 = auto_shard_count pricing) and builds one
  /// opts.sharding.shard_format plan per shard, in parallel on
  /// opts.sharding.pool when set.  Throws bcsf::Error if the inner
  /// format is "sharded" (no recursive sharding) or unknown.
  ShardedPlan(const SparseTensor& tensor, index_t mode,
              const PlanOptions& opts);

  /// Builds on an existing partition (the serving layer / tests hold one
  /// partition across modes).  `partition` must be non-null.
  ShardedPlan(PartitionPtr partition, index_t mode, const PlanOptions& opts);

  bool is_gpu() const override;
  std::size_t storage_bytes() const override;  ///< sum over shards
  std::string detail() const override;

  PlanRunResult run(const std::vector<DenseMatrix>& factors) const override;
  OpResult execute(const OpRequest& request) const override;

  std::size_t shard_count() const { return plans_.size(); }
  const TensorPartition& partition() const { return *partition_; }
  /// True when a matrix op on `request_mode` takes the DISJOINT-OUTPUT
  /// path (§8): the request's output mode is the partition mode and no
  /// slice was split, so each shard owns a private row range of the
  /// output and writes it directly -- no partials, no K-way reduce.
  bool disjoint_output(index_t request_mode) const {
    return plans_.size() > 1 && disjoint_ && request_mode == partition_->mode;
  }
  /// Resolved inner format per shard ("auto" never leaks).
  std::vector<std::string> shard_formats() const;
  /// Sum of the inner plans' build_seconds -- the WORK a parallel build
  /// spreads across the pool; build_seconds() on this plan is the wall
  /// time the registry measured around the whole (parallel) construction.
  double shard_build_seconds() const;

 private:
  /// One shard's double-precision partial for a matrix-valued op.  The
  /// acc buffer is LEASED from arena_ per call and returned after the
  /// reduce -- steady-state execution allocates nothing.
  struct Partial {
    std::vector<double> acc;
    double scalar = 0.0;
    SimReport report;
  };

  void build_shards(const PlanOptions& opts);
  OpResult execute_disjoint(const OpRequest& request) const;
  OpResult execute_merge(const OpRequest& request) const;
  void finish_report(OpResult& result, double wall) const;

  PartitionPtr partition_;
  std::vector<std::shared_ptr<const TensorOpPlan>> plans_;  // one per shard
  ThreadPool* pool_ = nullptr;  // non-owning; null = sequential execution
  bool disjoint_ = false;       // no slice split: row ranges are private
  index_vec owned_rows_;        // K+1 ownership table (owned_row_begins)
  mutable ScratchArena arena_;  // thread-safe; execute() is const+concurrent
};

}  // namespace bcsf
