// The multi-op execution protocol (DESIGN.md §7): one request/result
// currency for every tensor operation a plan can serve.
//
// The paper's formats are traversal structures, not MTTKRP structures:
// the (slice, fiber, nonzero) walk that B-CSF/CSL/HB-CSF balance is the
// same walk TTV and the CPD fit inner product need.  Expressing the ops
// as one protocol lets a format's one-time build amortize across EVERY
// operation on the tensor instead of forcing an MTTKRP-only stack fork
// per workload.
//
// Ops:
//   kMttkrp  Y(i,:) += x(z) * Prod_{m != mode} A_m(i_m,:)   -- dims[mode] x R
//   kTtv     y(i)   += x(z) * Prod_{m != mode} v_m(i_m)     -- dims[mode] x 1
//            (multi-TTV: contract every mode except `mode` with a vector;
//            algebraically MTTKRP at rank 1, so it rides the exact same
//            kernel schedule)
//   kFit     s      += x(z) * Sum_r lambda_r Prod_m A_m(i_m,r)  -- scalar
//            (the residual inner product <X, Xhat> of the CPD fit; the
//            only fit piece that needs a tensor traversal -- ||Xhat||^2
//            is R x R dense work and ||X||^2 is a snapshot constant)
//
// All three ops are LINEAR in the tensor values, which is what lets the
// serving layer answer on a base plan and sweep delta chunks separately
// (DESIGN.md §6): base contribution + delta contribution is exactly the
// op on the merged tensor.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "linalg/dense_matrix.hpp"
#include "gpusim/metrics.hpp"
#include "util/types.hpp"

namespace bcsf {

/// kStats is the approximate-query op (DESIGN.md §12): it answers norm
/// and per-mode slice/fiber statistics from the serving layer's streaming
/// sketches with stated error bounds.  It never traverses nonzeros and
/// never reaches a TensorOpPlan, so it is deliberately NOT part of
/// kAllOps/kAllOpsMask -- those enumerate the plan-served traversal ops a
/// format must implement.
enum class OpKind { kMttkrp = 0, kTtv = 1, kFit = 2, kStats = 3 };

inline constexpr std::array<OpKind, 3> kAllOps = {
    OpKind::kMttkrp, OpKind::kTtv, OpKind::kFit};

/// Stable wire/CLI name: "mttkrp", "ttv", "fit", "stats".
const char* op_name(OpKind op);
/// Inverse of op_name; throws bcsf::Error listing the valid names.
OpKind op_from_name(const std::string& name);

/// Bitmask helpers for declaring per-format op support in the registry.
constexpr unsigned op_bit(OpKind op) {
  return 1u << static_cast<unsigned>(op);
}
inline constexpr unsigned kAllOpsMask =
    op_bit(OpKind::kMttkrp) | op_bit(OpKind::kTtv) | op_bit(OpKind::kFit);

/// One executable operation against a plan's tensor snapshot.  Inputs are
/// borrowed: the caller keeps `factors` (and `lambda`, when set) alive for
/// the duration of execute().
struct OpRequest {
  OpKind kind = OpKind::kMttkrp;
  /// kMttkrp/kTtv: the uncontracted (output) mode.  kFit: the traversal
  /// anchor -- the result is mode-independent, the mode only picks which
  /// of the plan's representations walks the nonzeros.
  index_t mode = 0;
  /// One matrix per tensor mode.  kMttkrp/kFit: dims[m] x R factor
  /// matrices.  kTtv: dims[m] x 1 vectors (entry `mode` present for
  /// uniform indexing but not read).
  const std::vector<DenseMatrix>* factors = nullptr;
  /// kFit only: R column weights (lambda of Eq. (1)); null = all ones.
  const std::vector<value_t>* lambda = nullptr;
};

struct OpResult {
  /// kMttkrp: dims[mode] x R.  kTtv: dims[mode] x 1.  kFit: empty (the
  /// result is `scalar`).
  DenseMatrix output;
  /// kFit: <X, Xhat> accumulated in double.  0 for matrix-valued ops.
  double scalar = 0.0;
  /// Simulated metrics (GPU plans) or wall-clock report (CPU plans) of
  /// the traversal that served the op.
  SimReport report;
};

}  // namespace bcsf
