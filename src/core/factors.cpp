#include "core/factors.hpp"

namespace bcsf {

std::vector<DenseMatrix> make_random_factors(const std::vector<index_t>& dims,
                                             rank_t rank, std::uint64_t seed,
                                             value_t lo, value_t hi) {
  std::vector<DenseMatrix> factors;
  factors.reserve(dims.size());
  for (std::size_t m = 0; m < dims.size(); ++m) {
    DenseMatrix f(dims[m], rank);
    f.randomize(seed + 31 * m, lo, hi);
    factors.push_back(std::move(f));
  }
  return factors;
}

}  // namespace bcsf
