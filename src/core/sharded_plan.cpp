#include "core/sharded_plan.hpp"

#include <functional>
#include <sstream>
#include <utility>

#include "core/auto_policy.hpp"
#include "core/format_registry.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace bcsf {

DenseMatrix reduce_shard_partials(
    index_t rows, rank_t rank,
    std::span<const std::span<const double>> partials) {
  std::vector<double> acc(static_cast<std::size_t>(rows) * rank, 0.0);
  for (const std::span<const double>& partial : partials) {
    BCSF_CHECK(partial.size() == acc.size(),
               "reduce_shard_partials: partial has " << partial.size()
                                                     << " entries, expected "
                                                     << acc.size());
    for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += partial[i];
  }
  DenseMatrix out(rows, rank);
  for (std::size_t i = 0; i < acc.size(); ++i) {
    out.data()[i] = static_cast<value_t>(acc[i]);
  }
  return out;
}

ShardedPlan::ShardedPlan(const SparseTensor& tensor, index_t mode,
                         const PlanOptions& opts)
    : TensorOpPlan("sharded", "Sharded", mode), pool_(opts.sharding.pool) {
  unsigned shards = opts.sharding.shards;
  if (shards == 0) {
    AutoPolicyOptions pricing;
    pricing.expected_mttkrp_calls = opts.expected_mttkrp_calls;
    shards = auto_shard_count(tensor.nnz(), tensor.dim(mode), pricing);
  }
  partition_ = share_partition(partition_tensor(tensor, mode, shards));
  build_shards(opts);
}

ShardedPlan::ShardedPlan(PartitionPtr partition, index_t mode,
                         const PlanOptions& opts)
    : TensorOpPlan("sharded", "Sharded", mode),
      partition_(std::move(partition)),
      pool_(opts.sharding.pool) {
  BCSF_CHECK(partition_ != nullptr, "ShardedPlan: null partition");
  build_shards(opts);
}

void ShardedPlan::build_shards(const PlanOptions& opts) {
  const std::string& inner = opts.sharding.shard_format;
  BCSF_CHECK(inner != "sharded",
             "ShardedPlan: shard_format must name a non-sharded format");
  BCSF_CHECK(mode() < partition_->dims.size(),
             "ShardedPlan: mode " << mode() << " out of range");

  // Inner plans must not shard again, and they amortize against the same
  // expected traffic as the whole plan (every call fans out to every
  // shard, so per-shard call counts equal the plan's).
  PlanOptions shard_opts = opts;
  shard_opts.sharding = ShardingOptions{};

  disjoint_ = partition_->disjoint_slice_ranges();
  if (disjoint_) owned_rows_ = partition_->owned_row_begins();

  const std::size_t k = partition_->size();
  plans_.resize(k);
  std::vector<std::function<void()>> builds;
  builds.reserve(k);
  for (std::size_t s = 0; s < k; ++s) {
    builds.push_back([this, s, &inner, &shard_opts] {
      const TensorShard& shard = partition_->shards[s];
      PlanPtr raw = FormatRegistry::instance().create(inner, *shard.tensor,
                                                      mode(), shard_opts);
      // Pin the shard tensor into the plan's deleter (the COO-family
      // lifetime rule, DESIGN.md §2): a retained shard plan keeps its
      // source sub-tensor alive even if the partition is dropped.
      TensorPtr pin = shard.tensor;
      plans_[s] = std::shared_ptr<const TensorOpPlan>(
          raw.release(), [pin](const TensorOpPlan* p) { delete p; });
    });
  }
  run_tasks(pool_, std::move(builds));
}

bool ShardedPlan::is_gpu() const {
  for (const auto& plan : plans_) {
    if (!plan->is_gpu()) return false;
  }
  return true;
}

std::size_t ShardedPlan::storage_bytes() const {
  std::size_t total = 0;
  for (const auto& plan : plans_) total += plan->storage_bytes();
  return total;
}

std::vector<std::string> ShardedPlan::shard_formats() const {
  std::vector<std::string> out;
  out.reserve(plans_.size());
  for (const auto& plan : plans_) out.push_back(plan->resolved_format());
  return out;
}

double ShardedPlan::shard_build_seconds() const {
  double total = 0.0;
  for (const auto& plan : plans_) total += plan->build_seconds();
  return total;
}

std::string ShardedPlan::detail() const {
  std::ostringstream os;
  os << partition_->to_string() << "; formats";
  for (std::size_t s = 0; s < plans_.size(); ++s) {
    os << (s == 0 ? " " : "/") << plans_[s]->resolved_format();
  }
  return os.str();
}

void ShardedPlan::finish_report(OpResult& result, double wall) const {
  if (!is_gpu()) {
    // CPU shards overlap on the pool: the honest cost is the measured
    // wall time of the fan-out, not the sum of per-shard clocks (which
    // operator+= uses for sequential GPU launches).
    result.report.seconds = wall;
    result.report.gflops =
        wall > 0.0 ? result.report.total_flops / wall / 1e9 : 0.0;
  }
}

OpResult ShardedPlan::execute_disjoint(const OpRequest& request) const {
  const std::size_t k = plans_.size();
  const rank_t rank =
      request.kind == OpKind::kTtv ? 1 : request.factors->front().cols();
  OpResult result;
  result.output = DenseMatrix(partition_->dims[mode()], rank);

  std::vector<SimReport> reports(k);
  std::vector<std::function<void()>> runs;
  runs.reserve(k);
  for (std::size_t s = 0; s < k; ++s) {
    runs.push_back([this, s, rank, &reports, &result, &request] {
      OpResult r = plans_[s]->execute(request);
      reports[s] = std::move(r.report);
      // Shard s produced nonzero rows ONLY inside its owned window (its
      // slice range; disjoint by construction), so moving that float
      // window into the shared output is the whole combine step -- the
      // single cast already happened inside the inner plan, and no other
      // shard touches these rows (TSan-checked in the race suites).
      const std::size_t begin =
          static_cast<std::size_t>(owned_rows_[s]) * rank;
      const std::size_t end =
          static_cast<std::size_t>(owned_rows_[s + 1]) * rank;
      const auto src = r.output.data();
      const auto dst = result.output.data();
      std::copy(src.begin() + begin, src.begin() + end, dst.begin() + begin);
    });
  }
  Timer timer;
  run_tasks(pool_, std::move(runs));
  const double wall = timer.seconds();

  for (std::size_t s = 0; s < k; ++s) {
    if (s == 0) {
      result.report = std::move(reports[s]);
    } else {
      result.report += reports[s];
    }
  }
  result.report.kernel = "ShardedDisjoint x" + std::to_string(k);
  finish_report(result, wall);
  return result;
}

OpResult ShardedPlan::execute_merge(const OpRequest& request) const {
  const std::size_t k = plans_.size();
  std::vector<Partial> partials(k);
  std::vector<std::function<void()>> runs;
  runs.reserve(k);
  for (std::size_t s = 0; s < k; ++s) {
    runs.push_back([this, s, &partials, &request] {
      OpResult r = plans_[s]->execute(request);
      Partial& partial = partials[s];
      partial.report = std::move(r.report);
      partial.scalar = r.scalar;
      if (request.kind != OpKind::kFit) {
        // Arena-leased promote: the buffer comes back from reuse with
        // stale contents and is fully overwritten here.
        const auto data = r.output.data();
        partial.acc = arena_.acquire(data.size());
        std::copy(data.begin(), data.end(), partial.acc.begin());
      }
    });
  }
  Timer timer;
  run_tasks(pool_, std::move(runs));
  const double wall = timer.seconds();

  OpResult result;
  bool first = true;
  for (Partial& partial : partials) {
    if (first) {
      result.report = std::move(partial.report);
      first = false;
    } else {
      result.report += partial.report;
    }
  }
  result.report.kernel = "Sharded x" + std::to_string(k);

  if (request.kind == OpKind::kFit) {
    // Partial inner products reduce in double; nothing to cast.
    for (const Partial& partial : partials) result.scalar += partial.scalar;
  } else {
    // Matrix ops: sum the shards' double partials, cast back to float
    // ONCE -- the whole sharded op rounds at a single boundary, matching
    // the reference kernels' promote-once contract.
    const rank_t rank =
        request.kind == OpKind::kTtv ? 1 : request.factors->front().cols();
    std::vector<std::span<const double>> accs;
    accs.reserve(k);
    for (const Partial& partial : partials) accs.emplace_back(partial.acc);
    result.output =
        reduce_shard_partials(partition_->dims[mode()], rank, accs);
    for (Partial& partial : partials) arena_.release(std::move(partial.acc));
  }
  finish_report(result, wall);
  return result;
}

OpResult ShardedPlan::execute(const OpRequest& request) const {
  check_request(request);
  if (plans_.size() == 1) {
    // Monolithic pass-through: no partial, no reduce -- the inner plan's
    // arithmetic verbatim (bitwise what the old single-shard reduce
    // produced, since float -> double -> float round-trips exactly).
    OpResult result = plans_.front()->execute(request);
    result.report.kernel = "Sharded x1";
    return result;
  }
  if (request.kind != OpKind::kFit && disjoint_output(request.mode)) {
    return execute_disjoint(request);
  }
  return execute_merge(request);
}

PlanRunResult ShardedPlan::run(const std::vector<DenseMatrix>& factors) const {
  OpRequest request;
  request.kind = OpKind::kMttkrp;
  request.mode = mode();
  request.factors = &factors;
  OpResult r = execute(request);
  return {std::move(r.output), std::move(r.report)};
}

}  // namespace bcsf
