#include "core/auto_policy.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace bcsf {

AutoDecision auto_select_format(const SparseTensor& tensor, index_t mode,
                                const AutoPolicyOptions& opts) {
  return auto_select_format(compute_mode_stats(tensor, mode), opts);
}

AutoDecision auto_select_format(const TensorSketch& sketch, index_t mode,
                                const AutoPolicyOptions& opts) {
  const ModeStats stats = sketch.approx_mode_stats(mode);
  AutoDecision d = auto_select_format(stats, opts);
  if (stats.nnz > 0) {
    // Re-price sharding with the sketched slice skew: the ModeStats path
    // cannot know the max-slice term, the sketch tracks it exactly.
    d.sharding =
        price_shard_count(stats.nnz, static_cast<index_t>(stats.num_slices),
                          opts, sketch.mode(mode).max_slice_nnz());
    d.shards = d.sharding.shards;
  }
  return d;
}

AutoDecision auto_select_format(const ModeStats& stats,
                                const AutoPolicyOptions& opts) {
  AutoDecision d;
  d.coo_slice_fraction = stats.singleton_slice_fraction;
  d.csl_slice_fraction = stats.csl_slice_fraction;
  d.csf_slice_fraction = std::max(
      0.0, 1.0 - d.coo_slice_fraction - d.csl_slice_fraction);
  if (stats.nnz_per_fiber.mean > 0.0) {
    d.fiber_length_cv = stats.nnz_per_fiber.stddev / stats.nnz_per_fiber.mean;
  }

  if (stats.nnz == 0) {
    d.format = "coo";
    d.rationale = "empty tensor: nothing to amortize";
    return d;
  }
  // Non-empty slices stand in for the output rows the merge traffic
  // scales with (stats carry no dims; empty rows cost the merge too, so
  // this under-prices the reduce slightly -- conservative toward
  // sharding).  Callers that know the real extent (the serving layer)
  // call price_shard_count with it directly.
  d.sharding = price_shard_count(
      stats.nnz, static_cast<index_t>(stats.num_slices), opts);
  d.shards = d.sharding.shards;

  // Fig-10 break-even gate.  Costs are in units of one per-nonzero MTTKRP
  // step; only the ratio matters for the break-even count.
  const double n = static_cast<double>(stats.nnz);
  const double build_cost =
      opts.sort_cost_ratio * n * std::log2(std::max(n, 2.0));
  const double utilization =
      std::min(1.0, n / static_cast<double>(opts.saturation_nnz));
  // Op-aware per-call gain: a rank-1 TTV call does ~1/R of an MTTKRP
  // call's arithmetic, so removing its atomic traffic buys ~1/R as much
  // absolute time per call and break-even moves out by the same factor.
  const double op_gain =
      opts.op == OpKind::kTtv ? opts.ttv_gain_fraction : 1.0;
  const double gain_per_call =
      n * (opts.atomic_penalty - 1.0) * utilization * op_gain;
  d.breakeven_calls = gain_per_call > 0.0
                          ? build_cost / gain_per_call
                          : std::numeric_limits<double>::infinity();

  std::ostringstream why;
  if (d.breakeven_calls > opts.expected_mttkrp_calls) {
    d.format = "coo";
    why << "build amortizes only after " << d.breakeven_calls
        << " calls but " << opts.expected_mttkrp_calls
        << " are expected; staying unstructured";
    d.rationale = why.str();
    return d;
  }

  // §V slice binning: dominant population -> its pure format; mixed ->
  // HB-CSF, which routes each population to its own group.
  if (d.coo_slice_fraction >= opts.dominant_fraction) {
    d.format = "coo";
    why << "slices are " << 100.0 * d.coo_slice_fraction
        << "% singletons; CSF machinery would be pure overhead";
  } else if (d.csl_slice_fraction >= opts.dominant_fraction) {
    d.format = "csl";
    why << 100.0 * d.csl_slice_fraction
        << "% of slices have only singleton fibers; the fiber level "
           "compresses away";
  } else if (d.csf_slice_fraction >= opts.dominant_fraction) {
    d.format = "bcsf";
    why << "slice population is uniformly CSF material (fiber-length cv "
        << d.fiber_length_cv << "); splitting balances it";
  } else {
    d.format = "hbcsf";
    why << "mixed slice populations (coo/csl/csf = "
        << 100.0 * d.coo_slice_fraction << "/"
        << 100.0 * d.csl_slice_fraction << "/"
        << 100.0 * d.csf_slice_fraction
        << "%); hybrid routing wins";
  }
  why << "; breakeven " << d.breakeven_calls << " calls";
  d.rationale = why.str();
  return d;
}

ShardPricing price_shard_count(offset_t nnz, index_t mode_dim,
                               const AutoPolicyOptions& opts,
                               offset_t max_slice_nnz) {
  ShardPricing best;
  if (opts.saturation_nnz == 0 || nnz == 0) return best;
  // Capacity gate: every shard must still saturate the device on its own.
  const offset_t per_saturation = nnz / opts.saturation_nnz;
  const unsigned cap = static_cast<unsigned>(std::clamp<offset_t>(
      per_saturation, 1, std::max(1u, opts.max_shards)));
  // Break-even gate: take the K with the best positive net win; if no K
  // nets out against its own fan-out + merge overhead, stay monolithic.
  const double reduce_per_shard = static_cast<double>(mode_dim) *
                                  static_cast<double>(opts.expected_rank) *
                                  opts.shard_reduce_cost;
  for (unsigned k = 2; k <= cap; ++k) {
    const double gain = static_cast<double>(nnz) * (1.0 - 1.0 / k);
    const double fanout = k * opts.shard_submit_cost;
    // Sketched skew gate: if even the largest slice fits in a quarter of
    // the per-shard nnz budget, every cut lies within partition slack of
    // a slice boundary (the partitioner's slack is budget/4), the
    // partition comes out disjoint, and the merge traffic never happens.
    const bool provably_disjoint =
        max_slice_nnz > 0 && max_slice_nnz <= ceil_div(nnz, offset_t{k}) / 4;
    const double reduce = provably_disjoint ? 0.0 : k * reduce_per_shard;
    if (gain - fanout - reduce > best.gain - best.fanout_cost -
                                     best.reduce_cost) {
      best = {k, gain, fanout, reduce};
    }
  }
  return best;
}

unsigned auto_shard_count(offset_t nnz, index_t mode_dim,
                          const AutoPolicyOptions& opts,
                          offset_t max_slice_nnz) {
  return price_shard_count(nnz, mode_dim, opts, max_slice_nnz).shards;
}

std::string AutoDecision::to_string() const {
  std::ostringstream os;
  os << "auto -> " << format << " (coo/csl/csf slices "
     << 100.0 * coo_slice_fraction << "/" << 100.0 * csl_slice_fraction << "/"
     << 100.0 * csf_slice_fraction << "%, fiber cv " << fiber_length_cv
     << ", breakeven " << breakeven_calls << ", shards " << shards
     << " [gain " << sharding.gain << " vs fanout " << sharding.fanout_cost
     << " + reduce " << sharding.reduce_cost << "]): " << rationale;
  return os.str();
}

}  // namespace bcsf
