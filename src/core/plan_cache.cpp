#include "core/plan_cache.hpp"

namespace bcsf {

const MttkrpPlan& PlanCache::get(const std::string& format, index_t mode) {
  const auto key = std::make_pair(format, mode);
  auto it = plans_.find(key);
  if (it == plans_.end()) {
    it = plans_
             .emplace(key, FormatRegistry::instance().create(format, *tensor_,
                                                             mode, opts_))
             .first;
  }
  return *it->second;
}

double PlanCache::total_build_seconds() const {
  double total = 0.0;
  for (const auto& [key, plan] : plans_) total += plan->build_seconds();
  return total;
}

}  // namespace bcsf
