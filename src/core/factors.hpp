// The ONE random-factor constructor shared by every layer (cpd, kernels
// shim, benches, tests).  Historically registry.cpp seeded factor m with
// `seed + m` while cpd_als used `seed + 31 * m`; this helper fixes the
// scheme to `seed + 31 * m` so factor matrices are decorrelated across
// modes and identical call sites produce identical factors.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/dense_matrix.hpp"
#include "util/types.hpp"

namespace bcsf {

/// Random factor matrices, one per mode (factors[m] has dims[m] rows and
/// `rank` columns), entries uniform in [lo, hi).
std::vector<DenseMatrix> make_random_factors(const std::vector<index_t>& dims,
                                             rank_t rank, std::uint64_t seed,
                                             value_t lo = 0.0F,
                                             value_t hi = 1.0F);

}  // namespace bcsf
