// The `auto` format policy: the paper's format-selection logic lifted to
// a whole-tensor decision (DESIGN.md §3).
//
// Two ingredients:
//  1. §V slice binning.  Every slice is COO (single nonzero), CSL (all
//     fibers singletons) or B-CSF material; `tensor_stats` already
//     computes the three populations.  A dominant population picks the
//     pure format; a mixed population picks HB-CSF, whose whole point is
//     routing each population to its own representation.
//  2. Fig-10 break-even.  Structured formats pay a build (sort-dominated,
//     ~nnz log nnz) that COO does not; it amortizes only if the caller
//     will run enough MTTKRPs:  build <= n * (t_coo - t_structured).
//     The per-call gain scales with how much atomic traffic structure
//     removes and collapses on tensors too small to occupy the device,
//     so tiny tensors fall back to COO no matter their shape.
#pragma once

#include <string>

#include "core/tensor_op.hpp"
#include "tensor/sketch.hpp"
#include "tensor/sparse_tensor.hpp"
#include "tensor/tensor_stats.hpp"
#include "util/types.hpp"

namespace bcsf {

struct AutoPolicyOptions {
  /// Calls the plan is expected to serve (CPD-ALS: iterations per mode).
  /// Fewer calls -> harder to amortize a build -> COO.
  double expected_mttkrp_calls = 50.0;
  /// Workload the build amortizes against (DESIGN.md §7).  TTV calls are
  /// rank-1: the absolute per-call gain from removing atomic traffic
  /// scales with per-call arithmetic, so a TTV-only workload needs ~R x
  /// more calls to pay for the same sort-dominated build.  FIT runs the
  /// full-rank traversal and prices exactly like MTTKRP.
  OpKind op = OpKind::kMttkrp;
  /// Per-call gain of a rank-1 (TTV) call relative to a full-rank MTTKRP
  /// call at the paper's benchmark rank (32).
  double ttv_gain_fraction = 1.0 / 32.0;
  /// A slice population at or above this fraction is "dominant" and gets
  /// its pure format; below, populations are mixed and HB-CSF wins.
  double dominant_fraction = 0.95;
  /// Build cost model: build = sort_cost_ratio * nnz * log2(nnz) units,
  /// with one unit = the per-nonzero MTTKRP cost.
  double sort_cost_ratio = 1.0;
  /// COO's per-nonzero cost multiplier from global atomics (the paper's
  /// motivation for structured formats).
  double atomic_penalty = 4.0;
  /// Nonzeros needed to saturate the device; below this the structured
  /// kernels cannot convert balance into speed and the per-call gain
  /// shrinks proportionally.
  offset_t saturation_nnz = 1 << 16;
  /// Upper bound for auto_shard_count (DESIGN.md §8): shard builds run in
  /// parallel on the serving pool, so more shards than the pool can chew
  /// (or than the partitioner can keep balanced) buys nothing.
  unsigned max_shards = 16;
  /// --- Overhead terms for auto_shard_count (DESIGN.md §8) ---
  /// Splitting a call K ways saves at most nnz * (1 - 1/K) per-nonzero
  /// units of kernel time on the critical path, but PAYS K task
  /// submissions plus a K-way merge of the output.  Both costs are in
  /// the same per-nonzero MTTKRP units as everything above.
  ///
  /// Cost of submitting + scheduling one shard task on the worker pool
  /// (lock, wake-up, cache-cold entry).
  double shard_submit_cost = 2000.0;
  /// Per output entry (row x rank element) cost of reading K partials
  /// and writing the merged row -- the merge path's memory traffic.  The
  /// disjoint-output path escapes this term, but the policy prices the
  /// general case: non-partition modes always merge.
  double shard_reduce_cost = 1.0;
  /// Rank assumed when pricing the reduce term before any request
  /// arrives (the paper's benchmark rank).
  rank_t expected_rank = 32;
};

/// auto_shard_count's decision with its cost terms, all in per-nonzero
/// MTTKRP units per call, priced AT the recommended shard count.
struct ShardPricing {
  unsigned shards = 1;
  double gain = 0.0;         ///< kernel time taken off the critical path
  double fanout_cost = 0.0;  ///< K task submissions
  double reduce_cost = 0.0;  ///< K-way merge traffic (0 when shards == 1)
};

struct AutoDecision {
  std::string format;  ///< chosen registry key ("coo", "csl", "bcsf", "hbcsf")
  /// §V slice binning (fractions over non-empty slices).
  double coo_slice_fraction = 0.0;
  double csl_slice_fraction = 0.0;
  double csf_slice_fraction = 0.0;
  /// Imbalance signal: stddev / mean of nonzeros per fiber (Table II).
  double fiber_length_cv = 0.0;
  /// Estimated calls for a structured build to pay for itself; infinite
  /// when structure yields no per-call gain.
  double breakeven_calls = 0.0;
  /// Recommended nnz-balanced shard count (auto_shard_count at the
  /// policy's saturation term): 1 below device saturation, growing with
  /// nnz so each shard still saturates on its own.
  unsigned shards = 1;
  /// The overhead-aware terms behind `shards` (price_shard_count):
  /// shards > 1 only where sharding.gain exceeds the fan-out + reduce
  /// overheads.
  ShardPricing sharding;
  std::string rationale;  ///< one human-readable sentence

  std::string to_string() const;
};

/// Decides the format for mode-`mode` MTTKRP on `tensor`.  Uses
/// `compute_mode_stats` internally; the overload taking ModeStats lets
/// callers that already have them skip the recompute.
AutoDecision auto_select_format(const SparseTensor& tensor, index_t mode,
                                const AutoPolicyOptions& opts = {});
AutoDecision auto_select_format(const ModeStats& stats,
                                const AutoPolicyOptions& opts = {});

/// Sketch-backed decision (DESIGN.md §12): same logic as the ModeStats
/// overload, fed by the streaming sketch's approximate stats -- O(S)
/// instead of O(nnz log nnz), no tensor access.  The exact overloads
/// above are retained as the validation oracle; the sketch decision
/// matches them whenever the estimated csl/fiber statistics land on the
/// same side of `dominant_fraction` (the documented tolerance band).
/// Sharding is priced with the sketched max-slice skew, so tensors whose
/// largest slice provably snaps inside partition slack drop the reduce
/// term.
AutoDecision auto_select_format(const TensorSketch& sketch, index_t mode,
                                const AutoPolicyOptions& opts = {});

/// Prices the nnz-balanced shard count for a tensor (DESIGN.md §8),
/// overhead-aware.  Two gates:
///  1. Capacity: at most one shard per `saturation_nnz` nonzeros -- a
///     shard below saturation cannot convert its balanced structure into
///     speed, the same term that gates the Fig-10 break-even.
///  2. Break-even: K shards take nnz * (1 - 1/K) of kernel time off the
///     critical path per call, but pay K * shard_submit_cost fan-out plus
///     K * mode_dim * expected_rank * shard_reduce_cost merge traffic.
///     K grows only while the net stays positive, so tensors below the
///     measured break-even stay monolithic (shards == 1) no matter how
///     many saturations they hold.
/// `mode_dim` is the output-mode dimension the merge traffic scales with
/// (the partition mode's extent for the serving layer); 0 = unknown,
/// pricing the fan-out term only.  Result clamped to [1, max_shards].
/// `max_slice_nnz` is the sketched slice skew (largest slice's nonzero
/// count; 0 = unknown): when the largest slice fits inside a quarter of
/// the per-shard budget, every partition cut provably snaps to a slice
/// boundary, the shards own disjoint output rows, and the reduce term is
/// dropped (the disjoint-output execution path never merges).
ShardPricing price_shard_count(offset_t nnz, index_t mode_dim,
                               const AutoPolicyOptions& opts = {},
                               offset_t max_slice_nnz = 0);
unsigned auto_shard_count(offset_t nnz, index_t mode_dim = 0,
                          const AutoPolicyOptions& opts = {},
                          offset_t max_slice_nnz = 0);

}  // namespace bcsf
