// Concrete TensorOpPlan implementations for every format/kernel pair in the
// library, each self-registering into the FormatRegistry.  This file is
// the ONLY place that knows which formats exist; everything above it
// (cpd, benches, examples, the enum shim) enumerates or looks up.
//
// To add a format: implement its plan class here (or in your own TU) and
// add one FormatRegistrar -- no consumer changes (DESIGN.md §4).
#include <cmath>
#include <iomanip>
#include <sstream>
#include <utility>

#include "core/auto_policy.hpp"
#include "core/format_registry.hpp"
#include "core/sharded_plan.hpp"
#include "formats/csf.hpp"
#include "formats/csl.hpp"
#include "formats/hbcsf.hpp"
#include "formats/hicoo.hpp"
#include "kernels/gpu_common.hpp"
#include "kernels/mttkrp.hpp"
#include "kernels/splatt.hpp"
#include "kernels/ttv_fit.hpp"
#include "util/timer.hpp"

namespace bcsf {

void ensure_builtin_plans_linked() {}  // linker anchor, see format_registry.cpp

namespace {

// ---------------------------------------------------------------------------
// Shared machinery
// ---------------------------------------------------------------------------

/// Wall-clock SimReport for real CPU kernels: `seconds` is measured, the
/// flop count uses the COO accounting (order x R per nonzero) so CPU and
/// GPU gflops columns are comparable.
SimReport cpu_report(const std::string& kernel, double seconds, index_t order,
                     offset_t nnz, rank_t rank) {
  SimReport r;
  r.kernel = kernel;
  r.seconds = seconds;
  r.total_flops =
      static_cast<double>(order) * rank * static_cast<double>(nnz);
  r.gflops = seconds > 0.0 ? r.total_flops / seconds / 1e9 : 0.0;
  return r;
}

template <typename Derived>
class GpuPlanBase : public TensorOpPlan {
 public:
  GpuPlanBase(std::string format, std::string display, index_t mode,
              DeviceModel device)
      : TensorOpPlan(std::move(format), std::move(display), mode),
        device_(device) {}
  bool is_gpu() const override { return true; }

 protected:
  DeviceModel device_;
};

// ---------------------------------------------------------------------------
// Simulated GPU plans
// ---------------------------------------------------------------------------

class GpuCsfPlan final : public GpuPlanBase<GpuCsfPlan> {
 public:
  GpuCsfPlan(const SparseTensor& t, index_t mode, const PlanOptions& o)
      : GpuPlanBase("gpu-csf", "GPU-CSF", mode, o.device),
        csf_(build_csf(t, mode)) {}
  std::size_t storage_bytes() const override {
    return csf_.index_storage_bytes();
  }
  PlanRunResult run(const std::vector<DenseMatrix>& f) const override {
    GpuMttkrpResult r = mttkrp_csf_gpu(csf_, f, device_);
    return {std::move(r.output), std::move(r.report)};
  }

 private:
  CsfTensor csf_;
};

class BcsfPlan final : public GpuPlanBase<BcsfPlan> {
 public:
  BcsfPlan(const SparseTensor& t, index_t mode, const PlanOptions& o)
      : GpuPlanBase("bcsf", "B-CSF", mode, o.device),
        bcsf_(build_bcsf(t, mode, o.bcsf)) {}
  std::size_t storage_bytes() const override {
    return bcsf_.index_storage_bytes();
  }
  PlanRunResult run(const std::vector<DenseMatrix>& f) const override {
    GpuMttkrpResult r = mttkrp_bcsf_gpu(bcsf_, f, device_,
                                        OutputCombine::kPerFiber, &memo_);
    return {std::move(r.output), std::move(r.report)};
  }

 private:
  BcsfTensor bcsf_;
  // bcsf_ is immutable for the plan's lifetime, so the cost model is paid
  // once per rank; repeat executes replay the schedule numerically.
  mutable SimMemo memo_;
};

class CslPlan final : public GpuPlanBase<CslPlan> {
 public:
  CslPlan(const SparseTensor& t, index_t mode, const PlanOptions& o)
      : GpuPlanBase("csl", "CSL", mode, o.device), csl_(build_csl(t, mode)) {}
  std::size_t storage_bytes() const override {
    return csl_.index_storage_bytes();
  }
  PlanRunResult run(const std::vector<DenseMatrix>& f) const override {
    GpuMttkrpResult r = mttkrp_csl_gpu(csl_, f, device_);
    return {std::move(r.output), std::move(r.report)};
  }

 private:
  CslTensor csl_;
};

class HbcsfPlan final : public GpuPlanBase<HbcsfPlan> {
 public:
  HbcsfPlan(const SparseTensor& t, index_t mode, const PlanOptions& o)
      : GpuPlanBase("hbcsf", "HB-CSF", mode, o.device),
        hb_(build_hbcsf(t, mode, o.bcsf)) {}
  std::size_t storage_bytes() const override {
    return hb_.index_storage_bytes();
  }
  std::string detail() const override {
    const double m = std::max<double>(1.0, static_cast<double>(hb_.nnz()));
    std::ostringstream os;
    os << "coo/csl/csf nnz % = " << std::fixed << std::setprecision(0)
       << 100.0 * hb_.coo_nnz() / m << "/" << 100.0 * hb_.csl_nnz() / m << "/"
       << 100.0 * hb_.csf_nnz() / m;
    return os.str();
  }
  PlanRunResult run(const std::vector<DenseMatrix>& f) const override {
    GpuMttkrpResult r = mttkrp_hbcsf_gpu(hb_, f, device_);
    return {std::move(r.output), std::move(r.report)};
  }

 private:
  HbcsfTensor hb_;
};

// COO's format IS the source tensor, so the COO-family plans reference
// it instead of copying: construction stays free (the paper's
// zero-preprocessing COO, Figs. 9/10) and no O(nnz) memory is
// duplicated.  The registry contract makes the caller keep the tensor
// alive for the plan's lifetime.
class GpuCooPlan final : public GpuPlanBase<GpuCooPlan> {
 public:
  GpuCooPlan(const SparseTensor& t, index_t mode, const PlanOptions& o)
      : GpuPlanBase("coo", "ParTI-COO", mode, o.device), tensor_(&t) {}
  std::size_t storage_bytes() const override {
    return tensor_->index_storage_bytes();
  }
  PlanRunResult run(const std::vector<DenseMatrix>& f) const override {
    GpuMttkrpResult r = mttkrp_coo_gpu(*tensor_, mode(), f, device_, &memo_);
    return {std::move(r.output), std::move(r.report)};
  }

 private:
  const SparseTensor* tensor_;
  // The registry contract pins *tensor_ alive AND immutable for the
  // plan's lifetime (serving snapshots are versioned, never edited in
  // place), so memoizing the cost model per rank is sound here too.
  mutable SimMemo memo_;
};

class FcooPlan final : public GpuPlanBase<FcooPlan> {
 public:
  FcooPlan(const SparseTensor& t, index_t mode, const PlanOptions& o)
      : GpuPlanBase("fcoo", "F-COO", mode, o.device),
        fcoo_(build_fcoo(t, mode, o.fcoo)) {}
  std::size_t storage_bytes() const override {
    return fcoo_.index_storage_bytes();
  }
  PlanRunResult run(const std::vector<DenseMatrix>& f) const override {
    GpuMttkrpResult r = mttkrp_fcoo_gpu(fcoo_, f, device_);
    return {std::move(r.output), std::move(r.report)};
  }

 private:
  FcooTensor fcoo_;
};

// ---------------------------------------------------------------------------
// Real CPU plans (OpenMP kernels, wall-clock reports)
// ---------------------------------------------------------------------------

// The two COO CPU plans override execute() with the fused kernels from
// kernels/ttv_fit.hpp: TTV drops the rank machinery entirely and FIT
// never materializes the MTTKRP matrix, instead of riding the generic
// rank-1 / contract-after-run path every other format uses.  The shared
// dispatch lives here, parameterized on the two kernel functions.
using TtvKernel = DenseMatrix (*)(const SparseTensor&, index_t,
                                  const std::vector<DenseMatrix>&);
using FitKernel = double (*)(const SparseTensor&,
                             const std::vector<DenseMatrix>&,
                             const std::vector<value_t>*);

OpResult coo_family_execute(const TensorOpPlan& plan,
                            const SparseTensor& tensor, const OpRequest& req,
                            TtvKernel ttv, FitKernel fit) {
  OpResult res;
  Timer t;
  switch (req.kind) {
    case OpKind::kTtv:
      res.output = ttv(tensor, plan.mode(), *req.factors);
      res.report = cpu_report(plan.display_name(), t.seconds(),
                              tensor.order(), tensor.nnz(), 1);
      break;
    case OpKind::kFit:
      res.scalar = fit(tensor, *req.factors, req.lambda);
      res.report = cpu_report(plan.display_name(), t.seconds(),
                              tensor.order(), tensor.nnz(),
                              req.factors->front().cols());
      break;
    case OpKind::kMttkrp:
    case OpKind::kStats:
      break;  // MTTKRP rides the base path; kStats never reaches plans
  }
  return res;
}

class ReferencePlan final : public TensorOpPlan {
 public:
  ReferencePlan(const SparseTensor& t, index_t mode, const PlanOptions&)
      : TensorOpPlan("reference", "Reference-COO", mode), tensor_(&t) {}
  bool is_gpu() const override { return false; }
  std::size_t storage_bytes() const override {
    return tensor_->index_storage_bytes();
  }
  PlanRunResult run(const std::vector<DenseMatrix>& f) const override {
    Timer t;
    DenseMatrix out = mttkrp_reference(*tensor_, mode(), f);
    const rank_t rank = out.cols();
    return {std::move(out), cpu_report(display_name(), t.seconds(),
                                       tensor_->order(), tensor_->nnz(), rank)};
  }
  OpResult execute(const OpRequest& req) const override {
    if (req.kind == OpKind::kMttkrp) return TensorOpPlan::execute(req);
    check_request(req);
    return coo_family_execute(*this, *tensor_, req, ttv_reference,
                              fit_inner_reference);
  }

 private:
  const SparseTensor* tensor_;
};

class CpuCooPlan final : public TensorOpPlan {
 public:
  CpuCooPlan(const SparseTensor& t, index_t mode, const PlanOptions&)
      : TensorOpPlan("cpu-coo", "CPU-COO", mode), tensor_(&t) {}
  bool is_gpu() const override { return false; }
  std::size_t storage_bytes() const override {
    return tensor_->index_storage_bytes();
  }
  PlanRunResult run(const std::vector<DenseMatrix>& f) const override {
    Timer t;
    DenseMatrix out = mttkrp_coo_cpu(*tensor_, mode(), f);
    const rank_t rank = out.cols();
    return {std::move(out), cpu_report(display_name(), t.seconds(),
                                       tensor_->order(), tensor_->nnz(), rank)};
  }
  OpResult execute(const OpRequest& req) const override {
    if (req.kind == OpKind::kMttkrp) return TensorOpPlan::execute(req);
    check_request(req);
    return coo_family_execute(*this, *tensor_, req, ttv_coo_cpu,
                              fit_inner_coo_cpu);
  }

 private:
  const SparseTensor* tensor_;
};

class CpuCsfPlan final : public TensorOpPlan {
 public:
  CpuCsfPlan(const SparseTensor& t, index_t mode, const PlanOptions&,
             index_t tiles = 0)
      : TensorOpPlan(tiles ? "cpu-csf-tiled" : "cpu-csf",
                   tiles ? "SPLATT-tiled" : "SPLATT", mode),
        csf_(build_csf(t, mode)),
        tiles_(tiles) {}
  bool is_gpu() const override { return false; }
  std::size_t storage_bytes() const override {
    return csf_.index_storage_bytes();
  }
  PlanRunResult run(const std::vector<DenseMatrix>& f) const override {
    Timer t;
    DenseMatrix out = tiles_ ? mttkrp_csf_cpu_tiled(csf_, f, tiles_)
                             : mttkrp_csf_cpu(csf_, f);
    const rank_t rank = out.cols();
    return {std::move(out), cpu_report(display_name(), t.seconds(),
                                       csf_.order(), csf_.nnz(), rank)};
  }

 private:
  CsfTensor csf_;
  index_t tiles_;
};

class CpuCslPlan final : public TensorOpPlan {
 public:
  CpuCslPlan(const SparseTensor& t, index_t mode, const PlanOptions&)
      : TensorOpPlan("cpu-csl", "CPU-CSL", mode), csl_(build_csl(t, mode)) {}
  bool is_gpu() const override { return false; }
  std::size_t storage_bytes() const override {
    return csl_.index_storage_bytes();
  }
  PlanRunResult run(const std::vector<DenseMatrix>& f) const override {
    Timer t;
    DenseMatrix out = mttkrp_csl_cpu(csl_, f);
    const rank_t rank = out.cols();
    return {std::move(out), cpu_report(display_name(), t.seconds(),
                                       csl_.order(), csl_.nnz(), rank)};
  }

 private:
  CslTensor csl_;
};

class CpuHicooPlan final : public TensorOpPlan {
 public:
  CpuHicooPlan(const SparseTensor& t, index_t mode, const PlanOptions&)
      : TensorOpPlan("cpu-hicoo", "HiCOO", mode),
        order_(t.order()),
        hicoo_(build_hicoo(t)) {}
  bool is_gpu() const override { return false; }
  std::size_t storage_bytes() const override {
    return hicoo_.index_storage_bytes();
  }
  PlanRunResult run(const std::vector<DenseMatrix>& f) const override {
    Timer t;
    DenseMatrix out = mttkrp_hicoo_cpu(hicoo_, mode(), f);
    const rank_t rank = out.cols();
    return {std::move(out), cpu_report(display_name(), t.seconds(), order_,
                                       hicoo_.nnz(), rank)};
  }

 private:
  index_t order_;
  HicooTensor hicoo_;
};

// ---------------------------------------------------------------------------
// The `auto` meta plan: decide per §V + Fig-10, then delegate
// ---------------------------------------------------------------------------

class AutoPlan final : public TensorOpPlan {
 public:
  AutoPlan(const SparseTensor& t, index_t mode, const PlanOptions& o)
      : TensorOpPlan("auto", "Auto", mode) {
    AutoPolicyOptions policy;
    policy.expected_mttkrp_calls = o.expected_mttkrp_calls;
    // Op-aware resolution: a TTV-dominated workload amortizes builds ~R x
    // slower, so "auto" may pick COO where full-rank traffic picks B-CSF.
    policy.op = o.op;
    decision_ = auto_select_format(t, mode, policy);
    inner_ = FormatRegistry::instance().create(decision_.format, t, mode, o);
  }
  bool is_gpu() const override { return inner_->is_gpu(); }
  const std::string& resolved_format() const override {
    return inner_->format();
  }
  std::size_t storage_bytes() const override {
    return inner_->storage_bytes();
  }
  std::string detail() const override { return decision_.to_string(); }
  const AutoDecision& decision() const { return decision_; }
  PlanRunResult run(const std::vector<DenseMatrix>& f) const override {
    return inner_->run(f);
  }
  OpResult execute(const OpRequest& req) const override {
    return inner_->execute(req);  // delegate fused paths, not just run()
  }

 private:
  AutoDecision decision_;
  PlanPtr inner_;
};

// ---------------------------------------------------------------------------
// Registrations
// ---------------------------------------------------------------------------

template <typename Plan>
FormatRegistry::Factory make() {
  return [](const SparseTensor& t, index_t mode, const PlanOptions& o) {
    return PlanPtr(new Plan(t, mode, o));
  };
}

using E = FormatRegistry::Entry;

FormatRegistrar r_gpu_csf{
    {"gpu-csf", "GPU-CSF", "plain CSF, one block per slice (§IV baseline)",
     PlanKind::kGpu, true, make<GpuCsfPlan>()}};
FormatRegistrar r_bcsf{
    {"bcsf", "B-CSF", "balanced CSF with fbr-/slc-split (§IV)",
     PlanKind::kGpu, true, make<BcsfPlan>()}};
FormatRegistrar r_csl{
    {"csl", "CSL", "compressed slices, one warp per slice (§V-A)",
     PlanKind::kGpu, true, make<CslPlan>()}};
FormatRegistrar r_hbcsf{
    {"hbcsf", "HB-CSF", "hybrid COO+CSL+B-CSF slice routing (§V)",
     PlanKind::kGpu, true, make<HbcsfPlan>()}};
FormatRegistrar r_coo{
    {"coo", "ParTI-COO", "thread per nonzero, global atomics [18]",
     PlanKind::kGpu, false, make<GpuCooPlan>()}};
FormatRegistrar r_fcoo{
    {"fcoo", "F-COO", "flagged COO with segmented scan [17]",
     PlanKind::kGpu, true, make<FcooPlan>()}};

FormatRegistrar r_reference{
    {"reference", "Reference-COO", "sequential double-accumulation ground truth",
     PlanKind::kCpu, false, make<ReferencePlan>()}};
FormatRegistrar r_cpu_coo{
    {"cpu-coo", "CPU-COO", "OpenMP COO with privatized outputs (Alg. 2)",
     PlanKind::kCpu, false, make<CpuCooPlan>()}};
FormatRegistrar r_cpu_csf{
    {"cpu-csf", "SPLATT", "OpenMP CSF, parallel over slices (Alg. 3)",
     PlanKind::kCpu, true, make<CpuCsfPlan>()}};
FormatRegistrar r_cpu_csf_tiled{
    {"cpu-csf-tiled", "SPLATT-tiled", "cache-blocked OpenMP CSF (4 tiles)",
     PlanKind::kCpu, true,
     [](const SparseTensor& t, index_t mode, const PlanOptions& o) {
       return PlanPtr(new CpuCsfPlan(t, mode, o, 4));
     }}};
FormatRegistrar r_cpu_csl{
    {"cpu-csl", "CPU-CSL", "OpenMP CSL, parallel over slices (Alg. 4)",
     PlanKind::kCpu, true, make<CpuCslPlan>()}};
FormatRegistrar r_cpu_hicoo{
    {"cpu-hicoo", "HiCOO", "blocked COO with compressed offsets [13]",
     PlanKind::kCpu, false, make<CpuHicooPlan>()}};

FormatRegistrar r_auto{
    {"auto", "Auto", "picks COO/CSL/B-CSF/HB-CSF per §V + Fig-10 break-even",
     PlanKind::kMeta, true, make<AutoPlan>()}};

// Implemented in core/sharded_plan.cpp; registered here so this file
// stays the one catalogue of existing formats (and the linker anchor
// keeps the entry alive in static-archive consumers).
FormatRegistrar r_sharded{
    {"sharded", "Sharded",
     "K nnz-balanced slice-range shards, one inner plan each (§8)",
     PlanKind::kMeta, true, make<ShardedPlan>()}};

}  // namespace
}  // namespace bcsf
