#include "core/format_registry.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/timer.hpp"

namespace bcsf {

// Defined in core/plans.cpp.  Referencing it from instance() forces the
// linker to keep plans.cpp (and its self-registering statics) when the
// library is consumed as a static archive -- without this anchor a binary
// that only pulls format_registry.o would see an empty catalogue.
void ensure_builtin_plans_linked();

FormatRegistry& FormatRegistry::instance() {
  static FormatRegistry registry;
  ensure_builtin_plans_linked();
  return registry;
}

void FormatRegistry::add(Entry entry) {
  BCSF_CHECK(!entry.name.empty(), "FormatRegistry: empty format name");
  BCSF_CHECK(static_cast<bool>(entry.factory),
             "FormatRegistry: format '" << entry.name << "' has no factory");
  const bool inserted = entries_.emplace(entry.name, entry).second;
  BCSF_CHECK(inserted,
             "FormatRegistry: duplicate format '" << entry.name << "'");
}

bool FormatRegistry::contains(const std::string& name) const {
  return entries_.count(name) > 0;
}

const FormatRegistry::Entry& FormatRegistry::at(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    std::ostringstream known;
    for (const auto& [key, unused] : entries_) known << " " << key;
    BCSF_CHECK(false, "FormatRegistry: unknown format '"
                          << name << "'; registered:" << known.str());
  }
  return it->second;
}

bool FormatRegistry::supports(const std::string& name, OpKind op) const {
  auto it = entries_.find(name);
  return it != entries_.end() && (it->second.ops & op_bit(op)) != 0;
}

PlanPtr FormatRegistry::create(const std::string& name,
                               const SparseTensor& tensor, index_t mode,
                               const PlanOptions& opts) const {
  const Entry& entry = at(name);
  BCSF_CHECK(mode < tensor.order(), "FormatRegistry: mode " << mode
                                        << " out of range for order "
                                        << tensor.order());
  BCSF_CHECK((entry.ops & op_bit(opts.op)) != 0,
             "FormatRegistry: format '" << name << "' does not support op '"
                                        << op_name(opts.op) << "'");
  Timer timer;
  PlanPtr plan = entry.factory(tensor, mode, opts);
  BCSF_CHECK(plan != nullptr,
             "FormatRegistry: factory for '" << name << "' returned null");
  // For meta plans (auto) this covers the decision plus the delegate's
  // construction -- the true pre-processing cost of asking for "auto".
  plan->build_seconds_ = timer.seconds();
  return plan;
}

std::vector<std::string> FormatRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [key, unused] : entries_) out.push_back(key);
  return out;
}

std::vector<std::string> FormatRegistry::names(PlanKind kind) const {
  std::vector<std::string> out;
  for (const auto& [key, entry] : entries_) {
    if (entry.kind == kind) out.push_back(key);
  }
  return out;
}

std::vector<std::string> FormatRegistry::names(OpKind op) const {
  std::vector<std::string> out;
  for (const auto& [key, entry] : entries_) {
    if ((entry.ops & op_bit(op)) != 0) out.push_back(key);
  }
  return out;
}

FormatRegistrar::FormatRegistrar(FormatRegistry::Entry entry) {
  FormatRegistry::instance().add(std::move(entry));
}

}  // namespace bcsf
