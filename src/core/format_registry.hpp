// String-keyed factory for tensor-op plans (DESIGN.md §2, §7).
//
// Every format registers itself once (static FormatRegistrar in
// core/plans.cpp); consumers -- cpd_als, the serving layer, the benches,
// the examples -- look plans up by name or enumerate the catalogue, so
// adding a format means adding ONE registration and no switch statement
// anywhere.  Entries are op-aware: each declares which OpKinds its plans
// execute (all of them today -- TTV and FIT ride the MTTKRP traversal),
// and create() refuses an unsupported (format, op) pair up front instead
// of failing inside execute().
//
// Thread-safety: all registrations happen during static initialization,
// before main(); after that the registry is read-only, so contains() /
// at() / create() / names() may be called from any thread without
// locking.  create() itself is re-entrant -- each call builds an
// independent plan -- and the serving layer memoizes and single-flights
// those builds in ConcurrentPlanCache (DESIGN.md §5) rather than here.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/tensor_op.hpp"
#include "core/tensor_op_plan.hpp"
#include "tensor/sparse_tensor.hpp"
#include "util/types.hpp"

namespace bcsf {

/// Which execution engine a format's kernel targets.  `kMeta` marks
/// policies (e.g. "auto") that delegate to another registered format.
enum class PlanKind { kGpu, kCpu, kMeta };

class FormatRegistry {
 public:
  using Factory = std::function<PlanPtr(
      const SparseTensor& tensor, index_t mode, const PlanOptions& opts)>;

  struct Entry {
    std::string name;          ///< registry key, e.g. "hbcsf"
    std::string display_name;  ///< paper-facing name, e.g. "HB-CSF"
    std::string description;   ///< one line for catalogue listings
    PlanKind kind = PlanKind::kGpu;
    /// True for formats keeping one representation per mode (CSF family);
    /// false for mode-agnostic storage (COO).  Drives all-mode storage
    /// sums (Fig. 16).
    bool mode_oriented = true;
    Factory factory;
    /// OpKinds this format's plans execute (op_bit mask).  Defaults to
    /// everything: the generic TensorOpPlan::execute path serves TTV/FIT
    /// through any format's MTTKRP traversal.  A future format with a
    /// restricted kernel set narrows this and create() refuses early.
    unsigned ops = kAllOpsMask;
  };

  /// The process-wide registry with all built-in formats registered.
  static FormatRegistry& instance();

  /// Registers a format; throws bcsf::Error on duplicate names.
  void add(Entry entry);

  bool contains(const std::string& name) const;
  const Entry& at(const std::string& name) const;  ///< throws if unknown

  /// True when `name` is registered AND declares support for `op`.
  bool supports(const std::string& name, OpKind op) const;

  /// Builds the plan for (name, tensor, mode), timing the factory call
  /// into the plan's build_seconds().  Throws bcsf::Error for unknown
  /// names (message lists the catalogue) and for a (name, opts.op) pair
  /// the entry does not support.  `tensor` must outlive the plan: the
  /// COO-family plans reference it rather than copy (their format IS the
  /// tensor, and copying would charge COO a build cost the paper says it
  /// does not have).
  PlanPtr create(const std::string& name, const SparseTensor& tensor,
                 index_t mode, const PlanOptions& opts = {}) const;

  /// Registered names, sorted; optionally restricted to one kind or to
  /// formats supporting one op.
  std::vector<std::string> names() const;
  std::vector<std::string> names(PlanKind kind) const;
  std::vector<std::string> names(OpKind op) const;

 private:
  FormatRegistry() = default;
  std::map<std::string, Entry> entries_;
};

/// Self-registration helper: `static FormatRegistrar r{{...}};` at
/// namespace scope adds the entry before main() runs.
struct FormatRegistrar {
  explicit FormatRegistrar(FormatRegistry::Entry entry);
};

}  // namespace bcsf
