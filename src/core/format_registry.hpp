// String-keyed factory for MTTKRP plans (DESIGN.md §2).
//
// Every format registers itself once (static FormatRegistrar in
// core/plans.cpp); consumers -- cpd_als, the benches, the examples, the
// enum shim in kernels/registry.hpp -- look plans up by name or enumerate
// the catalogue, so adding a format means adding ONE registration and no
// switch statement anywhere.
//
// Thread-safety: all registrations happen during static initialization,
// before main(); after that the registry is read-only, so contains() /
// at() / create() / names() may be called from any thread without
// locking.  create() itself is re-entrant -- each call builds an
// independent plan -- and the serving layer memoizes and single-flights
// those builds in ConcurrentPlanCache (DESIGN.md §5) rather than here.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/mttkrp_plan.hpp"
#include "tensor/sparse_tensor.hpp"
#include "util/types.hpp"

namespace bcsf {

/// Which execution engine a format's kernel targets.  `kMeta` marks
/// policies (e.g. "auto") that delegate to another registered format.
enum class PlanKind { kGpu, kCpu, kMeta };

class FormatRegistry {
 public:
  using Factory = std::function<PlanPtr(
      const SparseTensor& tensor, index_t mode, const PlanOptions& opts)>;

  struct Entry {
    std::string name;          ///< registry key, e.g. "hbcsf"
    std::string display_name;  ///< paper-facing name, e.g. "HB-CSF"
    std::string description;   ///< one line for catalogue listings
    PlanKind kind = PlanKind::kGpu;
    /// True for formats keeping one representation per mode (CSF family);
    /// false for mode-agnostic storage (COO).  Drives all-mode storage
    /// sums (Fig. 16).
    bool mode_oriented = true;
    Factory factory;
  };

  /// The process-wide registry with all built-in formats registered.
  static FormatRegistry& instance();

  /// Registers a format; throws bcsf::Error on duplicate names.
  void add(Entry entry);

  bool contains(const std::string& name) const;
  const Entry& at(const std::string& name) const;  ///< throws if unknown

  /// Builds the plan for (name, tensor, mode), timing the factory call
  /// into the plan's build_seconds().  Throws bcsf::Error for unknown
  /// names (message lists the catalogue).  `tensor` must outlive the
  /// plan: the COO-family plans reference it rather than copy (their
  /// format IS the tensor, and copying would charge COO a build cost
  /// the paper says it does not have).
  PlanPtr create(const std::string& name, const SparseTensor& tensor,
                 index_t mode, const PlanOptions& opts = {}) const;

  /// Registered names, sorted; optionally restricted to one kind.
  std::vector<std::string> names() const;
  std::vector<std::string> names(PlanKind kind) const;

 private:
  FormatRegistry() = default;
  std::map<std::string, Entry> entries_;
};

/// Self-registration helper: `static FormatRegistrar r{{...}};` at
/// namespace scope adds the entry before main() runs.
struct FormatRegistrar {
  explicit FormatRegistrar(FormatRegistry::Entry entry);
};

}  // namespace bcsf
