// Record/replay for the tensord front-end (DESIGN.md §9), modeled on the
// sairedis Recorder: every request that mutates or queries the service --
// register, update, query -- is appended to a trace file as the EXACT
// frame that crossed the wire, so a production workload can be replayed
// later against a fresh service, deterministically, for debugging and
// regression gating.
//
// Trace file layout: one kTraceHeader frame (magic + format version),
// then the recorded frames in arrival order.  Responses are recorded too
// (kAck/kResult/kError) -- the replayer skips them, but a human or a diff
// tool reading the trace sees the full dialogue.
//
// Determinism contract: replay_trace() drives the service one event at a
// time and waits for it to go fully IDLE between events, so background
// format upgrades and shard compactions land at the same event index on
// every replay.  The response log it returns -- a concatenation of
// response frames restricted to the DETERMINISTIC ResultMsg fields -- is
// therefore byte-identical across replays of the same trace (the CI
// replay gate cmp(1)s two of them).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "serve/tensor_op_service.hpp"
#include "util/thread_annotations.hpp"

namespace bcsf::trace {

/// Format version stamped into the kTraceHeader frame.  Bump when the
/// wire encoding of any recorded frame changes.  v2: AckMsg grew the
/// storage-budget fleet stats (budget/resident/evictions + per-tenant
/// table).
inline constexpr std::uint32_t kTraceVersion = 2;

/// 8-byte magic leading the kTraceHeader payload.
inline constexpr char kTraceMagic[8] = {'B', 'C', 'S', 'F',
                                        'T', 'R', 'C', '\n'};

/// Appends frames to a trace file.  Thread-safe: the server's reader and
/// writer threads record interleaved request/response frames under one
/// mutex, so every frame lands whole.
class TraceRecorder {
 public:
  /// Creates/truncates `path` and writes the header frame.  Throws
  /// NetError if the file cannot be opened.
  explicit TraceRecorder(const std::string& path);

  void record(net::MsgType type, std::span<const std::uint8_t> payload);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  Mutex mutex_;
  /// The fd itself is write-only after construction; the mutex orders
  /// the frame appends so each lands whole.
  net::FdHandle fd_ BCSF_GUARDED_BY(mutex_);
};

/// Sequential reader over a trace file; validates the header frame on
/// construction (ProtocolError on a bad magic/version).
class TraceReader {
 public:
  explicit TraceReader(const std::string& path);

  /// Reads the next recorded frame.  False at end of trace; throws
  /// ProtocolError on a truncated file.
  bool next(net::Frame& out);

 private:
  net::FdHandle fd_;
};

struct ReplayResult {
  /// Concatenated deterministic response frames, one per replayed
  /// request -- the byte-comparable artifact of the replay gate.
  std::vector<std::uint8_t> log;
  std::size_t events = 0;   ///< request frames replayed
  std::size_t skipped = 0;  ///< recorded responses (and kPing) ignored
  /// Recorded kOverloaded replies seen in the trace: queries the server
  /// REJECTED at admission.  Rejected queries are never recorded as
  /// request frames (admission runs before the recorder), so this is
  /// how a trace taken under overload preserves the rejected count.
  std::size_t rejected = 0;
};

/// Strict in-process replay: applies every request frame of `reader` to
/// `service` in trace order, draining the service to idle after EACH
/// event (see the determinism contract above).  Request failures become
/// kError frames in the log -- they replay deterministically too.
ReplayResult replay_trace(TensorOpService& service, TraceReader& reader);

/// Multi-connection socket replay: drives a LIVE tensord at `unix_path`
/// with `connections` pipelined TensorClients.  Mutating events
/// (register/update) are serialized on connection 0 behind a drain
/// barrier; queries round-robin across the connections and stay
/// outstanding together, so the server sees genuinely concurrent
/// pipelined traffic.  The returned log keeps trace order but
/// NORMALIZES the race-dependent ResultMsg fields (sequence, upgraded,
/// served_format) to fixed values -- with exact-arithmetic workloads
/// the numeric payload is still byte-comparable against an in-process
/// replay normalized the same way.
ReplayResult replay_trace_sockets(const std::string& unix_path,
                                  TraceReader& reader,
                                  std::size_t connections);

/// Normalizes a replay response log in place for cross-mode comparison:
/// every kResult frame's sequence/upgraded/served_format are overwritten
/// with fixed values (0 / false / "").  Non-result frames pass through.
std::vector<std::uint8_t> normalize_replay_log(
    std::span<const std::uint8_t> log);

/// The kTraceHeader payload (magic + version).
std::vector<std::uint8_t> encode_trace_header();
/// Validates a kTraceHeader payload; throws ProtocolError on mismatch.
void check_trace_header(const net::Frame& frame);

}  // namespace bcsf::trace
