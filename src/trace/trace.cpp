#include "trace/trace.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "net/convert.hpp"
#include "net/wire.hpp"
#include "util/error.hpp"

namespace bcsf::trace {

std::vector<std::uint8_t> encode_trace_header() {
  net::WireWriter w;
  for (char c : kTraceMagic) w.u8(static_cast<std::uint8_t>(c));
  w.u32(kTraceVersion);
  return w.take();
}

void check_trace_header(const net::Frame& frame) {
  if (frame.type != net::MsgType::kTraceHeader) {
    throw net::ProtocolError("trace: file does not start with a trace header");
  }
  net::WireReader r(frame.payload);
  for (char c : kTraceMagic) {
    if (r.u8() != static_cast<std::uint8_t>(c)) {
      throw net::ProtocolError("trace: bad magic (not a tensord trace)");
    }
  }
  const std::uint32_t version = r.u32();
  if (version != kTraceVersion) {
    throw net::ProtocolError("trace: format version " +
                             std::to_string(version) + " unsupported (want " +
                             std::to_string(kTraceVersion) + ")");
  }
  r.expect_done("trace header");
}

TraceRecorder::TraceRecorder(const std::string& path) : path_(path) {
  fd_ = net::FdHandle(
      ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644));
  if (!fd_.valid()) {
    throw net::NetError("trace: cannot open '" + path +
                        "' for writing: " + std::strerror(errno));
  }
  const std::vector<std::uint8_t> header = encode_trace_header();
  net::write_frame(fd_.get(), net::MsgType::kTraceHeader, header);
}

void TraceRecorder::record(net::MsgType type,
                           std::span<const std::uint8_t> payload) {
  std::lock_guard<std::mutex> lock(mutex_);
  net::write_frame(fd_.get(), type, payload);
}

TraceReader::TraceReader(const std::string& path) {
  fd_ = net::FdHandle(::open(path.c_str(), O_RDONLY));
  if (!fd_.valid()) {
    throw net::NetError("trace: cannot open '" + path +
                        "': " + std::strerror(errno));
  }
  net::Frame header;
  if (!net::read_frame(fd_.get(), header)) {
    throw net::ProtocolError("trace: empty file '" + path + "'");
  }
  check_trace_header(header);
}

bool TraceReader::next(net::Frame& out) {
  return net::read_frame(fd_.get(), out);
}

ReplayResult replay_trace(TensorOpService& service, TraceReader& reader) {
  ReplayResult result;
  net::Frame frame;
  while (reader.next(frame)) {
    std::vector<std::uint8_t> reply;
    net::MsgType reply_type = net::MsgType::kAck;
    const std::uint64_t id = net::peek_id(frame.payload);
    switch (frame.type) {
      case net::MsgType::kRegister: {
        ++result.events;
        try {
          net::RegisterMsg msg = net::decode_register(frame.payload);
          service.register_tensor(msg.name,
                                  share_tensor(std::move(msg.tensor)));
          reply = net::encode_ack({msg.id, 0});
        } catch (const Error& e) {
          reply_type = net::MsgType::kError;
          reply = net::encode_error({id, e.what()});
        }
        break;
      }
      case net::MsgType::kUpdate: {
        ++result.events;
        try {
          net::UpdateMsg msg = net::decode_update(frame.payload);
          const std::uint64_t version =
              service.apply_updates(msg.name, std::move(msg.updates));
          reply = net::encode_ack({msg.id, version});
        } catch (const Error& e) {
          reply_type = net::MsgType::kError;
          reply = net::encode_error({id, e.what()});
        }
        break;
      }
      case net::MsgType::kQuery: {
        ++result.events;
        try {
          net::QueryMsg msg = net::decode_query(frame.payload);
          const std::uint64_t query_id = msg.id;
          const ServeResponse response =
              service.submit(net::to_request(std::move(msg))).get();
          reply_type = net::MsgType::kResult;
          reply = net::encode_result(net::to_result(query_id, response));
        } catch (const Error& e) {
          reply_type = net::MsgType::kError;
          reply = net::encode_error({id, e.what()});
        }
        break;
      }
      default:
        // Recorded responses, pings, shutdowns: not service events.
        ++result.skipped;
        continue;
    }
    // The determinism barrier: background upgrades/compactions kicked by
    // THIS event finish before the next one is applied, so their effects
    // (served_format, upgraded, delta_nnz after compaction) appear at
    // the same event index on every replay.
    service.wait_idle();
    net::append_frame(result.log, reply_type, reply);
  }
  return result;
}

}  // namespace bcsf::trace
