#include "trace/trace.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <cstring>
#include <future>
#include <memory>
#include <utility>

#include "net/client.hpp"
#include "net/convert.hpp"
#include "net/wire.hpp"
#include "util/error.hpp"

namespace bcsf::trace {

std::vector<std::uint8_t> encode_trace_header() {
  net::WireWriter w;
  for (char c : kTraceMagic) w.u8(static_cast<std::uint8_t>(c));
  w.u32(kTraceVersion);
  return w.take();
}

void check_trace_header(const net::Frame& frame) {
  if (frame.type != net::MsgType::kTraceHeader) {
    throw net::ProtocolError("trace: file does not start with a trace header");
  }
  net::WireReader r(frame.payload);
  for (char c : kTraceMagic) {
    if (r.u8() != static_cast<std::uint8_t>(c)) {
      throw net::ProtocolError("trace: bad magic (not a tensord trace)");
    }
  }
  const std::uint32_t version = r.u32();
  if (version != kTraceVersion) {
    throw net::ProtocolError("trace: format version " +
                             std::to_string(version) + " unsupported (want " +
                             std::to_string(kTraceVersion) + ")");
  }
  r.expect_done("trace header");
}

TraceRecorder::TraceRecorder(const std::string& path) : path_(path) {
  fd_ = net::FdHandle(
      ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644));
  if (!fd_.valid()) {
    throw net::NetError("trace: cannot open '" + path +
                        "' for writing: " + std::strerror(errno));
  }
  const std::vector<std::uint8_t> header = encode_trace_header();
  net::write_frame(fd_.get(), net::MsgType::kTraceHeader, header);
}

void TraceRecorder::record(net::MsgType type,
                           std::span<const std::uint8_t> payload) {
  MutexLock lock(mutex_);
  net::write_frame(fd_.get(), type, payload);
}

TraceReader::TraceReader(const std::string& path) {
  fd_ = net::FdHandle(::open(path.c_str(), O_RDONLY));
  if (!fd_.valid()) {
    throw net::NetError("trace: cannot open '" + path +
                        "': " + std::strerror(errno));
  }
  net::Frame header;
  if (!net::read_frame(fd_.get(), header)) {
    throw net::ProtocolError("trace: empty file '" + path + "'");
  }
  check_trace_header(header);
}

bool TraceReader::next(net::Frame& out) {
  return net::read_frame(fd_.get(), out);
}

ReplayResult replay_trace(TensorOpService& service, TraceReader& reader) {
  ReplayResult result;
  net::Frame frame;
  while (reader.next(frame)) {
    std::vector<std::uint8_t> reply;
    net::MsgType reply_type = net::MsgType::kAck;
    const std::uint64_t id = net::peek_id(frame.payload);
    switch (frame.type) {
      case net::MsgType::kRegister: {
        ++result.events;
        try {
          net::RegisterMsg msg = net::decode_register(frame.payload);
          service.register_tensor(msg.name,
                                  share_tensor(std::move(msg.tensor)));
          reply = net::encode_ack(net::make_ack(msg.id, 0));
        } catch (const Error& e) {
          reply_type = net::MsgType::kError;
          reply = net::encode_error({id, e.what()});
        }
        break;
      }
      case net::MsgType::kUpdate: {
        ++result.events;
        try {
          net::UpdateMsg msg = net::decode_update(frame.payload);
          const std::uint64_t version =
              service.apply_updates(msg.name, std::move(msg.updates));
          reply = net::encode_ack(net::make_ack(msg.id, version));
        } catch (const Error& e) {
          reply_type = net::MsgType::kError;
          reply = net::encode_error({id, e.what()});
        }
        break;
      }
      case net::MsgType::kQuery: {
        ++result.events;
        try {
          net::QueryMsg msg = net::decode_query(frame.payload);
          const std::uint64_t query_id = msg.id;
          const ServeResponse response =
              service.submit(net::to_request(std::move(msg))).get();
          reply_type = net::MsgType::kResult;
          reply = net::encode_result(net::to_result(query_id, response));
        } catch (const Error& e) {
          reply_type = net::MsgType::kError;
          reply = net::encode_error({id, e.what()});
        }
        break;
      }
      default:
        // Recorded responses, pings, shutdowns: not service events.  A
        // recorded kOverloaded reply is the only trace of a query the
        // server rejected at admission (rejected queries are never
        // recorded as request frames), so count it here.
        if (frame.type == net::MsgType::kOverloaded) ++result.rejected;
        ++result.skipped;
        continue;
    }
    // The determinism barrier: background upgrades/compactions kicked by
    // THIS event finish before the next one is applied, so their effects
    // (served_format, upgraded, delta_nnz after compaction) appear at
    // the same event index on every replay.
    service.wait_idle();
    net::append_frame(result.log, reply_type, reply);
  }
  return result;
}

std::vector<std::uint8_t> normalize_replay_log(
    std::span<const std::uint8_t> log) {
  std::vector<std::uint8_t> out;
  out.reserve(log.size());
  std::size_t pos = 0;
  while (pos < log.size()) {
    if (log.size() - pos < 5) {
      throw net::ProtocolError("trace: truncated frame header in replay log");
    }
    const std::uint32_t len = static_cast<std::uint32_t>(log[pos]) |
                              (static_cast<std::uint32_t>(log[pos + 1]) << 8) |
                              (static_cast<std::uint32_t>(log[pos + 2]) << 16) |
                              (static_cast<std::uint32_t>(log[pos + 3]) << 24);
    const auto type = static_cast<net::MsgType>(log[pos + 4]);
    if (len > net::kMaxFramePayload || log.size() - pos - 5 < len) {
      throw net::ProtocolError("trace: truncated frame in replay log");
    }
    const std::span<const std::uint8_t> payload = log.subspan(pos + 5, len);
    if (type == net::MsgType::kResult) {
      net::ResultMsg msg = net::decode_result(payload);
      msg.sequence = 0;
      msg.upgraded = false;
      msg.served_format.clear();
      net::append_frame(out, type, net::encode_result(msg));
    } else {
      net::append_frame(out, type, payload);
    }
    pos += 5 + len;
  }
  return out;
}

ReplayResult replay_trace_sockets(const std::string& unix_path,
                                  TraceReader& reader,
                                  std::size_t connections) {
  BCSF_CHECK(connections > 0, "trace: need at least one replay connection");
  ReplayResult result;
  std::vector<std::unique_ptr<net::TensorClient>> clients;
  clients.reserve(connections);
  for (std::size_t i = 0; i < connections; ++i) {
    clients.push_back(std::make_unique<net::TensorClient>(unix_path));
  }

  // Outstanding pipelined queries, in trace order: (original trace id,
  // pending response frame).  The log is appended at drain time walking
  // this vector front to back, so log order == trace order even though
  // responses complete in server order.
  std::vector<std::pair<std::uint64_t, std::future<net::Frame>>> outstanding;
  std::size_t rr = 0;  // round-robin connection cursor for queries

  // Responses carry the CLIENT-chosen ids, not the recorded ones; restamp
  // each with the original trace id (and normalize the race-dependent
  // ResultMsg fields) so the log is comparable against an in-process
  // replay of the same trace run through normalize_replay_log().
  auto append_response = [&result](std::uint64_t orig_id, net::Frame frame) {
    switch (frame.type) {
      case net::MsgType::kResult: {
        net::ResultMsg msg = net::decode_result(frame.payload);
        msg.id = orig_id;
        msg.sequence = 0;
        msg.upgraded = false;
        msg.served_format.clear();
        net::append_frame(result.log, frame.type, net::encode_result(msg));
        break;
      }
      case net::MsgType::kError:
      case net::MsgType::kOverloaded: {
        net::ErrorMsg msg = net::decode_error(frame.payload);
        msg.id = orig_id;
        net::append_frame(result.log, frame.type, net::encode_error(msg));
        break;
      }
      default:
        throw net::ProtocolError(
            "trace: unexpected response type " +
            std::to_string(static_cast<unsigned>(frame.type)) +
            " during socket replay");
    }
  };

  auto drain = [&] {
    for (auto& [orig_id, future] : outstanding) {
      append_response(orig_id, future.get());
    }
    outstanding.clear();
  };

  net::Frame frame;
  while (reader.next(frame)) {
    const std::uint64_t id = net::peek_id(frame.payload);
    switch (frame.type) {
      case net::MsgType::kRegister: {
        ++result.events;
        drain();  // barrier: mutations never race outstanding queries
        try {
          net::RegisterMsg msg = net::decode_register(frame.payload);
          clients[0]->register_tensor(msg.name, msg.tensor);
          net::append_frame(result.log, net::MsgType::kAck,
                            net::encode_ack(net::make_ack(id, 0)));
        } catch (const Error& e) {
          net::append_frame(result.log, net::MsgType::kError,
                            net::encode_error({id, e.what()}));
        }
        break;
      }
      case net::MsgType::kUpdate: {
        ++result.events;
        drain();
        try {
          net::UpdateMsg msg = net::decode_update(frame.payload);
          const std::uint64_t version =
              clients[0]->apply_updates(msg.name, msg.updates);
          net::append_frame(result.log, net::MsgType::kAck,
                            net::encode_ack(net::make_ack(id, version)));
        } catch (const Error& e) {
          net::append_frame(result.log, net::MsgType::kError,
                            net::encode_error({id, e.what()}));
        }
        break;
      }
      case net::MsgType::kQuery: {
        ++result.events;
        net::QueryMsg msg = net::decode_query(frame.payload);
        outstanding.emplace_back(
            id, clients[rr++ % connections]->query_async(std::move(msg)));
        break;
      }
      default:
        if (frame.type == net::MsgType::kOverloaded) ++result.rejected;
        ++result.skipped;
        continue;
    }
  }
  drain();
  return result;
}

}  // namespace bcsf::trace
