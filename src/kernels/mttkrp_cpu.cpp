// Real (runnable) CPU MTTKRP kernels, parallelized with OpenMP in the
// SPLATT style: one thread owns whole slices, so no atomics or locks are
// needed (§IV: "SPLATT uses the CSF data structure, and assigns one
// thread to process an entire slice").
#include <algorithm>
#include <numeric>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "kernels/mttkrp.hpp"
#include "util/error.hpp"

namespace bcsf {

DenseMatrix mttkrp_coo_cpu(const SparseTensor& tensor, index_t mode,
                           const std::vector<DenseMatrix>& factors) {
  check_factors(tensor.dims(), factors);
  BCSF_CHECK(mode < tensor.order(), "mttkrp_coo_cpu: bad mode");
  const rank_t rank = factors.front().cols();

  // Group nonzeros by output row so threads never collide: sort a copy by
  // the mode ordering, then hand contiguous slice runs to threads.
  SparseTensor sorted = tensor;
  const ModeOrder order = mode_order_for(mode, tensor.order());
  sorted.sort(order);

  const offset_t m = sorted.nnz();
  std::vector<offset_t> slice_start;
  for (offset_t z = 0; z < m; ++z) {
    if (z == 0 || sorted.coord(mode, z) != sorted.coord(mode, z - 1)) {
      slice_start.push_back(z);
    }
  }
  slice_start.push_back(m);
  const std::int64_t n_slices =
      static_cast<std::int64_t>(slice_start.size()) - 1;

  DenseMatrix out(tensor.dim(mode), rank);
#pragma omp parallel
  {
    std::vector<value_t> prod(rank);
#pragma omp for schedule(static)
    for (std::int64_t s = 0; s < n_slices; ++s) {
      for (offset_t z = slice_start[s]; z < slice_start[s + 1]; ++z) {
        const value_t v = sorted.value(z);
        for (rank_t r = 0; r < rank; ++r) prod[r] = v;
        for (index_t f = 0; f < sorted.order(); ++f) {
          if (f == mode) continue;
          const auto row = factors[f].row(sorted.coord(f, z));
          for (rank_t r = 0; r < rank; ++r) prod[r] *= row[r];
        }
        auto yrow = out.row(sorted.coord(mode, z));
        for (rank_t r = 0; r < rank; ++r) yrow[r] += prod[r];
      }
    }
  }
  return out;
}

DenseMatrix mttkrp_csf_cpu(const CsfTensor& csf,
                           const std::vector<DenseMatrix>& factors) {
  check_factors(csf.dims(), factors);
  const rank_t rank = factors.front().cols();
  const ModeOrder& order = csf.mode_order();
  const index_t n_levels = csf.node_levels();
  const index_t leaf_mode = order.back();
  const DenseMatrix& leaf_factor = factors[leaf_mode];

  DenseMatrix out(csf.dims()[csf.root_mode()], rank);
  const std::int64_t n_slices = static_cast<std::int64_t>(csf.num_slices());

#pragma omp parallel
  {
    // One accumulation buffer per tree level ("only R words of
    // intermediate storage" per level, §VII).
    std::vector<std::vector<value_t>> tmp(n_levels,
                                          std::vector<value_t>(rank));
    // Explicit DFS over the slice subtree: (level, node, child cursor).
    struct Frame {
      index_t level;
      offset_t node;
      offset_t cursor;
    };
    std::vector<Frame> stack;

#pragma omp for schedule(static)
    for (std::int64_t s = 0; s < n_slices; ++s) {
      auto yrow = out.row(csf.node_index(0, static_cast<offset_t>(s)));
      // Iterative post-order walk: accumulate children into tmp[level],
      // scale by the node's factor row, add into the parent accumulator.
      stack.clear();
      stack.push_back({0, static_cast<offset_t>(s), 0});
      std::fill(tmp[0].begin(), tmp[0].end(), 0.0F);
      while (!stack.empty()) {
        Frame& f = stack.back();
        const offset_t begin = csf.child_begin(f.level, f.node);
        const offset_t end = csf.child_end(f.level, f.node);
        if (f.level == n_levels - 1) {
          // Fiber: accumulate the leaves (Alg. 3 line 11).
          auto& acc = tmp[f.level];
          std::fill(acc.begin(), acc.end(), 0.0F);
          for (offset_t z = begin; z < end; ++z) {
            const value_t v = csf.value(z);
            const auto crow = leaf_factor.row(csf.leaf_index(z));
            for (rank_t r = 0; r < rank; ++r) acc[r] += v * crow[r];
          }
          // Scale by this fiber's own row and pass to the parent.
          if (f.level > 0) {
            const auto brow =
                factors[order[f.level]].row(csf.node_index(f.level, f.node));
            auto& parent = tmp[f.level - 1];
            for (rank_t r = 0; r < rank; ++r) parent[r] += acc[r] * brow[r];
          } else {
            for (rank_t r = 0; r < rank; ++r) yrow[r] += acc[r];
          }
          stack.pop_back();
          continue;
        }
        if (f.cursor == 0) std::fill(tmp[f.level].begin(), tmp[f.level].end(), 0.0F);
        if (begin + f.cursor < end) {
          const offset_t child = begin + f.cursor;
          ++f.cursor;
          stack.push_back({static_cast<index_t>(f.level + 1), child, 0});
          if (f.level + 1 < n_levels - 1) {
            // interior child: its accumulator is reset on first visit
          }
          continue;
        }
        // All children done: scale and propagate upward.
        if (f.level > 0) {
          const auto row =
              factors[order[f.level]].row(csf.node_index(f.level, f.node));
          auto& parent = tmp[f.level - 1];
          const auto& acc = tmp[f.level];
          for (rank_t r = 0; r < rank; ++r) parent[r] += acc[r] * row[r];
        } else {
          const auto& acc = tmp[0];
          for (rank_t r = 0; r < rank; ++r) yrow[r] += acc[r];
        }
        stack.pop_back();
      }
    }
  }
  return out;
}

DenseMatrix mttkrp_csl_cpu(const CslTensor& csl,
                           const std::vector<DenseMatrix>& factors) {
  check_factors(csl.dims(), factors);
  const rank_t rank = factors.front().cols();
  const ModeOrder& order = csl.mode_order();
  const index_t n_other = csl.order() - 1;
  DenseMatrix out(csl.dims()[csl.root_mode()], rank);
  const std::int64_t n_slices = static_cast<std::int64_t>(csl.num_slices());

#pragma omp parallel
  {
    std::vector<value_t> prod(rank);
#pragma omp for schedule(static)
    for (std::int64_t s = 0; s < n_slices; ++s) {
      auto yrow = out.row(csl.slice_index(static_cast<offset_t>(s)));
      for (offset_t z = csl.slice_begin(static_cast<offset_t>(s));
           z < csl.slice_end(static_cast<offset_t>(s)); ++z) {
        const value_t v = csl.value(z);
        for (rank_t r = 0; r < rank; ++r) prod[r] = v;
        for (index_t p = 0; p < n_other; ++p) {
          const auto row = factors[order[p + 1]].row(csl.nz_index(p, z));
          for (rank_t r = 0; r < rank; ++r) prod[r] *= row[r];
        }
        for (rank_t r = 0; r < rank; ++r) yrow[r] += prod[r];
      }
    }
  }
  return out;
}

}  // namespace bcsf
