// Plain GPU-CSF kernel: the direct CPU-to-GPU port of SPLATT's CSF
// MTTKRP that §IV uses as the starting point.  One thread block per
// slice, whole fibers per warp, no splitting -- so a heavy fiber pins a
// warp and a heavy slice pins a block, producing exactly the Table II
// imbalance signatures (nell2 and darpa in particular).
#include "kernels/bcsf_engine.hpp"
#include "kernels/mttkrp.hpp"

namespace bcsf {

GpuMttkrpResult mttkrp_csf_gpu(const CsfTensor& csf,
                               const std::vector<DenseMatrix>& factors,
                               const DeviceModel& device) {
  BcsfOptions opts;
  opts.fiber_split = false;
  opts.slice_split = false;
  const BcsfTensor unsplit = build_bcsf_from_csf(csf, opts);
  return detail::run_bcsf_engine(unsplit, factors, device, "csf-gpu");
}

}  // namespace bcsf
