#include "kernels/splatt.hpp"

#include <algorithm>

#include "kernels/mttkrp.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace bcsf {

SplattAllmode::SplattAllmode(const SparseTensor& tensor, SplattOptions opts)
    : opts_(opts) {
  BCSF_CHECK(!opts.tiling || opts.leaf_tiles >= 1,
             "SplattAllmode: leaf_tiles must be >= 1");
  Timer timer;
  csfs_.reserve(tensor.order());
  for (index_t mode = 0; mode < tensor.order(); ++mode) {
    csfs_.push_back(build_csf(tensor, mode));
  }
  // Tiling is a traversal-time strategy over the same CSF arrays; SPLATT
  // additionally reorders for tiles, which we charge as one extra pass.
  preprocessing_seconds_ = timer.seconds();
  if (opts_.tiling) {
    preprocessing_seconds_ *= 1.0 + 1.0 / static_cast<double>(tensor.order());
  }
}

DenseMatrix SplattAllmode::mttkrp(index_t mode,
                                  const std::vector<DenseMatrix>& factors) const {
  const CsfTensor& csf = csfs_.at(mode);
  if (opts_.tiling) {
    return mttkrp_csf_cpu_tiled(csf, factors, opts_.leaf_tiles);
  }
  return mttkrp_csf_cpu(csf, factors);
}

DenseMatrix mttkrp_csf_cpu_tiled(const CsfTensor& csf,
                                 const std::vector<DenseMatrix>& factors,
                                 index_t tiles) {
  check_factors(csf.dims(), factors);
  BCSF_CHECK(tiles >= 1, "mttkrp_csf_cpu_tiled: tiles must be >= 1");
  const rank_t rank = factors.front().cols();
  const ModeOrder& order = csf.mode_order();
  const index_t n_levels = csf.node_levels();
  const index_t fiber_level = n_levels - 1;
  const index_t leaf_mode = order.back();
  const index_t leaf_dim = csf.dims()[leaf_mode];
  const DenseMatrix& leaf_factor = factors[leaf_mode];
  const index_t tile_width = std::max<index_t>(1, ceil_div(leaf_dim, tiles));

  DenseMatrix out(csf.dims()[csf.root_mode()], rank);
  const std::int64_t n_slices = static_cast<std::int64_t>(csf.num_slices());

  // One pass per leaf tile: each pass touches only leaf-factor rows inside
  // the tile, bounding the working set (the point of SPLATT's tiling).
  // Correct for any order because a fiber's partial sums distribute over
  // leaf subsets, exactly like fbr-split.
  for (index_t tile = 0; tile < tiles; ++tile) {
    const index_t k_lo = tile * tile_width;
    const index_t k_hi =
        std::min<index_t>(leaf_dim, static_cast<index_t>(k_lo + tile_width));
    if (k_lo >= leaf_dim) break;

#pragma omp parallel
    {
      std::vector<value_t> tmp(rank);
      std::vector<value_t> path(rank);
#pragma omp for schedule(static)
      for (std::int64_t s = 0; s < n_slices; ++s) {
        auto yrow = out.row(csf.node_index(0, static_cast<offset_t>(s)));
        // Enumerate this slice's fibers by walking the pointer chain, and
        // process only leaves inside [k_lo, k_hi).
        offset_t fbr_begin = csf.child_begin(0, static_cast<offset_t>(s));
        offset_t fbr_end = csf.child_end(0, static_cast<offset_t>(s));
        for (index_t l = 1; l + 1 < n_levels; ++l) {
          fbr_begin = csf.level_pointers(l)[fbr_begin];
          fbr_end = csf.level_pointers(l)[fbr_end];
        }
        if (n_levels == 1) {
          fbr_begin = static_cast<offset_t>(s);
          fbr_end = fbr_begin + 1;
        }
        for (offset_t f = fbr_begin; f < fbr_end; ++f) {
          std::fill(tmp.begin(), tmp.end(), 0.0F);
          bool any = false;
          for (offset_t z = csf.child_begin(fiber_level, f);
               z < csf.child_end(fiber_level, f); ++z) {
            const index_t k = csf.leaf_index(z);
            if (k < k_lo || k >= k_hi) continue;
            any = true;
            const value_t v = csf.value(z);
            const auto crow = leaf_factor.row(k);
            for (rank_t r = 0; r < rank; ++r) tmp[r] += v * crow[r];
          }
          if (!any) continue;
          // Multiply the ancestor rows (levels fiber..1).  Ancestor
          // coordinates are recovered by a binary search up the pointer
          // chain -- the tiled traversal does not keep a DFS path.
          for (rank_t r = 0; r < rank; ++r) path[r] = tmp[r];
          offset_t node = f;
          for (index_t level = fiber_level; level >= 1; --level) {
            const auto row =
                factors[order[level]].row(csf.node_index(level, node));
            for (rank_t r = 0; r < rank; ++r) path[r] *= row[r];
            if (level > 1) {
              const offset_vec& ptr = csf.level_pointers(level - 1);
              node = static_cast<offset_t>(
                         std::upper_bound(ptr.begin(), ptr.end(), node) -
                         ptr.begin()) -
                     1;
            }
          }
          for (rank_t r = 0; r < rank; ++r) yrow[r] += path[r];
        }
      }
    }
  }
  return out;
}

}  // namespace bcsf
