// Analytic performance model of the paper's CPU platform (a two-socket
// Intel Xeon E5-2680 v4 "Broadwell" server, 28 cores, 2.4 GHz, 35 MB L3 --
// §VI-A) used for the cross-platform speedup figures (11, 12, 13).
//
// This environment has one core, so 28-thread wall-clock cannot be
// measured; instead, kernels are costed with a roofline-style model:
//   time = max(compute, memory traffic / bandwidth) * imbalance + overhead
// where the imbalance factor comes from the *actual* static partition of
// slices over threads (SPLATT's scheduling), and the factor-row miss
// fraction from the measured working set versus the L3.  The CPU kernels
// themselves remain real runnable OpenMP code (mttkrp_cpu.cpp); this file
// only prices them at 28-core scale.
#pragma once

#include <string>

#include "formats/csf.hpp"
#include "formats/hicoo.hpp"
#include "util/types.hpp"

namespace bcsf {

struct CpuModel {
  std::string name = "2x E5-2680v4 (Broadwell)";
  unsigned cores = 28;
  double freq_ghz = 2.4;
  /// Effective fp32 FLOP/cycle/core on irregular gather-heavy code
  /// (far below the 32 FLOP/cycle AVX2 peak: strided row gathers,
  /// short dependent chains, branchy tree walks).
  double flops_per_cycle = 1.0;
  /// Sustained bandwidth for irregular access (well below the two-socket
  /// STREAM number; random 128-byte rows waste most of each DRAM burst).
  double mem_bw_gbps = 45.0;
  double l3_bytes = 35.0 * 1024 * 1024 * 2;  ///< both sockets
  /// Per-parallel-region overhead (fork/join, barriers), seconds.
  double parallel_overhead_s = 15e-6;

  static CpuModel broadwell();
};

struct CpuEstimate {
  double seconds = 0.0;
  double gflops = 0.0;
  double imbalance = 1.0;       ///< max-thread work over mean-thread work
  double traffic_bytes = 0.0;
  double flops = 0.0;
};

/// SPLATT CSF-MTTKRP at 28 cores.  `tiled` prices the cache-blocking
/// variant: lower leaf-factor miss traffic but one extra structure pass
/// per leaf tile -- which is why tiling *hurts* on fiber-dominated tensors
/// (the paper's Fig. 11 vs Fig. 12 gap).
CpuEstimate estimate_splatt(const CsfTensor& csf, rank_t rank,
                            const CpuModel& cpu, bool tiled,
                            index_t leaf_tiles = 16);

/// HiCOO MTTKRP at 28 cores: compressed index traffic, blockwise locality,
/// but per-block overhead and coordinate unpacking on every nonzero.
CpuEstimate estimate_hicoo(const HicooTensor& hicoo, index_t mode,
                           rank_t rank, const CpuModel& cpu);

}  // namespace bcsf
