// Shared plumbing for the simulated GPU kernels: an address space with one
// region per logical array, an L2 cache pass, and flop/atomic counters.
//
// Only *row* accesses (factor-matrix rows and output rows) go through the
// cache model: index/value streams are perfectly sequential and prefetch
// to near-100% hit rates on real hardware, so they are folded into the
// fixed per-nonzero issue costs instead (this is what lets darpa's 23M-row
// leaf factor drive the simulated L2 hit rate to the single digits, as in
// Table II).
#pragma once

#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "gpusim/cache.hpp"
#include "gpusim/device.hpp"
#include "gpusim/metrics.hpp"
#include "linalg/dense_matrix.hpp"
#include "util/types.hpp"

namespace bcsf {

/// Memoized SimReports for one immutable (sparsity structure, device,
/// schedule) triple, keyed by factor rank.
///
/// The whole cost model is value-independent: the launch geometry, the
/// per-warp cycle attribution, the L2 access sequence and the SM
/// scheduler all depend only on the index structure, the rank and the
/// device -- never on factor or tensor VALUES.  So for a fixed plan,
/// every execute at the same rank recomputes a bit-identical SimReport.
/// A GPU plan owns one SimMemo and threads it into its kernel calls: the
/// first execute per rank runs the costed pass (cache sim + scheduler)
/// and stores the report; every repeat takes the numeric-only pass and
/// reuses it.  This is what makes repeat executes on the serving path
/// pay only for arithmetic -- the cost model is paid once per
/// (plan, rank), not once per request (DESIGN.md §8).
///
/// Owners must keep the underlying structure fixed for the memo's
/// lifetime (already the plan contract: plans are immutable snapshots of
/// their tensor).  Thread-safe; racing first executes simulate
/// redundantly and store identical values, so the race is benign.
class SimMemo {
 public:
  /// Copies the cached report for `rank` into `*out`; false if this rank
  /// has not been simulated yet (the caller must simulate and store()).
  bool find(rank_t rank, SimReport* out) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& entry : entries_) {
      if (entry.first == rank) {
        *out = entry.second;
        return true;
      }
    }
    return false;
  }

  void store(rank_t rank, const SimReport& report) {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& entry : entries_) {
      if (entry.first == rank) return;  // benign race: identical values
    }
    entries_.emplace_back(rank, report);
  }

 private:
  mutable std::mutex mu_;
  // Tiny in practice: one entry per rank the owner has served (rank R
  // for MTTKRP/FIT traffic, rank 1 for TTV), so linear scan beats a map.
  std::vector<std::pair<rank_t, SimReport>> entries_;
};

class GpuKernelContext {
 public:
  explicit GpuKernelContext(const DeviceModel& device)
      : device_(device),
        cache_(device.l2_bytes, device.l2_line_bytes, device.l2_assoc) {}

  unsigned add_region(const std::string& name) {
    return space_.add_region(name);
  }

  /// Touches the `rank`-float row `row` of `region`; returns missed lines.
  unsigned touch_row(unsigned region, index_t row, rank_t rank) {
    const std::uint64_t bytes_per_row =
        static_cast<std::uint64_t>(rank) * sizeof(value_t);
    return cache_.access_range(space_.addr(region, row * bytes_per_row),
                               static_cast<unsigned>(bytes_per_row));
  }

  double l2_hit_rate_pct() const { return cache_.hit_rate_pct(); }
  const DeviceModel& device() const { return device_; }

 private:
  const DeviceModel& device_;
  AddressSpace space_;
  CacheSim cache_;
};

/// Registers one cache region per factor matrix plus one for the output
/// row space; returns the region ids (regions[m] for factor m,
/// regions.back() for the output).
inline std::vector<unsigned> register_factor_regions(GpuKernelContext& ctx,
                                                     index_t order_) {
  std::vector<unsigned> regions;
  regions.reserve(order_ + 1);
  for (index_t m = 0; m < order_; ++m) {
    regions.push_back(ctx.add_region("factor" + std::to_string(m)));
  }
  regions.push_back(ctx.add_region("output"));
  return regions;
}

}  // namespace bcsf
