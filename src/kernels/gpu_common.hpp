// Shared plumbing for the simulated GPU kernels: an address space with one
// region per logical array, an L2 cache pass, and flop/atomic counters.
//
// Only *row* accesses (factor-matrix rows and output rows) go through the
// cache model: index/value streams are perfectly sequential and prefetch
// to near-100% hit rates on real hardware, so they are folded into the
// fixed per-nonzero issue costs instead (this is what lets darpa's 23M-row
// leaf factor drive the simulated L2 hit rate to the single digits, as in
// Table II).
#pragma once

#include <string>
#include <vector>

#include "gpusim/cache.hpp"
#include "gpusim/device.hpp"
#include "linalg/dense_matrix.hpp"
#include "util/types.hpp"

namespace bcsf {

class GpuKernelContext {
 public:
  explicit GpuKernelContext(const DeviceModel& device)
      : device_(device),
        cache_(device.l2_bytes, device.l2_line_bytes, device.l2_assoc) {}

  unsigned add_region(const std::string& name) {
    return space_.add_region(name);
  }

  /// Touches the `rank`-float row `row` of `region`; returns missed lines.
  unsigned touch_row(unsigned region, index_t row, rank_t rank) {
    const std::uint64_t bytes_per_row =
        static_cast<std::uint64_t>(rank) * sizeof(value_t);
    return cache_.access_range(space_.addr(region, row * bytes_per_row),
                               static_cast<unsigned>(bytes_per_row));
  }

  double l2_hit_rate_pct() const { return cache_.hit_rate_pct(); }
  const DeviceModel& device() const { return device_; }

 private:
  const DeviceModel& device_;
  AddressSpace space_;
  CacheSim cache_;
};

/// Registers one cache region per factor matrix plus one for the output
/// row space; returns the region ids (regions[m] for factor m,
/// regions.back() for the output).
inline std::vector<unsigned> register_factor_regions(GpuKernelContext& ctx,
                                                     index_t order_) {
  std::vector<unsigned> regions;
  regions.reserve(order_ + 1);
  for (index_t m = 0; m < order_; ++m) {
    regions.push_back(ctx.add_region("factor" + std::to_string(m)));
  }
  regions.push_back(ctx.add_region("output"));
  return regions;
}

}  // namespace bcsf
