#include "kernels/cpu_model.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "util/error.hpp"

namespace bcsf {

CpuModel CpuModel::broadwell() { return CpuModel{}; }

namespace {

/// Fraction of factor-row accesses expected to miss the L3, from the
/// distinct-row working set of that factor.
double miss_fraction(double distinct_rows, rank_t rank, const CpuModel& cpu) {
  const double row_bytes = static_cast<double>(rank) * sizeof(value_t);
  const double working_set = distinct_rows * row_bytes;
  // Smooth ramp: fully cached when the set fits in a third of the L3
  // (other streams compete), fully missing at 8x the L3.
  const double lo = cpu.l3_bytes / 3.0;
  const double hi = cpu.l3_bytes * 8.0;
  if (working_set <= lo) return 0.02;
  if (working_set >= hi) return 0.95;
  return 0.02 + 0.93 * (working_set - lo) / (hi - lo);
}

/// Imbalance of a static contiguous partition of per-slice work.
double static_imbalance(const offset_vec& slice_work, unsigned threads) {
  if (slice_work.empty()) return 1.0;
  offset_t total = 0;
  for (offset_t w : slice_work) total += w;
  if (total == 0) return 1.0;
  const std::size_t per_thread =
      ceil_div<std::size_t>(slice_work.size(), threads);
  offset_t max_chunk = 0;
  for (std::size_t t0 = 0; t0 < slice_work.size(); t0 += per_thread) {
    const std::size_t t1 = std::min(t0 + per_thread, slice_work.size());
    offset_t chunk = 0;
    for (std::size_t s = t0; s < t1; ++s) chunk += slice_work[s];
    max_chunk = std::max(max_chunk, chunk);
  }
  const double mean =
      static_cast<double>(total) / std::min<double>(threads, slice_work.size());
  return std::max(1.0, static_cast<double>(max_chunk) / mean);
}

CpuEstimate finish(double flops, double traffic, double imbalance,
                   const CpuModel& cpu, double extra_seconds) {
  CpuEstimate e;
  e.flops = flops;
  e.traffic_bytes = traffic;
  e.imbalance = imbalance;
  const double compute_s =
      flops / (cpu.cores * cpu.freq_ghz * 1e9 * cpu.flops_per_cycle);
  const double memory_s = traffic / (cpu.mem_bw_gbps * 1e9);
  e.seconds = std::max(compute_s, memory_s) * imbalance +
              cpu.parallel_overhead_s + extra_seconds;
  e.gflops = e.seconds > 0.0 ? flops / e.seconds / 1e9 : 0.0;
  return e;
}

}  // namespace

CpuEstimate estimate_splatt(const CsfTensor& csf, rank_t rank,
                            const CpuModel& cpu, bool tiled,
                            index_t leaf_tiles) {
  const double m = static_cast<double>(csf.nnz());
  const double f = static_cast<double>(csf.num_fibers());
  const double s = static_cast<double>(csf.num_slices());
  const double row_bytes = static_cast<double>(rank) * sizeof(value_t);

  // Flops: Eq. (8) factoring -- 2R per nonzero, 2R per fiber, R per slice.
  const double flops = rank * (2.0 * m + 2.0 * f + s);

  // Distinct leaf rows bounds the leaf factor's working set.
  const index_t leaf_mode = csf.mode_order().back();
  const double leaf_rows = std::min<double>(csf.dims()[leaf_mode], m);
  double leaf_miss = miss_fraction(leaf_rows, rank, cpu);
  double structure_passes = 1.0;
  if (tiled) {
    // Tiling caps the leaf working set per pass but walks the fiber
    // structure once per tile; on tensors where F ~ M that pointer
    // traffic dwarfs the locality gain (the paper's tiling pathology).
    leaf_miss =
        miss_fraction(leaf_rows / std::max<index_t>(1, leaf_tiles), rank, cpu);
    structure_passes = static_cast<double>(leaf_tiles);
  }

  // Traffic: index/pointer arrays per structure pass, leaf value+index
  // once, factor rows by miss fraction, fiber-level rows similarly.
  const double fiber_mode_rows =
      std::min<double>(csf.order() >= 2
                           ? csf.dims()[csf.mode_order()[csf.node_levels() - 1]]
                           : 1.0,
                       f);
  const double fiber_miss = miss_fraction(fiber_mode_rows, rank, cpu);
  const double structure_bytes = (2.0 * s + 2.0 * f) * kIndexBytes;
  double traffic = structure_passes * structure_bytes +
                   m * (kIndexBytes + sizeof(value_t)) * structure_passes +
                   m * row_bytes * leaf_miss +
                   f * row_bytes * fiber_miss * structure_passes +
                   s * row_bytes;  // output rows

  // Imbalance from the real static slice partition.
  offset_vec slice_work(csf.num_slices());
  for (offset_t slc = 0; slc < csf.num_slices(); ++slc) {
    slice_work[slc] = csf.subtree_nnz(0, slc);
  }
  const double imbalance = static_imbalance(slice_work, cpu.cores);
  const double extra =
      tiled ? structure_passes * cpu.parallel_overhead_s : 0.0;
  return finish(flops, traffic, imbalance, cpu, extra);
}

CpuEstimate estimate_hicoo(const HicooTensor& hicoo, index_t mode,
                           rank_t rank, const CpuModel& cpu) {
  const double m = static_cast<double>(hicoo.nnz());
  const double nb = static_cast<double>(hicoo.num_blocks());
  const double row_bytes = static_cast<double>(rank) * sizeof(value_t);
  const double order = hicoo.order();

  // COO-style compute (no factoring): order ops per nonzero per column,
  // plus per-nonzero coordinate unpacking charged as extra "flops".
  const double flops = rank * order * m;
  const double unpack_equiv = 2.0 * order * m;  // shifts/ors per nonzero

  // Traffic: compressed indices (order bytes/nnz + block headers), values,
  // factor rows with blockwise locality (a 128^N block reuses rows well,
  // so miss fractions are scaled down), output rows per block.
  double factor_traffic = 0.0;
  for (index_t f = 0; f < hicoo.order(); ++f) {
    if (f == mode) continue;
    const double rows = std::min<double>(hicoo.dims()[f], m);
    factor_traffic +=
        m * row_bytes * miss_fraction(rows, rank, cpu) * 0.5;
  }
  const double traffic = m * (order + sizeof(value_t)) +
                         nb * (1 + order) * kIndexBytes +
                         factor_traffic + nb * row_bytes;

  // Imbalance across output-block groups (the conflict-free schedule).
  std::vector<offset_t> group_work;
  index_t prev = kInvalidIndex;
  for (offset_t b = 0; b < hicoo.num_blocks(); ++b) {
    const index_t g = hicoo.block_coord(mode, b);
    if (g != prev) {
      group_work.push_back(0);
      prev = g;
    }
    group_work.back() += hicoo.block_end(b) - hicoo.block_begin(b);
  }
  const double imbalance = static_imbalance(group_work, cpu.cores);
  return finish(flops + unpack_equiv, traffic, imbalance, cpu,
                nb * 40e-9 / cpu.cores);  // per-block scheduling overhead
}

}  // namespace bcsf
