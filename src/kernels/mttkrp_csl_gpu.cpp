// CSL GPU kernel (Alg. 4): compressed slices are processed in warp-sized
// *segments* -- a slice with more than `csl_segment_nnz` nonzeros is split
// across several warps (the same balancing insight as slc-split: HB-CSF's
// CSL population can still contain big slices, e.g. flickr slices with
// hundreds of singleton fibers).  Each nonzero multiplies every non-root
// factor row directly -- no fiber indirection, no fiber-local reduction.
// Single-segment slices write their output row without atomics; split
// slices combine with global atomics.
#include <algorithm>
#include <vector>

#include "gpusim/scheduler.hpp"
#include "kernels/gpu_common.hpp"
#include "kernels/mttkrp.hpp"
#include "util/error.hpp"

namespace bcsf {

GpuMttkrpResult mttkrp_csl_gpu(const CslTensor& csl,
                               const std::vector<DenseMatrix>& factors,
                               const DeviceModel& device) {
  check_factors(csl.dims(), factors);
  const rank_t rank = factors.front().cols();
  const index_t root = csl.root_mode();
  const ModeOrder& order = csl.mode_order();
  const index_t n_other = csl.order() - 1;

  GpuKernelContext ctx(device);
  const std::vector<unsigned> regions = register_factor_regions(ctx, csl.order());
  const unsigned out_region = regions.back();

  DenseMatrix out(csl.dims()[root], rank);
  KernelLaunch launch;
  launch.name = "csl-gpu";
  launch.warps_per_block = device.warps_per_block();

  // Segment table: (slice, z_begin, z_end, atomic).
  struct Segment {
    offset_t slice, z_begin, z_end;
    bool atomic;
  };
  const auto seg_nnz = static_cast<offset_t>(device.csl_segment_nnz);
  std::vector<Segment> segments;
  for (offset_t s = 0; s < csl.num_slices(); ++s) {
    const offset_t begin = csl.slice_begin(s);
    const offset_t end = csl.slice_end(s);
    const bool split = (end - begin) > seg_nnz;
    for (offset_t z = begin; z < end; z += seg_nnz) {
      segments.push_back({s, z, std::min(z + seg_nnz, end), split});
    }
  }

  const offset_t wpb = launch.warps_per_block;
  std::vector<value_t> acc(rank);
  std::vector<value_t> prod(rank);

  for (offset_t g0 = 0; g0 < segments.size(); g0 += wpb) {
    const offset_t g1 = std::min<offset_t>(g0 + wpb, segments.size());
    BlockWork bw;
    bw.warp_cycles.assign(static_cast<std::size_t>(g1 - g0), 0.0);

    for (offset_t g = g0; g < g1; ++g) {
      const Segment& seg = segments[g];
      double& cost = bw.warp_cycles[g - g0];
      const index_t out_row = csl.slice_index(seg.slice);
      std::fill(acc.begin(), acc.end(), 0.0F);
      for (offset_t z = seg.z_begin; z < seg.z_end; ++z) {
        const value_t v = csl.value(z);
        for (rank_t r = 0; r < rank; ++r) prod[r] = v;
        unsigned misses = 0;
        for (index_t p = 0; p < n_other; ++p) {
          const index_t mode = order[p + 1];
          const index_t coord = csl.nz_index(p, z);
          misses += ctx.touch_row(regions[mode], coord, rank);
          const auto row = factors[mode].row(coord);
          for (rank_t r = 0; r < rank; ++r) prod[r] *= row[r];
        }
        for (rank_t r = 0; r < rank; ++r) acc[r] += prod[r];
        cost += device.cycles_per_nnz_csl + misses * device.cycles_l2_miss;
        launch.total_flops += static_cast<double>(n_other + 1) * rank;
      }
      const unsigned out_misses = ctx.touch_row(out_region, out_row, rank);
      cost += device.cycles_per_slice + out_misses * device.cycles_l2_miss;
      if (seg.atomic) {
        cost += device.cycles_atomic_global;
        ++launch.atomic_ops;
      }
      auto yrow = out.row(out_row);
      for (rank_t r = 0; r < rank; ++r) yrow[r] += acc[r];
    }
    launch.blocks.push_back(std::move(bw));
  }

  launch.l2_hit_rate_pct = ctx.l2_hit_rate_pct();
  return {std::move(out), simulate_launch(device, launch)};
}

}  // namespace bcsf
