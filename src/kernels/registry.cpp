#include "kernels/registry.hpp"

#include "formats/csf.hpp"
#include "formats/hbcsf.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace bcsf {

const char* kind_name(GpuKernelKind kind) {
  switch (kind) {
    case GpuKernelKind::kCsf: return "GPU-CSF";
    case GpuKernelKind::kBcsf: return "B-CSF";
    case GpuKernelKind::kHbcsf: return "HB-CSF";
    case GpuKernelKind::kCoo: return "ParTI-COO";
    case GpuKernelKind::kFcoo: return "F-COO";
  }
  return "?";
}

TimedGpuResult build_and_run(GpuKernelKind kind, const SparseTensor& tensor,
                             index_t mode,
                             const std::vector<DenseMatrix>& factors,
                             const GpuRunOptions& opts) {
  TimedGpuResult out;
  Timer timer;
  switch (kind) {
    case GpuKernelKind::kCsf: {
      const CsfTensor csf = build_csf(tensor, mode);
      out.build_seconds = timer.seconds();
      out.run = mttkrp_csf_gpu(csf, factors, opts.device);
      return out;
    }
    case GpuKernelKind::kBcsf: {
      const BcsfTensor b = build_bcsf(tensor, mode, opts.bcsf);
      out.build_seconds = timer.seconds();
      out.run = mttkrp_bcsf_gpu(b, factors, opts.device);
      return out;
    }
    case GpuKernelKind::kHbcsf: {
      const HbcsfTensor h = build_hbcsf(tensor, mode, opts.bcsf);
      out.build_seconds = timer.seconds();
      out.run = mttkrp_hbcsf_gpu(h, factors, opts.device);
      return out;
    }
    case GpuKernelKind::kCoo: {
      // COO needs no construction beyond the tensor itself.
      out.build_seconds = timer.seconds();
      out.run = mttkrp_coo_gpu(tensor, mode, factors, opts.device);
      return out;
    }
    case GpuKernelKind::kFcoo: {
      const FcooTensor f = build_fcoo(tensor, mode, opts.fcoo);
      out.build_seconds = timer.seconds();
      out.run = mttkrp_fcoo_gpu(f, factors, opts.device);
      return out;
    }
  }
  BCSF_CHECK(false, "build_and_run: unknown kernel kind");
  return out;
}

std::vector<DenseMatrix> make_random_factors(const std::vector<index_t>& dims,
                                             rank_t rank, std::uint64_t seed) {
  std::vector<DenseMatrix> factors;
  factors.reserve(dims.size());
  for (std::size_t m = 0; m < dims.size(); ++m) {
    DenseMatrix f(dims[m], rank);
    f.randomize(seed + m, 0.0F, 1.0F);
    factors.push_back(std::move(f));
  }
  return factors;
}

}  // namespace bcsf
