#include "kernels/registry.hpp"

#include "core/format_registry.hpp"

namespace bcsf {

const char* kind_format_name(GpuKernelKind kind) {
  switch (kind) {
    case GpuKernelKind::kCsf: return "gpu-csf";
    case GpuKernelKind::kBcsf: return "bcsf";
    case GpuKernelKind::kHbcsf: return "hbcsf";
    case GpuKernelKind::kCoo: return "coo";
    case GpuKernelKind::kFcoo: return "fcoo";
  }
  return "?";
}

const char* kind_name(GpuKernelKind kind) {
  return FormatRegistry::instance()
      .at(kind_format_name(kind))
      .display_name.c_str();
}

TimedGpuResult build_and_run(GpuKernelKind kind, const SparseTensor& tensor,
                             index_t mode,
                             const std::vector<DenseMatrix>& factors,
                             const GpuRunOptions& opts) {
  PlanOptions plan_opts;
  plan_opts.device = opts.device;
  plan_opts.bcsf = opts.bcsf;
  plan_opts.fcoo = opts.fcoo;
  const PlanPtr plan = FormatRegistry::instance().create(
      kind_format_name(kind), tensor, mode, plan_opts);

  TimedGpuResult out;
  out.build_seconds = plan->build_seconds();
  PlanRunResult r = plan->run(factors);
  out.run.output = std::move(r.output);
  out.run.report = std::move(r.report);
  return out;
}

}  // namespace bcsf
