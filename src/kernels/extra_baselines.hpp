// Additional MTTKRP algorithms discussed in the paper's related work
// (§VII), implemented as runnable CPU baselines:
//
//  * GigaTensor-style COO MTTKRP [11]: per-nonzero Hadamard products
//    without the fiber factoring of Eq. (8) -- the "5MR operations"
//    formulation, here realized column-by-column (Eq. 5).
//  * DFacTo-style MTTKRP [10]: one rank column at a time via two sparse
//    matrix-vector products -- "DFacTo computes one column at a time with
//    two SpMV operations, which requires 2R(M + F) operations" and a
//    large intermediate (one value per fiber).
//  * SPLATT ONEMODE: MTTKRP for a mode *other than* a CSF tree's root by
//    traversing the foreign-rooted tree and scattering contributions --
//    the setting the paper avoids via ALLMODE ("Except for the root mode,
//    MTTKRP for other modes is performed via recursion, which causes
//    performance degradation", §VI-A).
#pragma once

#include <vector>

#include "formats/csf.hpp"
#include "linalg/dense_matrix.hpp"
#include "tensor/sparse_tensor.hpp"

namespace bcsf {

/// GigaTensor-style COO MTTKRP (Eq. 5): column-at-a-time Hadamard
/// accumulation.  Same result as Algorithm 2, different loop structure
/// and operation count (R passes over the nonzeros).
DenseMatrix mttkrp_gigatensor_cpu(const SparseTensor& tensor, index_t mode,
                                  const std::vector<DenseMatrix>& factors);

/// DFacTo-style MTTKRP for third-order tensors: for each rank column r,
/// SpMV-1 reduces each fiber against the leaf factor column, SpMV-2
/// scatters fiber results scaled by the fiber-mode factor column into the
/// output column.  Requires a CSF rooted at `csf.root_mode()`; the output
/// is for that root mode.  Order-3 only (as DFacTo is).
DenseMatrix mttkrp_dfacto_cpu(const CsfTensor& csf,
                              const std::vector<DenseMatrix>& factors);

/// SPLATT ONEMODE: computes mode-`target` MTTKRP using a CSF rooted at a
/// *different* mode.  Walks the tree once, forming for every nonzero the
/// product of all factor rows except target's, scattered into the target
/// coordinate's output row.  Works for any order; slower than the
/// root-mode kernel, which is exactly the paper's point.
DenseMatrix mttkrp_csf_cpu_onemode(const CsfTensor& csf, index_t target,
                                   const std::vector<DenseMatrix>& factors);

}  // namespace bcsf
