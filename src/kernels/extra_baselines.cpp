#include "kernels/extra_baselines.hpp"

#include <vector>

#include "kernels/mttkrp.hpp"
#include "util/error.hpp"

namespace bcsf {

DenseMatrix mttkrp_gigatensor_cpu(const SparseTensor& tensor, index_t mode,
                                  const std::vector<DenseMatrix>& factors) {
  check_factors(tensor.dims(), factors);
  BCSF_CHECK(mode < tensor.order(), "mttkrp_gigatensor_cpu: bad mode");
  const rank_t rank = factors.front().cols();
  DenseMatrix out(tensor.dim(mode), rank);

  // Column-at-a-time: R sequential passes, each a pure Hadamard
  // accumulation (no fiber factoring) -- GigaTensor's MapReduce shape.
  for (rank_t r = 0; r < rank; ++r) {
    for (offset_t z = 0; z < tensor.nnz(); ++z) {
      value_t prod = tensor.value(z);
      for (index_t m = 0; m < tensor.order(); ++m) {
        if (m == mode) continue;
        prod *= factors[m](tensor.coord(m, z), r);
      }
      out(tensor.coord(mode, z), r) += prod;
    }
  }
  return out;
}

DenseMatrix mttkrp_dfacto_cpu(const CsfTensor& csf,
                              const std::vector<DenseMatrix>& factors) {
  check_factors(csf.dims(), factors);
  BCSF_CHECK(csf.order() == 3, "mttkrp_dfacto_cpu: order-3 only (as DFacTo)");
  const rank_t rank = factors.front().cols();
  const ModeOrder& order = csf.mode_order();
  const DenseMatrix& fiber_factor = factors[order[1]];
  const DenseMatrix& leaf_factor = factors[order[2]];
  const offset_t n_fibers = csf.num_fibers();

  DenseMatrix out(csf.dims()[csf.root_mode()], rank);
  // The intermediate DFacTo is criticized for: one value per fiber per
  // column ("The intermediate storage for DFacTo is large").
  std::vector<value_t> fiber_vals(n_fibers);

  for (rank_t r = 0; r < rank; ++r) {
    // SpMV 1: reduce each fiber's nonzeros against leaf-factor column r.
    for (offset_t f = 0; f < n_fibers; ++f) {
      value_t acc = 0.0F;
      for (offset_t z = csf.child_begin(1, f); z < csf.child_end(1, f); ++z) {
        acc += csf.value(z) * leaf_factor(csf.leaf_index(z), r);
      }
      fiber_vals[f] = acc;
    }
    // SpMV 2: combine fibers of each slice, scaled by the fiber factor.
    for (offset_t s = 0; s < csf.num_slices(); ++s) {
      value_t acc = 0.0F;
      for (offset_t f = csf.child_begin(0, s); f < csf.child_end(0, s); ++f) {
        acc += fiber_vals[f] * fiber_factor(csf.node_index(1, f), r);
      }
      out(csf.node_index(0, s), r) += acc;
    }
  }
  return out;
}

DenseMatrix mttkrp_csf_cpu_onemode(const CsfTensor& csf, index_t target,
                                   const std::vector<DenseMatrix>& factors) {
  check_factors(csf.dims(), factors);
  BCSF_CHECK(target < csf.order(), "mttkrp_csf_cpu_onemode: bad target");
  const rank_t rank = factors.front().cols();
  const ModeOrder& order = csf.mode_order();
  const index_t n_levels = csf.node_levels();
  const index_t leaf_mode = order.back();
  DenseMatrix out(csf.dims()[target], rank);

  if (target == csf.root_mode()) {
    return mttkrp_csf_cpu(csf, factors);  // the fast path
  }

  // Find target's position in the mode ordering.
  index_t target_pos = 0;
  for (index_t p = 0; p < csf.order(); ++p) {
    if (order[p] == target) target_pos = p;
  }

  // Depth-first traversal maintaining, per level, the partial product of
  // the factor rows of all *non-target* modes above the leaf.  For each
  // leaf: multiply in the leaf row (unless the leaf is the target) and
  // scatter into the target coordinate's output row.
  std::vector<std::vector<value_t>> path(n_levels + 1,
                                         std::vector<value_t>(rank, 1.0F));
  struct Frame {
    index_t level;
    offset_t node;
  };
  std::vector<Frame> stack;
  std::vector<index_t> coord(n_levels);  // node coordinate per level

  for (offset_t s = 0; s < csf.num_slices(); ++s) {
    stack.clear();
    stack.push_back({0, s});
    // Recursive preorder; depth is bounded by the tensor order.
    auto walk = [&](auto&& self, index_t level, offset_t node) -> void {
      coord[level] = csf.node_index(level, node);
      auto& here = path[level + 1];
      const auto& above = path[level];
      const index_t mode_here = order[level];
      if (mode_here == target) {
        here = above;  // exclude the target mode's row
      } else {
        const auto row = factors[mode_here].row(coord[level]);
        for (rank_t r = 0; r < rank; ++r) here[r] = above[r] * row[r];
      }
      if (level == n_levels - 1) {
        // Leaves.
        for (offset_t z = csf.child_begin(level, node);
             z < csf.child_end(level, node); ++z) {
          const index_t k = csf.leaf_index(z);
          const value_t v = csf.value(z);
          index_t out_row;
          if (leaf_mode == target) {
            out_row = k;
            auto yrow = out.row(out_row);
            for (rank_t r = 0; r < rank; ++r) yrow[r] += v * here[r];
          } else {
            out_row = coord[target_pos];
            const auto lrow = factors[leaf_mode].row(k);
            auto yrow = out.row(out_row);
            for (rank_t r = 0; r < rank; ++r) {
              yrow[r] += v * here[r] * lrow[r];
            }
          }
        }
        return;
      }
      for (offset_t c = csf.child_begin(level, node);
           c < csf.child_end(level, node); ++c) {
        self(self, level + 1, c);
      }
    };
    walk(walk, 0, s);
  }
  return out;
}

}  // namespace bcsf
