#include "kernels/ttv_fit.hpp"

#include <vector>

#include "kernels/mttkrp.hpp"
#include "util/error.hpp"

namespace bcsf {

void check_vectors(const std::vector<index_t>& dims,
                   const std::vector<DenseMatrix>& vectors) {
  BCSF_CHECK(vectors.size() == dims.size(),
             "ttv: expected " << dims.size() << " mode vectors, got "
                              << vectors.size());
  for (std::size_t m = 0; m < vectors.size(); ++m) {
    BCSF_CHECK(vectors[m].cols() == 1,
               "ttv: mode " << m << " input has " << vectors[m].cols()
                            << " columns, expected a dims[m] x 1 vector");
    BCSF_CHECK(vectors[m].rows() == dims[m],
               "ttv: vector " << m << " has " << vectors[m].rows()
                              << " rows, tensor mode has " << dims[m]);
  }
}

DenseMatrix ttv_reference(const SparseTensor& tensor, index_t mode,
                          const std::vector<DenseMatrix>& vectors) {
  check_vectors(tensor.dims(), vectors);
  BCSF_CHECK(mode < tensor.order(), "ttv_reference: bad mode");
  const index_t rows = tensor.dim(mode);

  std::vector<double> acc(rows, 0.0);
  for (offset_t z = 0; z < tensor.nnz(); ++z) {
    double prod = static_cast<double>(tensor.value(z));
    for (index_t m = 0; m < tensor.order(); ++m) {
      if (m == mode) continue;
      prod *= vectors[m](tensor.coord(m, z), 0);
    }
    acc[tensor.coord(mode, z)] += prod;
  }

  DenseMatrix out(rows, 1);
  for (index_t i = 0; i < rows; ++i) out(i, 0) = static_cast<value_t>(acc[i]);
  return out;
}

DenseMatrix ttv_coo_cpu(const SparseTensor& tensor, index_t mode,
                        const std::vector<DenseMatrix>& vectors) {
  check_vectors(tensor.dims(), vectors);
  BCSF_CHECK(mode < tensor.order(), "ttv_coo_cpu: bad mode");

  // Same no-collision strategy as mttkrp_coo_cpu: group nonzeros by
  // output row, hand contiguous runs to threads.
  SparseTensor sorted = tensor;
  sorted.sort(mode_order_for(mode, tensor.order()));

  const offset_t n = sorted.nnz();
  std::vector<offset_t> slice_start;
  for (offset_t z = 0; z < n; ++z) {
    if (z == 0 || sorted.coord(mode, z) != sorted.coord(mode, z - 1)) {
      slice_start.push_back(z);
    }
  }
  slice_start.push_back(n);
  const std::int64_t n_slices =
      static_cast<std::int64_t>(slice_start.size()) - 1;

  DenseMatrix out(tensor.dim(mode), 1);
#pragma omp parallel for schedule(static)
  for (std::int64_t s = 0; s < n_slices; ++s) {
    value_t sum = 0.0F;
    for (offset_t z = slice_start[s]; z < slice_start[s + 1]; ++z) {
      value_t prod = sorted.value(z);
      for (index_t m = 0; m < sorted.order(); ++m) {
        if (m == mode) continue;
        prod *= vectors[m](sorted.coord(m, z), 0);
      }
      sum += prod;
    }
    out(sorted.coord(mode, slice_start[s]), 0) += sum;
  }
  return out;
}

void ttv_delta_accumulate(std::span<const TensorPtr> deltas, index_t mode,
                          const std::vector<DenseMatrix>& vectors,
                          DenseMatrix& inout) {
  // Rank-1 multi-TTV IS mode-`mode` MTTKRP of rank-1 factors; the delta
  // sweep shares the promote-once/cast-once contract with the MTTKRP
  // variant, so delegating keeps the two paths bitwise-identical.
  if (!deltas.empty()) check_vectors(deltas.front()->dims(), vectors);
  mttkrp_delta_accumulate(deltas, mode, vectors, inout);
}

void ttv_delta_accumulate(std::span<const TensorPtr> deltas, index_t mode,
                          const std::vector<DenseMatrix>& vectors,
                          std::span<double> acc) {
  if (!deltas.empty()) check_vectors(deltas.front()->dims(), vectors);
  mttkrp_delta_accumulate(deltas, mode, vectors, acc);
}

void ttv_delta_accumulate(std::span<const TensorPtr> deltas, index_t mode,
                          const std::vector<DenseMatrix>& vectors,
                          std::span<double> acc, index_t row_begin) {
  if (!deltas.empty()) check_vectors(deltas.front()->dims(), vectors);
  mttkrp_delta_accumulate(deltas, mode, vectors, acc, row_begin);
}

namespace {

/// Shared validation for the fit kernels.
void check_fit_inputs(const SparseTensor& tensor,
                      const std::vector<DenseMatrix>& factors,
                      const std::vector<value_t>* lambda) {
  check_factors(tensor.dims(), factors);
  if (lambda != nullptr) {
    BCSF_CHECK(lambda->size() == static_cast<std::size_t>(
                                     factors.front().cols()),
               "fit_inner: lambda has " << lambda->size() << " entries, rank is "
                                        << factors.front().cols());
  }
}

}  // namespace

double fit_inner_reference(const SparseTensor& tensor,
                           const std::vector<DenseMatrix>& factors,
                           const std::vector<value_t>* lambda) {
  check_fit_inputs(tensor, factors, lambda);
  const rank_t rank = factors.front().cols();
  double inner = 0.0;
  for (offset_t z = 0; z < tensor.nnz(); ++z) {
    double row_sum = 0.0;
    for (rank_t r = 0; r < rank; ++r) {
      double prod = lambda ? static_cast<double>((*lambda)[r]) : 1.0;
      for (index_t m = 0; m < tensor.order(); ++m) {
        prod *= factors[m](tensor.coord(m, z), r);
      }
      row_sum += prod;
    }
    inner += row_sum * static_cast<double>(tensor.value(z));
  }
  return inner;
}

double fit_inner_coo_cpu(const SparseTensor& tensor,
                         const std::vector<DenseMatrix>& factors,
                         const std::vector<value_t>* lambda) {
  check_fit_inputs(tensor, factors, lambda);
  const rank_t rank = factors.front().cols();
  const std::int64_t n = static_cast<std::int64_t>(tensor.nnz());
  double inner = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : inner)
  for (std::int64_t z = 0; z < n; ++z) {
    const offset_t zz = static_cast<offset_t>(z);
    double row_sum = 0.0;
    for (rank_t r = 0; r < rank; ++r) {
      double prod = lambda ? static_cast<double>((*lambda)[r]) : 1.0;
      for (index_t m = 0; m < tensor.order(); ++m) {
        prod *= factors[m](tensor.coord(m, zz), r);
      }
      row_sum += prod;
    }
    inner += row_sum * static_cast<double>(tensor.value(zz));
  }
  return inner;
}

double fit_inner_delta(std::span<const TensorPtr> deltas,
                       const std::vector<DenseMatrix>& factors,
                       const std::vector<value_t>* lambda) {
  double inner = 0.0;
  for (const TensorPtr& chunk : deltas) {
    BCSF_CHECK(chunk != nullptr, "fit_inner_delta: null chunk");
    if (chunk->nnz() == 0) continue;
    inner += fit_inner_reference(*chunk, factors, lambda);
  }
  return inner;
}

}  // namespace bcsf
