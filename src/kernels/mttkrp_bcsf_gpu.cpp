// B-CSF GPU kernel (§IV) and, via a no-split B-CSF, the plain GPU-CSF
// kernel whose load imbalance motivates the paper (Table II).
//
// Launch geometry: one thread block per B-CSF block; fiber segments are
// assigned to the block's warps round-robin.  A warp processes one fiber
// segment at a time: lanes span the R factor columns, the segment's
// nonzeros are consumed serially (tmp[r] += val * C[k][r], Alg. 3 line
// 11), then the fiber's ancestor rows scale the partial result and it is
// combined into the output row -- via shared-memory combine when the
// block owns the slice, via global atomics when slc-split spread the
// slice over several blocks.
#include <vector>

#include "gpusim/scheduler.hpp"
#include "kernels/bcsf_engine.hpp"
#include "kernels/gpu_common.hpp"
#include "kernels/mttkrp.hpp"
#include "util/error.hpp"

namespace bcsf {

namespace detail {

namespace {

// Numeric-only replay of the engine's schedule, used once a SimMemo holds
// this (structure, rank) report: same traversal order, same float
// statements, but no cache model, no per-warp cycle attribution, no
// per-block work lists and no SM scheduler -- repeat executes pay only
// for arithmetic.  MUST stay in numeric lock-step with the costed pass in
// run_bcsf_engine below; the repeat-execute bitwise tests in
// tests/mttkrp_equivalence_test.cpp pin the equivalence.
DenseMatrix bcsf_numeric_pass(const BcsfTensor& bcsf,
                              const std::vector<DenseMatrix>& factors,
                              OutputCombine combine) {
  const CsfTensor& csf = bcsf.csf();
  const rank_t rank = factors.front().cols();
  const ModeOrder& order = csf.mode_order();
  const index_t fiber_level = csf.node_levels() - 1;
  const index_t leaf_mode = order.back();

  DenseMatrix out(csf.dims()[csf.root_mode()], rank);
  std::vector<value_t> tmp(rank);
  std::vector<value_t> block_acc(rank);
  const DenseMatrix& leaf_factor = factors[leaf_mode];

  for (const auto& block : bcsf.blocks()) {
    const index_t out_row = csf.node_index(0, block.slice);
    for (offset_t f = block.fiber_begin; f < block.fiber_end; ++f) {
      std::fill(tmp.begin(), tmp.end(), 0.0F);
      const offset_t z_end = csf.child_end(fiber_level, f);
      for (offset_t z = csf.child_begin(fiber_level, f); z < z_end; ++z) {
        const value_t v = csf.value(z);
        const auto crow = leaf_factor.row(csf.leaf_index(z));
        for (rank_t r = 0; r < rank; ++r) tmp[r] += v * crow[r];
      }
      for (index_t level = fiber_level; level >= 1; --level) {
        const auto row = factors[order[level]].row(bcsf.fiber_coord(level, f));
        for (rank_t r = 0; r < rank; ++r) tmp[r] *= row[r];
      }
      if (combine == OutputCombine::kPerSliceShared) {
        if (f == block.fiber_begin) {
          std::fill(block_acc.begin(), block_acc.end(), 0.0F);
        }
        for (rank_t r = 0; r < rank; ++r) block_acc[r] += tmp[r];
      } else {
        auto yrow = out.row(out_row);
        for (rank_t r = 0; r < rank; ++r) yrow[r] += tmp[r];
      }
    }
    if (combine == OutputCombine::kPerSliceShared) {
      auto yrow = out.row(out_row);
      for (rank_t r = 0; r < rank; ++r) yrow[r] += block_acc[r];
    }
  }
  return out;
}

}  // namespace

GpuMttkrpResult run_bcsf_engine(const BcsfTensor& bcsf,
                                const std::vector<DenseMatrix>& factors,
                                const DeviceModel& device,
                                const std::string& kernel_name,
                                OutputCombine combine, SimMemo* memo) {
  const CsfTensor& csf = bcsf.csf();
  check_factors(csf.dims(), factors);
  const rank_t rank = factors.front().cols();
  if (memo != nullptr) {
    SimReport cached;
    if (memo->find(rank, &cached)) {
      return {bcsf_numeric_pass(bcsf, factors, combine), std::move(cached)};
    }
  }
  const index_t root = csf.root_mode();
  const ModeOrder& order = csf.mode_order();
  const index_t n_levels = csf.node_levels();
  const index_t fiber_level = n_levels - 1;
  const index_t leaf_mode = order.back();

  GpuKernelContext ctx(device);
  const std::vector<unsigned> regions = register_factor_regions(ctx, csf.order());
  const unsigned out_region = regions.back();

  DenseMatrix out(csf.dims()[root], rank);
  KernelLaunch launch;
  launch.name = kernel_name;
  launch.warps_per_block = device.warps_per_block();
  launch.blocks.reserve(bcsf.blocks().size());

  std::vector<value_t> tmp(rank);
  std::vector<value_t> block_acc(rank);  // kPerSliceShared accumulator
  const DenseMatrix& leaf_factor = factors[leaf_mode];

  for (const auto& block : bcsf.blocks()) {
    const unsigned n_warps = static_cast<unsigned>(
        std::min<offset_t>(launch.warps_per_block,
                           block.fiber_end - block.fiber_begin));
    BlockWork bw;
    bw.warp_cycles.assign(n_warps, 0.0);

    const index_t out_row = csf.node_index(0, block.slice);
    for (offset_t f = block.fiber_begin; f < block.fiber_end; ++f) {
      const unsigned w =
          static_cast<unsigned>((f - block.fiber_begin) % n_warps);
      double& cost = bw.warp_cycles[w];

      // --- leaf accumulation: tmp[r] = sum_z val * C(k, r).
      std::fill(tmp.begin(), tmp.end(), 0.0F);
      const offset_t z_begin = csf.child_begin(fiber_level, f);
      const offset_t z_end = csf.child_end(fiber_level, f);
      for (offset_t z = z_begin; z < z_end; ++z) {
        const index_t k = csf.leaf_index(z);
        const value_t v = csf.value(z);
        const unsigned misses = ctx.touch_row(regions[leaf_mode], k, rank);
        cost += device.cycles_per_nnz_csf + misses * device.cycles_l2_miss;
        const auto crow = leaf_factor.row(k);
        for (rank_t r = 0; r < rank; ++r) tmp[r] += v * crow[r];
      }
      launch.total_flops += 2.0 * rank * static_cast<double>(z_end - z_begin);

      // --- ancestor multiplies: fiber's own index level first (the
      // B(j,:) scaling of Alg. 3 line 13), then any middle levels (order
      // > 3).
      for (index_t level = fiber_level; level >= 1; --level) {
        const index_t coord = bcsf.fiber_coord(level, f);
        const index_t mode = order[level];
        const unsigned misses = ctx.touch_row(regions[mode], coord, rank);
        cost += (level == fiber_level ? device.cycles_per_fiber
                                      : device.cycles_per_ancestor) +
                misses * device.cycles_l2_miss;
        const auto row = factors[mode].row(coord);
        for (rank_t r = 0; r < rank; ++r) tmp[r] *= row[r];
        launch.total_flops += rank;
      }

      // --- combine into the output row.
      if (combine == OutputCombine::kPerSliceShared) {
        // Accumulate into the block-shared buffer; Y is touched once per
        // block, in the epilogue below.
        if (f == block.fiber_begin) {
          std::fill(block_acc.begin(), block_acc.end(), 0.0F);
        }
        for (rank_t r = 0; r < rank; ++r) block_acc[r] += tmp[r];
        cost += device.cycles_atomic_shared;  // shared-memory reduction step
      } else {
        const unsigned out_misses = ctx.touch_row(out_region, out_row, rank);
        if (block.atomic_output) {
          cost +=
              device.cycles_atomic_global + out_misses * device.cycles_l2_miss;
          ++launch.atomic_ops;
        } else {
          cost +=
              device.cycles_atomic_shared + out_misses * device.cycles_l2_miss;
        }
        auto yrow = out.row(out_row);
        for (rank_t r = 0; r < rank; ++r) yrow[r] += tmp[r];
      }
      launch.total_flops += rank;
    }
    bw.warp_cycles[0] += device.cycles_per_slice;  // block epilogue
    if (combine == OutputCombine::kPerSliceShared) {
      const unsigned out_misses = ctx.touch_row(out_region, out_row, rank);
      bw.warp_cycles[0] += out_misses * device.cycles_l2_miss;
      if (block.atomic_output) {
        bw.warp_cycles[0] += device.cycles_atomic_global;
        ++launch.atomic_ops;
      }
      auto yrow = out.row(out_row);
      for (rank_t r = 0; r < rank; ++r) yrow[r] += block_acc[r];
    }
    launch.blocks.push_back(std::move(bw));
  }

  launch.l2_hit_rate_pct = ctx.l2_hit_rate_pct();
  GpuMttkrpResult result{std::move(out), simulate_launch(device, launch)};
  if (memo != nullptr) memo->store(rank, result.report);
  return result;
}

}  // namespace detail

GpuMttkrpResult mttkrp_bcsf_gpu(const BcsfTensor& bcsf,
                                const std::vector<DenseMatrix>& factors,
                                const DeviceModel& device,
                                OutputCombine combine, SimMemo* memo) {
  return detail::run_bcsf_engine(bcsf, factors, device, "bcsf-gpu", combine,
                                 memo);
}

}  // namespace bcsf
