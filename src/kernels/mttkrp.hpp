// Public MTTKRP API: every kernel in the paper, over every format.
//
// GPU kernels execute the real fp32 arithmetic while walking the exact
// (block, warp, work item) decomposition that the simulator costs, so the
// returned matrix comes from the same schedule the SimReport describes.
// CPU kernels are real OpenMP code timed with wall clocks; the cross-
// platform figures additionally use the analytic Broadwell model in
// cpu_model.hpp (see DESIGN.md §1).
//
// Convention: `factors` holds one matrix per tensor mode (factors[m] has
// dims[m] rows, all with equal rank).  Mode-n MTTKRP reads every factor
// except n and returns a dims[n] x R matrix.
#pragma once

#include <span>
#include <vector>

#include "formats/bcsf.hpp"
#include "formats/csf.hpp"
#include "formats/csl.hpp"
#include "formats/fcoo.hpp"
#include "formats/hbcsf.hpp"
#include "formats/hicoo.hpp"
#include "gpusim/device.hpp"
#include "gpusim/metrics.hpp"
#include "linalg/dense_matrix.hpp"
#include "tensor/sparse_tensor.hpp"

namespace bcsf {

/// Validates factor shapes against the tensor dims; throws bcsf::Error.
void check_factors(const std::vector<index_t>& dims,
                   const std::vector<DenseMatrix>& factors);

// ---------------------------------------------------------------------------
// Reference (sequential, double accumulation; Algorithm 2)
// ---------------------------------------------------------------------------

DenseMatrix mttkrp_reference(const SparseTensor& tensor, index_t mode,
                             const std::vector<DenseMatrix>& factors);

/// Adds the MTTKRP contribution of `deltas` -- COO batches of additive
/// updates with the base tensor's dims -- into `inout` (dims[mode] x R,
/// typically a base plan's output).  MTTKRP is linear in the tensor
/// values, so base-plan-result + delta contribution equals the MTTKRP of
/// the merged tensor.  Accumulates in double like mttkrp_reference:
/// inout is promoted ONCE, every chunk's terms accumulate, and one cast
/// back happens at the end -- so a whole TensorSnapshot delta is swept
/// with a single float rounding boundary (per-chunk calls would round at
/// every chunk seam) and without per-chunk buffer copies.
void mttkrp_delta_accumulate(std::span<const TensorPtr> deltas, index_t mode,
                             const std::vector<DenseMatrix>& factors,
                             DenseMatrix& inout);

/// Single-chunk convenience overload.
void mttkrp_delta_accumulate(const SparseTensor& delta, index_t mode,
                             const std::vector<DenseMatrix>& factors,
                             DenseMatrix& inout);

/// Double-accumulator variant for callers already holding a promoted
/// buffer (`acc` is row-major dims[mode] x R): adds every chunk's MTTKRP
/// terms with NO float rounding at all.  The sharded serving path sweeps
/// each shard's delta into the shard's double partial this way, so a
/// whole K-shard response rounds at exactly one float boundary when the
/// partials are reduced (DESIGN.md §8).
void mttkrp_delta_accumulate(std::span<const TensorPtr> deltas, index_t mode,
                             const std::vector<DenseMatrix>& factors,
                             std::span<double> acc);

/// Row-window variant for the disjoint-output serving path (DESIGN.md
/// §8): `acc` covers only output rows [row_begin, row_begin +
/// acc.size()/R) of the mode-`mode` result.  Every delta coordinate must
/// fall inside the window -- the sharded service routes update batches by
/// slice range, so an out-of-window row means routing drifted from shard
/// ownership and the call throws rather than corrupt a neighbor's rows.
void mttkrp_delta_accumulate(std::span<const TensorPtr> deltas, index_t mode,
                             const std::vector<DenseMatrix>& factors,
                             std::span<double> acc, index_t row_begin);

// ---------------------------------------------------------------------------
// Simulated GPU kernels
// ---------------------------------------------------------------------------

struct GpuMttkrpResult {
  DenseMatrix output;
  SimReport report;
};

/// Per-plan cache of value-independent SimReports (kernels/gpu_common.hpp).
/// Kernels taking a `SimMemo*` run the full cache/scheduler simulation
/// only on the first call per rank; repeats replay the identical numeric
/// schedule without the cost model and return the stored report.
class SimMemo;

/// Plain GPU-CSF (§IV's starting point, Table II): one thread block per
/// slice, fibers round-robin across warps -- no splitting, the kernel
/// whose imbalance motivates B-CSF.
GpuMttkrpResult mttkrp_csf_gpu(const CsfTensor& csf,
                               const std::vector<DenseMatrix>& factors,
                               const DeviceModel& device);

/// How a B-CSF block combines fiber results into the output row -- a
/// design choice Alg. 3 leaves open (its lines 12-13 update Y per fiber;
/// SPLATT's CPU code accumulates per slice):
///  * kPerFiber: each fiber's scaled partial is combined into Y
///    immediately (shared-memory atomic within the block, global atomic
///    across slc-split blocks);
///  * kPerSliceShared: warps accumulate into a block-shared buffer and
///    the block writes Y once at the end (fewer output touches, one
///    block-wide reduction).
enum class OutputCombine { kPerFiber, kPerSliceShared };

/// B-CSF kernel (§IV): one thread block per B-CSF block, fiber segments
/// round-robin across warps, global atomics only for split slices.
/// `memo`, when non-null, must be dedicated to this (bcsf, device,
/// combine) triple; repeat calls per rank skip the simulation.
GpuMttkrpResult mttkrp_bcsf_gpu(const BcsfTensor& bcsf,
                                const std::vector<DenseMatrix>& factors,
                                const DeviceModel& device,
                                OutputCombine combine = OutputCombine::kPerFiber,
                                SimMemo* memo = nullptr);

/// CSL kernel (Alg. 4): one warp per compressed slice.
GpuMttkrpResult mttkrp_csl_gpu(const CslTensor& csl,
                               const std::vector<DenseMatrix>& factors,
                               const DeviceModel& device);

/// ParTI-style COO kernel [18]: thread per nonzero, global atomics.
/// `memo`, when non-null, must be dedicated to this (tensor, mode,
/// device) triple; repeat calls per rank skip the simulation.
GpuMttkrpResult mttkrp_coo_gpu(const SparseTensor& tensor, index_t mode,
                               const std::vector<DenseMatrix>& factors,
                               const DeviceModel& device,
                               SimMemo* memo = nullptr);

/// F-COO kernel [17]: per-partition products + segmented scan.
GpuMttkrpResult mttkrp_fcoo_gpu(const FcooTensor& fcoo,
                                const std::vector<DenseMatrix>& factors,
                                const DeviceModel& device);

/// HB-CSF kernel (Alg. 5 lines 18-20): COO, CSL and B-CSF group kernels
/// launched back-to-back into one output.
GpuMttkrpResult mttkrp_hbcsf_gpu(const HbcsfTensor& hbcsf,
                                 const std::vector<DenseMatrix>& factors,
                                 const DeviceModel& device);

// ---------------------------------------------------------------------------
// CPU kernels (real OpenMP implementations)
// ---------------------------------------------------------------------------

/// Parallel COO MTTKRP (Algorithm 2) with per-thread output privatization.
DenseMatrix mttkrp_coo_cpu(const SparseTensor& tensor, index_t mode,
                           const std::vector<DenseMatrix>& factors);

/// SPLATT-style CSF MTTKRP (Algorithm 3), parallel over slices.
DenseMatrix mttkrp_csf_cpu(const CsfTensor& csf,
                           const std::vector<DenseMatrix>& factors);

/// CSL MTTKRP (Algorithm 4), parallel over slices.
DenseMatrix mttkrp_csl_cpu(const CslTensor& csl,
                           const std::vector<DenseMatrix>& factors);

/// HiCOO MTTKRP [13]: block-by-block with privatized accumulators.
DenseMatrix mttkrp_hicoo_cpu(const HicooTensor& hicoo, index_t mode,
                             const std::vector<DenseMatrix>& factors);

}  // namespace bcsf
