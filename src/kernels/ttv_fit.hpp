// Dedicated kernels for the non-MTTKRP ops of the execution protocol
// (DESIGN.md §7): multi-TTV and the CPD fit inner product, plus their
// delta-sweep variants for the snapshot/delta serving path (§6).
//
// Any plan can already serve these ops through its MTTKRP traversal (the
// generic TensorOpPlan::execute path); the kernels here are the fused
// COO-family implementations -- sequential double-accumulation references
// that anchor the equivalence tests, and OpenMP versions for the CPU COO
// plans, which skip the rank-R machinery entirely.
//
// Conventions (matching core/tensor_op.hpp):
//  * multi-TTV contracts every mode EXCEPT `mode` with a vector:
//        y(i) = sum_{z : coord(mode,z) = i} x(z) * Prod_{m != mode} v_m
//    Vectors arrive as dims[m] x 1 DenseMatrix columns, one per mode
//    (entry `mode` present for uniform indexing but never read).
//  * the fit inner product is  <X, Xhat> = sum_z x(z) * sum_r lambda_r
//    Prod_m A_m(coord(m,z), r)  -- the one CPD-fit piece that traverses
//    the tensor.  `lambda == nullptr` means all-ones weights.
//
// Both ops are linear in the tensor values, so the *_delta variants are
// exact on snapshot + delta splits, like mttkrp_delta_accumulate.
#pragma once

#include <span>
#include <vector>

#include "linalg/dense_matrix.hpp"
#include "tensor/sparse_tensor.hpp"
#include "util/types.hpp"

namespace bcsf {

/// Validates one dims[m] x 1 vector per mode; throws bcsf::Error.
void check_vectors(const std::vector<index_t>& dims,
                   const std::vector<DenseMatrix>& vectors);

/// Sequential ground truth (double accumulation, one float rounding at
/// the end), mirroring mttkrp_reference.
DenseMatrix ttv_reference(const SparseTensor& tensor, index_t mode,
                          const std::vector<DenseMatrix>& vectors);

/// OpenMP COO multi-TTV: slice-grouped like mttkrp_coo_cpu, but with the
/// rank loop collapsed away -- one multiply-accumulate per nonzero.
DenseMatrix ttv_coo_cpu(const SparseTensor& tensor, index_t mode,
                        const std::vector<DenseMatrix>& vectors);

/// Adds the multi-TTV contribution of frozen COO delta chunks into
/// `inout` (dims[mode] x 1, typically a base plan's output).  Promotes
/// once, sweeps every chunk, casts back once -- exactly the
/// mttkrp_delta_accumulate contract at rank 1.
void ttv_delta_accumulate(std::span<const TensorPtr> deltas, index_t mode,
                          const std::vector<DenseMatrix>& vectors,
                          DenseMatrix& inout);

/// Double-accumulator variant (`acc` has dims[mode] entries): adds every
/// chunk's multi-TTV terms with no float rounding, mirroring the
/// mttkrp_delta_accumulate span overload for the sharded serving path.
void ttv_delta_accumulate(std::span<const TensorPtr> deltas, index_t mode,
                          const std::vector<DenseMatrix>& vectors,
                          std::span<double> acc);

/// Row-window variant (`acc` covers rows [row_begin, row_begin +
/// acc.size()) of the mode-`mode` result), mirroring the windowed
/// mttkrp_delta_accumulate for the disjoint-output serving path.
void ttv_delta_accumulate(std::span<const TensorPtr> deltas, index_t mode,
                          const std::vector<DenseMatrix>& vectors,
                          std::span<double> acc, index_t row_begin);

/// Sequential ground truth for <X, Xhat>, accumulated in double.
double fit_inner_reference(const SparseTensor& tensor,
                           const std::vector<DenseMatrix>& factors,
                           const std::vector<value_t>* lambda = nullptr);

/// OpenMP COO fit inner product (parallel reduction over nonzeros).
double fit_inner_coo_cpu(const SparseTensor& tensor,
                         const std::vector<DenseMatrix>& factors,
                         const std::vector<value_t>* lambda = nullptr);

/// <deltas, Xhat> summed over every chunk in double -- the scalar the
/// serving layer adds on top of a base plan's fit contribution.
double fit_inner_delta(std::span<const TensorPtr> deltas,
                       const std::vector<DenseMatrix>& factors,
                       const std::vector<value_t>* lambda = nullptr);

}  // namespace bcsf
