// ParTI-style COO GPU kernel [18] (Fig. 8, Fig. 14 baseline): the tensor
// is parallelized over nonzeros -- each warp chunk covers 32 consecutive
// nonzeros, one per lane, and every nonzero's contribution is combined
// into the output with a global atomic ("It performs an atomic add when
// combining nonzero products to the same data", §VII).
//
// The strength of this kernel is perfect static balance (every warp gets
// identical work); its weakness is per-nonzero output traffic and atomics.
#include <algorithm>
#include <vector>

#include "gpusim/scheduler.hpp"
#include "kernels/gpu_common.hpp"
#include "kernels/mttkrp.hpp"
#include "util/error.hpp"

namespace bcsf {

namespace {

// Numeric-only replay used once a SimMemo holds this (tensor, mode, rank)
// report: the COO schedule is a flat pass over nonzeros, so the replay is
// the same per-nonzero float statements without the cache model, block
// list or SM scheduler.  MUST stay in numeric lock-step with the costed
// pass below (pinned by tests/mttkrp_equivalence_test.cpp).
DenseMatrix coo_numeric_pass(const SparseTensor& tensor, index_t mode,
                             const std::vector<DenseMatrix>& factors) {
  const rank_t rank = factors.front().cols();
  DenseMatrix out(tensor.dim(mode), rank);
  std::vector<value_t> prod(rank);
  const offset_t m = tensor.nnz();
  for (offset_t z = 0; z < m; ++z) {
    const value_t v = tensor.value(z);
    for (rank_t r = 0; r < rank; ++r) prod[r] = v;
    for (index_t f = 0; f < tensor.order(); ++f) {
      if (f == mode) continue;
      const auto row = factors[f].row(tensor.coord(f, z));
      for (rank_t r = 0; r < rank; ++r) prod[r] *= row[r];
    }
    auto yrow = out.row(tensor.coord(mode, z));
    for (rank_t r = 0; r < rank; ++r) yrow[r] += prod[r];
  }
  return out;
}

}  // namespace

GpuMttkrpResult mttkrp_coo_gpu(const SparseTensor& tensor, index_t mode,
                               const std::vector<DenseMatrix>& factors,
                               const DeviceModel& device, SimMemo* memo) {
  check_factors(tensor.dims(), factors);
  BCSF_CHECK(mode < tensor.order(), "mttkrp_coo_gpu: bad mode");
  const rank_t rank = factors.front().cols();
  if (memo != nullptr) {
    SimReport cached;
    if (memo->find(rank, &cached)) {
      return {coo_numeric_pass(tensor, mode, factors), std::move(cached)};
    }
  }

  GpuKernelContext ctx(device);
  const std::vector<unsigned> regions =
      register_factor_regions(ctx, tensor.order());
  const unsigned out_region = regions.back();

  DenseMatrix out(tensor.dim(mode), rank);
  KernelLaunch launch;
  launch.name = "parti-coo-gpu";
  launch.warps_per_block = device.warps_per_block();

  const offset_t chunk = device.warp_size;                 // nnz per warp
  const offset_t block_nnz = chunk * launch.warps_per_block;
  std::vector<value_t> prod(rank);

  const offset_t m = tensor.nnz();
  for (offset_t b0 = 0; b0 < m; b0 += block_nnz) {
    const offset_t b1 = std::min(b0 + block_nnz, m);
    BlockWork bw;
    bw.warp_cycles.assign(
        static_cast<std::size_t>(ceil_div(b1 - b0, chunk)), 0.0);

    for (offset_t z = b0; z < b1; ++z) {
      double& cost = bw.warp_cycles[(z - b0) / chunk];
      const value_t v = tensor.value(z);
      for (rank_t r = 0; r < rank; ++r) prod[r] = v;
      unsigned misses = 0;
      for (index_t f = 0; f < tensor.order(); ++f) {
        if (f == mode) continue;
        const index_t coord = tensor.coord(f, z);
        misses += ctx.touch_row(regions[f], coord, rank);
        const auto row = factors[f].row(coord);
        for (rank_t r = 0; r < rank; ++r) prod[r] *= row[r];
      }
      const index_t out_row = tensor.coord(mode, z);
      misses += ctx.touch_row(out_region, out_row, rank);
      auto yrow = out.row(out_row);
      for (rank_t r = 0; r < rank; ++r) yrow[r] += prod[r];

      // Lanes parallelize over nonzeros and serialize over the R columns;
      // amortized per nonzero this costs about what a CSF warp pays per
      // nonzero plus the atomic RMW, captured by the flat constant.  Every
      // missed line is charged at the shared bandwidth cost, same as the
      // structured kernels.
      cost += device.cycles_per_nnz_coo + misses * device.cycles_l2_miss;
      launch.total_flops += static_cast<double>(tensor.order()) * rank;
      ++launch.atomic_ops;
    }
    launch.blocks.push_back(std::move(bw));
  }

  launch.l2_hit_rate_pct = ctx.l2_hit_rate_pct();
  GpuMttkrpResult result{std::move(out), simulate_launch(device, launch)};
  if (memo != nullptr) memo->store(rank, result.report);
  return result;
}

}  // namespace bcsf
