// HB-CSF GPU kernel (Alg. 5 lines 18-20): the three slice populations are
// processed by three back-to-back launches into one output matrix.
//
//  * COO group: singleton slices -- one nonzero per output row, so lanes
//    process nonzeros directly and no atomics are needed at all.
//  * CSL group: Alg. 4 warp-per-slice kernel.
//  * B-CSF group: the balanced CSF kernel of §IV.
// The groups partition the slices, so their output rows are disjoint and
// the three launches compose by simple accumulation.
#include <algorithm>
#include <vector>

#include "gpusim/scheduler.hpp"
#include "kernels/gpu_common.hpp"
#include "kernels/mttkrp.hpp"
#include "util/error.hpp"

namespace bcsf {

namespace {

/// The COO-group launch: perfectly uniform nonzero-per-lane work with
/// plain stores (each slice has exactly one nonzero).
GpuMttkrpResult run_singleton_coo(const HbcsfTensor& h,
                                  const std::vector<DenseMatrix>& factors,
                                  const DeviceModel& device) {
  const rank_t rank = factors.front().cols();
  const ModeOrder& order = h.mode_order();
  const index_t root = h.root_mode();

  GpuKernelContext ctx(device);
  const std::vector<unsigned> regions = register_factor_regions(ctx, h.order());
  const unsigned out_region = regions.back();

  DenseMatrix out(h.dims()[root], rank);
  KernelLaunch launch;
  launch.name = "hbcsf-coo";
  launch.warps_per_block = device.warps_per_block();

  const offset_t chunk = device.warp_size;
  const offset_t block_nnz = chunk * launch.warps_per_block;
  std::vector<value_t> prod(rank);

  const offset_t m = h.coo_nnz();
  for (offset_t b0 = 0; b0 < m; b0 += block_nnz) {
    const offset_t b1 = std::min(b0 + block_nnz, m);
    BlockWork bw;
    bw.warp_cycles.assign(
        static_cast<std::size_t>(ceil_div(b1 - b0, chunk)), 0.0);
    for (offset_t z = b0; z < b1; ++z) {
      double& cost = bw.warp_cycles[(z - b0) / chunk];
      const value_t v = h.coo_value(z);
      for (rank_t r = 0; r < rank; ++r) prod[r] = v;
      unsigned misses = 0;
      for (index_t p = 1; p < h.order(); ++p) {  // p=0 is the root
        const index_t mode = order[p];
        const index_t coord = h.coo_index(p, z);
        misses += ctx.touch_row(regions[mode], coord, rank);
        const auto row = factors[mode].row(coord);
        for (rank_t r = 0; r < rank; ++r) prod[r] *= row[r];
      }
      const index_t out_row = h.coo_index(0, z);
      misses += ctx.touch_row(out_region, out_row, rank);
      auto yrow = out.row(out_row);
      for (rank_t r = 0; r < rank; ++r) yrow[r] += prod[r];
      cost += device.cycles_per_nnz_csl + misses * device.cycles_l2_miss;
      launch.total_flops += static_cast<double>(h.order()) * rank;
    }
    launch.blocks.push_back(std::move(bw));
  }
  launch.l2_hit_rate_pct = ctx.l2_hit_rate_pct();
  return {std::move(out), simulate_launch(device, launch)};
}

void add_into(DenseMatrix& acc, const DenseMatrix& part) {
  BCSF_ASSERT(acc.size() == part.size(), "hbcsf: output shape mismatch");
  for (std::size_t i = 0; i < acc.size(); ++i) {
    acc.data()[i] += part.data()[i];
  }
}

}  // namespace

GpuMttkrpResult mttkrp_hbcsf_gpu(const HbcsfTensor& hbcsf,
                                 const std::vector<DenseMatrix>& factors,
                                 const DeviceModel& device) {
  check_factors(hbcsf.dims(), factors);
  const rank_t rank = factors.front().cols();
  DenseMatrix out(hbcsf.dims()[hbcsf.root_mode()], rank);
  SimReport report;
  report.kernel = "hbcsf-gpu";
  bool first = true;
  auto absorb = [&](GpuMttkrpResult&& part) {
    add_into(out, part.output);
    if (first) {
      const std::string name = report.kernel;
      report = part.report;
      report.kernel = name;
      first = false;
    } else {
      part.report.kernel.clear();  // keep the combined name stable
      report += part.report;
    }
  };

  if (hbcsf.coo_nnz() > 0) {
    absorb(run_singleton_coo(hbcsf, factors, device));
  }
  if (hbcsf.csl_nnz() > 0) {
    absorb(mttkrp_csl_gpu(hbcsf.csl(), factors, device));
  }
  if (hbcsf.csf_nnz() > 0) {
    absorb(mttkrp_bcsf_gpu(hbcsf.bcsf(), factors, device));
  }
  return {std::move(out), report};
}

}  // namespace bcsf
