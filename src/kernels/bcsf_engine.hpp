// Internal: the shared B-CSF execution engine.  The plain GPU-CSF kernel
// (Table II's strawman) is the same engine run on an unsplit B-CSF, so
// both public kernels funnel here.
#pragma once

#include <string>
#include <vector>

#include "formats/bcsf.hpp"
#include "gpusim/device.hpp"
#include "kernels/mttkrp.hpp"

namespace bcsf::detail {

GpuMttkrpResult run_bcsf_engine(const BcsfTensor& bcsf,
                                const std::vector<DenseMatrix>& factors,
                                const DeviceModel& device,
                                const std::string& kernel_name,
                                OutputCombine combine = OutputCombine::kPerFiber,
                                SimMemo* memo = nullptr);

}  // namespace bcsf::detail
