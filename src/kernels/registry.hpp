// Thin enum-keyed shim over core/format_registry.hpp, kept so call sites
// written against the original enum API keep compiling.  New code should
// use FormatRegistry directly (string keys, enumeration, plan reuse);
// this header just maps each GpuKernelKind to its registry name and runs
// the plan once.
#pragma once

#include <string>
#include <vector>

#include "core/factors.hpp"
#include "core/mttkrp_plan.hpp"
#include "gpusim/device.hpp"
#include "kernels/mttkrp.hpp"
#include "tensor/sparse_tensor.hpp"

namespace bcsf {

enum class GpuKernelKind {
  kCsf,    ///< plain GPU-CSF (no splitting)
  kBcsf,   ///< B-CSF (§IV)
  kHbcsf,  ///< HB-CSF (§V)
  kCoo,    ///< ParTI-style COO
  kFcoo,   ///< F-COO
};

/// FormatRegistry key for the kind (e.g. kHbcsf -> "hbcsf").
const char* kind_format_name(GpuKernelKind kind);

/// Paper-facing display name from the registry (e.g. "HB-CSF").
const char* kind_name(GpuKernelKind kind);

struct GpuRunOptions {
  DeviceModel device = DeviceModel::p100();
  BcsfOptions bcsf;
  FcooOptions fcoo;
};

struct TimedGpuResult {
  GpuMttkrpResult run;
  double build_seconds = 0.0;  ///< format construction wall time
};

/// Builds the plan for (kind, mode) via the FormatRegistry and runs it.
TimedGpuResult build_and_run(GpuKernelKind kind, const SparseTensor& tensor,
                             index_t mode,
                             const std::vector<DenseMatrix>& factors,
                             const GpuRunOptions& opts = {});

}  // namespace bcsf
