// Convenience layer for benches, examples and tests: build a format and
// run its GPU kernel in one call, with the construction wall time
// (the paper's pre-processing cost, Figs. 9/10) captured.
#pragma once

#include <string>
#include <vector>

#include "formats/bcsf.hpp"
#include "formats/fcoo.hpp"
#include "gpusim/device.hpp"
#include "kernels/mttkrp.hpp"
#include "tensor/sparse_tensor.hpp"

namespace bcsf {

enum class GpuKernelKind {
  kCsf,    ///< plain GPU-CSF (no splitting)
  kBcsf,   ///< B-CSF (§IV)
  kHbcsf,  ///< HB-CSF (§V)
  kCoo,    ///< ParTI-style COO
  kFcoo,   ///< F-COO
};

const char* kind_name(GpuKernelKind kind);

struct GpuRunOptions {
  DeviceModel device = DeviceModel::p100();
  BcsfOptions bcsf;
  FcooOptions fcoo;
};

struct TimedGpuResult {
  GpuMttkrpResult run;
  double build_seconds = 0.0;  ///< format construction wall time
};

/// Builds the format for (kind, mode) and runs its kernel.
TimedGpuResult build_and_run(GpuKernelKind kind, const SparseTensor& tensor,
                             index_t mode,
                             const std::vector<DenseMatrix>& factors,
                             const GpuRunOptions& opts = {});

/// Random fp32 factor matrices, one per mode (rows = dims[m]).
std::vector<DenseMatrix> make_random_factors(const std::vector<index_t>& dims,
                                             rank_t rank, std::uint64_t seed);

}  // namespace bcsf
