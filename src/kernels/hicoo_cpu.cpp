// HiCOO MTTKRP on CPUs [13] (Fig. 13 baseline): block-by-block execution
// with conflict-free scheduling -- blocks are grouped by their output-mode
// block coordinate, so two threads never update the same output block row
// (this stands in for HiCOO's privatization scheme).
#include <algorithm>
#include <numeric>
#include <vector>

#include "kernels/mttkrp.hpp"
#include "util/error.hpp"

namespace bcsf {

DenseMatrix mttkrp_hicoo_cpu(const HicooTensor& hicoo, index_t mode,
                             const std::vector<DenseMatrix>& factors) {
  check_factors(hicoo.dims(), factors);
  BCSF_CHECK(mode < hicoo.order(), "mttkrp_hicoo_cpu: bad mode");
  const rank_t rank = factors.front().cols();
  DenseMatrix out(hicoo.dims()[mode], rank);
  const offset_t nb = hicoo.num_blocks();

  std::vector<offset_t> block_order(nb);
  std::iota(block_order.begin(), block_order.end(), offset_t{0});
  std::stable_sort(block_order.begin(), block_order.end(),
                   [&](offset_t a, offset_t b) {
                     return hicoo.block_coord(mode, a) <
                            hicoo.block_coord(mode, b);
                   });
  std::vector<offset_t> group_start;
  for (offset_t i = 0; i < nb; ++i) {
    if (i == 0 || hicoo.block_coord(mode, block_order[i]) !=
                      hicoo.block_coord(mode, block_order[i - 1])) {
      group_start.push_back(i);
    }
  }
  group_start.push_back(nb);
  const std::int64_t n_groups =
      static_cast<std::int64_t>(group_start.size()) - 1;

#pragma omp parallel
  {
    std::vector<value_t> prod(rank);
#pragma omp for schedule(dynamic, 4)
    for (std::int64_t g = 0; g < n_groups; ++g) {
      for (offset_t i = group_start[g]; i < group_start[g + 1]; ++i) {
        const offset_t b = block_order[i];
        for (offset_t z = hicoo.block_begin(b); z < hicoo.block_end(b); ++z) {
          const value_t v = hicoo.value(z);
          for (rank_t r = 0; r < rank; ++r) prod[r] = v;
          for (index_t f = 0; f < hicoo.order(); ++f) {
            if (f == mode) continue;
            const auto row = factors[f].row(hicoo.coord(f, b, z));
            for (rank_t r = 0; r < rank; ++r) prod[r] *= row[r];
          }
          auto yrow = out.row(hicoo.coord(mode, b, z));
          for (rank_t r = 0; r < rank; ++r) yrow[r] += prod[r];
        }
      }
    }
  }
  return out;
}

}  // namespace bcsf
