// F-COO GPU kernel [17] (Fig. 15 baseline): nonzeros are processed in
// fixed-size partitions; lanes compute per-nonzero products, then a
// warp-level segmented scan combines products that share a slice, writing
// one result per distinct slice in the chunk and using global atomics only
// at chunk/partition boundaries where a slice straddles two workers.
#include <algorithm>
#include <vector>

#include "gpusim/scheduler.hpp"
#include "kernels/gpu_common.hpp"
#include "kernels/mttkrp.hpp"
#include "util/error.hpp"

namespace bcsf {

GpuMttkrpResult mttkrp_fcoo_gpu(const FcooTensor& fcoo,
                                const std::vector<DenseMatrix>& factors,
                                const DeviceModel& device) {
  check_factors(fcoo.dims(), factors);
  const rank_t rank = factors.front().cols();
  const ModeOrder& order = fcoo.mode_order();
  const index_t root = fcoo.root_mode();
  const index_t n_other = fcoo.order() - 1;

  GpuKernelContext ctx(device);
  const std::vector<unsigned> regions =
      register_factor_regions(ctx, fcoo.order());
  const unsigned out_region = regions.back();

  DenseMatrix out(fcoo.dims()[root], rank);
  KernelLaunch launch;
  launch.name = "fcoo-gpu";
  launch.warps_per_block = device.warps_per_block();

  const offset_t m = fcoo.nnz();
  const offset_t part = fcoo.partition_size();
  const offset_t chunk =
      std::max<offset_t>(1, ceil_div(part, offset_t{launch.warps_per_block}));

  std::vector<value_t> prod(rank);
  std::vector<value_t> seg(rank);

  offset_t slice_ordinal = 0;  // running ordinal into the compacted list
  for (offset_t p0 = 0; p0 < m; p0 += part) {
    const offset_t p1 = std::min(p0 + part, m);
    BlockWork bw;
    bw.warp_cycles.assign(
        static_cast<std::size_t>(ceil_div(p1 - p0, chunk)), 0.0);

    for (offset_t c0 = p0; c0 < p1; c0 += chunk) {
      const offset_t c1 = std::min(c0 + chunk, p1);
      double& cost = bw.warp_cycles[(c0 - p0) / chunk];
      // Segmented accumulation within the chunk: flush on slice change.
      std::fill(seg.begin(), seg.end(), 0.0F);
      bool chunk_spans_boundary = (c0 != p0 || p0 != 0);
      offset_t flushes = 0;
      for (offset_t z = c0; z < c1; ++z) {
        if (fcoo.starts_slice(z)) {
          if (z != c0) {
            // Flush the finished segment (in-chunk, plain store).
            auto yrow = out.row(fcoo.slice_index(slice_ordinal));
            for (rank_t r = 0; r < rank; ++r) yrow[r] += seg[r];
            std::fill(seg.begin(), seg.end(), 0.0F);
            ++flushes;
          }
          if (z > 0) ++slice_ordinal;
        }
        const value_t v = fcoo.value(z);
        for (rank_t r = 0; r < rank; ++r) prod[r] = v;
        unsigned misses = 0;
        for (index_t q = 0; q < n_other; ++q) {
          const index_t mode = order[q + 1];
          const index_t coord = fcoo.nz_index(q, z);
          misses += ctx.touch_row(regions[mode], coord, rank);
          const auto row = factors[mode].row(coord);
          for (rank_t r = 0; r < rank; ++r) prod[r] *= row[r];
        }
        for (rank_t r = 0; r < rank; ++r) seg[r] += prod[r];
        cost += device.cycles_per_nnz_fcoo + misses * device.cycles_l2_miss;
        launch.total_flops += static_cast<double>(fcoo.order()) * rank;
      }
      // Tail segment: may continue into the next chunk, so it is combined
      // with a global atomic.
      if (c1 > c0) {
        const unsigned out_misses =
            ctx.touch_row(out_region, fcoo.slice_index(slice_ordinal), rank);
        auto yrow = out.row(fcoo.slice_index(slice_ordinal));
        for (rank_t r = 0; r < rank; ++r) yrow[r] += seg[r];
        cost += device.cycles_atomic_global +
                out_misses * device.cycles_l2_miss;
        ++launch.atomic_ops;
      }
      // Fixed segmented-scan bookkeeping per chunk plus per-flush writes.
      cost += device.cycles_scan_per_chunk +
              static_cast<double>(flushes) * device.cycles_atomic_shared;
      (void)chunk_spans_boundary;
    }
    launch.blocks.push_back(std::move(bw));
  }

  launch.l2_hit_rate_pct = ctx.l2_hit_rate_pct();
  return {std::move(out), simulate_launch(device, launch)};
}

}  // namespace bcsf
