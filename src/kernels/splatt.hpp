// SPLATT baseline [12] as configured in the paper's evaluation (§VI-A):
// the ALLMODE setting ("store N CSF formats to achieve maximum
// performance") with the `tiling` locality flag either on or off.
//
// The MTTKRP itself is real, runnable OpenMP code (mttkrp_csf_cpu); the
// tiled variant performs cache blocking over the leaf mode by processing
// the CSF tree once per leaf-index tile.  Projected 28-core Broadwell
// times for the cross-platform figures come from cpu_model.hpp.
#pragma once

#include <vector>

#include "formats/csf.hpp"
#include "linalg/dense_matrix.hpp"
#include "tensor/sparse_tensor.hpp"
#include "util/types.hpp"

namespace bcsf {

struct SplattOptions {
  bool tiling = false;
  /// Number of leaf-mode tiles when tiling is enabled.
  index_t leaf_tiles = 8;
};

class SplattAllmode {
 public:
  SplattAllmode(const SparseTensor& tensor, SplattOptions opts = {});

  /// Runs mode-`mode` MTTKRP using the CSF representation rooted at that
  /// mode (the ALLMODE strategy: no recursion through foreign roots).
  DenseMatrix mttkrp(index_t mode,
                     const std::vector<DenseMatrix>& factors) const;

  const CsfTensor& csf(index_t mode) const { return csfs_.at(mode); }
  index_t order() const { return static_cast<index_t>(csfs_.size()); }
  const SplattOptions& options() const { return opts_; }

  /// Wall-clock seconds spent building the N CSF representations
  /// (Fig. 9's pre-processing baseline).
  double preprocessing_seconds() const { return preprocessing_seconds_; }

 private:
  SplattOptions opts_;
  std::vector<CsfTensor> csfs_;  // one representation per mode
  double preprocessing_seconds_ = 0.0;
};

/// Tiled CSF MTTKRP: processes leaves in `tiles` leaf-index bands to bound
/// the leaf-factor working set (SPLATT's cache-blocking flag).
DenseMatrix mttkrp_csf_cpu_tiled(const CsfTensor& csf,
                                 const std::vector<DenseMatrix>& factors,
                                 index_t tiles);

}  // namespace bcsf
