#include <vector>

#include "kernels/mttkrp.hpp"
#include "util/error.hpp"

namespace bcsf {

void check_factors(const std::vector<index_t>& dims,
                   const std::vector<DenseMatrix>& factors) {
  BCSF_CHECK(factors.size() == dims.size(),
             "mttkrp: expected " << dims.size() << " factor matrices, got "
                                 << factors.size());
  const rank_t rank = factors.empty() ? 0 : factors.front().cols();
  BCSF_CHECK(rank > 0, "mttkrp: rank must be positive");
  for (std::size_t m = 0; m < factors.size(); ++m) {
    BCSF_CHECK(factors[m].rows() == dims[m],
               "mttkrp: factor " << m << " has " << factors[m].rows()
                                 << " rows, tensor mode has " << dims[m]);
    BCSF_CHECK(factors[m].cols() == rank, "mttkrp: factor rank mismatch");
  }
}

DenseMatrix mttkrp_reference(const SparseTensor& tensor, index_t mode,
                             const std::vector<DenseMatrix>& factors) {
  check_factors(tensor.dims(), factors);
  BCSF_CHECK(mode < tensor.order(), "mttkrp_reference: bad mode");
  const rank_t rank = factors.front().cols();
  const index_t rows = tensor.dim(mode);

  // Double accumulation: the reference is the ground truth that every
  // fp32 kernel is compared against, so it should not share their
  // round-off.
  std::vector<double> acc(static_cast<std::size_t>(rows) * rank, 0.0);
  std::vector<double> prod(rank);
  for (offset_t z = 0; z < tensor.nnz(); ++z) {
    for (rank_t r = 0; r < rank; ++r) {
      prod[r] = static_cast<double>(tensor.value(z));
    }
    for (index_t m = 0; m < tensor.order(); ++m) {
      if (m == mode) continue;
      const auto row = factors[m].row(tensor.coord(m, z));
      for (rank_t r = 0; r < rank; ++r) prod[r] *= row[r];
    }
    const std::size_t base =
        static_cast<std::size_t>(tensor.coord(mode, z)) * rank;
    for (rank_t r = 0; r < rank; ++r) acc[base + r] += prod[r];
  }

  DenseMatrix out(rows, rank);
  for (std::size_t i = 0; i < acc.size(); ++i) {
    out.data()[i] = static_cast<value_t>(acc[i]);
  }
  return out;
}

void mttkrp_delta_accumulate(std::span<const TensorPtr> deltas, index_t mode,
                             const std::vector<DenseMatrix>& factors,
                             std::span<double> acc) {
  offset_t total = 0;
  for (const TensorPtr& chunk : deltas) {
    BCSF_CHECK(chunk != nullptr, "mttkrp_delta_accumulate: null chunk");
    total += chunk->nnz();
  }
  if (total == 0) return;
  const rank_t rank = factors.front().cols();
  BCSF_CHECK(acc.size() ==
                 static_cast<std::size_t>(deltas.front()->dim(mode)) * rank,
             "mttkrp_delta_accumulate: accumulator has "
                 << acc.size() << " entries, expected "
                 << deltas.front()->dim(mode) << " x " << rank);
  mttkrp_delta_accumulate(deltas, mode, factors, acc, /*row_begin=*/0);
}

void mttkrp_delta_accumulate(std::span<const TensorPtr> deltas, index_t mode,
                             const std::vector<DenseMatrix>& factors,
                             std::span<double> acc, index_t row_begin) {
  offset_t total = 0;
  for (const TensorPtr& chunk : deltas) {
    BCSF_CHECK(chunk != nullptr, "mttkrp_delta_accumulate: null chunk");
    total += chunk->nnz();
  }
  if (total == 0) return;

  const SparseTensor& first = *deltas.front();
  check_factors(first.dims(), factors);
  BCSF_CHECK(mode < first.order(), "mttkrp_delta_accumulate: bad mode");
  const rank_t rank = factors.front().cols();
  BCSF_CHECK(rank > 0 && acc.size() % rank == 0,
             "mttkrp_delta_accumulate: accumulator size "
                 << acc.size() << " is not a multiple of rank " << rank);
  const index_t rows = static_cast<index_t>(acc.size() / rank);
  BCSF_CHECK(static_cast<std::size_t>(row_begin) + rows <=
                 static_cast<std::size_t>(first.dim(mode)),
             "mttkrp_delta_accumulate: window [" << row_begin << ", "
                 << row_begin + rows << ") exceeds dim " << first.dim(mode));

  std::vector<double> prod(rank);
  for (const TensorPtr& chunk : deltas) {
    const SparseTensor& delta = *chunk;
    BCSF_CHECK(delta.dims() == first.dims(),
               "mttkrp_delta_accumulate: chunk dims mismatch");
    for (offset_t z = 0; z < delta.nnz(); ++z) {
      for (rank_t r = 0; r < rank; ++r) {
        prod[r] = static_cast<double>(delta.value(z));
      }
      for (index_t m = 0; m < delta.order(); ++m) {
        if (m == mode) continue;
        const auto row = factors[m].row(delta.coord(m, z));
        for (rank_t r = 0; r < rank; ++r) prod[r] *= row[r];
      }
      const index_t out_row = delta.coord(mode, z);
      // Routing guard for the disjoint-output path: a nonzero outside the
      // owned window would silently belong to ANOTHER shard's rows.
      BCSF_CHECK(out_row >= row_begin && out_row - row_begin < rows,
                 "mttkrp_delta_accumulate: row " << out_row
                     << " outside owned window [" << row_begin << ", "
                     << row_begin + rows << ") -- delta routing drifted");
      const std::size_t base =
          static_cast<std::size_t>(out_row - row_begin) * rank;
      for (rank_t r = 0; r < rank; ++r) acc[base + r] += prod[r];
    }
  }
}

void mttkrp_delta_accumulate(std::span<const TensorPtr> deltas, index_t mode,
                             const std::vector<DenseMatrix>& factors,
                             DenseMatrix& inout) {
  offset_t total = 0;
  for (const TensorPtr& chunk : deltas) {
    BCSF_CHECK(chunk != nullptr, "mttkrp_delta_accumulate: null chunk");
    total += chunk->nnz();
  }
  if (total == 0) return;

  const SparseTensor& first = *deltas.front();
  check_factors(first.dims(), factors);
  BCSF_CHECK(mode < first.order(), "mttkrp_delta_accumulate: bad mode");
  const rank_t rank = factors.front().cols();
  BCSF_CHECK(inout.rows() == first.dim(mode) && inout.cols() == rank,
             "mttkrp_delta_accumulate: inout is "
                 << inout.rows() << " x " << inout.cols() << ", expected "
                 << first.dim(mode) << " x " << rank);

  // Promote once, sweep every chunk, cast back once: a multi-chunk delta
  // rounds at exactly one float boundary, like the reference would on
  // the concatenated nonzero stream seeded with inout.
  std::vector<double> acc(inout.data().begin(), inout.data().end());
  mttkrp_delta_accumulate(deltas, mode, factors, std::span<double>(acc));
  for (std::size_t i = 0; i < acc.size(); ++i) {
    inout.data()[i] = static_cast<value_t>(acc[i]);
  }
}

void mttkrp_delta_accumulate(const SparseTensor& delta, index_t mode,
                             const std::vector<DenseMatrix>& factors,
                             DenseMatrix& inout) {
  const TensorPtr view(TensorPtr{}, &delta);  // non-owning, call-scoped
  mttkrp_delta_accumulate(std::span<const TensorPtr>(&view, 1), mode,
                          factors, inout);
}

}  // namespace bcsf
