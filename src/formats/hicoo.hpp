// HiCOO: Hierarchical COOrdinate format of Li et al. [13] -- a CPU
// baseline the paper compares against (Fig. 13).
//
// HiCOO groups nonzeros into multi-dimensional superblocks of edge 2^b.
// Each block stores its block coordinates once (full-width integers) plus
// per-nonzero byte-wide local offsets, compressing index storage and
// improving locality.  MTTKRP iterates block-by-block; blocks sharing a
// root-mode block row conflict on output, which HiCOO schedules around
// with privatization on CPUs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "tensor/sparse_tensor.hpp"
#include "util/types.hpp"

namespace bcsf {

struct HicooOptions {
  /// Block edge = 2^block_bits per mode; HiCOO's paper default is 2^7=128.
  index_t block_bits = 7;
};

class HicooTensor {
 public:
  index_t order() const { return static_cast<index_t>(dims_.size()); }
  const std::vector<index_t>& dims() const { return dims_; }
  index_t block_bits() const { return opts_.block_bits; }
  offset_t nnz() const { return vals_.size(); }
  offset_t num_blocks() const { return bptr_.empty() ? 0 : bptr_.size() - 1; }

  offset_t block_begin(offset_t b) const { return bptr_[b]; }
  offset_t block_end(offset_t b) const { return bptr_[b + 1]; }
  /// Block coordinate of block b along mode m (upper index bits).
  index_t block_coord(index_t m, offset_t b) const { return binds_[m][b]; }
  /// Local offset of nonzero z along mode m (lower `block_bits` bits).
  std::uint8_t elem_offset(index_t m, offset_t z) const {
    return einds_[m][z];
  }
  /// Full coordinate reconstruction for nonzero z inside block b.
  index_t coord(index_t m, offset_t b, offset_t z) const {
    return (binds_[m][b] << opts_.block_bits) | einds_[m][z];
  }
  value_t value(offset_t z) const { return vals_[z]; }

  /// Index storage per the HiCOO accounting: one pointer word + order
  /// block-index words per block, order bytes per nonzero.
  std::size_t index_storage_bytes() const {
    return num_blocks() * (1 + order()) * kIndexBytes +
           static_cast<std::size_t>(order()) * nnz();
  }

  void validate() const;
  std::string summary() const;

 private:
  friend HicooTensor build_hicoo(const SparseTensor& tensor,
                                 const HicooOptions& opts);

  std::vector<index_t> dims_;
  HicooOptions opts_;
  offset_vec bptr_;
  std::vector<index_vec> binds_;                 // per mode, per block
  std::vector<std::vector<std::uint8_t>> einds_; // per mode, per nonzero
  value_vec vals_;
};

/// Builds HiCOO: sorts nonzeros by block coordinates (mode-0 major) and
/// emits one block per distinct block-coordinate tuple.
HicooTensor build_hicoo(const SparseTensor& tensor,
                        const HicooOptions& opts = {});

}  // namespace bcsf
