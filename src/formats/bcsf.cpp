#include "formats/bcsf.hpp"

#include <sstream>

#include "util/error.hpp"

namespace bcsf {

/// Friend of both CsfTensor and BcsfTensor; performs the two splitting
/// passes.
class BcsfBuilder {
 public:
  static BcsfTensor build(const CsfTensor& csf, const BcsfOptions& opts) {
    BcsfTensor out;
    out.opts_ = opts;
    out.csf_ = csf;
    if (opts.fiber_split && csf.order() >= 3) {
      split_fibers(out);
    }
    precompute_fiber_coords(out);
    build_blocks(out);
    return out;
  }

 private:
  // Splits every leaf-parent node with more than `fiber_threshold` leaves
  // into consecutive segments, rewriting the leaf-parent level's idx/ptr
  // arrays and remapping the grandparent level's pointers.
  static void split_fibers(BcsfTensor& out) {
    CsfTensor& csf = out.csf_;
    const index_t fiber_level = csf.node_levels() - 1;
    const offset_t threshold = out.opts_.fiber_threshold;
    BCSF_CHECK(threshold > 0, "bcsf: fiber_threshold must be positive");

    const index_vec& old_idx = csf.idx_[fiber_level];
    const offset_vec& old_ptr = csf.ptr_[fiber_level];
    const offset_t old_count = old_idx.size();

    index_vec new_idx;
    offset_vec new_ptr;
    new_idx.reserve(old_count);
    new_ptr.reserve(old_count + 1);
    new_ptr.push_back(0);

    // seg_start_of_old[f] = first segment produced from old fiber f; used
    // to remap the parent level's child pointers.
    offset_vec seg_start_of_old(old_count + 1);

    offset_t split_count = 0;
    for (offset_t f = 0; f < old_count; ++f) {
      seg_start_of_old[f] = new_idx.size();
      const offset_t begin = old_ptr[f];
      const offset_t end = old_ptr[f + 1];
      const offset_t len = end - begin;
      if (len > threshold) ++split_count;
      for (offset_t s = begin; s < end; s += threshold) {
        new_idx.push_back(old_idx[f]);
        new_ptr.push_back(std::min(s + threshold, end));
      }
    }
    seg_start_of_old[old_count] = new_idx.size();

    if (fiber_level > 0) {
      offset_vec& parent_ptr = csf.ptr_[fiber_level - 1];
      for (auto& p : parent_ptr) p = seg_start_of_old[p];
    }
    csf.idx_[fiber_level] = std::move(new_idx);
    csf.ptr_[fiber_level] = std::move(new_ptr);
    out.split_fiber_count_ = split_count;
  }

  // For each fiber segment, record the coordinate of its ancestor at every
  // node level, by walking each level's child ranges once (O(F) total).
  static void precompute_fiber_coords(BcsfTensor& out) {
    const CsfTensor& csf = out.csf_;
    const index_t n_levels = csf.node_levels();
    const offset_t n_fibers = csf.num_fibers();
    out.fiber_coords_.assign(n_levels, index_vec(n_fibers));

    // fiber range of each node at the current level, refined level by level.
    // Start: level n_levels-1 (fibers themselves).
    for (offset_t f = 0; f < n_fibers; ++f) {
      out.fiber_coords_[n_levels - 1][f] = csf.node_index(n_levels - 1, f);
    }
    // For shallower levels, propagate the node's index to all fibers in its
    // subtree.  Compute each node's fiber range by chaining pointers down.
    for (index_t level = 0; level + 1 < n_levels; ++level) {
      for (offset_t n = 0; n < csf.num_nodes(level); ++n) {
        offset_t begin = csf.child_begin(level, n);
        offset_t end = csf.child_end(level, n);
        for (index_t l = level + 1; l + 1 < n_levels; ++l) {
          begin = csf.level_pointers(l)[begin];
          end = csf.level_pointers(l)[end];
        }
        const index_t coord = csf.node_index(level, n);
        for (offset_t f = begin; f < end; ++f) {
          out.fiber_coords_[level][f] = coord;
        }
      }
    }
  }

  // Packs each slice's fiber segments into thread-block bins.
  static void build_blocks(BcsfTensor& out) {
    const CsfTensor& csf = out.csf_;
    const index_t n_levels = csf.node_levels();
    const offset_t capacity = out.opts_.block_nnz_capacity;
    BCSF_CHECK(capacity > 0, "bcsf: block_nnz_capacity must be positive");

    auto leaf_count = [&](offset_t fiber) {
      return csf.child_end(n_levels - 1, fiber) -
             csf.child_begin(n_levels - 1, fiber);
    };

    for (offset_t slice = 0; slice < csf.num_slices(); ++slice) {
      // Fiber-segment range of this slice.
      offset_t fbr_begin = csf.child_begin(0, slice);
      offset_t fbr_end = csf.child_end(0, slice);
      for (index_t l = 1; l + 1 < n_levels; ++l) {
        fbr_begin = csf.level_pointers(l)[fbr_begin];
        fbr_end = csf.level_pointers(l)[fbr_end];
      }
      if (n_levels == 1) {
        // order-2 tensor: the slice is the fiber.
        fbr_begin = slice;
        fbr_end = slice + 1;
      }

      if (!out.opts_.slice_split) {
        BcsfTensor::Block b;
        b.slice = slice;
        b.fiber_begin = fbr_begin;
        b.fiber_end = fbr_end;
        for (offset_t f = fbr_begin; f < fbr_end; ++f) b.nnz += leaf_count(f);
        b.atomic_output = false;
        out.blocks_.push_back(b);
        continue;
      }

      const offset_t first_block = out.blocks_.size();
      BcsfTensor::Block cur;
      cur.slice = slice;
      cur.fiber_begin = fbr_begin;
      for (offset_t f = fbr_begin; f < fbr_end; ++f) {
        cur.nnz += leaf_count(f);
        if (cur.nnz >= capacity) {
          cur.fiber_end = f + 1;
          out.blocks_.push_back(cur);
          cur = BcsfTensor::Block{};
          cur.slice = slice;
          cur.fiber_begin = f + 1;
        }
      }
      if (cur.fiber_begin < fbr_end) {
        cur.fiber_end = fbr_end;
        out.blocks_.push_back(cur);
      }
      const offset_t produced = out.blocks_.size() - first_block;
      if (produced > 1) {
        ++out.split_slice_count_;
        for (offset_t b = first_block; b < out.blocks_.size(); ++b) {
          out.blocks_[b].atomic_output = true;
        }
      }
    }
  }
};

BcsfTensor build_bcsf_from_csf(const CsfTensor& csf, const BcsfOptions& opts) {
  return BcsfBuilder::build(csf, opts);
}

BcsfTensor build_bcsf(const SparseTensor& tensor, index_t mode,
                      const BcsfOptions& opts) {
  return BcsfBuilder::build(build_csf(tensor, mode), opts);
}

void BcsfTensor::validate() const {
  csf_.validate();
  const index_t fiber_level = csf_.node_levels() - 1;
  if (opts_.fiber_split && csf_.order() >= 3) {
    for (offset_t f = 0; f < csf_.num_fibers(); ++f) {
      const offset_t len =
          csf_.child_end(fiber_level, f) - csf_.child_begin(fiber_level, f);
      BCSF_CHECK(len <= opts_.fiber_threshold,
                 "bcsf validate: fiber segment " << f << " has " << len
                     << " nonzeros (threshold " << opts_.fiber_threshold << ")");
    }
  }
  // Blocks must tile every slice's fiber range exactly once, in order.
  offset_t covered = 0;
  offset_t total_nnz = 0;
  for (const auto& b : blocks_) {
    BCSF_CHECK(b.fiber_begin == covered,
               "bcsf validate: block fiber ranges not contiguous");
    BCSF_CHECK(b.fiber_end > b.fiber_begin, "bcsf validate: empty block");
    covered = b.fiber_end;
    total_nnz += b.nnz;
  }
  BCSF_CHECK(covered == csf_.num_fibers(),
             "bcsf validate: blocks do not cover all fiber segments");
  BCSF_CHECK(total_nnz == csf_.nnz(),
             "bcsf validate: block nnz totals " << total_nnz << " != " << csf_.nnz());
}

std::string BcsfTensor::summary() const {
  std::ostringstream os;
  os << "B-CSF(root mode " << root_mode() << "): nnz=" << nnz()
     << " slices=" << csf_.num_slices() << " fiber_segments="
     << num_fiber_segments() << " blocks=" << blocks_.size()
     << " split_fibers=" << split_fiber_count_
     << " split_slices=" << split_slice_count_;
  return os.str();
}

}  // namespace bcsf
