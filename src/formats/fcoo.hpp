// F-COO: Flagged COOrdinate format of Liu et al. [17] (§VII) -- a GPU
// baseline the paper compares against (Figs. 15 and 16).
//
// F-COO parallelizes over nonzeros like COO, but replaces the explicit
// root-mode index array with boolean flags: `bf` marks nonzeros that start
// a new fiber and `sf` marks those that start a new slice.  Write
// conflicts are resolved with a segmented scan instead of per-nonzero
// atomics.  Each fixed-size partition (`threads * threadlen` nonzeros)
// records its starting slice index so a thread can recover the output row
// by counting flags from the partition start.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "tensor/sparse_tensor.hpp"
#include "util/types.hpp"

namespace bcsf {

struct FcooOptions {
  /// Nonzeros per partition = product of thread block size and per-thread
  /// work; the paper tunes block in {32..1024} and threadlen in {8..64}.
  offset_t partition_size = 256 * 16;
};

class FcooTensor {
 public:
  const ModeOrder& mode_order() const { return mode_order_; }
  index_t root_mode() const { return mode_order_.front(); }
  index_t order() const { return static_cast<index_t>(mode_order_.size()); }
  const std::vector<index_t>& dims() const { return dims_; }
  offset_t nnz() const { return vals_.size(); }

  /// Coordinate along non-root position p (mode_order()[p+1]) of nonzero z.
  index_t nz_index(index_t p, offset_t z) const { return nz_inds_[p][z]; }
  value_t value(offset_t z) const { return vals_[z]; }

  bool starts_slice(offset_t z) const { return slice_flag_[z] != 0; }
  bool starts_fiber(offset_t z) const { return fiber_flag_[z] != 0; }

  offset_t num_partitions() const { return partition_slice_ordinal_.size(); }
  offset_t partition_size() const { return opts_.partition_size; }
  /// Ordinal (position in slice_index_list) of the slice active at the
  /// partition's first nonzero.  A thread recovers the output row of
  /// nonzero z as slice_index(partition ordinal + #sf flags in
  /// (partition start, z]) -- the segmented-scan bookkeeping of F-COO.
  offset_t partition_slice_ordinal(offset_t p) const {
    return partition_slice_ordinal_[p];
  }
  offset_t num_slices() const { return slice_index_list_.size(); }
  /// Root-mode index of the s-th distinct slice (compacted list).
  index_t slice_index(offset_t s) const { return slice_index_list_[s]; }

  /// Index storage: (order-1) coordinate words per nonzero plus two
  /// 1-bit flag arrays ("a boolean array to indicate the starting location
  /// of the fibers, instead of an integer array", §VI-F) plus the
  /// compacted slice index list and one word per partition.
  std::size_t index_storage_bytes() const {
    const std::size_t words = (order() - 1) * nnz() +
                              partition_slice_ordinal_.size() +
                              slice_index_list_.size();
    return words * kIndexBytes + 2 * ceil_div<std::size_t>(nnz(), 8);
  }

  void validate() const;
  std::string summary() const;

 private:
  friend FcooTensor build_fcoo(const SparseTensor& tensor, index_t mode,
                               const FcooOptions& opts);

  ModeOrder mode_order_;
  std::vector<index_t> dims_;
  FcooOptions opts_;
  std::vector<index_vec> nz_inds_;
  value_vec vals_;
  std::vector<std::uint8_t> slice_flag_;  // sf
  std::vector<std::uint8_t> fiber_flag_;  // bf
  index_vec slice_index_list_;            // compacted root indices
  offset_vec partition_slice_ordinal_;
};

FcooTensor build_fcoo(const SparseTensor& tensor, index_t mode,
                      const FcooOptions& opts = {});

}  // namespace bcsf
