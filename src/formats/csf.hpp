// Compressed Sparse Fiber (CSF) -- the hierarchical tensor format of
// Smith et al. [12] that the paper extends (§III-B, Fig. 1, Alg. 3).
//
// For an order-N tensor sorted by a mode ordering, the nonzeros form a
// tree: level 0 nodes are slices (unique root-mode indices), level N-2
// nodes are fibers (unique all-but-leaf index tuples), and the leaf level
// stores the last mode's index and value per nonzero.  CSF is DCSR lifted
// to tensors: each node level stores its index plus a pointer range into
// the next level, and only non-empty nodes exist.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "tensor/sparse_tensor.hpp"
#include "util/types.hpp"

namespace bcsf {

class CsfTensor {
 public:
  CsfTensor() = default;

  /// Number of node levels (= order - 1); level `order-1` is the implicit
  /// leaf level held in `leaf_inds`/`vals`.
  index_t node_levels() const { return static_cast<index_t>(idx_.size()); }
  index_t order() const { return node_levels() + 1; }

  const ModeOrder& mode_order() const { return mode_order_; }
  /// The tensor mode this representation is rooted at (mode_order[0]).
  index_t root_mode() const { return mode_order_.front(); }
  const std::vector<index_t>& dims() const { return dims_; }

  offset_t nnz() const { return vals_.size(); }
  /// S: number of (non-empty) slices = level-0 nodes.
  offset_t num_slices() const { return idx_.empty() ? 0 : idx_[0].size(); }
  /// F: number of (non-empty) fibers = level-(order-2) nodes.
  offset_t num_fibers() const {
    return idx_.empty() ? 0 : idx_.back().size();
  }
  offset_t num_nodes(index_t level) const { return idx_.at(level).size(); }

  /// Index (coordinate along mode_order()[level]) of node `n` at `level`.
  index_t node_index(index_t level, offset_t n) const {
    return idx_[level][n];
  }
  /// Children of node `n` at `level` occupy [child_begin, child_end) at
  /// level+1 (or in the leaf arrays when level == order-2).
  offset_t child_begin(index_t level, offset_t n) const {
    return ptr_[level][n];
  }
  offset_t child_end(index_t level, offset_t n) const {
    return ptr_[level][n + 1];
  }

  index_t leaf_index(offset_t z) const { return leaf_inds_[z]; }
  value_t value(offset_t z) const { return vals_[z]; }

  const index_vec& level_indices(index_t level) const { return idx_.at(level); }
  const offset_vec& level_pointers(index_t level) const { return ptr_.at(level); }
  const index_vec& leaf_indices() const { return leaf_inds_; }
  const value_vec& values() const { return vals_; }

  /// Nonzeros under node `n` at `level` (leaf range spanned by the subtree).
  offset_t subtree_nnz(index_t level, offset_t n) const;

  /// Verifies tree invariants (monotone pointers, sorted sibling indices,
  /// no empty nodes); throws bcsf::Error on violation.
  void validate() const;

  /// Index storage in bytes following the paper's accounting
  /// (§III-B: 4 x (2S + 2F + M) for order 3): every node level pays one
  /// index word + one pointer word per node, the leaf pays one word per
  /// nonzero.
  std::size_t index_storage_bytes() const;

  std::string summary() const;

 private:
  friend CsfTensor build_csf_from_sorted(const SparseTensor& sorted,
                                         const ModeOrder& order);
  friend class BcsfBuilder;

  ModeOrder mode_order_;
  std::vector<index_t> dims_;
  std::vector<index_vec> idx_;   // node index arrays, one per node level
  std::vector<offset_vec> ptr_;  // node child pointers, one per node level
  index_vec leaf_inds_;
  value_vec vals_;
};

/// Builds the CSF tree for `mode` (root = mode, remaining modes in
/// increasing order, the paper's convention).  Sorts a copy of the tensor.
CsfTensor build_csf(const SparseTensor& tensor, index_t mode);

/// Builds from an already-sorted tensor (no copy, no sort).  The tensor
/// must be sorted by `order` (checked).
CsfTensor build_csf_from_sorted(const SparseTensor& sorted,
                                const ModeOrder& order);

}  // namespace bcsf
