#include "formats/hicoo.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "util/error.hpp"

namespace bcsf {

HicooTensor build_hicoo(const SparseTensor& tensor, const HicooOptions& opts) {
  BCSF_CHECK(opts.block_bits >= 1 && opts.block_bits <= 8,
             "hicoo: block_bits must be in [1,8] (byte-wide element offsets)");
  HicooTensor t;
  t.dims_ = tensor.dims();
  t.opts_ = opts;
  const index_t order = tensor.order();
  const offset_t m = tensor.nnz();
  const index_t bits = opts.block_bits;

  // Sort nonzeros by block coordinate tuple, then by local offsets, so each
  // block is a contiguous run (mode-0-major ordering as in HiCOO's LEXI
  // scheme).
  std::vector<offset_t> perm(m);
  std::iota(perm.begin(), perm.end(), offset_t{0});
  std::sort(perm.begin(), perm.end(), [&](offset_t a, offset_t b) {
    for (index_t mo = 0; mo < order; ++mo) {
      const index_t ba = tensor.coord(mo, a) >> bits;
      const index_t bb = tensor.coord(mo, b) >> bits;
      if (ba != bb) return ba < bb;
    }
    for (index_t mo = 0; mo < order; ++mo) {
      const index_t ea = tensor.coord(mo, a);
      const index_t eb = tensor.coord(mo, b);
      if (ea != eb) return ea < eb;
    }
    return false;
  });

  t.binds_.resize(order);
  t.einds_.resize(order);
  for (index_t mo = 0; mo < order; ++mo) t.einds_[mo].resize(m);
  t.vals_.resize(m);

  const std::uint8_t mask = static_cast<std::uint8_t>((1U << bits) - 1);
  for (offset_t zi = 0; zi < m; ++zi) {
    const offset_t z = perm[zi];
    bool new_block = (zi == 0);
    if (!new_block) {
      const offset_t prev = perm[zi - 1];
      for (index_t mo = 0; mo < order; ++mo) {
        if ((tensor.coord(mo, z) >> bits) != (tensor.coord(mo, prev) >> bits)) {
          new_block = true;
          break;
        }
      }
    }
    if (new_block) {
      t.bptr_.push_back(zi);
      for (index_t mo = 0; mo < order; ++mo) {
        t.binds_[mo].push_back(tensor.coord(mo, z) >> bits);
      }
    }
    for (index_t mo = 0; mo < order; ++mo) {
      t.einds_[mo][zi] =
          static_cast<std::uint8_t>(tensor.coord(mo, z) & mask);
    }
    t.vals_[zi] = tensor.value(z);
  }
  t.bptr_.push_back(m);
  return t;
}

void HicooTensor::validate() const {
  const offset_t nb = num_blocks();
  for (index_t mo = 0; mo < order(); ++mo) {
    BCSF_CHECK(binds_[mo].size() == nb, "hicoo validate: block index length");
    BCSF_CHECK(einds_[mo].size() == nnz(), "hicoo validate: offset length");
  }
  for (offset_t b = 0; b < nb; ++b) {
    BCSF_CHECK(bptr_[b] < bptr_[b + 1], "hicoo validate: empty block " << b);
    for (offset_t z = bptr_[b]; z < bptr_[b + 1]; ++z) {
      for (index_t mo = 0; mo < order(); ++mo) {
        BCSF_CHECK(coord(mo, b, z) < dims_[mo],
                   "hicoo validate: reconstructed coordinate out of bounds");
      }
    }
  }
}

std::string HicooTensor::summary() const {
  std::ostringstream os;
  os << "HiCOO(b=" << opts_.block_bits << "): nnz=" << nnz()
     << " blocks=" << num_blocks()
     << " index_bytes=" << index_storage_bytes();
  return os.str();
}

}  // namespace bcsf
