#include "formats/storage.hpp"

#include "formats/bcsf.hpp"
#include "formats/csf.hpp"
#include "formats/fcoo.hpp"
#include "formats/hbcsf.hpp"
#include "formats/hicoo.hpp"

namespace bcsf {

namespace {
StorageReport make_report(std::string format, std::size_t bytes,
                          offset_t nnz) {
  StorageReport r;
  r.format = std::move(format);
  r.bytes = bytes;
  r.words_per_nnz =
      nnz == 0 ? 0.0
               : static_cast<double>(bytes) /
                     (static_cast<double>(nnz) * kIndexBytes);
  return r;
}
}  // namespace

StorageReport coo_storage(const SparseTensor& tensor) {
  return make_report("COO", tensor.index_storage_bytes(), tensor.nnz());
}

StorageReport csf_storage(const SparseTensor& tensor, index_t mode) {
  const CsfTensor csf = build_csf(tensor, mode);
  return make_report("CSF", csf.index_storage_bytes(), tensor.nnz());
}

StorageReport bcsf_storage(const SparseTensor& tensor, index_t mode) {
  const BcsfTensor b = build_bcsf(tensor, mode);
  return make_report("B-CSF", b.index_storage_bytes(), tensor.nnz());
}

StorageReport hbcsf_storage(const SparseTensor& tensor, index_t mode) {
  const HbcsfTensor h = build_hbcsf(tensor, mode);
  return make_report("HB-CSF", h.index_storage_bytes(), tensor.nnz());
}

StorageReport fcoo_storage(const SparseTensor& tensor, index_t mode) {
  const FcooTensor f = build_fcoo(tensor, mode);
  return make_report("F-COO", f.index_storage_bytes(), tensor.nnz());
}

StorageReport hicoo_storage(const SparseTensor& tensor) {
  const HicooTensor h = build_hicoo(tensor);
  return make_report("HiCOO", h.index_storage_bytes(), tensor.nnz());
}

std::size_t coo_storage_formula(index_t order, offset_t nnz) {
  return static_cast<std::size_t>(order) * nnz * kIndexBytes;
}

std::size_t csf_storage_formula(offset_t slices, offset_t fibers,
                                offset_t nnz) {
  return (2 * slices + 2 * fibers + nnz) * kIndexBytes;
}

std::size_t csf_storage_all_modes(const SparseTensor& tensor) {
  std::size_t total = 0;
  for (index_t mode = 0; mode < tensor.order(); ++mode) {
    total += csf_storage(tensor, mode).bytes;
  }
  return total;
}

std::size_t hbcsf_storage_all_modes(const SparseTensor& tensor) {
  std::size_t total = 0;
  for (index_t mode = 0; mode < tensor.order(); ++mode) {
    total += hbcsf_storage(tensor, mode).bytes;
  }
  return total;
}

std::size_t fcoo_storage_all_modes(const SparseTensor& tensor) {
  std::size_t total = 0;
  for (index_t mode = 0; mode < tensor.order(); ++mode) {
    total += fcoo_storage(tensor, mode).bytes;
  }
  return total;
}

}  // namespace bcsf
