#include "formats/hbcsf.hpp"

#include <sstream>

#include "tensor/tensor_stats.hpp"
#include "util/error.hpp"

namespace bcsf {

HbcsfTensor build_hbcsf(const SparseTensor& tensor, index_t mode,
                        const BcsfOptions& opts) {
  const ModeOrder order = mode_order_for(mode, tensor.order());
  // Compaction hands over coalesced (identity-sorted) tensors: for the
  // identity orientation the copy+sort would be pure waste, so reuse the
  // input in place when it is already ordered.
  SparseTensor sorted_copy;
  const SparseTensor* src = &tensor;
  if (!tensor.is_sorted(order)) {
    sorted_copy = tensor;
    sorted_copy.sort(order);
    src = &sorted_copy;
  }
  const SparseTensor& sorted = *src;

  HbcsfTensor out;
  out.mode_order_ = order;
  out.dims_ = tensor.dims();
  out.coo_inds_.resize(tensor.order());

  // Classify each slice (Alg. 5 lines 1-16) using the slice/fiber scan.
  const SliceFiberCounts counts = count_slices_and_fibers(sorted, order);
  const offset_t n_slices = counts.slice_nnz.size();

  // Partition the sorted nonzeros into the three groups.  Groups keep the
  // sorted order, so the CSL/B-CSF builders can run without re-sorting.
  SparseTensor csl_part(tensor.dims());
  SparseTensor csf_part(tensor.dims());
  // CSL slice boundaries fall out of this classification loop for free;
  // handing them to the builder saves its boundary re-scan.
  index_vec csl_slice_inds;
  offset_vec csl_slice_ptr;

  std::vector<index_t> coord(tensor.order());
  offset_t z = 0;        // cursor over sorted nonzeros
  offset_t fiber = 0;    // cursor over fibers
  for (offset_t slc = 0; slc < n_slices; ++slc) {
    const offset_t slice_nnz = counts.slice_nnz[slc];
    const offset_t fiber_end = counts.slice_fiber_begin[slc + 1];
    bool all_singleton = true;
    for (offset_t f = fiber; f < fiber_end; ++f) {
      if (counts.fiber_nnz[f] != 1) {
        all_singleton = false;
        break;
      }
    }
    fiber = fiber_end;

    if (slice_nnz == 1) {
      for (index_t p = 0; p < tensor.order(); ++p) {
        out.coo_inds_[p].push_back(sorted.coord(order[p], z));
      }
      out.coo_vals_.push_back(sorted.value(z));
      ++z;
      continue;
    }
    SparseTensor& dest = all_singleton ? csl_part : csf_part;
    if (all_singleton) {
      csl_slice_inds.push_back(counts.slice_index[slc]);
      csl_slice_ptr.push_back(csl_part.nnz());
    }
    for (offset_t i = 0; i < slice_nnz; ++i, ++z) {
      for (index_t p = 0; p < tensor.order(); ++p) {
        coord[order[p]] = sorted.coord(order[p], z);
      }
      dest.push_back(coord, sorted.value(z));
    }
  }
  BCSF_ASSERT(z == sorted.nnz(), "hbcsf: partition did not cover all nonzeros");

  csl_slice_ptr.push_back(csl_part.nnz());
  out.csl_ = build_csl_from_sorted(csl_part, order, std::move(csl_slice_inds),
                                   std::move(csl_slice_ptr));
  out.bcsf_ = build_bcsf_from_csf(build_csf_from_sorted(csf_part, order), opts);
  return out;
}

void HbcsfTensor::validate() const {
  csl_.validate();
  bcsf_.validate();
  for (index_t p = 0; p < order(); ++p) {
    BCSF_CHECK(coo_inds_[p].size() == coo_vals_.size(),
               "hbcsf validate: COO group array length");
    for (index_t idx : coo_inds_[p]) {
      BCSF_CHECK(idx < dims_[mode_order_[p]],
                 "hbcsf validate: COO index out of bounds");
    }
  }
  // Every CSL slice must consist of singleton fibers, i.e. no two nonzeros
  // in a CSL slice may share all non-leaf coordinates.
  for (offset_t s = 0; s < csl_.num_slices(); ++s) {
    for (offset_t a = csl_.slice_begin(s) + 1; a < csl_.slice_end(s); ++a) {
      bool same_fiber = true;
      for (index_t p = 0; p + 2 < order(); ++p) {  // non-root, non-leaf coords
        if (csl_.nz_index(p, a) != csl_.nz_index(p, a - 1)) {
          same_fiber = false;
          break;
        }
      }
      BCSF_CHECK(!same_fiber || order() == 2,
                 "hbcsf validate: CSL slice " << s << " has a multi-nonzero fiber");
    }
  }
}

std::string HbcsfTensor::summary() const {
  std::ostringstream os;
  os << "HB-CSF(root mode " << root_mode() << "): nnz=" << nnz() << " [coo="
     << coo_nnz() << " csl=" << csl_nnz() << " csf=" << csf_nnz()
     << "] index_bytes=" << index_storage_bytes();
  return os.str();
}

}  // namespace bcsf
