// Index-storage accounting across formats (§III closed forms, Fig. 16).
// Numerical values are excluded everywhere, matching the paper: "We
// account only for the indices, since the numerical values always have the
// same storage needs in all storage methods."
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "tensor/sparse_tensor.hpp"
#include "util/types.hpp"

namespace bcsf {

struct StorageReport {
  std::string format;
  std::size_t bytes = 0;
  /// bytes / (4 * nnz): storage in units of "words per nonzero", the
  /// paper's normalization (COO = order words/nnz, CSF in [1M, 5M], ...).
  double words_per_nnz = 0.0;
};

/// Measured index storage for one mode orientation of `tensor`.
StorageReport coo_storage(const SparseTensor& tensor);
StorageReport csf_storage(const SparseTensor& tensor, index_t mode);
StorageReport bcsf_storage(const SparseTensor& tensor, index_t mode);
StorageReport hbcsf_storage(const SparseTensor& tensor, index_t mode);
StorageReport fcoo_storage(const SparseTensor& tensor, index_t mode);
StorageReport hicoo_storage(const SparseTensor& tensor);

/// Closed-form predictions from §III for a third-order tensor, used to
/// cross-check the measured numbers in tests:
///   COO: 4 * 3M;  CSF: 4 * (2S + 2F + M).
std::size_t coo_storage_formula(index_t order, offset_t nnz);
std::size_t csf_storage_formula(offset_t slices, offset_t fibers, offset_t nnz);

/// All-mode sum, as plotted in Fig. 16 for the mode-oriented formats
/// ("N representations for an N-order tensor").
std::size_t csf_storage_all_modes(const SparseTensor& tensor);
std::size_t hbcsf_storage_all_modes(const SparseTensor& tensor);
std::size_t fcoo_storage_all_modes(const SparseTensor& tensor);

}  // namespace bcsf
