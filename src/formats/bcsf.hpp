// B-CSF: Balanced CSF (§IV) -- the paper's first contribution.
//
// Two rebalancing transformations are applied to a CSF tree so that a GPU
// can process it without inter-warp or inter-thread-block load imbalance:
//
//  * fbr-split (§IV-B): any fiber holding more than `fiber_threshold`
//    nonzeros is split into fiber *segments* of at most that many
//    nonzeros.  Segments repeat the fiber index, so warps see near-equal
//    work.  Splitting distributes over the fiber-local reduction of
//    Eq. (8), so the result is unchanged.
//
//  * slc-split (§IV-A): heavy slices are processed by several thread
//    blocks.  Following the binning idea of Ashari et al. [26], the
//    builder packs each slice's fiber segments into *blocks* of roughly
//    `block_nnz_capacity` nonzeros; a slice spanning several blocks needs
//    atomic updates to its output row ("the cost of the extra atomic
//    operations is well tolerated by the increase in concurrency").
//
// The block list is part of the format: it *is* the GPU work schedule
// (one thread block per entry), and the simulator consumes it directly.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "formats/csf.hpp"
#include "tensor/sparse_tensor.hpp"
#include "util/types.hpp"

namespace bcsf {

struct BcsfOptions {
  bool fiber_split = true;
  bool slice_split = true;
  /// Max nonzeros per fiber segment; the paper finds 128 best (§VI-B).
  offset_t fiber_threshold = 128;
  /// Nonzeros per thread-block bin for slc-split; the paper's example uses
  /// 512-thread blocks processing ~512 nonzeros.
  offset_t block_nnz_capacity = 512;
};

class BcsfTensor {
 public:
  /// One GPU thread block's assignment: a contiguous run of fiber segments
  /// inside a single slice.  `atomic_output` is set when the owning slice
  /// spans several blocks and the output row must be updated atomically.
  struct Block {
    offset_t slice = 0;        ///< level-0 node owning these fibers
    offset_t fiber_begin = 0;  ///< leaf-parent node range [begin, end)
    offset_t fiber_end = 0;
    offset_t nnz = 0;          ///< leaf nonzeros covered by the block
    bool atomic_output = false;
  };

  const CsfTensor& csf() const { return csf_; }
  const BcsfOptions& options() const { return opts_; }
  const std::vector<Block>& blocks() const { return blocks_; }

  index_t order() const { return csf_.order(); }
  index_t root_mode() const { return csf_.root_mode(); }
  offset_t nnz() const { return csf_.nnz(); }
  offset_t num_fiber_segments() const { return csf_.num_fibers(); }

  /// Coordinate of the ancestor of fiber segment `f` at node level
  /// `level` (level order-2 gives the segment's own index).  Precomputed
  /// so kernels reach every factor row without tree walks.
  index_t fiber_coord(index_t level, offset_t f) const {
    return fiber_coords_[level][f];
  }

  /// Number of original fibers that were split (Fig. 5 diagnostics).
  offset_t split_fiber_count() const { return split_fiber_count_; }
  /// Number of slices processed by more than one block.
  offset_t split_slice_count() const { return split_slice_count_; }

  /// Index storage: CSF bytes plus one extra (index, pointer) word pair
  /// per added fiber segment.
  std::size_t index_storage_bytes() const {
    return csf_.index_storage_bytes();
  }

  void validate() const;
  std::string summary() const;

 private:
  friend class BcsfBuilder;

  CsfTensor csf_;
  BcsfOptions opts_;
  std::vector<Block> blocks_;
  std::vector<index_vec> fiber_coords_;  // [node level][fiber segment]
  offset_t split_fiber_count_ = 0;
  offset_t split_slice_count_ = 0;
};

/// Builds B-CSF for `mode`.  Construction cost is a single extra pass over
/// the CSF arrays ("this preprocessing step can be done while constructing
/// the CSF data structure", §IV-B).
BcsfTensor build_bcsf(const SparseTensor& tensor, index_t mode,
                      const BcsfOptions& opts = {});

/// Builds B-CSF from an existing CSF tree (shares no state; copies).
BcsfTensor build_bcsf_from_csf(const CsfTensor& csf, const BcsfOptions& opts = {});

}  // namespace bcsf
