// CSR and DCSR sparse matrices -- the ancestry of CSF (§III-B):
// "CSF for tensors is similar to CSR for matrices.  To avoid repetitive
// row entries, CSR stores a pointer to the start of a row.  However, for
// hyper-sparse matrices, where a significant number of rows could be
// empty, DCSR is a more efficient choice" (Buluc & Gilbert [24]).
//
// Included both as the background substrate the paper builds its storage
// argument on and as a working SpMV layer (DFacTo-style MTTKRP is "an
// algorithm to perform an MTTKRP by computing multiple SpMVs").
#pragma once

#include <cstddef>
#include <string>

#include "tensor/sparse_tensor.hpp"
#include "util/types.hpp"

namespace bcsf {

/// Classic CSR: row pointers over *all* rows (empty rows cost one word).
class CsrMatrix {
 public:
  CsrMatrix() = default;

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  offset_t nnz() const { return vals_.size(); }

  offset_t row_begin(index_t r) const { return row_ptr_[r]; }
  offset_t row_end(index_t r) const { return row_ptr_[r + 1]; }
  index_t col(offset_t z) const { return cols_idx_[z]; }
  value_t value(offset_t z) const { return vals_[z]; }

  /// Index storage: (rows+1) pointer words + nnz column words.
  std::size_t index_storage_bytes() const {
    return (row_ptr_.size() + cols_idx_.size()) * kIndexBytes;
  }

  /// y = A x  (y sized rows()).
  void spmv(std::span<const value_t> x, std::span<value_t> y) const;

  void validate() const;
  std::string summary() const;

 private:
  friend CsrMatrix build_csr(const SparseTensor& matrix);
  index_t rows_ = 0;
  index_t cols_ = 0;
  offset_vec row_ptr_;
  index_vec cols_idx_;
  value_vec vals_;
};

/// Doubly-compressed CSR: pointers and indices only for non-empty rows.
class DcsrMatrix {
 public:
  DcsrMatrix() = default;

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  offset_t nnz() const { return vals_.size(); }
  offset_t num_nonempty_rows() const { return row_idx_.size(); }

  index_t row_index(offset_t r) const { return row_idx_[r]; }
  offset_t row_begin(offset_t r) const { return row_ptr_[r]; }
  offset_t row_end(offset_t r) const { return row_ptr_[r + 1]; }
  index_t col(offset_t z) const { return cols_idx_[z]; }
  value_t value(offset_t z) const { return vals_[z]; }

  /// Index storage: 2 words per non-empty row + nnz column words --
  /// exactly the order-2 case of the CSF formula 4(2S + 2F + M) with
  /// S = F = non-empty rows.
  std::size_t index_storage_bytes() const {
    return (2 * row_idx_.size() + cols_idx_.size()) * kIndexBytes;
  }

  void spmv(std::span<const value_t> x, std::span<value_t> y) const;

  void validate() const;
  std::string summary() const;

 private:
  friend DcsrMatrix build_dcsr(const SparseTensor& matrix);
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_vec row_idx_;   // non-empty row ids
  offset_vec row_ptr_;  // size num_nonempty_rows + 1
  index_vec cols_idx_;
  value_vec vals_;
};

/// Builders from an order-2 SparseTensor (sorted copies made internally).
CsrMatrix build_csr(const SparseTensor& matrix);
DcsrMatrix build_dcsr(const SparseTensor& matrix);

}  // namespace bcsf
