#include "formats/csl.hpp"

#include <sstream>

#include "util/error.hpp"

namespace bcsf {

CslTensor build_csl_from_sorted(const SparseTensor& sorted,
                                const ModeOrder& order) {
  BCSF_CHECK(order.size() == sorted.order(), "build_csl: bad mode order");
  BCSF_CHECK(sorted.is_sorted(order), "build_csl: tensor not sorted");

  CslTensor t;
  t.mode_order_ = order;
  t.dims_ = sorted.dims();
  const index_t n_other = sorted.order() - 1;
  t.nz_inds_.resize(n_other);

  const offset_t m = sorted.nnz();
  const index_t root = order.front();
  for (index_t p = 0; p < n_other; ++p) t.nz_inds_[p].reserve(m);
  t.vals_.reserve(m);

  for (offset_t z = 0; z < m; ++z) {
    if (z == 0 || sorted.coord(root, z) != sorted.coord(root, z - 1)) {
      t.slice_inds_.push_back(sorted.coord(root, z));
      t.slice_ptr_.push_back(z);
    }
    for (index_t p = 0; p < n_other; ++p) {
      t.nz_inds_[p].push_back(sorted.coord(order[p + 1], z));
    }
    t.vals_.push_back(sorted.value(z));
  }
  t.slice_ptr_.push_back(m);
  return t;
}

CslTensor build_csl_from_sorted(const SparseTensor& sorted,
                                const ModeOrder& order, index_vec slice_inds,
                                offset_vec slice_ptr) {
  BCSF_CHECK(order.size() == sorted.order(), "build_csl: bad mode order");
  BCSF_CHECK(slice_ptr.size() == slice_inds.size() + 1 &&
                 (slice_ptr.empty() || slice_ptr.back() == sorted.nnz()),
             "build_csl: caller-provided slice boundaries malformed");

  CslTensor t;
  t.mode_order_ = order;
  t.dims_ = sorted.dims();
  t.slice_inds_ = std::move(slice_inds);
  t.slice_ptr_ = std::move(slice_ptr);
  if (t.slice_ptr_.empty()) t.slice_ptr_.push_back(0);

  const index_t n_other = sorted.order() - 1;
  t.nz_inds_.resize(n_other);
  for (index_t p = 0; p < n_other; ++p) {
    const auto src = sorted.mode_indices(order[p + 1]);
    t.nz_inds_[p].assign(src.begin(), src.end());
  }
  const auto vals = sorted.values();
  t.vals_.assign(vals.begin(), vals.end());
  return t;
}

CslTensor build_csl(const SparseTensor& tensor, index_t mode) {
  SparseTensor copy = tensor;
  const ModeOrder order = mode_order_for(mode, tensor.order());
  copy.sort(order);
  return build_csl_from_sorted(copy, order);
}

void CslTensor::validate() const {
  BCSF_CHECK(slice_ptr_.size() == slice_inds_.size() + 1,
             "csl validate: slice pointer length");
  if (!slice_ptr_.empty()) {
    BCSF_CHECK(slice_ptr_.front() == 0, "csl validate: first pointer not 0");
    BCSF_CHECK(slice_ptr_.back() == nnz(), "csl validate: last pointer");
  }
  for (offset_t s = 0; s + 1 < slice_ptr_.size(); ++s) {
    BCSF_CHECK(slice_ptr_[s] < slice_ptr_[s + 1], "csl validate: empty slice");
  }
  for (index_t p = 0; p + 1 < mode_order_.size(); ++p) {
    BCSF_CHECK(nz_inds_[p].size() == vals_.size(),
               "csl validate: nonzero index array length");
  }
}

std::string CslTensor::summary() const {
  std::ostringstream os;
  os << "CSL(root mode " << root_mode() << "): nnz=" << nnz()
     << " S=" << num_slices() << " index_bytes=" << index_storage_bytes();
  return os.str();
}

}  // namespace bcsf
