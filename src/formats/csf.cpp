#include "formats/csf.hpp"

#include <sstream>

#include "util/error.hpp"

namespace bcsf {

CsfTensor build_csf_from_sorted(const SparseTensor& sorted,
                                const ModeOrder& order) {
  BCSF_CHECK(order.size() == sorted.order(), "build_csf: bad mode order");
  BCSF_CHECK(sorted.order() >= 2, "build_csf: order must be >= 2");
  BCSF_CHECK(sorted.is_sorted(order), "build_csf: tensor not sorted by mode order");

  CsfTensor t;
  t.mode_order_ = order;
  t.dims_ = sorted.dims();
  const index_t n_levels = sorted.order() - 1;
  t.idx_.resize(n_levels);
  t.ptr_.resize(n_levels);

  const offset_t m = sorted.nnz();
  t.leaf_inds_.resize(m);
  t.vals_.resize(m);
  const index_t leaf_mode = order.back();
  for (offset_t z = 0; z < m; ++z) {
    t.leaf_inds_[z] = sorted.coord(leaf_mode, z);
    t.vals_[z] = sorted.value(z);
  }
  if (m == 0) {
    for (index_t level = 0; level < n_levels; ++level) {
      t.ptr_[level].push_back(0);
    }
    return t;
  }

  // One pass: at every nonzero boundary decide, per level, whether a new
  // node starts (a change in any ancestor-or-self coordinate).
  for (index_t level = 0; level < n_levels; ++level) {
    t.idx_[level].push_back(sorted.coord(order[level], 0));
  }
  // child counters: nodes at level L point into level L+1's node list
  // (or the leaf array when L == n_levels-1).
  for (index_t level = 0; level < n_levels; ++level) {
    t.ptr_[level].push_back(0);
  }

  for (offset_t z = 1; z < m; ++z) {
    // Find the shallowest level whose coordinate changed.
    index_t changed = n_levels;  // n_levels = only the leaf changed
    for (index_t level = 0; level < n_levels; ++level) {
      if (sorted.coord(order[level], z) != sorted.coord(order[level], z - 1)) {
        changed = level;
        break;
      }
    }
    // A change at level L starts a new node at levels L..n_levels-1.
    for (index_t level = changed; level < n_levels; ++level) {
      // Close the current node at `level`: record where its children end.
      const offset_t child_count =
          (level + 1 < n_levels) ? t.idx_[level + 1].size() : z;
      t.ptr_[level].push_back(child_count);
      t.idx_[level].push_back(sorted.coord(order[level], z));
    }
  }
  for (index_t level = 0; level < n_levels; ++level) {
    const offset_t child_count =
        (level + 1 < n_levels) ? t.idx_[level + 1].size() : m;
    t.ptr_[level].push_back(child_count);
  }
  return t;
}

CsfTensor build_csf(const SparseTensor& tensor, index_t mode) {
  SparseTensor copy = tensor;
  const ModeOrder order = mode_order_for(mode, tensor.order());
  copy.sort(order);
  return build_csf_from_sorted(copy, order);
}

offset_t CsfTensor::subtree_nnz(index_t level, offset_t n) const {
  offset_t begin = child_begin(level, n);
  offset_t end = child_end(level, n);
  for (index_t l = level + 1; l < node_levels(); ++l) {
    begin = ptr_[l][begin];
    end = ptr_[l][end];
  }
  return end - begin;
}

void CsfTensor::validate() const {
  const index_t n_levels = node_levels();
  for (index_t level = 0; level < n_levels; ++level) {
    const auto& idx = idx_[level];
    const auto& ptr = ptr_[level];
    BCSF_CHECK(ptr.size() == idx.size() + 1,
               "csf validate: pointer array length at level " << level);
    BCSF_CHECK(ptr.front() == 0, "csf validate: first pointer not 0");
    const offset_t child_total =
        (level + 1 < n_levels) ? idx_[level + 1].size() : nnz();
    BCSF_CHECK(ptr.back() == child_total,
               "csf validate: last pointer at level " << level);
    for (offset_t n = 0; n < idx.size(); ++n) {
      BCSF_CHECK(ptr[n] < ptr[n + 1],
                 "csf validate: empty node at level " << level << " pos " << n);
      BCSF_CHECK(idx[n] < dims_[mode_order_[level]],
                 "csf validate: node index out of bounds");
    }
  }
  for (index_t leaf : leaf_inds_) {
    BCSF_CHECK(leaf < dims_[mode_order_.back()],
               "csf validate: leaf index out of bounds");
  }
}

std::size_t CsfTensor::index_storage_bytes() const {
  // Per §III-B: each node level stores an index array and a pointer array
  // (counted at 4 bytes per entry, the paper's convention), the leaf level
  // stores one index per nonzero.  For order 3: 4 * (2S + 2F + M).
  std::size_t words = 0;
  for (index_t level = 0; level < node_levels(); ++level) {
    words += 2 * idx_[level].size();
  }
  words += leaf_inds_.size();
  return words * kIndexBytes;
}

std::string CsfTensor::summary() const {
  std::ostringstream os;
  os << "CSF(root mode " << root_mode() << "): nnz=" << nnz()
     << " S=" << num_slices() << " F=" << num_fibers()
     << " index_bytes=" << index_storage_bytes();
  return os.str();
}

}  // namespace bcsf
