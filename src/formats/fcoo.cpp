#include "formats/fcoo.hpp"

#include <sstream>

#include "util/error.hpp"

namespace bcsf {

FcooTensor build_fcoo(const SparseTensor& tensor, index_t mode,
                      const FcooOptions& opts) {
  BCSF_CHECK(opts.partition_size > 0, "fcoo: partition_size must be positive");
  const ModeOrder order = mode_order_for(mode, tensor.order());
  SparseTensor sorted = tensor;
  sorted.sort(order);

  FcooTensor t;
  t.mode_order_ = order;
  t.dims_ = tensor.dims();
  t.opts_ = opts;
  const index_t n_other = tensor.order() - 1;
  t.nz_inds_.resize(n_other);

  const offset_t m = sorted.nnz();
  const index_t root = order.front();
  for (index_t p = 0; p < n_other; ++p) t.nz_inds_[p].reserve(m);
  t.vals_.reserve(m);
  t.slice_flag_.resize(m);
  t.fiber_flag_.resize(m);

  for (offset_t z = 0; z < m; ++z) {
    for (index_t p = 0; p < n_other; ++p) {
      t.nz_inds_[p].push_back(sorted.coord(order[p + 1], z));
    }
    t.vals_.push_back(sorted.value(z));

    bool new_slice = (z == 0);
    bool new_fiber = (z == 0);
    if (z > 0) {
      new_slice = sorted.coord(root, z) != sorted.coord(root, z - 1);
      new_fiber = new_slice;
      for (index_t level = 1; !new_fiber && level + 1 < tensor.order();
           ++level) {
        new_fiber =
            sorted.coord(order[level], z) != sorted.coord(order[level], z - 1);
      }
    }
    t.slice_flag_[z] = new_slice ? 1 : 0;
    t.fiber_flag_[z] = new_fiber ? 1 : 0;
    if (new_slice) t.slice_index_list_.push_back(sorted.coord(root, z));

    if (z % opts.partition_size == 0) {
      t.partition_slice_ordinal_.push_back(t.slice_index_list_.size() - 1);
    }
  }
  return t;
}

void FcooTensor::validate() const {
  const offset_t m = nnz();
  BCSF_CHECK(slice_flag_.size() == m && fiber_flag_.size() == m,
             "fcoo validate: flag array length");
  if (m > 0) {
    BCSF_CHECK(slice_flag_[0] == 1 && fiber_flag_[0] == 1,
               "fcoo validate: first nonzero must start slice and fiber");
    BCSF_CHECK(partition_slice_ordinal_.size() ==
                   ceil_div<offset_t>(m, opts_.partition_size),
               "fcoo validate: partition count");
    offset_t flagged = 0;
    for (offset_t z = 0; z < m; ++z) flagged += slice_flag_[z];
    BCSF_CHECK(flagged == slice_index_list_.size(),
               "fcoo validate: slice flag count vs compacted list");
  }
  for (offset_t z = 0; z < m; ++z) {
    // A slice boundary is always a fiber boundary.
    BCSF_CHECK(!starts_slice(z) || starts_fiber(z),
               "fcoo validate: slice start without fiber start at " << z);
  }
}

std::string FcooTensor::summary() const {
  std::ostringstream os;
  os << "F-COO(root mode " << root_mode() << "): nnz=" << nnz()
     << " partitions=" << num_partitions()
     << " index_bytes=" << index_storage_bytes();
  return os.str();
}

}  // namespace bcsf
