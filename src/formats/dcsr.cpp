#include "formats/dcsr.hpp"

#include <sstream>

#include "util/error.hpp"

namespace bcsf {

CsrMatrix build_csr(const SparseTensor& matrix) {
  BCSF_CHECK(matrix.order() == 2, "build_csr: input must be order-2");
  SparseTensor sorted = matrix;
  sorted.sort(mode_order_for(0, 2));

  CsrMatrix m;
  m.rows_ = matrix.dim(0);
  m.cols_ = matrix.dim(1);
  m.row_ptr_.assign(m.rows_ + 1, 0);
  const offset_t nnz = sorted.nnz();
  m.cols_idx_.resize(nnz);
  m.vals_.resize(nnz);
  for (offset_t z = 0; z < nnz; ++z) {
    ++m.row_ptr_[sorted.coord(0, z) + 1];
    m.cols_idx_[z] = sorted.coord(1, z);
    m.vals_[z] = sorted.value(z);
  }
  for (index_t r = 0; r < m.rows_; ++r) {
    m.row_ptr_[r + 1] += m.row_ptr_[r];
  }
  return m;
}

DcsrMatrix build_dcsr(const SparseTensor& matrix) {
  BCSF_CHECK(matrix.order() == 2, "build_dcsr: input must be order-2");
  SparseTensor sorted = matrix;
  sorted.sort(mode_order_for(0, 2));

  DcsrMatrix m;
  m.rows_ = matrix.dim(0);
  m.cols_ = matrix.dim(1);
  const offset_t nnz = sorted.nnz();
  m.cols_idx_.resize(nnz);
  m.vals_.resize(nnz);
  for (offset_t z = 0; z < nnz; ++z) {
    if (z == 0 || sorted.coord(0, z) != sorted.coord(0, z - 1)) {
      m.row_idx_.push_back(sorted.coord(0, z));
      m.row_ptr_.push_back(z);
    }
    m.cols_idx_[z] = sorted.coord(1, z);
    m.vals_[z] = sorted.value(z);
  }
  m.row_ptr_.push_back(nnz);
  return m;
}

void CsrMatrix::spmv(std::span<const value_t> x, std::span<value_t> y) const {
  BCSF_CHECK(x.size() == cols_ && y.size() == rows_, "csr spmv: shape");
  for (index_t r = 0; r < rows_; ++r) {
    value_t acc = 0.0F;
    for (offset_t z = row_ptr_[r]; z < row_ptr_[r + 1]; ++z) {
      acc += vals_[z] * x[cols_idx_[z]];
    }
    y[r] = acc;
  }
}

void DcsrMatrix::spmv(std::span<const value_t> x, std::span<value_t> y) const {
  BCSF_CHECK(x.size() == cols_ && y.size() == rows_, "dcsr spmv: shape");
  std::fill(y.begin(), y.end(), 0.0F);
  for (offset_t r = 0; r < row_idx_.size(); ++r) {
    value_t acc = 0.0F;
    for (offset_t z = row_ptr_[r]; z < row_ptr_[r + 1]; ++z) {
      acc += vals_[z] * x[cols_idx_[z]];
    }
    y[row_idx_[r]] = acc;
  }
}

void CsrMatrix::validate() const {
  BCSF_CHECK(row_ptr_.size() == static_cast<std::size_t>(rows_) + 1,
             "csr validate: pointer length");
  BCSF_CHECK(row_ptr_.front() == 0 && row_ptr_.back() == nnz(),
             "csr validate: pointer bounds");
  for (index_t r = 0; r < rows_; ++r) {
    BCSF_CHECK(row_ptr_[r] <= row_ptr_[r + 1], "csr validate: monotonicity");
  }
  for (index_t c : cols_idx_) {
    BCSF_CHECK(c < cols_, "csr validate: column bound");
  }
}

void DcsrMatrix::validate() const {
  BCSF_CHECK(row_ptr_.size() == row_idx_.size() + 1,
             "dcsr validate: pointer length");
  if (!row_ptr_.empty()) {
    BCSF_CHECK(row_ptr_.front() == 0 && row_ptr_.back() == nnz(),
               "dcsr validate: pointer bounds");
  }
  for (offset_t r = 0; r < row_idx_.size(); ++r) {
    BCSF_CHECK(row_ptr_[r] < row_ptr_[r + 1], "dcsr validate: empty row stored");
    BCSF_CHECK(row_idx_[r] < rows_, "dcsr validate: row bound");
    if (r > 0) {
      BCSF_CHECK(row_idx_[r - 1] < row_idx_[r], "dcsr validate: row order");
    }
  }
}

std::string CsrMatrix::summary() const {
  std::ostringstream os;
  os << "CSR " << rows_ << "x" << cols_ << " nnz=" << nnz()
     << " index_bytes=" << index_storage_bytes();
  return os.str();
}

std::string DcsrMatrix::summary() const {
  std::ostringstream os;
  os << "DCSR " << rows_ << "x" << cols_ << " nnz=" << nnz()
     << " nonempty_rows=" << num_nonempty_rows()
     << " index_bytes=" << index_storage_bytes();
  return os.str();
}

}  // namespace bcsf
