// CSL: Compressed SLice format (§V-A, Fig. 3, Alg. 4).
//
// When every fiber of a slice holds a single nonzero, CSF's fiber pointer
// level is pure overhead: slice pointers can address the nonzeros
// directly.  CSL stores, per slice, a pointer range into flat per-nonzero
// arrays holding all non-root coordinates and the value.  MTTKRP on CSL
// also skips the fiber-local accumulation (the "+=" into tmp of Alg. 3),
// saving one add per nonzero.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "tensor/sparse_tensor.hpp"
#include "util/types.hpp"

namespace bcsf {

class CslTensor {
 public:
  CslTensor() = default;

  const ModeOrder& mode_order() const { return mode_order_; }
  index_t root_mode() const { return mode_order_.front(); }
  index_t order() const { return static_cast<index_t>(mode_order_.size()); }
  const std::vector<index_t>& dims() const { return dims_; }

  offset_t nnz() const { return vals_.size(); }
  offset_t num_slices() const { return slice_inds_.size(); }

  index_t slice_index(offset_t s) const { return slice_inds_[s]; }
  offset_t slice_begin(offset_t s) const { return slice_ptr_[s]; }
  offset_t slice_end(offset_t s) const { return slice_ptr_[s + 1]; }

  /// Coordinate of nonzero `z` along non-root position `p` (p indexes
  /// mode_order()[p+1]).
  index_t nz_index(index_t p, offset_t z) const { return nz_inds_[p][z]; }
  value_t value(offset_t z) const { return vals_[z]; }

  const index_vec& slice_indices() const { return slice_inds_; }
  const offset_vec& slice_pointers() const { return slice_ptr_; }
  const value_vec& values() const { return vals_; }

  /// Index storage per §V-A accounting: slice index + slice pointer per
  /// slice, plus (order-1) coordinate words per nonzero.
  std::size_t index_storage_bytes() const {
    return (2 * num_slices() + (order() - 1) * nnz()) * kIndexBytes;
  }

  void validate() const;
  std::string summary() const;

 private:
  friend CslTensor build_csl_from_sorted(const SparseTensor& sorted,
                                         const ModeOrder& order);
  friend CslTensor build_csl_from_sorted(const SparseTensor& sorted,
                                         const ModeOrder& order,
                                         index_vec slice_inds,
                                         offset_vec slice_ptr);

  ModeOrder mode_order_;
  std::vector<index_t> dims_;
  index_vec slice_inds_;
  offset_vec slice_ptr_;
  std::vector<index_vec> nz_inds_;  // one array per non-root mode
  value_vec vals_;
};

/// Builds CSL for `mode` (sorts a copy).  Any slice content is
/// representable; HB-CSF routes only all-singleton-fiber slices here.
CslTensor build_csl(const SparseTensor& tensor, index_t mode);

/// Builds from a tensor already sorted by `order`.
CslTensor build_csl_from_sorted(const SparseTensor& sorted,
                                const ModeOrder& order);

/// Builds from a sorted tensor whose slice boundaries the caller already
/// knows (e.g. HB-CSF, which classifies slices from a SliceFiberCounts
/// scan and can hand the CSL group's boundaries over instead of having
/// them re-detected).  `slice_ptr` has one extra trailing entry == nnz.
CslTensor build_csl_from_sorted(const SparseTensor& sorted,
                                const ModeOrder& order, index_vec slice_inds,
                                offset_vec slice_ptr);

}  // namespace bcsf
