// HB-CSF: Hybrid Balanced CSF (§V, Alg. 5) -- the paper's second
// contribution.
//
// Slices are classified by their nonzero pattern and each population is
// stored in the representation that wastes nothing on it:
//   (i)  slices with a single nonzero           -> COO   (sliceInCOO)
//   (ii) slices whose fibers are all singletons -> CSL   (sliceInCSL)
//   (iii) everything else                        -> B-CSF (sliceInCSF)
// MTTKRP executes the three group kernels back-to-back (Alg. 5 lines
// 18-20); the groups update disjoint output rows because a slice lives in
// exactly one group.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "formats/bcsf.hpp"
#include "formats/csl.hpp"
#include "tensor/sparse_tensor.hpp"
#include "util/types.hpp"

namespace bcsf {

class HbcsfTensor {
 public:
  const ModeOrder& mode_order() const { return mode_order_; }
  index_t root_mode() const { return mode_order_.front(); }
  index_t order() const { return static_cast<index_t>(mode_order_.size()); }
  const std::vector<index_t>& dims() const { return dims_; }

  offset_t nnz() const { return coo_nnz() + csl_nnz() + csf_nnz(); }
  offset_t coo_nnz() const { return coo_vals_.size(); }
  offset_t csl_nnz() const { return csl_.nnz(); }
  offset_t csf_nnz() const { return bcsf_.nnz(); }

  /// COO group: coordinate `p` (position in mode_order) of nonzero `z`.
  index_t coo_index(index_t p, offset_t z) const { return coo_inds_[p][z]; }
  value_t coo_value(offset_t z) const { return coo_vals_[z]; }

  const CslTensor& csl() const { return csl_; }
  const BcsfTensor& bcsf() const { return bcsf_; }

  /// Index storage = sum of the three groups' accounting
  /// ("4 x (1M ~ 3M) bytes", §V).
  std::size_t index_storage_bytes() const {
    return order() * coo_nnz() * kIndexBytes + csl_.index_storage_bytes() +
           bcsf_.index_storage_bytes();
  }

  void validate() const;
  std::string summary() const;

 private:
  friend HbcsfTensor build_hbcsf(const SparseTensor& tensor, index_t mode,
                                 const BcsfOptions& opts);

  ModeOrder mode_order_;
  std::vector<index_t> dims_;
  std::vector<index_vec> coo_inds_;  // [position in mode_order][nonzero]
  value_vec coo_vals_;
  CslTensor csl_;
  BcsfTensor bcsf_;
};

/// Classifies slices per Algorithm 5 and builds the three-group hybrid.
HbcsfTensor build_hbcsf(const SparseTensor& tensor, index_t mode,
                        const BcsfOptions& opts = {});

}  // namespace bcsf
