// Fixed-size worker pool backing the serving layer (serve/).  Deliberately
// small: a locked deque, N workers, and an idle barrier -- the MTTKRP
// kernels themselves are the expensive part, so queue overhead is noise.
//
// Tasks may submit further tasks (the service's async format upgrade is
// enqueued from inside a request handler); wait_idle() accounts for that
// by waiting until the queue is empty AND no worker is mid-task.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace bcsf {

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 -> hardware_concurrency, at least 1).
  explicit ThreadPool(unsigned threads = 0);

  /// Drains nothing: pending tasks still in the queue are executed before
  /// the workers join (a service being destroyed must not drop accepted
  /// requests on the floor).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a fire-and-forget task.  Throws if called after shutdown
  /// began (i.e. from a task racing the destructor -- a caller bug).
  void submit(std::function<void()> task);

  /// Like submit(), but returns false instead of throwing once shutdown
  /// began -- for best-effort background work (e.g. a format upgrade)
  /// enqueued from inside a task that may be draining at destruction.
  bool try_submit(std::function<void()> task);

  /// Enqueues a task and returns a future for its result; exceptions
  /// thrown by the task surface through the future.
  template <typename F>
  auto async(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    submit([task] { (*task)(); });
    return result;
  }

  /// Blocks until the queue is empty and every worker is idle.  Tasks
  /// submitted by other threads while waiting extend the wait.
  void wait_idle();

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  // signals workers: task ready / stop
  std::condition_variable idle_cv_;  // signals wait_idle: maybe drained
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;  // tasks currently executing
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Runs every task in `tasks` and returns once ALL have finished, the
/// first captured task exception rethrown afterwards (remaining tasks
/// still run -- partial results must not be torn down under a sibling).
///
/// The CALLING thread always participates: helper tasks are offered to
/// `pool` (best-effort via try_submit) but the caller drains the shared
/// task list itself until it is empty, so progress never depends on a
/// pool worker being free.  That makes this safe to call FROM INSIDE a
/// pool task -- the nested-fan-out case of the sharded plan layer
/// (DESIGN.md §8), where a one-worker pool would otherwise deadlock on
/// its own children.  `pool` may be null (plain sequential execution).
void run_tasks(ThreadPool* pool, std::vector<std::function<void()>> tasks);

}  // namespace bcsf
