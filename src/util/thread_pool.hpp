// Fixed-size worker pool backing the serving layer (serve/).  Deliberately
// small: one mutex, a global deque plus one local deque per worker, and an
// idle barrier -- the MTTKRP kernels themselves are the expensive part, so
// queue overhead is noise.
//
// Affinity (DESIGN.md §8): submit(task, affinity) parks the task on worker
// (affinity % size())'s LOCAL queue.  The serving layer pins shard s's
// work to worker s % W so a shard's plan/delta state stays cache-hot
// across a batch.  Affinity is a HINT, not an assignment: an idle hinted
// worker always runs its own local tasks first, but once it is busy
// mid-task any other worker may steal from its queue (steal fallback), so
// a slow shard never serializes the whole pool.  steal_count() counts
// exactly those fallbacks.
//
// Tasks may submit further tasks (the service's async format upgrade is
// enqueued from inside a request handler); wait_idle() accounts for that
// by waiting until every queue is empty AND no worker is mid-task.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/thread_annotations.hpp"

namespace bcsf {

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 -> hardware_concurrency, at least 1).
  explicit ThreadPool(unsigned threads = 0);

  /// Drains nothing: pending tasks still in the queues are executed
  /// before the workers join (a service being destroyed must not drop
  /// accepted requests on the floor).  Equivalent to shutdown().
  ~ThreadPool();

  /// Explicit graceful stop, callable before destruction (the serving
  /// layer's drain hook, DESIGN.md §9): refuses new submissions
  /// (try_submit returns false, submit throws), executes every ACCEPTED
  /// task, then joins the workers.  Idempotent and safe to race from
  /// multiple threads; must not be called from a worker of this pool
  /// (a task cannot join its own thread).
  void shutdown();

  /// True once shutdown began (destructor or shutdown()): submissions
  /// are being refused and queued work is draining.
  bool stopping() const;

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a fire-and-forget task.  Throws if called after shutdown
  /// began (i.e. from a task racing the destructor -- a caller bug).
  void submit(std::function<void()> task);
  /// Same, with an affinity hint: the task goes to worker
  /// (affinity % size())'s local queue and runs there whenever that
  /// worker is free; busy hinted workers expose it to stealing.
  void submit(std::function<void()> task, std::size_t affinity);

  /// Like submit(), but returns false instead of throwing once shutdown
  /// began -- for best-effort background work (e.g. a format upgrade)
  /// enqueued from inside a task that may be draining at destruction.
  bool try_submit(std::function<void()> task);
  bool try_submit(std::function<void()> task, std::size_t affinity);

  /// Enqueues a task and returns a future for its result; exceptions
  /// thrown by the task surface through the future.
  template <typename F>
  auto async(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    submit([task] { (*task)(); });
    return result;
  }

  /// Blocks until every queue is empty and every worker is idle.  Tasks
  /// submitted by other threads while waiting extend the wait.
  void wait_idle();

  /// Tasks accepted but not yet started, over all queues (observability).
  std::size_t queue_depth() const;
  /// Affinity-hinted tasks that were drained by a DIFFERENT worker than
  /// the hinted one (the steal fallback firing).  Monotone.
  std::uint64_t steal_count() const;
  /// Index of the calling thread within THIS pool's workers, -1 when the
  /// caller is not one of them.  Lets tests pin down where an
  /// affinity-hinted task actually ran.
  int current_worker() const;

 private:
  void worker_loop(std::size_t index);
  // Queue accounting; all require mutex_ held (compiler-enforced).
  std::size_t total_queued() const BCSF_REQUIRES(mutex_);
  bool runnable(std::size_t index) const BCSF_REQUIRES(mutex_);
  std::function<void()> take(std::size_t index) BCSF_REQUIRES(mutex_);
  void enqueue(std::function<void()> task, std::size_t queue)
      BCSF_REQUIRES(mutex_);

  mutable Mutex mutex_;
  CondVar work_cv_;  // signals workers: task ready / stop
  CondVar idle_cv_;  // signals wait_idle: maybe drained
  /// Un-hinted submissions.
  std::deque<std::function<void()>> global_ BCSF_GUARDED_BY(mutex_);
  /// One local (affinity-hinted) queue per worker.
  std::vector<std::deque<std::function<void()>>> local_
      BCSF_GUARDED_BY(mutex_);
  /// busy_[i] != 0: worker i is mid-task (its local queue is stealable).
  std::vector<char> busy_ BCSF_GUARDED_BY(mutex_);
  std::uint64_t steals_ BCSF_GUARDED_BY(mutex_) = 0;
  std::size_t active_ BCSF_GUARDED_BY(mutex_) = 0;  // tasks executing now
  bool stop_ BCSF_GUARDED_BY(mutex_) = false;
  Mutex join_mutex_;  // serializes concurrent shutdown() joiners
  /// Written only by the constructor; shutdown() joins the threads under
  /// join_mutex_ but never mutates the vector itself, so size() reads it
  /// lock-free.
  std::vector<std::thread> workers_;
};

/// Runs every task in `tasks` and returns once ALL have finished, the
/// first captured task exception rethrown afterwards (remaining tasks
/// still run -- partial results must not be torn down under a sibling).
///
/// The CALLING thread always participates: helper tasks are offered to
/// `pool` (best-effort via try_submit) but the caller drains the shared
/// task list itself until it is empty, so progress never depends on a
/// pool worker being free.  That makes this safe to call FROM INSIDE a
/// pool task -- the nested-fan-out case of the sharded plan layer
/// (DESIGN.md §8), where a one-worker pool would otherwise deadlock on
/// its own children.  `pool` may be null (plain sequential execution).
void run_tasks(ThreadPool* pool, std::vector<std::function<void()>> tasks);

}  // namespace bcsf
