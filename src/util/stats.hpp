// Descriptive statistics used throughout the evaluation: the paper's load
// imbalance analysis is driven by the standard deviation of nonzeros per
// fiber and per slice (Table II) and by averages such as "work per slice"
// (Fig. 8 discussion).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace bcsf {

/// Summary of a sample of nonnegative counts (e.g. nnz per fiber).
struct SampleStats {
  std::size_t count = 0;      ///< number of observations
  double sum = 0.0;           ///< total
  double mean = 0.0;
  double stddev = 0.0;        ///< population standard deviation
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;           ///< median
  double p99 = 0.0;
  /// Gini coefficient in [0,1]; 0 = perfectly even, 1 = one element owns all.
  double gini = 0.0;

  std::string to_string() const;
};

/// Computes SampleStats over an arbitrary numeric span.
SampleStats compute_stats(std::span<const double> xs);
SampleStats compute_stats(std::span<const offset_t> xs);
SampleStats compute_stats(std::span<const index_t> xs);

/// Population standard deviation of a span (convenience for Table II).
double stddev(std::span<const double> xs);

/// Histogram with log2-spaced buckets [1,2), [2,4), ... for count data.
struct Log2Histogram {
  std::vector<std::size_t> buckets;  ///< buckets[b] counts x in [2^b, 2^(b+1))
  std::size_t zeros = 0;             ///< observations equal to zero

  std::string to_string() const;
};

Log2Histogram log2_histogram(std::span<const offset_t> xs);

}  // namespace bcsf
