#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace bcsf {

namespace {
SampleStats stats_from_sorted(std::vector<double>& xs) {
  SampleStats s;
  s.count = xs.size();
  if (xs.empty()) return s;
  std::sort(xs.begin(), xs.end());
  s.sum = std::accumulate(xs.begin(), xs.end(), 0.0);
  s.mean = s.sum / static_cast<double>(s.count);
  double var = 0.0;
  for (double x : xs) {
    const double d = x - s.mean;
    var += d * d;
  }
  var /= static_cast<double>(s.count);
  s.stddev = std::sqrt(var);
  s.min = xs.front();
  s.max = xs.back();
  auto pct = [&](double q) {
    const double pos = q * static_cast<double>(s.count - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const auto hi = std::min(lo + 1, s.count - 1);
    const double frac = pos - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
  };
  s.p50 = pct(0.50);
  s.p99 = pct(0.99);
  // Gini from the sorted sample: G = (2*sum(i*x_i)/(n*sum) - (n+1)/n).
  if (s.sum > 0.0) {
    double weighted = 0.0;
    for (std::size_t i = 0; i < s.count; ++i) {
      weighted += static_cast<double>(i + 1) * xs[i];
    }
    const double n = static_cast<double>(s.count);
    s.gini = (2.0 * weighted) / (n * s.sum) - (n + 1.0) / n;
  }
  return s;
}
}  // namespace

SampleStats compute_stats(std::span<const double> xs) {
  std::vector<double> copy(xs.begin(), xs.end());
  return stats_from_sorted(copy);
}

SampleStats compute_stats(std::span<const offset_t> xs) {
  std::vector<double> copy(xs.size());
  std::transform(xs.begin(), xs.end(), copy.begin(),
                 [](offset_t v) { return static_cast<double>(v); });
  return stats_from_sorted(copy);
}

SampleStats compute_stats(std::span<const index_t> xs) {
  std::vector<double> copy(xs.size());
  std::transform(xs.begin(), xs.end(), copy.begin(),
                 [](index_t v) { return static_cast<double>(v); });
  return stats_from_sorted(copy);
}

double stddev(std::span<const double> xs) { return compute_stats(xs).stddev; }

std::string SampleStats::to_string() const {
  std::ostringstream os;
  os << "n=" << count << " mean=" << mean << " stddev=" << stddev
     << " min=" << min << " p50=" << p50 << " p99=" << p99 << " max=" << max
     << " gini=" << gini;
  return os.str();
}

Log2Histogram log2_histogram(std::span<const offset_t> xs) {
  Log2Histogram h;
  for (offset_t x : xs) {
    if (x == 0) {
      ++h.zeros;
      continue;
    }
    std::size_t b = 0;
    offset_t v = x;
    while (v > 1) {
      v >>= 1;
      ++b;
    }
    if (h.buckets.size() <= b) h.buckets.resize(b + 1, 0);
    ++h.buckets[b];
  }
  return h;
}

std::string Log2Histogram::to_string() const {
  std::ostringstream os;
  os << "zeros=" << zeros;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    os << " [" << (1ULL << b) << "," << (1ULL << (b + 1)) << ")=" << buckets[b];
  }
  return os.str();
}

}  // namespace bcsf
