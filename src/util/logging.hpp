// Minimal leveled logger.  Benchmarks and examples print their tables via
// std::cout; the logger is for diagnostics (format construction summaries,
// simulator traces) and can be silenced globally.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace bcsf {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_emit(LogLevel level, const std::string& msg);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_emit(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace bcsf

#define BCSF_LOG(level)                              \
  if (static_cast<int>(level) >= static_cast<int>(::bcsf::log_level())) \
  ::bcsf::detail::LogLine(level)

#define BCSF_DEBUG BCSF_LOG(::bcsf::LogLevel::kDebug)
#define BCSF_INFO BCSF_LOG(::bcsf::LogLevel::kInfo)
#define BCSF_WARN BCSF_LOG(::bcsf::LogLevel::kWarn)
#define BCSF_ERROR BCSF_LOG(::bcsf::LogLevel::kError)
