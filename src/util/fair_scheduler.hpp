// FairScheduler: per-key round-robin admission in front of a ThreadPool.
//
// The serving layer funnels structured-format builds through this so one
// whale tenant queueing many upgrade jobs cannot monopolize the pool: at
// most `max_inflight` jobs run at once, and when a slot frees the next
// job is drawn from the next non-empty tenant queue in round-robin key
// order, not FIFO arrival order.
//
// Jobs carry an `abandon` callback invoked (instead of `run`) when the
// job can never execute -- the pool refused the wrapper task during
// shutdown, or the scheduler is destroyed with the job still queued.
// The serving layer uses it to re-arm the upgrade launch flag so a
// dropped build can be retried by later traffic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "util/thread_annotations.hpp"

namespace bcsf {

class ThreadPool;

class FairScheduler {
 public:
  struct Job {
    std::function<void()> run;
    std::function<void()> abandon;  ///< optional; called if never run
  };

  /// The pool reference may name a not-yet-constructed member (the
  /// scheduler is declared before the pool so it outlives pool
  /// shutdown); it is only dereferenced once jobs are enqueued.
  FairScheduler(ThreadPool& pool, std::size_t max_inflight);
  ~FairScheduler();

  FairScheduler(const FairScheduler&) = delete;
  FairScheduler& operator=(const FairScheduler&) = delete;

  /// Queue `job` under `key` (one queue per tenant) and pump.
  void enqueue(const std::string& key, Job job);

  /// True when nothing is queued or in flight.  Note a completing job's
  /// successor is submitted to the pool from within the completing pool
  /// task, so `pool.wait_idle(); scheduler.idle()` observed together
  /// imply the scheduler has fully drained.
  bool idle() const;

  std::size_t queued() const;
  std::uint64_t completed() const;

 private:
  void pump_locked(std::vector<Job>& abandoned) BCSF_REQUIRES(mutex_);
  void finish_one() BCSF_EXCLUDES(mutex_);

  ThreadPool& pool_;
  const std::size_t max_inflight_;

  mutable Mutex mutex_;
  std::map<std::string, std::deque<Job>> queues_ BCSF_GUARDED_BY(mutex_);
  /// Round-robin key order (arrival).
  std::vector<std::string> ring_ BCSF_GUARDED_BY(mutex_);
  std::size_t cursor_ BCSF_GUARDED_BY(mutex_) = 0;
  std::size_t queued_ BCSF_GUARDED_BY(mutex_) = 0;
  std::size_t inflight_ BCSF_GUARDED_BY(mutex_) = 0;
  std::uint64_t completed_ BCSF_GUARDED_BY(mutex_) = 0;
  bool draining_ BCSF_GUARDED_BY(mutex_) = false;
};

}  // namespace bcsf
