#include "util/cli.hpp"

#include <cstdlib>

#include "util/error.hpp"

namespace bcsf {

CliParser::CliParser(int argc, const char* const* argv) {
  BCSF_CHECK(argc >= 1, "CliParser: argc must be >= 1");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "";
    }
  }
}

bool CliParser::has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::string CliParser::get_string(const std::string& name,
                                  const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t CliParser::get_int(const std::string& name,
                                std::int64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  BCSF_CHECK(!it->second.empty(), "flag --" << name << " needs a value");
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliParser::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  BCSF_CHECK(!it->second.empty(), "flag --" << name << " needs a value");
  return std::strtod(it->second.c_str(), nullptr);
}

bool CliParser::get_bool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  if (it->second.empty() || it->second == "true" || it->second == "1") {
    return true;
  }
  if (it->second == "false" || it->second == "0") return false;
  BCSF_CHECK(false, "flag --" << name << " expects true/false");
  return fallback;
}

}  // namespace bcsf
