// Wall-clock timing for the pre-processing experiments (Figs. 9 and 10):
// format construction cost is measured as real elapsed time, because it is
// genuine host-side work in both the paper and this reproduction.
#pragma once

#include <chrono>

namespace bcsf {

class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace bcsf
