// Checked error handling: all user-facing validation throws bcsf::Error
// with a formatted message; internal invariants use BCSF_ASSERT which is
// active in all build types (the cost is negligible next to the kernels).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace bcsf {

/// Exception type for every recoverable error raised by the library
/// (malformed input files, inconsistent shapes, out-of-range indices).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_error(const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << msg << " (" << file << ":" << line << ")";
  throw Error(os.str());
}
}  // namespace detail

}  // namespace bcsf

/// Validate a user-visible precondition; throws bcsf::Error on failure.
#define BCSF_CHECK(cond, msg)                                       \
  do {                                                              \
    if (!(cond)) {                                                  \
      std::ostringstream bcsf_os_;                                  \
      bcsf_os_ << "check failed: " #cond " -- " << msg;             \
      ::bcsf::detail::throw_error(__FILE__, __LINE__, bcsf_os_.str()); \
    }                                                               \
  } while (0)

/// Internal invariant; identical behaviour but signals a library bug.
#define BCSF_ASSERT(cond, msg)                                      \
  do {                                                              \
    if (!(cond)) {                                                  \
      std::ostringstream bcsf_os_;                                  \
      bcsf_os_ << "internal invariant violated: " #cond " -- " << msg; \
      ::bcsf::detail::throw_error(__FILE__, __LINE__, bcsf_os_.str()); \
    }                                                               \
  } while (0)
