#include "util/scratch_arena.hpp"

namespace bcsf {

std::vector<double> ScratchArena::acquire(std::size_t size) {
  std::vector<double> buffer;
  {
    MutexLock lock(mutex_);
    if (!free_.empty()) {
      buffer = std::move(free_.back());
      free_.pop_back();
    }
  }
  // resize, not assign: recycled capacity is kept, contents stay stale
  // by contract (callers overwrite), so a warm acquire costs nothing.
  buffer.resize(size);
  return buffer;
}

void ScratchArena::release(std::vector<double>&& buffer) {
  if (buffer.capacity() == 0) return;
  MutexLock lock(mutex_);
  if (free_.size() < kMaxPooled) free_.push_back(std::move(buffer));
}

std::size_t ScratchArena::pooled() const {
  MutexLock lock(mutex_);
  return free_.size();
}

}  // namespace bcsf
