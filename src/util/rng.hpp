// Deterministic pseudo-random generation for synthetic tensors.
//
// Real-world sparse tensors "tend to follow a power-law distribution"
// (§IV), so the generators need heavy-tailed samplers: Zipf over a finite
// index range (slice/fiber popularity) and a bounded Pareto for
// fiber-length targets.  Everything is seeded, so every dataset twin and
// every test is reproducible bit-for-bit.
#pragma once

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "util/error.hpp"
#include "util/types.hpp"

namespace bcsf {

/// Library-wide PRNG (mt19937_64 wrapper with convenience samplers).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eedULL) : engine_(seed) {}

  std::uint64_t next_u64() { return engine_(); }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    BCSF_CHECK(lo <= hi, "uniform: empty range");
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  index_t uniform_index(index_t n) {
    BCSF_CHECK(n > 0, "uniform_index: n must be positive");
    return static_cast<index_t>(uniform(0, n - 1));
  }

  double uniform_real(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  value_t normal(value_t mean = 0.0F, value_t sd = 1.0F) {
    return std::normal_distribution<value_t>(mean, sd)(engine_);
  }

  /// Bounded Pareto sample in [lo, hi] with tail exponent `alpha`
  /// (smaller alpha = heavier tail).  Used for fiber/slice size targets.
  double pareto(double alpha, double lo, double hi) {
    BCSF_CHECK(alpha > 0.0 && lo > 0.0 && hi > lo, "pareto: bad parameters");
    const double u = uniform_real(std::nextafter(0.0, 1.0), 1.0);
    const double la = std::pow(lo, alpha);
    const double ha = std::pow(hi, alpha);
    return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Zipf sampler over {0, ..., n-1} with exponent s, using precomputed
/// cumulative weights and binary search (O(log n) per sample).
class ZipfSampler {
 public:
  ZipfSampler(index_t n, double s, Rng& rng);

  index_t sample();
  index_t domain() const { return n_; }

 private:
  index_t n_;
  Rng& rng_;
  std::vector<double> cdf_;  // normalized cumulative weights
};

inline ZipfSampler::ZipfSampler(index_t n, double s, Rng& rng)
    : n_(n), rng_(rng), cdf_(n) {
  BCSF_CHECK(n > 0, "ZipfSampler: empty domain");
  double acc = 0.0;
  for (index_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  for (index_t i = 0; i < n; ++i) cdf_[i] /= acc;
}

inline index_t ZipfSampler::sample() {
  const double u = rng_.uniform_real();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  const auto pos = static_cast<index_t>(it - cdf_.begin());
  return pos < n_ ? pos : n_ - 1;
}

}  // namespace bcsf
