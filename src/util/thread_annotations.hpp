// Compile-time concurrency contracts (DESIGN.md §11).
//
// The serving stack coordinates through ~20 mutex-bearing files, and
// until this header every locking rule -- which mutex guards which
// field, which helpers assume the lock is already held, the
// reclaim-before-cache acquisition order -- lived only in comments,
// re-verified dynamically by whatever interleavings the TSan suites
// happened to schedule.  Clang's Thread Safety Analysis turns those
// comments into compiler-checked facts: a CI job builds the tree with
// `-Wthread-safety -Wthread-safety-beta -Werror`, so touching a guarded
// field without its lock, or calling a lock-requiring helper unlocked,
// fails the build on EVERY future change for free.
//
// Two layers live here:
//
//   1. BCSF_* attribute macros (GUARDED_BY, REQUIRES, ACQUIRE, ...)
//      that expand to Clang's capability attributes under clang and to
//      nothing elsewhere, so gcc builds are byte-identical in behavior.
//
//   2. Annotated drop-in wrappers -- Mutex over std::mutex, SharedMutex
//      over std::shared_mutex, and the scoped guards MutexLock /
//      ReaderLock / WriterLock -- because the analysis only tracks lock
//      state through annotated lock/unlock functions, which the
//      standard library types do not carry.  The wrappers add no state
//      beyond the std type (MutexLock keeps one bool for its manual
//      unlock/lock window) and inline to the same calls.
//
// Condition variables: std::condition_variable requires
// std::unique_lock<std::mutex>, which the analysis cannot see through.
// Code that waits uses CondVar (= std::condition_variable_any, which
// accepts any BasicLockable) with a MutexLock, and spells the predicate
// as an explicit `while (!pred) cv.wait(lock);` loop -- a wait lambda
// would be analyzed as a separate unannotated function and trip
// GUARDED_BY warnings on the very fields it exists to check.
//
// Escape hatch: BCSF_NO_THREAD_SAFETY_ANALYSIS disables the analysis
// for one function.  Every use in the tree must carry a written
// justification of why the analysis cannot model that flow.
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// clang exposes the capability attributes (stable since clang 3.6);
// every other compiler sees empty expansions, so a gcc build is
// byte-identical in behavior and warning-free.
#if defined(__clang__)
#define BCSF_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define BCSF_THREAD_ANNOTATION(x)
#endif

/// Marks a type as a capability (a lock).  The string names the
/// capability kind in diagnostics ("mutex").
#define BCSF_CAPABILITY(x) BCSF_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor
/// releases a capability (MutexLock & friends).
#define BCSF_SCOPED_CAPABILITY BCSF_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be read/written while holding `x` (shared for reads,
/// exclusive for writes when `x` is a SharedMutex).
#define BCSF_GUARDED_BY(x) BCSF_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field whose POINTEE is guarded by `x` (the pointer itself is
/// not).
#define BCSF_PT_GUARDED_BY(x) BCSF_THREAD_ANNOTATION(pt_guarded_by(x))

/// Lock-order declaration: this mutex must be acquired before/after the
/// listed ones.  Checked under -Wthread-safety-beta; also serves as the
/// machine-readable spelling of the DESIGN.md §11 lock-order DAG.
#define BCSF_ACQUIRED_BEFORE(...) \
  BCSF_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define BCSF_ACQUIRED_AFTER(...) \
  BCSF_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function requires the listed capabilities held on entry (and does
/// not release them).  The _SHARED form needs only reader ownership.
#define BCSF_REQUIRES(...) \
  BCSF_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define BCSF_REQUIRES_SHARED(...) \
  BCSF_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define BCSF_ACQUIRE(...) \
  BCSF_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define BCSF_ACQUIRE_SHARED(...) \
  BCSF_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (exclusive / shared / whichever
/// mode the scoped object holds).
#define BCSF_RELEASE(...) \
  BCSF_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define BCSF_RELEASE_SHARED(...) \
  BCSF_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define BCSF_RELEASE_GENERIC(...) \
  BCSF_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

/// Function attempts the acquisition; the first argument is the return
/// value meaning "acquired".
#define BCSF_TRY_ACQUIRE(...) \
  BCSF_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define BCSF_TRY_ACQUIRE_SHARED(...) \
  BCSF_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

/// Function must be called WITHOUT the listed capabilities held (it
/// acquires them itself; calling with them held would deadlock).
#define BCSF_EXCLUDES(...) \
  BCSF_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Assert-at-runtime forms and capability-returning accessors.
#define BCSF_ASSERT_CAPABILITY(x) \
  BCSF_THREAD_ANNOTATION(assert_capability(x))
#define BCSF_RETURN_CAPABILITY(x) \
  BCSF_THREAD_ANNOTATION(lock_returned(x))

/// Disables the analysis for one function.  EVERY use must carry a
/// comment justifying why the analysis cannot model the flow (e.g. a
/// lock handed across threads, or ownership the type system cannot
/// express).  bcsf_lint.py's rule table points reviewers here.
#define BCSF_NO_THREAD_SAFETY_ANALYSIS \
  BCSF_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace bcsf {

/// Annotated std::mutex.  Same semantics, same size; lock/unlock inline
/// to the std calls but carry the capability attributes the analysis
/// tracks.
class BCSF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() BCSF_ACQUIRE() { m_.lock(); }
  void unlock() BCSF_RELEASE() { m_.unlock(); }
  bool try_lock() BCSF_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;
};

/// Annotated std::shared_mutex: exclusive (writer) and shared (reader)
/// modes.
class BCSF_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() BCSF_ACQUIRE() { m_.lock(); }
  void unlock() BCSF_RELEASE() { m_.unlock(); }
  bool try_lock() BCSF_TRY_ACQUIRE(true) { return m_.try_lock(); }

  void lock_shared() BCSF_ACQUIRE_SHARED() { m_.lock_shared(); }
  void unlock_shared() BCSF_RELEASE_SHARED() { m_.unlock_shared(); }
  bool try_lock_shared() BCSF_TRY_ACQUIRE_SHARED(true) {
    return m_.try_lock_shared();
  }

 private:
  std::shared_mutex m_;
};

/// Scoped exclusive lock on a Mutex (std::lock_guard replacement).
/// Also the lock type for CondVar waits: unlock()/lock() re-open the
/// capability window exactly like std::unique_lock, and the analysis
/// tracks both.
class BCSF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) BCSF_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() BCSF_RELEASE() {
    if (held_) mu_.unlock();
  }

  /// Manual window for condition waits / drop-the-lock-around-work
  /// patterns.  CondVar::wait() calls these through the BasicLockable
  /// interface.
  void lock() BCSF_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }
  void unlock() BCSF_RELEASE() {
    held_ = false;
    mu_.unlock();
  }

 private:
  Mutex& mu_;
  bool held_ = true;
};

/// Scoped exclusive (writer) lock on a SharedMutex.
class BCSF_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) BCSF_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;
  ~WriterLock() BCSF_RELEASE() {
    if (held_) mu_.unlock();
  }

  void unlock() BCSF_RELEASE() {
    held_ = false;
    mu_.unlock();
  }

 private:
  SharedMutex& mu_;
  bool held_ = true;
};

/// Scoped shared (reader) lock on a SharedMutex.
class BCSF_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) BCSF_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;
  ~ReaderLock() BCSF_RELEASE() {
    if (held_) mu_.unlock_shared();
  }

  void unlock() BCSF_RELEASE() {
    held_ = false;
    mu_.unlock_shared();
  }

 private:
  SharedMutex& mu_;
  bool held_ = true;
};

/// Condition variable usable with MutexLock (see the header comment for
/// the no-wait-lambda rule).  condition_variable_any carries one extra
/// internal mutex versus std::condition_variable; every wait in this
/// codebase sits on a slow path (worker parked, writer drained, join)
/// where that cost is noise.
using CondVar = std::condition_variable_any;

}  // namespace bcsf
