#include "util/thread_pool.hpp"

#include "util/error.hpp"

namespace bcsf {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // Accepted tasks still run: workers only exit once the queue is empty.
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  BCSF_CHECK(static_cast<bool>(task), "ThreadPool: empty task");
  {
    std::unique_lock<std::mutex> lock(mutex_);
    BCSF_CHECK(!stop_, "ThreadPool: submit after shutdown");
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

bool ThreadPool::try_submit(std::function<void()> task) {
  BCSF_CHECK(static_cast<bool>(task), "ThreadPool: empty task");
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stop_) return false;
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
  return true;
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();  // task exceptions are the submitter's problem via async()
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace bcsf
