#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <utility>

#include "util/error.hpp"

namespace bcsf {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // Accepted tasks still run: workers only exit once the queue is empty.
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  BCSF_CHECK(static_cast<bool>(task), "ThreadPool: empty task");
  {
    std::unique_lock<std::mutex> lock(mutex_);
    BCSF_CHECK(!stop_, "ThreadPool: submit after shutdown");
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

bool ThreadPool::try_submit(std::function<void()> task) {
  BCSF_CHECK(static_cast<bool>(task), "ThreadPool: empty task");
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stop_) return false;
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
  return true;
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();  // task exceptions are the submitter's problem via async()
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void run_tasks(ThreadPool* pool, std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (tasks.size() == 1) {
    tasks.front()();
    return;
  }

  // Shared by the caller and every helper; shared_ptr keeps it alive for
  // helpers that wake up after the caller has already returned (they see
  // an empty list and exit immediately).
  struct Shared {
    std::vector<std::function<void()>> tasks;
    std::atomic<std::size_t> next{0};
    std::mutex m;
    std::condition_variable done_cv;
    std::size_t done = 0;
    std::exception_ptr first_error;
  };
  auto shared = std::make_shared<Shared>();
  shared->tasks = std::move(tasks);
  const std::size_t n = shared->tasks.size();

  auto drain = [shared, n] {
    for (;;) {
      const std::size_t i =
          shared->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      std::exception_ptr error;
      try {
        shared->tasks[i]();
      } catch (...) {
        error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(shared->m);
      if (error && !shared->first_error) shared->first_error = error;
      if (++shared->done == n) shared->done_cv.notify_all();
    }
  };

  if (pool != nullptr) {
    // One helper per remaining task, capped at the pool width; refusals
    // (pool shutting down) are fine -- the caller drains regardless.
    const std::size_t helpers = std::min(n - 1, pool->size());
    for (std::size_t h = 0; h < helpers; ++h) {
      if (!pool->try_submit(drain)) break;
    }
  }
  drain();

  std::unique_lock<std::mutex> lock(shared->m);
  shared->done_cv.wait(lock, [&shared, n] { return shared->done == n; });
  if (shared->first_error) std::rethrow_exception(shared->first_error);
}

}  // namespace bcsf
