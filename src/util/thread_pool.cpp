#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <utility>

#include "util/error.hpp"

namespace bcsf {

namespace {

constexpr std::size_t kGlobalQueue = static_cast<std::size_t>(-1);

// Which pool (if any) the current thread is a worker of; lets nested code
// and tests ask "where am I running?" without threading ids around.
thread_local const ThreadPool* tl_pool = nullptr;
thread_local int tl_worker = -1;

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  local_.resize(threads);
  busy_.assign(threads, 0);
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    MutexLock lock(mutex_);
    // Accepted tasks still run: workers only exit once every queue is
    // empty, and under stop_ any worker may drain any local queue.
    stop_ = true;
  }
  work_cv_.notify_all();
  // Concurrent shutdown() callers both reach here; joins are serialized
  // and re-joining an already-joined worker is skipped.
  MutexLock join_lock(join_mutex_);
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

bool ThreadPool::stopping() const {
  MutexLock lock(mutex_);
  return stop_;
}

std::size_t ThreadPool::total_queued() const {
  std::size_t total = global_.size();
  for (const auto& queue : local_) total += queue.size();
  return total;
}

void ThreadPool::enqueue(std::function<void()> task, std::size_t queue) {
  if (queue == kGlobalQueue) {
    global_.push_back(std::move(task));
  } else {
    local_[queue % local_.size()].push_back(std::move(task));
  }
}

void ThreadPool::submit(std::function<void()> task) {
  BCSF_CHECK(static_cast<bool>(task), "ThreadPool: empty task");
  {
    MutexLock lock(mutex_);
    BCSF_CHECK(!stop_, "ThreadPool: submit after shutdown");
    enqueue(std::move(task), kGlobalQueue);
  }
  // notify_all, not notify_one: a hinted task must reach ITS worker even
  // when another (non-eligible) worker wakes first and goes back to sleep.
  work_cv_.notify_all();
}

void ThreadPool::submit(std::function<void()> task, std::size_t affinity) {
  BCSF_CHECK(static_cast<bool>(task), "ThreadPool: empty task");
  {
    MutexLock lock(mutex_);
    BCSF_CHECK(!stop_, "ThreadPool: submit after shutdown");
    enqueue(std::move(task), affinity);
  }
  work_cv_.notify_all();
}

bool ThreadPool::try_submit(std::function<void()> task) {
  BCSF_CHECK(static_cast<bool>(task), "ThreadPool: empty task");
  {
    MutexLock lock(mutex_);
    if (stop_) return false;
    enqueue(std::move(task), kGlobalQueue);
  }
  work_cv_.notify_all();
  return true;
}

bool ThreadPool::try_submit(std::function<void()> task, std::size_t affinity) {
  BCSF_CHECK(static_cast<bool>(task), "ThreadPool: empty task");
  {
    MutexLock lock(mutex_);
    if (stop_) return false;
    enqueue(std::move(task), affinity);
  }
  work_cv_.notify_all();
  return true;
}

void ThreadPool::wait_idle() {
  MutexLock lock(mutex_);
  // Explicit predicate loop, not a wait lambda: the lambda would be
  // analyzed as a separate function without the mutex_ capability
  // (thread_annotations.hpp header comment).
  while (total_queued() != 0 || active_ != 0) idle_cv_.wait(lock);
}

std::size_t ThreadPool::queue_depth() const {
  MutexLock lock(mutex_);
  return total_queued();
}

std::uint64_t ThreadPool::steal_count() const {
  MutexLock lock(mutex_);
  return steals_;
}

int ThreadPool::current_worker() const {
  return tl_pool == this ? tl_worker : -1;
}

bool ThreadPool::runnable(std::size_t index) const {
  if (!local_[index].empty() || !global_.empty()) return true;
  for (std::size_t j = 0; j < local_.size(); ++j) {
    // A peer's hinted tasks are stealable only while the peer is BUSY
    // mid-task (the affinity contract: an idle hinted worker gets first
    // claim on its own queue) -- except at shutdown, when everything
    // accepted must drain no matter whose queue it sits in.
    if (j != index && !local_[j].empty() && (busy_[j] || stop_)) return true;
  }
  return false;
}

std::function<void()> ThreadPool::take(std::size_t index) {
  std::function<void()> task;
  if (!local_[index].empty()) {
    task = std::move(local_[index].front());
    local_[index].pop_front();
    return task;
  }
  if (!global_.empty()) {
    task = std::move(global_.front());
    global_.pop_front();
    return task;
  }
  for (std::size_t j = 0; j < local_.size(); ++j) {
    if (j != index && !local_[j].empty() && (busy_[j] || stop_)) {
      task = std::move(local_[j].front());
      local_[j].pop_front();
      ++steals_;
      return task;
    }
  }
  return task;
}

void ThreadPool::worker_loop(std::size_t index) {
  tl_pool = this;
  tl_worker = static_cast<int>(index);
  MutexLock lock(mutex_);
  for (;;) {
    while (!stop_ && !runnable(index)) work_cv_.wait(lock);
    std::function<void()> task = take(index);
    if (!task) {
      if (stop_ && total_queued() == 0) return;
      continue;  // woken by stop_ with work parked elsewhere; re-check
    }
    busy_[index] = 1;
    ++active_;
    // Tasks still queued (possibly in OUR local queue, which just became
    // stealable) need a waiting peer to re-evaluate its predicate.
    if (total_queued() > 0) work_cv_.notify_all();
    lock.unlock();
    task();  // task exceptions are the submitter's problem via async()
    task = nullptr;
    lock.lock();
    busy_[index] = 0;
    --active_;
    if (total_queued() == 0 && active_ == 0) idle_cv_.notify_all();
  }
}

void run_tasks(ThreadPool* pool, std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (tasks.size() == 1) {
    tasks.front()();
    return;
  }

  // Shared by the caller and every helper; shared_ptr keeps it alive for
  // helpers that wake up after the caller has already returned (they see
  // an empty list and exit immediately).
  struct Shared {
    std::vector<std::function<void()>> tasks;
    std::atomic<std::size_t> next{0};
    Mutex m;
    CondVar done_cv;
    std::size_t done BCSF_GUARDED_BY(m) = 0;
    std::exception_ptr first_error BCSF_GUARDED_BY(m);
  };
  auto shared = std::make_shared<Shared>();
  shared->tasks = std::move(tasks);
  const std::size_t n = shared->tasks.size();

  auto drain = [shared, n] {
    for (;;) {
      const std::size_t i =
          shared->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      std::exception_ptr error;
      try {
        shared->tasks[i]();
      } catch (...) {
        error = std::current_exception();
      }
      MutexLock lock(shared->m);
      if (error && !shared->first_error) shared->first_error = error;
      if (++shared->done == n) shared->done_cv.notify_all();
    }
  };

  if (pool != nullptr) {
    // One helper per remaining task, capped at the pool width; refusals
    // (pool shutting down) are fine -- the caller drains regardless.
    const std::size_t helpers = std::min(n - 1, pool->size());
    for (std::size_t h = 0; h < helpers; ++h) {
      if (!pool->try_submit(drain)) break;
    }
  }
  drain();

  MutexLock lock(shared->m);
  while (shared->done != n) shared->done_cv.wait(lock);
  if (shared->first_error) std::rethrow_exception(shared->first_error);
}

}  // namespace bcsf
