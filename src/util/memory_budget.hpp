// MemoryBudget: lock-free byte accounting for the service-wide storage
// budget (DESIGN.md §10).  One instance tracks one class of bytes --
// structured-plan storage, delta-chunk storage -- as an atomic resident
// counter with a CAS-maintained peak, against an optional fixed budget.
//
// The budget itself is advisory at this layer: charge() never fails.
// Enforcement policy (pre-charge admission, eviction, forced compaction)
// lives in the serving layer, which serializes its charges so the
// plan-resident invariant `resident <= budget` holds by construction.
#pragma once

#include <atomic>
#include <cstddef>

namespace bcsf {

class MemoryBudget {
 public:
  /// `budget_bytes` == 0 means unlimited (accounting only).
  explicit MemoryBudget(std::size_t budget_bytes = 0)
      : budget_(budget_bytes) {}

  std::size_t budget() const { return budget_; }
  bool unlimited() const { return budget_ == 0; }

  std::size_t resident() const {
    return resident_.load(std::memory_order_acquire);
  }
  /// High-water mark of resident() since construction.
  std::size_t peak() const { return peak_.load(std::memory_order_acquire); }

  /// True when `extra` more bytes would still fit (always, if unlimited).
  bool would_fit(std::size_t extra) const {
    return unlimited() || resident() + extra <= budget_;
  }

  void charge(std::size_t bytes) {
    const std::size_t now =
        resident_.fetch_add(bytes, std::memory_order_acq_rel) + bytes;
    std::size_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now, std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
    }
  }

  /// Saturating: releasing more than is resident clamps at zero instead
  /// of wrapping (a defensive guard; the serving layer's charge/release
  /// pairs are exact).
  void release(std::size_t bytes) {
    std::size_t cur = resident_.load(std::memory_order_relaxed);
    while (!resident_.compare_exchange_weak(
        cur, cur >= bytes ? cur - bytes : 0, std::memory_order_acq_rel,
        std::memory_order_relaxed)) {
    }
  }

 private:
  const std::size_t budget_;
  std::atomic<std::size_t> resident_{0};
  std::atomic<std::size_t> peak_{0};
};

}  // namespace bcsf
