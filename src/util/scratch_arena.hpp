// ScratchArena: a tiny pool of reusable double buffers for the sharded
// execution paths (DESIGN.md §8).
//
// Every multi-shard matrix op used to allocate K rows*rank double
// partials per call (plan layer) or per request (serving layer); at
// serving rates that allocation churn is visible on shards=4 p50.  The
// arena keeps released buffers on a freelist and hands them back to the
// next acquire of any size, so steady-state sharded traffic allocates
// nothing after warm-up.
//
// Thread-safe: acquire/release take a mutex, which is noise next to the
// kernel sweeps the buffers feed.  Buffer CONTENTS are unspecified on
// acquire -- callers overwrite (the partial paths seed by copy-promoting
// a plan output), so the arena never pays a zero-fill.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "util/thread_annotations.hpp"

namespace bcsf {

class ScratchArena {
 public:
  /// Returns a buffer with exactly `size` elements and UNSPECIFIED
  /// contents (a recycled buffer keeps its stale values).
  std::vector<double> acquire(std::size_t size);

  /// Returns a buffer to the freelist for reuse.  Buffers beyond the
  /// retention cap are simply freed, bounding arena memory.
  void release(std::vector<double>&& buffer);

  /// Buffers currently parked on the freelist (observability/tests).
  std::size_t pooled() const;

 private:
  // Enough for the widest fan-out the stack produces (max_shards) plus
  // slack for overlapping requests; beyond this, recycling stops paying.
  static constexpr std::size_t kMaxPooled = 64;

  mutable Mutex mutex_;
  std::vector<std::vector<double>> free_ BCSF_GUARDED_BY(mutex_);
};

/// RAII lease on an arena buffer: releases back on destruction.  Movable
/// so shard tasks can hand partials to the reducer without copies.
class ScratchLease {
 public:
  ScratchLease() = default;
  ScratchLease(ScratchArena& arena, std::size_t size)
      : arena_(&arena), buffer_(arena.acquire(size)) {}
  ~ScratchLease() {
    if (arena_ != nullptr) arena_->release(std::move(buffer_));
  }

  ScratchLease(const ScratchLease&) = delete;
  ScratchLease& operator=(const ScratchLease&) = delete;
  ScratchLease(ScratchLease&& other) noexcept
      : arena_(other.arena_), buffer_(std::move(other.buffer_)) {
    other.arena_ = nullptr;
  }
  ScratchLease& operator=(ScratchLease&& other) noexcept {
    if (this != &other) {
      if (arena_ != nullptr) arena_->release(std::move(buffer_));
      arena_ = other.arena_;
      buffer_ = std::move(other.buffer_);
      other.arena_ = nullptr;
    }
    return *this;
  }

  std::vector<double>& get() { return buffer_; }
  const std::vector<double>& get() const { return buffer_; }
  bool valid() const { return arena_ != nullptr; }

 private:
  ScratchArena* arena_ = nullptr;
  std::vector<double> buffer_;
};

}  // namespace bcsf
