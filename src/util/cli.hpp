// A tiny flag parser for the examples and bench drivers:
//   --name=value  or  --name value  or boolean --flag
// Unknown flags raise bcsf::Error so typos fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace bcsf {

class CliParser {
 public:
  CliParser(int argc, const char* const* argv);

  /// True if --name was present (with or without a value).
  bool has(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;  // name -> value ("" if none)
  std::vector<std::string> positional_;
};

}  // namespace bcsf
