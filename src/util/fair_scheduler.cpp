#include "util/fair_scheduler.hpp"

#include <utility>

#include "util/thread_pool.hpp"

namespace bcsf {

FairScheduler::FairScheduler(ThreadPool& pool, std::size_t max_inflight)
    : pool_(pool), max_inflight_(max_inflight == 0 ? 1 : max_inflight) {}

FairScheduler::~FairScheduler() {
  std::vector<Job> abandoned;
  {
    MutexLock lock(mutex_);
    draining_ = true;
    for (auto& [key, queue] : queues_) {
      for (Job& job : queue) abandoned.push_back(std::move(job));
      queue.clear();
    }
    queued_ = 0;
  }
  for (Job& job : abandoned) {
    if (job.abandon) job.abandon();
  }
}

void FairScheduler::enqueue(const std::string& key, Job job) {
  std::vector<Job> abandoned;
  {
    MutexLock lock(mutex_);
    if (draining_) {
      abandoned.push_back(std::move(job));
    } else {
      auto [it, inserted] = queues_.try_emplace(key);
      if (inserted) ring_.push_back(key);
      it->second.push_back(std::move(job));
      ++queued_;
      pump_locked(abandoned);
    }
  }
  for (Job& dropped : abandoned) {
    if (dropped.abandon) dropped.abandon();
  }
}

bool FairScheduler::idle() const {
  MutexLock lock(mutex_);
  return queued_ == 0 && inflight_ == 0;
}

std::size_t FairScheduler::queued() const {
  MutexLock lock(mutex_);
  return queued_;
}

std::uint64_t FairScheduler::completed() const {
  MutexLock lock(mutex_);
  return completed_;
}

// Caller holds mutex_.  Fills every free inflight slot from the ring,
// advancing the cursor one key per dispatched job so concurrently-busy
// tenants alternate.  If the pool refuses a wrapper (shutdown), the
// scheduler flips to draining and every queued job is handed back for
// abandonment -- run outside the lock by the caller.
void FairScheduler::pump_locked(std::vector<Job>& abandoned) {
  while (!draining_ && inflight_ < max_inflight_ && queued_ > 0) {
    Job job;
    for (std::size_t probe = 0; probe < ring_.size(); ++probe) {
      auto& queue = queues_[ring_[cursor_ % ring_.size()]];
      cursor_ = (cursor_ + 1) % ring_.size();
      if (!queue.empty()) {
        job = std::move(queue.front());
        queue.pop_front();
        --queued_;
        break;
      }
    }
    ++inflight_;
    auto body = std::make_shared<Job>(std::move(job));
    const bool accepted = pool_.try_submit([this, body] {
      try {
        if (body->run) body->run();
      } catch (...) {
        // Jobs own their error handling; never lose the inflight slot.
      }
      finish_one();
    });
    if (!accepted) {
      --inflight_;
      draining_ = true;
      abandoned.push_back(std::move(*body));
      for (auto& [key, queue] : queues_) {
        for (Job& rest : queue) abandoned.push_back(std::move(rest));
        queue.clear();
      }
      queued_ = 0;
    }
  }
}

void FairScheduler::finish_one() {
  std::vector<Job> abandoned;
  {
    MutexLock lock(mutex_);
    --inflight_;
    ++completed_;
    pump_locked(abandoned);
  }
  for (Job& dropped : abandoned) {
    if (dropped.abandon) dropped.abandon();
  }
}

}  // namespace bcsf
