// Common scalar types and small helpers shared by every module.
//
// The paper stores indices as 32-bit unsigned integers and values as
// 32-bit floats ("We use 32 bit unsigned integers to store the indices and
// 32 bit floats to store the values", §VI-A).  Offsets into nonzero arrays
// use 64 bits so tensors larger than 4G nonzeros do not overflow pointer
// arrays.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace bcsf {

using index_t = std::uint32_t;  ///< one coordinate along a tensor mode
using offset_t = std::uint64_t; ///< position into the nonzero arrays
using value_t = float;          ///< numerical value of a nonzero
using rank_t = std::uint32_t;   ///< CP rank (number of factor columns)

inline constexpr index_t kInvalidIndex = std::numeric_limits<index_t>::max();

/// Bytes occupied by one stored index (paper assumes 4-byte indices in all
/// storage-cost formulas of §III).
inline constexpr std::size_t kIndexBytes = sizeof(index_t);

/// Integer ceiling division for work partitioning.
template <typename T>
constexpr T ceil_div(T a, T b) {
  return (a + b - 1) / b;
}

/// Round `a` up to the next multiple of `b`.
template <typename T>
constexpr T round_up(T a, T b) {
  return ceil_div(a, b) * b;
}

using index_vec = std::vector<index_t>;
using offset_vec = std::vector<offset_t>;
using value_vec = std::vector<value_t>;

}  // namespace bcsf
