#include "serve/mttkrp_service.hpp"

#include <cmath>
#include <limits>
#include <utility>

#include "core/auto_policy.hpp"
#include "util/error.hpp"

namespace bcsf {

namespace {

/// Formats whose "build" is free because their representation IS the
/// source tensor (DESIGN.md §2).  Only these may serve the initial path,
/// and upgrading to one of them would buy nothing.
bool is_coo_family(const std::string& format) {
  return format == "coo" || format == "cpu-coo" || format == "reference";
}

}  // namespace

MttkrpService::MttkrpService(ServeOptions opts)
    : opts_(std::move(opts)), pool_(opts_.workers) {
  BCSF_CHECK(is_coo_family(opts_.initial_format),
             "MttkrpService: initial_format '"
                 << opts_.initial_format
                 << "' is not zero-preprocessing (COO family)");
}

MttkrpService::~MttkrpService() = default;

void MttkrpService::register_tensor(const std::string& name,
                                    TensorPtr tensor) {
  BCSF_CHECK(!name.empty(), "MttkrpService: empty tensor name");
  BCSF_CHECK(tensor != nullptr, "MttkrpService: null tensor '" << name << "'");
  BCSF_CHECK(tensor->nnz() > 0,
             "MttkrpService: tensor '" << name << "' has no nonzeros");
  auto state = std::make_unique<TensorState>(std::move(tensor), opts_.plan);
  std::unique_lock<std::shared_mutex> lock(tensors_mutex_);
  const bool inserted = tensors_.emplace(name, std::move(state)).second;
  BCSF_CHECK(inserted, "MttkrpService: tensor '" << name
                                                 << "' already registered");
}

bool MttkrpService::has_tensor(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(tensors_mutex_);
  return tensors_.count(name) > 0;
}

MttkrpService::TensorState& MttkrpService::state_for(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(tensors_mutex_);
  auto it = tensors_.find(name);
  BCSF_CHECK(it != tensors_.end(),
             "MttkrpService: unknown tensor '" << name << "'");
  return *it->second;
}

std::future<MttkrpResponse> MttkrpService::submit(MttkrpRequest request) {
  BCSF_CHECK(request.factors != nullptr,
             "MttkrpService: request has no factors");
  TensorState& state = state_for(request.tensor);
  BCSF_CHECK(request.mode < state.cache.tensor()->order(),
             "MttkrpService: mode " << request.mode
                                    << " out of range for tensor '"
                                    << request.tensor << "'");
  return pool_.async([this, &state, req = std::move(request)] {
    return handle(state, req);
  });
}

std::vector<std::future<MttkrpResponse>> MttkrpService::submit_batch(
    std::vector<MttkrpRequest> batch) {
  std::vector<std::future<MttkrpResponse>> futures;
  futures.reserve(batch.size());
  for (MttkrpRequest& request : batch) {
    futures.push_back(submit(std::move(request)));
  }
  return futures;
}

std::uint64_t MttkrpService::call_count(const std::string& tensor) const {
  return state_for(tensor).calls.load(std::memory_order_relaxed);
}

std::string MttkrpService::current_format(const std::string& tensor,
                                          index_t mode) const {
  TensorState& state = state_for(tensor);
  BCSF_CHECK(mode < state.modes.size(), "MttkrpService: mode out of range");
  ModeSlot& slot = state.modes[mode];
  std::lock_guard<std::mutex> lock(slot.m);
  return slot.current ? slot.current->resolved_format() : opts_.initial_format;
}

bool MttkrpService::upgraded(const std::string& tensor, index_t mode) const {
  TensorState& state = state_for(tensor);
  BCSF_CHECK(mode < state.modes.size(), "MttkrpService: mode out of range");
  ModeSlot& slot = state.modes[mode];
  std::lock_guard<std::mutex> lock(slot.m);
  return slot.upgraded_flag;
}

MttkrpResponse MttkrpService::handle(TensorState& state,
                                     const MttkrpRequest& request) {
  const std::uint64_t sequence =
      state.calls.fetch_add(1, std::memory_order_relaxed) + 1;
  ModeSlot& slot = state.modes[request.mode];
  const std::uint64_t mode_sequence =
      slot.mode_calls.fetch_add(1, std::memory_order_relaxed) + 1;

  SharedPlan plan;
  bool was_upgraded = false;
  {
    std::lock_guard<std::mutex> lock(slot.m);
    plan = slot.current;
    was_upgraded = slot.upgraded_flag;
  }
  if (!plan) {
    // First touch of this mode: the COO-family plan is build-free, so the
    // request still answers immediately (single-flight dedupes racers).
    SharedPlan initial = state.cache.get(opts_.initial_format, request.mode);
    std::lock_guard<std::mutex> lock(slot.m);
    if (!slot.current) slot.current = std::move(initial);
    plan = slot.current;
    was_upgraded = slot.upgraded_flag;
  }

  if (opts_.enable_upgrade && !was_upgraded) {
    maybe_launch_upgrade(state, request.mode, mode_sequence);
  }

  PlanRunResult run = plan->run(*request.factors);
  MttkrpResponse response;
  response.output = std::move(run.output);
  response.report = std::move(run.report);
  response.served_format = plan->resolved_format();
  response.plan = std::move(plan);
  response.sequence = sequence;
  response.upgraded = was_upgraded;
  return response;
}

std::pair<std::string, double> MttkrpService::resolve_upgrade_policy(
    const TensorState& state, index_t mode) const {
  std::string target = opts_.upgrade_format;
  double threshold = opts_.upgrade_threshold;
  if (target == "auto" || threshold <= 0.0) {
    AutoPolicyOptions policy;
    // The policy's expected-calls gate answers "will enough calls ever
    // arrive?" from a static guess.  The service KNOWS: it counts real
    // traffic and launches exactly at break-even, so the gate must not
    // veto the target -- only an infinite break-even (structure yields
    // no per-call gain) or coo-dominant slice binning disables upgrade.
    policy.expected_mttkrp_calls = std::numeric_limits<double>::infinity();
    const AutoDecision decision =
        auto_select_format(*state.cache.tensor(), mode, policy);
    if (target == "auto") target = decision.format;
    if (threshold <= 0.0) {
      threshold = std::isfinite(decision.breakeven_calls)
                      ? std::max(1.0, std::ceil(decision.breakeven_calls))
                      : std::numeric_limits<double>::infinity();
    }
  }
  // Upgrading to a zero-preprocessing format is a no-op: stay as served.
  if (is_coo_family(target)) target.clear();
  return {std::move(target), threshold};
}

void MttkrpService::maybe_launch_upgrade(TensorState& state, index_t mode,
                                         std::uint64_t mode_sequence) {
  ModeSlot& slot = state.modes[mode];
  if (slot.upgrade_launched.load(std::memory_order_acquire)) return;

  std::string target;
  double threshold = 0.0;
  bool resolved;
  {
    std::lock_guard<std::mutex> lock(slot.m);
    resolved = slot.policy_resolved;
    if (resolved) {
      target = slot.target_format;
      threshold = slot.threshold;
    }
  }
  if (!resolved) {
    // The policy scan is O(nnz), so it runs with NO lock held: requests
    // for this mode keep serving meanwhile.  Concurrent resolvers compute
    // the same answer; first publish wins.
    auto [fresh_target, fresh_threshold] = resolve_upgrade_policy(state, mode);
    std::lock_guard<std::mutex> lock(slot.m);
    if (!slot.policy_resolved) {
      slot.target_format = std::move(fresh_target);
      slot.threshold = fresh_threshold;
      slot.policy_resolved = true;
    }
    target = slot.target_format;
    threshold = slot.threshold;
  }

  if (target.empty()) {
    // Nothing to upgrade to; pin the flag so later calls return fast.
    slot.upgrade_launched.store(true, std::memory_order_release);
    return;
  }
  if (static_cast<double>(mode_sequence) < threshold) return;
  if (slot.upgrade_launched.exchange(true, std::memory_order_acq_rel)) return;

  const bool queued = pool_.try_submit([this, &state, mode, target] {
    ModeSlot& slot = state.modes[mode];
    try {
      // Break-even crossed: pay the structured build off the request
      // path.  Single-flight in the cache dedupes against anyone else.
      SharedPlan structured = state.cache.get(target, mode);
      std::lock_guard<std::mutex> lock(slot.m);
      slot.current = std::move(structured);  // in-flight runs keep the old
                                             // plan alive via SharedPlan
      slot.upgraded_flag = true;
    } catch (...) {
      // Build failed; re-arm so a later request retries the upgrade.
      slot.upgrade_launched.store(false, std::memory_order_release);
    }
  });
  // try_submit refuses only when the destructor is already draining the
  // queue; the upgrade is moot then, but keep the state machine honest.
  if (!queued) slot.upgrade_launched.store(false, std::memory_order_release);
}

}  // namespace bcsf
