#include "serve/tensor_op_service.hpp"

#include <cmath>
#include <limits>
#include <utility>

#include "core/auto_policy.hpp"
#include "kernels/mttkrp.hpp"
#include "kernels/ttv_fit.hpp"
#include "util/error.hpp"

namespace bcsf {

namespace {

/// Formats whose "build" is free because their representation IS the
/// source tensor (DESIGN.md §2).  Only these may serve the initial path,
/// and upgrading to one of them would buy nothing.
bool is_coo_family(const std::string& format) {
  return format == "coo" || format == "cpu-coo" || format == "reference";
}

}  // namespace

TensorOpService::TensorOpService(ServeOptions opts)
    : opts_(std::move(opts)), pool_(opts_.workers) {
  BCSF_CHECK(is_coo_family(opts_.initial_format),
             "TensorOpService: initial_format '"
                 << opts_.initial_format
                 << "' is not zero-preprocessing (COO family)");
}

TensorOpService::~TensorOpService() = default;

void TensorOpService::register_tensor(const std::string& name,
                                      TensorPtr tensor) {
  BCSF_CHECK(!name.empty(), "TensorOpService: empty tensor name");
  BCSF_CHECK(tensor != nullptr,
             "TensorOpService: null tensor '" << name << "'");
  BCSF_CHECK(tensor->nnz() > 0,
             "TensorOpService: tensor '" << name << "' has no nonzeros");
  auto state = std::make_unique<TensorState>(std::move(tensor), opts_.plan);
  std::unique_lock<std::shared_mutex> lock(tensors_mutex_);
  const bool inserted = tensors_.emplace(name, std::move(state)).second;
  BCSF_CHECK(inserted, "TensorOpService: tensor '" << name
                                                   << "' already registered");
}

bool TensorOpService::has_tensor(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(tensors_mutex_);
  return tensors_.count(name) > 0;
}

TensorOpService::TensorState& TensorOpService::state_for(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(tensors_mutex_);
  auto it = tensors_.find(name);
  BCSF_CHECK(it != tensors_.end(),
             "TensorOpService: unknown tensor '" << name << "'");
  return *it->second;
}

std::uint64_t TensorOpService::apply_updates(const std::string& tensor,
                                             SparseTensor updates) {
  TensorState& state = state_for(tensor);
  const std::uint64_t version = state.dynamic.apply(std::move(updates));
  // The compaction trigger also rides on queries; checking here keeps an
  // update-heavy, query-light workload from growing the delta unbounded.
  maybe_launch_compaction(state, state.dynamic.snapshot());
  return version;
}

std::future<ServeResponse> TensorOpService::submit(ServeRequest request) {
  BCSF_CHECK(request.factors != nullptr,
             "TensorOpService: request has no factors");
  TensorState& state = state_for(request.tensor);
  BCSF_CHECK(request.mode < state.dynamic.order(),
             "TensorOpService: mode " << request.mode
                                      << " out of range for tensor '"
                                      << request.tensor << "'");
  return pool_.async([this, &state, req = std::move(request)] {
    return handle(state, req);
  });
}

std::vector<std::future<ServeResponse>> TensorOpService::submit_batch(
    std::vector<ServeRequest> batch) {
  std::vector<std::future<ServeResponse>> futures;
  futures.reserve(batch.size());
  for (ServeRequest& request : batch) {
    futures.push_back(submit(std::move(request)));
  }
  return futures;
}

std::uint64_t TensorOpService::call_count(const std::string& tensor) const {
  return state_for(tensor).calls.load(std::memory_order_relaxed);
}

std::string TensorOpService::current_format(const std::string& tensor,
                                            index_t mode) const {
  TensorState& state = state_for(tensor);
  GenerationPtr gen;
  {
    std::shared_lock<std::shared_mutex> lock(state.gen_mutex);
    gen = state.gen;
  }
  BCSF_CHECK(mode < gen->modes.size(), "TensorOpService: mode out of range");
  ModeSlot& slot = gen->modes[mode];
  std::lock_guard<std::mutex> lock(slot.m);
  return slot.current ? slot.current->resolved_format() : opts_.initial_format;
}

bool TensorOpService::upgraded(const std::string& tensor, index_t mode) const {
  TensorState& state = state_for(tensor);
  GenerationPtr gen;
  {
    std::shared_lock<std::shared_mutex> lock(state.gen_mutex);
    gen = state.gen;
  }
  BCSF_CHECK(mode < gen->modes.size(), "TensorOpService: mode out of range");
  ModeSlot& slot = gen->modes[mode];
  std::lock_guard<std::mutex> lock(slot.m);
  return slot.upgraded_flag;
}

std::uint64_t TensorOpService::snapshot_version(
    const std::string& tensor) const {
  return state_for(tensor).dynamic.version();
}

double TensorOpService::delta_fraction(const std::string& tensor) const {
  return state_for(tensor).dynamic.snapshot().delta_fraction();
}

std::uint64_t TensorOpService::compaction_count(
    const std::string& tensor) const {
  return state_for(tensor).compactions.load(std::memory_order_relaxed);
}

TensorSnapshot TensorOpService::snapshot(const std::string& tensor) const {
  return state_for(tensor).dynamic.snapshot();
}

ServeResponse TensorOpService::handle(TensorState& state,
                                      const ServeRequest& request) {
  const std::uint64_t sequence =
      state.calls.fetch_add(1, std::memory_order_relaxed) + 1;

  // Capture (generation, snapshot) consistently: the shared lock pairs a
  // base's plans with exactly the delta chunks the base does NOT contain.
  // Everything after this block works on immutable state, so the query
  // races nothing.
  GenerationPtr gen;
  TensorSnapshot snap;
  {
    std::shared_lock<std::shared_mutex> lock(state.gen_mutex);
    gen = state.gen;
    snap = state.dynamic.snapshot();
  }

  ModeSlot& slot = gen->modes[request.mode];
  slot.mode_calls.fetch_add(1, std::memory_order_relaxed);
  slot.op_calls[static_cast<std::size_t>(request.op)].fetch_add(
      1, std::memory_order_relaxed);

  SharedPlan plan;
  bool was_upgraded = false;
  {
    std::lock_guard<std::mutex> lock(slot.m);
    plan = slot.current;
    was_upgraded = slot.upgraded_flag;
  }
  if (!plan) {
    // First touch of this mode in this generation: the COO-family plan is
    // build-free, so the request still answers immediately (single-flight
    // dedupes racers).
    SharedPlan initial = gen->cache.get(opts_.initial_format, request.mode);
    std::lock_guard<std::mutex> lock(slot.m);
    if (!slot.current) slot.current = std::move(initial);
    plan = slot.current;
    was_upgraded = slot.upgraded_flag;
  }

  if (opts_.enable_upgrade && !was_upgraded) {
    maybe_launch_upgrade(gen, request.mode);
  }

  // Base contribution through the plan; the op protocol dispatches TTV
  // and FIT onto the same traversal the structured build balanced.
  OpRequest op_request;
  op_request.kind = request.op;
  op_request.mode = request.mode;
  op_request.factors = request.factors.get();
  op_request.lambda = request.lambda ? request.lambda.get() : nullptr;
  OpResult run = plan->execute(op_request);

  // Per-op delta sweep: every op is linear in the tensor values, so the
  // frozen COO chunks' contribution on top of the base plan's result
  // yields the op on the snapshot's merged tensor.  Matrix ops sweep
  // into the output (one promote/demote across all chunks); FIT adds the
  // chunks' inner product to the scalar.  Chunks are immutable; no lock
  // is held.
  switch (request.op) {
    case OpKind::kMttkrp:
      mttkrp_delta_accumulate(snap.deltas, request.mode, *request.factors,
                              run.output);
      break;
    case OpKind::kTtv:
      ttv_delta_accumulate(snap.deltas, request.mode, *request.factors,
                           run.output);
      break;
    case OpKind::kFit:
      run.scalar += fit_inner_delta(snap.deltas, *request.factors,
                                    op_request.lambda);
      break;
  }

  maybe_launch_compaction(state, snap);

  ServeResponse response;
  response.output = std::move(run.output);
  response.report = std::move(run.report);
  response.served_format = plan->resolved_format();
  response.plan = std::move(plan);
  response.sequence = sequence;
  response.upgraded = was_upgraded;
  response.snapshot_version = snap.version;
  response.delta_nnz = snap.delta_nnz;
  response.op = request.op;
  response.scalar = run.scalar;
  return response;
}

std::pair<std::string, double> TensorOpService::resolve_upgrade_policy(
    const Generation& gen, index_t mode) const {
  std::string target = opts_.upgrade_format;
  double threshold = opts_.upgrade_threshold;
  if (target == "auto" || threshold <= 0.0) {
    AutoPolicyOptions policy;
    // The policy's expected-calls gate answers "will enough calls ever
    // arrive?" from a static guess.  The service KNOWS: it counts real
    // traffic and launches exactly at break-even, so the gate must not
    // veto the target -- only an infinite break-even (structure yields
    // no per-call gain) or coo-dominant slice binning disables upgrade.
    // Mixed-op traffic is priced at the MTTKRP rate: full-rank calls
    // dominate the gain, and the built structure serves every op anyway.
    policy.expected_mttkrp_calls = std::numeric_limits<double>::infinity();
    const AutoDecision decision =
        auto_select_format(*gen.cache.tensor(), mode, policy);
    if (target == "auto") target = decision.format;
    if (threshold <= 0.0) {
      threshold = std::isfinite(decision.breakeven_calls)
                      ? std::max(1.0, std::ceil(decision.breakeven_calls))
                      : std::numeric_limits<double>::infinity();
    }
  }
  // Upgrading to a zero-preprocessing format is a no-op: stay as served.
  if (is_coo_family(target)) target.clear();
  return {std::move(target), threshold};
}

void TensorOpService::maybe_launch_upgrade(const GenerationPtr& gen,
                                           index_t mode) {
  ModeSlot& slot = gen->modes[mode];
  if (slot.upgrade_launched.load(std::memory_order_acquire)) return;

  std::string target;
  double threshold = 0.0;
  bool resolved;
  {
    std::lock_guard<std::mutex> lock(slot.m);
    resolved = slot.policy_resolved;
    if (resolved) {
      target = slot.target_format;
      threshold = slot.threshold;
    }
  }
  if (!resolved) {
    // The policy scan is O(nnz), so it runs with NO lock held: requests
    // for this mode keep serving meanwhile.  Concurrent resolvers compute
    // the same answer; first publish wins.  After a compaction this runs
    // afresh on the NEW base -- the merged structure may bin differently.
    auto [fresh_target, fresh_threshold] = resolve_upgrade_policy(*gen, mode);
    std::lock_guard<std::mutex> lock(slot.m);
    if (!slot.policy_resolved) {
      slot.target_format = std::move(fresh_target);
      slot.threshold = fresh_threshold;
      slot.policy_resolved = true;
    }
    target = slot.target_format;
    threshold = slot.threshold;
  }

  if (target.empty()) {
    // Nothing to upgrade to; pin the flag so later calls return fast.
    slot.upgrade_launched.store(true, std::memory_order_release);
    return;
  }
  // Gain-weighted traffic vs the break-even threshold: MTTKRP and FIT
  // calls recoup the build at the full-rank rate, a rank-1 TTV call at
  // ~1/R of it -- so TTV-dominated modes launch the sort-dominated
  // build only once the discounted traffic actually pays for it (the
  // op-aware §3 economics applied to OBSERVED calls).
  const double effective_calls =
      static_cast<double>(slot.op_calls[static_cast<std::size_t>(
                                            OpKind::kMttkrp)]
                              .load(std::memory_order_relaxed)) +
      static_cast<double>(
          slot.op_calls[static_cast<std::size_t>(OpKind::kFit)].load(
              std::memory_order_relaxed)) +
      static_cast<double>(
          slot.op_calls[static_cast<std::size_t>(OpKind::kTtv)].load(
              std::memory_order_relaxed)) *
          AutoPolicyOptions{}.ttv_gain_fraction;
  if (effective_calls < threshold) return;
  if (slot.upgrade_launched.exchange(true, std::memory_order_acq_rel)) return;

  // The task holds the generation alive; if a compaction retires it
  // mid-build, the finished plan lands in the retired generation's slot
  // and simply ages out with it.
  const bool queued = pool_.try_submit([gen, mode, target] {
    ModeSlot& slot = gen->modes[mode];
    try {
      // Break-even crossed: pay the structured build off the request
      // path.  Single-flight in the cache dedupes against anyone else.
      SharedPlan structured = gen->cache.get(target, mode);
      std::lock_guard<std::mutex> lock(slot.m);
      slot.current = std::move(structured);  // in-flight runs keep the old
                                             // plan alive via SharedPlan
      slot.upgraded_flag = true;
    } catch (...) {
      // Build failed; re-arm so a later request retries the upgrade.
      slot.upgrade_launched.store(false, std::memory_order_release);
    }
  });
  // try_submit refuses only when the destructor is already draining the
  // queue; the upgrade is moot then, but keep the state machine honest.
  if (!queued) slot.upgrade_launched.store(false, std::memory_order_release);
}

void TensorOpService::maybe_launch_compaction(TensorState& state,
                                              const TensorSnapshot& snap) {
  if (!opts_.enable_compaction || opts_.compact_threshold <= 0.0) return;
  if (snap.delta_nnz < opts_.compact_min_nnz) return;
  if (snap.delta_fraction() < opts_.compact_threshold) return;
  if (state.compacting.exchange(true, std::memory_order_acq_rel)) return;
  const bool queued =
      pool_.try_submit([this, &state] { run_compaction(state); });
  if (!queued) state.compacting.store(false, std::memory_order_release);
}

void TensorOpService::run_compaction(TensorState& state) {
  try {
    // Capture and merge OFF the commit path: queries keep serving from
    // the current generation while the O(nnz log nnz) coalesce runs.
    // Re-validate the trigger against a FRESH snapshot: the launcher may
    // have held a stale one (captured before a just-committed
    // compaction), and merging a sub-threshold delta is wasted work.
    const TensorSnapshot snap = state.dynamic.snapshot();
    if (snap.delta_nnz >= opts_.compact_min_nnz &&
        snap.delta_fraction() >= opts_.compact_threshold) {
      TensorPtr new_base = share_tensor(snap.merged(/*coalesce=*/true));
      GenerationPtr old_gen;
      GenerationPtr new_gen;
      {
        // Commit: swap the base and the plan generation as one atomic
        // step against the queries' shared-lock capture.  Chunks applied
        // since `snap` stay in the delta, now on top of the new base.
        std::unique_lock<std::shared_mutex> lock(state.gen_mutex);
        const std::uint64_t new_version =
            state.dynamic.replace_base(new_base, snap.version);
        new_gen = std::make_shared<Generation>(std::move(new_base),
                                               opts_.plan, new_version);
        old_gen = std::move(state.gen);
        for (std::size_t m = 0; m < new_gen->modes.size(); ++m) {
          // Carry traffic counters (total and per-op): a hot mode
          // re-launches its structured build (and re-runs the §V policy
          // on the merged base) on the first post-compaction request
          // instead of re-earning the threshold from zero.
          new_gen->modes[m].mode_calls.store(
              old_gen->modes[m].mode_calls.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
          for (std::size_t op = 0; op < old_gen->modes[m].op_calls.size();
               ++op) {
            new_gen->modes[m].op_calls[op].store(
                old_gen->modes[m].op_calls[op].load(
                    std::memory_order_relaxed),
                std::memory_order_relaxed);
          }
        }
        state.gen = std::move(new_gen);
      }
      state.compactions.fetch_add(1, std::memory_order_relaxed);
    }
    state.compacting.store(false, std::memory_order_release);
  } catch (...) {
    // Merge failed (e.g. allocation); re-arm so a later trigger retries.
    state.compacting.store(false, std::memory_order_release);
  }
}

}  // namespace bcsf
