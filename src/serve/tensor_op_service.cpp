#include "serve/tensor_op_service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <limits>
#include <tuple>
#include <utility>

#include "core/auto_policy.hpp"
#include "core/sharded_plan.hpp"
#include "kernels/mttkrp.hpp"
#include "kernels/ttv_fit.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace bcsf {

namespace {

/// Formats whose "build" is free because their representation IS the
/// source tensor (DESIGN.md §2).  Only these may serve the initial path,
/// and upgrading to one of them would buy nothing.
bool is_coo_family(const std::string& format) {
  return ConcurrentPlanCache::coo_family(format);
}

}  // namespace

TensorOpService::TensorOpService(ServeOptions opts)
    : opts_(std::move(opts)),
      budget_(opts_.storage_budget_bytes),
      scheduler_(pool_, opts_.max_concurrent_upgrades == 0
                            ? opts_.workers
                            : opts_.max_concurrent_upgrades),
      pool_(opts_.workers) {
  BCSF_CHECK(is_coo_family(opts_.initial_format),
             "TensorOpService: initial_format '"
                 << opts_.initial_format
                 << "' is not zero-preprocessing (COO family)");
  BCSF_CHECK(opts_.upgrade_format != "sharded",
             "TensorOpService: upgrade_format 'sharded' is redundant -- the "
             "service shards tensors itself (ServeOptions::shards)");
  BCSF_CHECK(opts_.heat_decay > 0.0 && opts_.heat_decay <= 1.0,
             "TensorOpService: heat_decay must be in (0, 1], got "
                 << opts_.heat_decay);
}

TensorOpService::~TensorOpService() = default;

void TensorOpService::register_tensor(const std::string& name,
                                      TensorPtr tensor) {
  BCSF_CHECK(!name.empty(), "TensorOpService: empty tensor name");
  BCSF_CHECK(tensor != nullptr,
             "TensorOpService: null tensor '" << name << "'");
  BCSF_CHECK(tensor->nnz() > 0,
             "TensorOpService: tensor '" << name << "' has no nonzeros");
  BCSF_CHECK(opts_.shard_mode < tensor->order(),
             "TensorOpService: shard_mode " << opts_.shard_mode
                                            << " out of range for tensor '"
                                            << name << "'");

  // Sketch the partition mode in ONE streaming pass (DESIGN.md §12):
  // the same O(nnz) walk feeds shard pricing (nnz + slice skew) and the
  // slice-mass CDF the sketched partitioner cuts against, replacing the
  // register path's O(nnz log nnz) sort.
  ModeSketch reg_sketch(opts_.shard_mode, tensor->order());
  if (opts_.sketch_policy) {
    std::vector<index_t> coords(tensor->order());
    for (offset_t z = 0; z < tensor->nnz(); ++z) {
      for (index_t m = 0; m < tensor->order(); ++m) {
        coords[m] = tensor->coord(m, z);
      }
      reg_sketch.add(coords);
    }
  }

  // Auto pricing is overhead-aware (DESIGN.md §8): the partition mode's
  // extent scales the merge traffic a sharded request pays, so tensors
  // below the fan-out/reduce break-even stay monolithic.  The sketched
  // slice skew additionally drops the reduce term when every cut
  // provably lands on a slice boundary (disjoint-output pricing).
  const unsigned want =
      opts_.shards == 0
          ? auto_shard_count(tensor->nnz(), tensor->dim(opts_.shard_mode),
                             AutoPolicyOptions{},
                             opts_.sketch_policy ? reg_sketch.max_slice_nnz()
                                                 : offset_t{0})
          : opts_.shards;
  auto state = std::make_unique<TensorState>();
  state->name = name;
  state->dims = tensor->dims();
  state->partition_mode = opts_.shard_mode;
  if (want <= 1) {
    // Monolithic fast path: one shard covering every slice, no partition
    // copy -- bit-for-bit the pre-§8 service.
    state->route_begin.push_back(0);
    state->shards.push_back(std::make_unique<ShardState>(
        std::move(tensor), opts_.plan, 0, state->dims[opts_.shard_mode],
        opts_.build_fn, opts_.heat_decay));
  } else {
    const TensorPartition partition =
        opts_.sketch_policy
            ? partition_tensor(*tensor, opts_.shard_mode, want, reg_sketch)
            : partition_tensor(*tensor, opts_.shard_mode, want);
    BCSF_INFO << "TensorOpService: tensor '" << name << "' -> "
              << partition.to_string();
    // Unsplit slice ranges make partition-mode output rows private per
    // shard -- the disjoint-output serving path; a split (overlapping)
    // partition falls back to the merge path for every mode.
    state->disjoint = partition.disjoint_slice_ranges();
    if (state->disjoint) state->owned_begin = partition.owned_row_begins();
    for (const TensorShard& shard : partition.shards) {
      state->route_begin.push_back(shard.slice_begin);
      state->shards.push_back(std::make_unique<ShardState>(
          shard.tensor, opts_.plan, shard.slice_begin, shard.slice_end,
          opts_.build_fn, opts_.heat_decay));
    }
  }
  for (std::size_t s = 0; s < state->shards.size(); ++s) {
    state->shards[s]->owner = state.get();  // stable: held by unique_ptr
    state->shards[s]->index = s;
  }

  WriterLock lock(tensors_mutex_);
  const bool inserted = tensors_.emplace(name, std::move(state)).second;
  BCSF_CHECK(inserted, "TensorOpService: tensor '" << name
                                                   << "' already registered");
}

bool TensorOpService::has_tensor(const std::string& name) const {
  ReaderLock lock(tensors_mutex_);
  return tensors_.count(name) > 0;
}

TensorOpService::TensorState& TensorOpService::state_for(
    const std::string& name) const {
  ReaderLock lock(tensors_mutex_);
  auto it = tensors_.find(name);
  BCSF_CHECK(it != tensors_.end(),
             "TensorOpService: unknown tensor '" << name << "'");
  return *it->second;
}

std::size_t TensorOpService::route_slice(const TensorState& state,
                                         index_t slice) const {
  // The partitioner's routing rule, verbatim: routing must never drift
  // from the slice ownership the partition established.
  return bcsf::route_slice(state.route_begin, slice);
}

std::uint64_t TensorOpService::apply_updates(const std::string& tensor,
                                             SparseTensor updates) {
  TensorState& state = state_for(tensor);
  BCSF_CHECK(updates.dims() == state.dims,
             "TensorOpService: update dims mismatch for '" << tensor << "'");

  // Delta chunks count against the storage budget the moment they are
  // frozen; compaction commits release exactly what they absorb.
  const std::size_t per_nnz = delta_bytes_per_nnz(state.order());

  if (state.shards.size() == 1) {
    ShardState& shard = *state.shards.front();
    delta_bytes_.charge(static_cast<std::size_t>(updates.nnz()) * per_nnz);
    const std::uint64_t version = shard.dynamic.apply(std::move(updates));
    // The compaction trigger also rides on queries; checking here keeps an
    // update-heavy, query-light workload from growing the delta unbounded.
    maybe_launch_compaction(shard, shard.dynamic.snapshot());
    maybe_launch_reclaim();
    return version;
  }

  // Route each nonzero to its shard by slice range (the partitioner's
  // split, one shared implementation), then apply the per-shard
  // sub-batches.  Only touched shards bump their version (and possibly
  // compact); cold shards stay exactly as they were.
  std::vector<SparseTensor> routed = split_updates(
      state.dims, state.partition_mode, state.route_begin, updates);

  std::uint64_t version_sum = 0;
  for (std::size_t s = 0; s < routed.size(); ++s) {
    ShardState& shard = *state.shards[s];
    if (routed[s].nnz() > 0) {
      delta_bytes_.charge(static_cast<std::size_t>(routed[s].nnz()) * per_nnz);
      shard.dynamic.apply(std::move(routed[s]));
      maybe_launch_compaction(shard, shard.dynamic.snapshot());
    }
    version_sum += shard.dynamic.version();
  }
  maybe_launch_reclaim();
  return version_sum;
}

std::future<ServeResponse> TensorOpService::submit(ServeRequest request) {
  std::vector<ServeRequest> batch;
  batch.push_back(std::move(request));
  return std::move(submit_batch(std::move(batch)).front());
}

std::vector<std::future<ServeResponse>> TensorOpService::submit_batch(
    std::vector<ServeRequest> batch) {
  // Validate the WHOLE batch before enqueuing anything: a bad request
  // throws synchronously and nothing was dispatched.
  std::vector<TensorState*> states;
  states.reserve(batch.size());
  for (const ServeRequest& request : batch) {
    // kStats is factor-free: it is answered from sketches, not a
    // traversal contracted against factor matrices.
    BCSF_CHECK(request.op == OpKind::kStats || request.factors != nullptr,
               "TensorOpService: request has no factors");
    TensorState& state = state_for(request.tensor);
    BCSF_CHECK(request.mode < state.order(),
               "TensorOpService: mode " << request.mode
                                        << " out of range for tensor '"
                                        << request.tensor << "'");
    states.push_back(&state);
  }

  std::vector<std::future<ServeResponse>> futures(batch.size());

  // Group the batch's multi-shard requests per tensor (submission order
  // preserved within each group) so every group pays ONE task per shard
  // -- the batch-amortized fan-out -- instead of K tasks per request.
  std::vector<std::pair<TensorState*, BatchPtr>> groups;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    TensorState& state = *states[i];
    if (batch[i].op == OpKind::kStats) {
      // kStats never fans out, whatever the shard count: merging the
      // shards' sketches is O(S + registers) per shard, so one task
      // answers it without touching a plan or a nonzero.
      auto task = std::make_shared<std::packaged_task<ServeResponse()>>(
          [this, &state, req = std::move(batch[i])] {
            return handle_stats(state, req);
          });
      futures[i] = task->get_future();
      if (!pool_.try_submit([task] { (*task)(); })) (*task)();
      continue;
    }
    if (state.shards.size() == 1) {
      // Monolithic tensors keep the per-request path (bit-for-bit the
      // pre-§8 service, including its scheduling).  packaged_task +
      // try_submit instead of async(): a submit racing pool shutdown
      // must not throw out of this loop after earlier requests were
      // already enqueued -- a refused task runs INLINE instead, so every
      // future the caller holds resolves to a value or a bcsf::Error.
      auto task = std::make_shared<std::packaged_task<ServeResponse()>>(
          [this, &state, req = std::move(batch[i])] {
            return handle(state, req);
          });
      futures[i] = task->get_future();
      if (!pool_.try_submit([task] { (*task)(); })) (*task)();
      continue;
    }
    auto item = std::make_unique<BatchItem>();
    item->request = std::move(batch[i]);
    futures[i] = item->promise.get_future();
    auto group = std::find_if(groups.begin(), groups.end(),
                              [&state](const auto& g) {
                                return g.first == &state;
                              });
    if (group == groups.end()) {
      groups.emplace_back(
          &state, std::make_shared<std::vector<std::unique_ptr<BatchItem>>>());
      group = std::prev(groups.end());
    }
    group->second->push_back(std::move(item));
  }
  for (auto& [state, items] : groups) dispatch_sharded(*state, items);
  return futures;
}

void TensorOpService::dispatch_sharded(TensorState& state,
                                       const BatchPtr& items) {
  const std::size_t k = state.shards.size();
  for (auto& item_ptr : *items) {
    BatchItem& item = *item_ptr;
    item.sequence = state.calls.fetch_add(1, std::memory_order_relaxed) + 1;
    item.runs.resize(k);
    item.remaining.store(k, std::memory_order_relaxed);
    item.disjoint = state.disjoint && item.request.op != OpKind::kFit &&
                    item.request.mode == state.partition_mode;
    if (item.disjoint) {
      const rank_t rank = item.request.op == OpKind::kTtv
                              ? 1
                              : item.request.factors->front().cols();
      item.output = DenseMatrix(state.dims[item.request.mode], rank);
    }
  }

  // One task per (shard, batch), hinted to worker s % W: shard s's plan,
  // delta chunks, and generation state stay on one worker's cache across
  // the whole batch, and the submission cost is K total.  The hint is
  // soft -- a busy worker's queue is stealable (ThreadPool), so a slow
  // shard never serializes the batch behind it.
  //
  // try_submit, NOT submit: a submit racing pool shutdown used to throw
  // out of this loop, stranding every promise of the items the already-
  // submitted tasks could not finish alone (`remaining` never reached 0)
  // -- callers saw broken_promise or lost futures.  A refused task runs
  // INLINE on the submitting thread instead, so exactly K shard sweeps
  // execute no matter when the pool stops and every promise is fulfilled.
  for (std::size_t s = 0; s < k; ++s) {
    auto sweep = [this, &state, items, s] {
          for (auto& item_ptr : *items) {
            BatchItem& item = *item_ptr;
            // First task to reach the item stamps the fan-out start; the
            // stamp reaches the finisher via the `remaining` release
            // chain below.
            if (!item.started.exchange(true, std::memory_order_acq_rel)) {
              item.first_start = std::chrono::steady_clock::now();
            }
            try {
              const ShardPath path =
                  item.disjoint ? ShardPath::kDisjoint : ShardPath::kMerge;
              item.runs[s] = handle_shard(
                  *state.shards[s], item.request, path,
                  item.disjoint ? &item.output : nullptr,
                  item.disjoint ? state.owned_begin[s] : 0,
                  item.disjoint ? state.owned_begin[s + 1] : 0);
            } catch (...) {
              // First failing shard wins the flag and records the error
              // BEFORE its decrement below publishes it to the finisher.
              if (!item.failed.exchange(true, std::memory_order_acq_rel)) {
                item.error = std::current_exception();
              }
            }
            if (item.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
              finalize_item(state, item);
            }
          }
        };
    if (!pool_.try_submit(sweep, /*affinity=*/s)) sweep();
  }
}

void TensorOpService::finalize_item(TensorState& state, BatchItem& item) {
  try {
    if (item.failed.load(std::memory_order_acquire)) {
      item.promise.set_exception(item.error);
      return;
    }
    item.promise.set_value(reduce_item(state, item));
  } catch (...) {
    item.promise.set_exception(std::current_exception());
  }
}

ServeResponse TensorOpService::reduce_item(TensorState& state,
                                           BatchItem& item) {
  const std::size_t k = state.shards.size();
  ServeResponse response;
  response.sequence = item.sequence;
  response.shards = k;
  response.op = item.request.op;
  // Measured from the FIRST shard task starting, not from dispatch:
  // dispatch-relative fan-out billed pool queue wait (every request
  // queued behind the batch inflated it), which is admission's number,
  // not the fan-out's.
  response.fanout_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - item.first_start)
          .count();

  Timer reduce_timer;
  response.upgraded = true;
  bool first = true;
  for (ShardRun& run : item.runs) {
    response.snapshot_version += run.snapshot_version;
    response.delta_nnz += run.delta_nnz;
    response.scalar += run.scalar;
    response.upgraded = response.upgraded && run.upgraded;
    if (first) {
      response.report = std::move(run.report);
      response.served_format = run.format;
    } else {
      response.report += run.report;
      if (response.served_format != run.format) {
        response.served_format = "mixed";
      }
    }
    first = false;
  }
  response.report.kernel = "Serve x" + std::to_string(k);
  response.plan = std::move(item.runs.front().plan);

  if (item.request.op == OpKind::kFit) {
    // Scalar sum above IS the reduce; label it for the bench columns.
    response.reduce_path = "merge";
  } else if (item.disjoint) {
    // Every row already sits in the shared output, written exactly once
    // by its owning shard -- nothing left to combine.
    response.output = std::move(item.output);
    response.reduce_path = "disjoint";
  } else {
    const rank_t rank = item.request.op == OpKind::kTtv
                            ? 1
                            : item.request.factors->front().cols();
    std::vector<std::span<const double>> partials;
    partials.reserve(k);
    for (const ShardRun& run : item.runs) partials.emplace_back(run.acc.get());
    response.output = reduce_shard_partials(state.dims[item.request.mode],
                                            rank, partials);
    // No explicit release: the leases return to the arena when the runs
    // die -- on THIS path and on every failure path alike.
    response.reduce_path = "merge";
  }
  response.reduce_ms = reduce_timer.milliseconds();
  return response;
}

std::uint64_t TensorOpService::call_count(const std::string& tensor) const {
  return state_for(tensor).calls.load(std::memory_order_relaxed);
}

std::string TensorOpService::current_format(const std::string& tensor,
                                            index_t mode) const {
  TensorState& state = state_for(tensor);
  BCSF_CHECK(mode < state.order(), "TensorOpService: mode out of range");
  std::string common;
  for (const auto& shard : state.shards) {
    GenerationPtr gen;
    {
      ReaderLock lock(shard->gen_mutex);
      gen = shard->gen;
    }
    ModeSlot& slot = gen->modes[mode];
    std::string format;
    {
      MutexLock lock(slot.m);
      format =
          slot.current ? slot.current->resolved_format() : opts_.initial_format;
    }
    if (common.empty()) {
      common = std::move(format);
    } else if (common != format) {
      return "mixed";
    }
  }
  return common;
}

bool TensorOpService::upgraded(const std::string& tensor, index_t mode) const {
  TensorState& state = state_for(tensor);
  BCSF_CHECK(mode < state.order(), "TensorOpService: mode out of range");
  for (const auto& shard : state.shards) {
    GenerationPtr gen;
    {
      ReaderLock lock(shard->gen_mutex);
      gen = shard->gen;
    }
    ModeSlot& slot = gen->modes[mode];
    MutexLock lock(slot.m);
    if (!slot.upgraded_flag) return false;
  }
  return true;
}

std::uint64_t TensorOpService::snapshot_version(
    const std::string& tensor) const {
  std::uint64_t sum = 0;
  for (const auto& shard : state_for(tensor).shards) {
    sum += shard->dynamic.version();
  }
  return sum;
}

double TensorOpService::delta_fraction(const std::string& tensor) const {
  offset_t delta = 0;
  offset_t total = 0;
  for (const auto& shard : state_for(tensor).shards) {
    const TensorSnapshot snap = shard->dynamic.snapshot();
    delta += snap.delta_nnz;
    total += snap.nnz();
  }
  return total == 0 ? 0.0
                    : static_cast<double>(delta) / static_cast<double>(total);
}

std::uint64_t TensorOpService::compaction_count(
    const std::string& tensor) const {
  std::uint64_t sum = 0;
  for (const auto& shard : state_for(tensor).shards) {
    sum += shard->compactions.load(std::memory_order_relaxed);
  }
  return sum;
}

std::vector<TensorOpService::TenantStats> TensorOpService::tenant_stats()
    const {
  std::vector<TenantStats> out;
  ReaderLock lock(tensors_mutex_);
  out.reserve(tensors_.size());
  for (const auto& [name, state] : tensors_) {
    TenantStats stats;
    stats.name = name;
    stats.calls = state->calls.load(std::memory_order_relaxed);
    stats.structured_served =
        state->structured_served.load(std::memory_order_relaxed);
    stats.coo_served = state->coo_served.load(std::memory_order_relaxed);
    stats.evictions = state->evictions.load(std::memory_order_relaxed);
    for (const auto& shard : state->shards) {
      stats.delta_bytes += shard->dynamic.delta_storage_bytes();
      const SketchScalars scalars = shard->dynamic.sketch_scalars();
      stats.sketch_nnz += static_cast<std::uint64_t>(scalars.nnz);
      stats.norm_sq += scalars.norm_sq();
      GenerationPtr gen;
      {
        ReaderLock gen_lock(shard->gen_mutex);
        gen = shard->gen;
      }
      for (ModeSlot& slot : gen->modes) {
        MutexLock slot_lock(slot.m);
        stats.plan_bytes += slot.charged_bytes;
      }
    }
    out.push_back(std::move(stats));
  }
  return out;
}

TensorSnapshot TensorOpService::snapshot(const std::string& tensor) const {
  TensorState& state = state_for(tensor);
  BCSF_CHECK(state.shards.size() == 1,
             "TensorOpService: tensor '"
                 << tensor << "' is sharded " << state.shards.size()
                 << " ways; use shard_snapshot(name, shard)");
  return state.shards.front()->dynamic.snapshot();
}

std::size_t TensorOpService::shard_count(const std::string& tensor) const {
  return state_for(tensor).shards.size();
}

TensorSnapshot TensorOpService::shard_snapshot(const std::string& tensor,
                                               std::size_t shard) const {
  TensorState& state = state_for(tensor);
  BCSF_CHECK(shard < state.shards.size(),
             "TensorOpService: shard " << shard << " out of range for '"
                                       << tensor << "'");
  return state.shards[shard]->dynamic.snapshot();
}

std::vector<TensorOpService::ShardStatus> TensorOpService::shard_status(
    const std::string& tensor, index_t mode) const {
  TensorState& state = state_for(tensor);
  BCSF_CHECK(mode < state.order(), "TensorOpService: mode out of range");
  std::vector<ShardStatus> out;
  out.reserve(state.shards.size());
  for (const auto& shard : state.shards) {
    GenerationPtr gen;
    {
      ReaderLock lock(shard->gen_mutex);
      gen = shard->gen;
    }
    const TensorSnapshot snap = shard->dynamic.snapshot();
    ShardStatus status;
    status.slice_begin = shard->slice_begin;
    status.slice_end = shard->slice_end;
    status.base_nnz = snap.base->nnz();
    status.delta_nnz = snap.delta_nnz;
    status.snapshot_version = snap.version;
    status.compactions = shard->compactions.load(std::memory_order_relaxed);
    status.build_seconds = gen->cache.total_build_seconds();
    ModeSlot& slot = gen->modes[mode];
    MutexLock lock(slot.m);
    status.format =
        slot.current ? slot.current->resolved_format() : opts_.initial_format;
    status.upgraded = slot.upgraded_flag;
    out.push_back(std::move(status));
  }
  return out;
}

std::size_t TensorOpService::shard_for_slice(const std::string& tensor,
                                             index_t slice) const {
  return route_slice(state_for(tensor), slice);
}

TensorOpService::ShardRun TensorOpService::handle_shard(
    ShardState& shard, const ServeRequest& request, ShardPath path,
    DenseMatrix* shared_out, index_t row_begin, index_t row_end) {
  // Capture (generation, snapshot) consistently: the shared lock pairs a
  // base's plans with exactly the delta chunks the base does NOT contain.
  // Everything after this block works on immutable state, so the query
  // races nothing.
  GenerationPtr gen;
  TensorSnapshot snap;
  {
    ReaderLock lock(shard.gen_mutex);
    gen = shard.gen;
    snap = shard.dynamic.snapshot();
  }

  ModeSlot& slot = gen->modes[request.mode];
  slot.mode_calls.fetch_add(1, std::memory_order_relaxed);
  slot.op_calls[static_cast<std::size_t>(request.op)].fetch_add(
      1, std::memory_order_relaxed);
  // One tick of the service-wide heat clock per shard-handled request;
  // the generation's heat counter drives budget-eviction order.
  const std::uint64_t now =
      tick_.fetch_add(1, std::memory_order_relaxed) + 1;
  gen->cache.note_call(request.mode, now);

  SharedPlan plan;
  bool was_upgraded = false;
  {
    MutexLock lock(slot.m);
    plan = slot.current;
    was_upgraded = slot.upgraded_flag;
  }
  if (!plan) {
    // First touch of this mode in this generation -- or first touch
    // after a budget eviction uninstalled the structured plan: the
    // COO-family plan is build-free, so the request still answers
    // immediately (single-flight dedupes racers).
    SharedPlan initial = gen->cache.get(opts_.initial_format, request.mode);
    MutexLock lock(slot.m);
    if (!slot.current) slot.current = std::move(initial);
    plan = slot.current;
    was_upgraded = slot.upgraded_flag;
  }
  if (shard.owner != nullptr) {
    (was_upgraded ? shard.owner->structured_served : shard.owner->coo_served)
        .fetch_add(1, std::memory_order_relaxed);
  }

  if (opts_.enable_upgrade && !was_upgraded) {
    maybe_launch_upgrade(shard, gen, request.mode);
  }

  // Base contribution through the plan; the op protocol dispatches TTV
  // and FIT onto the same traversal the structured build balanced.
  OpRequest op_request;
  op_request.kind = request.op;
  op_request.mode = request.mode;
  op_request.factors = request.factors.get();
  op_request.lambda = request.lambda ? request.lambda.get() : nullptr;
  OpResult run = plan->execute(op_request);

  ShardRun out;
  // Per-op delta sweep: every op is linear in the tensor values, so the
  // frozen COO chunks' contribution on top of the base plan's result
  // yields the op on the shard's merged tensor.  Chunks are immutable;
  // no lock is held.  kSingle keeps the float inout sweep (bit-for-bit
  // the pre-§8 arithmetic); kMerge keeps the partial in DOUBLE so the
  // cross-shard reduction casts exactly once; kDisjoint promotes only
  // the shard's OWNED row window, sweeps its routed delta there, and
  // casts straight into the shared output -- same single-cast boundary,
  // no K-way reduce (rows outside the window are zero in both the
  // shard's plan output and its routed delta, so dropping them loses
  // exactly nothing).
  switch (request.op) {
    case OpKind::kMttkrp:
    case OpKind::kTtv: {
      const bool is_mttkrp = request.op == OpKind::kMttkrp;
      if (path == ShardPath::kDisjoint) {
        const rank_t rank = is_mttkrp ? request.factors->front().cols() : 1;
        const std::size_t lo = static_cast<std::size_t>(row_begin) * rank;
        const std::size_t hi = static_cast<std::size_t>(row_end) * rank;
        ScratchLease lease(arena_, hi - lo);
        std::span<double> acc(lease.get());
        const auto data = run.output.data();
        std::copy(data.begin() + lo, data.begin() + hi, acc.begin());
        if (is_mttkrp) {
          mttkrp_delta_accumulate(snap.deltas, request.mode, *request.factors,
                                  acc, row_begin);
        } else {
          ttv_delta_accumulate(snap.deltas, request.mode, *request.factors,
                               acc, row_begin);
        }
        const auto dst = shared_out->data();
        for (std::size_t i = 0; i < acc.size(); ++i) {
          dst[lo + i] = static_cast<value_t>(acc[i]);
        }
      } else if (path == ShardPath::kMerge) {
        const auto data = run.output.data();
        out.acc = ScratchLease(arena_, data.size());
        std::copy(data.begin(), data.end(), out.acc.get().begin());
        if (is_mttkrp) {
          mttkrp_delta_accumulate(snap.deltas, request.mode, *request.factors,
                                  std::span<double>(out.acc.get()));
        } else {
          ttv_delta_accumulate(snap.deltas, request.mode, *request.factors,
                               std::span<double>(out.acc.get()));
        }
      } else if (is_mttkrp) {
        mttkrp_delta_accumulate(snap.deltas, request.mode, *request.factors,
                                run.output);
      } else {
        ttv_delta_accumulate(snap.deltas, request.mode, *request.factors,
                             run.output);
      }
      break;
    }
    case OpKind::kFit:
      run.scalar += fit_inner_delta(snap.deltas, *request.factors,
                                    op_request.lambda);
      out.scalar = run.scalar;
      break;
    case OpKind::kStats:
      BCSF_CHECK(false,
                 "handle_shard(stats): kStats is answered by handle_stats "
                 "from the shards' sketches, never by shard fan-out");
      break;
  }

  maybe_launch_compaction(shard, snap);

  out.format = plan->resolved_format();
  out.plan = std::move(plan);
  out.upgraded = was_upgraded;
  out.snapshot_version = snap.version;
  out.delta_nnz = snap.delta_nnz;
  out.report = std::move(run.report);
  if (path == ShardPath::kSingle) out.result = std::move(run);
  return out;
}

ServeResponse TensorOpService::handle(TensorState& state,
                                      const ServeRequest& request) {
  // Single-shard tensors only: multi-shard requests go through the
  // batch-amortized (shard, batch) tasks of dispatch_sharded.
  const std::uint64_t sequence =
      state.calls.fetch_add(1, std::memory_order_relaxed) + 1;

  ServeResponse response;
  response.sequence = sequence;
  response.shards = 1;
  response.op = request.op;
  response.reduce_path = "single";

  ShardRun run = handle_shard(*state.shards.front(), request,
                              ShardPath::kSingle, nullptr, 0, 0);
  response.output = std::move(run.result.output);
  response.scalar = run.result.scalar;
  response.report = std::move(run.report);
  response.served_format = std::move(run.format);
  response.plan = std::move(run.plan);
  response.upgraded = run.upgraded;
  response.snapshot_version = run.snapshot_version;
  response.delta_nnz = run.delta_nnz;
  return response;
}

ServeResponse TensorOpService::handle_stats(TensorState& state,
                                            const ServeRequest& request) {
  const std::uint64_t sequence =
      state.calls.fetch_add(1, std::memory_order_relaxed) + 1;

  // Fold the shards' sketches: the shards partition the nonzeros and
  // sketch merge is exact on every integer structural field, so the
  // merged sketch matches a whole-tensor sketch bit for bit.  Each
  // shard's base/delta norm cross-term bound adds, so the summed bound
  // covers the merged estimate too.
  TensorSketch merged(state.dims);
  double norm_err = 0.0;
  offset_t delta_nnz = 0;
  std::uint64_t version_sum = 0;
  for (const auto& shard : state.shards) {
    merged.merge(shard->dynamic.sketch());
    norm_err += shard->dynamic.sketch_scalars().norm_sq_error_bound();
    delta_nnz += shard->dynamic.delta_nnz();
    version_sum += shard->dynamic.version();
  }

  const index_t order = state.order();
  DenseMatrix out(order + 1, 8);
  for (index_t m = 0; m < order; ++m) {
    const ModeStats stats = merged.approx_mode_stats(m);
    const auto row = out.row(m);
    row[0] = static_cast<value_t>(stats.nnz);
    row[1] = static_cast<value_t>(stats.num_slices);
    row[2] = static_cast<value_t>(stats.num_fibers);
    row[3] = static_cast<value_t>(stats.singleton_slice_fraction);
    row[4] = static_cast<value_t>(stats.csl_slice_fraction);
    row[5] = static_cast<value_t>(stats.nnz_per_slice.mean);
    row[6] = static_cast<value_t>(stats.nnz_per_slice.stddev);
    row[7] = static_cast<value_t>(merged.mode(m).max_slice_nnz());
  }
  const auto tail = out.row(order);
  tail[0] = static_cast<value_t>(merged.norm_sq());
  tail[1] = static_cast<value_t>(norm_err);
  tail[2] = static_cast<value_t>(delta_nnz);
  tail[3] = static_cast<value_t>(
      merged.nnz() >= delta_nnz ? merged.nnz() - delta_nnz : offset_t{0});

  ServeResponse response;
  response.output = std::move(out);
  response.scalar = merged.norm_sq();
  response.served_format = "sketch";
  response.sequence = sequence;
  response.shards = state.shards.size();
  response.op = request.op;
  response.snapshot_version = version_sum;
  response.delta_nnz = delta_nnz;
  return response;
}

std::pair<std::string, double> TensorOpService::resolve_upgrade_policy(
    const ShardState& shard, const Generation& gen, index_t mode) const {
  const auto t0 = std::chrono::steady_clock::now();
  std::string target = opts_.upgrade_format;
  double threshold = opts_.upgrade_threshold;
  if (target == "auto" || threshold <= 0.0) {
    AutoPolicyOptions policy;
    // The policy's expected-calls gate answers "will enough calls ever
    // arrive?" from a static guess.  The service KNOWS: it counts real
    // traffic and launches exactly at break-even, so the gate must not
    // veto the target -- only an infinite break-even (structure yields
    // no per-call gain) or coo-dominant slice binning disables upgrade.
    // Mixed-op traffic is priced at the MTTKRP rate: full-rank calls
    // dominate the gain, and the built structure serves every op anyway.
    // Running on a SHARD's base, the saturation term sees the shard's
    // own nnz: undersized shards price an infinite break-even and stay
    // COO -- per-shard format choice, the §8 point.
    policy.expected_mttkrp_calls = std::numeric_limits<double>::infinity();
    // Sketch path (DESIGN.md §12): the §V bins come from the shard's
    // streaming base sketch -- O(S) reads, no nonzero touched.  If a
    // compaction retired `gen` between capture and here, the sketch
    // describes the NEWER base; the decision lands in the retired
    // generation's slot, which the fresh generation's own resolution
    // supersedes anyway.  The exact path scans the generation's base
    // (the validation oracle the parity tests compare against).
    const AutoDecision decision =
        opts_.sketch_policy
            ? auto_select_format(shard.dynamic.base_sketch(), mode, policy)
            : auto_select_format(*gen.cache.tensor(), mode, policy);
    if (target == "auto") target = decision.format;
    if (threshold <= 0.0) {
      threshold = std::isfinite(decision.breakeven_calls)
                      ? std::max(1.0, std::ceil(decision.breakeven_calls))
                      : std::numeric_limits<double>::infinity();
    }
  }
  // Upgrading to a zero-preprocessing format is a no-op: stay as served.
  if (is_coo_family(target)) target.clear();
  policy_ns_.fetch_add(
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()),
      std::memory_order_relaxed);
  policy_resolutions_.fetch_add(1, std::memory_order_relaxed);
  return {std::move(target), threshold};
}

void TensorOpService::maybe_launch_upgrade(ShardState& shard,
                                           const GenerationPtr& gen,
                                           index_t mode) {
  ModeSlot& slot = gen->modes[mode];
  if (slot.upgrade_launched.load(std::memory_order_acquire)) return;

  std::string target;
  double threshold = 0.0;
  bool resolved;
  {
    MutexLock lock(slot.m);
    resolved = slot.policy_resolved;
    if (resolved) {
      target = slot.target_format;
      threshold = slot.threshold;
    }
  }
  if (!resolved) {
    // The policy scan is O(shard nnz), so it runs with NO lock held:
    // requests for this mode keep serving meanwhile.  Concurrent
    // resolvers compute the same answer; first publish wins.  After a
    // compaction this runs afresh on the NEW base -- the merged
    // structure may bin differently.
    auto [fresh_target, fresh_threshold] =
        resolve_upgrade_policy(shard, *gen, mode);
    MutexLock lock(slot.m);
    if (!slot.policy_resolved) {
      slot.target_format = std::move(fresh_target);
      slot.threshold = fresh_threshold;
      slot.policy_resolved = true;
    }
    target = slot.target_format;
    threshold = slot.threshold;
  }

  if (target.empty()) {
    // Nothing to upgrade to; pin the flag so later calls return fast.
    slot.upgrade_launched.store(true, std::memory_order_release);
    return;
  }
  // Gain-weighted traffic vs the break-even threshold: MTTKRP and FIT
  // calls recoup the build at the full-rank rate, a rank-1 TTV call at
  // ~1/R of it -- so TTV-dominated modes launch the sort-dominated
  // build only once the discounted traffic actually pays for it (the
  // op-aware §3 economics applied to OBSERVED calls).
  const double effective_calls =
      static_cast<double>(slot.op_calls[static_cast<std::size_t>(
                                            OpKind::kMttkrp)]
                              .load(std::memory_order_relaxed)) +
      static_cast<double>(
          slot.op_calls[static_cast<std::size_t>(OpKind::kFit)].load(
              std::memory_order_relaxed)) +
      static_cast<double>(
          slot.op_calls[static_cast<std::size_t>(OpKind::kTtv)].load(
              std::memory_order_relaxed)) *
          AutoPolicyOptions{}.ttv_gain_fraction;
  if (effective_calls < threshold) return;
  if (slot.upgrade_launched.exchange(true, std::memory_order_acq_rel)) return;

  // The job holds the generation alive; if a compaction retires it
  // mid-build, run_upgrade detects the swap and releases its charge.
  // Builds are queued per TENANT through the fair scheduler: each shard
  // still gets its own build (K structured builds of nnz/K each overlap
  // up to max_concurrent_upgrades), but a whale tensor queueing dozens
  // of shard builds alternates with other tenants instead of
  // monopolizing the pool.  An abandoned job (pool shutdown) re-arms so
  // the state machine stays honest.
  FairScheduler::Job job;
  job.run = [this, &shard, gen, mode, target] {
    run_upgrade(shard, gen, mode, target);
  };
  job.abandon = [gen, mode] {
    gen->modes[mode].upgrade_launched.store(false, std::memory_order_release);
  };
  scheduler_.enqueue(shard.owner != nullptr ? shard.owner->name : "",
                     std::move(job));
}

void TensorOpService::run_upgrade(ShardState& shard, GenerationPtr gen,
                                  index_t mode, std::string target) {
  ModeSlot& slot = gen->modes[mode];
  try {
    // Break-even crossed: pay the structured build off the request
    // path.  Single-flight in the cache dedupes against anyone else.
    SharedPlan structured = gen->cache.get(target, mode);
    const std::size_t bytes = structured->storage_bytes();
    const double incoming =
        gen->cache.heat(mode, tick_.load(std::memory_order_relaxed));
    if (!admit_plan_bytes(bytes, incoming)) {
      // The budget cannot make room among strictly-colder plans: drop
      // the freshly built plan and make this mode RE-EARN the threshold
      // (op_calls zeroed before re-arming), so a tenant colder than the
      // resident set cannot thrash build/evict cycles.
      gen->cache.evict(target, mode);
      for (auto& count : slot.op_calls) {
        count.store(0, std::memory_order_relaxed);
      }
      upgrade_rejects_.fetch_add(1, std::memory_order_relaxed);
      BCSF_INFO << "TensorOpService: budget rejected " << bytes
                << "-byte '" << target << "' plan for tenant '"
                << (shard.owner != nullptr ? shard.owner->name : "?")
                << "' mode " << mode;
      slot.upgrade_launched.store(false, std::memory_order_release);
      return;
    }
    {
      MutexLock lock(slot.m);
      slot.current = std::move(structured);  // in-flight runs keep the old
                                             // plan alive via SharedPlan
      slot.upgraded_flag = true;
      slot.charged_bytes = bytes;
    }
    // A compaction may have retired this generation between the charge
    // and the install; its retirement sweep could then have run before
    // our charged_bytes was visible.  Re-check and release ourselves --
    // check-and-clear under slot.m keeps this single-shot either way.
    bool retired;
    {
      ReaderLock lock(shard.gen_mutex);
      retired = shard.gen != gen;
    }
    if (retired) budget_.release(release_slot_charge(gen, mode));
    maybe_launch_reclaim();
  } catch (...) {
    // Build failed; re-arm so a later request retries the upgrade.
    slot.upgrade_launched.store(false, std::memory_order_release);
  }
}

bool TensorOpService::admit_plan_bytes(std::size_t bytes,
                                       double incoming_heat) {
  if (budget_.unlimited()) {
    budget_.charge(bytes);
    return true;
  }
  MutexLock lock(reclaim_mutex_);
  if (budget_.resident() + bytes <= budget_.budget()) {
    budget_.charge(bytes);
    return true;
  }
  if (bytes > budget_.budget()) return false;  // can never fit
  for (const EvictionCandidate& candidate : collect_candidates()) {
    if (budget_.resident() + bytes <= budget_.budget()) break;
    // Evict strictly-colder plans only: displacing a hotter resident
    // for a colder newcomer would invert the policy.
    if (candidate.heat >= incoming_heat) break;
    evict_candidate(candidate);
  }
  if (budget_.resident() + bytes <= budget_.budget()) {
    budget_.charge(bytes);
    return true;
  }
  return false;
}

std::vector<TensorOpService::EvictionCandidate>
TensorOpService::collect_candidates() const {
  std::vector<EvictionCandidate> out;
  const std::uint64_t now = tick_.load(std::memory_order_relaxed);
  ReaderLock lock(tensors_mutex_);
  for (const auto& [name, state] : tensors_) {
    for (std::size_t s = 0; s < state->shards.size(); ++s) {
      ShardState& shard = *state->shards[s];
      GenerationPtr gen;
      {
        ReaderLock gen_lock(shard.gen_mutex);
        gen = shard.gen;
      }
      for (index_t m = 0; m < static_cast<index_t>(gen->modes.size()); ++m) {
        ModeSlot& slot = gen->modes[m];
        bool charged;
        {
          MutexLock slot_lock(slot.m);
          charged = slot.upgraded_flag && slot.charged_bytes > 0;
        }
        if (charged) {
          out.push_back({gen->cache.heat(m, now), name, s, m, gen,
                         state.get()});
        }
      }
    }
  }
  // Coldest first, with a total deterministic tiebreak so the
  // eviction-oracle test can predict the order exactly.
  std::sort(out.begin(), out.end(),
            [](const EvictionCandidate& a, const EvictionCandidate& b) {
              return std::tie(a.heat, a.tensor, a.shard, a.mode) <
                     std::tie(b.heat, b.tensor, b.shard, b.mode);
            });
  return out;
}

std::size_t TensorOpService::release_slot_charge(const GenerationPtr& gen,
                                                 index_t mode) {
  ModeSlot& slot = gen->modes[mode];
  MutexLock lock(slot.m);
  const std::size_t bytes = slot.charged_bytes;
  slot.charged_bytes = 0;
  return bytes;
}

std::size_t TensorOpService::evict_candidate(
    const EvictionCandidate& candidate) {
  ModeSlot& slot = candidate.gen->modes[candidate.mode];
  std::size_t bytes = 0;
  std::string format;
  {
    MutexLock lock(slot.m);
    if (!slot.upgraded_flag || slot.charged_bytes == 0) return 0;
    bytes = slot.charged_bytes;
    slot.charged_bytes = 0;
    format = slot.target_format;  // always concrete once installed
    // Uninstall: the next request lazily re-acquires the COO fallback
    // (handle_shard's !plan path); in-flight runs keep the evicted plan
    // alive via their SharedPlan until they finish.
    slot.current.reset();
    slot.upgraded_flag = false;
  }
  candidate.gen->cache.evict(format, candidate.mode);
  // Re-earn the threshold before rebuilding: zero the traffic counters
  // FIRST, then re-arm the launch flag, so a racing request cannot
  // relaunch off the stale counts.
  for (auto& count : slot.op_calls) count.store(0, std::memory_order_relaxed);
  slot.upgrade_launched.store(false, std::memory_order_release);
  budget_.release(bytes);
  evictions_.fetch_add(1, std::memory_order_relaxed);
  if (candidate.state != nullptr) {
    candidate.state->evictions.fetch_add(1, std::memory_order_relaxed);
  }
  BCSF_INFO << "TensorOpService: evicted " << bytes << "-byte '" << format
            << "' plan (tenant '" << candidate.tensor << "' shard "
            << candidate.shard << " mode " << candidate.mode << ", heat "
            << candidate.heat << ")";
  return bytes;
}

void TensorOpService::maybe_launch_reclaim() {
  if (budget_.unlimited()) return;
  if (budget_.resident() + delta_bytes_.resident() <= budget_.budget()) {
    return;
  }
  if (reclaiming_.exchange(true, std::memory_order_acq_rel)) return;
  if (!pool_.try_submit([this] { run_reclaim(); })) {
    reclaiming_.store(false, std::memory_order_release);
  }
}

void TensorOpService::run_reclaim() {
  try {
    const auto total = [this] {
      return budget_.resident() + delta_bytes_.resident();
    };
    // Pass 1: drop the coldest structured plans while the fleet total
    // (plans + delta) is over budget.
    {
      MutexLock lock(reclaim_mutex_);
      for (const EvictionCandidate& candidate : collect_candidates()) {
        if (total() <= budget_.budget()) break;
        evict_candidate(candidate);
      }
    }
    // Pass 2: still over -- the delta chunks themselves are the weight.
    // Force-compact delta-carrying shards coldest-tensor-first; each
    // commit absorbs the shard's chunks into a fresh base and releases
    // their bytes.
    if (total() > budget_.budget()) {
      struct Target {
        double heat = 0.0;
        std::string tensor;
        std::size_t index = 0;
        ShardState* shard = nullptr;
      };
      std::vector<Target> targets;
      const std::uint64_t now = tick_.load(std::memory_order_relaxed);
      {
        ReaderLock lock(tensors_mutex_);
        for (const auto& [name, state] : tensors_) {
          for (std::size_t s = 0; s < state->shards.size(); ++s) {
            ShardState& shard = *state->shards[s];
            if (shard.dynamic.delta_nnz() == 0) continue;
            GenerationPtr gen;
            {
              ReaderLock gen_lock(shard.gen_mutex);
              gen = shard.gen;
            }
            double heat = 0.0;
            for (index_t m = 0; m < static_cast<index_t>(gen->modes.size());
                 ++m) {
              heat += gen->cache.heat(m, now);
            }
            targets.push_back({heat, name, s, &shard});
          }
        }
      }
      std::sort(targets.begin(), targets.end(),
                [](const Target& a, const Target& b) {
                  return std::tie(a.heat, a.tensor, a.index) <
                         std::tie(b.heat, b.tensor, b.index);
                });
      for (const Target& target : targets) {
        if (total() <= budget_.budget()) break;
        if (target.shard->compacting.exchange(true,
                                              std::memory_order_acq_rel)) {
          continue;  // a normal compaction is already running here
        }
        run_compaction(*target.shard, /*force=*/true);
      }
    }
  } catch (...) {
    // Reclaim is best-effort; a failed sweep re-triggers on later
    // updates.
  }
  reclaiming_.store(false, std::memory_order_release);
}

void TensorOpService::maybe_launch_compaction(ShardState& shard,
                                              const TensorSnapshot& snap) {
  if (!opts_.enable_compaction || opts_.compact_threshold <= 0.0) return;
  if (snap.delta_nnz < opts_.compact_min_nnz) return;
  if (snap.delta_fraction() < opts_.compact_threshold) return;
  if (shard.compacting.exchange(true, std::memory_order_acq_rel)) return;
  const bool queued =
      pool_.try_submit([this, &shard] { run_compaction(shard); });
  if (!queued) shard.compacting.store(false, std::memory_order_release);
}

void TensorOpService::run_compaction(ShardState& shard, bool force) {
  try {
    // Capture and merge OFF the commit path: queries keep serving from
    // the current generation while the O(shard nnz log nnz) coalesce
    // runs -- and only THIS shard is merged, never the whole tensor
    // (the incremental-compaction point of §8).  Re-validate the
    // trigger against a FRESH snapshot: the launcher may have held a
    // stale one (captured before a just-committed compaction), and
    // merging a sub-threshold delta is wasted work.  A FORCED compaction
    // (budget reclaim) skips the threshold economics -- any delta at all
    // is weight worth dropping -- but still needs delta to absorb.
    const TensorSnapshot snap = shard.dynamic.snapshot();
    const bool due = force ? snap.delta_nnz > 0
                           : snap.delta_nnz >= opts_.compact_min_nnz &&
                                 snap.delta_fraction() >=
                                     opts_.compact_threshold;
    if (due) {
      TensorPtr new_base = share_tensor(snap.merged(/*coalesce=*/true));
      // The merged base's sketch is built HERE, off the commit path
      // (DESIGN.md §12): the writer critical section below then stays
      // O(retained chunks), and the post-commit format re-decision
      // reads this same sketch for free.
      TensorSketch new_base_sketch = TensorSketch::build(*new_base);
      GenerationPtr old_gen;
      GenerationPtr new_gen;
      {
        // Commit: swap the base and the plan generation as one atomic
        // step against the queries' shared-lock capture.  Chunks applied
        // since `snap` stay in the delta, now on top of the new base.
        WriterLock lock(shard.gen_mutex);
        const std::uint64_t new_version = shard.dynamic.replace_base(
            new_base, snap.version, std::move(new_base_sketch));
        new_gen = std::make_shared<Generation>(std::move(new_base),
                                               opts_.plan, new_version,
                                               opts_.build_fn,
                                               opts_.heat_decay);
        old_gen = std::move(shard.gen);
        const std::uint64_t now = tick_.load(std::memory_order_relaxed);
        for (std::size_t m = 0; m < new_gen->modes.size(); ++m) {
          // Carry traffic counters (total and per-op): a hot mode
          // re-launches its structured build (and re-runs the §V policy
          // on the merged base) on the first post-compaction request
          // instead of re-earning the threshold from zero.
          new_gen->modes[m].mode_calls.store(
              old_gen->modes[m].mode_calls.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
          for (std::size_t op = 0; op < old_gen->modes[m].op_calls.size();
               ++op) {
            new_gen->modes[m].op_calls[op].store(
                old_gen->modes[m].op_calls[op].load(
                    std::memory_order_relaxed),
                std::memory_order_relaxed);
          }
          // Carry heat too: eviction order must reflect the mode's
          // traffic history, not reset because the base was merged.
          const index_t mode = static_cast<index_t>(m);
          new_gen->cache.set_heat(mode, old_gen->cache.heat(mode, now), now);
        }
        shard.gen = new_gen;  // new_gen stays live for the re-decision below
      }
      shard.compactions.fetch_add(1, std::memory_order_relaxed);
      // Retire the old generation's budget footprint: release each
      // installed plan's charge (check-and-clear under slot.m -- a
      // racing evictor or a late-installing upgrade can only release
      // once) and the delta bytes this commit absorbed into the base.
      std::size_t released = 0;
      for (std::size_t m = 0; m < old_gen->modes.size(); ++m) {
        released +=
            release_slot_charge(old_gen, static_cast<index_t>(m));
      }
      if (released > 0) budget_.release(released);
      delta_bytes_.release(snap.delta_storage_bytes());
      // Re-decision for free on every replace_base (DESIGN.md §12): the
      // merged base's sketch is already installed, so the §V policy
      // re-runs per mode at O(S), pre-resolving the fresh generation's
      // slots -- and a mode whose CARRIED traffic already clears its new
      // threshold relaunches its structured build now, instead of
      // waiting for the next request to notice.
      if (opts_.sketch_policy && opts_.enable_upgrade) {
        for (std::size_t m = 0; m < new_gen->modes.size(); ++m) {
          const index_t mode = static_cast<index_t>(m);
          auto [target, threshold] =
              resolve_upgrade_policy(shard, *new_gen, mode);
          {
            ModeSlot& slot = new_gen->modes[m];
            MutexLock slot_lock(slot.m);
            if (!slot.policy_resolved) {
              slot.target_format = std::move(target);
              slot.threshold = threshold;
              slot.policy_resolved = true;
            }
          }
          maybe_launch_upgrade(shard, new_gen, mode);
        }
      }
    }
    shard.compacting.store(false, std::memory_order_release);
  } catch (...) {
    // Merge failed (e.g. allocation); re-arm so a later trigger retries.
    shard.compacting.store(false, std::memory_order_release);
  }
}

}  // namespace bcsf
