// Thread-safe memoized plan construction keyed by (format, mode, op):
// the PlanCache contract of DESIGN.md §2 made safe for the serving layer
// (DESIGN.md §5) and op-aware (§7).
//
// Two guarantees beyond the single-threaded cache it replaces:
//
//  * Single-flight builds.  N threads requesting the same key trigger
//    exactly ONE factory call; the winner builds outside any lock
//    while the others block on a shared_future for that key.  Reads of
//    already-built plans take only a shared lock.  A build that throws is
//    evicted so a later request can retry.
//
// The op component exists for META formats only: "auto" resolves its
// delegate per op (a TTV workload amortizes builds ~R x slower), so
// get("auto", m, kTtv) and get("auto", m, kMttkrp) are distinct slots.
// For concrete formats the built structure serves EVERY op -- that
// amortization is the point of the op-generic plan layer -- so the op
// component is canonicalized to kMttkrp and all ops share one build.
//
//  * Tensor lifetime.  The cache holds the source tensor by shared_ptr
//    and pins that shared_ptr into the deleter of every plan it hands
//    out.  COO-family plans reference the tensor instead of copying it
//    (DESIGN.md §2); with this pinning a plan retained past the cache --
//    or past the caller's own tensor handle -- can never dangle.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/format_registry.hpp"
#include "core/tensor_op_plan.hpp"
#include "tensor/sparse_tensor.hpp"
#include "util/thread_annotations.hpp"
#include "util/types.hpp"

namespace bcsf {

// TensorPtr / share_tensor / borrow_tensor live in tensor/sparse_tensor.hpp
// (re-exported here): the snapshot layer underneath the cache uses the
// same shared-ownership currency.

/// Plans leave the concurrent cache as shared_ptr so an async delegate
/// swap can retire a plan while in-flight run() calls finish on it.
using SharedPlan = std::shared_ptr<const TensorOpPlan>;

class ConcurrentPlanCache {
 public:
  /// Factory used to build plans; injectable so tests can count or fail
  /// builds.  Defaults to FormatRegistry::instance().create.
  using BuildFn =
      std::function<PlanPtr(const std::string& format, const SparseTensor&,
                            index_t mode, const PlanOptions&)>;

  /// `tensor_version` identifies the snapshot the cache builds plans
  /// from (DynamicSparseTensor's TensorSnapshot::base_version; 0 for a
  /// static tensor).  Plans in this cache are valid exactly for that
  /// snapshot version.  `heat_decay` in (0, 1] is the per-tick decay
  /// factor of the per-mode heat counters (see note_call); 1 disables
  /// decay.
  explicit ConcurrentPlanCache(TensorPtr tensor, PlanOptions opts = {},
                               BuildFn build = {},
                               std::uint64_t tensor_version = 0,
                               double heat_decay = 0.5);

  /// Returns the plan for (format, mode, op), building it on first use.
  /// Concurrent callers for the same key get the same plan from exactly
  /// one factory call; callers for distinct keys build in parallel.
  /// Rethrows the builder's exception to every waiter and evicts the
  /// entry so the next get() retries.  For concrete (non-meta) formats
  /// every op maps to one shared slot (see the header comment); the
  /// returned plan executes any op the format supports.
  SharedPlan get(const std::string& format, index_t mode,
                 OpKind op = OpKind::kMttkrp);

  /// Non-blocking probe: the plan if it is already built, nullptr if it
  /// is absent or still building.
  SharedPlan try_get(const std::string& format, index_t mode,
                     OpKind op = OpKind::kMttkrp) const;

  /// Number of completed plans (in-flight builds excluded).
  std::size_t size() const;

  /// Sum of build_seconds() over completed plans (the all-mode
  /// pre-processing cost, as in the old PlanCache).
  double total_build_seconds() const;

  /// Snapshot version the cached plans were built from (see constructor).
  std::uint64_t tensor_version() const;

  /// Plan invalidation by snapshot version: atomically swaps the source
  /// tensor for a newer snapshot and evicts every cached slot (completed
  /// AND in-flight), so later get() calls build against the new
  /// snapshot.  Returns the number of slots evicted and logs it at INFO
  /// -- the observability hook for per-shard compaction commits
  /// (DESIGN.md §8).  A stale `version` (not strictly newer than
  /// tensor_version()) is REJECTED: nothing is swapped or evicted and
  /// the return value is 0; distinguish "accepted but empty" via
  /// tensor_version().  Plans already handed out stay valid for THEIR
  /// snapshot -- each pins its own source tensor via its deleter -- but
  /// a get() concurrent with invalidate() may return a plan from either
  /// side of the swap, so callers needing snapshot-consistent (plan,
  /// delta) pairs should hold a per-snapshot cache instead (what
  /// TensorOpService does, DESIGN.md §6); invalidate() is for
  /// single-writer refresh patterns.
  std::size_t invalidate(TensorPtr tensor, std::uint64_t version);

  TensorPtr tensor() const;
  const PlanOptions& options() const { return opts_; }

  // -- Heat accounting (DESIGN.md §10) -------------------------------
  //
  // One exponentially-decayed call counter per mode, keyed to a
  // caller-supplied logical tick (the service's global request counter)
  // rather than wall-clock time, so eviction order is deterministic and
  // replayable.  At tick `t`, a counter last touched at tick `t0` with
  // value `h` reads as `h * heat_decay^(t - t0)`.

  /// Record one call against `mode` at logical time `tick`.
  void note_call(index_t mode, std::uint64_t tick);

  /// The decayed heat of `mode` as observed at logical time `tick`.
  double heat(index_t mode, std::uint64_t tick) const;

  /// Overwrite `mode`'s heat (compaction carries heat from the retiring
  /// generation's cache into its replacement).
  void set_heat(index_t mode, double value, std::uint64_t tick);

  double heat_decay() const { return heat_decay_; }

  /// Sum of storage_bytes() over completed STRUCTURED plans.  COO-family
  /// plans are excluded: they reference the source tensor rather than
  /// owning index structure, so their bytes are the tensor's own.
  std::size_t resident_bytes() const;

  /// Drop the completed plan for (format, mode, op), if any.  In-flight
  /// builds are left alone (their waiters hold the future).  Returns
  /// true when a ready slot was erased.
  bool evict(const std::string& format, index_t mode,
             OpKind op = OpKind::kMttkrp);

  /// True for the zero-preprocessing COO family ("coo", "cpu-coo",
  /// "reference") -- the formats the serving layer treats as the free
  /// fallback tier (shared with TensorOpService's upgrade policy).
  static bool coo_family(const std::string& format);

 private:
  using Key = std::tuple<std::string, index_t, OpKind>;

  /// The op component of a key: `op` itself for meta formats (their
  /// resolution is op-dependent), kMttkrp for everything else so one
  /// build serves all ops.
  static OpKind canonical_op(const std::string& format, OpKind op);

  struct HeatSlot {
    mutable Mutex m;
    double heat BCSF_GUARDED_BY(m) = 0.0;
    std::uint64_t last_tick BCSF_GUARDED_BY(m) = 0;
  };

  double decayed(double heat, std::uint64_t last, std::uint64_t now) const;

  mutable SharedMutex mutex_;
  TensorPtr tensor_ BCSF_GUARDED_BY(mutex_);
  PlanOptions opts_;   // const after construction
  BuildFn build_;      // const after construction
  std::uint64_t tensor_version_ BCSF_GUARDED_BY(mutex_) = 0;
  double heat_decay_ = 0.5;  // const after construction
  // One shared_future per key: pending while the winning thread builds,
  // ready once the plan exists.  Failed builds are erased.
  std::map<Key, std::shared_future<SharedPlan>> slots_ BCSF_GUARDED_BY(mutex_);
  // One heat counter per mode; sized at construction, never resized
  // (HeatSlot is immovable).  Independent of slots_: heat tracks
  // traffic, not residency, so an evicted mode keeps its heat.
  std::vector<HeatSlot> heat_;
};

}  // namespace bcsf
