#include "serve/concurrent_plan_cache.hpp"

#include <chrono>
#include <future>

#include "util/error.hpp"

namespace bcsf {

TensorPtr share_tensor(SparseTensor&& tensor) {
  return std::make_shared<SparseTensor>(std::move(tensor));
}

TensorPtr borrow_tensor(const SparseTensor& tensor) {
  return TensorPtr(TensorPtr{}, &tensor);
}

ConcurrentPlanCache::ConcurrentPlanCache(TensorPtr tensor, PlanOptions opts,
                                         BuildFn build)
    : tensor_(std::move(tensor)), opts_(std::move(opts)), build_(std::move(build)) {
  BCSF_CHECK(tensor_ != nullptr, "ConcurrentPlanCache: null tensor");
  if (!build_) {
    build_ = [](const std::string& format, const SparseTensor& t, index_t mode,
                const PlanOptions& o) {
      return FormatRegistry::instance().create(format, t, mode, o);
    };
  }
}

SharedPlan ConcurrentPlanCache::get(const std::string& format, index_t mode) {
  const Key key{format, mode};
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    auto it = slots_.find(key);
    if (it != slots_.end()) {
      std::shared_future<SharedPlan> future = it->second;
      lock.unlock();
      return future.get();  // ready, or blocks on the in-flight build
    }
  }

  std::promise<SharedPlan> promise;
  std::shared_future<SharedPlan> future = promise.get_future().share();
  {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    auto [it, inserted] = slots_.emplace(key, future);
    if (!inserted) {
      // Lost the publish race: wait on the winner's build instead.
      std::shared_future<SharedPlan> other = it->second;
      lock.unlock();
      return other.get();
    }
  }

  // Single-flight winner: build with no lock held so other keys proceed.
  try {
    PlanPtr raw = build_(format, *tensor_, mode, opts_);
    BCSF_CHECK(raw != nullptr, "ConcurrentPlanCache: builder for '"
                                   << format << "' returned null");
    // The deleter pins the tensor: any caller retaining the plan keeps
    // the source tensor alive (COO-family plans reference, not copy).
    SharedPlan plan(raw.release(),
                    [tensor = tensor_](const MttkrpPlan* p) { delete p; });
    promise.set_value(plan);
    return plan;
  } catch (...) {
    {
      // Evict before waking waiters so a retrying waiter cannot re-find
      // the failed slot.
      std::unique_lock<std::shared_mutex> lock(mutex_);
      slots_.erase(key);
    }
    promise.set_exception(std::current_exception());
    throw;
  }
}

SharedPlan ConcurrentPlanCache::try_get(const std::string& format,
                                        index_t mode) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = slots_.find(Key{format, mode});
  if (it == slots_.end()) return nullptr;
  const std::shared_future<SharedPlan>& future = it->second;
  if (future.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
    return nullptr;
  }
  return future.get();
}

std::size_t ConcurrentPlanCache::size() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::size_t ready = 0;
  for (const auto& [key, future] : slots_) {
    if (future.wait_for(std::chrono::seconds(0)) ==
        std::future_status::ready) {
      ++ready;
    }
  }
  return ready;
}

double ConcurrentPlanCache::total_build_seconds() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  double total = 0.0;
  for (const auto& [key, future] : slots_) {
    if (future.wait_for(std::chrono::seconds(0)) ==
        std::future_status::ready) {
      total += future.get()->build_seconds();
    }
  }
  return total;
}

}  // namespace bcsf
