#include "serve/concurrent_plan_cache.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>

#include "util/error.hpp"
#include "util/logging.hpp"

namespace bcsf {

ConcurrentPlanCache::ConcurrentPlanCache(TensorPtr tensor, PlanOptions opts,
                                         BuildFn build,
                                         std::uint64_t tensor_version,
                                         double heat_decay)
    : tensor_(std::move(tensor)), opts_(std::move(opts)),
      build_(std::move(build)), tensor_version_(tensor_version),
      heat_decay_(heat_decay), heat_(tensor_ ? tensor_->order() : 0) {
  BCSF_CHECK(tensor_ != nullptr, "ConcurrentPlanCache: null tensor");
  BCSF_CHECK(heat_decay_ > 0.0 && heat_decay_ <= 1.0,
             "ConcurrentPlanCache: heat_decay must be in (0, 1], got "
                 << heat_decay_);
  if (!build_) {
    build_ = [](const std::string& format, const SparseTensor& t, index_t mode,
                const PlanOptions& o) {
      return FormatRegistry::instance().create(format, t, mode, o);
    };
  }
}

OpKind ConcurrentPlanCache::canonical_op(const std::string& format,
                                         OpKind op) {
  const FormatRegistry& registry = FormatRegistry::instance();
  if (registry.contains(format) &&
      registry.at(format).kind == PlanKind::kMeta) {
    return op;
  }
  return OpKind::kMttkrp;
}

SharedPlan ConcurrentPlanCache::get(const std::string& format, index_t mode,
                                    OpKind op) {
  // The registry's op gate must hold for the op the CALLER asked for,
  // before canonicalization folds concrete-format slots together --
  // otherwise a restricted format would slip through as its kMttkrp
  // slot and fail deep inside execute() instead of up front.
  BCSF_CHECK(!FormatRegistry::instance().contains(format) ||
                 FormatRegistry::instance().supports(format, op),
             "ConcurrentPlanCache: format '" << format
                                             << "' does not support op '"
                                             << op_name(op) << "'");
  const OpKind slot_op = canonical_op(format, op);
  const Key key{format, mode, slot_op};
  {
    ReaderLock lock(mutex_);
    auto it = slots_.find(key);
    if (it != slots_.end()) {
      std::shared_future<SharedPlan> future = it->second;
      lock.unlock();
      return future.get();  // ready, or blocks on the in-flight build
    }
  }

  std::promise<SharedPlan> promise;
  std::shared_future<SharedPlan> future = promise.get_future().share();
  TensorPtr tensor;
  std::uint64_t version = 0;
  {
    WriterLock lock(mutex_);
    auto [it, inserted] = slots_.emplace(key, future);
    if (!inserted) {
      // Lost the publish race: wait on the winner's build instead.
      std::shared_future<SharedPlan> other = it->second;
      lock.unlock();
      return other.get();
    }
    // Capture the snapshot this build is for: invalidate() may swap
    // tensor_ while the build runs, and the plan must pin ITS source.
    tensor = tensor_;
    version = tensor_version_;
  }

  // Single-flight winner: build with no lock held so other keys proceed.
  try {
    PlanOptions build_opts = opts_;
    build_opts.op = slot_op;  // meta plans resolve for the requested op
    PlanPtr raw = build_(format, *tensor, mode, build_opts);
    BCSF_CHECK(raw != nullptr, "ConcurrentPlanCache: builder for '"
                                   << format << "' returned null");
    // The deleter pins the tensor: any caller retaining the plan keeps
    // the source tensor alive (COO-family plans reference, not copy).
    SharedPlan plan(raw.release(),
                    [tensor](const TensorOpPlan* p) { delete p; });
    promise.set_value(plan);
    return plan;
  } catch (...) {
    {
      // Evict before waking waiters so a retrying waiter cannot re-find
      // the failed slot -- but only our own slot: an invalidate() racing
      // the build clears the map, and a same-key build may have started
      // against the NEW snapshot since.
      WriterLock lock(mutex_);
      if (tensor_version_ == version) slots_.erase(key);
    }
    promise.set_exception(std::current_exception());
    throw;
  }
}

std::uint64_t ConcurrentPlanCache::tensor_version() const {
  ReaderLock lock(mutex_);
  return tensor_version_;
}

std::size_t ConcurrentPlanCache::invalidate(TensorPtr tensor,
                                            std::uint64_t version) {
  BCSF_CHECK(tensor != nullptr, "ConcurrentPlanCache::invalidate: null tensor");
  std::uint64_t old_version = 0;
  std::size_t evicted = 0;
  {
    WriterLock lock(mutex_);
    if (version <= tensor_version_) {
      BCSF_DEBUG << "ConcurrentPlanCache: rejected stale invalidate to v"
                 << version << " (at v" << tensor_version_ << ")";
      return 0;
    }
    old_version = tensor_version_;
    evicted = slots_.size();
    tensor_ = std::move(tensor);
    tensor_version_ = version;
    // Dropping pending futures is safe: in-flight winners hold their own
    // promise/tensor and waiters their own shared_future copies.
    slots_.clear();
  }
  BCSF_INFO << "ConcurrentPlanCache: invalidated v" << old_version << " -> v"
            << version << ", evicted " << evicted << " plan slot"
            << (evicted == 1 ? "" : "s");
  return evicted;
}

TensorPtr ConcurrentPlanCache::tensor() const {
  ReaderLock lock(mutex_);
  return tensor_;
}

SharedPlan ConcurrentPlanCache::try_get(const std::string& format,
                                        index_t mode, OpKind op) const {
  ReaderLock lock(mutex_);
  auto it = slots_.find(Key{format, mode, canonical_op(format, op)});
  if (it == slots_.end()) return nullptr;
  const std::shared_future<SharedPlan>& future = it->second;
  if (future.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
    return nullptr;
  }
  return future.get();
}

std::size_t ConcurrentPlanCache::size() const {
  ReaderLock lock(mutex_);
  std::size_t ready = 0;
  for (const auto& [key, future] : slots_) {
    if (future.wait_for(std::chrono::seconds(0)) ==
        std::future_status::ready) {
      ++ready;
    }
  }
  return ready;
}

bool ConcurrentPlanCache::coo_family(const std::string& format) {
  return format == "coo" || format == "cpu-coo" || format == "reference";
}

double ConcurrentPlanCache::decayed(double heat, std::uint64_t last,
                                    std::uint64_t now) const {
  if (now <= last || heat == 0.0) return heat;
  return heat * std::pow(heat_decay_, static_cast<double>(now - last));
}

void ConcurrentPlanCache::note_call(index_t mode, std::uint64_t tick) {
  BCSF_CHECK(static_cast<std::size_t>(mode) < heat_.size(),
             "ConcurrentPlanCache::note_call: mode " << mode
                                                     << " out of range");
  HeatSlot& slot = heat_[mode];
  MutexLock lock(slot.m);
  slot.heat = decayed(slot.heat, slot.last_tick, tick) + 1.0;
  slot.last_tick = std::max(slot.last_tick, tick);
}

double ConcurrentPlanCache::heat(index_t mode, std::uint64_t tick) const {
  BCSF_CHECK(static_cast<std::size_t>(mode) < heat_.size(),
             "ConcurrentPlanCache::heat: mode " << mode << " out of range");
  const HeatSlot& slot = heat_[mode];
  MutexLock lock(slot.m);
  return decayed(slot.heat, slot.last_tick, tick);
}

void ConcurrentPlanCache::set_heat(index_t mode, double value,
                                   std::uint64_t tick) {
  BCSF_CHECK(static_cast<std::size_t>(mode) < heat_.size(),
             "ConcurrentPlanCache::set_heat: mode " << mode
                                                    << " out of range");
  HeatSlot& slot = heat_[mode];
  MutexLock lock(slot.m);
  slot.heat = value;
  slot.last_tick = tick;
}

std::size_t ConcurrentPlanCache::resident_bytes() const {
  ReaderLock lock(mutex_);
  std::size_t total = 0;
  for (const auto& [key, future] : slots_) {
    if (coo_family(std::get<0>(key))) continue;
    if (future.wait_for(std::chrono::seconds(0)) ==
        std::future_status::ready) {
      total += future.get()->storage_bytes();
    }
  }
  return total;
}

bool ConcurrentPlanCache::evict(const std::string& format, index_t mode,
                                OpKind op) {
  const Key key{format, mode, canonical_op(format, op)};
  WriterLock lock(mutex_);
  auto it = slots_.find(key);
  if (it == slots_.end()) return false;
  // Never drop an in-flight build: its waiters hold the future, and the
  // winner would publish into a slot that no longer exists.
  if (it->second.wait_for(std::chrono::seconds(0)) !=
      std::future_status::ready) {
    return false;
  }
  slots_.erase(it);
  return true;
}

double ConcurrentPlanCache::total_build_seconds() const {
  ReaderLock lock(mutex_);
  double total = 0.0;
  for (const auto& [key, future] : slots_) {
    if (future.wait_for(std::chrono::seconds(0)) ==
        std::future_status::ready) {
      total += future.get()->build_seconds();
    }
  }
  return total;
}

}  // namespace bcsf
