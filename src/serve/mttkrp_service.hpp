// MttkrpService: the concurrent serving layer (DESIGN.md §5).
//
// The paper frames format choice as an amortization problem: structured
// formats (B-CSF / HB-CSF) pay a sort-dominated build that COO does not,
// and Fig. 10's break-even gate says when that build pays for itself.
// This service makes the trade-off dynamic per tensor:
//
//   1. Requests are answered IMMEDIATELY from the zero-preprocessing
//      COO-family plan -- no caller ever waits on a format build.
//   2. Per-tensor call counts are tracked; when they cross the break-even
//      threshold (the auto policy's Fig-10 estimate, or an explicit
//      override), a structured-plan build is kicked off on the worker
//      pool in the background.
//   3. When the build completes, the per-(tensor, mode) delegate is
//      atomically swapped.  In-flight runs hold the old plan by
//      shared_ptr and finish on it; subsequent requests run structured.
//
// Thread-safety: submit/submit_batch/register_tensor and the
// introspection calls may be invoked from any thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "serve/concurrent_plan_cache.hpp"
#include "util/thread_pool.hpp"

namespace bcsf {

struct ServeOptions {
  /// Worker pool size; requests and background upgrades share it.
  unsigned workers = 4;
  /// Zero-preprocessing format answering from the first request.  Must be
  /// build-free (COO family: "coo", "cpu-coo", "reference").
  std::string initial_format = "coo";
  /// Structured target for the background upgrade.  "auto" asks the §V
  /// slice-binning policy per mode (the Fig-10 expected-calls gate is NOT
  /// applied -- the observed-traffic threshold below plays that role); a
  /// COO-family target disables upgrade.
  std::string upgrade_format = "auto";
  /// Per-(tensor, mode) call count that triggers the upgrade -- the
  /// structured build amortizes against that mode's own traffic, matching
  /// Fig. 10.  <= 0 means use the auto policy's breakeven_calls for the
  /// mode (infinite when structure never pays -- the mode then stays COO
  /// forever).
  double upgrade_threshold = 0.0;
  bool enable_upgrade = true;
  /// Device model, format knobs, expected_mttkrp_calls for the policy.
  PlanOptions plan;
};

/// Factor matrices are shared across the requests of a batch (and across
/// batches) instead of copied per request.
using FactorsPtr = std::shared_ptr<const std::vector<DenseMatrix>>;

struct MttkrpRequest {
  std::string tensor;  ///< name passed to register_tensor
  index_t mode = 0;
  FactorsPtr factors;
};

struct MttkrpResponse {
  DenseMatrix output;
  SimReport report;
  /// Format that actually executed ("auto" never leaks: resolved key).
  std::string served_format;
  /// The plan that served this response.  Holding it is safe after the
  /// service dies (it pins the tensor); comparing pointers across
  /// responses observes the async upgrade swap.
  SharedPlan plan;
  std::uint64_t sequence = 0;  ///< 1-based per-tensor call number
  bool upgraded = false;  ///< served by the structured (post-swap) delegate
};

class MttkrpService {
 public:
  explicit MttkrpService(ServeOptions opts = {});
  /// Joins the pool; accepted requests and in-flight upgrades complete.
  ~MttkrpService();

  MttkrpService(const MttkrpService&) = delete;
  MttkrpService& operator=(const MttkrpService&) = delete;

  /// Registers a tensor under a unique name.  No plan is built here --
  /// the first request pays only the (free) COO plan construction.
  void register_tensor(const std::string& name, TensorPtr tensor);
  bool has_tensor(const std::string& name) const;

  /// Enqueues one request; the future carries the response or the error.
  std::future<MttkrpResponse> submit(MttkrpRequest request);
  /// Enqueues a batch (possibly spanning tensors and modes); requests
  /// fan out across the worker pool.
  std::vector<std::future<MttkrpResponse>> submit_batch(
      std::vector<MttkrpRequest> batch);

  /// MTTKRP calls served (or admitted) so far for `tensor`.
  std::uint64_t call_count(const std::string& tensor) const;
  /// Resolved format currently serving (tensor, mode); the initial format
  /// until the background upgrade swaps the delegate.
  std::string current_format(const std::string& tensor, index_t mode) const;
  /// True once the structured delegate is installed for (tensor, mode).
  bool upgraded(const std::string& tensor, index_t mode) const;

  /// Blocks until all accepted requests AND background upgrades finished.
  void wait_idle() { pool_.wait_idle(); }

  const ServeOptions& options() const { return opts_; }

 private:
  struct ModeSlot {
    mutable std::mutex m;  // guards current/upgraded_flag/target/threshold
    SharedPlan current;    // serving delegate; swapped by the upgrade task
    bool upgraded_flag = false;
    bool policy_resolved = false;
    std::string target_format;  // empty = never upgrade this mode
    double threshold = 0.0;
    /// This mode's own call count -- what the threshold compares against.
    std::atomic<std::uint64_t> mode_calls{0};
    std::atomic<bool> upgrade_launched{false};
  };

  struct TensorState {
    TensorState(TensorPtr tensor, PlanOptions plan_opts)
        : cache(std::move(tensor), std::move(plan_opts)),
          modes(cache.tensor()->order()) {}
    ConcurrentPlanCache cache;
    std::atomic<std::uint64_t> calls{0};
    std::vector<ModeSlot> modes;
  };

  TensorState& state_for(const std::string& name) const;
  MttkrpResponse handle(TensorState& state, const MttkrpRequest& request);
  /// Computes (target format, threshold) for a mode; runs the §V policy
  /// when the options defer to it.  Pure -- called with NO lock held.
  std::pair<std::string, double> resolve_upgrade_policy(
      const TensorState& state, index_t mode) const;
  void maybe_launch_upgrade(TensorState& state, index_t mode,
                            std::uint64_t mode_sequence);

  ServeOptions opts_;
  mutable std::shared_mutex tensors_mutex_;
  // unique_ptr: TensorState addresses stay stable across map rehash, so
  // worker tasks can hold TensorState& while new tensors register.
  std::map<std::string, std::unique_ptr<TensorState>> tensors_;
  // Declared last: destroyed first, joining workers before the tensor
  // states their tasks reference go away.
  ThreadPool pool_;
};

}  // namespace bcsf
