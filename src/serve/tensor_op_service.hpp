// TensorOpService: the concurrent multi-op serving layer (DESIGN.md
// §5-§7).  Known as MttkrpService before the op-generic redesign; the
// alias below keeps that name working.
//
// The paper frames format choice as an amortization problem: structured
// formats (B-CSF / HB-CSF) pay a sort-dominated build that COO does not,
// and Fig. 10's break-even gate says when that build pays for itself.
// This service makes the trade-off dynamic per tensor:
//
//   1. Requests are answered IMMEDIATELY from the zero-preprocessing
//      COO-family plan -- no caller ever waits on a format build.
//   2. Per-tensor call counts are tracked; when they cross the break-even
//      threshold (the auto policy's Fig-10 estimate, or an explicit
//      override), a structured-plan build is kicked off on the worker
//      pool in the background.
//   3. When the build completes, the per-(tensor, mode) delegate is
//      atomically swapped.  In-flight runs hold the old plan by
//      shared_ptr and finish on it; subsequent requests run structured.
//
// Batches may MIX OPS (DESIGN.md §7): each request names an OpKind
// (MTTKRP, TTV, fit inner product) and every op executes on the same
// per-(tensor, mode) delegate -- a structured build triggered by any
// op's traffic serves all of them, which is why mode call counts
// aggregate across ops.
//
// Registered tensors are DYNAMIC (DESIGN.md §6): apply_updates() appends
// additive COO update batches without invalidating the structured plans.
// Each tensor is a DynamicSparseTensor -- an immutable base snapshot plus
// frozen delta chunks -- and a query answers as
//
//      base-plan result  +  delta-COO contribution,
//
// which equals the op on the merged tensor because every op in the
// protocol (MTTKRP, TTV, FIT) is linear in the tensor values.  The delta
// sweep is per-op: an MTTKRP/TTV response accumulates the chunks into the
// output matrix, a FIT response adds the chunks' inner product to the
// scalar.  Every response names the snapshot version it was computed at.
// When the delta fraction crosses ServeOptions' compaction threshold, a
// background task merges base + delta into a new base, swaps in a fresh
// plan generation, and the upgrade policy re-runs for the merged
// structure; in-flight queries finish on the old generation, which they
// hold by shared_ptr.
//
// Thread-safety: every public method may be invoked from any thread.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "serve/concurrent_plan_cache.hpp"
#include "tensor/dynamic_tensor.hpp"
#include "util/thread_pool.hpp"

namespace bcsf {

struct ServeOptions {
  /// Worker pool size; requests, background upgrades, and compactions
  /// share it.
  unsigned workers = 4;
  /// Zero-preprocessing format answering from the first request.  Must be
  /// build-free (COO family: "coo", "cpu-coo", "reference").
  std::string initial_format = "coo";
  /// Structured target for the background upgrade.  "auto" asks the §V
  /// slice-binning policy per mode (the Fig-10 expected-calls gate is NOT
  /// applied -- the observed-traffic threshold below plays that role); a
  /// COO-family target disables upgrade.
  std::string upgrade_format = "auto";
  /// Per-(tensor, mode) call count that triggers the upgrade -- the
  /// structured build amortizes against that mode's own traffic, matching
  /// Fig. 10.  Calls of EVERY op count, because the build serves all of
  /// them -- but gain-weighted: MTTKRP/FIT calls count 1.0, TTV calls
  /// count ttv_gain_fraction (~1/R), since a rank-1 sweep recoups
  /// proportionally less of the build.  <= 0 means use the auto
  /// policy's breakeven_calls for the mode (infinite when structure
  /// never pays -- the mode then stays COO forever).
  double upgrade_threshold = 0.0;
  bool enable_upgrade = true;
  /// Delta fraction (delta nnz / total nnz) at which a background
  /// compaction merges the delta into a new base snapshot and the
  /// upgrade policy re-runs on the merged tensor.  The default keeps the
  /// per-query COO sweep at most ~1/4 of the tensor.
  double compact_threshold = 0.25;
  /// Compaction also waits for this many delta nonzeros, so tiny tensors
  /// do not churn through merges worth less than a kernel launch.
  offset_t compact_min_nnz = 512;
  bool enable_compaction = true;
  /// Device model, format knobs, expected calls for the policy.
  PlanOptions plan;
};

/// Factor matrices are shared across the requests of a batch (and across
/// batches) instead of copied per request.
using FactorsPtr = std::shared_ptr<const std::vector<DenseMatrix>>;
/// FIT column weights, shared the same way.  Null = all ones.
using LambdaPtr = std::shared_ptr<const std::vector<value_t>>;

/// One serve-layer operation.  The constructor's leading parameters
/// predate the op protocol, so MTTKRP-era initializers `{tensor, mode,
/// factors}` keep meaning what they always did.
struct ServeRequest {
  ServeRequest() = default;
  ServeRequest(std::string tensor_name, index_t target_mode,
               FactorsPtr factor_set, OpKind op_kind = OpKind::kMttkrp,
               LambdaPtr fit_lambda = nullptr)
      : tensor(std::move(tensor_name)),
        mode(target_mode),
        factors(std::move(factor_set)),
        op(op_kind),
        lambda(std::move(fit_lambda)) {}

  std::string tensor;  ///< name passed to register_tensor
  index_t mode = 0;    ///< output mode (MTTKRP/TTV), traversal anchor (FIT)
  /// MTTKRP/FIT: dims[m] x R factor per mode.  TTV: dims[m] x 1 vectors.
  FactorsPtr factors;
  OpKind op = OpKind::kMttkrp;
  LambdaPtr lambda;  ///< FIT weights; ignored by the other ops
};

struct ServeResponse {
  /// MTTKRP: dims[mode] x R.  TTV: dims[mode] x 1.  FIT: empty.
  DenseMatrix output;
  SimReport report;
  /// Format that actually executed the BASE contribution ("auto" never
  /// leaks: resolved key).  The delta contribution, when present, is
  /// always a COO sweep.
  std::string served_format;
  /// The base plan that served this response.  Holding it is safe after
  /// the service dies (it pins its snapshot); comparing pointers across
  /// responses observes the async upgrade swap.
  SharedPlan plan;
  std::uint64_t sequence = 0;  ///< 1-based per-tensor call number
  bool upgraded = false;  ///< served by the structured (post-swap) delegate
  /// Tensor snapshot this response is the exact op result of: the version
  /// held when the query started.  Monotonic across a tensor's responses
  /// as observed by any single thread submitting and waiting in order.
  std::uint64_t snapshot_version = 0;
  /// Nonzeros the delta sweep contributed on top of the base plan
  /// (0 == the response came purely from the base snapshot).
  offset_t delta_nnz = 0;
  OpKind op = OpKind::kMttkrp;  ///< echo of the request's op
  /// FIT: <X, Xhat> at snapshot_version (base plan + delta inner
  /// product).  0 for matrix-valued ops.
  double scalar = 0.0;
};

/// Back-compat aliases from the MTTKRP-only era.
using MttkrpRequest = ServeRequest;
using MttkrpResponse = ServeResponse;

class TensorOpService {
 public:
  explicit TensorOpService(ServeOptions opts = {});
  /// Joins the pool; accepted requests, in-flight upgrades, and
  /// compactions complete.
  ~TensorOpService();

  TensorOpService(const TensorOpService&) = delete;
  TensorOpService& operator=(const TensorOpService&) = delete;

  /// Registers a tensor under a unique name.  No plan is built here --
  /// the first request pays only the (free) COO plan construction.  The
  /// tensor becomes snapshot version 0 of a DynamicSparseTensor.
  void register_tensor(const std::string& name, TensorPtr tensor);
  bool has_tensor(const std::string& name) const;

  /// Appends a batch of additive updates (a COO tensor with the same
  /// dims; duplicate coordinates add) to `tensor` and returns the new
  /// snapshot version.  Returns immediately -- no plan is rebuilt;
  /// queries already in flight finish on the snapshot they captured,
  /// queries submitted after return see the update.  May trigger a
  /// background compaction (see ServeOptions::compact_threshold).
  std::uint64_t apply_updates(const std::string& tensor,
                              SparseTensor updates);

  /// Enqueues one request; the future carries the response or the error.
  std::future<ServeResponse> submit(ServeRequest request);
  /// Enqueues a batch (possibly spanning tensors, modes, and ops);
  /// requests fan out across the worker pool.
  std::vector<std::future<ServeResponse>> submit_batch(
      std::vector<ServeRequest> batch);

  /// Op calls served (or admitted) so far for `tensor`, all ops summed.
  std::uint64_t call_count(const std::string& tensor) const;
  /// Resolved format currently serving (tensor, mode)'s base
  /// contribution; the initial format until the background upgrade swaps
  /// the delegate (and again right after a compaction installs a fresh
  /// generation, until the re-upgrade lands).
  std::string current_format(const std::string& tensor, index_t mode) const;
  /// True once the structured delegate is installed for (tensor, mode)
  /// in the CURRENT generation; a compaction resets it until the
  /// re-upgrade completes.
  bool upgraded(const std::string& tensor, index_t mode) const;

  /// Current snapshot version of `tensor` (0 until the first update).
  std::uint64_t snapshot_version(const std::string& tensor) const;
  /// Fraction of `tensor`'s nonzeros currently in the delta buffer.
  double delta_fraction(const std::string& tensor) const;
  /// Number of compactions committed for `tensor` so far.
  std::uint64_t compaction_count(const std::string& tensor) const;
  /// Consistent snapshot of `tensor` -- what a query submitted now would
  /// compute against.  Cheap (shares immutable storage).
  TensorSnapshot snapshot(const std::string& tensor) const;

  /// Blocks until all accepted requests AND background work (upgrades,
  /// compactions) finished.
  void wait_idle() { pool_.wait_idle(); }

  const ServeOptions& options() const { return opts_; }

 private:
  struct ModeSlot {
    mutable std::mutex m;  // guards current/upgraded_flag/target/threshold
    SharedPlan current;    // serving delegate; swapped by the upgrade task
    bool upgraded_flag = false;
    bool policy_resolved = false;
    std::string target_format;  // empty = never upgrade this mode
    double threshold = 0.0;
    /// This mode's cumulative call count over ALL ops (request
    /// sequencing).  Carried across compactions so a hot mode
    /// re-launches its structured build on the first post-compaction
    /// request.
    std::atomic<std::uint64_t> mode_calls{0};
    /// Per-op call counts feeding the GAIN-WEIGHTED upgrade trigger:
    /// the structured build serves every op, but a rank-1 TTV call
    /// recoups ~1/R of an MTTKRP call's build cost, so TTV traffic
    /// counts at AutoPolicyOptions::ttv_gain_fraction weight when
    /// compared against the break-even threshold.  A TTV-only workload
    /// therefore upgrades ~R x later (or never), matching the op-aware
    /// §3 policy; MTTKRP/FIT traffic counts at full weight.
    std::array<std::atomic<std::uint64_t>, 3> op_calls{};
    std::atomic<bool> upgrade_launched{false};
  };

  /// One immutable base snapshot together with every plan built from it:
  /// the unit a compaction retires wholesale.  Queries pair a Generation
  /// with a TensorSnapshot of the same base_version, so a plan can never
  /// be combined with a delta it already incorporates.  Retired
  /// generations stay alive through the shared_ptr held by in-flight
  /// queries and upgrade tasks.
  struct Generation {
    Generation(TensorPtr base, PlanOptions plan_opts,
               std::uint64_t base_version)
        : cache(std::move(base), std::move(plan_opts), {}, base_version),
          modes(cache.tensor()->order()) {}
    ConcurrentPlanCache cache;
    std::vector<ModeSlot> modes;
  };
  using GenerationPtr = std::shared_ptr<Generation>;

  struct TensorState {
    TensorState(TensorPtr tensor, PlanOptions plan_opts)
        : dynamic(tensor),
          gen(std::make_shared<Generation>(std::move(tensor),
                                           std::move(plan_opts), 0)) {}
    DynamicSparseTensor dynamic;
    // Guards the `gen` pointer AND its pairing with dynamic's base:
    // queries read both under a shared lock; the compaction commit swaps
    // both under the exclusive lock.
    mutable std::shared_mutex gen_mutex;
    GenerationPtr gen;
    std::atomic<std::uint64_t> calls{0};
    std::atomic<bool> compacting{false};
    std::atomic<std::uint64_t> compactions{0};
  };

  TensorState& state_for(const std::string& name) const;
  ServeResponse handle(TensorState& state, const ServeRequest& request);
  /// Computes (target format, threshold) for a mode of one generation's
  /// base; runs the §V policy when the options defer to it.  Pure --
  /// called with NO lock held.
  std::pair<std::string, double> resolve_upgrade_policy(
      const Generation& gen, index_t mode) const;
  void maybe_launch_upgrade(const GenerationPtr& gen, index_t mode);
  void maybe_launch_compaction(TensorState& state,
                               const TensorSnapshot& snap);
  void run_compaction(TensorState& state);

  ServeOptions opts_;
  mutable std::shared_mutex tensors_mutex_;
  // unique_ptr: TensorState addresses stay stable across map rehash, so
  // worker tasks can hold TensorState& while new tensors register.
  std::map<std::string, std::unique_ptr<TensorState>> tensors_;
  // Declared last: destroyed first, joining workers before the tensor
  // states their tasks reference go away.
  ThreadPool pool_;
};

/// Back-compat alias from the MTTKRP-only era; new code should say
/// TensorOpService.
using MttkrpService = TensorOpService;

}  // namespace bcsf
