// TensorOpService: the concurrent multi-op serving layer (DESIGN.md
// §5-§8).  Known as MttkrpService before the op-generic redesign; the
// alias below keeps that name working.
//
// The paper frames format choice as an amortization problem: structured
// formats (B-CSF / HB-CSF) pay a sort-dominated build that COO does not,
// and Fig. 10's break-even gate says when that build pays for itself.
// This service makes the trade-off dynamic per tensor:
//
//   1. Requests are answered IMMEDIATELY from the zero-preprocessing
//      COO-family plan -- no caller ever waits on a format build.
//   2. Per-tensor call counts are tracked; when they cross the break-even
//      threshold (the auto policy's Fig-10 estimate, or an explicit
//      override), a structured-plan build is kicked off on the worker
//      pool in the background.
//   3. When the build completes, the serving delegate is atomically
//      swapped.  In-flight runs hold the old plan by shared_ptr and
//      finish on it; subsequent requests run structured.
//
// Since the sharded-plan redesign (DESIGN.md §8) every registered tensor
// is K NNZ-BALANCED SHARDS -- contiguous root-mode slice ranges cut by
// tensor/partitioner.hpp, heavy slices split -- and EVERY lifecycle unit
// above is per shard:
//
//   * each shard is its own DynamicSparseTensor behind its own plan
//     generation, so structured builds are O(shard nnz) and run
//     CONCURRENTLY on the pool (K small builds beat one monolithic
//     sort-dominated build to the structured format);
//   * queries fan out BATCH-AMORTIZED and SHARD-AFFINE: a submitted
//     batch becomes ONE task per (shard, batch) -- not K per request --
//     pinned to worker s % W by affinity hint so a shard's plan/delta
//     state stays cache-hot; the last shard to finish a request reduces
//     and fulfills it.  Partition-mode matrix ops on an unsplit
//     partition take the DISJOINT-OUTPUT path (each shard writes its
//     owned row window of one shared output; no partials, no K-way
//     reduce); other modes reduce per-shard double partials from pooled
//     arena buffers -- exact either way, because every op in the
//     protocol is linear in the tensor values;
//   * update batches are SPLIT BY SLICE RANGE and routed to their
//     shards, so a hot shard accumulates delta, upgrades, and compacts
//     on its own clock while cold shards stay COO -- the all-or-nothing
//     upgrade and O(total nnz) compaction of the monolithic design
//     become incremental;
//   * the auto policy runs per (shard, mode): dense shard cores go
//     structured, sparse tails stay COO -- format choice at shard
//     granularity.
//
// Batches may MIX OPS (DESIGN.md §7): each request names an OpKind
// (MTTKRP, TTV, fit inner product) and every op executes on the same
// per-(shard, mode) delegate -- a structured build triggered by any
// op's traffic serves all of them, which is why mode call counts
// aggregate across ops.
//
// Registered tensors are DYNAMIC (DESIGN.md §6): apply_updates() appends
// additive COO update batches without invalidating the structured plans.
// Each shard answers as
//
//      base-plan result  +  delta-COO contribution,
//
// which equals the op on the shard's merged tensor because every op in
// the protocol is linear; summing the shards then equals the op on the
// WHOLE merged tensor because the shards partition the nonzeros.  Every
// response names the (summed) snapshot version it was computed at.  When
// a shard's delta fraction crosses ServeOptions' compaction threshold, a
// background task merges that shard's base + delta into a new base,
// swaps in a fresh plan generation for that shard only, and the upgrade
// policy re-runs for the merged structure; in-flight queries finish on
// the old generation, which they hold by shared_ptr.
//
// Thread-safety: every public method may be invoked from any thread.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "serve/concurrent_plan_cache.hpp"
#include "tensor/dynamic_tensor.hpp"
#include "tensor/partitioner.hpp"
#include "util/fair_scheduler.hpp"
#include "util/memory_budget.hpp"
#include "util/scratch_arena.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

namespace bcsf {

struct ServeOptions {
  /// Worker pool size; requests, per-shard fan-out, background upgrades,
  /// and compactions share it.
  unsigned workers = 4;
  /// Zero-preprocessing format answering from the first request.  Must be
  /// build-free (COO family: "coo", "cpu-coo", "reference").
  std::string initial_format = "coo";
  /// Structured target for the background upgrade.  "auto" asks the §V
  /// slice-binning policy per (shard, mode) (the Fig-10 expected-calls
  /// gate is NOT applied -- the observed-traffic threshold below plays
  /// that role); a COO-family target disables upgrade.  "sharded" is
  /// rejected: the service shards tensors itself.
  std::string upgrade_format = "auto";
  /// Per-(shard, mode) call count that triggers the upgrade -- the
  /// structured build amortizes against that mode's own traffic, matching
  /// Fig. 10.  Calls of EVERY op count, because the build serves all of
  /// them -- but gain-weighted: MTTKRP/FIT calls count 1.0, TTV calls
  /// count ttv_gain_fraction (~1/R), since a rank-1 sweep recoups
  /// proportionally less of the build.  <= 0 means use the auto
  /// policy's breakeven_calls for the (shard, mode) -- infinite when
  /// structure never pays, so undersized shards stay COO forever.
  double upgrade_threshold = 0.0;
  bool enable_upgrade = true;
  /// Per-shard delta fraction (shard delta nnz / shard nnz) at which a
  /// background compaction merges that shard's delta into a new base
  /// snapshot and the upgrade policy re-runs on the merged shard.  The
  /// default keeps the per-query COO sweep at most ~1/4 of each shard.
  double compact_threshold = 0.25;
  /// Compaction also waits for this many delta nonzeros IN THE SHARD, so
  /// tiny shards do not churn through merges worth less than a kernel
  /// launch.
  offset_t compact_min_nnz = 512;
  bool enable_compaction = true;
  /// Nnz-balanced shards per registered tensor: 1 = monolithic (the
  /// pre-§8 behavior, bit for bit), 0 = auto_shard_count prices K from
  /// the tensor's nnz and device saturation, K = fixed count (clamped so
  /// every shard is non-empty).
  unsigned shards = 1;
  /// Mode whose slice ranges define the shards (and route update
  /// batches).  One partition serves all modes of a tensor.
  index_t shard_mode = 0;
  /// Service-wide cap on STRUCTURED-PLAN storage_bytes across every
  /// tenant (DESIGN.md §10); 0 = unlimited.  Enforced by pre-charge
  /// admission at build completion -- a finished build is installed only
  /// after evicting colder resident plans makes room, so plan residency
  /// never exceeds the budget at any instant.  Delta-chunk bytes count
  /// against the same number via the background reclaimer (eviction,
  /// then forced compaction) but are not pre-charged.
  std::size_t storage_budget_bytes = 0;
  /// Per-tick decay factor in (0, 1] for the per-(shard, mode) heat
  /// counters driving eviction order; one tick = one shard-handled
  /// request anywhere in the service.  1 disables decay (pure call
  /// counting).
  double heat_decay = 0.5;
  /// Structured builds admitted to the pool at once, drawn round-robin
  /// across tenants by the fair upgrade scheduler -- a whale tensor
  /// queueing many shard builds cannot starve other tenants' upgrades.
  /// 0 = one per worker.
  unsigned max_concurrent_upgrades = 2;
  /// Sketch-backed planning (DESIGN.md §12): the upgrade policy, shard
  /// pricing, and partition cut placement read the streaming structural
  /// sketches DynamicSparseTensor maintains -- O(S) per decision, zero
  /// O(nnz) rescans after registration -- and every compaction commit
  /// re-runs the format decision from the merged base's fresh sketch.
  /// False restores the exact sort+scan paths (the validation oracle the
  /// parity tests compare against).
  bool sketch_policy = true;
  /// Plan factory used by every generation's cache; tests inject
  /// counting/failing builders.  Default: FormatRegistry create.
  ConcurrentPlanCache::BuildFn build_fn;
  /// Device model, format knobs, expected calls for the policy.
  PlanOptions plan;
};

/// Factor matrices are shared across the requests of a batch (and across
/// batches) instead of copied per request.
using FactorsPtr = std::shared_ptr<const std::vector<DenseMatrix>>;
/// FIT column weights, shared the same way.  Null = all ones.
using LambdaPtr = std::shared_ptr<const std::vector<value_t>>;

/// One serve-layer operation.  The constructor's leading parameters
/// predate the op protocol, so MTTKRP-era initializers `{tensor, mode,
/// factors}` keep meaning what they always did.
struct ServeRequest {
  ServeRequest() = default;
  ServeRequest(std::string tensor_name, index_t target_mode,
               FactorsPtr factor_set, OpKind op_kind = OpKind::kMttkrp,
               LambdaPtr fit_lambda = nullptr)
      : tensor(std::move(tensor_name)),
        mode(target_mode),
        factors(std::move(factor_set)),
        op(op_kind),
        lambda(std::move(fit_lambda)) {}

  std::string tensor;  ///< name passed to register_tensor
  index_t mode = 0;    ///< output mode (MTTKRP/TTV), traversal anchor (FIT)
  /// MTTKRP/FIT: dims[m] x R factor per mode.  TTV: dims[m] x 1 vectors.
  FactorsPtr factors;
  OpKind op = OpKind::kMttkrp;
  LambdaPtr lambda;  ///< FIT weights; ignored by the other ops
};

struct ServeResponse {
  /// MTTKRP: dims[mode] x R.  TTV: dims[mode] x 1.  FIT: empty.
  /// STATS: an (order + 1) x 8 summary answered from sketches -- row m
  /// (m < order) holds [nnz, num_slices, est. num_fibers, singleton slice
  /// fraction, est. CSL slice fraction (lower bound), mean nnz/slice,
  /// stddev nnz/slice, max slice nnz] for mode m; the final row holds
  /// [est. ||X||^2, norm error bound, delta nnz, base nnz, 0, 0, 0, 0].
  DenseMatrix output;
  SimReport report;
  /// Format(s) that executed the BASE contribution ("auto" never leaks:
  /// resolved key).  With several shards serving different formats this
  /// is "mixed"; the delta contribution, when present, is always a COO
  /// sweep.
  std::string served_format;
  /// The base plan of shard 0 (the only shard pre-§8).  Holding it is
  /// safe after the service dies (it pins its snapshot); comparing
  /// pointers across responses observes the async upgrade swap.
  SharedPlan plan;
  std::uint64_t sequence = 0;  ///< 1-based per-tensor call number
  /// True once EVERY shard served this response from its structured
  /// (post-swap) delegate.
  bool upgraded = false;
  /// Tensor snapshot this response is the exact op result of: the sum of
  /// the per-shard versions held when the query visited each shard.
  /// Monotonic across a tensor's responses as observed by any single
  /// thread submitting and waiting in order.
  std::uint64_t snapshot_version = 0;
  /// Nonzeros the delta sweeps contributed on top of the base plans,
  /// summed over shards (0 == the response came purely from base
  /// snapshots).
  offset_t delta_nnz = 0;
  /// Shards that fanned out to serve this response.
  std::size_t shards = 1;
  OpKind op = OpKind::kMttkrp;  ///< echo of the request's op
  /// FIT: <X, Xhat> at snapshot_version (base plans + delta inner
  /// products, reduced in double).  STATS: estimated ||X||^2 of the
  /// coalesced tensor (sum of squared stored values; off by at most the
  /// final output row's error bound).  0 for matrix-valued ops.
  double scalar = 0.0;
  /// How the per-shard contributions were combined into `output`:
  /// "single" (one shard, nothing to combine), "disjoint" (each shard
  /// wrote its owned row window of the shared output directly --
  /// partition-mode matrix ops on an unsplit partition), or "merge"
  /// (per-shard double partials K-way reduced with one cast).
  std::string reduce_path = "single";
  /// Wall ms from the FIRST shard task starting on this request until
  /// the LAST shard finished its contribution (kernel + delta sweep
  /// across the fan-out).  Pool queue wait ahead of the batch is
  /// EXCLUDED: billing it here made fan-out look slower the busier the
  /// pool was, which poisoned the bench's fan-out column.  0 for
  /// single-shard tensors.
  double fanout_ms = 0.0;
  /// Wall ms spent combining the per-shard contributions into the
  /// response (the K-way reduce on the merge path; metadata-only on the
  /// disjoint path).  0 for single-shard tensors.
  double reduce_ms = 0.0;
};

/// Back-compat aliases from the MTTKRP-only era.
using MttkrpRequest = ServeRequest;
using MttkrpResponse = ServeResponse;

class TensorOpService {
 public:
  explicit TensorOpService(ServeOptions opts = {});
  /// Joins the pool; accepted requests, in-flight upgrades, and
  /// compactions complete.
  ~TensorOpService();

  TensorOpService(const TensorOpService&) = delete;
  TensorOpService& operator=(const TensorOpService&) = delete;

  /// Registers a tensor under a unique name, cutting it into the
  /// configured number of nnz-balanced shards (ServeOptions::shards)
  /// along ServeOptions::shard_mode.  No plan is built here -- the first
  /// request pays only the (free) per-shard COO plan construction.  Each
  /// shard becomes snapshot version 0 of its own DynamicSparseTensor.
  void register_tensor(const std::string& name, TensorPtr tensor);
  bool has_tensor(const std::string& name) const;

  /// Appends a batch of additive updates (a COO tensor with the same
  /// dims; duplicate coordinates add), SPLIT BY SLICE RANGE across the
  /// shards, and returns the new (summed) snapshot version.  Returns
  /// immediately -- no plan is rebuilt; queries already in flight finish
  /// on the snapshots they captured, queries submitted after return see
  /// the update.  May trigger background compactions on the shards the
  /// batch touched (see ServeOptions::compact_threshold).
  std::uint64_t apply_updates(const std::string& tensor,
                              SparseTensor updates);

  /// Enqueues one request; the future carries the response or the error.
  std::future<ServeResponse> submit(ServeRequest request);
  /// Enqueues a batch (possibly spanning tensors, modes, and ops);
  /// requests fan out across the worker pool.
  std::vector<std::future<ServeResponse>> submit_batch(
      std::vector<ServeRequest> batch);

  /// Op calls served (or admitted) so far for `tensor`, all ops summed.
  std::uint64_t call_count(const std::string& tensor) const;
  /// Resolved format currently serving (tensor, mode)'s base
  /// contribution: the shards' common format, or "mixed" when they
  /// disagree (e.g. a hot shard upgraded while cold shards stay COO).
  /// The initial format until background upgrades swap delegates (and
  /// again right after a shard compaction installs a fresh generation,
  /// until the re-upgrade lands).
  std::string current_format(const std::string& tensor, index_t mode) const;
  /// True once EVERY shard's structured delegate is installed for
  /// (tensor, mode) in its current generation; a shard compaction resets
  /// it until that shard's re-upgrade completes.
  bool upgraded(const std::string& tensor, index_t mode) const;

  /// Current snapshot version of `tensor`: the sum of the per-shard
  /// versions (0 until the first update).  Monotone.
  std::uint64_t snapshot_version(const std::string& tensor) const;
  /// Fraction of `tensor`'s nonzeros currently in the shards' delta
  /// buffers (aggregated).
  double delta_fraction(const std::string& tensor) const;
  /// Number of shard compactions committed for `tensor` so far (summed).
  std::uint64_t compaction_count(const std::string& tensor) const;
  /// Consistent snapshot of a SINGLE-SHARD tensor -- what a query
  /// submitted now would compute against.  Cheap (shares immutable
  /// storage).  Throws for a tensor sharded K > 1 ways: there is no one
  /// base then; use shard_snapshot per shard.
  TensorSnapshot snapshot(const std::string& tensor) const;

  /// Number of nnz-balanced shards serving `tensor`.
  std::size_t shard_count(const std::string& tensor) const;
  /// Consistent snapshot of one shard's dynamic sub-tensor.
  TensorSnapshot shard_snapshot(const std::string& tensor,
                                std::size_t shard) const;

  /// Point-in-time view of one shard's lifecycle, for observability
  /// (bench/serve_throughput's per-shard timings) and tests.
  struct ShardStatus {
    index_t slice_begin = 0;  ///< root-mode slice range this shard owns
    index_t slice_end = 0;
    offset_t base_nnz = 0;   ///< nonzeros in the shard's base snapshot
    offset_t delta_nnz = 0;  ///< nonzeros in its frozen delta chunks
    std::uint64_t snapshot_version = 0;  ///< the shard's own version
    std::uint64_t compactions = 0;       ///< commits on this shard
    std::string format;        ///< resolved format serving `mode`
    bool upgraded = false;     ///< structured delegate installed for `mode`
    double build_seconds = 0;  ///< build work in the current generation
  };
  std::vector<ShardStatus> shard_status(const std::string& tensor,
                                        index_t mode) const;
  /// Shard that updates with this root-mode (shard_mode) coordinate are
  /// routed to.
  std::size_t shard_for_slice(const std::string& tensor, index_t slice) const;

  // -- Budget & tenant observability (DESIGN.md §10) ------------------

  /// Configured structured-plan budget (0 = unlimited).
  std::size_t storage_budget_bytes() const { return budget_.budget(); }
  /// Structured-plan bytes currently charged against the budget.
  std::size_t plan_resident_bytes() const { return budget_.resident(); }
  /// High-water mark of plan_resident_bytes() -- with a budget set this
  /// is <= the budget by construction (pre-charge admission).
  std::size_t peak_plan_resident_bytes() const { return budget_.peak(); }
  /// Un-compacted delta-chunk bytes across every tenant.
  std::size_t delta_resident_bytes() const { return delta_bytes_.resident(); }
  /// Total budget-relevant residency: plans + delta chunks.
  std::size_t resident_bytes() const {
    return budget_.resident() + delta_bytes_.resident();
  }
  /// Structured plans evicted by the budget (reclaimer or admission).
  std::uint64_t eviction_count() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Finished builds dropped because eviction could not make room
  /// without removing hotter plans.
  std::uint64_t upgrade_reject_count() const {
    return upgrade_rejects_.load(std::memory_order_relaxed);
  }

  // -- Planning-latency observability (DESIGN.md §12) -----------------

  /// Upgrade-policy resolutions performed so far (one per (shard,
  /// generation, mode) that needed a format decision).
  std::uint64_t policy_resolution_count() const {
    return policy_resolutions_.load(std::memory_order_relaxed);
  }
  /// Wall seconds spent inside those resolutions -- the planning-latency
  /// numerator of bench serve_throughput's policy_ms column.  With
  /// ServeOptions::sketch_policy this stays flat in nnz (O(S) reads);
  /// the exact path scales O(nnz log nnz) per decision.
  double policy_seconds() const {
    return static_cast<double>(policy_ns_.load(std::memory_order_relaxed)) *
           1e-9;
  }

  /// Per-tenant accounting snapshot, one entry per registered tensor in
  /// name order (what tensord reports in kPing acks).
  struct TenantStats {
    std::string name;
    std::size_t plan_bytes = 0;   ///< charged structured-plan bytes
    std::size_t delta_bytes = 0;  ///< un-compacted delta-chunk bytes
    std::uint64_t calls = 0;      ///< requests admitted for this tensor
    std::uint64_t structured_served = 0;  ///< shard runs on structured plans
    std::uint64_t coo_served = 0;         ///< shard runs on the COO fallback
    std::uint64_t evictions = 0;          ///< budget evictions suffered
    /// Sketched stored-nonzero count across the tenant's shards -- read
    /// from the O(1) sketch scalars, never a rescan (DESIGN.md §12).
    std::uint64_t sketch_nnz = 0;
    /// Sketched squared Frobenius norm (sum of squared stored values,
    /// shards summed); see ServeResponse's kStats row for error bounds.
    double norm_sq = 0.0;
  };
  std::vector<TenantStats> tenant_stats() const;

  /// Blocks until all accepted requests AND background work (upgrades,
  /// compactions, queued fair-scheduler builds) finished.
  void wait_idle() {
    // A queued upgrade only reaches the pool when an in-flight build
    // finishes, so alternate until both drain together.
    do {
      pool_.wait_idle();
    } while (!scheduler_.idle());
  }

  /// Graceful drain hook for front-ends (net/TensorServer, DESIGN.md
  /// §9): refuses new pool submissions, executes every accepted request
  /// and background task, and joins the workers.  Idempotent.  Queries
  /// submitted after this still resolve -- their futures carry the
  /// response computed INLINE on the submitting thread (the refused-
  /// submission fallback), never a broken promise.
  void shutdown() { pool_.shutdown(); }

  /// Tasks accepted but not yet started on the worker pool: the
  /// admission-control signal (net/TensorServer rejects queries with
  /// kOverloaded once this crosses its watermark).
  std::size_t queue_depth() const { return pool_.queue_depth(); }
  /// Worker pool width (admission watermarks default to a multiple).
  std::size_t workers() const { return pool_.size(); }
  /// Scratch buffers parked on the arena freelist.  Tests assert every
  /// merge-path lease returns here even when a shard or the reduce
  /// throws.
  std::size_t scratch_pooled() const { return arena_.pooled(); }

  const ServeOptions& options() const { return opts_; }

 private:
  struct ModeSlot {
    mutable Mutex m;
    /// Serving delegate; swapped by the upgrade task.
    SharedPlan current BCSF_GUARDED_BY(m);
    bool upgraded_flag BCSF_GUARDED_BY(m) = false;
    bool policy_resolved BCSF_GUARDED_BY(m) = false;
    /// Empty = never upgrade this mode.
    std::string target_format BCSF_GUARDED_BY(m);
    double threshold BCSF_GUARDED_BY(m) = 0.0;
    /// This mode's cumulative call count over ALL ops (request
    /// sequencing).  Carried across compactions so a hot mode
    /// re-launches its structured build on the first post-compaction
    /// request.
    std::atomic<std::uint64_t> mode_calls{0};
    /// Per-op call counts feeding the GAIN-WEIGHTED upgrade trigger:
    /// the structured build serves every op, but a rank-1 TTV call
    /// recoups ~1/R of an MTTKRP call's build cost, so TTV traffic
    /// counts at AutoPolicyOptions::ttv_gain_fraction weight when
    /// compared against the break-even threshold.  A TTV-only workload
    /// therefore upgrades ~R x later (or never), matching the op-aware
    /// §3 policy; MTTKRP/FIT traffic counts at full weight.
    std::array<std::atomic<std::uint64_t>, 3> op_calls{};
    std::atomic<bool> upgrade_launched{false};
    /// Bytes this slot's installed structured plan has charged against
    /// the service budget (0 = nothing charged).  The SINGLE
    /// check-and-clear point shared by reclaimer eviction and compaction
    /// retirement, so the same plan can never be released twice.
    std::size_t charged_bytes BCSF_GUARDED_BY(m) = 0;
  };

  /// One immutable base snapshot together with every plan built from it:
  /// the unit a shard compaction retires wholesale.  Queries pair a
  /// Generation with a TensorSnapshot of the same base_version, so a
  /// plan can never be combined with a delta it already absorbed.
  /// Retired generations stay alive through the shared_ptr held by
  /// in-flight queries and upgrade tasks.
  struct Generation {
    Generation(TensorPtr base, PlanOptions plan_opts,
               std::uint64_t base_version, ConcurrentPlanCache::BuildFn build,
               double heat_decay)
        : cache(std::move(base), std::move(plan_opts), std::move(build),
                base_version, heat_decay),
          modes(cache.tensor()->order()) {}
    ConcurrentPlanCache cache;
    std::vector<ModeSlot> modes;
  };
  using GenerationPtr = std::shared_ptr<Generation>;

  /// One shard's full serving state: the pre-§8 per-tensor state at
  /// shard granularity.  Shards never share mutable state, which is what
  /// makes their upgrades and compactions independent.
  struct TensorState;

  struct ShardState {
    ShardState(TensorPtr base, PlanOptions plan_opts, index_t begin,
               index_t end, ConcurrentPlanCache::BuildFn build,
               double heat_decay)
        : slice_begin(begin),
          slice_end(end),
          dynamic(base),
          gen(std::make_shared<Generation>(std::move(base),
                                           std::move(plan_opts), 0,
                                           std::move(build), heat_decay)) {}
    const index_t slice_begin;  ///< root-mode slice range (see partitioner)
    const index_t slice_end;
    DynamicSparseTensor dynamic;
    // Guards the `gen` pointer AND its pairing with dynamic's base:
    // queries read both under a shared lock; the compaction commit swaps
    // both under the exclusive lock.  (The pairing half of the contract
    // is semantic -- DynamicSparseTensor has its own internal mutex --
    // so only the pointer itself is annotation-checkable.)
    mutable SharedMutex gen_mutex;
    GenerationPtr gen BCSF_GUARDED_BY(gen_mutex);
    std::atomic<bool> compacting{false};
    std::atomic<std::uint64_t> compactions{0};
    /// Owning tensor (stable address: TensorState is held by unique_ptr
    /// and never erased) -- gives shard-level code the tenant identity
    /// for fairness keys and per-tenant counters.  Set by
    /// register_tensor before publication.
    TensorState* owner = nullptr;
    std::size_t index = 0;  ///< position in owner->shards
  };

  struct TensorState {
    std::string name;  ///< registration name (the tenant identity)
    std::vector<index_t> dims;
    index_t partition_mode = 0;
    /// shards[s]'s slice_begin, ascending -- the routing table
    /// (partitioner's shard_for_slice rule over frozen ranges).
    std::vector<index_t> route_begin;
    /// True when the partition's slice ranges are pairwise disjoint (no
    /// heavy slice split): partition-mode matrix ops take the
    /// disjoint-output path.  Always false for single-shard tensors
    /// (they have nothing to combine at all).
    bool disjoint = false;
    /// K+1 output-row ownership table (partitioner's owned_row_begins):
    /// shard s owns partition-mode output rows [owned_begin[s],
    /// owned_begin[s+1]).  Populated only when `disjoint`.
    std::vector<index_t> owned_begin;
    // unique_ptr: ShardState holds mutexes/atomics (immovable) and worker
    // tasks hold ShardState& across generations.
    std::vector<std::unique_ptr<ShardState>> shards;
    std::atomic<std::uint64_t> calls{0};
    /// Shard runs answered from a structured (post-upgrade) plan vs the
    /// COO fallback -- the plan-hit-rate numerator/denominator.
    std::atomic<std::uint64_t> structured_served{0};
    std::atomic<std::uint64_t> coo_served{0};
    /// Budget evictions this tenant has suffered.
    std::atomic<std::uint64_t> evictions{0};
    index_t order() const { return static_cast<index_t>(dims.size()); }
  };

  /// How handle_shard materializes a shard's contribution.
  enum class ShardPath {
    kSingle,    ///< one-shard tensor: finished float result (pre-§8 bits)
    kMerge,     ///< double partial in an arena buffer, K-way reduced
    kDisjoint,  ///< float rows written straight into the shared output
  };

  /// One shard's contribution to a response, produced by handle_shard.
  struct ShardRun {
    SharedPlan plan;
    std::string format;
    bool upgraded = false;
    std::uint64_t snapshot_version = 0;
    offset_t delta_nnz = 0;
    SimReport report;
    /// kSingle: the finished float result (identical arithmetic to the
    /// pre-§8 service).
    OpResult result;
    /// kMerge (matrix ops): double partial = plan output promoted +
    /// delta terms, reduced across shards with ONE cast.  Held as an
    /// arena LEASE, not a raw buffer: the partial returns to the pool
    /// when the ShardRun dies -- including the failure paths (a sibling
    /// shard threw, the reduce threw) that used to leak the raw vector
    /// out of the arena.
    ScratchLease acc;
    double scalar = 0.0;
  };

  /// One request of a shard-affine batch: the per-request slots the K
  /// (shard, batch) tasks fill concurrently.  The LAST shard to finish a
  /// request reduces and fulfills the promise (remaining hits 0), so a
  /// batch pays K task submissions TOTAL instead of K per request.
  struct BatchItem {
    ServeRequest request;
    std::uint64_t sequence = 0;
    std::promise<ServeResponse> promise;
    bool disjoint = false;  ///< takes the disjoint-output path
    /// Preallocated shared output for the disjoint path; shard s writes
    /// rows [owned_begin[s], owned_begin[s+1]) and nobody else touches
    /// them (TSan-checked in the race suites).
    DenseMatrix output;
    /// Stamped by the FIRST shard task to reach this item (exchange
    /// winner); fanout_ms measures from here so pool queue wait ahead
    /// of the batch is not billed as fan-out.  The stamp publishes to
    /// the finisher through the `remaining` release chain.
    std::atomic<bool> started{false};
    std::chrono::steady_clock::time_point first_start;
    std::vector<ShardRun> runs;  ///< one slot per shard
    std::atomic<std::size_t> remaining{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;  ///< written by the failed-flag winner only
  };
  using BatchPtr = std::shared_ptr<std::vector<std::unique_ptr<BatchItem>>>;

  TensorState& state_for(const std::string& name) const;
  std::size_t route_slice(const TensorState& state, index_t slice) const;
  ServeResponse handle(TensorState& state, const ServeRequest& request);
  /// Answers a kStats request by merging the shards' sketches -- O(S +
  /// registers) per shard, never a nonzero touched, no plan, no fan-out.
  ServeResponse handle_stats(TensorState& state, const ServeRequest& request);
  /// Runs one shard's (capture, count, execute, delta-sweep) sequence.
  /// kDisjoint additionally needs the shared output and the shard's
  /// owned row window; the other paths ignore those arguments.
  ShardRun handle_shard(ShardState& shard, const ServeRequest& request,
                        ShardPath path, DenseMatrix* shared_out,
                        index_t row_begin, index_t row_end);
  /// Submits K (shard, batch) tasks -- one per shard with affinity hint
  /// s, each sweeping the WHOLE batch for its shard.
  void dispatch_sharded(TensorState& state, const BatchPtr& items);
  /// Called by the last shard task to finish `item`: reduce + fulfill.
  void finalize_item(TensorState& state, BatchItem& item);
  ServeResponse reduce_item(TensorState& state, BatchItem& item);
  /// Computes (target format, threshold) for a mode of one generation's
  /// base; runs the §V policy when the options defer to it -- from the
  /// shard's streaming base sketch (O(S)) under ServeOptions::
  /// sketch_policy, else from an O(nnz log nnz) scan of the base.
  /// Called with NO lock held; wall time feeds policy_seconds().
  std::pair<std::string, double> resolve_upgrade_policy(
      const ShardState& shard, const Generation& gen, index_t mode) const;
  void maybe_launch_upgrade(ShardState& shard, const GenerationPtr& gen,
                            index_t mode);
  void maybe_launch_compaction(ShardState& shard, const TensorSnapshot& snap);
  void run_compaction(ShardState& shard, bool force = false);

  // -- Budget machinery (DESIGN.md §10) ------------------------------

  /// The fair-scheduler job body: build the structured plan, admit its
  /// bytes (evicting colder plans as needed), install -- or drop the
  /// plan and make the tenant re-earn the threshold.
  void run_upgrade(ShardState& shard, GenerationPtr gen, index_t mode,
                   std::string target);
  /// Pre-charge admission: true (and `bytes` charged) once the plan
  /// fits, evicting strictly-colder installed plans to make room.
  /// Serialized by reclaim_mutex_, so concurrent admissions cannot
  /// overshoot the budget between check and charge.
  bool admit_plan_bytes(std::size_t bytes, double incoming_heat)
      BCSF_EXCLUDES(reclaim_mutex_);

  /// One evictable installed plan, ordered coldest-first with a total
  /// deterministic tiebreak.
  struct EvictionCandidate {
    double heat = 0.0;
    std::string tensor;
    std::size_t shard = 0;
    index_t mode = 0;
    GenerationPtr gen;
    TensorState* state = nullptr;
  };
  /// Every installed-and-charged plan slot, sorted (heat, tensor,
  /// shard, mode) ascending.  Requires reclaim_mutex_: candidate
  /// collection is part of the serialized check-then-evict-then-charge
  /// sequence (see the lock-order DAG, DESIGN.md §11).
  std::vector<EvictionCandidate> collect_candidates() const
      BCSF_REQUIRES(reclaim_mutex_);
  /// Uninstall + release one candidate; returns bytes freed (0 if a
  /// racer already evicted or a compaction retired it).  Requires
  /// reclaim_mutex_ for the same reason as collect_candidates().
  std::size_t evict_candidate(const EvictionCandidate& candidate)
      BCSF_REQUIRES(reclaim_mutex_);
  /// Release a retired/raced slot's charge (check-and-clear under its
  /// mutex); returns bytes released.
  std::size_t release_slot_charge(const GenerationPtr& gen, index_t mode);
  /// Kicks the background reclaimer when plans + delta exceed the
  /// budget (at most one in flight).
  void maybe_launch_reclaim();
  /// Evicts coldest plans, then force-compacts delta-heavy shards,
  /// until the fleet total fits again.
  void run_reclaim() BCSF_EXCLUDES(reclaim_mutex_);

  ServeOptions opts_;
  /// Pooled double buffers for merge-path partials and disjoint-path row
  /// windows: steady-state sharded traffic allocates no partials.
  mutable ScratchArena arena_;
  /// Structured-plan bytes vs the hard budget (pre-charge admission
  /// keeps resident <= budget); delta-chunk bytes tracked separately
  /// (reclaimed by forced compaction, not pre-charged).
  MemoryBudget budget_;
  MemoryBudget delta_bytes_;
  /// Logical clock for heat decay: one tick per shard-handled request.
  std::atomic<std::uint64_t> tick_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> upgrade_rejects_{0};
  /// Planning-latency accounting: resolutions and wall nanoseconds spent
  /// in resolve_upgrade_policy (see policy_seconds()).  Mutable: the
  /// resolver is logically const (a pure decision function); timing it
  /// is bookkeeping.
  mutable std::atomic<std::uint64_t> policy_ns_{0};
  mutable std::atomic<std::uint64_t> policy_resolutions_{0};
  std::atomic<bool> reclaiming_{false};
  /// Serializes admission charges and eviction sweeps so the budget
  /// check-then-charge is atomic across concurrent builds.  Head of the
  /// lock-order DAG (DESIGN.md §11): reclaim_mutex_ -> tensors_mutex_
  /// -> ShardState::gen_mutex -> {ModeSlot::m, the generation cache's
  /// shared_mutex} -> HeatSlot::m.  The ACQUIRED_BEFORE edge below is
  /// the compiler-checkable prefix (-Wthread-safety-beta); the per-shard
  /// and per-slot tails cross class boundaries, which the attribute
  /// cannot name, so they live in the DAG doc and stay TSan-verified.
  Mutex reclaim_mutex_ BCSF_ACQUIRED_BEFORE(tensors_mutex_);
  mutable SharedMutex tensors_mutex_;
  // unique_ptr: TensorState addresses stay stable across map rehash, so
  // worker tasks can hold TensorState& while new tensors register.
  std::map<std::string, std::unique_ptr<TensorState>> tensors_
      BCSF_GUARDED_BY(tensors_mutex_);
  // Declared before pool_ (destroyed after it): pool shutdown runs the
  // in-flight build wrappers, which call back into the scheduler.
  FairScheduler scheduler_;
  // Declared last: destroyed first, joining workers before the tensor
  // states their tasks reference go away.
  ThreadPool pool_;
};

/// Back-compat alias from the MTTKRP-only era; new code should say
/// TensorOpService.
using MttkrpService = TensorOpService;

}  // namespace bcsf
