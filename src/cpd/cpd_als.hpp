// CPD-ALS (Algorithm 1): alternating least squares CP decomposition with
// a pluggable MTTKRP backend.
//
// Each iteration updates every factor via
//   A_n <- MTTKRP_n(X, {A_m}) * (*_{m != n} A_m^T A_m)^dagger
// then normalizes columns into lambda and evaluates the model fit
// through the plan layer's FIT op (DESIGN.md §7) -- the residual inner
// product runs on the same built structure as the MTTKRP sweeps, and
// iteration stops early once the fit improvement drops below
// fit_tolerance instead of always burning max_iterations.  The MTTKRP is
// the bottleneck the whole paper is about; everything else here is R x R
// dense work (linalg/).
//
// The backend is any format registered in the FormatRegistry ("hbcsf",
// "cpu-csf", "coo", "auto", ...); plans are built once per (format, mode)
// in a ConcurrentPlanCache -- the ALLMODE strategy of §VI-A -- and reused
// across iterations.
#pragma once

#include <string>
#include <vector>

#include "gpusim/device.hpp"
#include "gpusim/metrics.hpp"
#include "linalg/dense_matrix.hpp"
#include "serve/concurrent_plan_cache.hpp"
#include "tensor/sparse_tensor.hpp"
#include "util/types.hpp"

namespace bcsf {

struct CpdOptions {
  rank_t rank = 16;
  /// Hard cap; the fit-based stop below usually fires first.
  unsigned max_iterations = 25;
  /// Stop when the fit (evaluated via the plan's FIT op each iteration)
  /// improves by less than this between iterations.  The FIT op runs
  /// through the backend's kernel, so for fp32 backends (every format
  /// except the double-accumulating "reference") the fit carries
  /// relative noise around 1e-6..1e-5 of ||Xhat||^2 / ||X||^2; keep the
  /// tolerance above that floor or the stop may fire on noise -- use
  /// format = "reference" when bitwise-stable fit trajectories matter.
  double fit_tolerance = 1e-5;
  std::uint64_t seed = 7;
  /// FormatRegistry key of the MTTKRP backend.  "reference" is the
  /// sequential ground truth, "cpu-csf" the SPLATT-style OpenMP kernel,
  /// "hbcsf" the paper's system, "auto" the §V + Fig-10 selection policy,
  /// "sharded" K nnz-balanced shard plans reduced per call (§8).
  std::string format = "cpu-csf";
  /// Nnz-balanced shards per mode plan (DESIGN.md §8).  1 = monolithic;
  /// 0 = auto_shard_count pricing; K != 1 wraps `format` in the
  /// "sharded" meta format, so every MTTKRP/FIT sweep of the ALS loop
  /// runs as K per-shard runs reduced in double -- exact, because both
  /// ops are linear in the tensor.
  unsigned shards = 1;
  DeviceModel device = DeviceModel::p100();
};

struct CpdResult {
  std::vector<DenseMatrix> factors;
  std::vector<value_t> lambda;
  std::vector<double> fit_history;  ///< fit after each iteration
  unsigned iterations = 0;
  double final_fit = 0.0;
  /// Format-construction wall time (all modes, from the plan cache).
  double preprocessing_seconds = 0.0;
  /// Simulated GPU seconds spent in MTTKRP (GPU-format backends only).
  double simulated_mttkrp_seconds = 0.0;
  /// Formats actually executed per mode (differs from the requested
  /// format only for "auto", which resolves per mode).
  std::vector<std::string> mode_formats;
};

/// Shared-ownership entry point: the plans built inside hold the tensor
/// alive via the concurrent cache, so the caller may drop its reference
/// as soon as this call is enqueued (e.g. when running on a worker pool).
CpdResult cpd_als(TensorPtr tensor, const CpdOptions& options);

/// Legacy reference-taking entry point; the tensor must outlive the call.
CpdResult cpd_als(const SparseTensor& tensor, const CpdOptions& options);

}  // namespace bcsf
