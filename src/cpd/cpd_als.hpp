// CPD-ALS (Algorithm 1): alternating least squares CP decomposition with
// a pluggable MTTKRP backend.
//
// Each iteration updates every factor via
//   A_n <- MTTKRP_n(X, {A_m}) * (*_{m != n} A_m^T A_m)^dagger
// then normalizes columns into lambda and evaluates the model fit.  The
// MTTKRP is the bottleneck the whole paper is about; everything else here
// is R x R dense work (linalg/).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "gpusim/device.hpp"
#include "gpusim/metrics.hpp"
#include "linalg/dense_matrix.hpp"
#include "tensor/sparse_tensor.hpp"
#include "util/types.hpp"

namespace bcsf {

enum class CpdBackend {
  kReference,  ///< sequential double-precision COO (ground truth)
  kCpuCsf,     ///< SPLATT-style OpenMP CSF, one representation per mode
  kGpuHbcsf,   ///< simulated HB-CSF GPU kernel (the paper's system)
};

struct CpdOptions {
  rank_t rank = 16;
  unsigned max_iterations = 25;
  /// Stop when the fit improves by less than this between iterations.
  double fit_tolerance = 1e-5;
  std::uint64_t seed = 7;
  CpdBackend backend = CpdBackend::kCpuCsf;
  DeviceModel device = DeviceModel::p100();
};

struct CpdResult {
  std::vector<DenseMatrix> factors;
  std::vector<value_t> lambda;
  std::vector<double> fit_history;  ///< fit after each iteration
  unsigned iterations = 0;
  double final_fit = 0.0;
  /// Format-construction wall time (all modes).
  double preprocessing_seconds = 0.0;
  /// Simulated GPU seconds spent in MTTKRP (kGpuHbcsf backend only).
  double simulated_mttkrp_seconds = 0.0;
};

CpdResult cpd_als(const SparseTensor& tensor, const CpdOptions& options);

}  // namespace bcsf
