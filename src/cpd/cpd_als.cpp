#include "cpd/cpd_als.hpp"

#include <memory>

#include "formats/csf.hpp"
#include "formats/hbcsf.hpp"
#include "kernels/mttkrp.hpp"
#include "linalg/ops.hpp"
#include "linalg/spd_solve.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace bcsf {

CpdResult cpd_als(const SparseTensor& tensor, const CpdOptions& options) {
  BCSF_CHECK(tensor.nnz() > 0, "cpd_als: tensor has no nonzeros");
  BCSF_CHECK(options.rank > 0, "cpd_als: rank must be positive");
  const index_t order = tensor.order();

  CpdResult result;
  result.factors.reserve(order);
  for (index_t m = 0; m < order; ++m) {
    DenseMatrix f(tensor.dim(m), options.rank);
    f.randomize(options.seed + 31 * m, 0.05F, 1.0F);
    result.factors.push_back(std::move(f));
  }
  result.lambda.assign(options.rank, 1.0F);

  // Pre-build one representation per mode (ALLMODE strategy, §VI-A).
  Timer prep;
  std::vector<CsfTensor> csfs;
  std::vector<HbcsfTensor> hbcsfs;
  if (options.backend == CpdBackend::kCpuCsf) {
    for (index_t m = 0; m < order; ++m) csfs.push_back(build_csf(tensor, m));
  } else if (options.backend == CpdBackend::kGpuHbcsf) {
    for (index_t m = 0; m < order; ++m) {
      hbcsfs.push_back(build_hbcsf(tensor, m));
    }
  }
  result.preprocessing_seconds = prep.seconds();

  auto run_mttkrp = [&](index_t mode) -> DenseMatrix {
    switch (options.backend) {
      case CpdBackend::kReference:
        return mttkrp_reference(tensor, mode, result.factors);
      case CpdBackend::kCpuCsf:
        return mttkrp_csf_cpu(csfs[mode], result.factors);
      case CpdBackend::kGpuHbcsf: {
        GpuMttkrpResult r =
            mttkrp_hbcsf_gpu(hbcsfs[mode], result.factors, options.device);
        result.simulated_mttkrp_seconds += r.report.seconds;
        return std::move(r.output);
      }
    }
    BCSF_CHECK(false, "cpd_als: unknown backend");
    return DenseMatrix{};
  };

  double prev_fit = 0.0;
  for (unsigned iter = 0; iter < options.max_iterations; ++iter) {
    for (index_t mode = 0; mode < order; ++mode) {
      const DenseMatrix mk = run_mttkrp(mode);
      const DenseMatrix v = gram_hadamard_except(result.factors, mode);
      result.factors[mode] = solve_spd_right(v, mk);
      result.lambda = normalize_columns(result.factors[mode]);
    }
    const double fit = cp_fit(tensor, result.factors, result.lambda);
    result.fit_history.push_back(fit);
    result.iterations = iter + 1;
    if (iter > 0 && fit - prev_fit < options.fit_tolerance) break;
    prev_fit = fit;
  }
  result.final_fit =
      result.fit_history.empty() ? 0.0 : result.fit_history.back();
  return result;
}

}  // namespace bcsf
