#include "cpd/cpd_als.hpp"

#include <memory>
#include <utility>
#include <vector>

#include "core/factors.hpp"
#include "linalg/ops.hpp"
#include "linalg/spd_solve.hpp"
#include "serve/concurrent_plan_cache.hpp"
#include "util/error.hpp"

namespace bcsf {

CpdResult cpd_als(const SparseTensor& tensor, const CpdOptions& options) {
  // Non-owning bridge: the caller's reference outlives this call, which
  // is all the plans built inside it need.
  return cpd_als(borrow_tensor(tensor), options);
}

CpdResult cpd_als(TensorPtr tensor, const CpdOptions& options) {
  BCSF_CHECK(tensor != nullptr, "cpd_als: null tensor");
  BCSF_CHECK(tensor->nnz() > 0, "cpd_als: tensor has no nonzeros");
  BCSF_CHECK(options.rank > 0, "cpd_als: rank must be positive");
  const SparseTensor& x = *tensor;
  const index_t order = x.order();

  CpdResult result;
  result.factors =
      make_random_factors(x.dims(), options.rank, options.seed, 0.05F);
  result.lambda.assign(options.rank, 1.0F);

  // Pre-build one plan per mode (ALLMODE strategy, §VI-A) through the
  // concurrent cache -- the same component the serving layer uses, so
  // a cpd_als running inside a service worker shares its semantics.
  PlanOptions plan_opts;
  plan_opts.device = options.device;
  // Each (format, mode) plan serves ONE MTTKRP per iteration; its build
  // amortizes against that mode's calls only, not the tensor aggregate.
  plan_opts.expected_mttkrp_calls = static_cast<double>(options.max_iterations);
  // Sharded ALS (DESIGN.md §8): wrap the requested backend in the
  // "sharded" meta format, which partitions each mode along itself and
  // reduces per-shard MTTKRP/FIT runs in double -- exact, and the K
  // smaller builds replace one monolithic sort per mode.
  std::string format = options.format;
  if (format == "sharded") {
    plan_opts.sharding.shards = options.shards;
  } else if (options.shards != 1) {
    plan_opts.sharding.shards = options.shards;
    plan_opts.sharding.shard_format = format;
    format = "sharded";
  }
  ConcurrentPlanCache cache(std::move(tensor), plan_opts);
  std::vector<SharedPlan> mode_plans;
  mode_plans.reserve(order);
  result.mode_formats.reserve(order);
  for (index_t m = 0; m < order; ++m) {
    mode_plans.push_back(cache.get(format, m));
    result.mode_formats.push_back(mode_plans.back()->resolved_format());
  }
  result.preprocessing_seconds = cache.total_build_seconds();

  auto run_mttkrp = [&](index_t mode) -> DenseMatrix {
    const TensorOpPlan& plan = *mode_plans[mode];
    PlanRunResult r = plan.run(result.factors);
    if (plan.is_gpu()) result.simulated_mttkrp_seconds += r.report.seconds;
    return std::move(r.output);
  };

  // Fit-based early stopping through the FIT op (DESIGN.md §7): the
  // residual inner product <X, Xhat> -- the only fit piece that walks
  // the tensor -- runs on the last mode's plan, i.e. on the SAME built
  // structure the MTTKRP sweeps amortize, instead of an extra raw-COO
  // pass per iteration.  ||X|| is constant and ||Xhat||^2 is R x R
  // dense work on the factors.
  const double x_norm = x.norm();
  auto evaluate_fit = [&]() -> double {
    const TensorOpPlan& plan = *mode_plans[order - 1];
    OpRequest fit_request;
    fit_request.kind = OpKind::kFit;
    fit_request.mode = order - 1;
    fit_request.factors = &result.factors;
    fit_request.lambda = &result.lambda;
    OpResult r = plan.execute(fit_request);
    if (plan.is_gpu()) result.simulated_mttkrp_seconds += r.report.seconds;
    return cp_fit_from_pieces(
        x_norm, r.scalar, cp_model_norm_sq(result.factors, result.lambda));
  };

  double prev_fit = 0.0;
  for (unsigned iter = 0; iter < options.max_iterations; ++iter) {
    for (index_t mode = 0; mode < order; ++mode) {
      const DenseMatrix mk = run_mttkrp(mode);
      const DenseMatrix v = gram_hadamard_except(result.factors, mode);
      result.factors[mode] = solve_spd_right(v, mk);
      result.lambda = normalize_columns(result.factors[mode]);
    }
    const double fit = evaluate_fit();
    result.fit_history.push_back(fit);
    result.iterations = iter + 1;
    if (iter > 0 && fit - prev_fit < options.fit_tolerance) break;
    prev_fit = fit;
  }
  result.final_fit =
      result.fit_history.empty() ? 0.0 : result.fit_history.back();
  return result;
}

}  // namespace bcsf
