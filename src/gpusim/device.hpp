// Device model for the GPU execution simulator.
//
// The simulator substitutes for the paper's NVIDIA Tesla P100 (no GPU is
// available in this environment; see DESIGN.md §1).  A kernel is costed in
// *warp-issue cycles*: one unit is one warp-wide instruction slot, so a
// warp touching R = 32 factor columns spends a handful of units per
// nonzero.  Costs below are calibrated so that the plain GPU-CSF kernel
// reproduces the qualitative Table II picture (deli fast; nell2/darpa
// crawling with single-digit occupancy).
#pragma once

#include <cstddef>
#include <string>

namespace bcsf {

struct DeviceModel {
  std::string name = "sim-P100";

  // --- machine geometry (P100, §VI-A) ---
  unsigned num_sms = 56;
  unsigned warp_size = 32;
  unsigned max_warps_per_sm = 64;   ///< occupancy ceiling per SM
  unsigned max_blocks_per_sm = 32;
  double clock_ghz = 1.3;

  /// Aggregate warp-instruction issue bandwidth per SM, in warp-cycles per
  /// cycle.  With fewer resident warps than this, execution is
  /// latency-bound (each warp progresses at rate 1); with more, warps
  /// share the SM's issue throughput.
  double sm_issue_width = 4.0;

  /// Global thread-block dispatch throughput (blocks per cycle across the
  /// whole device).  Kernels with huge grids of tiny blocks -- the
  /// freebase tensors' one-block-per-4-nonzero-slice pattern -- become
  /// dispatch-starved: SMs idle between blocks, which is exactly Table
  /// II's "high occupancy, 27% sm_efficiency" signature for fr_m/fr_s.
  double block_dispatch_per_cycle = 0.10;

  // --- L2 cache (4096 KB on the P100) ---
  std::size_t l2_bytes = 4096 * 1024;
  unsigned l2_line_bytes = 128;
  unsigned l2_assoc = 16;

  // --- kernel cost model (warp-issue cycles) ---
  // Constants fold in the average latency a warp cannot hide on this
  // irregular access pattern; they are calibrated against Table II's
  // absolute GFLOPs range (deli ~90, darpa ~2 on the real P100).
  double cycles_per_nnz_csf = 28.0;   ///< CSF inner loop: load C row, FMA
  double cycles_per_fiber = 40.0;     ///< load B row, scale tmp, update Y
  double cycles_per_ancestor = 20.0;  ///< extra factor row per level, order>3
  double cycles_per_slice = 30.0;     ///< slice bookkeeping / output write
  double cycles_per_nnz_coo = 135.0;  ///< COO: 2 row loads, muls, atomic RMW
  double cycles_per_nnz_csl = 40.0;   ///< CSL: 2 row loads, muls, no atomic
  double cycles_per_nnz_fcoo = 130.0; ///< F-COO: products + scan shuffles
  /// Max nonzeros a CSL warp takes per segment; larger compressed slices
  /// are split across warps (atomic combine), mirroring slc-split.
  double csl_segment_nnz = 256.0;
  double cycles_scan_per_chunk = 200.0;///< segmented-scan overhead per chunk
  double cycles_atomic_shared = 16.0; ///< intra-block combine (shared memory)
  double cycles_atomic_global = 80.0; ///< inter-block combine (global atomics)
  double cycles_l2_miss = 40.0;       ///< added per L2-missed line access
  double cycles_block_overhead = 100.0;///< block dispatch / prologue
  double kernel_launch_us = 5.0;      ///< fixed host-side launch latency

  /// Thread block size used by the CSF-family kernels (the paper's
  /// examples use 512 threads = 16 warps).
  unsigned threads_per_block = 512;
  unsigned warps_per_block() const { return threads_per_block / warp_size; }

  /// Tesla P100 preset (the paper's evaluation device).
  static DeviceModel p100();
  /// Tesla V100 preset (80 SMs, 6 MB L2, higher clock): used to check
  /// that the paper's conclusions are not P100-specific.
  static DeviceModel v100();
  /// Tiny 2-SM device for deterministic unit tests of the scheduler.
  static DeviceModel tiny(unsigned sms = 2, unsigned warps_per_sm = 8);
};

}  // namespace bcsf
