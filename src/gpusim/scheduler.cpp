#include "gpusim/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <sstream>
#include <vector>

#include "util/error.hpp"

namespace bcsf {

namespace {

constexpr double kEps = 1e-9;

struct ResidentBlock {
  std::vector<double> remaining;  // per-warp cycles left
  unsigned slots = 0;             // warp slots held until the block ends
  unsigned live = 0;              // warps with remaining > 0
};

struct Sm {
  double clock = 0.0;           // local time (device cycles)
  std::vector<ResidentBlock> blocks;
  unsigned used_warp_slots = 0;
  unsigned active_warps = 0;

  double busy_time = 0.0;       // time with >= 1 active warp
  double warp_time = 0.0;       // integral of active warps over time

  double rate(double issue_width) const {
    if (active_warps == 0) return 0.0;
    return std::min(1.0, issue_width / active_warps);
  }
  double min_remaining() const {
    double m = std::numeric_limits<double>::infinity();
    for (const auto& b : blocks) {
      for (double r : b.remaining) {
        if (r > kEps) m = std::min(m, r);
      }
    }
    return m;
  }
};

}  // namespace

SimReport simulate_launch(const DeviceModel& device,
                          const KernelLaunch& launch) {
  SimReport report;
  report.kernel = launch.name;
  report.l2_hit_rate_pct = launch.l2_hit_rate_pct;
  report.total_flops = launch.total_flops;
  report.atomic_ops = launch.atomic_ops;
  report.num_blocks = launch.blocks.size();

  const unsigned wpb =
      std::min<unsigned>(std::max<unsigned>(launch.warps_per_block, 1),
                         device.max_warps_per_sm);
  for (const auto& b : launch.blocks) {
    BCSF_CHECK(b.warp_cycles.size() <= wpb,
               "simulate_launch: block has more warps ("
                   << b.warp_cycles.size() << ") than warps_per_block ("
                   << wpb << ")");
    report.num_warps += b.warp_cycles.size();
  }

  const double launch_seconds = device.kernel_launch_us * 1e-6;
  if (launch.blocks.empty()) {
    report.seconds = launch_seconds;
    return report;
  }

  std::vector<Sm> sms(device.num_sms);
  offset_t next_block = 0;
  const double dispatch_rate = launch.blocks.size() > 1
                                   ? device.block_dispatch_per_cycle
                                   : std::numeric_limits<double>::infinity();

  // Time at which the GigaThread engine can hand out the next block.
  auto dispatch_gate = [&]() {
    return static_cast<double>(next_block) / dispatch_rate;
  };
  auto has_capacity = [&](const Sm& sm) {
    return sm.blocks.size() < device.max_blocks_per_sm &&
           sm.used_warp_slots + wpb <= device.max_warps_per_sm;
  };
  auto try_dispatch = [&](Sm& sm) {
    while (next_block < launch.blocks.size() && has_capacity(sm) &&
           dispatch_gate() <= sm.clock + kEps) {
      const BlockWork& src = launch.blocks[next_block++];
      ResidentBlock rb;
      rb.slots = wpb;
      rb.remaining = src.warp_cycles;
      for (auto& r : rb.remaining) {
        r += device.cycles_block_overhead;  // block prologue, warp-wide
        if (r > kEps) ++rb.live;
      }
      sm.used_warp_slots += rb.slots;
      sm.active_warps += rb.live;
      sm.blocks.push_back(std::move(rb));
    }
  };

  // The next time anything can happen on an SM: its earliest warp
  // completion, or the moment a queued block becomes dispatchable to it.
  // Dispatch eligibility carries a load-proportional epsilon so that when
  // several SMs compete for the same block, the least-loaded one wins --
  // the GigaThread engine's round-robin/least-loaded placement.  Without
  // it, priority-queue ties would funnel consecutive blocks onto one SM.
  auto next_event_time = [&](const Sm& sm) {
    double t = std::numeric_limits<double>::infinity();
    if (sm.active_warps > 0) {
      t = sm.clock + sm.min_remaining() / sm.rate(device.sm_issue_width);
    }
    if (next_block < launch.blocks.size() && has_capacity(sm)) {
      t = std::min(t, std::max(sm.clock, dispatch_gate()) +
                          sm.used_warp_slots * 1e-6);
    }
    return t;
  };

  using Event = std::pair<double, unsigned>;  // (time, sm index)
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  auto schedule_event = [&](unsigned s) {
    const double t = next_event_time(sms[s]);
    if (t < std::numeric_limits<double>::infinity()) events.emplace(t, s);
  };
  for (unsigned s = 0; s < sms.size(); ++s) schedule_event(s);

  double makespan = 0.0;
  while (!events.empty()) {
    const auto [te, s] = events.top();
    events.pop();
    Sm& sm = sms[s];
    const double tmin = next_event_time(sm);
    if (tmin == std::numeric_limits<double>::infinity()) continue;  // stale
    if (te + kEps < tmin) {
      events.emplace(tmin, s);  // stale: state changed since scheduling
      continue;
    }
    // Advance the SM to tmin (never past a completion: tmin is at most the
    // earliest completion by construction).
    const double rate = sm.rate(device.sm_issue_width);
    const double dt = tmin - sm.clock;
    if (dt > 0.0) {
      sm.warp_time += sm.active_warps * dt;
      if (sm.active_warps > 0) sm.busy_time += dt;
      sm.clock = tmin;
      const double progress = dt * rate;
      for (auto it = sm.blocks.begin(); it != sm.blocks.end();) {
        for (auto& r : it->remaining) {
          if (r > kEps) {
            r -= progress;
            if (r <= kEps) {
              r = 0.0;
              --it->live;
              --sm.active_warps;
            }
          }
        }
        if (it->live == 0) {
          sm.used_warp_slots -= it->slots;
          it = sm.blocks.erase(it);
        } else {
          ++it;
        }
      }
    } else {
      sm.clock = std::max(sm.clock, tmin);
    }
    try_dispatch(sm);
    if (sm.active_warps > 0 || sm.clock > makespan) {
      makespan = std::max(makespan, sm.clock);
    }
    schedule_event(s);
  }
  BCSF_ASSERT(next_block == launch.blocks.size(),
              "simulate_launch: undispatched blocks remain");

  report.cycles = makespan;
  report.seconds = makespan / (device.clock_ghz * 1e9) + launch_seconds;
  report.gflops =
      report.seconds > 0.0 ? launch.total_flops / report.seconds / 1e9 : 0.0;

  double busy_sum = 0.0;
  double warp_sum = 0.0;
  for (const auto& sm : sms) {
    busy_sum += sm.busy_time;
    warp_sum += sm.warp_time;
  }
  report.sm_efficiency_pct = std::min(
      100.0,
      makespan > 0.0 ? 100.0 * busy_sum / (makespan * device.num_sms) : 0.0);
  report.achieved_occupancy_pct = std::min(
      100.0, busy_sum > 0.0
                 ? 100.0 * (warp_sum / busy_sum) / device.max_warps_per_sm
                 : 0.0);
  return report;
}

SimReport& SimReport::operator+=(const SimReport& other) {
  const double t0 = seconds;
  const double t1 = other.seconds;
  const double total = t0 + t1;
  if (total > 0.0) {
    achieved_occupancy_pct = std::min(
        100.0,
        (achieved_occupancy_pct * t0 + other.achieved_occupancy_pct * t1) /
            total);
    sm_efficiency_pct = std::min(
        100.0, (sm_efficiency_pct * t0 + other.sm_efficiency_pct * t1) / total);
  }
  const double acc0 = total_flops;
  const double acc1 = other.total_flops;
  if (acc0 + acc1 > 0.0) {
    l2_hit_rate_pct =
        (l2_hit_rate_pct * acc0 + other.l2_hit_rate_pct * acc1) /
        (acc0 + acc1);
  }
  cycles += other.cycles;
  seconds = total;
  total_flops += other.total_flops;
  gflops = seconds > 0.0 ? total_flops / seconds / 1e9 : 0.0;
  num_blocks += other.num_blocks;
  num_warps += other.num_warps;
  atomic_ops += other.atomic_ops;
  if (!other.kernel.empty() && kernel != other.kernel) {
    kernel += "+" + other.kernel;
  }
  return *this;
}

std::string SimReport::to_string() const {
  std::ostringstream os;
  os << kernel << ": " << gflops << " GFLOPs, occ=" << achieved_occupancy_pct
     << "%, sm_eff=" << sm_efficiency_pct << "%, L2=" << l2_hit_rate_pct
     << "%, cycles=" << cycles << ", blocks=" << num_blocks
     << ", atomics=" << atomic_ops;
  return os.str();
}

}  // namespace bcsf
