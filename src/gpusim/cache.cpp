#include "gpusim/cache.hpp"

#include "util/error.hpp"

namespace bcsf {

CacheSim::CacheSim(std::size_t capacity_bytes, unsigned line_bytes,
                   unsigned assoc)
    : line_bytes_(line_bytes), assoc_(assoc) {
  BCSF_CHECK(line_bytes > 0 && assoc > 0, "CacheSim: bad geometry");
  num_sets_ = capacity_bytes / line_bytes / assoc;
  BCSF_CHECK(num_sets_ > 0, "CacheSim: capacity too small for geometry");
  tags_.assign(num_sets_ * assoc_, 0);
}

bool CacheSim::access(std::uint64_t addr) {
  const std::uint64_t line = addr / line_bytes_;
  const std::size_t set = static_cast<std::size_t>(line % num_sets_);
  // Tags are stored +1 so 0 can mean "empty".
  const std::uint64_t tag = line + 1;
  std::uint64_t* ways = &tags_[set * assoc_];
  for (unsigned w = 0; w < assoc_; ++w) {
    if (ways[w] == tag) {
      // Move to front (LRU).
      for (unsigned k = w; k > 0; --k) ways[k] = ways[k - 1];
      ways[0] = tag;
      ++hits_;
      return true;
    }
  }
  // Miss: evict LRU (last way).
  for (unsigned k = assoc_ - 1; k > 0; --k) ways[k] = ways[k - 1];
  ways[0] = tag;
  ++misses_;
  return false;
}

unsigned CacheSim::access_range(std::uint64_t addr, unsigned bytes) {
  unsigned missed = 0;
  const std::uint64_t first = addr / line_bytes_;
  const std::uint64_t last = (addr + bytes - 1) / line_bytes_;
  for (std::uint64_t line = first; line <= last; ++line) {
    if (!access(line * line_bytes_)) ++missed;
  }
  return missed;
}

unsigned AddressSpace::add_region(const std::string& name) {
  names_.push_back(name);
  return static_cast<unsigned>(names_.size() - 1);
}

}  // namespace bcsf
