// Work descriptors handed from a kernel to the scheduler.
//
// A kernel's launch is a grid of thread blocks; each block carries the
// issue-cycle cost of every warp it contains.  The costs are produced by
// the kernel's execution pass, which walks the *same* (block, warp, work
// item) decomposition while computing the real MTTKRP arithmetic -- the
// schedule that is costed is exactly the schedule that produced the
// numbers.
#pragma once

#include <string>
#include <vector>

#include "util/types.hpp"

namespace bcsf {

struct BlockWork {
  /// Issue-cycle cost of each warp in the block (length = warps launched,
  /// at most device.warps_per_block()).
  std::vector<double> warp_cycles;
};

struct KernelLaunch {
  std::string name;
  std::vector<BlockWork> blocks;
  /// Warps that occupancy accounting charges per block (a block reserves
  /// its full warp allotment even if some warps run out of work early).
  unsigned warps_per_block = 16;

  double total_flops = 0.0;    ///< floating point ops actually executed
  double l2_hit_rate_pct = 0.0;///< from the kernel's cache pass
  offset_t atomic_ops = 0;     ///< global atomic row-updates issued
};

}  // namespace bcsf
