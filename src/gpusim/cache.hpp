// Set-associative LRU cache simulator used to model the P100's 4 MB L2.
//
// Kernels feed it the factor-matrix rows, output rows, and index/value
// stream lines they actually touch, in execution order; the hit rate is
// reported as Table II's "L2 hit rate" and misses feed the warp cost
// model.  Addresses are synthetic: each named region (a factor matrix, an
// index array) lives in its own disjoint address range.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace bcsf {

class CacheSim {
 public:
  CacheSim(std::size_t capacity_bytes, unsigned line_bytes, unsigned assoc);

  /// Touches one line; returns true on hit.  `addr` is a byte address.
  bool access(std::uint64_t addr);

  /// Touches `bytes` consecutive bytes starting at addr; returns the
  /// number of missed lines.
  unsigned access_range(std::uint64_t addr, unsigned bytes);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  double hit_rate_pct() const {
    const std::uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0
                      : 100.0 * static_cast<double>(hits_) /
                            static_cast<double>(total);
  }
  void reset_counters() { hits_ = misses_ = 0; }

 private:
  unsigned line_bytes_;
  unsigned assoc_;
  std::size_t num_sets_;
  // Per set: `assoc` tag slots in LRU order (front = most recent).
  std::vector<std::uint64_t> tags_;   // num_sets * assoc, 0 = empty
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Address-space helper: gives each logical region (factor matrix, index
/// array, ...) a disjoint 1-TB-aligned base so region accesses never alias.
class AddressSpace {
 public:
  /// Registers a region and returns its id.
  unsigned add_region(const std::string& name);
  std::uint64_t base(unsigned region) const {
    return (static_cast<std::uint64_t>(region) + 1) << 40;
  }
  /// Byte address of `offset` within `region`.
  std::uint64_t addr(unsigned region, std::uint64_t offset) const {
    return base(region) + offset;
  }
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<std::string> names_;
};

}  // namespace bcsf
