// Simulator output: the metrics the paper reports.
//
//  * GFLOPs          -- Table II col. 2, Figs. 5-8 y-axes
//  * achieved occupancy -- "ratio of the average active warps per active
//    cycle to the maximum number of warps supported on an SM" (§IV)
//  * sm_efficiency   -- "percentage of time when at least one warp is
//    active on a streaming multiprocessor" (§IV)
//  * L2 hit rate     -- Table II col. 5
#pragma once

#include <string>

#include "util/types.hpp"

namespace bcsf {

struct SimReport {
  std::string kernel;
  double cycles = 0.0;            ///< makespan in device cycles
  double seconds = 0.0;           ///< cycles / clock + launch latency
  double gflops = 0.0;
  double achieved_occupancy_pct = 0.0;
  double sm_efficiency_pct = 0.0;
  double l2_hit_rate_pct = 0.0;
  offset_t num_blocks = 0;
  offset_t num_warps = 0;
  offset_t atomic_ops = 0;
  double total_flops = 0.0;

  /// Combines two sequential launches (used by HB-CSF's three-group
  /// execution): times add; occupancy/efficiency/L2 are time-weighted.
  SimReport& operator+=(const SimReport& other);

  std::string to_string() const;
};

}  // namespace bcsf
