#include "gpusim/device.hpp"

namespace bcsf {

DeviceModel DeviceModel::p100() { return DeviceModel{}; }

DeviceModel DeviceModel::v100() {
  DeviceModel d;
  d.name = "sim-V100";
  d.num_sms = 80;
  d.clock_ghz = 1.53;
  d.l2_bytes = 6144 * 1024;
  d.block_dispatch_per_cycle = 0.15;  // Volta's faster work distributor
  return d;
}

DeviceModel DeviceModel::tiny(unsigned sms, unsigned warps_per_sm) {
  DeviceModel d;
  d.name = "sim-tiny";
  d.num_sms = sms;
  d.max_warps_per_sm = warps_per_sm;
  d.max_blocks_per_sm = 4;
  d.sm_issue_width = 2.0;
  d.l2_bytes = 64 * 1024;
  d.threads_per_block = 128;
  return d;
}

}  // namespace bcsf
