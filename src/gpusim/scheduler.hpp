// Event-driven block/warp scheduler.
//
// Semantics (mirrors how a GigaThread engine feeds SMs):
//  * Blocks are dispatched in grid order to the SM whose resources free up
//    first; an SM holds a block's warp slots until the whole block ends.
//  * Resident warps with remaining work progress under processor sharing:
//    with `a` active warps on an SM, each runs at rate
//    min(1, sm_issue_width / a) cycles of progress per device cycle --
//    latency-bound when the SM is underpopulated, issue-bound when full.
//  * A block finishes when its last warp finishes; its slots are then
//    reused, possibly admitting queued blocks (slc-split relies on this).
//
// The paper's two imbalance pathologies fall out directly: a heavy fiber
// makes one warp's cost dominate its block (inter-warp imbalance), and a
// heavy slice makes one block outlive the grid while other SMs idle
// (inter-thread-block imbalance, the darpa/nell2 signature of Table II).
#pragma once

#include "gpusim/device.hpp"
#include "gpusim/metrics.hpp"
#include "gpusim/work.hpp"

namespace bcsf {

/// Runs the launch to completion and returns the metrics.
SimReport simulate_launch(const DeviceModel& device,
                          const KernelLaunch& launch);

}  // namespace bcsf
