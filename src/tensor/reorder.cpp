#include "tensor/reorder.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace bcsf {

Relabeling random_relabeling(index_t dim, std::uint64_t seed) {
  Relabeling perm(dim);
  std::iota(perm.begin(), perm.end(), index_t{0});
  Rng rng(seed);
  std::shuffle(perm.begin(), perm.end(), rng.engine());
  return perm;
}

Relabeling degree_sorted_relabeling(const SparseTensor& tensor, index_t mode) {
  BCSF_CHECK(mode < tensor.order(), "degree_sorted_relabeling: bad mode");
  const index_t dim = tensor.dim(mode);
  offset_vec degree(dim, 0);
  for (offset_t z = 0; z < tensor.nnz(); ++z) {
    ++degree[tensor.coord(mode, z)];
  }
  index_vec by_degree(dim);
  std::iota(by_degree.begin(), by_degree.end(), index_t{0});
  std::stable_sort(by_degree.begin(), by_degree.end(),
                   [&](index_t a, index_t b) { return degree[a] > degree[b]; });
  // by_degree[rank] = old index; we need perm[old] = rank.
  Relabeling perm(dim);
  for (index_t rank = 0; rank < dim; ++rank) {
    perm[by_degree[rank]] = rank;
  }
  return perm;
}

void apply_relabeling(SparseTensor& tensor, index_t mode,
                      const Relabeling& perm) {
  BCSF_CHECK(mode < tensor.order(), "apply_relabeling: bad mode");
  BCSF_CHECK(perm.size() == tensor.dim(mode),
             "apply_relabeling: permutation size " << perm.size()
                 << " != dim " << tensor.dim(mode));
  // Validate bijectivity once (cheap relative to the relabeling's users).
  std::vector<bool> seen(perm.size(), false);
  for (index_t p : perm) {
    BCSF_CHECK(p < perm.size() && !seen[p],
               "apply_relabeling: not a bijection");
    seen[p] = true;
  }
  // Rebuild the tensor with relabeled coordinates on this mode.
  SparseTensor out(tensor.dims());
  out.reserve(tensor.nnz());
  std::vector<index_t> coord(tensor.order());
  for (offset_t z = 0; z < tensor.nnz(); ++z) {
    for (index_t m = 0; m < tensor.order(); ++m) {
      coord[m] = m == mode ? perm[tensor.coord(m, z)] : tensor.coord(m, z);
    }
    out.push_back(coord, tensor.value(z));
  }
  tensor = std::move(out);
}

Relabeling invert_relabeling(const Relabeling& perm) {
  Relabeling inv(perm.size());
  for (index_t i = 0; i < perm.size(); ++i) {
    BCSF_CHECK(perm[i] < perm.size(), "invert_relabeling: out of range");
    inv[perm[i]] = i;
  }
  return inv;
}

void zorder_sort(SparseTensor& tensor, index_t bits) {
  BCSF_CHECK(bits >= 1 && bits <= 16, "zorder_sort: bits must be in [1,16]");
  const index_t order = tensor.order();
  const offset_t m = tensor.nnz();
  // Morton code: interleave the low `bits` bits of each coordinate,
  // mode-major within each bit position.
  std::vector<std::uint64_t> code(m, 0);
  for (offset_t z = 0; z < m; ++z) {
    std::uint64_t c = 0;
    for (index_t b = bits; b-- > 0;) {
      for (index_t mo = 0; mo < order; ++mo) {
        c = (c << 1) | ((tensor.coord(mo, z) >> b) & 1U);
      }
    }
    code[z] = c;
  }
  std::vector<offset_t> perm(m);
  std::iota(perm.begin(), perm.end(), offset_t{0});
  std::stable_sort(perm.begin(), perm.end(),
                   [&](offset_t a, offset_t b) { return code[a] < code[b]; });

  SparseTensor out(tensor.dims());
  out.reserve(m);
  std::vector<index_t> coord(order);
  for (offset_t zi = 0; zi < m; ++zi) {
    const offset_t z = perm[zi];
    for (index_t mo = 0; mo < order; ++mo) coord[mo] = tensor.coord(mo, z);
    out.push_back(coord, tensor.value(z));
  }
  tensor = std::move(out);
}

}  // namespace bcsf
