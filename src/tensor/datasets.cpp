#include "tensor/datasets.hpp"

#include "util/error.hpp"

namespace bcsf {

namespace {

DatasetSpec make_spec(std::string name, std::string full_name,
                      std::vector<std::uint64_t> paper_dims,
                      std::uint64_t paper_nnz, double paper_density,
                      PowerLawConfig twin,
                      std::optional<TableIIRef> table2 = std::nullopt) {
  DatasetSpec s;
  s.name = std::move(name);
  s.full_name = std::move(full_name);
  s.order = static_cast<index_t>(paper_dims.size());
  s.paper_dims = std::move(paper_dims);
  s.paper_nnz = paper_nnz;
  s.paper_density = paper_density;
  s.twin = std::move(twin);
  s.table2 = table2;
  return s;
}

std::vector<DatasetSpec> build_registry() {
  std::vector<DatasetSpec> reg;

  // ---- 3-order tensors (Table III top half; Table II signatures). ----

  // deli: many moderate slices, short fibers -> the best-behaved tensor.
  {
    PowerLawConfig c;
    c.dims = {16600, 531000, 62500};
    c.target_nnz = 1'400'000;
    c.slice_alpha = 1.0;
    c.max_slice_frac = 0.002;
    c.fiber_alpha = 1.6;
    c.max_fiber_len = 64;
    c.seed = 101;
    reg.push_back(make_spec(
        "deli", "delicious-3d (FROSTT)", {533'000, 17'000'000, 2'000'000},
        140'000'000, 6.14e-12, c,
        TableIIRef{90, 60, 70, 62, 1011, 4}));
  }

  // nell1: hyper-sparse, longer fibers, moderate slice imbalance.
  {
    PowerLawConfig c;
    c.dims = {93750, 62500, 781250};
    c.target_nnz = 1'440'000;
    c.slice_alpha = 0.45;
    c.max_slice_frac = 0.05;
    c.fiber_alpha = 0.7;
    c.max_fiber_len = 2048;
    c.seed = 102;
    reg.push_back(make_spec(
        "nell1", "NELL-1 (FROSTT)", {3'000'000, 2'000'000, 25'000'000},
        144'000'000, 9.05e-13, c,
        TableIIRef{33, 32, 44, 20, 1314, 61}));
  }

  // nell2: small dims, a few *huge* slices (stddev nnz/slc 28K in the
  // paper) -> severe inter-thread-block imbalance.
  {
    PowerLawConfig c;
    c.dims = {375, 281, 906};
    c.target_nnz = 770'000;
    c.slice_alpha = 0.30;
    c.max_slice_frac = 0.25;
    c.fiber_alpha = 0.55;
    c.max_fiber_len = 800;
    c.seed = 103;
    reg.push_back(make_spec(
        "nell2", "NELL-2 (FROSTT)", {12'000, 9'000, 29'000}, 77'000'000,
        2.4e-05, c, TableIIRef{13, 10, 26, 83, 27983, 203}));
  }

  // flick-3d: every fiber is a singleton ("each fiber has only one
  // nonzero", SS V-C) and slices are tiny on average.
  {
    PowerLawConfig c;
    c.dims = {200000, 875000, 62500};
    c.target_nnz = 1'130'000;
    c.slice_alpha = 1.3;
    c.max_slice_frac = 0.001;
    c.fixed_fiber_len = 1;
    c.singleton_slice_frac = 0.02;
    c.seed = 104;
    reg.push_back(make_spec(
        "flick-3d", "flickr-3d (FROSTT)", {320'000, 28'000'000, 2'000'000},
        113'000'000, 7.80e-12, c,
        TableIIRef{46, 53, 37, 67, 1851, 4}));
  }

  // fr_m (freebase-music): huge first two modes, mode-3 dimension only 166;
  // stddev(nnz/fbr) = 0 -> all fibers singletons, slices small.
  {
    PowerLawConfig c;
    c.dims = {718750, 718750, 166};
    c.target_nnz = 990'000;
    c.slice_alpha = 1.4;
    c.max_slice_frac = 0.0004;
    c.fixed_fiber_len = 1;
    c.singleton_slice_frac = 0.25;
    c.seed = 105;
    reg.push_back(make_spec(
        "fr_m", "freebase-music (HaTen2)", {23'000'000, 23'000'000, 166},
        99'000'000, 1.10e-09, c,
        TableIIRef{18, 65, 27, 28, 105, 0}));
  }

  // fr_s (freebase-sampled): same family, slightly longer mode 3.
  {
    PowerLawConfig c;
    c.dims = {1218750, 1218750, 532};
    c.target_nnz = 1'400'000;
    c.slice_alpha = 1.4;
    c.max_slice_frac = 0.0003;
    c.fixed_fiber_len = 1;
    c.singleton_slice_frac = 0.25;
    c.seed = 106;
    reg.push_back(make_spec(
        "fr_s", "freebase-sampled (HaTen2)", {39'000'000, 39'000'000, 532},
        140'000'000, 1.73e-10, c,
        TableIIRef{24, 67, 34, 28, 90, 0}));
  }

  // darpa: pathological in both dimensions -- enormous slices AND
  // enormous fibers (stddev 25849 / 8588); the paper's worst performer
  // (2 GFLOPs, 4% occupancy) and the biggest splitting win (22x, Fig 5).
  {
    PowerLawConfig c;
    c.dims = {687, 687, 718750};
    c.target_nnz = 280'000;
    c.slice_alpha = 0.22;
    c.max_slice_frac = 0.60;
    c.fiber_alpha = 0.30;
    c.max_fiber_len = 120'000;
    c.seed = 107;
    reg.push_back(make_spec(
        "darpa", "DARPA-1998 (HaTen2)", {22'000, 22'000, 23'000'000},
        28'000'000, 2.37e-09, c,
        TableIIRef{2, 4, 12, 4, 25849, 8588}));
  }

  // ---- 4-order tensors (Table III bottom half). ----

  // nips: small and fairly regular.
  {
    PowerLawConfig c;
    c.dims = {2482, 2862, 14036, 17};
    c.target_nnz = 310'000;
    c.slice_alpha = 0.9;
    c.max_slice_frac = 0.01;
    c.fiber_alpha = 1.2;
    c.max_fiber_len = 17;
    c.seed = 108;
    reg.push_back(make_spec("nips", "NIPS publications (FROSTT)",
                            {2'482, 2'862, 14'036, 17}, 3'100'000, 3.85e-04,
                            c));
  }

  // enron: email (sender, receiver, word, date); moderate tail.
  {
    PowerLawConfig c;
    c.dims = {6066, 5699, 244268, 1176};
    c.target_nnz = 540'000;
    c.slice_alpha = 0.7;
    c.max_slice_frac = 0.02;
    c.fiber_alpha = 1.0;
    c.max_fiber_len = 256;
    c.seed = 109;
    reg.push_back(make_spec("enron", "Enron emails (FROSTT)",
                            {6'066, 5'699, 244'268, 1'176}, 5'400'000,
                            1.83e-06, c));
  }

  // ch-cr (chicago-crime): tiny middle modes, very high density, so the
  // mode-0 dimension (6K) forces heavy slices.
  {
    PowerLawConfig c;
    c.dims = {6186, 24, 77, 32};
    c.target_nnz = 540'000;
    c.slice_alpha = 1.2;
    c.max_slice_frac = 0.002;
    c.fiber_alpha = 1.5;
    c.max_fiber_len = 32;
    c.seed = 110;
    reg.push_back(make_spec("ch-cr", "chicago-crime (FROSTT)",
                            {6'186, 24, 77, 32}, 54'000'000, 1.48e-01, c));
  }

  // flick-4d: flickr-3d plus a 731-day date mode; singleton fibers again.
  {
    PowerLawConfig c;
    c.dims = {200000, 875000, 62500, 731};
    c.target_nnz = 1'130'000;
    c.slice_alpha = 1.3;
    c.max_slice_frac = 0.001;
    c.fixed_fiber_len = 1;
    c.singleton_slice_frac = 0.02;
    c.seed = 111;
    reg.push_back(make_spec("flick-4d", "flickr-4d (FROSTT)",
                            {320'000, 28'000'000, 2'000'000, 731},
                            113'000'000, 1.07e-14, c));
  }

  // uber: small and dense-ish (pickups: day, hour, lat, lon).
  {
    PowerLawConfig c;
    c.dims = {183, 24, 1140, 1717};
    c.target_nnz = 330'000;
    c.slice_alpha = 1.5;
    c.max_slice_frac = 0.02;
    c.fiber_alpha = 1.2;
    c.max_fiber_len = 64;
    c.seed = 112;
    reg.push_back(make_spec("uber", "Uber pickups (FROSTT)",
                            {183, 24, 1'140, 1'717}, 3'300'000, 5.37e-10, c));
  }

  return reg;
}

}  // namespace

const std::vector<DatasetSpec>& paper_datasets() {
  static const std::vector<DatasetSpec> registry = build_registry();
  return registry;
}

std::vector<std::string> three_order_dataset_names() {
  std::vector<std::string> names;
  for (const auto& s : paper_datasets()) {
    if (s.order == 3) names.push_back(s.name);
  }
  return names;
}

std::vector<std::string> all_dataset_names() {
  std::vector<std::string> names;
  for (const auto& s : paper_datasets()) names.push_back(s.name);
  return names;
}

const DatasetSpec& dataset_spec(const std::string& name) {
  for (const auto& s : paper_datasets()) {
    if (s.name == name) return s;
  }
  BCSF_CHECK(false, "unknown dataset: " << name);
  // unreachable
  return paper_datasets().front();
}

SparseTensor generate_dataset(const DatasetSpec& spec) {
  return generate_power_law(spec.twin);
}

SparseTensor generate_dataset(const std::string& name) {
  return generate_dataset(dataset_spec(name));
}

}  // namespace bcsf
