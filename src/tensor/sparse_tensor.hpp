// Order-N sparse tensor in coordinate (COO) form, structure-of-arrays.
//
// COO is both the paper's baseline storage format (§III-A, Algorithm 2)
// and the interchange representation every other format (CSF, B-CSF, CSL,
// HB-CSF, F-COO, HiCOO) is constructed from.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace bcsf {

/// A mode ordering: perm[0] is the root (slice) mode, perm[order-1] the
/// leaf mode whose indices are stored per nonzero in CSF-like formats.
using ModeOrder = std::vector<index_t>;

/// Returns the canonical ordering used by the paper for mode-n MTTKRP:
/// root = mode n, remaining modes in increasing order.  For a 3-order
/// tensor and n = 0 this is (0, 1, 2); for n = 1 it is (1, 0, 2).
ModeOrder mode_order_for(index_t mode, index_t order);

class SparseTensor {
 public:
  SparseTensor() = default;

  /// Creates an empty tensor with the given dimensions (order = dims.size()).
  explicit SparseTensor(std::vector<index_t> dims);

  index_t order() const { return static_cast<index_t>(dims_.size()); }
  offset_t nnz() const { return vals_.size(); }
  index_t dim(index_t mode) const { return dims_.at(mode); }
  const std::vector<index_t>& dims() const { return dims_; }

  /// Density = nnz / prod(dims), computed in double precision.
  double density() const;

  void reserve(offset_t n);

  /// Appends one nonzero; `coords` must have exactly `order()` entries that
  /// are all within bounds.
  void push_back(std::span<const index_t> coords, value_t value);

  /// Coordinate of nonzero `z` along `mode`.
  index_t coord(index_t mode, offset_t z) const { return inds_[mode][z]; }
  value_t value(offset_t z) const { return vals_[z]; }
  value_t& value(offset_t z) { return vals_[z]; }

  std::span<const index_t> mode_indices(index_t mode) const {
    return inds_.at(mode);
  }
  std::span<const value_t> values() const { return vals_; }
  std::span<value_t> values() { return vals_; }

  /// Lexicographically sorts the nonzeros by the given mode ordering
  /// (perm[0] is the most significant key).  CSF construction for mode n
  /// requires sorting by mode_order_for(n, order()).
  void sort(const ModeOrder& order);

  /// True if nonzeros are sorted by the given ordering.
  bool is_sorted(const ModeOrder& order) const;

  /// Merges duplicate coordinates by summing their values.  The tensor is
  /// sorted by the identity mode order afterwards.  Returns the number of
  /// duplicates removed.
  offset_t coalesce();

  /// Verifies structural invariants (index bounds, equal array lengths);
  /// throws bcsf::Error on violation.
  void validate() const;

  /// Frobenius norm of the nonzero values.
  double norm() const;

  /// Total bytes of index storage in COO form: order * nnz * 4
  /// (the paper's "4 x 3M bytes" for third-order tensors, §III-A).
  std::size_t index_storage_bytes() const {
    return static_cast<std::size_t>(order()) * nnz() * kIndexBytes;
  }

  std::string shape_string() const;  ///< e.g. "533K x 17M x 2M"

 private:
  std::vector<index_t> dims_;
  std::vector<index_vec> inds_;  // one array per mode, each of length nnz
  value_vec vals_;
};

/// Shared-ownership handle to an immutable tensor.  This is the currency
/// of every layer that retains tensors past a call (DynamicSparseTensor
/// snapshots, ConcurrentPlanCache, MttkrpService): COO-family plans
/// reference their source tensor instead of copying it, so shared
/// ownership is what makes "retain a plan, drop the tensor" safe.
using TensorPtr = std::shared_ptr<const SparseTensor>;

/// Moves a tensor onto the heap under shared ownership (the normal way to
/// feed DynamicSparseTensor / ConcurrentPlanCache / MttkrpService).
TensorPtr share_tensor(SparseTensor&& tensor);

/// Non-owning view of a caller-owned tensor (aliasing shared_ptr with no
/// control block).  The caller guarantees the tensor outlives every plan
/// or snapshot built from it -- this is the bridge for legacy
/// reference-taking call sites like cpd_als(const SparseTensor&).
TensorPtr borrow_tensor(const SparseTensor& tensor);

}  // namespace bcsf
