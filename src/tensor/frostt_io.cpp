#include "tensor/frostt_io.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace bcsf {

SparseTensor read_tns(std::istream& in, const std::vector<index_t>& dims_hint) {
  std::string line;
  std::size_t order = dims_hint.size();  // 0 = infer from first line
  std::vector<index_vec> inds(order);
  value_vec vals;
  std::vector<index_t> max_coord(order, 0);
  std::size_t line_no = 0;

  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::vector<double> fields;
    double x = 0.0;
    while (ls >> x) fields.push_back(x);
    if (!ls.eof()) {
      BCSF_CHECK(false, "tns line " << line_no << ": non-numeric token");
    }
    if (fields.empty()) continue;  // blank or comment-only line
    BCSF_CHECK(fields.size() >= 2,
               "tns line " << line_no << ": need at least one index and a value");
    if (order == 0) {
      order = fields.size() - 1;
      inds.resize(order);
      max_coord.assign(order, 0);
    }
    BCSF_CHECK(fields.size() == order + 1,
               "tns line " << line_no << ": expected " << order
                           << " coordinates + value, got " << fields.size() - 1
                           << " coordinates");
    for (std::size_t m = 0; m < order; ++m) {
      const double c = fields[m];
      BCSF_CHECK(c >= 1.0 && c == static_cast<double>(static_cast<index_t>(c)),
                 "tns line " << line_no << ": coordinate " << c
                             << " is not a positive integer");
      const auto idx = static_cast<index_t>(c) - 1;  // to 0-based
      if (!dims_hint.empty()) {
        BCSF_CHECK(idx < dims_hint[m], "tns line " << line_no << ": coordinate "
                                                   << c << " exceeds dim hint "
                                                   << dims_hint[m]);
      }
      if (max_coord.size() <= m) max_coord.resize(m + 1, 0);
      if (idx + 1 > max_coord[m]) max_coord[m] = idx + 1;
      inds[m].push_back(idx);
    }
    vals.push_back(static_cast<value_t>(fields[order]));
  }
  BCSF_CHECK(order > 0, "tns input contained no data lines");

  std::vector<index_t> dims =
      dims_hint.empty() ? max_coord : dims_hint;
  SparseTensor t(dims);
  t.reserve(vals.size());
  std::vector<index_t> coord(order);
  for (offset_t z = 0; z < vals.size(); ++z) {
    for (std::size_t m = 0; m < order; ++m) coord[m] = inds[m][z];
    t.push_back(coord, vals[z]);
  }
  return t;
}

SparseTensor read_tns_file(const std::string& path,
                           const std::vector<index_t>& dims_hint) {
  std::ifstream in(path);
  BCSF_CHECK(in.good(), "cannot open tns file: " << path);
  return read_tns(in, dims_hint);
}

void write_tns(std::ostream& out, const SparseTensor& tensor) {
  const index_t order = tensor.order();
  for (offset_t z = 0; z < tensor.nnz(); ++z) {
    for (index_t m = 0; m < order; ++m) {
      out << (tensor.coord(m, z) + 1) << ' ';
    }
    out << tensor.value(z) << '\n';
  }
}

void write_tns_file(const std::string& path, const SparseTensor& tensor) {
  std::ofstream out(path);
  BCSF_CHECK(out.good(), "cannot open tns file for writing: " << path);
  write_tns(out, tensor);
  BCSF_CHECK(out.good(), "write failed for tns file: " << path);
}

}  // namespace bcsf
