// Streaming structural sketches (DESIGN.md §12).  All hashing is seeded
// with fixed compile-time constants -- deterministic across runs, replay
// and shards -- and every structural counter is integer-valued, so merges
// are bitwise-exact in any association.
#include "tensor/sketch.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>
#include <unordered_set>

#include "util/error.hpp"

namespace bcsf {

namespace {

// Fixed hash seeds (arbitrary odd constants; never derived from time or
// any runtime entropy source).
constexpr std::uint64_t kFiberSeed = 0x9ae16a3b2f90404fULL;
constexpr std::uint64_t kAmsSeed = 0x517cc1b727220a95ULL;

double pow2_neg(std::uint8_t r) { return std::ldexp(1.0, -static_cast<int>(r)); }

}  // namespace

ModeSketch::ModeSketch(index_t mode, index_t order) : mode_(mode) {
  BCSF_CHECK(mode < order, "ModeSketch: mode " << mode << " out of range for order "
                                               << order);
  const ModeOrder mode_order = mode_order_for(mode, order);
  // A fiber is identified by every coordinate except the leaf mode's.
  fiber_modes_.assign(mode_order.begin(), mode_order.end() - 1);
  hll_regs_.assign(kHllRegisters, 0);
  hll_inv_sum_ = static_cast<double>(kHllRegisters);  // all registers at 0
  hll_zero_regs_ = static_cast<std::uint32_t>(kHllRegisters);
  ams_.assign(kAmsCounters, 0);
}

std::uint64_t ModeSketch::fiber_hash(std::span<const index_t> coords) const {
  std::uint64_t h = kFiberSeed ^ mode_;
  for (index_t m : fiber_modes_) h = sketch_mix64(h ^ coords[m]);
  return h;
}

void ModeSketch::hll_observe(std::uint64_t hash) {
  const std::size_t idx = static_cast<std::size_t>(hash >> (64 - kHllPrecision));
  // The |1 caps the leading-zero count; registers stay well inside uint8.
  const std::uint64_t w = (hash << kHllPrecision) | 1ULL;
  const std::uint8_t rho = static_cast<std::uint8_t>(std::countl_zero(w) + 1);
  std::uint8_t& reg = hll_regs_[idx];
  if (rho > reg) {
    hll_inv_sum_ += pow2_neg(rho) - pow2_neg(reg);
    if (reg == 0) --hll_zero_regs_;
    reg = rho;
  }
}

void ModeSketch::add(std::span<const index_t> coords) {
  BCSF_ASSERT(!hll_regs_.empty(), "ModeSketch::add on default-constructed sketch");
  // A lone add cannot know whether this fiber was seen before; the exact
  // count lapses until count_exact_fibers() re-establishes it.
  fiber_exact_ = false;
  const index_t slice = coords[mode_];
  if (nnz_ == 0) {
    min_slice_ = max_slice_ = slice;
  } else {
    min_slice_ = std::min(min_slice_, slice);
    max_slice_ = std::max(max_slice_, slice);
  }
  offset_t& c = hist_[coords[mode_]];
  sum_sq_slice_nnz_ += 2 * static_cast<std::uint64_t>(c) + 1;
  if (c == 0) {
    ++singleton_slices_;
  } else if (c == 1) {
    --singleton_slices_;
  }
  ++c;
  if (c > max_slice_nnz_) max_slice_nnz_ = c;
  ++nnz_;

  const std::uint64_t h = fiber_hash(coords);
  hll_observe(h);
  const std::uint64_t bits = sketch_mix64(h ^ kAmsSeed);
  for (std::size_t i = 0; i < kAmsCounters; ++i) {
    ams_[i] += ((bits >> i) & 1U) ? 1 : -1;
  }
}

void ModeSketch::merge(const ModeSketch& other) {
  if (other.hll_regs_.empty()) return;  // default-constructed: nothing to fold
  BCSF_CHECK(!hll_regs_.empty() && mode_ == other.mode_ &&
                 fiber_modes_ == other.fiber_modes_,
             "ModeSketch::merge: incompatible sketches (mode "
                 << mode_ << " vs " << other.mode_ << ")");

  // Exact fiber counts add iff both sides are exact and this sketch's
  // slice range sits strictly below the other's: disjoint root ranges
  // imply disjoint fiber keys (every fiber key contains its root index).
  // Empty sides are transparent.  The strictly-ascending rule -- rather
  // than mere range disjointness -- is what keeps the lapse decision
  // independent of merge association (a sequence is exact iff every
  // adjacent non-empty pair ascends, however the merges are grouped).
  const bool ascending =
      nnz_ == 0 || other.nnz_ == 0 || max_slice_ < other.min_slice_;
  fiber_exact_ = fiber_exact_ && other.fiber_exact_ && ascending;
  exact_fibers_ += other.exact_fibers_;
  if (other.nnz_ > 0) {
    if (nnz_ == 0) {
      min_slice_ = other.min_slice_;
      max_slice_ = other.max_slice_;
    } else {
      min_slice_ = std::min(min_slice_, other.min_slice_);
      max_slice_ = std::max(max_slice_, other.max_slice_);
    }
  }

  // Slice histogram: exact counter sums with O(overlap) scalar fixups.
  nnz_ += other.nnz_;
  sum_sq_slice_nnz_ += other.sum_sq_slice_nnz_;
  singleton_slices_ += other.singleton_slices_;
  max_slice_nnz_ = std::max(max_slice_nnz_, other.max_slice_nnz_);
  for (const auto& [slice, c2] : other.hist_) {
    auto [it, inserted] = hist_.try_emplace(slice, c2);
    if (!inserted) {
      const offset_t c1 = it->second;
      sum_sq_slice_nnz_ += 2 * static_cast<std::uint64_t>(c1) * c2;
      // An overlapping slice cannot stay a singleton; remove whatever each
      // side counted for it.
      if (c1 == 1) --singleton_slices_;
      if (c2 == 1) --singleton_slices_;
      it->second = c1 + c2;
      if (it->second > max_slice_nnz_) max_slice_nnz_ = it->second;
    }
  }

  // HyperLogLog: register-wise max.
  for (std::size_t j = 0; j < kHllRegisters; ++j) {
    const std::uint8_t theirs = other.hll_regs_[j];
    std::uint8_t& reg = hll_regs_[j];
    if (theirs > reg) {
      hll_inv_sum_ += pow2_neg(theirs) - pow2_neg(reg);
      if (reg == 0) --hll_zero_regs_;
      reg = theirs;
    }
  }

  // AMS: counters add (same sign hashes on both sides).
  for (std::size_t i = 0; i < kAmsCounters; ++i) ams_[i] += other.ams_[i];
}

void ModeSketch::count_exact_fibers(const SparseTensor& tensor) {
  // Transient O(F) set -- affordable where whole tensors are already in
  // hand (registration, compaction); the sketch keeps only the count.
  // "Exact" is up to 64-bit fiber-hash collisions (~F^2 / 2^65).
  std::unordered_set<std::uint64_t> fibers;
  fibers.reserve(static_cast<std::size_t>(tensor.nnz()));
  const index_t order = tensor.order();
  std::vector<index_t> coord(order);
  for (offset_t z = 0; z < tensor.nnz(); ++z) {
    for (index_t m = 0; m < order; ++m) coord[m] = tensor.coord(m, z);
    fibers.insert(fiber_hash(coord));
  }
  exact_fibers_ = static_cast<offset_t>(fibers.size());
  fiber_exact_ = true;
}

offset_t ModeSketch::estimate_fibers() const {
  if (nnz_ == 0 || hll_regs_.empty()) return 0;
  if (fiber_exact_) return exact_fibers_;
  const double m = static_cast<double>(kHllRegisters);
  const double alpha = 0.7213 / (1.0 + 1.079 / m);
  double est = alpha * m * m / hll_inv_sum_;
  if (est <= 2.5 * m && hll_zero_regs_ > 0) {
    // Linear counting: exact-regime correction for small cardinalities.
    est = m * std::log(m / static_cast<double>(hll_zero_regs_));
  }
  // Structural bounds: every non-empty slice holds >= 1 fiber and every
  // fiber holds >= 1 nonzero.
  const double lo = static_cast<double>(num_slices());
  const double hi = static_cast<double>(nnz_);
  return static_cast<offset_t>(std::llround(std::clamp(est, lo, hi)));
}

double ModeSketch::estimate_fiber_sq_sum() const {
  if (nnz_ == 0 || ams_.empty()) return 0.0;
  double acc = 0.0;
  for (std::int64_t w : ams_) {
    acc += static_cast<double>(w) * static_cast<double>(w);
  }
  const double est = acc / static_cast<double>(kAmsCounters);
  // F2 is at least nnz (all fibers singleton) and at most nnz^2 (one fiber).
  const double n = static_cast<double>(nnz_);
  return std::clamp(est, n, n * n);
}

ModeStats ModeSketch::approx_mode_stats() const {
  ModeStats s;
  s.mode = mode_;
  s.nnz = nnz_;
  s.num_slices = num_slices();
  if (s.num_slices == 0) return s;

  const double n = static_cast<double>(nnz_);
  const double slices = static_cast<double>(s.num_slices);

  s.nnz_per_slice.count = static_cast<std::size_t>(s.num_slices);
  s.nnz_per_slice.sum = n;
  s.nnz_per_slice.mean = n / slices;
  const double slice_var = std::max(
      0.0, static_cast<double>(sum_sq_slice_nnz_) / slices -
               s.nnz_per_slice.mean * s.nnz_per_slice.mean);
  s.nnz_per_slice.stddev = std::sqrt(slice_var);
  s.nnz_per_slice.max = static_cast<double>(max_slice_nnz_);
  s.nnz_per_slice.min = 0.0;  // not maintained (no planning consumer)

  s.singleton_slice_fraction = static_cast<double>(singleton_slices_) / slices;

  const offset_t fibers = estimate_fibers();
  s.num_fibers = fibers;
  const double f = static_cast<double>(fibers);
  if (fibers > 0) {
    s.nnz_per_fiber.count = static_cast<std::size_t>(fibers);
    s.nnz_per_fiber.sum = n;
    s.nnz_per_fiber.mean = n / f;
    const double fiber_var =
        std::max(0.0, estimate_fiber_sq_sum() / f -
                          s.nnz_per_fiber.mean * s.nnz_per_fiber.mean);
    s.nnz_per_fiber.stddev = std::sqrt(fiber_var);

    s.fibers_per_slice.count = static_cast<std::size_t>(s.num_slices);
    s.fibers_per_slice.sum = f;
    s.fibers_per_slice.mean = f / slices;
  }

  // CSL lower bound: each of the (at most nnz - F) excess nonzeros sits in
  // a multi-nonzero fiber, and every CSF slice owns at least one of them.
  const offset_t excess = nnz_ > fibers ? nnz_ - fibers : 0;
  const offset_t multi = s.num_slices - singleton_slices_;
  const offset_t csl = multi > excess ? multi - excess : 0;
  s.csl_slice_fraction = static_cast<double>(csl) / slices;
  return s;
}

std::vector<SliceMass> ModeSketch::slice_cdf() const {
  std::vector<SliceMass> cdf;
  cdf.reserve(hist_.size());
  for (const auto& [slice, count] : hist_) cdf.push_back({slice, count});
  std::sort(cdf.begin(), cdf.end(),
            [](const SliceMass& a, const SliceMass& b) { return a.slice < b.slice; });
  return cdf;
}

std::string ModeSketch::to_string() const {
  std::ostringstream os;
  os << "mode " << mode_ << ": nnz=" << nnz_ << " S=" << num_slices()
     << " S1=" << singleton_slices_ << " max_slice=" << max_slice_nnz_
     << (fiber_exact_ ? " F=" : " F~=") << estimate_fibers();
  return os.str();
}

TensorSketch::TensorSketch(std::vector<index_t> dims) : dims_(std::move(dims)) {
  BCSF_CHECK(!dims_.empty(), "TensorSketch: empty dims");
  const index_t order = static_cast<index_t>(dims_.size());
  modes_.reserve(order);
  for (index_t m = 0; m < order; ++m) modes_.emplace_back(m, order);
}

TensorSketch TensorSketch::build(const SparseTensor& tensor) {
  TensorSketch sketch(tensor.dims());
  sketch.add_tensor(tensor);
  // One-shot builds also record exact fiber counts, which makes the CSL
  // lower bound tight on the policy path: when N >> S even HLL's ~1.6%
  // error on F can swallow (S - S1) entirely and misroute pure-CSL
  // tensors to hbcsf.
  for (ModeSketch& m : sketch.modes_) m.count_exact_fibers(tensor);
  return sketch;
}

void TensorSketch::add(std::span<const index_t> coords, value_t value) {
  BCSF_ASSERT(coords.size() == dims_.size(), "TensorSketch::add: bad coords");
  for (ModeSketch& m : modes_) m.add(coords);
  ++nnz_;
  norm_sq_ += static_cast<double>(value) * static_cast<double>(value);
}

void TensorSketch::add_tensor(const SparseTensor& tensor) {
  BCSF_CHECK(tensor.dims() == dims_, "TensorSketch::add_tensor: dims mismatch");
  const index_t order = tensor.order();
  std::vector<index_t> coord(order);
  for (offset_t z = 0; z < tensor.nnz(); ++z) {
    for (index_t m = 0; m < order; ++m) coord[m] = tensor.coord(m, z);
    add(coord, tensor.value(z));
  }
}

void TensorSketch::merge(const TensorSketch& other) {
  if (!other.initialised()) return;
  if (!initialised()) {
    *this = other;
    return;
  }
  BCSF_CHECK(dims_ == other.dims_, "TensorSketch::merge: dims mismatch");
  for (index_t m = 0; m < order(); ++m) modes_[m].merge(other.modes_[m]);
  nnz_ += other.nnz_;
  norm_sq_ += other.norm_sq_;
}

std::vector<ModeStats> TensorSketch::approx_all_mode_stats() const {
  std::vector<ModeStats> out;
  out.reserve(modes_.size());
  for (const ModeSketch& m : modes_) out.push_back(m.approx_mode_stats());
  return out;
}

std::string TensorSketch::to_string() const {
  std::ostringstream os;
  os << "TensorSketch: nnz=" << nnz_ << " norm_sq=" << norm_sq_;
  for (const ModeSketch& m : modes_) os << "\n  " << m.to_string();
  return os.str();
}

}  // namespace bcsf
