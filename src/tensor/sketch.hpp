// Streaming per-mode structural sketches (DESIGN.md §12).
//
// Every planning decision in the stack -- §V format selection, the Fig-10
// break-even gate, shard pricing, partition cut placement -- is a function
// of per-mode structure: the nnz-per-slice distribution, the fiber count,
// and the slice-mass CDF.  `compute_mode_stats` derives those by sorting a
// copy of the tensor and scanning it, per mode, per call; this file keeps
// the same quantities *incrementally*, so a policy read after warm-up does
// no O(nnz) work at all.
//
// Three primitives per mode orientation:
//  1. Slice-occupancy histogram: an exact hash-map counter keyed by root
//     index (nnz per non-empty slice), plus running scalars (nnz, singleton
//     slices, sum of squared slice counts, max slice).  Also the source of
//     the slice-mass CDF the partitioner cuts against.
//  2. Fiber count-distinct: a HyperLogLog over hashed fiber keys (all
//     coordinates except the leaf mode).  Running register-sum state makes
//     the estimate O(1) to read.  One-shot whole-tensor builds additionally
//     record the EXACT fiber count (the builder can afford a transient hash
//     set; the sketch itself stays sublinear), and that exact count survives
//     merges whose slice ranges are strictly ascending -- the shard path --
//     because every fiber key contains its root index.  Incremental adds
//     and overlapping merges lapse to the HLL estimate.
//  3. Fiber second moment: an AMS-style +/-1 projection with integer
//     counters, giving stddev(nnz/fiber) for the imbalance diagnostic.
//
// Determinism contract: all hashing uses fixed compile-time seeds and the
// splitmix64 finalizer -- never std::random_device, rand() or time().
// Sketch state is therefore a pure function of the multiset of inserted
// (coords, value) pairs, which is what makes record/replay byte-identical
// and shard merges associative.  Every structural field is integer-valued,
// so merges are bitwise-exact in any association; only the value moments
// (norm_sq) are floating point, and those are exact on power-of-two-grid
// inputs (the repo's standard trick for order-independent FP checks).
//
// Thread safety: ModeSketch/TensorSketch are plain value types with no
// internal locking; DynamicSparseTensor guards its sketches with mutex_.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "tensor/sparse_tensor.hpp"
#include "tensor/tensor_stats.hpp"
#include "util/types.hpp"

namespace bcsf {

/// splitmix64 finalizer: the deterministic 64-bit mixer behind every
/// sketch hash.  Constants are fixed at compile time (replay safety).
constexpr std::uint64_t sketch_mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// One (slice index, nonzero count) step of a mode's slice-mass CDF,
/// sorted by slice index.  Prefix sums over these are exactly the slice
/// boundary offsets of the sorted nonzero stream the exact partitioner
/// scans, which is why sketch-placed cuts reproduce its cut offsets.
struct SliceMass {
  index_t slice = 0;
  offset_t nnz = 0;
};

/// Streaming structural sketch of one mode orientation.
class ModeSketch {
 public:
  /// HyperLogLog precision: 2^12 = 4096 registers, standard error
  /// 1.04/sqrt(4096) ~ 1.6% on the fiber count.
  static constexpr unsigned kHllPrecision = 12;
  static constexpr std::size_t kHllRegisters = std::size_t{1} << kHllPrecision;
  /// AMS projection width for the fiber second moment; the relative error
  /// of the F2 estimate is ~sqrt(2/32) ~ 25% (diagnostic-grade only).
  static constexpr std::size_t kAmsCounters = 32;

  ModeSketch() = default;
  /// Sketch for mode `mode` of an order-`order` tensor.
  ModeSketch(index_t mode, index_t order);

  /// Accounts one nonzero; `coords` holds all `order` coordinates.
  /// Lapses the exact fiber count (a lone add cannot know whether it
  /// started a new fiber).
  void add(std::span<const index_t> coords);
  /// Folds another sketch of the same mode in.  All integer state merges
  /// exactly (counter sums, register max), in any association.  Exact
  /// fiber counts add through the merge iff both sides are exact and
  /// this sketch's slice range sits strictly below the other's (disjoint
  /// root ranges imply disjoint fibers); any other shape lapses to HLL.
  /// The ascending-range rule makes exactness association-independent:
  /// a merge sequence stays exact iff every adjacent non-empty pair is
  /// ascending, however the merges are grouped.
  void merge(const ModeSketch& other);
  /// Rescans `tensor` with a transient fiber-hash set and records the
  /// exact distinct-fiber count for it.  Only valid when this sketch was
  /// populated from exactly that tensor (TensorSketch::build does this);
  /// later add()s or overlapping merges lapse the count.
  void count_exact_fibers(const SparseTensor& tensor);

  index_t mode() const { return mode_; }
  offset_t nnz() const { return nnz_; }
  /// S: non-empty slices (exact).
  offset_t num_slices() const { return static_cast<offset_t>(hist_.size()); }
  /// Slices with exactly one nonzero (exact).
  offset_t singleton_slices() const { return singleton_slices_; }
  /// Largest slice's nonzero count (exact; monotone under add/merge).
  offset_t max_slice_nnz() const { return max_slice_nnz_; }
  /// Sum over slices of (nnz in slice)^2 (exact while nnz * max_slice
  /// fits in 64 bits).
  std::uint64_t sum_sq_slice_nnz() const { return sum_sq_slice_nnz_; }
  /// F: non-empty fibers.  Exact after a one-shot build (and across
  /// ascending slice-disjoint merges of exact sketches); otherwise a
  /// HyperLogLog estimate, ~1.6% standard error, clamped to the
  /// structural bounds [S, nnz].  O(1).
  offset_t estimate_fibers() const;
  /// True while estimate_fibers() returns the exact count (vacuously
  /// true for an empty sketch: zero fibers, exactly).
  bool fibers_exact() const { return fiber_exact_; }
  /// Estimated sum over fibers of (nnz in fiber)^2 (AMS, ~25% error).
  double estimate_fiber_sq_sum() const;

  /// Approximate ModeStats with the same semantics as compute_mode_stats.
  /// Exact fields: nnz, num_slices, singleton_slice_fraction, and the
  /// count/sum/mean/stddev/max of nnz_per_slice.  Estimated fields:
  /// num_fibers, nnz_per_fiber (mean/stddev), fibers_per_slice mean, and
  /// csl_slice_fraction, which is the conservative lower bound
  ///   max(0, S - S1 - (nnz - F)) / S
  /// (every multi-nonzero fiber forces at least one excess nonzero, so
  /// CSF slices number at most nnz - F; the bound is tight when excess
  /// nonzeros concentrate in few slices and exact when all fibers are
  /// singletons AND F itself is exact -- which fibers_exact() guarantees
  /// on the policy path, where sketches come from one-shot base builds).
  /// Unmaintained distribution tails (min/p50/p99/gini) are left zero --
  /// no planning consumer reads them.
  ModeStats approx_mode_stats() const;

  /// The slice-mass CDF: per non-empty slice, its exact nonzero count,
  /// sorted by slice index.  O(S log S); feeds partition cut placement.
  std::vector<SliceMass> slice_cdf() const;

  std::string to_string() const;

 private:
  void hll_observe(std::uint64_t hash);
  std::uint64_t fiber_hash(std::span<const index_t> coords) const;

  index_t mode_ = 0;
  /// Non-leaf modes of mode_order_for(mode, order), in orientation order:
  /// the coordinates that identify a fiber.
  std::vector<index_t> fiber_modes_;

  // --- slice occupancy (exact) ---
  std::unordered_map<index_t, offset_t> hist_;  // root index -> nnz
  offset_t nnz_ = 0;
  offset_t singleton_slices_ = 0;
  offset_t max_slice_nnz_ = 0;
  std::uint64_t sum_sq_slice_nnz_ = 0;

  // --- fiber count-distinct (HyperLogLog) ---
  std::vector<std::uint8_t> hll_regs_;  // kHllRegisters once initialised
  double hll_inv_sum_ = 0.0;            // sum over registers of 2^-reg
  std::uint32_t hll_zero_regs_ = 0;

  // --- exact fiber count (one-shot builds, ascending merges) ---
  offset_t exact_fibers_ = 0;  // meaningful only while fiber_exact_
  bool fiber_exact_ = true;    // an empty sketch has exactly 0 fibers
  /// Observed root-index range (valid when nnz_ > 0): the ascending-merge
  /// check that keeps exact_fibers_ additive across slice-disjoint shards.
  index_t min_slice_ = 0;
  index_t max_slice_ = 0;

  // --- fiber second moment (AMS, integer counters) ---
  std::vector<std::int64_t> ams_;  // kAmsCounters once initialised
};

/// Whole-tensor sketch: one ModeSketch per mode plus value moments.
/// Maintained by DynamicSparseTensor across apply/replace_base; shard
/// sketches merge into the whole-tensor sketch, so the serving layer
/// never rescans nonzeros to plan.
class TensorSketch {
 public:
  TensorSketch() = default;
  explicit TensorSketch(std::vector<index_t> dims);

  /// Builds a sketch of every stored entry of `tensor` (duplicates from
  /// uncoalesced deltas each count once, matching the stored-entry
  /// semantics of DynamicSparseTensor).
  static TensorSketch build(const SparseTensor& tensor);

  void add(std::span<const index_t> coords, value_t value);
  void add_tensor(const SparseTensor& tensor);
  void merge(const TensorSketch& other);

  bool initialised() const { return !dims_.empty(); }
  index_t order() const { return static_cast<index_t>(dims_.size()); }
  const std::vector<index_t>& dims() const { return dims_; }
  offset_t nnz() const { return nnz_; }
  /// Sum of squared stored values.  For a base + uncoalesced delta split
  /// B + D this misses the 2<base,delta> cross term of the coalesced
  /// norm; |cross| <= 2*sqrt(B*D) (Cauchy-Schwarz), the stated kStats
  /// error bound, which collapses to 0 right after compaction.
  double norm_sq() const { return norm_sq_; }

  const ModeSketch& mode(index_t m) const { return modes_.at(m); }
  ModeStats approx_mode_stats(index_t m) const {
    return modes_.at(m).approx_mode_stats();
  }
  std::vector<ModeStats> approx_all_mode_stats() const;

  std::string to_string() const;

 private:
  std::vector<index_t> dims_;
  std::vector<ModeSketch> modes_;
  offset_t nnz_ = 0;
  double norm_sq_ = 0.0;
};

}  // namespace bcsf
