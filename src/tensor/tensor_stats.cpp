#include "tensor/tensor_stats.hpp"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <span>
#include <sstream>

#include "util/error.hpp"

namespace bcsf {

namespace {
// Every O(nnz) exact-stats scan bumps this counter.  The serving layer's
// sketch-backed policy path must never land here after warm-up; the
// regression suite asserts the count stays flat across a full serve
// lifecycle (DESIGN.md §12).
std::atomic<std::uint64_t> g_exact_stat_scans{0};
}  // namespace

std::uint64_t exact_stat_scan_count() {
  return g_exact_stat_scans.load(std::memory_order_relaxed);
}

SliceFiberCounts count_slices_and_fibers(const SparseTensor& sorted,
                                         const ModeOrder& order) {
  BCSF_CHECK(order.size() == sorted.order(),
             "count_slices_and_fibers: bad mode order");
  SliceFiberCounts out;
  const offset_t m = sorted.nnz();
  if (m == 0) return out;

  const index_t root = order.front();
  const index_t n_modes = sorted.order();

  // A new fiber starts when any mode except the leaf changes; a new slice
  // starts when the root mode changes.
  auto same_fiber = [&](offset_t a, offset_t b) {
    for (index_t level = 0; level + 1 < n_modes; ++level) {
      if (sorted.coord(order[level], a) != sorted.coord(order[level], b)) {
        return false;
      }
    }
    return true;
  };

  offset_t slice_start = 0;
  offset_t fiber_start = 0;
  out.slice_index.push_back(sorted.coord(root, 0));
  out.slice_fiber_begin.push_back(0);
  for (offset_t z = 1; z <= m; ++z) {
    const bool end_of_data = (z == m);
    const bool new_fiber = end_of_data || !same_fiber(z - 1, z);
    const bool new_slice =
        end_of_data || sorted.coord(root, z) != sorted.coord(root, z - 1);
    if (new_fiber) {
      out.fiber_nnz.push_back(z - fiber_start);
      fiber_start = z;
    }
    if (new_slice) {
      out.slice_nnz.push_back(z - slice_start);
      slice_start = z;
      if (!end_of_data) {
        out.slice_index.push_back(sorted.coord(root, z));
        out.slice_fiber_begin.push_back(out.fiber_nnz.size());
      }
    }
  }
  out.slice_fiber_begin.push_back(out.fiber_nnz.size());
  return out;
}

namespace {

// Scans a tensor through a sorted permutation -- the shared-buffer variant
// of count_slices_and_fibers that lets compute_all_mode_stats reuse one
// index array across modes instead of copying and re-sorting the nonzeros
// per mode.
SliceFiberCounts count_slices_and_fibers_perm(const SparseTensor& tensor,
                                              const ModeOrder& order,
                                              std::span<const offset_t> perm) {
  SliceFiberCounts out;
  const offset_t m = static_cast<offset_t>(perm.size());
  if (m == 0) return out;

  const index_t root = order.front();
  const index_t n_modes = tensor.order();
  auto same_fiber = [&](offset_t a, offset_t b) {
    for (index_t level = 0; level + 1 < n_modes; ++level) {
      if (tensor.coord(order[level], perm[a]) !=
          tensor.coord(order[level], perm[b])) {
        return false;
      }
    }
    return true;
  };

  offset_t slice_start = 0;
  offset_t fiber_start = 0;
  out.slice_index.push_back(tensor.coord(root, perm[0]));
  out.slice_fiber_begin.push_back(0);
  for (offset_t z = 1; z <= m; ++z) {
    const bool end_of_data = (z == m);
    const bool new_fiber = end_of_data || !same_fiber(z - 1, z);
    const bool new_slice = end_of_data || tensor.coord(root, perm[z]) !=
                                              tensor.coord(root, perm[z - 1]);
    if (new_fiber) {
      out.fiber_nnz.push_back(z - fiber_start);
      fiber_start = z;
    }
    if (new_slice) {
      out.slice_nnz.push_back(z - slice_start);
      slice_start = z;
      if (!end_of_data) {
        out.slice_index.push_back(tensor.coord(root, perm[z]));
        out.slice_fiber_begin.push_back(out.fiber_nnz.size());
      }
    }
  }
  out.slice_fiber_begin.push_back(out.fiber_nnz.size());
  return out;
}

// Distribution summaries and §V slice classification from a completed
// slice/fiber scan; shared by both exact entry points.
void fill_mode_stats(ModeStats& s, const SliceFiberCounts& c) {
  s.num_slices = c.slice_nnz.size();
  s.num_fibers = c.fiber_nnz.size();
  s.nnz_per_slice = compute_stats(std::span<const offset_t>(c.slice_nnz));
  s.nnz_per_fiber = compute_stats(std::span<const offset_t>(c.fiber_nnz));

  offset_vec fibers_per_slice(s.num_slices);
  for (offset_t slc = 0; slc < s.num_slices; ++slc) {
    fibers_per_slice[slc] =
        c.slice_fiber_begin[slc + 1] - c.slice_fiber_begin[slc];
  }
  s.fibers_per_slice =
      compute_stats(std::span<const offset_t>(fibers_per_slice));

  offset_t singleton_slices = 0;
  offset_t csl_slices = 0;
  for (offset_t slc = 0; slc < s.num_slices; ++slc) {
    if (c.slice_nnz[slc] == 1) {
      ++singleton_slices;
      continue;  // classified as COO in HB-CSF, not CSL
    }
    bool all_singleton_fibers = true;
    for (offset_t f = c.slice_fiber_begin[slc]; f < c.slice_fiber_begin[slc + 1];
         ++f) {
      if (c.fiber_nnz[f] != 1) {
        all_singleton_fibers = false;
        break;
      }
    }
    if (all_singleton_fibers) ++csl_slices;
  }
  s.singleton_slice_fraction =
      static_cast<double>(singleton_slices) / static_cast<double>(s.num_slices);
  s.csl_slice_fraction =
      static_cast<double>(csl_slices) / static_cast<double>(s.num_slices);
}

}  // namespace

ModeStats compute_mode_stats(const SparseTensor& tensor, index_t mode) {
  ModeStats s;
  s.mode = mode;
  s.nnz = tensor.nnz();
  if (tensor.nnz() == 0) return s;
  g_exact_stat_scans.fetch_add(1, std::memory_order_relaxed);

  SparseTensor copy = tensor;
  const ModeOrder order = mode_order_for(mode, tensor.order());
  copy.sort(order);
  const SliceFiberCounts c = count_slices_and_fibers(copy, order);
  fill_mode_stats(s, c);
  return s;
}

std::vector<ModeStats> compute_all_mode_stats(const SparseTensor& tensor) {
  std::vector<ModeStats> all;
  all.reserve(tensor.order());
  // One permutation buffer, re-sorted per mode: the nonzero arrays are
  // never copied, and the allocation is paid once instead of per mode.
  std::vector<offset_t> perm(tensor.nnz());
  for (index_t mode = 0; mode < tensor.order(); ++mode) {
    ModeStats s;
    s.mode = mode;
    s.nnz = tensor.nnz();
    if (tensor.nnz() == 0) {
      all.push_back(s);
      continue;
    }
    g_exact_stat_scans.fetch_add(1, std::memory_order_relaxed);
    const ModeOrder order = mode_order_for(mode, tensor.order());
    std::iota(perm.begin(), perm.end(), offset_t{0});
    std::sort(perm.begin(), perm.end(), [&](offset_t a, offset_t b) {
      for (index_t level : order) {
        const index_t ca = tensor.coord(level, a);
        const index_t cb = tensor.coord(level, b);
        if (ca != cb) return ca < cb;
      }
      return false;
    });
    fill_mode_stats(s, count_slices_and_fibers_perm(tensor, order, perm));
    all.push_back(s);
  }
  return all;
}

std::string ModeStats::to_string() const {
  std::ostringstream os;
  os << "mode " << mode << ": nnz=" << nnz << " S=" << num_slices
     << " F=" << num_fibers << " nnz/slc{" << nnz_per_slice.to_string()
     << "} nnz/fbr{" << nnz_per_fiber.to_string() << "}"
     << " coo_frac=" << singleton_slice_fraction
     << " csl_frac=" << csl_slice_fraction;
  return os.str();
}

}  // namespace bcsf
