#include "tensor/generator.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "util/error.hpp"

namespace bcsf {

namespace {

/// Samples `count` distinct indices from [0, n) (count <= n).
/// For small count relative to n uses rejection; otherwise a partial
/// Fisher-Yates over the full range.
index_vec sample_distinct(index_t n, offset_t count, Rng& rng) {
  BCSF_ASSERT(count <= n, "sample_distinct: count exceeds domain");
  index_vec out;
  out.reserve(count);
  if (count * 3 < n) {
    std::unordered_set<index_t> used;
    used.reserve(count * 2);
    while (out.size() < count) {
      const index_t v = rng.uniform_index(n);
      if (used.insert(v).second) out.push_back(v);
    }
  } else {
    index_vec all(n);
    std::iota(all.begin(), all.end(), index_t{0});
    for (offset_t i = 0; i < count; ++i) {
      const auto j = static_cast<index_t>(rng.uniform(i, n - 1));
      std::swap(all[i], all[j]);
      out.push_back(all[i]);
    }
  }
  return out;
}

value_t sample_value(Rng& rng) {
  return static_cast<value_t>(rng.uniform_real(0.5, 1.5));
}

}  // namespace

SparseTensor generate_power_law(const PowerLawConfig& config) {
  BCSF_CHECK(config.dims.size() >= 2, "generate_power_law: order must be >= 2");
  BCSF_CHECK(config.target_nnz > 0, "generate_power_law: target_nnz must be > 0");
  const index_t order = static_cast<index_t>(config.dims.size());
  const index_t slice_dim = config.dims.front();
  const index_t leaf_dim = config.dims.back();
  Rng rng(config.seed);

  SparseTensor t(config.dims);
  t.reserve(config.target_nnz);

  // --- 1. draw slice budgets from a bounded Pareto until target reached.
  const double max_slice =
      std::max(1.0, config.max_slice_frac * static_cast<double>(config.target_nnz));
  offset_vec slice_budget;
  offset_t singleton_budget = static_cast<offset_t>(
      config.singleton_slice_frac * static_cast<double>(config.target_nnz));
  // Each singleton slice consumes one mode-0 index; clamp so structured
  // slices still have room (small mode-0 dimensions would otherwise make
  // the request unsatisfiable).
  singleton_budget = std::min<offset_t>(singleton_budget, slice_dim / 2);
  offset_t structured_target = config.target_nnz - singleton_budget;
  offset_t total = 0;
  while (total < structured_target &&
         slice_budget.size() + singleton_budget < slice_dim) {
    auto w = static_cast<offset_t>(
        std::llround(rng.pareto(config.slice_alpha, 1.0, max_slice)));
    w = std::max<offset_t>(1, std::min<offset_t>(w, structured_target - total));
    slice_budget.push_back(w);
    total += w;
  }
  // If the slice dimension was exhausted before reaching the target (small
  // mode-0 dimension, e.g. chicago-crime's 6K), scale every budget
  // proportionally: this preserves the drawn power-law *shape* (a uniform
  // top-up would flatten the tail and erase the Table II stddev
  // signatures) while landing near target_nnz.
  if (!slice_budget.empty() && total < structured_target) {
    const double scale = static_cast<double>(structured_target) /
                         static_cast<double>(total);
    total = 0;
    for (auto& w : slice_budget) {
      w = std::max<offset_t>(
          1, static_cast<offset_t>(std::llround(static_cast<double>(w) * scale)));
      total += w;
    }
  }

  const offset_t n_structured = slice_budget.size();
  const offset_t n_slices = n_structured + singleton_budget;
  BCSF_CHECK(n_slices <= slice_dim,
             "generate_power_law: mode-0 dimension " << slice_dim
                 << " too small for " << n_slices << " active slices");
  index_vec slice_ids = sample_distinct(slice_dim, n_slices, rng);

  // --- 2. fill each structured slice with power-law fibers.
  const offset_t fiber_cap =
      std::min<offset_t>(std::max<offset_t>(config.max_fiber_len, 1), leaf_dim);
  std::vector<index_t> coord(order);
  std::unordered_set<std::uint64_t> fiber_keys;  // dedupe fibers within slice

  // Number of distinct middle-coordinate tuples available per slice; once a
  // slice has used them all, no more fibers fit and its remaining budget is
  // dropped (prevents an infinite rejection loop on tiny middle modes).
  double middle_space = 1.0;
  for (index_t m = 1; m + 1 < order; ++m) {
    middle_space *= static_cast<double>(config.dims[m]);
  }

  for (offset_t s = 0; s < n_structured; ++s) {
    coord[0] = slice_ids[s];
    offset_t remaining = slice_budget[s];
    fiber_keys.clear();
    if (order == 2) {
      // A matrix row is both the slice and the fiber: emit one run of
      // distinct column indices.
      const offset_t len = std::min<offset_t>(remaining, leaf_dim);
      for (index_t k : sample_distinct(leaf_dim, len, rng)) {
        coord[1] = k;
        t.push_back(coord, sample_value(rng));
      }
      continue;
    }
    while (remaining > 0) {
      if (static_cast<double>(fiber_keys.size()) >= middle_space) {
        break;  // slice is structurally full
      }
      // fiber length
      offset_t len;
      if (config.fixed_fiber_len > 0) {
        len = std::min<offset_t>(config.fixed_fiber_len, remaining);
      } else {
        len = static_cast<offset_t>(
            std::llround(rng.pareto(config.fiber_alpha, 1.0,
                                    static_cast<double>(fiber_cap))));
        // A heavy slice with few remaining fiber slots must draw longer
        // fibers or its budget cannot fit (e.g. nell2: 281 possible fibers
        // per slice but thousands of nonzeros).
        const double slots_left =
            middle_space - static_cast<double>(fiber_keys.size());
        const auto need = static_cast<offset_t>(
            std::ceil(static_cast<double>(remaining) / slots_left));
        len = std::max(len, need);
        len = std::min<offset_t>(len, leaf_dim);
        len = std::max<offset_t>(1, std::min(len, remaining));
      }
      // middle coordinates identify the fiber; retry on collision.
      std::uint64_t key = 0;
      for (index_t m = 1; m + 1 < order; ++m) {
        coord[m] = rng.uniform_index(config.dims[m]);
        key = key * 0x9e3779b97f4a7c15ULL + coord[m] + 1;
      }
      if (order > 2 && !fiber_keys.insert(key).second) continue;

      for (index_t k : sample_distinct(leaf_dim, len, rng)) {
        coord[order - 1] = k;
        t.push_back(coord, sample_value(rng));
      }
      remaining -= len;
    }
  }

  // --- 3. singleton slices (one nonzero each) for the ultra-sparse tail.
  for (offset_t s = n_structured; s < n_slices; ++s) {
    coord[0] = slice_ids[s];
    for (index_t m = 1; m < order; ++m) {
      coord[m] = rng.uniform_index(config.dims[m]);
    }
    t.push_back(coord, sample_value(rng));
  }

  return t;
}

SparseTensor generate_uniform(const std::vector<index_t>& dims, offset_t nnz,
                              std::uint64_t seed) {
  BCSF_CHECK(!dims.empty(), "generate_uniform: dims empty");
  double cells = 1.0;
  for (index_t d : dims) cells *= static_cast<double>(d);
  BCSF_CHECK(static_cast<double>(nnz) <= cells,
             "generate_uniform: nnz exceeds tensor size");
  Rng rng(seed);
  SparseTensor t(dims);
  t.reserve(nnz);
  std::unordered_set<std::uint64_t> used;
  used.reserve(nnz * 2);
  std::vector<index_t> coord(dims.size());
  while (t.nnz() < nnz) {
    std::uint64_t key = 0;
    for (std::size_t m = 0; m < dims.size(); ++m) {
      coord[m] = rng.uniform_index(dims[m]);
      key = key * 0x9e3779b97f4a7c15ULL + coord[m] + 1;
    }
    if (!used.insert(key).second) continue;
    t.push_back(coord, sample_value(rng));
  }
  return t;
}

SparseTensor generate_low_rank(const std::vector<index_t>& dims, rank_t rank,
                               offset_t nnz, value_t noise,
                               std::uint64_t seed) {
  BCSF_CHECK(rank > 0, "generate_low_rank: rank must be positive");
  Rng rng(seed);
  // Random nonnegative factors keep the sampled values away from zero.
  std::vector<std::vector<value_t>> factors(dims.size());
  for (std::size_t m = 0; m < dims.size(); ++m) {
    factors[m].resize(static_cast<std::size_t>(dims[m]) * rank);
    for (auto& v : factors[m]) {
      v = static_cast<value_t>(rng.uniform_real(0.1, 1.0));
    }
  }
  SparseTensor t = generate_uniform(dims, nnz, seed ^ 0xabcdef12ULL);
  for (offset_t z = 0; z < t.nnz(); ++z) {
    value_t acc = 0.0F;
    for (rank_t r = 0; r < rank; ++r) {
      value_t prod = 1.0F;
      for (index_t m = 0; m < t.order(); ++m) {
        prod *= factors[m][static_cast<std::size_t>(t.coord(m, z)) * rank + r];
      }
      acc += prod;
    }
    t.value(z) = acc + (noise > 0.0F ? rng.normal(0.0F, noise) : 0.0F);
  }
  return t;
}

}  // namespace bcsf
