#include "tensor/partitioner.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "util/error.hpp"

namespace bcsf {

namespace {

// Equal-nnz cut points over a sorted nonzero stream whose slice boundary
// offsets are `starts` (with a trailing nnz sentinel), snapped to the
// nearest boundary when one is within a quarter of the per-shard budget;
// a cut left mid-slice SPLITS that slice across two shards (the paper's
// slc-split, lifted to tensor granularity).  Every cut is clamped to
// [previous cut + 1, nnz - remaining shards], which guarantees exactly k
// strictly non-empty shards for any k <= nnz.  Shared by the sorting and
// the sketch-backed partitioners, so their cuts are always identical.
offset_vec place_cuts(offset_t nnz, offset_t k, const offset_vec& starts) {
  const offset_t budget = ceil_div<offset_t>(nnz, k);
  const offset_t slack = budget / 4;
  offset_vec cuts;
  cuts.push_back(0);
  for (offset_t i = 1; i < k; ++i) {
    const offset_t lo = cuts.back() + 1;  // previous shard stays non-empty
    const offset_t hi = nnz - (k - i);    // room for the remaining shards
    const offset_t raw = std::clamp(i * nnz / k, lo, hi);
    auto it = std::lower_bound(starts.begin(), starts.end(), raw);
    offset_t cut = raw;
    offset_t best = slack + 1;
    for (const auto candidate : {it, it == starts.begin() ? it : it - 1}) {
      if (candidate == starts.end()) continue;
      const offset_t boundary = *candidate;
      if (boundary < lo || boundary > hi) continue;
      const offset_t dist = boundary > raw ? boundary - raw : raw - boundary;
      if (dist <= slack && dist < best) {
        best = dist;
        cut = boundary;
      }
    }
    cuts.push_back(cut);
  }
  cuts.push_back(nnz);
  return cuts;
}

}  // namespace

std::size_t route_slice(std::span<const index_t> shard_slice_begins,
                        index_t slice) {
  BCSF_CHECK(!shard_slice_begins.empty(), "route_slice: empty routing table");
  // Last shard whose slice_begin <= slice: for a split slice that is the
  // shard holding the slice's TAIL, so freshly routed nonzeros pile onto
  // the shard already charged for the heavy slice's overflow.
  std::size_t lo = 0;
  std::size_t hi = shard_slice_begins.size();
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (shard_slice_begins[mid] <= slice) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::vector<SparseTensor> split_updates(
    const std::vector<index_t>& dims, index_t mode,
    std::span<const index_t> shard_slice_begins, const SparseTensor& updates) {
  BCSF_CHECK(updates.dims() == dims, "split_updates: update dims mismatch");
  BCSF_CHECK(mode < dims.size(), "split_updates: mode out of range");
  std::vector<SparseTensor> out;
  out.reserve(shard_slice_begins.size());
  for (std::size_t s = 0; s < shard_slice_begins.size(); ++s) {
    out.emplace_back(dims);
  }

  const index_t order = updates.order();
  std::vector<index_t> coords(order);
  for (offset_t z = 0; z < updates.nnz(); ++z) {
    for (index_t m = 0; m < order; ++m) coords[m] = updates.coord(m, z);
    out[route_slice(shard_slice_begins, coords[mode])].push_back(
        coords, updates.value(z));
  }
  return out;
}

std::size_t TensorPartition::shard_for_slice(index_t slice) const {
  return route_slice(slice_begins, slice);
}

std::vector<SparseTensor> TensorPartition::split(
    const SparseTensor& updates) const {
  return split_updates(dims, mode, slice_begins, updates);
}

bool TensorPartition::disjoint_slice_ranges() const {
  for (std::size_t s = 0; s + 1 < shards.size(); ++s) {
    // A split slice shows up as shard s's end overlapping shard s+1's
    // begin (the partitioner keeps ranges sorted and contiguous).
    if (shards[s].slice_end > shards[s + 1].slice_begin) return false;
  }
  return true;
}

index_vec TensorPartition::owned_row_begins() const {
  index_vec owned;
  owned.reserve(shards.size() + 1);
  owned.push_back(0);
  for (std::size_t s = 1; s < shards.size(); ++s) {
    owned.push_back(shards[s].slice_begin);
  }
  owned.push_back(dims[mode]);
  return owned;
}

offset_t TensorPartition::max_shard_nnz() const {
  offset_t best = 0;
  for (const TensorShard& s : shards) best = std::max(best, s.nnz());
  return best;
}

offset_t TensorPartition::min_shard_nnz() const {
  offset_t best = total_nnz;
  for (const TensorShard& s : shards) best = std::min(best, s.nnz());
  return best;
}

std::string TensorPartition::to_string() const {
  std::ostringstream os;
  os << shards.size() << " shard" << (shards.size() == 1 ? "" : "s")
     << " along mode " << mode << ", nnz";
  for (std::size_t s = 0; s < shards.size(); ++s) {
    os << (s == 0 ? " " : "/") << shards[s].nnz();
  }
  return os.str();
}

TensorPartition partition_tensor(const SparseTensor& tensor, index_t mode,
                                 unsigned shards) {
  BCSF_CHECK(tensor.nnz() > 0, "partition_tensor: empty tensor");
  BCSF_CHECK(mode < tensor.order(),
             "partition_tensor: mode " << mode << " out of range for order "
                                       << tensor.order());
  const offset_t nnz = tensor.nnz();
  const offset_t k = std::clamp<offset_t>(shards == 0 ? 1 : shards, 1, nnz);

  // Root-mode-major order groups each slice's nonzeros contiguously, so a
  // shard is one contiguous run of the sorted stream.  Copy only when a
  // sort is actually needed -- generator/FROSTT tensors often arrive
  // sorted, and an O(nnz) scratch copy on the register path would double
  // transient memory for nothing.
  const ModeOrder order = mode_order_for(mode, tensor.order());
  SparseTensor scratch;
  const SparseTensor* source = &tensor;
  if (!tensor.is_sorted(order)) {
    scratch = tensor;
    scratch.sort(order);
    source = &scratch;
  }
  const SparseTensor& sorted = *source;

  // Slice boundaries of the sorted stream: starts[i] is the offset where
  // the i-th non-empty slice begins.
  offset_vec starts;
  for (offset_t z = 0; z < nnz; ++z) {
    if (z == 0 || sorted.coord(mode, z) != sorted.coord(mode, z - 1)) {
      starts.push_back(z);
    }
  }
  starts.push_back(nnz);

  // Cut placement lives in place_cuts (shared with the sketch-backed
  // overload below, which must reproduce these cuts exactly).
  const offset_vec cuts = place_cuts(nnz, k, starts);

  TensorPartition partition;
  partition.mode = mode;
  partition.dims = tensor.dims();
  partition.total_nnz = nnz;
  partition.shards.reserve(cuts.size() - 1);

  std::vector<index_t> coords(tensor.order());
  for (std::size_t s = 0; s + 1 < cuts.size(); ++s) {
    const offset_t begin = cuts[s];
    const offset_t end = cuts[s + 1];
    SparseTensor piece(tensor.dims());
    piece.reserve(end - begin);
    for (offset_t z = begin; z < end; ++z) {
      for (index_t m = 0; m < tensor.order(); ++m) {
        coords[m] = sorted.coord(m, z);
      }
      piece.push_back(coords, sorted.value(z));
    }
    TensorShard shard;
    shard.slice_begin = sorted.coord(mode, begin);
    shard.slice_end = sorted.coord(mode, end - 1) + 1;
    shard.tensor = share_tensor(std::move(piece));
    partition.slice_begins.push_back(shard.slice_begin);
    partition.shards.push_back(std::move(shard));
  }
  return partition;
}

TensorPartition partition_tensor(const SparseTensor& tensor, index_t mode,
                                 unsigned shards, const ModeSketch& sketch) {
  BCSF_CHECK(tensor.nnz() > 0, "partition_tensor: empty tensor");
  BCSF_CHECK(mode < tensor.order(),
             "partition_tensor: mode " << mode << " out of range for order "
                                       << tensor.order());
  BCSF_CHECK(sketch.mode() == mode && sketch.nnz() == tensor.nnz(),
             "partition_tensor: sketch does not describe mode " << mode
                                                                << " of this tensor");
  const offset_t nnz = tensor.nnz();
  const offset_t k = std::clamp<offset_t>(shards == 0 ? 1 : shards, 1, nnz);

  // The sketch's slice-occupancy histogram is exact, so its prefix sums
  // ARE the slice boundary offsets of the (never materialized) sorted
  // stream -- the same `starts` array the sorting path scans for.
  const std::vector<SliceMass> cdf = sketch.slice_cdf();
  offset_vec starts;
  starts.reserve(cdf.size() + 1);
  offset_t acc = 0;
  for (const SliceMass& s : cdf) {
    starts.push_back(acc);
    acc += s.nnz;
  }
  BCSF_CHECK(acc == nnz, "partition_tensor: sketch slice masses sum to "
                             << acc << ", tensor has " << nnz);
  starts.push_back(nnz);

  const offset_vec cuts = place_cuts(nnz, k, starts);

  // Root-mode slice containing virtual position `pos` of the sorted
  // stream (for shard slice ranges).
  auto slice_at = [&](offset_t pos) {
    const auto it = std::upper_bound(starts.begin(), starts.end(), pos);
    return cdf[static_cast<std::size_t>(it - starts.begin()) - 1].slice;
  };

  // One bucketing pass in input order: a nonzero's virtual position is
  // its slice's start offset plus the count of same-slice nonzeros seen
  // before it, which is exactly where the sorting path would have placed
  // it (up to intra-slice order, which no consumer depends on).
  const std::size_t num_shards = static_cast<std::size_t>(cuts.size()) - 1;
  std::vector<SparseTensor> pieces;
  pieces.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    pieces.emplace_back(tensor.dims());
    pieces[s].reserve(cuts[s + 1] - cuts[s]);
  }
  std::unordered_map<index_t, offset_t> next_pos;  // slice -> next virtual pos
  next_pos.reserve(cdf.size());
  for (std::size_t i = 0; i < cdf.size(); ++i) {
    next_pos.emplace(cdf[i].slice, starts[i]);
  }
  std::vector<index_t> coords(tensor.order());
  for (offset_t z = 0; z < nnz; ++z) {
    for (index_t m = 0; m < tensor.order(); ++m) coords[m] = tensor.coord(m, z);
    const auto it = next_pos.find(coords[mode]);
    BCSF_CHECK(it != next_pos.end(),
               "partition_tensor: slice " << coords[mode] << " missing from sketch");
    const offset_t vpos = it->second++;
    const std::size_t s =
        static_cast<std::size_t>(std::upper_bound(cuts.begin(), cuts.end(), vpos) -
                                 cuts.begin()) -
        1;
    pieces[s].push_back(coords, tensor.value(z));
  }

  TensorPartition partition;
  partition.mode = mode;
  partition.dims = tensor.dims();
  partition.total_nnz = nnz;
  partition.shards.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    TensorShard shard;
    shard.slice_begin = slice_at(cuts[s]);
    shard.slice_end = slice_at(cuts[s + 1] - 1) + 1;
    shard.tensor = share_tensor(std::move(pieces[s]));
    partition.slice_begins.push_back(shard.slice_begin);
    partition.shards.push_back(std::move(shard));
  }
  return partition;
}

PartitionPtr share_partition(TensorPartition&& partition) {
  return std::make_shared<const TensorPartition>(std::move(partition));
}

}  // namespace bcsf
