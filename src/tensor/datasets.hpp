// Registry of the paper's evaluation datasets (Table III) as scaled-down
// synthetic twins.
//
// The real FROSTT / HaTen2 tensors hold 3M-144M nonzeros and are not
// available offline, so each entry pairs the paper's published metadata
// (order, dimensions, nonzeros, density, and the Table II load-imbalance
// signature) with a PowerLawConfig whose generated twin reproduces the
// *qualitative* signature at roughly 1/100 scale: heavy slices for nell2
// and darpa, singleton fibers for flick and freebase, short mode-3 for
// freebase, and so on.  Real `.tns` downloads can replace the twins via
// read_tns_file without touching any benchmark.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "tensor/generator.hpp"
#include "tensor/sparse_tensor.hpp"
#include "util/types.hpp"

namespace bcsf {

/// Published per-tensor numbers from Table II (plain GPU-CSF on a P100,
/// mode 1, R = 32).  Only the seven 3-order tensors have an entry.
struct TableIIRef {
  double gflops = 0.0;
  double achieved_occupancy_pct = 0.0;
  double sm_efficiency_pct = 0.0;
  double l2_hit_rate_pct = 0.0;
  double stdev_nnz_per_slice = 0.0;
  double stdev_nnz_per_fiber = 0.0;
};

struct DatasetSpec {
  std::string name;        ///< short key used on bench command lines
  std::string full_name;   ///< e.g. "delicious-3d (FROSTT)"
  index_t order = 3;

  std::vector<std::uint64_t> paper_dims;  ///< Table III dimensions
  std::uint64_t paper_nnz = 0;            ///< Table III #Nonzeros
  double paper_density = 0.0;             ///< Table III density

  PowerLawConfig twin;  ///< scaled synthetic twin generator config

  std::optional<TableIIRef> table2;  ///< present for the 3-order tensors
};

/// All twelve datasets in Table III order:
/// deli, nell1, nell2, flick-3d, fr_m, fr_s, darpa,
/// nips, enron, ch-cr, flick-4d, uber.
const std::vector<DatasetSpec>& paper_datasets();

/// The seven 3-order tensors (the GPU-format studies of Figs 5-10, 14, 15).
std::vector<std::string> three_order_dataset_names();

/// All twelve names in Table III order.
std::vector<std::string> all_dataset_names();

/// Lookup by short name; throws bcsf::Error if unknown.
const DatasetSpec& dataset_spec(const std::string& name);

/// Generates the scaled twin for a spec (deterministic per spec seed).
SparseTensor generate_dataset(const DatasetSpec& spec);
SparseTensor generate_dataset(const std::string& name);

}  // namespace bcsf
