// Mode-aware nnz-balanced tensor partitioning (DESIGN.md §8).
//
// The paper's load-balance insight -- split heavy fibers/slices into
// bounded blocks so no execution unit drowns (§IV) -- applied one level
// up: split one TENSOR into K shards of near-equal nonzero count, so no
// single plan build, kernel run, or compaction unit drowns either.  A
// shard is a contiguous range of root-mode slices; a slice heavier than
// the per-shard budget is split across shards at nonzero granularity,
// exactly the slc-split move of B-CSF at tensor granularity.
//
// Every operation the plan layer serves (MTTKRP, TTV, FIT) is linear in
// the tensor values, and the shards partition the nonzeros, so
//
//     op(tensor) = sum over shards of op(shard)
//
// holds exactly (in exact arithmetic; the consumers reduce partials in
// double).  Shards keep the FULL tensor dims -- a shard is the same
// tensor with most slices empty -- so factor matrices, outputs, and every
// existing kernel work unchanged per shard.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "tensor/sketch.hpp"
#include "tensor/sparse_tensor.hpp"
#include "util/types.hpp"

namespace bcsf {

/// Routing core shared by TensorPartition::shard_for_slice and the
/// serving layer's per-shard state (ONE implementation, so delta
/// routing can never drift from shard ownership): index of the LAST
/// entry of the ascending `shard_slice_begins` table that is <= `slice`,
/// 0 when the slice precedes every entry.  O(log K).
std::size_t route_slice(std::span<const index_t> shard_slice_begins,
                        index_t slice);

/// Splits an additive update batch into one COO batch per shard by
/// routing each nonzero's `mode` coordinate through route_slice.
/// result[s] may be empty for shards the batch does not touch.
std::vector<SparseTensor> split_updates(
    const std::vector<index_t>& dims, index_t mode,
    std::span<const index_t> shard_slice_begins, const SparseTensor& updates);

/// One shard: a frozen sub-tensor holding the nonzeros of a contiguous
/// root-mode slice range.  When a heavy slice was split, the boundary
/// slice's index appears in TWO consecutive shards' [slice_begin,
/// slice_end) ranges; routing (shard_for_slice) stays deterministic.
struct TensorShard {
  index_t slice_begin = 0;  ///< first root-mode slice index covered
  index_t slice_end = 0;    ///< one past the last covered (exclusive)
  TensorPtr tensor;         ///< full-dims sub-tensor (never null/empty)

  offset_t nnz() const { return tensor ? tensor->nnz() : 0; }
};

/// An nnz-balanced partition of one tensor along one mode.  Immutable
/// after construction; cheap to copy through the shared_ptr alias below.
struct TensorPartition {
  index_t mode = 0;            ///< root mode the slice ranges refer to
  std::vector<index_t> dims;   ///< dims of the source tensor (== each shard's)
  offset_t total_nnz = 0;      ///< sum over shards
  std::vector<TensorShard> shards;  ///< >= 1, each non-empty
  /// shards[s].slice_begin, ascending -- the route_slice table.
  index_vec slice_begins;

  std::size_t size() const { return shards.size(); }

  /// Shard that owns root-mode slice `slice` for ROUTING purposes: new
  /// nonzeros (delta chunks) with this root coordinate belong here.  For
  /// a split slice this is the LAST shard covering it; slices outside
  /// every range (empty in the source tensor) route to the nearest shard.
  /// Deterministic, total, O(log K).
  std::size_t shard_for_slice(index_t slice) const;

  /// Splits an additive update batch (same dims) into one COO batch per
  /// shard by routing each nonzero through shard_for_slice on its
  /// root-mode coordinate.  result[s] may be empty for shards the batch
  /// does not touch.  Linearity makes applying result[s] to shard s
  /// equivalent to applying `updates` to the whole tensor.
  std::vector<SparseTensor> split(const SparseTensor& updates) const;

  /// True when no root-mode slice is covered by two shards -- i.e. the
  /// partitioner never had to split a heavy slice, so every shard's
  /// [slice_begin, slice_end) range is pairwise disjoint.  This is the
  /// precondition of the disjoint-output execution path (DESIGN.md §8):
  /// for an op whose output mode IS the partition mode, each output row
  /// is then produced by exactly one shard and partials need no merge.
  bool disjoint_slice_ranges() const;

  /// Output-row ownership table for the disjoint-output path: K+1
  /// ascending entries with owned[0] == 0 and owned[K] == dims[mode];
  /// shard s owns output rows [owned[s], owned[s+1]).  Ownership extends
  /// each shard's slice range over rows that are empty in the source --
  /// exactly shard_for_slice's routing rule -- so the ranges tile
  /// [0, dims[mode]) and every delta nonzero routed to a shard lands
  /// inside that shard's owned rows.  Meaningful only when
  /// disjoint_slice_ranges() holds.
  index_vec owned_row_begins() const;

  /// Largest / smallest shard nonzero count (balance diagnostics).
  offset_t max_shard_nnz() const;
  offset_t min_shard_nnz() const;

  std::string to_string() const;  ///< e.g. "4 shards along mode 0, nnz 250/250/251/249"
};

using PartitionPtr = std::shared_ptr<const TensorPartition>;

/// Partitions `tensor` into (up to) `shards` nnz-balanced shards along
/// `mode`.  Cut points target equal nonzeros per shard; each cut snaps to
/// the nearest slice boundary when one lies within a quarter-budget, and
/// otherwise splits the slice mid-stream (heavy-slice splitting).  The
/// shard count is clamped to [1, nnz] so every shard is non-empty.
/// Throws bcsf::Error for an empty tensor or an out-of-range mode.
TensorPartition partition_tensor(const SparseTensor& tensor, index_t mode,
                                 unsigned shards);

/// Sketch-backed partitioning (DESIGN.md §12): places the same cuts as
/// the overload above -- the slice-mass CDF of `sketch` (which is exact)
/// reproduces the slice boundary offsets of the sorted stream, and the
/// identical snap-or-split rule runs against them -- but never sorts the
/// nonzeros: shards are materialized by one bucketing pass in input
/// order.  O(nnz + S log S) instead of O(nnz log nnz), no scratch copy.
/// `sketch` must describe exactly `tensor`'s mode-`mode` structure.
TensorPartition partition_tensor(const SparseTensor& tensor, index_t mode,
                                 unsigned shards, const ModeSketch& sketch);

/// Shared-ownership convenience used by the plan and serving layers.
PartitionPtr share_partition(TensorPartition&& partition);

}  // namespace bcsf
