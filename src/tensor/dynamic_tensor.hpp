// DynamicSparseTensor: a growing tensor behind immutable versioned
// snapshots (DESIGN.md §6).
//
// The paper's structured formats (B-CSF / HB-CSF) assume a frozen tensor:
// the sort-dominated build is paid once and amortized over many MTTKRP
// calls.  Live tensors (user-item-time interactions) grow continuously,
// and rebuilding a structured format per insert would destroy exactly
// that economics.  This class splits the tensor into
//
//   * an immutable BASE snapshot -- the thing structured plans are built
//     from, shared by `TensorPtr` so retained plans never dangle -- and
//   * an append-only DELTA of frozen COO chunks, one per apply() batch.
//
// MTTKRP is linear in the tensor values, so a query over the full tensor
// decomposes as  result(base) + result(delta)  with no coordination
// between the two: the base contribution comes from a prebuilt plan, the
// delta contribution from a cheap COO sweep (kernels/mttkrp.hpp's
// mttkrp_delta_accumulate).  Once the delta grows past a threshold, a
// compaction merges base + delta into a new base (replace_base) and
// structured plans are rebuilt once -- restoring build-once/run-many.
//
// Thread-safety: all methods may be called from any thread.  snapshot()
// is O(#chunks) -- it copies shared_ptrs, never nonzeros -- so readers
// can take a snapshot per query.  A snapshot is immutable: later applies
// or compactions never mutate the chunks it references.
#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/sketch.hpp"
#include "tensor/sparse_tensor.hpp"
#include "util/thread_annotations.hpp"
#include "util/types.hpp"

namespace bcsf {

/// O(1) scalar view of a DynamicSparseTensor's sketches, split by the
/// base/delta boundary so the approximate-norm error bound can be stated
/// (DESIGN.md §12): the stored-entry norm misses the 2<base,delta> cross
/// term of the coalesced tensor, bounded by Cauchy-Schwarz.
struct SketchScalars {
  offset_t nnz = 0;              ///< stored entries (base + delta chunks)
  double base_norm_sq = 0.0;     ///< sum of squared base values
  double delta_norm_sq = 0.0;    ///< sum of squared delta values

  double norm_sq() const { return base_norm_sq + delta_norm_sq; }
  /// |true coalesced norm_sq - norm_sq()| <= this; 0 right after a
  /// compaction (empty delta).
  double norm_sq_error_bound() const {
    return 2.0 * std::sqrt(base_norm_sq * delta_norm_sq);
  }
};

/// Heap bytes one delta nonzero occupies across the per-mode index
/// arrays and the value array -- the currency of the serving layer's
/// storage-budget accounting for un-compacted delta chunks
/// (DESIGN.md §10).
inline std::size_t delta_bytes_per_nnz(index_t order) {
  return static_cast<std::size_t>(order) * sizeof(index_t) + sizeof(value_t);
}

/// One immutable view of a DynamicSparseTensor: the base plus every delta
/// chunk appended since the base was installed.  Copies are cheap (vector
/// of shared_ptr); the referenced tensors are frozen forever.
struct TensorSnapshot {
  /// Monotonically increasing; bumped by every apply() and replace_base().
  std::uint64_t version = 0;
  /// Version at which `base` was installed (0 for the construction base).
  /// Two snapshots with equal base_version share the identical base
  /// object, so plans built from one serve the other.
  std::uint64_t base_version = 0;
  TensorPtr base;
  /// Frozen COO update batches in apply() order.  Duplicate coordinates
  /// (across chunks or against the base) are additive -- MTTKRP and norm
  /// computations are linear, so no merging is needed to answer queries.
  std::vector<TensorPtr> deltas;
  offset_t delta_nnz = 0;

  offset_t nnz() const { return base->nnz() + delta_nnz; }
  /// Heap bytes held by the delta chunks this snapshot references --
  /// what a compaction reclaims when it absorbs them into the base.
  std::size_t delta_storage_bytes() const {
    return static_cast<std::size_t>(delta_nnz) *
           delta_bytes_per_nnz(base->order());
  }
  /// Fraction of stored nonzeros living in the delta -- the compaction
  /// trigger signal: structured plans cover only base->nnz() of the
  /// tensor, so per-query COO work grows with this fraction.
  double delta_fraction() const;
  /// Materializes base + deltas as one COO tensor.  With `coalesce` the
  /// result is sorted and duplicate coordinates are summed (what a
  /// compaction installs as the new base); without it the nonzeros are
  /// simply concatenated in append order.
  SparseTensor merged(bool coalesce = false) const;
};

class DynamicSparseTensor {
 public:
  /// Wraps `base` as version 0.  The base is immutable from here on.
  /// Builds the base's structural sketch with one O(nnz) pass; callers
  /// that already hold a sketch of `base` (e.g. the sharded registration
  /// path, which sketches the whole tensor before splitting) use the
  /// second overload to skip it.
  explicit DynamicSparseTensor(TensorPtr base);
  DynamicSparseTensor(TensorPtr base, TensorSketch base_sketch);

  const std::vector<index_t>& dims() const { return dims_; }
  index_t order() const { return static_cast<index_t>(dims_.size()); }

  /// Current version (== snapshot().version, cheaper).
  std::uint64_t version() const;
  /// Nonzeros currently in the delta (frozen chunks only).
  offset_t delta_nnz() const;
  /// Heap bytes currently held by delta chunks (see TensorSnapshot).
  std::size_t delta_storage_bytes() const {
    return static_cast<std::size_t>(delta_nnz()) * delta_bytes_per_nnz(order());
  }

  /// O(#chunks) consistent view of the current state.
  TensorSnapshot snapshot() const;

  /// Merged structural sketch of everything currently stored (base +
  /// delta chunks), maintained incrementally: O(S + registers) to copy
  /// and fold, never O(nnz).  This is what every planning read consumes.
  TensorSketch sketch() const;

  /// Sketch of the CURRENT base snapshot only (delta excluded): the
  /// structure a plan built now would be built from, so it is what the
  /// upgrade policy reads.  O(S + registers) copy.
  TensorSketch base_sketch() const;

  /// O(1) scalar sketch view (nnz and the base/delta norm split).
  SketchScalars sketch_scalars() const;

  /// Appends one batch of additive updates: a COO tensor with the same
  /// dims whose values ADD to the coordinates they name (new coordinates
  /// insert, existing ones accumulate; a batch may itself contain
  /// duplicates).  The batch is validated, frozen, and visible to every
  /// snapshot taken after return.  Empty batches are a no-op returning
  /// the current version.  Returns the new version.
  std::uint64_t apply(SparseTensor updates);

  /// Installs `new_base`, which must incorporate exactly the old base
  /// plus every delta chunk with version <= `upto_version` (i.e. the
  /// merged() of a snapshot taken at `upto_version`).  Chunks applied
  /// after that snapshot are retained on top of the new base.  Returns
  /// the new version.  This is the compaction commit point; the caller
  /// (e.g. MttkrpService) does the merge off-line and swaps here.
  ///
  /// The first overload rebuilds the base sketch inline -- an O(nnz) pass
  /// under the lock, fine for offline callers.  The serving path uses the
  /// second overload with a sketch of `new_base` computed off the
  /// critical section, keeping the commit O(retained chunks).
  std::uint64_t replace_base(TensorPtr new_base, std::uint64_t upto_version);
  std::uint64_t replace_base(TensorPtr new_base, std::uint64_t upto_version,
                             TensorSketch new_base_sketch);

 private:
  mutable Mutex mutex_;
  std::vector<index_t> dims_;  // immutable after construction
  TensorPtr base_ BCSF_GUARDED_BY(mutex_);
  std::vector<TensorPtr> deltas_ BCSF_GUARDED_BY(mutex_);
  /// Version stamped per chunk, parallel to deltas_.
  std::vector<std::uint64_t> delta_versions_ BCSF_GUARDED_BY(mutex_);
  offset_t delta_nnz_ BCSF_GUARDED_BY(mutex_) = 0;
  std::uint64_t version_ BCSF_GUARDED_BY(mutex_) = 0;
  std::uint64_t base_version_ BCSF_GUARDED_BY(mutex_) = 0;
  /// Structural sketches, split at the base/delta boundary so a
  /// compaction can swap in a fresh base sketch and rebuild only the
  /// (small) retained-delta side (DESIGN.md §12).
  TensorSketch base_sketch_ BCSF_GUARDED_BY(mutex_);
  TensorSketch delta_sketch_ BCSF_GUARDED_BY(mutex_);
};

}  // namespace bcsf
