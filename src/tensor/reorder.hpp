// Index reordering -- the paper's named future work: "Future work will
// explore integration of some of these complementary strategies (...
// various reordering methods (Z-order sorting, graph and hypergraph
// partitioning))".
//
// Implemented strategies:
//  * random relabeling of a mode (a control: destroys any locality the
//    input labeling had);
//  * degree-sorted relabeling (heavy slices first -- packs heavy work at
//    the front of the grid so the block scheduler drains it early);
//  * Z-order (Morton) sorting of the nonzeros across all modes, the
//    HiCOO-style locality layout.
// All relabelings are pure bijections on mode indices: MTTKRP results are
// identical up to the same permutation of output rows.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/sparse_tensor.hpp"
#include "util/types.hpp"

namespace bcsf {

/// A bijective relabeling of one mode: new_index = perm[old_index].
using Relabeling = index_vec;

/// Random bijection over [0, dims[mode]).
Relabeling random_relabeling(index_t dim, std::uint64_t seed);

/// Heavy-first: slices (along `mode`) sorted by descending nonzero count;
/// ties keep original order.  Index i of the busiest slice maps to 0.
Relabeling degree_sorted_relabeling(const SparseTensor& tensor, index_t mode);

/// Applies a relabeling to one mode (in place).
void apply_relabeling(SparseTensor& tensor, index_t mode,
                      const Relabeling& perm);

/// Inverse permutation (for mapping results back).
Relabeling invert_relabeling(const Relabeling& perm);

/// Reorders the nonzeros (storage order only -- coordinates unchanged) by
/// the Morton / Z-order code of their coordinates, interleaving the low
/// `bits` bits of every mode.  Improves block locality for COO-family
/// kernels; a no-op for CSF-family formats, which re-sort anyway.
void zorder_sort(SparseTensor& tensor, index_t bits = 10);

}  // namespace bcsf
