#include "tensor/sparse_tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "util/error.hpp"

namespace bcsf {

ModeOrder mode_order_for(index_t mode, index_t order) {
  BCSF_CHECK(mode < order, "mode_order_for: mode " << mode
                                                   << " out of range for order "
                                                   << order);
  ModeOrder perm;
  perm.reserve(order);
  perm.push_back(mode);
  for (index_t m = 0; m < order; ++m) {
    if (m != mode) perm.push_back(m);
  }
  return perm;
}

SparseTensor::SparseTensor(std::vector<index_t> dims) : dims_(std::move(dims)) {
  BCSF_CHECK(dims_.size() >= 1, "SparseTensor: order must be >= 1");
  for (index_t d : dims_) {
    BCSF_CHECK(d > 0, "SparseTensor: every dimension must be positive");
  }
  inds_.resize(dims_.size());
}

double SparseTensor::density() const {
  double cells = 1.0;
  for (index_t d : dims_) cells *= static_cast<double>(d);
  return cells > 0.0 ? static_cast<double>(nnz()) / cells : 0.0;
}

void SparseTensor::reserve(offset_t n) {
  for (auto& v : inds_) v.reserve(n);
  vals_.reserve(n);
}

void SparseTensor::push_back(std::span<const index_t> coords, value_t value) {
  BCSF_CHECK(coords.size() == dims_.size(),
             "push_back: expected " << dims_.size() << " coordinates, got "
                                    << coords.size());
  for (index_t m = 0; m < order(); ++m) {
    BCSF_CHECK(coords[m] < dims_[m], "push_back: coordinate "
                                         << coords[m] << " out of bounds for mode "
                                         << m << " (dim " << dims_[m] << ")");
    inds_[m].push_back(coords[m]);
  }
  vals_.push_back(value);
}

void SparseTensor::sort(const ModeOrder& order_perm) {
  BCSF_CHECK(order_perm.size() == dims_.size(),
             "sort: mode order has wrong length");
  const offset_t m = nnz();
  std::vector<offset_t> perm(m);
  std::iota(perm.begin(), perm.end(), offset_t{0});
  std::sort(perm.begin(), perm.end(), [&](offset_t a, offset_t b) {
    for (index_t mode : order_perm) {
      const index_t ia = inds_[mode][a];
      const index_t ib = inds_[mode][b];
      if (ia != ib) return ia < ib;
    }
    return false;
  });
  // Apply the permutation out-of-place per array (memory is cheap compared
  // to the O(M log M) sort above).
  for (auto& arr : inds_) {
    index_vec tmp(m);
    for (offset_t z = 0; z < m; ++z) tmp[z] = arr[perm[z]];
    arr = std::move(tmp);
  }
  value_vec tmpv(m);
  for (offset_t z = 0; z < m; ++z) tmpv[z] = vals_[perm[z]];
  vals_ = std::move(tmpv);
}

bool SparseTensor::is_sorted(const ModeOrder& order_perm) const {
  const offset_t m = nnz();
  for (offset_t z = 1; z < m; ++z) {
    for (index_t mode : order_perm) {
      const index_t prev = inds_[mode][z - 1];
      const index_t cur = inds_[mode][z];
      if (prev < cur) break;
      if (prev > cur) return false;
    }
  }
  return true;
}

offset_t SparseTensor::coalesce() {
  if (nnz() == 0) return 0;
  ModeOrder identity(order());
  std::iota(identity.begin(), identity.end(), index_t{0});
  sort(identity);
  const offset_t m = nnz();
  offset_t w = 0;  // write cursor
  for (offset_t z = 1; z < m; ++z) {
    bool same = true;
    for (index_t mode = 0; mode < order(); ++mode) {
      if (inds_[mode][z] != inds_[mode][w]) {
        same = false;
        break;
      }
    }
    if (same) {
      vals_[w] += vals_[z];
    } else {
      ++w;
      for (index_t mode = 0; mode < order(); ++mode) {
        inds_[mode][w] = inds_[mode][z];
      }
      vals_[w] = vals_[z];
    }
  }
  const offset_t kept = w + 1;
  const offset_t removed = m - kept;
  for (auto& arr : inds_) arr.resize(kept);
  vals_.resize(kept);
  return removed;
}

void SparseTensor::validate() const {
  BCSF_CHECK(inds_.size() == dims_.size(), "validate: mode array count");
  for (index_t mode = 0; mode < order(); ++mode) {
    BCSF_CHECK(inds_[mode].size() == vals_.size(),
               "validate: index array length mismatch in mode " << mode);
    for (index_t idx : inds_[mode]) {
      BCSF_CHECK(idx < dims_[mode], "validate: index " << idx
                                                       << " out of bounds in mode "
                                                       << mode);
    }
  }
}

double SparseTensor::norm() const {
  double acc = 0.0;
  for (value_t v : vals_) acc += static_cast<double>(v) * v;
  return std::sqrt(acc);
}

namespace {
std::string humanize(index_t v) {
  std::ostringstream os;
  if (v >= 1000000) {
    os << (v / 1000000) << "M";
  } else if (v >= 1000) {
    os << (v / 1000) << "K";
  } else {
    os << v;
  }
  return os.str();
}
}  // namespace

std::string SparseTensor::shape_string() const {
  std::ostringstream os;
  for (index_t m = 0; m < order(); ++m) {
    if (m) os << " x ";
    os << humanize(dims_[m]);
  }
  return os.str();
}

TensorPtr share_tensor(SparseTensor&& tensor) {
  return std::make_shared<SparseTensor>(std::move(tensor));
}

TensorPtr borrow_tensor(const SparseTensor& tensor) {
  return TensorPtr(TensorPtr{}, &tensor);
}

}  // namespace bcsf
