// Reader/writer for the FROSTT `.tns` text format [27]:
//   one nonzero per line, 1-based coordinates followed by the value,
//   '#' starts a comment.  The paper's datasets (deli, nell1, ...) ship in
//   this format, so real downloads can be dropped into the benchmarks.
#pragma once

#include <iosfwd>
#include <string>

#include "tensor/sparse_tensor.hpp"

namespace bcsf {

/// Parses a `.tns` stream.  The tensor order is inferred from the first
/// data line; dimensions are the maximum coordinate seen per mode unless
/// `dims_hint` is non-empty (then coordinates are validated against it).
/// Throws bcsf::Error on malformed lines, inconsistent arity, zero or
/// negative coordinates.
SparseTensor read_tns(std::istream& in,
                      const std::vector<index_t>& dims_hint = {});

/// Reads a `.tns` file from disk.
SparseTensor read_tns_file(const std::string& path,
                           const std::vector<index_t>& dims_hint = {});

/// Writes a tensor as `.tns` (1-based coordinates).
void write_tns(std::ostream& out, const SparseTensor& tensor);
void write_tns_file(const std::string& path, const SparseTensor& tensor);

}  // namespace bcsf
