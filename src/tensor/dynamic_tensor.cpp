#include "tensor/dynamic_tensor.hpp"

#include <utility>
#include <vector>

#include "util/error.hpp"

namespace bcsf {

double TensorSnapshot::delta_fraction() const {
  const offset_t total = nnz();
  if (total == 0) return 0.0;
  return static_cast<double>(delta_nnz) / static_cast<double>(total);
}

SparseTensor TensorSnapshot::merged(bool coalesce) const {
  BCSF_CHECK(base != nullptr, "TensorSnapshot::merged: null base");
  SparseTensor out(base->dims());
  out.reserve(nnz());
  const index_t order = base->order();
  std::vector<index_t> coords(order);
  auto append = [&](const SparseTensor& part) {
    for (offset_t z = 0; z < part.nnz(); ++z) {
      for (index_t m = 0; m < order; ++m) coords[m] = part.coord(m, z);
      out.push_back(coords, part.value(z));
    }
  };
  append(*base);
  for (const TensorPtr& chunk : deltas) append(*chunk);
  if (coalesce) out.coalesce();
  return out;
}

DynamicSparseTensor::DynamicSparseTensor(TensorPtr base)
    : base_(std::move(base)) {
  BCSF_CHECK(base_ != nullptr, "DynamicSparseTensor: null base");
  dims_ = base_->dims();
  BCSF_CHECK(!dims_.empty(), "DynamicSparseTensor: base has order 0");
}

std::uint64_t DynamicSparseTensor::version() const {
  MutexLock lock(mutex_);
  return version_;
}

offset_t DynamicSparseTensor::delta_nnz() const {
  MutexLock lock(mutex_);
  return delta_nnz_;
}

TensorSnapshot DynamicSparseTensor::snapshot() const {
  MutexLock lock(mutex_);
  TensorSnapshot snap;
  snap.version = version_;
  snap.base_version = base_version_;
  snap.base = base_;
  snap.deltas = deltas_;
  snap.delta_nnz = delta_nnz_;
  return snap;
}

std::uint64_t DynamicSparseTensor::apply(SparseTensor updates) {
  BCSF_CHECK(updates.dims() == dims_,
             "DynamicSparseTensor::apply: update batch dims "
                 << updates.shape_string() << " do not match tensor dims");
  updates.validate();
  MutexLock lock(mutex_);
  if (updates.nnz() == 0) return version_;
  delta_nnz_ += updates.nnz();
  deltas_.push_back(share_tensor(std::move(updates)));
  delta_versions_.push_back(++version_);
  return version_;
}

std::uint64_t DynamicSparseTensor::replace_base(TensorPtr new_base,
                                                std::uint64_t upto_version) {
  BCSF_CHECK(new_base != nullptr, "DynamicSparseTensor: null new base");
  BCSF_CHECK(new_base->dims() == dims_,
             "DynamicSparseTensor::replace_base: dims changed");
  MutexLock lock(mutex_);
  BCSF_CHECK(upto_version <= version_,
             "DynamicSparseTensor::replace_base: version "
                 << upto_version << " is in the future (now " << version_
                 << ")");
  // Drop exactly the chunks the new base absorbed; keep later ones.
  std::size_t keep_from = 0;
  while (keep_from < delta_versions_.size() &&
         delta_versions_[keep_from] <= upto_version) {
    ++keep_from;
  }
  deltas_.erase(deltas_.begin(),
                deltas_.begin() + static_cast<std::ptrdiff_t>(keep_from));
  delta_versions_.erase(
      delta_versions_.begin(),
      delta_versions_.begin() + static_cast<std::ptrdiff_t>(keep_from));
  delta_nnz_ = 0;
  for (const TensorPtr& chunk : deltas_) delta_nnz_ += chunk->nnz();
  base_ = std::move(new_base);
  base_version_ = ++version_;
  return version_;
}

}  // namespace bcsf
