#include "tensor/dynamic_tensor.hpp"

#include <utility>
#include <vector>

#include "util/error.hpp"

namespace bcsf {

double TensorSnapshot::delta_fraction() const {
  const offset_t total = nnz();
  if (total == 0) return 0.0;
  return static_cast<double>(delta_nnz) / static_cast<double>(total);
}

SparseTensor TensorSnapshot::merged(bool coalesce) const {
  BCSF_CHECK(base != nullptr, "TensorSnapshot::merged: null base");
  SparseTensor out(base->dims());
  out.reserve(nnz());
  const index_t order = base->order();
  std::vector<index_t> coords(order);
  auto append = [&](const SparseTensor& part) {
    for (offset_t z = 0; z < part.nnz(); ++z) {
      for (index_t m = 0; m < order; ++m) coords[m] = part.coord(m, z);
      out.push_back(coords, part.value(z));
    }
  };
  append(*base);
  for (const TensorPtr& chunk : deltas) append(*chunk);
  if (coalesce) out.coalesce();
  return out;
}

DynamicSparseTensor::DynamicSparseTensor(TensorPtr base)
    : base_(std::move(base)) {
  BCSF_CHECK(base_ != nullptr, "DynamicSparseTensor: null base");
  dims_ = base_->dims();
  BCSF_CHECK(!dims_.empty(), "DynamicSparseTensor: base has order 0");
  base_sketch_ = TensorSketch::build(*base_);
  delta_sketch_ = TensorSketch(dims_);
}

DynamicSparseTensor::DynamicSparseTensor(TensorPtr base,
                                         TensorSketch base_sketch)
    : base_(std::move(base)) {
  BCSF_CHECK(base_ != nullptr, "DynamicSparseTensor: null base");
  dims_ = base_->dims();
  BCSF_CHECK(!dims_.empty(), "DynamicSparseTensor: base has order 0");
  BCSF_CHECK(base_sketch.dims() == dims_ && base_sketch.nnz() == base_->nnz(),
             "DynamicSparseTensor: base sketch does not describe the base");
  base_sketch_ = std::move(base_sketch);
  delta_sketch_ = TensorSketch(dims_);
}

std::uint64_t DynamicSparseTensor::version() const {
  MutexLock lock(mutex_);
  return version_;
}

offset_t DynamicSparseTensor::delta_nnz() const {
  MutexLock lock(mutex_);
  return delta_nnz_;
}

TensorSnapshot DynamicSparseTensor::snapshot() const {
  MutexLock lock(mutex_);
  TensorSnapshot snap;
  snap.version = version_;
  snap.base_version = base_version_;
  snap.base = base_;
  snap.deltas = deltas_;
  snap.delta_nnz = delta_nnz_;
  return snap;
}

TensorSketch DynamicSparseTensor::sketch() const {
  MutexLock lock(mutex_);
  TensorSketch out = base_sketch_;
  out.merge(delta_sketch_);
  return out;
}

TensorSketch DynamicSparseTensor::base_sketch() const {
  MutexLock lock(mutex_);
  return base_sketch_;
}

SketchScalars DynamicSparseTensor::sketch_scalars() const {
  MutexLock lock(mutex_);
  SketchScalars s;
  s.nnz = base_sketch_.nnz() + delta_sketch_.nnz();
  s.base_norm_sq = base_sketch_.norm_sq();
  s.delta_norm_sq = delta_sketch_.norm_sq();
  return s;
}

std::uint64_t DynamicSparseTensor::apply(SparseTensor updates) {
  BCSF_CHECK(updates.dims() == dims_,
             "DynamicSparseTensor::apply: update batch dims "
                 << updates.shape_string() << " do not match tensor dims");
  updates.validate();
  MutexLock lock(mutex_);
  if (updates.nnz() == 0) return version_;
  delta_nnz_ += updates.nnz();
  delta_sketch_.add_tensor(updates);  // O(batch), keeps planning O(1)
  deltas_.push_back(share_tensor(std::move(updates)));
  delta_versions_.push_back(++version_);
  return version_;
}

std::uint64_t DynamicSparseTensor::replace_base(TensorPtr new_base,
                                                std::uint64_t upto_version) {
  BCSF_CHECK(new_base != nullptr, "DynamicSparseTensor: null new base");
  TensorSketch base_sketch = TensorSketch::build(*new_base);
  return replace_base(std::move(new_base), upto_version,
                      std::move(base_sketch));
}

std::uint64_t DynamicSparseTensor::replace_base(TensorPtr new_base,
                                                std::uint64_t upto_version,
                                                TensorSketch new_base_sketch) {
  BCSF_CHECK(new_base != nullptr, "DynamicSparseTensor: null new base");
  BCSF_CHECK(new_base->dims() == dims_,
             "DynamicSparseTensor::replace_base: dims changed");
  BCSF_CHECK(new_base_sketch.dims() == dims_ &&
                 new_base_sketch.nnz() == new_base->nnz(),
             "DynamicSparseTensor::replace_base: sketch does not describe "
             "the new base");
  MutexLock lock(mutex_);
  BCSF_CHECK(upto_version <= version_,
             "DynamicSparseTensor::replace_base: version "
                 << upto_version << " is in the future (now " << version_
                 << ")");
  // Drop exactly the chunks the new base absorbed; keep later ones.
  std::size_t keep_from = 0;
  while (keep_from < delta_versions_.size() &&
         delta_versions_[keep_from] <= upto_version) {
    ++keep_from;
  }
  deltas_.erase(deltas_.begin(),
                deltas_.begin() + static_cast<std::ptrdiff_t>(keep_from));
  delta_versions_.erase(
      delta_versions_.begin(),
      delta_versions_.begin() + static_cast<std::ptrdiff_t>(keep_from));
  delta_nnz_ = 0;
  delta_sketch_ = TensorSketch(dims_);
  for (const TensorPtr& chunk : deltas_) {
    delta_nnz_ += chunk->nnz();
    delta_sketch_.add_tensor(*chunk);  // O(retained chunks), not O(nnz)
  }
  base_ = std::move(new_base);
  base_sketch_ = std::move(new_base_sketch);
  base_version_ = ++version_;
  return version_;
}

}  // namespace bcsf
