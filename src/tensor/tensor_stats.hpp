// Per-mode structural statistics: the quantities that drive every load
// balance argument in the paper -- number of slices S, number of fibers F,
// and the distribution (mean/stddev/max) of nonzeros per slice and per
// fiber (Table II columns "stdev #nnz per slc" / "stdev #nnz per fbr").
#pragma once

#include <string>
#include <vector>

#include "tensor/sparse_tensor.hpp"
#include "util/stats.hpp"
#include "util/types.hpp"

namespace bcsf {

/// Structure of one mode-orientation of a tensor: the (slice, fiber)
/// hierarchy obtained by sorting with `mode_order_for(mode, order)`.
/// A *slice* groups nonzeros sharing the root-mode index; a *fiber* groups
/// nonzeros sharing all indices except the leaf mode (§II-A).
struct ModeStats {
  index_t mode = 0;
  offset_t nnz = 0;
  offset_t num_slices = 0;  ///< S: non-empty slices
  offset_t num_fibers = 0;  ///< F: non-empty fibers

  SampleStats nnz_per_slice;
  SampleStats nnz_per_fiber;
  SampleStats fibers_per_slice;

  /// Fraction of slices containing exactly one nonzero (HB-CSF's COO group
  /// candidates, §V).
  double singleton_slice_fraction = 0.0;
  /// Fraction of slices whose fibers are all singletons (CSL candidates).
  double csl_slice_fraction = 0.0;

  std::string to_string() const;
};

/// Computes ModeStats for one mode.  The input does not need to be sorted;
/// a sorted copy is made internally.
ModeStats compute_mode_stats(const SparseTensor& tensor, index_t mode);

/// Computes ModeStats for every mode.  One shared index buffer is sorted
/// per mode; the nonzero arrays are never copied.
std::vector<ModeStats> compute_all_mode_stats(const SparseTensor& tensor);

/// Process-wide count of O(nnz) exact-stats scans (every
/// compute_mode_stats / compute_all_mode_stats sort+scan).  The serving
/// layer's sketch-backed planning must leave this flat after warm-up;
/// tests assert on deltas of this counter (DESIGN.md §12).
std::uint64_t exact_stat_scan_count();

/// Raw per-slice and per-fiber nonzero counts for a *sorted* tensor
/// (sorted by mode_order_for(mode, order)); used by the format builders so
/// they do not recompute the scan.
struct SliceFiberCounts {
  index_vec slice_index;            ///< root index of each non-empty slice
  offset_vec slice_nnz;             ///< nonzeros per non-empty slice
  offset_vec slice_fiber_begin;     ///< fiber range start per slice
  index_vec fiber_leaf_parent;      ///< (unused for order 3) reserved
  offset_vec fiber_nnz;             ///< nonzeros per non-empty fiber
};

SliceFiberCounts count_slices_and_fibers(const SparseTensor& sorted,
                                         const ModeOrder& order);

}  // namespace bcsf
