// Synthetic sparse tensor generators.
//
// Real tensors "tend to follow a power-law distribution" (§IV); the load
// imbalance the paper attacks comes from heavy-tailed distributions of
// nonzeros per slice and per fiber.  `generate_power_law` gives direct,
// independent control over both tails, so each dataset in Table III can be
// given a scaled-down twin with the same qualitative signature (Table II's
// stddev columns).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/sparse_tensor.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace bcsf {

/// Configuration for the structural power-law generator.
struct PowerLawConfig {
  std::vector<index_t> dims;  ///< tensor dimensions (order = dims.size() >= 2)
  offset_t target_nnz = 0;    ///< approximate nonzero count to produce

  /// Bounded-Pareto tail exponent for nonzeros per slice; smaller values
  /// concentrate more of the tensor into a few heavy slices.
  double slice_alpha = 1.2;
  /// Cap on a single slice's nonzeros, as a fraction of target_nnz.
  double max_slice_frac = 0.05;

  /// Bounded-Pareto tail exponent for nonzeros per fiber.
  double fiber_alpha = 1.5;
  /// Cap on a single fiber's length (also clamped to the leaf dimension).
  offset_t max_fiber_len = 1024;
  /// If nonzero, every fiber has exactly this many nonzeros (e.g. 1 models
  /// flick-3d, whose fibers are all singletons, and freebase, whose
  /// stddev(nnz/fiber) is 0 in Table II).
  offset_t fixed_fiber_len = 0;

  /// Fraction of target nonzeros emitted as isolated singleton slices
  /// (one nonzero in its own slice) -- the ultra-sparse COO population of
  /// HB-CSF (§V).
  double singleton_slice_frac = 0.0;

  std::uint64_t seed = 42;
};

/// Generates a tensor whose mode-0 (slice, fiber) structure follows the
/// configured power laws.  Coordinates are unique by construction; values
/// are uniform in [0.5, 1.5] to keep accumulations well-conditioned.
SparseTensor generate_power_law(const PowerLawConfig& config);

/// Uniformly random tensor with `nnz` distinct coordinates.
SparseTensor generate_uniform(const std::vector<index_t>& dims, offset_t nnz,
                              std::uint64_t seed);

/// Noisy low-rank tensor: values are entries of a random rank-`rank` CP
/// model sampled at `nnz` random coordinates plus Gaussian noise.  Used to
/// validate that CPD-ALS recovers structure (fit rises well above the
/// noise floor).
SparseTensor generate_low_rank(const std::vector<index_t>& dims, rank_t rank,
                               offset_t nnz, value_t noise,
                               std::uint64_t seed);

}  // namespace bcsf
