#include "linalg/ops.hpp"

#include <cmath>

#include "util/error.hpp"

namespace bcsf {

DenseMatrix gram(const DenseMatrix& a) {
  const rank_t r = a.cols();
  DenseMatrix g(r, r);
  // Accumulate in double: Gram entries sum over potentially millions of
  // rows and feed a linear solve, where fp32 accumulation error would leak
  // into every factor update.
  std::vector<double> acc(static_cast<std::size_t>(r) * r, 0.0);
  for (index_t row = 0; row < a.rows(); ++row) {
    const auto ar = a.row(row);
    for (rank_t i = 0; i < r; ++i) {
      const double ai = ar[i];
      for (rank_t j = i; j < r; ++j) {
        acc[static_cast<std::size_t>(i) * r + j] += ai * ar[j];
      }
    }
  }
  for (rank_t i = 0; i < r; ++i) {
    for (rank_t j = i; j < r; ++j) {
      const auto v = static_cast<value_t>(acc[static_cast<std::size_t>(i) * r + j]);
      g(i, j) = v;
      g(j, i) = v;
    }
  }
  return g;
}

DenseMatrix hadamard(const DenseMatrix& a, const DenseMatrix& b) {
  BCSF_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
             "hadamard: shape mismatch");
  DenseMatrix out(a.rows(), a.cols());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = a.data()[i] * b.data()[i];
  }
  return out;
}

DenseMatrix gram_hadamard_except(const std::vector<DenseMatrix>& factors,
                                 index_t skip) {
  BCSF_CHECK(!factors.empty(), "gram_hadamard_except: no factors");
  BCSF_CHECK(skip < factors.size(), "gram_hadamard_except: bad skip mode");
  const rank_t r = factors.front().cols();
  DenseMatrix v(r, r, 1.0F);
  for (index_t m = 0; m < factors.size(); ++m) {
    if (m == skip) continue;
    v = hadamard(v, gram(factors[m]));
  }
  return v;
}

DenseMatrix khatri_rao(const DenseMatrix& a, const DenseMatrix& b) {
  BCSF_CHECK(a.cols() == b.cols(), "khatri_rao: rank mismatch");
  const rank_t r = a.cols();
  DenseMatrix out(a.rows() * b.rows(), r);
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < b.rows(); ++j) {
      const index_t row = i * b.rows() + j;
      for (rank_t c = 0; c < r; ++c) {
        out(row, c) = a(i, c) * b(j, c);
      }
    }
  }
  return out;
}

DenseMatrix matmul(const DenseMatrix& a, const DenseMatrix& b) {
  BCSF_CHECK(a.cols() == b.rows(), "matmul: inner dimension mismatch");
  DenseMatrix c(a.rows(), b.cols());
  for (index_t i = 0; i < a.rows(); ++i) {
    for (rank_t k = 0; k < a.cols(); ++k) {
      const value_t aik = a(i, k);
      if (aik == 0.0F) continue;
      for (rank_t j = 0; j < b.cols(); ++j) {
        c(i, j) += aik * b(k, j);
      }
    }
  }
  return c;
}

std::vector<value_t> normalize_columns(DenseMatrix& a) {
  const rank_t r = a.cols();
  std::vector<double> norms(r, 0.0);
  for (index_t row = 0; row < a.rows(); ++row) {
    const auto ar = a.row(row);
    for (rank_t c = 0; c < r; ++c) {
      norms[c] += static_cast<double>(ar[c]) * ar[c];
    }
  }
  std::vector<value_t> lambda(r);
  for (rank_t c = 0; c < r; ++c) {
    lambda[c] = static_cast<value_t>(std::sqrt(norms[c]));
  }
  for (index_t row = 0; row < a.rows(); ++row) {
    auto ar = a.row(row);
    for (rank_t c = 0; c < r; ++c) {
      if (lambda[c] > 0.0F) ar[c] /= lambda[c];
    }
  }
  return lambda;
}

double cp_inner_product(const SparseTensor& x,
                        const std::vector<DenseMatrix>& factors,
                        const std::vector<value_t>& lambda) {
  BCSF_CHECK(factors.size() == x.order(), "cp_inner_product: factor count");
  const rank_t r = factors.front().cols();
  double inner = 0.0;
  for (offset_t z = 0; z < x.nnz(); ++z) {
    for (rank_t c = 0; c < r; ++c) {
      double prod = lambda.empty() ? 1.0 : static_cast<double>(lambda[c]);
      for (index_t m = 0; m < x.order(); ++m) {
        prod *= factors[m](x.coord(m, z), c);
      }
      inner += prod * x.value(z);
    }
  }
  return inner;
}

double cp_model_norm_sq(const std::vector<DenseMatrix>& factors,
                        const std::vector<value_t>& lambda) {
  BCSF_CHECK(!factors.empty(), "cp_model_norm_sq: no factors");
  const rank_t r = factors.front().cols();
  DenseMatrix v(r, r, 1.0F);
  for (const auto& f : factors) v = hadamard(v, gram(f));
  double model_sq = 0.0;
  for (rank_t i = 0; i < r; ++i) {
    const double li = lambda.empty() ? 1.0 : lambda[i];
    for (rank_t j = 0; j < r; ++j) {
      const double lj = lambda.empty() ? 1.0 : lambda[j];
      model_sq += li * lj * static_cast<double>(v(i, j));
    }
  }
  return model_sq;
}

double cp_fit_from_pieces(double x_norm, double inner, double model_sq) {
  const double x_sq = x_norm * x_norm;
  if (x_sq == 0.0) return 1.0;
  const double resid_sq = std::max(0.0, x_sq - 2.0 * inner + model_sq);
  return 1.0 - std::sqrt(resid_sq) / x_norm;
}

double cp_fit(const SparseTensor& x, const std::vector<DenseMatrix>& factors,
              const std::vector<value_t>& lambda) {
  return cp_fit_from_pieces(x.norm(), cp_inner_product(x, factors, lambda),
                            cp_model_norm_sq(factors, lambda));
}

}  // namespace bcsf
