#include "linalg/dense_matrix.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/rng.hpp"

namespace bcsf {

void DenseMatrix::randomize(std::uint64_t seed, value_t lo, value_t hi) {
  Rng rng(seed);
  for (auto& v : data_) {
    v = static_cast<value_t>(rng.uniform_real(lo, hi));
  }
}

double DenseMatrix::max_abs_diff(const DenseMatrix& other) const {
  BCSF_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
             "max_abs_diff: shape mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::abs(static_cast<double>(data_[i]) - other.data_[i]));
  }
  return m;
}

double DenseMatrix::frob_norm() const {
  double acc = 0.0;
  for (value_t v : data_) acc += static_cast<double>(v) * v;
  return std::sqrt(acc);
}

std::string DenseMatrix::to_string(index_t max_rows) const {
  std::ostringstream os;
  os << rows_ << "x" << cols_ << " matrix\n";
  const index_t n = std::min(rows_, max_rows);
  for (index_t r = 0; r < n; ++r) {
    os << "  [";
    for (rank_t c = 0; c < cols_; ++c) {
      if (c) os << ", ";
      os << (*this)(r, c);
    }
    os << "]\n";
  }
  if (n < rows_) os << "  ... (" << (rows_ - n) << " more rows)\n";
  return os.str();
}

}  // namespace bcsf
