// Row-major dense matrix used for CP factor matrices.
//
// MTTKRP streams rows of the factor matrices (B(j,:), C(k,:)); row-major
// layout makes one factor row one contiguous cache line run of R floats
// (R = 32 -> 128 bytes, exactly one P100 L2 line pair), which the GPU
// cache model in gpusim relies on.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/types.hpp"

namespace bcsf {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(index_t rows, rank_t cols, value_t fill = 0.0F)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows) * cols, fill) {}

  index_t rows() const { return rows_; }
  rank_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }

  value_t operator()(index_t r, rank_t c) const {
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }
  value_t& operator()(index_t r, rank_t c) {
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }

  std::span<const value_t> row(index_t r) const {
    BCSF_ASSERT(r < rows_, "row out of range");
    return {data_.data() + static_cast<std::size_t>(r) * cols_, cols_};
  }
  std::span<value_t> row(index_t r) {
    BCSF_ASSERT(r < rows_, "row out of range");
    return {data_.data() + static_cast<std::size_t>(r) * cols_, cols_};
  }

  std::span<const value_t> data() const { return data_; }
  std::span<value_t> data() { return data_; }

  void fill(value_t v) { std::fill(data_.begin(), data_.end(), v); }

  /// Fills with uniform random values in [lo, hi) (for ALS initialization).
  void randomize(std::uint64_t seed, value_t lo = 0.0F, value_t hi = 1.0F);

  /// Max absolute elementwise difference against another matrix.
  double max_abs_diff(const DenseMatrix& other) const;

  /// Frobenius norm.
  double frob_norm() const;

  std::string to_string(index_t max_rows = 8) const;

 private:
  index_t rows_ = 0;
  rank_t cols_ = 0;
  value_vec data_;
};

}  // namespace bcsf
