// Dense kernels surrounding MTTKRP in CPD-ALS (Algorithm 1):
// Gram matrices (B^T B), Hadamard products of Grams, the Khatri-Rao
// product (only used by tests -- the whole point of MTTKRP algorithms is
// to avoid materializing it), column normalization, and the CP model fit.
#pragma once

#include <vector>

#include "linalg/dense_matrix.hpp"
#include "tensor/sparse_tensor.hpp"
#include "util/types.hpp"

namespace bcsf {

/// gram = A^T A (cols x cols, symmetric).
DenseMatrix gram(const DenseMatrix& a);

/// Elementwise product of two equally-shaped matrices.
DenseMatrix hadamard(const DenseMatrix& a, const DenseMatrix& b);

/// Hadamard product of the Grams of every factor except `skip`:
/// V = *_{m != skip} (A_m^T A_m)  -- the R x R SPD system of Eq. (3).
DenseMatrix gram_hadamard_except(const std::vector<DenseMatrix>& factors,
                                 index_t skip);

/// Khatri-Rao product (column-wise Kronecker): (A kr B) has
/// rows(A)*rows(B) rows.  Exponentially large for real tensors; used only
/// to validate MTTKRP against the textbook definition on small inputs.
DenseMatrix khatri_rao(const DenseMatrix& a, const DenseMatrix& b);

/// C = A * B (naive triple loop; matrices here are R x R or tall-skinny).
DenseMatrix matmul(const DenseMatrix& a, const DenseMatrix& b);

/// Normalizes each column of `a` to unit 2-norm, returning the norms
/// (lambda in Eq. (1)).  Zero columns get lambda 0 and are left unchanged.
std::vector<value_t> normalize_columns(DenseMatrix& a);

/// CP model fit:  fit = 1 - ||X - [[lambda; A_0..A_{N-1}]]||_F / ||X||_F,
/// computed with the standard sparse identity
/// ||X - Xhat||^2 = ||X||^2 - 2 <X, Xhat> + ||Xhat||^2 where ||Xhat||^2
/// comes from the factor Grams.  A fit of 1 is an exact model.
double cp_fit(const SparseTensor& x, const std::vector<DenseMatrix>& factors,
              const std::vector<value_t>& lambda);

/// ||Xhat||^2 = lambda^T (*_m A_m^T A_m) lambda -- the factor-only fit
/// piece (R x R dense work, no tensor traversal).
double cp_model_norm_sq(const std::vector<DenseMatrix>& factors,
                        const std::vector<value_t>& lambda);

/// Assembles the fit from its three pieces: ||X|| (snapshot constant),
/// <X, Xhat> (the tensor traversal -- what the FIT op computes through a
/// plan, DESIGN.md §7), and ||Xhat||^2 (cp_model_norm_sq).
double cp_fit_from_pieces(double x_norm, double inner, double model_sq);

/// Residual inner product <X, Xhat> used by cp_fit (exposed for tests).
double cp_inner_product(const SparseTensor& x,
                        const std::vector<DenseMatrix>& factors,
                        const std::vector<value_t>& lambda);

}  // namespace bcsf
