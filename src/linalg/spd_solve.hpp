// Solver for the R x R symmetric positive (semi-)definite normal equations
// of the ALS update (Eq. 3): A~ = MTTKRP_result * (V)^dagger where
// V = *_{m != n} A_m^T A_m.
//
// The pseudo-inverse is realized as a Cholesky solve with adaptive
// diagonal regularization: V is SPD when the factors have full column
// rank, and the jitter fallback handles the rank-deficient case the way
// practical CP solvers do.
#pragma once

#include "linalg/dense_matrix.hpp"

namespace bcsf {

/// Cholesky factorization V = L L^T (lower triangular, in place on a
/// copy).  Returns false if V is not positive definite.
bool cholesky(const DenseMatrix& v, DenseMatrix& lower);

/// Solves X * V = B for X (i.e. X = B V^{-1}) where V is SPD of size
/// R x R and B is rows x R.  Falls back to Tikhonov-regularized solves
/// (V + eps I) with growing eps when V is singular.
DenseMatrix solve_spd_right(const DenseMatrix& v, const DenseMatrix& b);

/// Explicit SPD (pseudo-)inverse; used by tests and by callers that want
/// to reuse the inverse across many right-hand sides.
DenseMatrix spd_inverse(const DenseMatrix& v);

}  // namespace bcsf
