#include "linalg/spd_solve.hpp"

#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace bcsf {

bool cholesky(const DenseMatrix& v, DenseMatrix& lower) {
  BCSF_CHECK(v.rows() == v.cols(), "cholesky: matrix not square");
  const rank_t n = v.cols();
  lower = DenseMatrix(n, n);
  for (rank_t j = 0; j < n; ++j) {
    double diag = v(j, j);
    for (rank_t k = 0; k < j; ++k) {
      diag -= static_cast<double>(lower(j, k)) * lower(j, k);
    }
    if (diag <= 0.0) return false;
    const double ljj = std::sqrt(diag);
    lower(j, j) = static_cast<value_t>(ljj);
    for (rank_t i = j + 1; i < n; ++i) {
      double sum = v(i, j);
      for (rank_t k = 0; k < j; ++k) {
        sum -= static_cast<double>(lower(i, k)) * lower(j, k);
      }
      lower(i, j) = static_cast<value_t>(sum / ljj);
    }
  }
  return true;
}

namespace {

/// Solves L L^T x = b in place for one right-hand side (b as double).
void cholesky_solve_vec(const DenseMatrix& lower, std::vector<double>& b) {
  const rank_t n = lower.cols();
  // forward: L y = b
  for (rank_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (rank_t k = 0; k < i; ++k) {
      sum -= static_cast<double>(lower(i, k)) * b[k];
    }
    b[i] = sum / lower(i, i);
  }
  // backward: L^T x = y
  for (rank_t ii = n; ii-- > 0;) {
    double sum = b[ii];
    for (rank_t k = ii + 1; k < n; ++k) {
      sum -= static_cast<double>(lower(k, ii)) * b[k];
    }
    b[ii] = sum / lower(ii, ii);
  }
}

/// Cholesky with growing diagonal jitter until it succeeds.
DenseMatrix robust_cholesky(const DenseMatrix& v) {
  DenseMatrix lower;
  if (cholesky(v, lower)) return lower;
  double scale = 0.0;
  for (rank_t i = 0; i < v.cols(); ++i) {
    scale = std::max(scale, std::abs(static_cast<double>(v(i, i))));
  }
  if (scale == 0.0) scale = 1.0;
  for (double eps = 1e-8; eps <= 1e2; eps *= 10.0) {
    DenseMatrix jittered = v;
    for (rank_t i = 0; i < v.cols(); ++i) {
      jittered(i, i) += static_cast<value_t>(eps * scale);
    }
    if (cholesky(jittered, lower)) return lower;
  }
  BCSF_CHECK(false, "robust_cholesky: matrix could not be regularized");
  return lower;
}

}  // namespace

DenseMatrix solve_spd_right(const DenseMatrix& v, const DenseMatrix& b) {
  BCSF_CHECK(v.rows() == v.cols(), "solve_spd_right: V not square");
  BCSF_CHECK(b.cols() == v.rows(), "solve_spd_right: shape mismatch");
  const DenseMatrix lower = robust_cholesky(v);
  const rank_t n = v.cols();
  DenseMatrix x(b.rows(), n);
  std::vector<double> rhs(n);
  for (index_t row = 0; row < b.rows(); ++row) {
    // X V = B with V symmetric  =>  V X^T = B^T, solve per row.
    for (rank_t c = 0; c < n; ++c) rhs[c] = b(row, c);
    cholesky_solve_vec(lower, rhs);
    for (rank_t c = 0; c < n; ++c) x(row, c) = static_cast<value_t>(rhs[c]);
  }
  return x;
}

DenseMatrix spd_inverse(const DenseMatrix& v) {
  const rank_t n = v.cols();
  DenseMatrix identity(n, n);
  for (rank_t i = 0; i < n; ++i) identity(i, i) = 1.0F;
  return solve_spd_right(v, identity);
}

}  // namespace bcsf
