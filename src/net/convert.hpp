// Bridges between the wire messages (net/wire.hpp) and the serving
// layer's in-memory currency (serve/tensor_op_service.hpp).  Header-only;
// used by the server dispatch loop, the trace replayer, and tests.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "net/wire.hpp"
#include "serve/tensor_op_service.hpp"

namespace bcsf::net {

/// Moves a decoded query into a ServeRequest (the factor set and lambda
/// become the request's shared immutable copies).
inline ServeRequest to_request(QueryMsg&& msg) {
  ServeRequest request;
  request.tensor = std::move(msg.tensor);
  request.mode = msg.mode;
  request.op = msg.op;
  request.factors = std::make_shared<const std::vector<DenseMatrix>>(
      std::move(msg.factors));
  if (msg.has_lambda) {
    request.lambda =
        std::make_shared<const std::vector<value_t>>(std::move(msg.lambda));
  }
  return request;
}

/// Projects a response onto the wire's DETERMINISTIC fields (timings and
/// the SimReport stay behind -- see ResultMsg).
inline ResultMsg to_result(std::uint64_t id, const ServeResponse& response) {
  ResultMsg msg;
  msg.id = id;
  msg.op = response.op;
  msg.output = response.output;
  msg.scalar = response.scalar;
  msg.sequence = response.sequence;
  msg.snapshot_version = response.snapshot_version;
  msg.delta_nnz = response.delta_nnz;
  msg.shards = static_cast<std::uint32_t>(response.shards);
  msg.served_format = response.served_format;
  msg.upgraded = response.upgraded;
  return msg;
}

}  // namespace bcsf::net
