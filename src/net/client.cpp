#include "net/client.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/error.hpp"

namespace bcsf::net {

namespace {

FdHandle connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  BCSF_CHECK(path.size() < sizeof(addr.sun_path),
             "client: unix path too long: " << path);
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);

  FdHandle fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) {
    throw NetError(std::string("client: socket() failed: ") +
                   std::strerror(errno));
  }
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    throw NetError("client: connect('" + path +
                   "') failed: " + std::strerror(errno));
  }
  return fd;
}

FdHandle connect_tcp(const std::string& host, int port) {
  FdHandle fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    throw NetError(std::string("client: socket() failed: ") +
                   std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw NetError("client: bad address '" + host + "'");
  }
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    throw NetError("client: connect(" + host + ":" + std::to_string(port) +
                   ") failed: " + std::strerror(errno));
  }
  return fd;
}

}  // namespace

TensorClient::TensorClient(FdHandle fd) : fd_(std::move(fd)) {
  reader_ = std::thread([this] { reader_loop(); });
}

TensorClient::TensorClient(const std::string& unix_path)
    : TensorClient(connect_unix(unix_path)) {}

TensorClient::TensorClient(const std::string& host, int port)
    : TensorClient(connect_tcp(host, port)) {}

TensorClient::~TensorClient() {
  // SHUT_RDWR unblocks the reader's read(); it fails the pending map and
  // exits.  The fd itself closes after the join, so the reader never
  // races a reused descriptor.
  ::shutdown(fd_.get(), SHUT_RDWR);
  if (reader_.joinable()) reader_.join();
}

void TensorClient::fail_pending(const std::string& why) {
  std::map<std::uint64_t, std::promise<Frame>> orphaned;
  {
    MutexLock lock(pending_mutex_);
    orphaned.swap(pending_);
  }
  for (auto& [id, promise] : orphaned) {
    promise.set_exception(std::make_exception_ptr(NetError(why)));
  }
}

void TensorClient::reader_loop() {
  std::string why = "client: connection closed";
  try {
    Frame frame;
    while (read_frame(fd_.get(), frame)) {
      const std::uint64_t id = peek_id(frame.payload);
      std::promise<Frame> promise;
      bool matched = false;
      {
        MutexLock lock(pending_mutex_);
        auto it = pending_.find(id);
        if (it != pending_.end()) {
          promise = std::move(it->second);
          pending_.erase(it);
          matched = true;
        }
      }
      // An unmatched id is a server bug or a stale duplicate; nothing to
      // complete, nothing to corrupt -- drop it.
      if (matched) promise.set_value(std::move(frame));
    }
  } catch (const NetError& e) {
    why = e.what();
  }
  connected_.store(false, std::memory_order_release);
  fail_pending(why);
}

std::future<Frame> TensorClient::send(std::uint64_t id, MsgType type,
                                      std::span<const std::uint8_t> payload) {
  std::promise<Frame> promise;
  std::future<Frame> future = promise.get_future();
  if (!connected_.load(std::memory_order_acquire)) {
    promise.set_exception(
        std::make_exception_ptr(NetError("client: connection is closed")));
    return future;
  }
  {
    MutexLock lock(pending_mutex_);
    pending_.emplace(id, std::move(promise));
  }
  try {
    MutexLock lock(write_mutex_);
    write_frame(fd_.get(), type, payload);
  } catch (const NetError&) {
    // The write failed; pull our own promise back (the reader may have
    // already failed it -- then it is gone from the map and this no-ops).
    std::promise<Frame> mine;
    bool found = false;
    {
      MutexLock lock(pending_mutex_);
      auto it = pending_.find(id);
      if (it != pending_.end()) {
        mine = std::move(it->second);
        pending_.erase(it);
        found = true;
      }
    }
    if (found) mine.set_exception(std::current_exception());
  }
  return future;
}

std::uint64_t TensorClient::ack_of(std::future<Frame> future) {
  Frame frame = future.get();  // rethrows NetError from a dead connection
  switch (frame.type) {
    case MsgType::kAck:
      return decode_ack(frame.payload).version;
    case MsgType::kOverloaded:
      throw OverloadedError(decode_error(frame.payload).message);
    case MsgType::kError:
      throw Error(decode_error(frame.payload).message);
    default:
      throw ProtocolError("client: unexpected response type " +
                          std::to_string(static_cast<unsigned>(frame.type)));
  }
}

ResultMsg TensorClient::result_of(Frame frame) {
  switch (frame.type) {
    case MsgType::kResult:
      return decode_result(frame.payload);
    case MsgType::kOverloaded:
      throw OverloadedError(decode_error(frame.payload).message);
    case MsgType::kError:
      throw Error(decode_error(frame.payload).message);
    default:
      throw ProtocolError("client: unexpected response type " +
                          std::to_string(static_cast<unsigned>(frame.type)));
  }
}

void TensorClient::register_tensor(const std::string& name,
                                   const SparseTensor& tensor) {
  RegisterMsg msg;
  msg.id = next_id();
  msg.name = name;
  msg.tensor = tensor;
  const std::vector<std::uint8_t> payload = encode_register(msg);
  ack_of(send(msg.id, MsgType::kRegister, payload));
}

std::uint64_t TensorClient::apply_updates(const std::string& name,
                                          const SparseTensor& updates) {
  UpdateMsg msg;
  msg.id = next_id();
  msg.name = name;
  msg.updates = updates;
  const std::vector<std::uint8_t> payload = encode_update(msg);
  return ack_of(send(msg.id, MsgType::kUpdate, payload));
}

std::future<Frame> TensorClient::query_async(QueryMsg msg) {
  msg.id = next_id();
  const std::vector<std::uint8_t> payload = encode_query(msg);
  return send(msg.id, MsgType::kQuery, payload);
}

ResultMsg TensorClient::query(QueryMsg msg) {
  return result_of(query_async(std::move(msg)).get());
}

void TensorClient::ping() {
  const std::uint64_t id = next_id();
  ack_of(send(id, MsgType::kPing, encode_id(id)));
}

AckMsg TensorClient::ping_stats() {
  const std::uint64_t id = next_id();
  Frame frame = send(id, MsgType::kPing, encode_id(id)).get();
  switch (frame.type) {
    case MsgType::kAck:
      return decode_ack(frame.payload);
    case MsgType::kOverloaded:
      throw OverloadedError(decode_error(frame.payload).message);
    case MsgType::kError:
      throw Error(decode_error(frame.payload).message);
    default:
      throw ProtocolError("client: unexpected response type " +
                          std::to_string(static_cast<unsigned>(frame.type)));
  }
}

void TensorClient::shutdown_server() {
  const std::uint64_t id = next_id();
  ack_of(send(id, MsgType::kShutdown, encode_id(id)));
}

}  // namespace bcsf::net
