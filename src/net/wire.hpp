// Payload encoding for the tensord protocol (DESIGN.md §9): the message
// bodies carried inside net/frame.hpp frames, mirroring the serving
// layer's currency -- ServeRequest / ServeResponse / apply_updates.
//
// Encoding is little-endian and position-based (no field tags): u8/u32/
// u64 integers, f32/f64 IEEE floats, strings and arrays length-prefixed
// with u32 counts.  Every request payload begins with a client-chosen u64
// id that the matching response echoes.  Decoders are hostile-input safe:
// every read is bounds-checked against the remaining payload (WireReader
// throws ProtocolError on underrun) and array counts are validated
// against the bytes that must back them BEFORE any allocation, so a
// forged count cannot OOM the server.  Tensor payloads additionally pass
// SparseTensor bounds validation coordinate by coordinate.
//
// The exact same bytes serve three transports: unix/TCP sockets, trace
// files (a recorded request IS its wire payload), and the replay response
// logs that the deterministic-replay gate compares byte for byte.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/tensor_op.hpp"
#include "linalg/dense_matrix.hpp"
#include "net/frame.hpp"
#include "tensor/sparse_tensor.hpp"
#include "util/types.hpp"

namespace bcsf::net {

/// Append-only little-endian encoder.
class WireWriter {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f32(float v);
  void f64(double v);
  void str(const std::string& s);
  void tensor(const SparseTensor& t);
  void matrix(const DenseMatrix& m);

  std::vector<std::uint8_t> take() { return std::move(buf_); }
  const std::vector<std::uint8_t>& bytes() const { return buf_; }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian decoder over a borrowed payload.
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> payload)
      : data_(payload) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  float f32();
  double f64();
  std::string str();
  SparseTensor tensor();
  DenseMatrix matrix();

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }
  /// Throws ProtocolError unless the payload was consumed exactly.
  void expect_done(const char* what) const;

 private:
  /// Throws ProtocolError unless `n` more bytes are available.
  void require(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Messages.  One struct + encode/decode pair per frame type; decode throws
// ProtocolError on any malformed payload.
// ---------------------------------------------------------------------------

struct RegisterMsg {
  std::uint64_t id = 0;
  std::string name;
  SparseTensor tensor;
};

struct UpdateMsg {
  std::uint64_t id = 0;
  std::string name;
  SparseTensor updates;
};

/// Mirror of serve/ServeRequest with the factor set inlined (the wire has
/// no shared memory to alias).
struct QueryMsg {
  std::uint64_t id = 0;
  std::string tensor;
  index_t mode = 0;
  OpKind op = OpKind::kMttkrp;
  std::vector<DenseMatrix> factors;
  bool has_lambda = false;
  std::vector<value_t> lambda;
};

/// Per-tenant accounting entry carried in stats-bearing acks (kPing
/// replies): the wire mirror of TensorOpService::TenantStats.
struct TenantStatMsg {
  std::string name;
  std::uint64_t plan_bytes = 0;
  std::uint64_t delta_bytes = 0;
  std::uint64_t calls = 0;
  std::uint64_t structured_served = 0;
  std::uint64_t evictions = 0;
  /// Sketch-derived tenant shape (DESIGN.md §12): stored nonzeros and
  /// squared norm, read from the serving layer's O(1) sketch scalars so
  /// a monitoring ping never triggers a rescan.
  std::uint64_t sketch_nnz = 0;
  double norm_sq = 0.0;
};

/// Ack body (kAck).  Register/update acks carry only id + version and
/// leave the fleet fields zero / tenants empty; kPing replies fill the
/// storage-budget fleet stats (DESIGN.md §10) so clients can watch
/// residency and evictions without a side channel.
struct AckMsg {
  std::uint64_t id = 0;
  std::uint64_t version = 0;
  std::uint64_t budget_bytes = 0;
  std::uint64_t resident_bytes = 0;
  std::uint64_t evictions = 0;
  std::vector<TenantStatMsg> tenants;
};

/// The common register/update/shutdown reply: id + version only, fleet
/// stats left at their defaults (kPing fills them via service accessors).
inline AckMsg make_ack(std::uint64_t id, std::uint64_t version) {
  AckMsg msg;
  msg.id = id;
  msg.version = version;
  return msg;
}

/// Mirror of serve/ServeResponse, restricted to the DETERMINISTIC fields:
/// wall-clock timings (fanout_ms/reduce_ms) and the SimReport stay out so
/// a replayed trace can be compared byte for byte across runs.
struct ResultMsg {
  std::uint64_t id = 0;
  OpKind op = OpKind::kMttkrp;
  DenseMatrix output;
  double scalar = 0.0;
  std::uint64_t sequence = 0;
  std::uint64_t snapshot_version = 0;
  std::uint64_t delta_nnz = 0;
  std::uint32_t shards = 1;
  std::string served_format;
  bool upgraded = false;
};

/// kError and kOverloaded share this body.
struct ErrorMsg {
  std::uint64_t id = 0;
  std::string message;
};

std::vector<std::uint8_t> encode_register(const RegisterMsg& msg);
std::vector<std::uint8_t> encode_update(const UpdateMsg& msg);
std::vector<std::uint8_t> encode_query(const QueryMsg& msg);
std::vector<std::uint8_t> encode_ack(const AckMsg& msg);
std::vector<std::uint8_t> encode_result(const ResultMsg& msg);
std::vector<std::uint8_t> encode_error(const ErrorMsg& msg);
/// Bare-id body for kShutdown / kPing.
std::vector<std::uint8_t> encode_id(std::uint64_t id);

RegisterMsg decode_register(std::span<const std::uint8_t> payload);
UpdateMsg decode_update(std::span<const std::uint8_t> payload);
QueryMsg decode_query(std::span<const std::uint8_t> payload);
AckMsg decode_ack(std::span<const std::uint8_t> payload);
ResultMsg decode_result(std::span<const std::uint8_t> payload);
ErrorMsg decode_error(std::span<const std::uint8_t> payload);
std::uint64_t decode_id(std::span<const std::uint8_t> payload);

/// Best-effort id of any request/response payload (first 8 bytes), so an
/// error reply can still echo the id of a message whose body failed to
/// decode.  0 when the payload is shorter than an id.
std::uint64_t peek_id(std::span<const std::uint8_t> payload);

}  // namespace bcsf::net
