#include "net/frame.hpp"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

namespace bcsf::net {

namespace {

/// read() until `n` bytes or EOF.  Returns bytes read (< n only at EOF);
/// throws NetError on a hard read failure.
std::size_t read_upto(int fd, std::uint8_t* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, buf + got, n - got);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) break;  // EOF
    if (errno == EINTR) continue;
    throw NetError(std::string("net: read failed: ") + std::strerror(errno));
  }
  return got;
}

void write_all(int fd, const std::uint8_t* buf, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    // send(MSG_NOSIGNAL) instead of write(): a peer that already hung up
    // must surface as NetError here, not kill the process with SIGPIPE.
    const ssize_t w = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (w >= 0) {
      sent += static_cast<std::size_t>(w);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == ENOTSOCK) {
      // Trace files are written through the same codec; fall back to
      // plain write() for non-socket descriptors.
      const ssize_t p = ::write(fd, buf + sent, n - sent);
      if (p >= 0) {
        sent += static_cast<std::size_t>(p);
        continue;
      }
      if (errno == EINTR) continue;
    }
    throw NetError(std::string("net: write failed: ") + std::strerror(errno));
  }
}

}  // namespace

bool known_msg_type(std::uint8_t tag) {
  switch (static_cast<MsgType>(tag)) {
    case MsgType::kRegister:
    case MsgType::kUpdate:
    case MsgType::kQuery:
    case MsgType::kShutdown:
    case MsgType::kPing:
    case MsgType::kAck:
    case MsgType::kResult:
    case MsgType::kError:
    case MsgType::kOverloaded:
    case MsgType::kTraceHeader:
      return true;
  }
  return false;
}

bool read_frame(int fd, Frame& out) {
  std::uint8_t header[5];
  const std::size_t got = read_upto(fd, header, sizeof(header));
  if (got == 0) return false;  // clean hang-up between frames
  if (got < sizeof(header)) {
    throw ProtocolError("net: truncated frame header (" +
                        std::to_string(got) + " of 5 bytes)");
  }
  std::uint32_t length = 0;
  std::memcpy(&length, header, sizeof(length));
  if (length > kMaxFramePayload) {
    throw ProtocolError("net: frame payload length " + std::to_string(length) +
                        " exceeds cap " + std::to_string(kMaxFramePayload));
  }
  out.type = static_cast<MsgType>(header[4]);
  out.payload.resize(length);
  if (length > 0) {
    const std::size_t body = read_upto(fd, out.payload.data(), length);
    if (body < length) {
      throw ProtocolError("net: truncated frame payload (" +
                          std::to_string(body) + " of " +
                          std::to_string(length) + " bytes)");
    }
  }
  return true;
}

void write_frame(int fd, MsgType type,
                 std::span<const std::uint8_t> payload) {
  BCSF_CHECK(payload.size() <= kMaxFramePayload,
             "net: refusing to write oversize frame of " << payload.size()
                                                         << " bytes");
  std::uint8_t header[5];
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size());
  std::memcpy(header, &length, sizeof(length));
  header[4] = static_cast<std::uint8_t>(type);
  write_all(fd, header, sizeof(header));
  if (!payload.empty()) write_all(fd, payload.data(), payload.size());
}

void append_frame(std::vector<std::uint8_t>& buf, MsgType type,
                  std::span<const std::uint8_t> payload) {
  BCSF_CHECK(payload.size() <= kMaxFramePayload,
             "net: refusing to append oversize frame of " << payload.size()
                                                          << " bytes");
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size());
  const std::size_t at = buf.size();
  buf.resize(at + 5 + payload.size());
  std::memcpy(buf.data() + at, &length, sizeof(length));
  buf[at + 4] = static_cast<std::uint8_t>(type);
  if (!payload.empty()) {
    std::memcpy(buf.data() + at + 5, payload.data(), payload.size());
  }
}

void FdHandle::reset() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

}  // namespace bcsf::net
