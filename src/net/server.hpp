// tensord's core: TensorOpService behind a socket boundary (DESIGN.md
// §9).  The server owns one service instance and exposes it over a
// unix-domain socket (always) and optionally TCP, speaking the framed
// protocol of net/frame.hpp + net/wire.hpp.
//
// Threading model -- three kinds of threads, no shared request state:
//
//   accept thread   One, polling {listeners, self-pipe}.  The self-pipe
//                   makes stop() wakeable without timeouts.
//   reader thread   One per connection.  Decodes frames; register/update
//                   execute synchronously (they are cheap metadata +
//                   routing), queries pass ADMISSION CONTROL and are
//                   submitted async to the service; the resulting future
//                   goes on the connection's write queue.
//   writer thread   One per connection; the ONLY thread writing its
//                   socket.  Pops the write queue in FIFO order --
//                   responses leave in request order per connection --
//                   blocking on each query future as it reaches the
//                   head.  Drains the queue fully before exiting, so
//                   every accepted request gets its response even during
//                   shutdown.
//
// Admission control: a kQuery is rejected with kOverloaded (never
// queued) when the server-wide in-flight count reaches max_in_flight or
// the service's worker queue is deeper than queue_watermark.  Register/
// update/ping are never rejected -- they are what drains or probes the
// backlog.
//
// Graceful shutdown (stop(), also triggered by a client's kShutdown):
//   1. close the listeners (no new connections),
//   2. shutdown(SHUT_RD) every connection socket -- readers see EOF and
//      stop ACCEPTING requests,
//   3. writers drain their queues (accepted queries complete and are
//      answered), then the sockets close,
//   4. the service drains to idle (background upgrades/compactions
//      included).
// Zero stranded futures by construction: every future ever created sits
// in exactly one write queue, and every queue is drained.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>  // std::once_flag
#include <string>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "serve/tensor_op_service.hpp"
#include "trace/trace.hpp"
#include "util/thread_annotations.hpp"

namespace bcsf::net {

struct ServerOptions {
  /// Unix-domain socket path.  Required; an existing socket file at the
  /// path is unlinked first (stale leftover from a crashed server).
  std::string unix_path;
  /// TCP listen port: -1 = no TCP listener, 0 = ephemeral (read the
  /// chosen port back via tcp_port()).  Binds 127.0.0.1 only.
  int tcp_port = -1;
  /// Options for the owned TensorOpService.
  ServeOptions serve;
  /// Admission: max queries admitted (submitted, response not yet
  /// written) across ALL connections.
  std::size_t max_in_flight = 256;
  /// Admission: reject queries while the service's worker queue is
  /// deeper than this.  0 = 4x the worker count.
  std::size_t queue_watermark = 0;
  /// When non-empty, record every request/response to this trace file
  /// (trace/TraceRecorder) for later replay.
  std::string record_path;
};

class TensorServer {
 public:
  /// Binds the listeners and starts the accept thread; throws NetError
  /// if a bind fails.  The server is serving when this returns.
  explicit TensorServer(ServerOptions opts);
  /// Calls stop().
  ~TensorServer();

  TensorServer(const TensorServer&) = delete;
  TensorServer& operator=(const TensorServer&) = delete;

  /// Graceful shutdown per the header comment.  Idempotent; safe to call
  /// concurrently with wait() and from the destructor.
  void stop();

  /// Blocks until a client sends kShutdown or another thread calls
  /// stop().  Does NOT itself stop the server -- the owner does:
  ///     server.wait(); server.stop();
  void wait();

  /// Actual TCP port (useful with tcp_port = 0); -1 when TCP is off.
  int tcp_port() const { return tcp_port_; }
  const std::string& unix_path() const { return opts_.unix_path; }

  /// The owned service, for in-process inspection in tests and tools.
  TensorOpService& service() { return service_; }

  struct Stats {
    std::uint64_t connections = 0;  ///< accepted sockets, lifetime
    std::uint64_t requests = 0;     ///< frames dispatched (all types)
    std::uint64_t rejected = 0;     ///< queries refused with kOverloaded
    std::uint64_t protocol_errors = 0;  ///< connections dropped on framing
  };
  Stats stats() const;

 private:
  /// What the writer sends next: either a response computed synchronously
  /// by the reader (ready bytes) or a query future to block on.
  struct Outgoing {
    MsgType type = MsgType::kAck;
    std::vector<std::uint8_t> payload;        // valid when !pending
    std::future<ServeResponse> response;      // valid when pending
    std::uint64_t id = 0;                     // echoed on pending error
    bool pending = false;
  };

  struct Connection {
    FdHandle fd;
    std::thread reader;
    std::thread writer;
    Mutex m;
    CondVar cv;  // signals the writer
    std::deque<Outgoing> queue BCSF_GUARDED_BY(m);
    /// Reader done: writer drains then exits.
    bool closing BCSF_GUARDED_BY(m) = false;
    std::atomic<bool> dead{false};  // both threads finished
  };

  void bind_unix();
  void bind_tcp();
  void accept_loop();
  void reader_loop(Connection& conn);
  void writer_loop(Connection& conn);
  /// Decodes and dispatches one frame.  Every known frame type yields
  /// exactly one reply (ready bytes or a pending query future).
  Outgoing dispatch(Frame& frame);
  void enqueue(Connection& conn, Outgoing out);
  void record(MsgType type, std::span<const std::uint8_t> payload);

  ServerOptions opts_;
  TensorOpService service_;
  std::unique_ptr<trace::TraceRecorder> recorder_;

  FdHandle unix_fd_;
  FdHandle tcp_fd_;
  int tcp_port_ = -1;
  FdHandle wake_read_;   // self-pipe: stop() wakes the accept poll
  FdHandle wake_write_;

  std::thread accept_thread_;
  Mutex conns_mutex_;
  std::vector<std::unique_ptr<Connection>> conns_ BCSF_GUARDED_BY(conns_mutex_);

  Mutex state_mutex_;
  CondVar state_cv_;
  /// wait() unblocks once set.
  bool shutdown_requested_ BCSF_GUARDED_BY(state_mutex_) = false;
  std::atomic<bool> stopping_{false};
  std::once_flag stop_once_;

  std::atomic<std::size_t> in_flight_{0};
  std::atomic<std::uint64_t> stat_connections_{0};
  std::atomic<std::uint64_t> stat_requests_{0};
  std::atomic<std::uint64_t> stat_rejected_{0};
  std::atomic<std::uint64_t> stat_protocol_errors_{0};
};

}  // namespace bcsf::net
