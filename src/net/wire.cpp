#include "net/wire.hpp"

#include <cstring>
#include <limits>

namespace bcsf::net {

namespace {

/// Array-count guard: a decoded count must be backed by at least
/// `per_element` payload bytes each, or the count is forged.
void check_count(std::uint64_t count, std::size_t per_element,
                 std::size_t remaining, const char* what) {
  if (per_element == 0) per_element = 1;
  if (count > remaining / per_element) {
    throw ProtocolError(std::string("wire: ") + what + " count " +
                        std::to_string(count) +
                        " not backed by payload bytes (" +
                        std::to_string(remaining) + " remaining)");
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// WireWriter
// ---------------------------------------------------------------------------

void WireWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void WireWriter::u32(std::uint32_t v) {
  const std::size_t at = buf_.size();
  buf_.resize(at + sizeof(v));
  std::memcpy(buf_.data() + at, &v, sizeof(v));
}

void WireWriter::u64(std::uint64_t v) {
  const std::size_t at = buf_.size();
  buf_.resize(at + sizeof(v));
  std::memcpy(buf_.data() + at, &v, sizeof(v));
}

void WireWriter::f32(float v) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  u32(bits);
}

void WireWriter::f64(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void WireWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void WireWriter::tensor(const SparseTensor& t) {
  u32(static_cast<std::uint32_t>(t.order()));
  for (index_t m = 0; m < t.order(); ++m) u32(t.dim(m));
  u64(t.nnz());
  for (index_t m = 0; m < t.order(); ++m) {
    const auto inds = t.mode_indices(m);
    if (inds.empty()) continue;  // empty span has a null data pointer
    const std::size_t at = buf_.size();
    buf_.resize(at + inds.size() * sizeof(index_t));
    std::memcpy(buf_.data() + at, inds.data(), inds.size() * sizeof(index_t));
  }
  const auto vals = t.values();
  if (!vals.empty()) {
    const std::size_t at = buf_.size();
    buf_.resize(at + vals.size() * sizeof(value_t));
    std::memcpy(buf_.data() + at, vals.data(), vals.size() * sizeof(value_t));
  }
}

void WireWriter::matrix(const DenseMatrix& m) {
  u32(static_cast<std::uint32_t>(m.rows()));
  u32(static_cast<std::uint32_t>(m.cols()));
  const auto data = m.data();
  if (data.empty()) return;  // a 0xN/Nx0 matrix has a null data pointer
  const std::size_t at = buf_.size();
  buf_.resize(at + data.size() * sizeof(value_t));
  std::memcpy(buf_.data() + at, data.data(), data.size() * sizeof(value_t));
}

// ---------------------------------------------------------------------------
// WireReader
// ---------------------------------------------------------------------------

void WireReader::require(std::size_t n) const {
  if (remaining() < n) {
    throw ProtocolError("wire: payload underrun (need " + std::to_string(n) +
                        " bytes, have " + std::to_string(remaining()) + ")");
  }
}

void WireReader::expect_done(const char* what) const {
  if (!done()) {
    throw ProtocolError(std::string("wire: ") + what + " has " +
                        std::to_string(remaining()) +
                        " trailing payload bytes");
  }
}

std::uint8_t WireReader::u8() {
  require(1);
  return data_[pos_++];
}

std::uint32_t WireReader::u32() {
  require(sizeof(std::uint32_t));
  std::uint32_t v = 0;
  std::memcpy(&v, data_.data() + pos_, sizeof(v));
  pos_ += sizeof(v);
  return v;
}

std::uint64_t WireReader::u64() {
  require(sizeof(std::uint64_t));
  std::uint64_t v = 0;
  std::memcpy(&v, data_.data() + pos_, sizeof(v));
  pos_ += sizeof(v);
  return v;
}

float WireReader::f32() {
  const std::uint32_t bits = u32();
  float v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

double WireReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string WireReader::str() {
  const std::uint32_t n = u32();
  require(n);
  std::string s;
  if (n != 0) {
    s.assign(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
  }
  return s;
}

SparseTensor WireReader::tensor() {
  const std::uint32_t order = u32();
  if (order == 0 || order > 16) {
    throw ProtocolError("wire: tensor order " + std::to_string(order) +
                        " out of range [1, 16]");
  }
  std::vector<index_t> dims(order);
  for (std::uint32_t m = 0; m < order; ++m) {
    dims[m] = u32();
    if (dims[m] == 0) {
      throw ProtocolError("wire: tensor dim " + std::to_string(m) +
                          " is zero");
    }
  }
  const std::uint64_t nnz = u64();
  // order index arrays + one value array back every nonzero.
  check_count(nnz, (order + 1) * sizeof(index_t), remaining(), "tensor nnz");

  // Payload byte offsets of each mode's index array and the value array.
  // The arrays start at arbitrary offsets inside the frame, so every
  // element is read with memcpy -- casting the payload to index_t*/value_t*
  // would bind misaligned references (undefined behavior, and a real crash
  // on alignment-strict targets).
  std::vector<std::size_t> mode_at(order);
  for (std::uint32_t m = 0; m < order; ++m) {
    require(nnz * sizeof(index_t));
    mode_at[m] = pos_;
    pos_ += nnz * sizeof(index_t);
  }
  require(nnz * sizeof(value_t));
  const std::size_t vals_at = pos_;
  pos_ += nnz * sizeof(value_t);

  SparseTensor t(std::move(dims));
  t.reserve(nnz);
  std::vector<index_t> coords(order);
  for (std::uint64_t z = 0; z < nnz; ++z) {
    for (std::uint32_t m = 0; m < order; ++m) {
      std::memcpy(&coords[m], data_.data() + mode_at[m] + z * sizeof(index_t),
                  sizeof(index_t));
      if (coords[m] >= t.dim(m)) {
        throw ProtocolError("wire: tensor coordinate " +
                            std::to_string(coords[m]) + " out of dim " +
                            std::to_string(t.dim(m)) + " along mode " +
                            std::to_string(m));
      }
    }
    value_t v;
    std::memcpy(&v, data_.data() + vals_at + z * sizeof(value_t),
                sizeof(value_t));
    t.push_back(coords, v);
  }
  return t;
}

DenseMatrix WireReader::matrix() {
  const std::uint32_t rows = u32();
  const std::uint32_t cols = u32();
  check_count(static_cast<std::uint64_t>(rows) * cols, sizeof(value_t),
              remaining(), "matrix entry");
  DenseMatrix m(rows, cols);
  const std::size_t bytes = m.data().size() * sizeof(value_t);
  require(bytes);
  if (bytes != 0) {  // a 0xN/Nx0 matrix has a null data pointer
    std::memcpy(m.data().data(), data_.data() + pos_, bytes);
    pos_ += bytes;
  }
  return m;
}

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> encode_register(const RegisterMsg& msg) {
  WireWriter w;
  w.u64(msg.id);
  w.str(msg.name);
  w.tensor(msg.tensor);
  return w.take();
}

std::vector<std::uint8_t> encode_update(const UpdateMsg& msg) {
  WireWriter w;
  w.u64(msg.id);
  w.str(msg.name);
  w.tensor(msg.updates);
  return w.take();
}

std::vector<std::uint8_t> encode_query(const QueryMsg& msg) {
  WireWriter w;
  w.u64(msg.id);
  w.str(msg.tensor);
  w.u32(msg.mode);
  w.u8(static_cast<std::uint8_t>(msg.op));
  w.u32(static_cast<std::uint32_t>(msg.factors.size()));
  for (const DenseMatrix& f : msg.factors) w.matrix(f);
  w.u8(msg.has_lambda ? 1 : 0);
  if (msg.has_lambda) {
    w.u32(static_cast<std::uint32_t>(msg.lambda.size()));
    for (value_t v : msg.lambda) w.f32(v);
  }
  return w.take();
}

std::vector<std::uint8_t> encode_ack(const AckMsg& msg) {
  WireWriter w;
  w.u64(msg.id);
  w.u64(msg.version);
  w.u64(msg.budget_bytes);
  w.u64(msg.resident_bytes);
  w.u64(msg.evictions);
  w.u32(static_cast<std::uint32_t>(msg.tenants.size()));
  for (const TenantStatMsg& t : msg.tenants) {
    w.str(t.name);
    w.u64(t.plan_bytes);
    w.u64(t.delta_bytes);
    w.u64(t.calls);
    w.u64(t.structured_served);
    w.u64(t.evictions);
    w.u64(t.sketch_nnz);
    w.f64(t.norm_sq);
  }
  return w.take();
}

std::vector<std::uint8_t> encode_result(const ResultMsg& msg) {
  WireWriter w;
  w.u64(msg.id);
  w.u8(static_cast<std::uint8_t>(msg.op));
  w.matrix(msg.output);
  w.f64(msg.scalar);
  w.u64(msg.sequence);
  w.u64(msg.snapshot_version);
  w.u64(msg.delta_nnz);
  w.u32(msg.shards);
  w.str(msg.served_format);
  w.u8(msg.upgraded ? 1 : 0);
  return w.take();
}

std::vector<std::uint8_t> encode_error(const ErrorMsg& msg) {
  WireWriter w;
  w.u64(msg.id);
  w.str(msg.message);
  return w.take();
}

std::vector<std::uint8_t> encode_id(std::uint64_t id) {
  WireWriter w;
  w.u64(id);
  return w.take();
}

namespace {

OpKind decode_op(std::uint8_t tag) {
  if (tag > static_cast<std::uint8_t>(OpKind::kStats)) {
    throw ProtocolError("wire: unknown op tag " + std::to_string(tag));
  }
  return static_cast<OpKind>(tag);
}

}  // namespace

RegisterMsg decode_register(std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  RegisterMsg msg;
  msg.id = r.u64();
  msg.name = r.str();
  msg.tensor = r.tensor();
  r.expect_done("register");
  return msg;
}

UpdateMsg decode_update(std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  UpdateMsg msg;
  msg.id = r.u64();
  msg.name = r.str();
  msg.updates = r.tensor();
  r.expect_done("update");
  return msg;
}

QueryMsg decode_query(std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  QueryMsg msg;
  msg.id = r.u64();
  msg.tensor = r.str();
  msg.mode = r.u32();
  msg.op = decode_op(r.u8());
  const std::uint32_t nfactors = r.u32();
  check_count(nfactors, 8, r.remaining(), "query factor");
  msg.factors.reserve(nfactors);
  for (std::uint32_t i = 0; i < nfactors; ++i) {
    msg.factors.push_back(r.matrix());
  }
  msg.has_lambda = r.u8() != 0;
  if (msg.has_lambda) {
    const std::uint32_t n = r.u32();
    check_count(n, sizeof(value_t), r.remaining(), "query lambda");
    msg.lambda.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) msg.lambda.push_back(r.f32());
  }
  r.expect_done("query");
  return msg;
}

AckMsg decode_ack(std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  AckMsg msg;
  msg.id = r.u64();
  msg.version = r.u64();
  msg.budget_bytes = r.u64();
  msg.resident_bytes = r.u64();
  msg.evictions = r.u64();
  const std::uint32_t ntenants = r.u32();
  // Minimum bytes per entry: u32 name length + six u64 counters + f64.
  check_count(ntenants, 4 + 6 * 8 + 8, r.remaining(), "ack tenant");
  msg.tenants.reserve(ntenants);
  for (std::uint32_t i = 0; i < ntenants; ++i) {
    TenantStatMsg t;
    t.name = r.str();
    t.plan_bytes = r.u64();
    t.delta_bytes = r.u64();
    t.calls = r.u64();
    t.structured_served = r.u64();
    t.evictions = r.u64();
    t.sketch_nnz = r.u64();
    t.norm_sq = r.f64();
    msg.tenants.push_back(std::move(t));
  }
  r.expect_done("ack");
  return msg;
}

ResultMsg decode_result(std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  ResultMsg msg;
  msg.id = r.u64();
  msg.op = decode_op(r.u8());
  msg.output = r.matrix();
  msg.scalar = r.f64();
  msg.sequence = r.u64();
  msg.snapshot_version = r.u64();
  msg.delta_nnz = r.u64();
  msg.shards = r.u32();
  msg.served_format = r.str();
  msg.upgraded = r.u8() != 0;
  r.expect_done("result");
  return msg;
}

ErrorMsg decode_error(std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  ErrorMsg msg;
  msg.id = r.u64();
  msg.message = r.str();
  r.expect_done("error");
  return msg;
}

std::uint64_t decode_id(std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  const std::uint64_t id = r.u64();
  r.expect_done("id-only message");
  return id;
}

std::uint64_t peek_id(std::span<const std::uint8_t> payload) {
  if (payload.size() < sizeof(std::uint64_t)) return 0;
  std::uint64_t id = 0;
  std::memcpy(&id, payload.data(), sizeof(id));
  return id;
}

}  // namespace bcsf::net
