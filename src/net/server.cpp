#include "net/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "net/convert.hpp"
#include "net/wire.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace bcsf::net {

namespace {

int checked_socket(int domain) {
  const int fd = ::socket(domain, SOCK_STREAM, 0);
  if (fd < 0) {
    throw NetError(std::string("server: socket() failed: ") +
                   std::strerror(errno));
  }
  return fd;
}

}  // namespace

TensorServer::TensorServer(ServerOptions opts)
    : opts_(std::move(opts)), service_(opts_.serve) {
  BCSF_CHECK(!opts_.unix_path.empty(), "server: unix_path is required");
  if (opts_.queue_watermark == 0) {
    opts_.queue_watermark = 4 * service_.workers();
  }
  if (!opts_.record_path.empty()) {
    recorder_ = std::make_unique<trace::TraceRecorder>(opts_.record_path);
  }

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    throw NetError(std::string("server: pipe() failed: ") +
                   std::strerror(errno));
  }
  wake_read_ = FdHandle(pipe_fds[0]);
  wake_write_ = FdHandle(pipe_fds[1]);

  bind_unix();
  if (opts_.tcp_port >= 0) bind_tcp();

  accept_thread_ = std::thread([this] { accept_loop(); });
}

TensorServer::~TensorServer() { stop(); }

void TensorServer::bind_unix() {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  BCSF_CHECK(opts_.unix_path.size() < sizeof(addr.sun_path),
             "server: unix_path too long: " << opts_.unix_path);
  std::strncpy(addr.sun_path, opts_.unix_path.c_str(),
               sizeof(addr.sun_path) - 1);
  ::unlink(opts_.unix_path.c_str());  // stale socket from a dead server

  FdHandle fd(checked_socket(AF_UNIX));
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    throw NetError("server: bind('" + opts_.unix_path +
                   "') failed: " + std::strerror(errno));
  }
  if (::listen(fd.get(), 64) != 0) {
    throw NetError(std::string("server: listen() failed: ") +
                   std::strerror(errno));
  }
  unix_fd_ = std::move(fd);
}

void TensorServer::bind_tcp() {
  FdHandle fd(checked_socket(AF_INET));
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(opts_.tcp_port));
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    throw NetError("server: bind(tcp " + std::to_string(opts_.tcp_port) +
                   ") failed: " + std::strerror(errno));
  }
  if (::listen(fd.get(), 64) != 0) {
    throw NetError(std::string("server: listen(tcp) failed: ") +
                   std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    throw NetError(std::string("server: getsockname() failed: ") +
                   std::strerror(errno));
  }
  tcp_port_ = ntohs(addr.sin_port);
  tcp_fd_ = std::move(fd);
}

void TensorServer::accept_loop() {
  for (;;) {
    pollfd fds[3];
    nfds_t n = 0;
    fds[n++] = {wake_read_.get(), POLLIN, 0};
    fds[n++] = {unix_fd_.get(), POLLIN, 0};
    if (tcp_fd_.valid()) fds[n++] = {tcp_fd_.get(), POLLIN, 0};

    if (::poll(fds, n, -1) < 0) {
      if (errno == EINTR) continue;
      BCSF_WARN << "server: poll failed: " << std::strerror(errno);
      return;
    }
    if (stopping_.load(std::memory_order_acquire)) return;

    for (nfds_t i = 1; i < n; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      const int conn_fd = ::accept(fds[i].fd, nullptr, nullptr);
      if (conn_fd < 0) continue;  // raced a close / transient error
      stat_connections_.fetch_add(1, std::memory_order_relaxed);
      auto conn = std::make_unique<Connection>();
      conn->fd = FdHandle(conn_fd);
      Connection& ref = *conn;
      {
        MutexLock lock(conns_mutex_);
        conns_.push_back(std::move(conn));
      }
      // Spawn the writer first so a reader that exits instantly (client
      // connected and hung up) still has a writer to hand closing to.
      ref.writer = std::thread([this, &ref] { writer_loop(ref); });
      ref.reader = std::thread([this, &ref] { reader_loop(ref); });
    }
  }
}

void TensorServer::record(MsgType type,
                          std::span<const std::uint8_t> payload) {
  if (recorder_) recorder_->record(type, payload);
}

TensorServer::Outgoing TensorServer::dispatch(Frame& frame) {
  Outgoing out;
  const std::uint64_t id = peek_id(frame.payload);
  out.id = id;
  stat_requests_.fetch_add(1, std::memory_order_relaxed);

  if (!known_msg_type(static_cast<std::uint8_t>(frame.type))) {
    // Framing is intact -- answer in-band and keep the connection.
    out.type = MsgType::kError;
    out.payload = encode_error(
        {id, "unknown message type " +
                 std::to_string(static_cast<unsigned>(frame.type))});
    return out;
  }

  switch (frame.type) {
    case MsgType::kRegister: {
      try {
        RegisterMsg msg = decode_register(frame.payload);
        record(frame.type, frame.payload);
        service_.register_tensor(msg.name, share_tensor(std::move(msg.tensor)));
        out.type = MsgType::kAck;
        out.payload = encode_ack(make_ack(msg.id, 0));
      } catch (const ProtocolError&) {
        throw;  // framing-level: the reader drops the connection
      } catch (const Error& e) {
        out.type = MsgType::kError;
        out.payload = encode_error({id, e.what()});
      }
      return out;
    }
    case MsgType::kUpdate: {
      try {
        UpdateMsg msg = decode_update(frame.payload);
        record(frame.type, frame.payload);
        const std::uint64_t version =
            service_.apply_updates(msg.name, std::move(msg.updates));
        out.type = MsgType::kAck;
        out.payload = encode_ack(make_ack(msg.id, version));
      } catch (const ProtocolError&) {
        throw;
      } catch (const Error& e) {
        out.type = MsgType::kError;
        out.payload = encode_error({id, e.what()});
      }
      return out;
    }
    case MsgType::kQuery: {
      try {
        QueryMsg msg = decode_query(frame.payload);
        // Admission: bounded in-flight work, checked BEFORE the service
        // accepts the query.  Rejected queries cost a decode and one
        // small reply -- they never touch the worker pool.
        const std::size_t in_flight =
            in_flight_.load(std::memory_order_acquire);
        if (in_flight >= opts_.max_in_flight ||
            service_.queue_depth() > opts_.queue_watermark) {
          stat_rejected_.fetch_add(1, std::memory_order_relaxed);
          out.type = MsgType::kOverloaded;
          out.payload = encode_error(
              {msg.id, "server overloaded (" + std::to_string(in_flight) +
                           " in flight, queue depth " +
                           std::to_string(service_.queue_depth()) + ")"});
          return out;
        }
        record(frame.type, frame.payload);
        out.id = msg.id;
        // submit() validates synchronously (unknown tensor, bad mode)
        // and may throw -- count the query in flight only once it is
        // actually accepted, or the admission counter leaks upward.
        std::future<ServeResponse> accepted =
            service_.submit(to_request(std::move(msg)));
        in_flight_.fetch_add(1, std::memory_order_acq_rel);
        out.pending = true;
        out.response = std::move(accepted);
      } catch (const ProtocolError&) {
        throw;
      } catch (const Error& e) {
        out.pending = false;
        out.type = MsgType::kError;
        out.payload = encode_error({id, e.what()});
      }
      return out;
    }
    case MsgType::kPing: {
      // Pings double as the fleet-stats probe (DESIGN.md §10): the ack
      // carries the storage budget, current residency, eviction count,
      // and a per-tenant accounting table.
      AckMsg ack;
      ack.id = decode_id(frame.payload);
      ack.budget_bytes = service_.storage_budget_bytes();
      ack.resident_bytes = service_.resident_bytes();
      ack.evictions = service_.eviction_count();
      for (const TensorOpService::TenantStats& t : service_.tenant_stats()) {
        ack.tenants.push_back({t.name, t.plan_bytes, t.delta_bytes, t.calls,
                               t.structured_served, t.evictions, t.sketch_nnz,
                               t.norm_sq});
      }
      out.type = MsgType::kAck;
      out.payload = encode_ack(ack);
      return out;
    }
    case MsgType::kShutdown: {
      record(frame.type, frame.payload);
      out.type = MsgType::kAck;
      out.payload = encode_ack(make_ack(decode_id(frame.payload), 0));
      {
        MutexLock lock(state_mutex_);
        shutdown_requested_ = true;
      }
      state_cv_.notify_all();
      return out;
    }
    default:
      // Server-to-client tags arriving at the server: protocol-legal
      // nonsense; answer kError, keep the connection.
      out.type = MsgType::kError;
      out.payload = encode_error(
          {id, "unexpected message type " +
                   std::to_string(static_cast<unsigned>(frame.type))});
      return out;
  }
}

void TensorServer::enqueue(Connection& conn, Outgoing out) {
  {
    MutexLock lock(conn.m);
    conn.queue.push_back(std::move(out));
  }
  conn.cv.notify_one();
}

void TensorServer::reader_loop(Connection& conn) {
  try {
    Frame frame;
    while (read_frame(conn.fd.get(), frame)) {
      enqueue(conn, dispatch(frame));
    }
  } catch (const ProtocolError& e) {
    stat_protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    BCSF_WARN << "server: dropping connection: " << e.what();
  } catch (const NetError& e) {
    BCSF_WARN << "server: connection read error: " << e.what();
  }
  // Reader is done (EOF, framing violation, or SHUT_RD from stop()).
  // Hand the connection to the writer: it drains everything already
  // accepted, then the socket closes.
  {
    MutexLock lock(conn.m);
    conn.closing = true;
  }
  conn.cv.notify_one();
}

void TensorServer::writer_loop(Connection& conn) {
  bool peer_alive = true;
  for (;;) {
    Outgoing out;
    {
      MutexLock lock(conn.m);
      while (!conn.closing && conn.queue.empty()) conn.cv.wait(lock);
      if (conn.queue.empty()) break;  // closing && drained
      out = std::move(conn.queue.front());
      conn.queue.pop_front();
    }

    MsgType type = out.type;
    std::vector<std::uint8_t> payload = std::move(out.payload);
    if (out.pending) {
      // Block on the future even when the peer is gone: the in-flight
      // count must come back down and the response must be consumed --
      // this is the "zero stranded futures" drain guarantee.
      try {
        const ServeResponse response = out.response.get();
        type = MsgType::kResult;
        payload = encode_result(to_result(out.id, response));
      } catch (const Error& e) {
        type = MsgType::kError;
        payload = encode_error({out.id, e.what()});
      } catch (const std::exception& e) {
        type = MsgType::kError;
        payload = encode_error({out.id, e.what()});
      }
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    }

    if (!peer_alive) continue;  // keep draining, stop writing
    try {
      write_frame(conn.fd.get(), type, payload);
      record(type, payload);
    } catch (const NetError&) {
      peer_alive = false;  // mid-request disconnect; finish the drain
    }
  }
  conn.dead.store(true, std::memory_order_release);
}

void TensorServer::wait() {
  MutexLock lock(state_mutex_);
  while (!shutdown_requested_) state_cv_.wait(lock);
}

void TensorServer::stop() {
  std::call_once(stop_once_, [this] {
    stopping_.store(true, std::memory_order_release);

    // 1. Stop accepting: wake the poll via the self-pipe, join, close
    //    the listeners.
    const char byte = 'x';
    [[maybe_unused]] const ssize_t w = ::write(wake_write_.get(), &byte, 1);
    if (accept_thread_.joinable()) accept_thread_.join();
    unix_fd_.reset();
    tcp_fd_.reset();
    ::unlink(opts_.unix_path.c_str());

    // 2./3. Readers see EOF via SHUT_RD (no new requests on any
    //    connection), writers drain every accepted request, then join.
    {
      MutexLock lock(conns_mutex_);
      for (auto& conn : conns_) {
        if (conn->fd.valid()) ::shutdown(conn->fd.get(), SHUT_RD);
      }
      for (auto& conn : conns_) {
        if (conn->reader.joinable()) conn->reader.join();
        if (conn->writer.joinable()) conn->writer.join();
        conn->fd.reset();
      }
      conns_.clear();
    }

    // 4. Background work (upgrades/compactions) finishes too.
    service_.wait_idle();

    // Unblock wait() for owners stopping from another thread.
    {
      MutexLock lock(state_mutex_);
      shutdown_requested_ = true;
    }
    state_cv_.notify_all();
  });
}

TensorServer::Stats TensorServer::stats() const {
  Stats s;
  s.connections = stat_connections_.load(std::memory_order_relaxed);
  s.requests = stat_requests_.load(std::memory_order_relaxed);
  s.rejected = stat_rejected_.load(std::memory_order_relaxed);
  s.protocol_errors = stat_protocol_errors_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace bcsf::net
