// Length-prefixed binary framing for the tensord front-end and the trace
// files (DESIGN.md §9).
//
// Every message on a tensord connection -- and every record in a trace
// file, which deliberately reuses the identical encoding -- is one frame:
//
//      u32 length (LE) | u8 type | payload[length]
//
// `length` counts the payload bytes only (not the 5 header bytes) and is
// capped at kMaxFramePayload, so a corrupt or hostile length can neither
// allocate unbounded memory nor desynchronize the stream silently.  The
// payload encoding per type lives in net/wire.hpp; this header is only
// about getting whole frames on and off a file descriptor.
//
// Error taxonomy (what the server's per-connection loop keys off):
//   * clean EOF before any header byte  -> read_frame returns false
//     (client hung up between requests; normal)
//   * EOF mid-frame, oversize length    -> ProtocolError (framing is
//     unrecoverable; the connection must be dropped)
//   * read()/write() failures           -> NetError (socket died)
// An UNKNOWN type tag is not a framing error: the frame boundary is still
// trustworthy, so the server answers kError and keeps the connection.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace bcsf::net {

/// Transport/socket failure (connect refused, peer reset, write on a
/// closed socket).  The connection is unusable afterwards.
class NetError : public Error {
 public:
  explicit NetError(const std::string& what) : Error(what) {}
};

/// The peer violated the framing or payload encoding (truncated frame,
/// oversize length, malformed message body).  Recovery is per-connection:
/// the stream position can no longer be trusted, so the reader drops the
/// connection -- but the server itself stays up.
class ProtocolError : public NetError {
 public:
  explicit ProtocolError(const std::string& what) : NetError(what) {}
};

/// The server refused a query because its admission control tripped
/// (bounded in-flight count or worker-queue watermark, DESIGN.md §9).
/// Retryable by design: back off and resubmit.
class OverloadedError : public Error {
 public:
  explicit OverloadedError(const std::string& what) : Error(what) {}
};

/// Frame type tags.  Requests carry a client-chosen u64 id as the first
/// payload field; every response echoes it, which is what lets the client
/// pipeline requests and match completions out of band.
enum class MsgType : std::uint8_t {
  // client -> server
  kRegister = 1,  ///< id, name, COO tensor       -> kAck(version 0)
  kUpdate = 2,    ///< id, name, COO batch        -> kAck(new version)
  kQuery = 3,     ///< id, ServeRequest mirror    -> kResult
  kShutdown = 4,  ///< id; ask for graceful stop  -> kAck, then drain+exit
  kPing = 5,      ///< id; liveness probe         -> kAck(version 0)
  // server -> client
  kAck = 16,         ///< id, u64 version
  kResult = 17,      ///< id, ServeResponse mirror
  kError = 18,       ///< id, message (request failed; connection lives on)
  kOverloaded = 19,  ///< id, message (admission reject; retry later)
  // trace files only
  kTraceHeader = 32,  ///< magic + format version; first frame of a trace
};

/// True for tags this build knows how to decode (an unknown tag from a
/// newer/foreign peer is answered with kError, not a dropped connection).
bool known_msg_type(std::uint8_t tag);

struct Frame {
  MsgType type = MsgType::kPing;
  std::vector<std::uint8_t> payload;
};

/// Hard cap on one frame's payload.  Large enough for a ~100M-nnz COO
/// register message; small enough that a garbage length fails fast.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 30;

/// Reads exactly one frame.  Returns false on clean EOF before the first
/// header byte; throws ProtocolError on truncation/oversize and NetError
/// on read failure.  Retries EINTR internally.
bool read_frame(int fd, Frame& out);

/// Writes one frame (header + payload) fully; throws NetError on failure.
/// Uses MSG_NOSIGNAL semantics: a peer that hung up raises NetError
/// instead of SIGPIPE.  Safe for concurrent callers ONLY with external
/// serialization (the client's write mutex, the server's single writer).
void write_frame(int fd, MsgType type, std::span<const std::uint8_t> payload);

/// Appends the exact on-wire bytes of a frame to `buf` -- the trace file
/// and the replay response logs are plain concatenations of these.
void append_frame(std::vector<std::uint8_t>& buf, MsgType type,
                  std::span<const std::uint8_t> payload);

/// RAII owner of a file descriptor (sockets, trace files).
class FdHandle {
 public:
  FdHandle() = default;
  explicit FdHandle(int fd) : fd_(fd) {}
  ~FdHandle() { reset(); }
  FdHandle(const FdHandle&) = delete;
  FdHandle& operator=(const FdHandle&) = delete;
  FdHandle(FdHandle&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  FdHandle& operator=(FdHandle&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void reset();
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

}  // namespace bcsf::net
