// TensorClient: the blocking/async client half of the tensord protocol
// (DESIGN.md §9).  One socket, three threads touch it:
//
//   * callers serialize their frame WRITES through a mutex (frames are
//     written whole, so interleaving at frame granularity is safe);
//   * one background reader thread owns all READS, matching response
//     frames to callers by the echoed request id and completing their
//     promises.
//
// That split is what makes the client pipelined: any number of
// query_async() calls may be outstanding; responses complete in server
// order, not call order.  The synchronous helpers (register_tensor,
// apply_updates, query, ping) are submit + wait.
//
// Error mapping: kError completes the caller's future with bcsf::Error,
// kOverloaded with OverloadedError (retryable by contract), and a dead
// connection fails every outstanding and future call with NetError.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "net/wire.hpp"
#include "util/thread_annotations.hpp"

namespace bcsf::net {

class TensorClient {
 public:
  /// Connects to a tensord unix-domain socket; throws NetError.
  explicit TensorClient(const std::string& unix_path);
  /// Connects over TCP (tensord binds loopback only).
  TensorClient(const std::string& host, int port);
  /// Closes the socket and joins the reader; outstanding futures fail
  /// with NetError.
  ~TensorClient();

  TensorClient(const TensorClient&) = delete;
  TensorClient& operator=(const TensorClient&) = delete;

  /// Registers `tensor` under `name` on the server.  Throws bcsf::Error
  /// (server-side failure) or NetError.
  void register_tensor(const std::string& name, const SparseTensor& tensor);
  /// Applies an additive update batch; returns the new snapshot version.
  std::uint64_t apply_updates(const std::string& name,
                              const SparseTensor& updates);
  /// Executes one query and blocks for the result.  Throws
  /// OverloadedError on admission reject, bcsf::Error on failure.
  ResultMsg query(QueryMsg msg);
  /// Pipelined query: returns immediately; resolve with result_of().
  /// The returned future carries the raw response frame.
  std::future<Frame> query_async(QueryMsg msg);
  /// Liveness probe (kPing -> kAck round trip).
  void ping();
  /// Ping returning the full decoded ack: the server's storage-budget
  /// fleet stats and per-tenant accounting table (DESIGN.md §10).
  AckMsg ping_stats();
  /// Asks the server to shut down gracefully; returns once the server
  /// acknowledged (it drains and exits after).
  void shutdown_server();

  /// Interprets a response frame: kResult decodes, kOverloaded throws
  /// OverloadedError, kError throws bcsf::Error.
  static ResultMsg result_of(Frame frame);

  /// True until the connection dies (EOF or transport error).
  bool connected() const { return connected_.load(std::memory_order_acquire); }

 private:
  explicit TensorClient(FdHandle fd);

  std::uint64_t next_id() {
    return id_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  /// Registers a pending completion for `id`, writes the frame, returns
  /// the future.  Thread-safe.
  std::future<Frame> send(std::uint64_t id, MsgType type,
                          std::span<const std::uint8_t> payload);
  /// Blocks on a kAck reply; maps kError/kOverloaded to throws.
  std::uint64_t ack_of(std::future<Frame> future);
  void reader_loop();
  void fail_pending(const std::string& why);

  FdHandle fd_;
  /// Serializes frame writes; never nests with pending_mutex_ (send()
  /// registers the pending entry, releases, THEN takes the write lock).
  Mutex write_mutex_;
  std::thread reader_;
  std::atomic<bool> connected_{true};
  std::atomic<std::uint64_t> id_counter_{0};

  Mutex pending_mutex_;
  std::map<std::uint64_t, std::promise<Frame>> pending_
      BCSF_GUARDED_BY(pending_mutex_);
};

}  // namespace bcsf::net
