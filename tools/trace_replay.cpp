// trace_replay: replays a tensord trace (DESIGN.md §9) and emits the
// deterministic response log the replay gate compares byte for byte.
//
// Two modes:
//
//   in-process (default)   Builds its own TensorOpService and applies
//                          each recorded request directly, draining the
//                          service to idle between events (strict
//                          replay; see trace/trace.hpp).
//   --socket=PATH          Drives a RUNNING tensord over its unix socket
//                          instead, one request at a time.  Run that
//                          server with --deterministic for byte-stable
//                          logs.
//
// Either way the response log normalizes ids to the TRACE's original
// request ids, so in-process and socket replays of the same trace are
// directly comparable.
//
//   trace_replay --trace=serve.trace --out=replay.bin [--socket=PATH]
//                [--connections=N] [--normalize] [--shutdown]
//                [--workers=N --shards=K ...]
//
// --connections=N (socket mode, N > 1) switches to the interleaved
// multi-connection replay of trace/trace.hpp: queries are pipelined
// round-robin across N clients and the log normalizes the
// timing-dependent ResultMsg fields.  Compare against an in-process
// replay run with --normalize.
// --shutdown (socket mode) sends kShutdown after the replay so a tensord
// launched just for the replay exits -- the CI gate's cleanup.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <utility>
#include <vector>

#include "net/client.hpp"
#include "net/convert.hpp"
#include "net/wire.hpp"
#include "serve/tensor_op_service.hpp"
#include "trace/trace.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

namespace {

std::uint64_t fnv1a(const std::vector<std::uint8_t>& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

void write_file(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  BCSF_CHECK(f != nullptr, "trace_replay: cannot open '" << path << "'");
  const std::size_t n = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  BCSF_CHECK(n == bytes.size(), "trace_replay: short write to '" << path
                                                                 << "'");
}

/// Socket-mode replay: each recorded request becomes one synchronous
/// client call; responses land in the log under the trace's original id.
bcsf::trace::ReplayResult replay_over_socket(const std::string& socket_path,
                                             bcsf::trace::TraceReader& reader,
                                             bool shutdown_after) {
  using namespace bcsf;
  trace::ReplayResult result;
  net::TensorClient client(socket_path);
  net::Frame frame;
  while (reader.next(frame)) {
    const std::uint64_t orig_id = net::peek_id(frame.payload);
    std::vector<std::uint8_t> reply;
    net::MsgType reply_type = net::MsgType::kAck;
    switch (frame.type) {
      case net::MsgType::kRegister: {
        ++result.events;
        try {
          net::RegisterMsg msg = net::decode_register(frame.payload);
          client.register_tensor(msg.name, msg.tensor);
          reply = net::encode_ack(net::make_ack(orig_id, 0));
        } catch (const Error& e) {
          reply_type = net::MsgType::kError;
          reply = net::encode_error({orig_id, e.what()});
        }
        break;
      }
      case net::MsgType::kUpdate: {
        ++result.events;
        try {
          net::UpdateMsg msg = net::decode_update(frame.payload);
          const std::uint64_t version =
              client.apply_updates(msg.name, msg.updates);
          reply = net::encode_ack(net::make_ack(orig_id, version));
        } catch (const Error& e) {
          reply_type = net::MsgType::kError;
          reply = net::encode_error({orig_id, e.what()});
        }
        break;
      }
      case net::MsgType::kQuery: {
        ++result.events;
        try {
          net::QueryMsg msg = net::decode_query(frame.payload);
          net::ResultMsg res = client.query(std::move(msg));
          res.id = orig_id;  // normalize: client ids are its own counter
          reply_type = net::MsgType::kResult;
          reply = net::encode_result(res);
        } catch (const Error& e) {
          reply_type = net::MsgType::kError;
          reply = net::encode_error({orig_id, e.what()});
        }
        break;
      }
      default:
        // Recorded responses / pings / shutdowns; a recorded kOverloaded
        // is a query the original server rejected at admission.
        if (frame.type == net::MsgType::kOverloaded) ++result.rejected;
        ++result.skipped;
        continue;
    }
    net::append_frame(result.log, reply_type, reply);
  }
  if (shutdown_after) client.shutdown_server();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    bcsf::CliParser cli(argc, argv);
    const std::string trace_path = cli.get_string("trace", "");
    if (trace_path.empty()) {
      std::cout << "usage: " << cli.program()
                << " --trace=PATH [--out=PATH] [--socket=PATH]\n"
                << "       [--workers=N --shards=K --initial-format=F"
                << " --upgrade-format=F]\n";
      return EXIT_FAILURE;
    }

    bcsf::trace::TraceReader reader(trace_path);
    bcsf::trace::ReplayResult result;
    const std::string socket_path = cli.get_string("socket", "");
    const std::size_t connections =
        static_cast<std::size_t>(cli.get_int("connections", 1));
    if (!socket_path.empty() && connections > 1) {
      result = bcsf::trace::replay_trace_sockets(socket_path, reader,
                                                 connections);
      if (cli.get_bool("shutdown", false)) {
        bcsf::net::TensorClient(socket_path).shutdown_server();
      }
    } else if (!socket_path.empty()) {
      result = replay_over_socket(socket_path, reader,
                                  cli.get_bool("shutdown", false));
    } else {
      bcsf::ServeOptions opts;
      opts.workers = static_cast<unsigned>(cli.get_int("workers", 4));
      opts.shards = static_cast<unsigned>(cli.get_int("shards", 1));
      opts.initial_format = cli.get_string("initial-format", "coo");
      opts.upgrade_format = cli.get_string("upgrade-format", "auto");
      opts.upgrade_threshold = cli.get_double("upgrade-threshold", 0.0);
      bcsf::TensorOpService service(opts);
      result = bcsf::trace::replay_trace(service, reader);
    }

    if (cli.get_bool("normalize", false)) {
      result.log = bcsf::trace::normalize_replay_log(result.log);
    }

    const std::string out_path = cli.get_string("out", "");
    if (!out_path.empty()) write_file(out_path, result.log);

    std::cout << "trace_replay: " << result.events << " events, "
              << result.skipped << " recorded responses skipped, "
              << result.rejected << " recorded rejects, log "
              << result.log.size() << " bytes, fnv1a 0x" << std::hex
              << fnv1a(result.log) << std::dec << "\n";
    return EXIT_SUCCESS;
  } catch (const std::exception& e) {
    std::cerr << "trace_replay: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
}
