// tensord: the B-CSF serving stack as a daemon (DESIGN.md §9).
//
// Wraps one TensorOpService behind the framed socket protocol of net/ --
// a unix-domain socket always, TCP on loopback when asked -- with
// admission control, graceful drain on shutdown, and optional trace
// recording for later replay (tools/trace_replay).
//
//   tensord --unix=/tmp/tensord.sock [--tcp=0] [--workers=4] [--shards=1]
//           [--record=serve.trace] [--max-in-flight=256] [--watermark=0]
//           [--deterministic]
//
// --deterministic pins the pool to ONE worker, which makes the service's
// background work (format upgrades, shard compactions) drain in FIFO
// order between sequentially-issued requests -- the property the
// deterministic-replay gate relies on.  The server exits after a client
// sends kShutdown (or on SIGTERM via normal process teardown).
#include <cstddef>
#include <cstdlib>
#include <iostream>
#include <string>

#include "net/server.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

namespace {

void usage(const char* prog) {
  std::cout
      << "usage: " << prog << " --unix=PATH [options]\n"
      << "  --unix=PATH          unix-domain socket to listen on (required)\n"
      << "  --tcp=PORT           also listen on 127.0.0.1:PORT (0 = ephemeral)\n"
      << "  --workers=N          service worker threads (default 4)\n"
      << "  --shards=K           shards per tensor (0 = auto, default 1)\n"
      << "  --initial-format=F   zero-preprocessing serving format (coo)\n"
      << "  --upgrade-format=F   structured upgrade target (auto)\n"
      << "  --upgrade-threshold=N  calls before upgrading (0 = policy)\n"
      << "  --max-in-flight=N    admission cap on outstanding queries (256)\n"
      << "  --watermark=N        reject when worker queue deeper (0 = 4*W)\n"
      << "  --budget=BYTES       structured-storage budget, 0 = unlimited\n"
      << "                       (accepts K/M/G suffixes; DESIGN.md §10)\n"
      << "  --record=PATH        record all traffic to a replayable trace\n"
      << "  --deterministic      one worker; FIFO background work (replay)\n";
}

// "64M" / "2G" / "123456" -> bytes (binary suffixes).
std::size_t parse_bytes(const std::string& spec) {
  BCSF_CHECK(!spec.empty(), "tensord: empty --budget value");
  std::size_t end = 0;
  const unsigned long long value = std::stoull(spec, &end);
  std::size_t shift = 0;
  if (end < spec.size()) {
    BCSF_CHECK(end + 1 == spec.size(),
               "tensord: bad --budget value '" << spec << "'");
    switch (spec[end]) {
      case 'k': case 'K': shift = 10; break;
      case 'm': case 'M': shift = 20; break;
      case 'g': case 'G': shift = 30; break;
      default:
        throw bcsf::Error("tensord: bad --budget suffix in '" + spec + "'");
    }
  }
  return static_cast<std::size_t>(value) << shift;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    bcsf::CliParser cli(argc, argv);
    if (cli.has("help")) {
      usage(cli.program().c_str());
      return EXIT_SUCCESS;
    }

    bcsf::net::ServerOptions opts;
    opts.unix_path = cli.get_string("unix", "");
    if (opts.unix_path.empty()) {
      usage(cli.program().c_str());
      return EXIT_FAILURE;
    }
    opts.tcp_port = static_cast<int>(cli.get_int("tcp", -1));
    opts.record_path = cli.get_string("record", "");
    opts.max_in_flight =
        static_cast<std::size_t>(cli.get_int("max-in-flight", 256));
    opts.queue_watermark =
        static_cast<std::size_t>(cli.get_int("watermark", 0));
    opts.serve.workers = static_cast<unsigned>(cli.get_int("workers", 4));
    opts.serve.shards = static_cast<unsigned>(cli.get_int("shards", 1));
    opts.serve.initial_format = cli.get_string("initial-format", "coo");
    opts.serve.upgrade_format = cli.get_string("upgrade-format", "auto");
    opts.serve.upgrade_threshold = cli.get_double("upgrade-threshold", 0.0);
    opts.serve.storage_budget_bytes = parse_bytes(cli.get_string("budget", "0"));
    if (cli.get_bool("deterministic", false)) opts.serve.workers = 1;

    bcsf::net::TensorServer server(std::move(opts));
    std::cout << "tensord: listening on " << server.unix_path();
    if (server.tcp_port() >= 0) {
      std::cout << " and 127.0.0.1:" << server.tcp_port();
    }
    std::cout << std::endl;  // flush: launch scripts wait for this line

    server.wait();  // until a client's kShutdown
    server.stop();

    const auto stats = server.stats();
    std::cout << "tensord: served " << stats.requests << " requests on "
              << stats.connections << " connections (" << stats.rejected
              << " rejected, " << stats.protocol_errors
              << " protocol errors)\n";
    const auto& service = server.service();
    if (service.storage_budget_bytes() > 0) {
      std::cout << "tensord: budget " << service.storage_budget_bytes()
                << " bytes, resident " << service.resident_bytes() << " (peak "
                << service.peak_plan_resident_bytes() << " plan), "
                << service.eviction_count() << " evictions, "
                << service.upgrade_reject_count() << " upgrade rejects\n";
    }
    return EXIT_SUCCESS;
  } catch (const std::exception& e) {
    std::cerr << "tensord: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
}
