#!/usr/bin/env python3
"""bcsf_lint: project-invariant linter for the bcsf tree (DESIGN.md §11).

Each rule encodes an invariant that a past PR's bug class motivated --
the rule table in DESIGN.md §11 maps every rule to the incident behind
it.  Rules are data: one JSON file per rule under tools/lint/, loaded
and executed by the engines in this script:

  regex            Strip comments + string literals, then flag lines
                   matching `pattern` unless an `allow` pattern also
                   matches.  Scoped by `paths` / `exclude` globs.
  include-hygiene  Every header carries #pragma once near the top, and
                   a .cpp whose own header (<dir>/<stem>.hpp) exists
                   must include it FIRST (catches hidden transitive-
                   include dependencies).

Waivers (tools/lint/waivers.txt) suppress individual findings:

    rule-id|path-glob|line-snippet|justification

The justification is REQUIRED -- a waiver without one is itself an
error -- and a waiver that matches nothing is STALE and fails the run,
so dead waivers cannot accumulate after the offending code is fixed.

Exit status: 0 clean, 1 findings or stale waivers, 2 usage/config
error.  `--selftest` runs the fixture suite under tests/lint_selftest/
(each fixture declares, in lint-selftest-* directives, the virtual path
it pretends to live at and the single rule it must trip) plus a waiver
round-trip; it needs no network and writes only to a temp dir.

Stdlib only, Python >= 3.8.  Run from anywhere:  python3 tools/bcsf_lint.py
"""

import argparse
import fnmatch
import json
import re
import shutil
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RULES_DIR = Path(__file__).resolve().parent / "lint"
DEFAULT_WAIVERS = RULES_DIR / "waivers.txt"
FIXTURES_DIR = REPO_ROOT / "tests" / "lint_selftest"


class ConfigError(Exception):
    pass


# --------------------------------------------------------------------------
# Source scrubbing: blank out comments and string/char literals while
# preserving line structure, so patterns only see code.


def strip_code(text):
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(quote)
            elif c == "\n":  # unterminated (macro trickery); bail to code
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        i += 1
    return "".join(out)


# --------------------------------------------------------------------------
# Rule loading and file selection.

REQUIRED_KEYS = {"id", "engine", "description", "message", "paths"}


def load_rules(rules_dir):
    rules = []
    for path in sorted(rules_dir.glob("*.json")):
        with open(path) as f:
            rule = json.load(f)
        missing = REQUIRED_KEYS - rule.keys()
        if missing:
            raise ConfigError(f"{path.name}: missing keys {sorted(missing)}")
        if rule["engine"] not in ("regex", "include-hygiene"):
            raise ConfigError(f"{path.name}: unknown engine {rule['engine']}")
        if rule["engine"] == "regex" and "pattern" not in rule:
            raise ConfigError(f"{path.name}: regex rule needs 'pattern'")
        rules.append(rule)
    if not rules:
        raise ConfigError(f"no rule files in {rules_dir}")
    return rules


def rule_files(root, rule):
    excludes = rule.get("exclude", [])
    seen = set()
    for pattern in rule["paths"]:
        for path in sorted(root.glob(pattern)):
            if not path.is_file():
                continue
            rel = path.relative_to(root).as_posix()
            if rel in seen:
                continue
            if any(fnmatch.fnmatch(rel, ex) for ex in excludes):
                continue
            seen.add(rel)
            yield rel, path


# --------------------------------------------------------------------------
# Engines.  A finding is (rule_id, rel_path, line_no, line_text, message).


def run_regex(rule, root):
    pattern = re.compile(rule["pattern"])
    allows = [re.compile(a) for a in rule.get("allow", [])]
    findings = []
    for rel, path in rule_files(root, rule):
        raw_lines = path.read_text().splitlines()
        code_lines = strip_code(path.read_text()).splitlines()
        for no, code in enumerate(code_lines, 1):
            if not pattern.search(code):
                continue
            if any(a.search(code) for a in allows):
                continue
            findings.append(
                (rule["id"], rel, no, raw_lines[no - 1].strip(), rule["message"])
            )
    return findings


def run_include_hygiene(rule, root):
    findings = []
    for rel, path in rule_files(root, rule):
        text = path.read_text()
        if path.suffix in (".hpp", ".h"):
            # #pragma once must appear before any non-comment line.
            ok = False
            for line in strip_code(text).splitlines():
                s = line.strip()
                if s == "#pragma once":
                    ok = True
                    break
                if s:  # first real code line without the pragma
                    break
            if not ok:
                findings.append(
                    (rule["id"], rel, 1, "(file header)",
                     "header lacks #pragma once before any code")
                )
        elif path.suffix == ".cpp":
            own = path.with_suffix(".hpp")
            if not own.exists():
                continue
            own_rel = own.relative_to(root).as_posix()
            # The include path is rooted at src/ in this tree.
            own_inc = re.sub(r"^src/", "", own_rel)
            first = None
            raw_lines = text.splitlines()
            # Detect include directives on COMMENT-STRIPPED lines (so a
            # commented-out #include does not count) but read the path
            # from the raw line -- stripping blanks string literals,
            # including the "path" of the directive itself.
            for no, line in enumerate(strip_code(text).splitlines(), 1):
                if not re.match(r"\s*#\s*include\b", line):
                    continue
                m = re.match(r'\s*#\s*include\s+[<"]([^">]+)[">]',
                             raw_lines[no - 1])
                first = (no, m.group(1) if m else "(unparsed)")
                break
            if first is None or first[1] not in (own_inc, own_rel):
                where, inc = first if first else (1, "(no include)")
                findings.append(
                    (rule["id"], rel, where, f"#include {inc}",
                     f"own header {own_inc} must be the first include")
                )
    return findings


ENGINES = {"regex": run_regex, "include-hygiene": run_include_hygiene}


# --------------------------------------------------------------------------
# Waivers.


def load_waivers(path):
    waivers = []
    if path is None or not path.exists():
        return waivers
    for no, line in enumerate(path.read_text().splitlines(), 1):
        s = line.strip()
        if not s or s.startswith("#"):
            continue
        parts = [p.strip() for p in s.split("|")]
        if len(parts) != 4 or not all(parts):
            raise ConfigError(
                f"{path}:{no}: waiver needs 'rule|path|snippet|justification'"
                " with every field non-empty (the justification is mandatory)"
            )
        waivers.append(
            {"rule": parts[0], "path": parts[1], "snippet": parts[2],
             "justification": parts[3], "line": no, "used": False}
        )
    return waivers


def apply_waivers(findings, waivers):
    kept = []
    for f in findings:
        rule_id, rel, _no, text, _msg = f
        waived = False
        for w in waivers:
            if (w["rule"] == rule_id and fnmatch.fnmatch(rel, w["path"])
                    and w["snippet"] in text):
                w["used"] = True
                waived = True
        if not waived:
            kept.append(f)
    return kept


# --------------------------------------------------------------------------
# Driver.


def run_lint(root, rules, waivers_path, out=sys.stdout):
    waivers = load_waivers(waivers_path)
    findings = []
    for rule in rules:
        findings.extend(ENGINES[rule["engine"]](rule, root))
    findings = apply_waivers(findings, waivers)
    stale = [w for w in waivers if not w["used"]]

    for rule_id, rel, no, text, msg in findings:
        print(f"{rel}:{no}: [{rule_id}] {msg}", file=out)
        print(f"    {text}", file=out)
    for w in stale:
        print(
            f"{waivers_path}:{w['line']}: stale waiver for [{w['rule']}] "
            f"matches nothing -- delete it (was: {w['snippet']})",
            file=out,
        )
    return findings, stale


# --------------------------------------------------------------------------
# Self-test: fixtures declare their virtual location and expected rule via
#     // lint-selftest-path: src/net/bad_cast.cpp
#     // lint-selftest-expect: net-reinterpret-cast     (or: none)
#     // lint-selftest-aux: src/util/bad_order.hpp      (optional, empty file)


def fixture_directives(path):
    d = {"aux": []}
    for line in path.read_text().splitlines():
        m = re.match(r"//\s*lint-selftest-(path|expect|aux):\s*(\S+)", line)
        if m:
            if m.group(1) == "aux":
                d["aux"].append(m.group(2))
            else:
                d[m.group(1)] = m.group(2)
    if "path" not in d or "expect" not in d:
        raise ConfigError(f"{path}: missing lint-selftest-path/-expect directive")
    return d


def selftest(rules):
    fixtures = sorted(FIXTURES_DIR.glob("*.cpp")) + sorted(FIXTURES_DIR.glob("*.hpp"))
    if not fixtures:
        print(f"selftest: no fixtures under {FIXTURES_DIR}", file=sys.stderr)
        return 1
    failures = 0
    for fixture in fixtures:
        d = fixture_directives(fixture)
        with tempfile.TemporaryDirectory(prefix="bcsf_lint_") as tmp:
            root = Path(tmp)
            target = root / d["path"]
            target.parent.mkdir(parents=True, exist_ok=True)
            shutil.copy(fixture, target)
            for aux in d["aux"]:
                aux_path = root / aux
                aux_path.parent.mkdir(parents=True, exist_ok=True)
                aux_path.write_text("#pragma once\n")
            findings, _ = run_lint(root, rules, None, out=open("/dev/null", "w"))
            fired = {f[0] for f in findings}
            expected = set() if d["expect"] == "none" else {d["expect"]}
            if fired != expected:
                print(
                    f"selftest FAIL {fixture.name}: expected "
                    f"{sorted(expected) or ['none']}, got {sorted(fired) or ['none']}"
                )
                failures += 1
            else:
                print(f"selftest ok   {fixture.name}: {sorted(fired) or ['clean']}")

    # Waiver round-trip, part 1: a waiver (with justification) silences the
    # violation it names.
    bad = FIXTURES_DIR / "bad_submit.cpp"
    d = fixture_directives(bad)
    with tempfile.TemporaryDirectory(prefix="bcsf_lint_") as tmp:
        root = Path(tmp)
        target = root / d["path"]
        target.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(bad, target)
        wpath = root / "waivers.txt"
        wpath.write_text(
            f"{d['expect']}|{d['path']}|submit|selftest: deliberate fixture\n"
        )
        findings, stale = run_lint(root, rules, wpath, out=open("/dev/null", "w"))
        if findings or stale:
            print("selftest FAIL waiver-roundtrip: waived violation still fires")
            failures += 1
        else:
            print("selftest ok   waiver-roundtrip: waived violation is silent")

    # Part 2: a waiver matching nothing is stale and fails the run.
    clean = FIXTURES_DIR / "clean.cpp"
    d = fixture_directives(clean)
    with tempfile.TemporaryDirectory(prefix="bcsf_lint_") as tmp:
        root = Path(tmp)
        target = root / d["path"]
        target.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(clean, target)
        wpath = root / "waivers.txt"
        wpath.write_text(
            "bare-pool-submit|src/zzz/*.cpp|submit|selftest: nothing matches\n"
        )
        findings, stale = run_lint(root, rules, wpath, out=open("/dev/null", "w"))
        if findings or not stale:
            print("selftest FAIL stale-waiver: unused waiver did not fail the run")
            failures += 1
        else:
            print("selftest ok   stale-waiver: unused waiver fails the run")

    # Part 3: a waiver without a justification is a config error.
    with tempfile.TemporaryDirectory(prefix="bcsf_lint_") as tmp:
        wpath = Path(tmp) / "waivers.txt"
        wpath.write_text("bare-pool-submit|src/a.cpp|submit|\n")
        try:
            load_waivers(wpath)
            print("selftest FAIL empty-justification: accepted")
            failures += 1
        except ConfigError:
            print("selftest ok   empty-justification: rejected")

    print(f"selftest: {'FAIL' if failures else 'PASS'} ({failures} failures)")
    return 1 if failures else 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, default=REPO_ROOT,
                        help="tree to lint (default: the repo)")
    parser.add_argument("--waivers", type=Path, default=DEFAULT_WAIVERS,
                        help="waiver file (default: tools/lint/waivers.txt)")
    parser.add_argument("--selftest", action="store_true",
                        help="run the fixture suite instead of linting")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    args = parser.parse_args(argv)

    try:
        rules = load_rules(RULES_DIR)
        if args.list_rules:
            for r in rules:
                print(f"{r['id']:24} {r['description']}")
                if r.get("history"):
                    print(f"{'':24} history: {r['history']}")
            return 0
        if args.selftest:
            return selftest(rules)
        findings, stale = run_lint(args.root.resolve(), rules, args.waivers)
        if findings or stale:
            print(
                f"bcsf_lint: {len(findings)} finding(s), {len(stale)} stale "
                "waiver(s)", file=sys.stderr)
            return 1
        print(f"bcsf_lint: clean ({len(rules)} rules)")
        return 0
    except ConfigError as e:
        print(f"bcsf_lint: config error: {e}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
