// Stress suite for the serving layer's ConcurrentPlanCache (DESIGN.md §5):
// 16 threads hammer the same and distinct (format, mode) keys and the
// cache must (a) call the factory exactly once per key -- single-flight --
// (b) hand every thread the same plan object, (c) produce bitwise
// identical outputs from concurrent run() calls, and (d) keep the source
// tensor alive for as long as any plan is retained (the COO-family
// lifetime rule of DESIGN.md §2).
//
// Deliberately restricted to simulated-GPU formats and the sequential
// reference: those kernels are single-threaded inside, so every data race
// a sanitizer reports here belongs to the cache itself.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bcsf/bcsf.hpp"
#include "serve_test_util.hpp"

namespace bcsf {
namespace {

using serve_test::ref_scale;
using serve_test::run_threads;

constexpr int kThreads = 16;

SparseTensor stress_tensor() {
  PowerLawConfig config;
  config.dims = {40, 50, 60};
  config.target_nnz = 3000;
  config.slice_alpha = 1.0;
  config.fiber_alpha = 1.0;
  config.max_fiber_len = 24;
  config.seed = 321;
  return generate_power_law(config);
}

/// Counting factory: wraps the real registry but tallies one build per
/// (format, mode) key and widens the race window with a sleep, so a
/// broken cache would overcount with high probability.
struct CountingFactory {
  std::atomic<int> builds{0};

  ConcurrentPlanCache::BuildFn fn() {
    return [this](const std::string& format, const SparseTensor& t,
                  index_t mode, const PlanOptions& opts) {
      builds.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      return FormatRegistry::instance().create(format, t, mode, opts);
    };
  }
};

TEST(ConcurrentCache, SingleFlightSameKey) {
  CountingFactory factory;
  ConcurrentPlanCache cache(share_tensor(stress_tensor()), {}, factory.fn());

  std::vector<SharedPlan> plans(kThreads);
  run_threads(kThreads, [&](int i) { plans[i] = cache.get("bcsf", 0); });

  EXPECT_EQ(factory.builds.load(), 1) << "single-flight violated";
  EXPECT_EQ(cache.size(), 1u);
  for (int i = 0; i < kThreads; ++i) {
    ASSERT_NE(plans[i], nullptr);
    EXPECT_EQ(plans[i].get(), plans[0].get()) << "thread " << i;
  }
}

TEST(ConcurrentCache, SingleFlightDistinctKeys) {
  CountingFactory factory;
  ConcurrentPlanCache cache(share_tensor(stress_tensor()), {}, factory.fn());

  // 16 threads over 8 distinct keys (4 formats x 2 modes): exactly one
  // build per key, and both threads of a pair get the same plan.
  const std::vector<std::string> formats = {"coo", "gpu-csf", "csl", "bcsf"};
  std::vector<SharedPlan> plans(kThreads);
  run_threads(kThreads, [&](int i) {
    const int key = i % 8;
    plans[i] = cache.get(formats[key % 4], static_cast<index_t>(key / 4));
  });

  EXPECT_EQ(factory.builds.load(), 8);
  EXPECT_EQ(cache.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(plans[i].get(), plans[i + 8].get()) << "key " << i;
  }
}

TEST(ConcurrentCache, ConcurrentRunsAreBitwiseIdentical) {
  const SparseTensor x = stress_tensor();
  const auto factors = make_random_factors(x.dims(), 16, 99);
  const DenseMatrix ref = mttkrp_reference(x, 1, factors);
  ConcurrentPlanCache cache(share_tensor(SparseTensor(x)));

  for (const char* format : {"hbcsf", "coo", "csl"}) {
    SCOPED_TRACE(format);
    SharedPlan plan = cache.get(format, 1);
    std::vector<DenseMatrix> outputs(kThreads);
    run_threads(kThreads,
                [&](int i) { outputs[i] = plan->run(factors).output; });

    const auto base = outputs[0].data();
    for (int i = 1; i < kThreads; ++i) {
      const auto other = outputs[i].data();
      ASSERT_EQ(other.size(), base.size());
      EXPECT_EQ(std::memcmp(other.data(), base.data(),
                            base.size() * sizeof(value_t)),
                0)
          << "thread " << i << " diverged bitwise";
    }
    // ... and they are all the right answer, not identically wrong.
    EXPECT_LT(ref.max_abs_diff(outputs[0]), 1e-4 * ref_scale(ref));
  }
}

TEST(ConcurrentCache, FailedBuildPropagatesAndRetries) {
  std::atomic<int> calls{0};
  ConcurrentPlanCache cache(
      share_tensor(stress_tensor()), {},
      [&](const std::string& format, const SparseTensor& t, index_t mode,
          const PlanOptions& opts) -> PlanPtr {
        if (calls.fetch_add(1) == 0) {
          throw Error("injected build failure");
        }
        return FormatRegistry::instance().create(format, t, mode, opts);
      });

  EXPECT_THROW(cache.get("bcsf", 0), Error);
  EXPECT_EQ(cache.size(), 0u) << "failed build must be evicted";
  // The failure is not sticky: the next request rebuilds and succeeds.
  EXPECT_NE(cache.get("bcsf", 0), nullptr);
  EXPECT_EQ(calls.load(), 2);
}

// Regression for the COO-family lifetime hazard: plans that reference the
// source tensor (DESIGN.md §2) used to dangle if the tensor died before
// the plan.  The concurrent cache pins the tensor into every plan it
// returns, so running a retained plan after BOTH the cache and the last
// caller-held tensor handle are gone must still be valid and correct.
TEST(ConcurrentCache, PlanOutlivesCacheAndTensorHandle) {
  const std::vector<index_t> dims = {25, 30, 35};
  const auto factors = make_random_factors(dims, 8, 7);

  DenseMatrix expected;
  std::vector<SharedPlan> retained;
  {
    TensorPtr tensor = share_tensor(generate_uniform(dims, 1500, 55));
    expected = mttkrp_reference(*tensor, 0, factors);
    ConcurrentPlanCache cache(tensor, {});
    tensor.reset();  // cache is now the only owner
    for (const char* format : {"coo", "reference"}) {
      retained.push_back(cache.get(format, 0));
    }
  }  // cache destroyed; only the plans' pinned shared_ptrs remain

  for (const SharedPlan& plan : retained) {
    SCOPED_TRACE(plan->format());
    const DenseMatrix out = plan->run(factors).output;
    EXPECT_LT(expected.max_abs_diff(out), 1e-4 * ref_scale(expected));
  }
}

// Plan invalidation by snapshot version (DESIGN.md §6): invalidate()
// evicts every slot and later get() calls build against the new
// snapshot; plans handed out before the swap stay valid because each
// pins ITS source tensor.  Stale versions are rejected so a late
// compaction commit cannot roll the cache backwards.
TEST(ConcurrentCache, InvalidateSwapsSnapshotAndEvictsPlans) {
  const std::vector<index_t> dims = {25, 30, 35};
  const auto factors = make_random_factors(dims, 8, 7);
  SparseTensor v0 = generate_uniform(dims, 1200, 66);
  SparseTensor v1 = generate_uniform(dims, 1800, 67);
  const DenseMatrix ref_v0 = mttkrp_reference(v0, 0, factors);
  const DenseMatrix ref_v1 = mttkrp_reference(v1, 0, factors);

  CountingFactory factory;
  ConcurrentPlanCache cache(share_tensor(std::move(v0)), {}, factory.fn(),
                            /*tensor_version=*/0);
  EXPECT_EQ(cache.tensor_version(), 0u);

  SharedPlan old_plan = cache.get("bcsf", 0);
  cache.get("coo", 1);
  EXPECT_EQ(cache.size(), 2u);

  TensorPtr next = share_tensor(std::move(v1));
  EXPECT_EQ(cache.invalidate(next, 0), 0u) << "same version must be a no-op";
  EXPECT_EQ(cache.tensor_version(), 0u);
  // invalidate returns the number of slots it evicted -- the per-shard
  // compaction observability hook (DESIGN.md §8).
  EXPECT_EQ(cache.invalidate(next, 3), 2u);
  EXPECT_EQ(cache.tensor_version(), 3u);
  EXPECT_EQ(cache.size(), 0u) << "invalidate must evict every slot";
  EXPECT_EQ(cache.invalidate(next, 2), 0u) << "stale version must be rejected";
  EXPECT_EQ(cache.tensor_version(), 3u);
  // An accepted invalidate with an EMPTY cache evicts nothing but still
  // advances the snapshot (distinguishable via tensor_version()).
  EXPECT_EQ(cache.invalidate(next, 4), 0u);
  EXPECT_EQ(cache.tensor_version(), 4u);

  SharedPlan new_plan = cache.get("bcsf", 0);
  EXPECT_EQ(factory.builds.load(), 3) << "post-invalidate get() must rebuild";
  EXPECT_NE(new_plan.get(), old_plan.get());

  // The retained pre-swap plan still answers for ITS snapshot.
  EXPECT_LT(ref_v0.max_abs_diff(old_plan->run(factors).output),
            1e-4 * ref_scale(ref_v0));
  EXPECT_LT(ref_v1.max_abs_diff(new_plan->run(factors).output),
            1e-4 * ref_scale(ref_v1));
}

}  // namespace
}  // namespace bcsf
