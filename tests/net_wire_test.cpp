// Codec tests for the tensord wire protocol (net/frame.hpp +
// net/wire.hpp, DESIGN.md §9): every message round-trips bit-exactly,
// and every malformed payload -- truncation, forged counts, unknown op
// tags, trailing bytes, out-of-range tensor metadata -- is rejected
// with ProtocolError instead of reading out of bounds or allocating
// unbounded memory.  The server-side consequences of these errors
// (dropped vs kept connections) are covered in tensord_server_test.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "net/frame.hpp"
#include "net/wire.hpp"
#include "tensor/sparse_tensor.hpp"

namespace bcsf::net {
namespace {

SparseTensor small_tensor() {
  SparseTensor t({4, 3, 2});
  const index_t a[] = {0, 0, 0};
  const index_t b[] = {3, 2, 1};
  const index_t c[] = {1, 1, 0};
  t.push_back(a, 1.5F);
  t.push_back(b, -2.0F);
  t.push_back(c, 0.25F);
  return t;
}

DenseMatrix small_matrix(index_t rows, rank_t cols, float scale) {
  DenseMatrix m(rows, cols);
  auto data = m.data();
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = scale * static_cast<float>(i);
  }
  return m;
}

bool same_matrix(const DenseMatrix& a, const DenseMatrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data().data(), b.data().data(),
                     a.data().size() * sizeof(value_t)) == 0;
}

bool same_tensor(const SparseTensor& a, const SparseTensor& b) {
  if (a.dims() != b.dims() || a.nnz() != b.nnz()) return false;
  for (offset_t z = 0; z < a.nnz(); ++z) {
    if (a.value(z) != b.value(z)) return false;
    for (index_t m = 0; m < a.order(); ++m) {
      if (a.coord(m, z) != b.coord(m, z)) return false;
    }
  }
  return true;
}

QueryMsg sample_query(bool with_lambda) {
  QueryMsg msg;
  msg.id = 77;
  msg.tensor = "demo";
  msg.mode = 1;
  msg.op = OpKind::kMttkrp;
  msg.factors.push_back(small_matrix(4, 2, 0.5F));
  msg.factors.push_back(small_matrix(3, 2, -1.0F));
  msg.factors.push_back(small_matrix(2, 2, 2.0F));
  if (with_lambda) {
    msg.has_lambda = true;
    msg.lambda = {1.0F, 0.5F};
  }
  return msg;
}

// ---------------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------------

TEST(Wire, RegisterRoundTrip) {
  RegisterMsg msg;
  msg.id = 42;
  msg.name = "bench";
  msg.tensor = small_tensor();
  const RegisterMsg got = decode_register(encode_register(msg));
  EXPECT_EQ(got.id, 42u);
  EXPECT_EQ(got.name, "bench");
  EXPECT_TRUE(same_tensor(got.tensor, msg.tensor));
}

TEST(Wire, UpdateRoundTrip) {
  UpdateMsg msg;
  msg.id = 7;
  msg.name = "bench";
  msg.updates = small_tensor();
  const UpdateMsg got = decode_update(encode_update(msg));
  EXPECT_EQ(got.id, 7u);
  EXPECT_EQ(got.name, "bench");
  EXPECT_TRUE(same_tensor(got.updates, msg.updates));
}

TEST(Wire, QueryRoundTripWithAndWithoutLambda) {
  for (const bool with_lambda : {false, true}) {
    SCOPED_TRACE(with_lambda);
    const QueryMsg msg = sample_query(with_lambda);
    const QueryMsg got = decode_query(encode_query(msg));
    EXPECT_EQ(got.id, msg.id);
    EXPECT_EQ(got.tensor, msg.tensor);
    EXPECT_EQ(got.mode, msg.mode);
    EXPECT_EQ(got.op, msg.op);
    ASSERT_EQ(got.factors.size(), msg.factors.size());
    for (std::size_t i = 0; i < msg.factors.size(); ++i) {
      EXPECT_TRUE(same_matrix(got.factors[i], msg.factors[i])) << i;
    }
    EXPECT_EQ(got.has_lambda, with_lambda);
    EXPECT_EQ(got.lambda, msg.lambda);
  }
}

TEST(Wire, AckResultErrorRoundTrip) {
  const AckMsg ack = decode_ack(encode_ack(make_ack(9, 3)));
  EXPECT_EQ(ack.id, 9u);
  EXPECT_EQ(ack.version, 3u);

  ResultMsg res;
  res.id = 11;
  res.op = OpKind::kFit;
  res.output = small_matrix(3, 2, 1.0F);
  res.scalar = 2.5;
  res.sequence = 4;
  res.snapshot_version = 6;
  res.delta_nnz = 12;
  res.shards = 2;
  res.served_format = "bcsf";
  res.upgraded = true;
  const ResultMsg got = decode_result(encode_result(res));
  EXPECT_EQ(got.id, 11u);
  EXPECT_EQ(got.op, OpKind::kFit);
  EXPECT_TRUE(same_matrix(got.output, res.output));
  EXPECT_EQ(got.scalar, 2.5);
  EXPECT_EQ(got.sequence, 4u);
  EXPECT_EQ(got.snapshot_version, 6u);
  EXPECT_EQ(got.delta_nnz, 12u);
  EXPECT_EQ(got.shards, 2u);
  EXPECT_EQ(got.served_format, "bcsf");
  EXPECT_TRUE(got.upgraded);

  const ErrorMsg err = decode_error(encode_error({5, "boom"}));
  EXPECT_EQ(err.id, 5u);
  EXPECT_EQ(err.message, "boom");
}

TEST(Wire, AckFleetStatsRoundTrip) {
  // The v2 ack: kPing replies carry the storage-budget fleet stats and
  // the per-tenant accounting table (DESIGN.md §10).
  AckMsg ack;
  ack.id = 21;
  ack.version = 5;
  ack.budget_bytes = std::uint64_t{3} << 30;
  ack.resident_bytes = 123456789;
  ack.evictions = 42;
  ack.tenants.push_back({"alpha", 4096, 512, 1000, 900, 2});
  ack.tenants.push_back({"beta", 0, 128, 7, 0, 0});
  const AckMsg got = decode_ack(encode_ack(ack));
  EXPECT_EQ(got.id, 21u);
  EXPECT_EQ(got.version, 5u);
  EXPECT_EQ(got.budget_bytes, ack.budget_bytes);
  EXPECT_EQ(got.resident_bytes, 123456789u);
  EXPECT_EQ(got.evictions, 42u);
  ASSERT_EQ(got.tenants.size(), 2u);
  EXPECT_EQ(got.tenants[0].name, "alpha");
  EXPECT_EQ(got.tenants[0].plan_bytes, 4096u);
  EXPECT_EQ(got.tenants[0].delta_bytes, 512u);
  EXPECT_EQ(got.tenants[0].calls, 1000u);
  EXPECT_EQ(got.tenants[0].structured_served, 900u);
  EXPECT_EQ(got.tenants[0].evictions, 2u);
  EXPECT_EQ(got.tenants[1].name, "beta");
  EXPECT_EQ(got.tenants[1].plan_bytes, 0u);

  // The stats-free aggregate form still round-trips as all-zeros: old
  // two-field call sites keep working.
  const AckMsg bare = decode_ack(encode_ack(make_ack(9, 3)));
  EXPECT_EQ(bare.budget_bytes, 0u);
  EXPECT_TRUE(bare.tenants.empty());
}

TEST(Wire, IdHelpers) {
  const auto bytes = encode_id(0xDEADBEEFull);
  EXPECT_EQ(decode_id(bytes), 0xDEADBEEFull);
  EXPECT_EQ(peek_id(bytes), 0xDEADBEEFull);
  // peek_id never throws: short payloads read as id 0.
  const std::vector<std::uint8_t> shorty{1, 2, 3};
  EXPECT_EQ(peek_id(shorty), 0u);
}

TEST(Wire, KnownMsgTypeCoversTheEnum) {
  for (const MsgType t :
       {MsgType::kRegister, MsgType::kUpdate, MsgType::kQuery,
        MsgType::kShutdown, MsgType::kPing, MsgType::kAck, MsgType::kResult,
        MsgType::kError, MsgType::kOverloaded, MsgType::kTraceHeader}) {
    EXPECT_TRUE(known_msg_type(static_cast<std::uint8_t>(t)));
  }
  EXPECT_FALSE(known_msg_type(0));
  EXPECT_FALSE(known_msg_type(99));
  EXPECT_FALSE(known_msg_type(255));
}

TEST(Wire, AppendFrameLayout) {
  std::vector<std::uint8_t> buf;
  const std::vector<std::uint8_t> payload{0xAA, 0xBB};
  append_frame(buf, MsgType::kPing, payload);
  ASSERT_EQ(buf.size(), 4u + 1u + 2u);
  std::uint32_t len = 0;
  std::memcpy(&len, buf.data(), sizeof(len));  // little-endian length
  EXPECT_EQ(len, 2u);
  EXPECT_EQ(buf[4], static_cast<std::uint8_t>(MsgType::kPing));
  EXPECT_EQ(buf[5], 0xAA);
  EXPECT_EQ(buf[6], 0xBB);
}

// ---------------------------------------------------------------------------
// Malformed payloads
// ---------------------------------------------------------------------------

TEST(Wire, TruncationAtEveryPrefixThrowsProtocolError) {
  // Chopping a valid query payload at ANY earlier length must throw, not
  // read out of bounds (ASan/UBSan verify the "not" part).
  const auto full = encode_query(sample_query(true));
  for (std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                          full.size() / 4, full.size() / 2, full.size() - 1}) {
    SCOPED_TRACE(len);
    const std::vector<std::uint8_t> cut(full.begin(),
                                        full.begin() + static_cast<long>(len));
    EXPECT_THROW(decode_query(cut), ProtocolError);
  }
}

TEST(Wire, TrailingBytesThrowProtocolError) {
  auto bytes = encode_ack(make_ack(1, 2));
  bytes.push_back(0x00);
  EXPECT_THROW(decode_ack(bytes), ProtocolError);
}

TEST(Wire, UnknownOpTagThrowsProtocolError) {
  auto bytes = encode_query(sample_query(false));
  // The op tag sits after the u64 id and the 4-byte-length + 4-char name.
  const std::size_t op_at = 8 + 4 + 4 + 4;
  ASSERT_LT(op_at, bytes.size());
  bytes[op_at] = 0x7F;
  EXPECT_THROW(decode_query(bytes), ProtocolError);
}

TEST(Wire, ForgedTensorNnzThrowsInsteadOfAllocating) {
  RegisterMsg msg;
  msg.id = 1;
  msg.name = "x";
  msg.tensor = small_tensor();
  auto bytes = encode_register(msg);
  // nnz is the u64 right after id, name, order, and the 3 dims.
  const std::size_t nnz_at = 8 + 4 + 1 + 4 + 3 * 4;
  const std::uint64_t forged = 1ull << 40;
  std::memcpy(bytes.data() + nnz_at, &forged, sizeof(forged));
  EXPECT_THROW(decode_register(bytes), ProtocolError);
}

TEST(Wire, ForgedMatrixDimsThrowInsteadOfAllocating) {
  QueryMsg msg = sample_query(false);
  auto bytes = encode_query(msg);
  // First factor's rows field: id, name, mode, op, factor count, then u32.
  const std::size_t rows_at = 8 + 4 + 4 + 4 + 1 + 4;
  const std::uint32_t forged = 0x40000000u;
  std::memcpy(bytes.data() + rows_at, &forged, sizeof(forged));
  EXPECT_THROW(decode_query(bytes), ProtocolError);
}

TEST(Wire, TensorMetadataRangeChecks) {
  WireWriter w;
  w.u64(1);        // id
  w.str("x");      // name
  w.u32(0);        // order 0: out of [1, 16]
  EXPECT_THROW(decode_register(w.take()), ProtocolError);

  WireWriter w2;
  w2.u64(1);
  w2.str("x");
  w2.u32(2);  // order
  w2.u32(4);
  w2.u32(0);  // zero dim
  EXPECT_THROW(decode_register(w2.take()), ProtocolError);

  // Coordinate out of its dim: 1 nonzero at (5, 0) in a 4x3 tensor.
  WireWriter w3;
  w3.u64(1);
  w3.str("x");
  w3.u32(2);
  w3.u32(4);
  w3.u32(3);
  w3.u64(1);
  w3.u32(5);      // mode-0 index array
  w3.u32(0);      // mode-1 index array
  w3.f32(1.0F);   // values
  EXPECT_THROW(decode_register(w3.take()), ProtocolError);
}

}  // namespace
}  // namespace bcsf::net
