// Tests for the FROSTT .tns reader/writer, including the failure modes
// (malformed lines, arity changes, zero coordinates).
#include <gtest/gtest.h>

#include <sstream>

#include "tensor/frostt_io.hpp"
#include "util/error.hpp"

namespace bcsf {
namespace {

TEST(FrosttIo, ParsesBasicFile) {
  std::istringstream in(
      "# a comment line\n"
      "1 1 1 1.5\n"
      "2 3 4 -2.0\n"
      "\n"
      "5 2 1 0.25  # trailing comment\n");
  const SparseTensor t = read_tns(in);
  EXPECT_EQ(t.order(), 3u);
  EXPECT_EQ(t.nnz(), 3u);
  EXPECT_EQ(t.dim(0), 5u);  // max coordinate per mode
  EXPECT_EQ(t.dim(1), 3u);
  EXPECT_EQ(t.dim(2), 4u);
  EXPECT_EQ(t.coord(0, 1), 1u);  // 1-based to 0-based
  EXPECT_FLOAT_EQ(t.value(1), -2.0F);
}

TEST(FrosttIo, RoundTrip) {
  std::istringstream in("1 2 3 1.0\n4 5 6 2.5\n2 2 2 -1.25\n");
  const SparseTensor t = read_tns(in);
  std::ostringstream out;
  write_tns(out, t);
  std::istringstream in2(out.str());
  const SparseTensor t2 = read_tns(in2);
  ASSERT_EQ(t2.nnz(), t.nnz());
  for (offset_t z = 0; z < t.nnz(); ++z) {
    for (index_t m = 0; m < 3; ++m) EXPECT_EQ(t2.coord(m, z), t.coord(m, z));
    EXPECT_FLOAT_EQ(t2.value(z), t.value(z));
  }
}

TEST(FrosttIo, DimsHintValidates) {
  std::istringstream ok("1 1 1.0\n2 2 2.0\n");
  const SparseTensor t = read_tns(ok, {10, 10});
  EXPECT_EQ(t.dim(0), 10u);
  std::istringstream bad("11 1 1.0\n");
  EXPECT_THROW(read_tns(bad, {10, 10}), Error);
}

TEST(FrosttIo, RejectsNonNumeric) {
  std::istringstream in("1 x 1 1.0\n");
  EXPECT_THROW(read_tns(in), Error);
}

TEST(FrosttIo, RejectsArityChange) {
  std::istringstream in("1 1 1 1.0\n1 1 1 1 1.0\n");
  EXPECT_THROW(read_tns(in), Error);
}

TEST(FrosttIo, RejectsZeroCoordinate) {
  std::istringstream in("0 1 1 1.0\n");
  EXPECT_THROW(read_tns(in), Error);  // coordinates are 1-based
}

TEST(FrosttIo, RejectsFractionalCoordinate) {
  std::istringstream in("1.5 1 1 1.0\n");
  EXPECT_THROW(read_tns(in), Error);
}

TEST(FrosttIo, RejectsEmptyInput) {
  std::istringstream in("# only comments\n\n");
  EXPECT_THROW(read_tns(in), Error);
}

TEST(FrosttIo, RejectsValueOnlyLine) {
  std::istringstream in("1.0\n");
  EXPECT_THROW(read_tns(in), Error);
}

TEST(FrosttIo, MissingFileThrows) {
  EXPECT_THROW(read_tns_file("/nonexistent/path/x.tns"), Error);
}

TEST(FrosttIo, FileRoundTrip) {
  std::istringstream in("1 2 3 1.0\n3 1 2 2.0\n");
  const SparseTensor t = read_tns(in);
  const std::string path = testing::TempDir() + "/bcsf_io_test.tns";
  write_tns_file(path, t);
  const SparseTensor t2 = read_tns_file(path);
  EXPECT_EQ(t2.nnz(), 2u);
  EXPECT_EQ(t2.dims(), t.dims());
}

// ---------------------------------------------------------------------------
// Error paths that matter more now that tensors are partitioned by slice
// range (DESIGN.md §8): a silently mis-parsed index would route nonzeros
// to the wrong shard, so the reader must refuse loudly, naming the line.
// ---------------------------------------------------------------------------

TEST(FrosttIo, RejectsTruncatedLine) {
  // Second line lost its value field (e.g. a cut-off download): fewer
  // tokens than the established order+1 arity.
  std::istringstream in("1 2 3 1.0\n4 5 6\n");
  try {
    read_tns(in);
    FAIL() << "expected bcsf::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(FrosttIo, RejectsTruncatedLineWithHint) {
  // With a dims hint the order is known from line 1, so even the FIRST
  // line being short must throw rather than reinterpret fields.
  std::istringstream in("1 2 1.0\n");
  EXPECT_THROW(read_tns(in, {10, 10, 10}), Error);
}

TEST(FrosttIo, RejectsNonNumericCoordinate) {
  // A corrupted index token mid-line ("2x" parses as 2 then trips on x).
  std::istringstream in("1 2x 3 1.0\n");
  EXPECT_THROW(read_tns(in), Error);
  std::istringstream comma("1 2,5 3 1.0\n");
  EXPECT_THROW(read_tns(comma), Error);
}

TEST(FrosttIo, RejectsNonNumericValue) {
  std::istringstream in("1 2 3 oops\n");
  EXPECT_THROW(read_tns(in), Error);
}

TEST(FrosttIo, RejectsNegativeCoordinate) {
  std::istringstream in("-1 2 3 1.0\n");
  EXPECT_THROW(read_tns(in), Error);
}

TEST(FrosttIo, RejectsIndexOutOfDeclaredDims) {
  // In-bounds along earlier modes, out of bounds on the LAST declared
  // dim -- the off-by-one a slice-range router would silently misplace.
  std::istringstream last("2 2 11 1.0\n");
  EXPECT_THROW(read_tns(last, {10, 10, 10}), Error);
  std::istringstream middle("1 11 1 1.0\n2 2 2 2.0\n");
  EXPECT_THROW(read_tns(middle, {10, 10, 10}), Error);
  // Exactly at the bound (1-based == dim) is legal.
  std::istringstream edge("10 10 10 1.0\n");
  EXPECT_EQ(read_tns(edge, {10, 10, 10}).nnz(), 1u);
}

TEST(FrosttIo, Order4) {
  std::istringstream in("1 2 3 4 1.0\n2 2 2 2 2.0\n");
  const SparseTensor t = read_tns(in);
  EXPECT_EQ(t.order(), 4u);
  EXPECT_EQ(t.dim(3), 4u);
}

}  // namespace
}  // namespace bcsf
