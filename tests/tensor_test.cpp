// Unit tests for the COO sparse tensor core: construction, sorting,
// coalescing, validation, and the mode-ordering convention.
#include <gtest/gtest.h>

#include "tensor/sparse_tensor.hpp"
#include "util/error.hpp"

namespace bcsf {
namespace {

SparseTensor small3() {
  SparseTensor t({4, 5, 6});
  const index_t coords[][3] = {{3, 0, 2}, {0, 1, 1}, {0, 0, 5},
                               {2, 4, 0}, {0, 1, 0}, {3, 0, 1}};
  value_t v = 1.0F;
  for (const auto& c : coords) t.push_back({c, 3}, v++);
  return t;
}

TEST(ModeOrder, PaperConvention) {
  EXPECT_EQ(mode_order_for(0, 3), (ModeOrder{0, 1, 2}));
  EXPECT_EQ(mode_order_for(1, 3), (ModeOrder{1, 0, 2}));
  EXPECT_EQ(mode_order_for(2, 3), (ModeOrder{2, 0, 1}));
  EXPECT_EQ(mode_order_for(2, 4), (ModeOrder{2, 0, 1, 3}));
  EXPECT_THROW(mode_order_for(3, 3), Error);
}

TEST(SparseTensor, BasicAccessors) {
  const SparseTensor t = small3();
  EXPECT_EQ(t.order(), 3u);
  EXPECT_EQ(t.nnz(), 6u);
  EXPECT_EQ(t.dim(0), 4u);
  EXPECT_EQ(t.dim(2), 6u);
  EXPECT_NEAR(t.density(), 6.0 / (4 * 5 * 6), 1e-12);
  EXPECT_NO_THROW(t.validate());
}

TEST(SparseTensor, RejectsEmptyDims) {
  EXPECT_THROW(SparseTensor(std::vector<index_t>{}), Error);
  EXPECT_THROW(SparseTensor({3, 0, 2}), Error);
}

TEST(SparseTensor, PushBackBoundsChecked) {
  SparseTensor t({2, 2});
  const index_t bad[] = {2, 0};
  EXPECT_THROW(t.push_back({bad, 2}, 1.0F), Error);
  const index_t short_coords[] = {1};
  EXPECT_THROW(t.push_back({short_coords, 1}, 1.0F), Error);
}

TEST(SparseTensor, SortByMode0) {
  SparseTensor t = small3();
  const ModeOrder order = mode_order_for(0, 3);
  EXPECT_FALSE(t.is_sorted(order));
  t.sort(order);
  EXPECT_TRUE(t.is_sorted(order));
  // First coordinate nondecreasing; ties broken by next modes.
  for (offset_t z = 1; z < t.nnz(); ++z) {
    EXPECT_LE(t.coord(0, z - 1), t.coord(0, z));
  }
  // Values move with their coordinates: (0,0,5) had value 3.
  EXPECT_EQ(t.coord(0, 0), 0u);
  EXPECT_EQ(t.coord(1, 0), 0u);
  EXPECT_EQ(t.coord(2, 0), 5u);
  EXPECT_FLOAT_EQ(t.value(0), 3.0F);
}

TEST(SparseTensor, SortByMode2PutsLeafFirst) {
  SparseTensor t = small3();
  const ModeOrder order = mode_order_for(2, 3);
  t.sort(order);
  EXPECT_TRUE(t.is_sorted(order));
  for (offset_t z = 1; z < t.nnz(); ++z) {
    EXPECT_LE(t.coord(2, z - 1), t.coord(2, z));
  }
}

TEST(SparseTensor, IsSortedOnEmptyAndSingle) {
  SparseTensor t({3, 3});
  EXPECT_TRUE(t.is_sorted(mode_order_for(0, 2)));
  const index_t c[] = {1, 1};
  t.push_back({c, 2}, 1.0F);
  EXPECT_TRUE(t.is_sorted(mode_order_for(0, 2)));
}

TEST(SparseTensor, CoalesceSumsDuplicates) {
  SparseTensor t({3, 3});
  const index_t a[] = {1, 2};
  const index_t b[] = {0, 0};
  t.push_back({a, 2}, 1.5F);
  t.push_back({b, 2}, 2.0F);
  t.push_back({a, 2}, 2.5F);
  t.push_back({a, 2}, 1.0F);
  const offset_t removed = t.coalesce();
  EXPECT_EQ(removed, 2u);
  EXPECT_EQ(t.nnz(), 2u);
  // Sorted by identity order: (0,0) first.
  EXPECT_FLOAT_EQ(t.value(0), 2.0F);
  EXPECT_FLOAT_EQ(t.value(1), 5.0F);
}

TEST(SparseTensor, CoalesceNoDuplicates) {
  SparseTensor t = small3();
  EXPECT_EQ(t.coalesce(), 0u);
  EXPECT_EQ(t.nnz(), 6u);
}

TEST(SparseTensor, Norm) {
  SparseTensor t({2, 2});
  const index_t a[] = {0, 0};
  const index_t b[] = {1, 1};
  t.push_back({a, 2}, 3.0F);
  t.push_back({b, 2}, 4.0F);
  EXPECT_DOUBLE_EQ(t.norm(), 5.0);
}

TEST(SparseTensor, IndexStorageBytes) {
  const SparseTensor t = small3();
  EXPECT_EQ(t.index_storage_bytes(), 3u * 6u * 4u);  // 4 x 3M of SS III-A
}

TEST(SparseTensor, ShapeString) {
  SparseTensor t({533'000, 17'000'000, 2'000'000});
  EXPECT_EQ(t.shape_string(), "533K x 17M x 2M");
}

TEST(SparseTensor, Order4SortAndValidate) {
  SparseTensor t({3, 4, 5, 6});
  const index_t coords[][4] = {
      {2, 3, 4, 5}, {0, 0, 0, 0}, {2, 3, 4, 1}, {1, 2, 0, 3}};
  for (const auto& c : coords) t.push_back({c, 4}, 1.0F);
  t.sort(mode_order_for(3, 4));
  EXPECT_TRUE(t.is_sorted(mode_order_for(3, 4)));
  EXPECT_NO_THROW(t.validate());
}

}  // namespace
}  // namespace bcsf
