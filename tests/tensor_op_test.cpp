// The op protocol's central property (DESIGN.md §7): *every* registered
// format -- GPU, CPU and meta -- executes TTV and FIT through the plan
// interface and matches independent DENSE references, on 3- and 4-mode
// tensors, for every mode.  The dense references expand the sparse
// tensor into a full array and apply the textbook definitions, so they
// share no traversal code with any kernel under test.
//
// Also covered: the op-aware registry surface (supports / names /
// create-time refusal), request validation, and the concurrent cache's
// (format, mode, op) keying with its concrete-format canonicalization.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "bcsf/bcsf.hpp"

namespace bcsf {
namespace {

struct Scenario {
  std::string name;
  PowerLawConfig config;
};

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;
  {
    Scenario s;
    s.name = "mixed3d";
    s.config.dims = {40, 50, 60};
    s.config.target_nnz = 2500;
    s.config.slice_alpha = 0.8;
    s.config.fiber_alpha = 0.8;
    s.config.max_fiber_len = 24;
    s.config.seed = 71;
    out.push_back(s);
  }
  {
    Scenario s;
    s.name = "order4";
    s.config.dims = {25, 20, 15, 40};
    s.config.target_nnz = 2000;
    s.config.fiber_alpha = 0.8;
    s.config.max_fiber_len = 30;
    s.config.seed = 72;
    out.push_back(s);
  }
  return out;
}

/// Row-major dense expansion of the sparse tensor (scenario dims keep
/// this well under a million cells).
std::vector<double> densify(const SparseTensor& x) {
  std::size_t cells = 1;
  for (index_t d : x.dims()) cells *= d;
  std::vector<double> dense(cells, 0.0);
  for (offset_t z = 0; z < x.nnz(); ++z) {
    std::size_t linear = 0;
    for (index_t m = 0; m < x.order(); ++m) {
      linear = linear * x.dim(m) + x.coord(m, z);
    }
    dense[linear] += static_cast<double>(x.value(z));
  }
  return dense;
}

/// Walks every dense cell, decoding coordinates on the fly.
template <typename Visit>
void for_each_cell(const std::vector<index_t>& dims,
                   const std::vector<double>& dense, Visit visit) {
  std::vector<index_t> coords(dims.size(), 0);
  for (std::size_t linear = 0; linear < dense.size(); ++linear) {
    visit(coords, dense[linear]);
    for (std::size_t m = dims.size(); m-- > 0;) {
      if (++coords[m] < dims[m]) break;
      coords[m] = 0;
    }
  }
}

/// Textbook multi-TTV on the dense array:
///   y(i) = sum over all cells with coords[mode] == i of
///          value * Prod_{m != mode} v_m(coords[m]).
DenseMatrix dense_ttv(const SparseTensor& x, index_t mode,
                      const std::vector<DenseMatrix>& vectors) {
  const std::vector<double> dense = densify(x);
  std::vector<double> acc(x.dim(mode), 0.0);
  for_each_cell(x.dims(), dense,
                [&](const std::vector<index_t>& coords, double value) {
                  if (value == 0.0) return;
                  double prod = value;
                  for (index_t m = 0; m < x.order(); ++m) {
                    if (m == mode) continue;
                    prod *= vectors[m](coords[m], 0);
                  }
                  acc[coords[mode]] += prod;
                });
  DenseMatrix out(x.dim(mode), 1);
  for (index_t i = 0; i < x.dim(mode); ++i) {
    out(i, 0) = static_cast<value_t>(acc[i]);
  }
  return out;
}

/// Textbook <X, Xhat> on the dense array.
double dense_fit_inner(const SparseTensor& x,
                       const std::vector<DenseMatrix>& factors,
                       const std::vector<value_t>& lambda) {
  const std::vector<double> dense = densify(x);
  const rank_t rank = factors.front().cols();
  double inner = 0.0;
  for_each_cell(x.dims(), dense,
                [&](const std::vector<index_t>& coords, double value) {
                  if (value == 0.0) return;
                  double cell = 0.0;
                  for (rank_t r = 0; r < rank; ++r) {
                    double prod = lambda[r];
                    for (index_t m = 0; m < x.order(); ++m) {
                      prod *= factors[m](coords[m], r);
                    }
                    cell += prod;
                  }
                  inner += cell * value;
                });
  return inner;
}

double ttv_scale(const DenseMatrix& ref) {
  double scale = 1.0;
  for (value_t v : ref.data()) {
    scale = std::max(scale, static_cast<double>(std::abs(v)));
  }
  return scale;
}

// Registry-wide parameterized equivalence: every format, every mode,
// TTV and FIT against the dense references.
class TensorOpEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(TensorOpEquivalence, EveryRegisteredFormatMatchesDenseReferences) {
  const Scenario scenario = scenarios()[GetParam()];
  const SparseTensor x = generate_power_law(scenario.config);
  ASSERT_GT(x.nnz(), 500u);

  const rank_t rank = 8;
  const auto factors = make_random_factors(x.dims(), rank, 4321);
  const auto vectors = make_random_factors(x.dims(), 1, 8765);
  std::vector<value_t> lambda(rank);
  for (rank_t r = 0; r < rank; ++r) {
    lambda[r] = 0.25F + 0.125F * static_cast<value_t>(r);
  }

  const FormatRegistry& registry = FormatRegistry::instance();
  for (index_t mode = 0; mode < x.order(); ++mode) {
    const DenseMatrix ttv_ref = dense_ttv(x, mode, vectors);
    const double ttv_tol = 1e-4 * ttv_scale(ttv_ref);
    const double fit_ref = dense_fit_inner(x, factors, lambda);
    const double fit_tol = 1e-4 * std::max(1.0, std::abs(fit_ref));

    for (const std::string& name : registry.names()) {
      SCOPED_TRACE(scenario.name + " format " + name + " mode " +
                   std::to_string(mode));
      PlanOptions opts;
      opts.device = DeviceModel::tiny(4, 16);

      if (registry.supports(name, OpKind::kTtv)) {
        opts.op = OpKind::kTtv;
        const PlanPtr plan = registry.create(name, x, mode, opts);
        OpRequest req;
        req.kind = OpKind::kTtv;
        req.mode = mode;
        req.factors = &vectors;
        const OpResult r = plan->execute(req);
        ASSERT_EQ(r.output.cols(), 1u);
        ASSERT_EQ(r.output.rows(), x.dim(mode));
        EXPECT_LT(ttv_ref.max_abs_diff(r.output), ttv_tol);
        // Build-once execute-many: identical output on a second call.
        EXPECT_DOUBLE_EQ(r.output.max_abs_diff(plan->execute(req).output),
                         0.0);
      }

      if (registry.supports(name, OpKind::kFit)) {
        opts.op = OpKind::kFit;
        const PlanPtr plan = registry.create(name, x, mode, opts);
        OpRequest req;
        req.kind = OpKind::kFit;
        req.mode = mode;
        req.factors = &factors;
        req.lambda = &lambda;
        const OpResult r = plan->execute(req);
        EXPECT_EQ(r.output.rows(), 0u) << "FIT is scalar-valued";
        EXPECT_NEAR(r.scalar, fit_ref, fit_tol);
        // FIT agrees with the linalg ground truth too.
        EXPECT_NEAR(r.scalar, cp_inner_product(x, factors, lambda), fit_tol);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TensorOpEquivalence, ::testing::Range(0, 2),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return scenarios()[info.param].name;
                         });

TEST(TensorOpPlanContract, ValidatesRequests) {
  const SparseTensor x = generate_uniform({10, 12, 14}, 300, 3);
  const auto factors = make_random_factors(x.dims(), 4, 5);
  const auto vectors = make_random_factors(x.dims(), 1, 6);
  const PlanPtr plan = FormatRegistry::instance().create("reference", x, 1);

  OpRequest req;
  req.factors = &factors;
  req.mode = 0;  // plan was built for mode 1
  EXPECT_THROW(plan->execute(req), Error);

  req.mode = 1;
  req.kind = OpKind::kTtv;  // rank-4 inputs are not vectors
  EXPECT_THROW(plan->execute(req), Error);
  req.factors = &vectors;
  EXPECT_NO_THROW(plan->execute(req));

  req.kind = OpKind::kFit;
  req.factors = &factors;
  const std::vector<value_t> short_lambda(2, 1.0F);  // rank is 4
  req.lambda = &short_lambda;
  EXPECT_THROW(plan->execute(req), Error);

  req.factors = nullptr;
  EXPECT_THROW(plan->execute(req), Error);
}

TEST(TensorOpPlanContract, FitIsModeIndependentAndLambdaDefaultsToOnes) {
  const SparseTensor x = generate_uniform({15, 10, 12}, 400, 8);
  const auto factors = make_random_factors(x.dims(), 4, 9);
  OpRequest req;
  req.kind = OpKind::kFit;
  req.factors = &factors;

  const FormatRegistry& registry = FormatRegistry::instance();
  double first = 0.0;
  for (index_t mode = 0; mode < x.order(); ++mode) {
    const PlanPtr plan = registry.create("reference", x, mode);
    req.mode = mode;
    const double scalar = plan->execute(req).scalar;
    if (mode == 0) {
      first = scalar;
    } else {
      EXPECT_NEAR(scalar, first, 1e-6 * std::max(1.0, std::abs(first)));
    }
  }
  const std::vector<value_t> ones(4, 1.0F);
  EXPECT_NEAR(first, cp_inner_product(x, factors, ones),
              1e-6 * std::max(1.0, std::abs(first)));
}

// A format may declare a restricted op set; create() must refuse early.
// (Registered once for this binary; it serves MTTKRP by delegating to
// the reference plan, so suites enumerating the catalogue stay green as
// long as they gate on supports() -- the documented pattern.)
TEST(FormatRegistryOps, RestrictedEntryIsRefusedAtCreate) {
  FormatRegistry& registry = FormatRegistry::instance();
  if (!registry.contains("test-mttkrp-only")) {
    FormatRegistry::Entry entry;
    entry.name = "test-mttkrp-only";
    entry.display_name = "TestMttkrpOnly";
    entry.description = "test-only entry with a restricted op mask";
    entry.kind = PlanKind::kCpu;
    entry.mode_oriented = false;
    entry.ops = op_bit(OpKind::kMttkrp);
    entry.factory = [](const SparseTensor& t, index_t mode,
                       const PlanOptions& opts) {
      return FormatRegistry::instance().create("reference", t, mode, opts);
    };
    registry.add(entry);
  }

  EXPECT_TRUE(registry.supports("test-mttkrp-only", OpKind::kMttkrp));
  EXPECT_FALSE(registry.supports("test-mttkrp-only", OpKind::kTtv));
  EXPECT_FALSE(registry.supports("test-mttkrp-only", OpKind::kFit));

  const SparseTensor x = generate_uniform({8, 8, 8}, 100, 2);
  PlanOptions opts;
  opts.op = OpKind::kTtv;
  EXPECT_THROW(registry.create("test-mttkrp-only", x, 0, opts), Error);
  opts.op = OpKind::kMttkrp;
  EXPECT_NO_THROW(registry.create("test-mttkrp-only", x, 0, opts));

  std::vector<std::string> ttv_names = registry.names(OpKind::kTtv);
  for (const std::string& name : ttv_names) {
    EXPECT_NE(name, "test-mttkrp-only");
  }
}

// The concurrent cache keys on (format, mode, op) -- but canonicalizes
// the op away for concrete formats, so one build serves every op (the
// amortization the op-generic plan layer exists for).  Meta formats keep
// distinct per-op slots because "auto" resolves per op.
TEST(ConcurrentCacheOps, ConcreteFormatsShareOneBuildAcrossOps) {
  ConcurrentPlanCache cache(
      share_tensor(generate_uniform({20, 20, 20}, 600, 11)));
  const SharedPlan mttkrp = cache.get("bcsf", 0, OpKind::kMttkrp);
  const SharedPlan ttv = cache.get("bcsf", 0, OpKind::kTtv);
  const SharedPlan fit = cache.get("bcsf", 0, OpKind::kFit);
  EXPECT_EQ(mttkrp.get(), ttv.get());
  EXPECT_EQ(mttkrp.get(), fit.get());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.try_get("bcsf", 0, OpKind::kTtv), mttkrp);
}

TEST(ConcurrentCacheOps, MetaFormatResolvesPerOp) {
  ConcurrentPlanCache cache(
      share_tensor(generate_uniform({20, 20, 20}, 600, 12)));
  const SharedPlan mttkrp = cache.get("auto", 0, OpKind::kMttkrp);
  const SharedPlan ttv = cache.get("auto", 0, OpKind::kTtv);
  EXPECT_NE(mttkrp.get(), ttv.get()) << "per-op slots for meta plans";
  EXPECT_EQ(cache.size(), 2u);
  // This tensor is far below the saturation floor either way, but the
  // TTV resolution must never pick a MORE structured format than the
  // full-rank one: rank-1 traffic only ever amortizes builds slower.
  EXPECT_EQ(ttv->resolved_format(), "coo");
}

}  // namespace
}  // namespace bcsf
