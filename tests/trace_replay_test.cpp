// Tests for the sairedis-style trace record/replay pipeline (trace/
// trace.hpp, DESIGN.md §9).  The property under test is the determinism
// contract: replaying the same trace twice -- even with different worker
// counts, with background upgrades enabled -- produces byte-identical
// response logs, because replay_trace drains the service to idle after
// every event.  Plus the failure edges: corrupt headers and truncated
// tails must throw ProtocolError, and requests that FAIL during replay
// (unknown tensor) must replay deterministically as kError frames.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "net/client.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"
#include "serve/tensor_op_service.hpp"
#include "serve_test_util.hpp"
#include "trace/trace.hpp"

namespace bcsf::trace {
namespace {

std::string test_path(const char* tag) {
  static std::atomic<int> counter{0};
  return "/tmp/bcsf_trace_test_" + std::to_string(::getpid()) + "_" +
         std::string(tag) + "_" + std::to_string(counter.fetch_add(1)) +
         ".trace";
}

/// Replays `path` against a fresh service with the given worker count.
ReplayResult replay_with_workers(const std::string& path, unsigned workers) {
  ServeOptions opts;
  opts.workers = workers;
  opts.shards = 2;
  opts.upgrade_threshold = 2;  // upgrades land DURING the trace
  TensorOpService service(opts);
  TraceReader reader(path);
  return replay_trace(service, reader);
}

/// Records a small but representative dialogue: register, two update
/// batches, and a mixed op stream (MTTKRP on two modes, TTV, FIT with
/// lambda, and one query for a tensor that was never registered).
std::string record_sample_trace() {
  const std::string path = test_path("sample");
  TraceRecorder recorder(path);
  std::uint64_t id = 0;

  const std::vector<index_t> dims{48, 32, 24};

  net::RegisterMsg reg;
  reg.id = ++id;
  reg.name = "t";
  reg.tensor = serve_test::exact_tensor(dims, 3000, 81);
  recorder.record(net::MsgType::kRegister, net::encode_register(reg));

  const auto factors = serve_test::exact_factors(dims, 6, 82);
  const auto vectors = serve_test::exact_factors(dims, 1, 83);
  std::mt19937 rng(84);

  auto record_query = [&](index_t mode, OpKind op, bool with_lambda,
                          const std::vector<DenseMatrix>& f) {
    net::QueryMsg msg;
    msg.id = ++id;
    msg.tensor = "t";
    msg.mode = mode;
    msg.op = op;
    msg.factors = f;
    if (with_lambda) {
      msg.has_lambda = true;
      msg.lambda.assign(f[0].cols(), 0.5F);
    }
    recorder.record(net::MsgType::kQuery, net::encode_query(msg));
  };

  record_query(0, OpKind::kMttkrp, false, *factors);
  record_query(1, OpKind::kMttkrp, false, *factors);  // crosses threshold

  net::UpdateMsg upd;
  upd.id = ++id;
  upd.name = "t";
  upd.updates = serve_test::exact_batch(dims, 400, rng);
  recorder.record(net::MsgType::kUpdate, net::encode_update(upd));

  record_query(0, OpKind::kTtv, false, *vectors);
  record_query(0, OpKind::kFit, true, *factors);

  upd.id = ++id;
  upd.updates = serve_test::exact_batch(dims, 400, rng);
  recorder.record(net::MsgType::kUpdate, net::encode_update(upd));

  record_query(2, OpKind::kMttkrp, false, *factors);

  // A request that FAILS: the replayer must log it as a kError frame,
  // not die -- failures are part of the deterministic dialogue.
  net::QueryMsg ghost;
  ghost.id = ++id;
  ghost.tensor = "ghost";
  ghost.mode = 0;
  ghost.factors = *factors;
  recorder.record(net::MsgType::kQuery, net::encode_query(ghost));

  return path;  // recorder closes on scope exit
}

// ---------------------------------------------------------------------------

TEST(TraceReplay, ReplayIsByteIdenticalAcrossRunsAndWorkerCounts) {
  const std::string path = record_sample_trace();

  const ReplayResult a = replay_with_workers(path, 2);
  EXPECT_EQ(a.events, 9u);  // 1 register + 2 updates + 6 queries
  EXPECT_EQ(a.skipped, 0u);
  EXPECT_FALSE(a.log.empty());

  const ReplayResult b = replay_with_workers(path, 2);
  EXPECT_EQ(a.log, b.log) << "same-config replay diverged";

  // The contract is stronger: the idle barrier after every event makes
  // the log independent of the worker count too.
  const ReplayResult c = replay_with_workers(path, 4);
  EXPECT_EQ(c.events, a.events);
  EXPECT_EQ(a.log, c.log) << "replay depends on the worker count";
}

TEST(TraceReplay, ServerRecordedTraceRoundTrips) {
  const std::string trace_path = test_path("server");
  {
    net::ServerOptions opts;
    opts.unix_path = test_path("sock");
    opts.serve.workers = 2;
    opts.serve.shards = 2;
    opts.serve.enable_upgrade = false;
    opts.serve.enable_compaction = false;
    opts.record_path = trace_path;
    net::TensorServer server(opts);

    const std::vector<index_t> dims{32, 24, 16};
    const auto factors = serve_test::exact_factors(dims, 4, 92);
    std::mt19937 rng(93);

    net::TensorClient client(server.unix_path());
    client.register_tensor("t", serve_test::exact_tensor(dims, 1500, 91));
    net::QueryMsg q;
    q.tensor = "t";
    q.mode = 0;
    q.factors = *factors;
    client.query(q);
    client.apply_updates("t", serve_test::exact_batch(dims, 200, rng));
    q.mode = 1;
    client.query(q);
    // Server (and recorder) close before the trace file is read back.
  }

  // The file holds the full dialogue; replay skips the responses.
  const ReplayResult a = replay_with_workers(trace_path, 2);
  EXPECT_EQ(a.events, 4u);  // register + query + update + query
  EXPECT_GE(a.skipped, 4u) << "recorded responses should be skipped";

  const ReplayResult b = replay_with_workers(trace_path, 3);
  EXPECT_EQ(a.log, b.log) << "server-recorded trace replay diverged";
}

TEST(TraceReplay, CorruptHeaderThrowsProtocolError) {
  const std::string path = test_path("garbage");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "this is not a trace file";
  }
  EXPECT_THROW(TraceReader reader(path), net::ProtocolError);
}

TEST(TraceReplay, TruncatedTailThrowsProtocolError) {
  const std::string path = test_path("truncated");
  { TraceRecorder recorder(path); }  // valid header, nothing else
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    const char garbage[3] = {0x40, 0x00, 0x00};  // partial length word
    out.write(garbage, sizeof(garbage));
  }
  TraceReader reader(path);
  net::Frame frame;
  EXPECT_THROW(reader.next(frame), net::ProtocolError);
}

TEST(TraceReplay, MissingFileThrows) {
  EXPECT_THROW(TraceReader reader(test_path("never-written")),
               net::NetError);
}

}  // namespace
}  // namespace bcsf::trace
