// Tests for the GPU execution simulator: the L2 cache model, the address
// space, and the block/warp scheduler's invariants (work conservation,
// metric bounds, imbalance behavior, dispatch gating).
#include <gtest/gtest.h>

#include "gpusim/cache.hpp"
#include "gpusim/device.hpp"
#include "gpusim/scheduler.hpp"
#include "util/error.hpp"

namespace bcsf {
namespace {

TEST(CacheSim, HitAfterMiss) {
  CacheSim cache(1024, 64, 2);
  EXPECT_FALSE(cache.access(0));
  EXPECT_TRUE(cache.access(0));
  EXPECT_TRUE(cache.access(32));  // same line
  EXPECT_FALSE(cache.access(64)); // next line
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_DOUBLE_EQ(cache.hit_rate_pct(), 50.0);
}

TEST(CacheSim, LruEviction) {
  // 2-way, 64B lines, 2 sets (capacity 256B).  Addresses 0, 128, 256 map
  // to set 0; the third access evicts the LRU (0).
  CacheSim cache(256, 64, 2);
  cache.access(0);
  cache.access(128);
  cache.access(256);
  EXPECT_FALSE(cache.access(0));   // was evicted
  EXPECT_TRUE(cache.access(256));  // still resident
}

TEST(CacheSim, LruRefreshOnHit) {
  CacheSim cache(256, 64, 2);
  cache.access(0);
  cache.access(128);
  cache.access(0);    // refresh 0
  cache.access(256);  // evicts 128, not 0
  EXPECT_TRUE(cache.access(0));
  EXPECT_FALSE(cache.access(128));
}

TEST(CacheSim, AccessRangeCountsLines) {
  CacheSim cache(4096, 64, 4);
  EXPECT_EQ(cache.access_range(0, 256), 4u);    // 4 cold lines
  EXPECT_EQ(cache.access_range(0, 256), 0u);    // all hot
  EXPECT_EQ(cache.access_range(1020, 8), 2u);   // straddles two cold lines
}

TEST(CacheSim, RejectsBadGeometry) {
  EXPECT_THROW(CacheSim(32, 64, 2), Error);  // capacity < one set
}

TEST(AddressSpace, RegionsAreDisjoint) {
  AddressSpace space;
  const unsigned a = space.add_region("A");
  const unsigned b = space.add_region("B");
  EXPECT_NE(a, b);
  // Regions are 1 TB apart: no overlap for any realistic offset.
  EXPECT_GT(space.addr(b, 0), space.addr(a, 1ULL << 39));
}

KernelLaunch uniform_launch(offset_t blocks, unsigned warps, double cycles) {
  KernelLaunch launch;
  launch.name = "test";
  launch.warps_per_block = warps;
  for (offset_t b = 0; b < blocks; ++b) {
    BlockWork bw;
    bw.warp_cycles.assign(warps, cycles);
    launch.blocks.push_back(bw);
  }
  launch.total_flops = 1e6;
  return launch;
}

TEST(Scheduler, EmptyLaunch) {
  const DeviceModel dev = DeviceModel::tiny();
  KernelLaunch launch;
  launch.name = "empty";
  const SimReport r = simulate_launch(dev, launch);
  EXPECT_EQ(r.cycles, 0.0);
  EXPECT_GT(r.seconds, 0.0);  // launch latency only
}

TEST(Scheduler, SingleWarpRunsAtRateOne) {
  DeviceModel dev = DeviceModel::tiny();
  dev.cycles_block_overhead = 0.0;
  KernelLaunch launch = uniform_launch(1, 1, 1000.0);
  const SimReport r = simulate_launch(dev, launch);
  EXPECT_NEAR(r.cycles, 1000.0, 1.0);
  EXPECT_NEAR(r.sm_efficiency_pct, 100.0 / dev.num_sms, 1.0);
}

TEST(Scheduler, IssueWidthCapsThroughput) {
  DeviceModel dev = DeviceModel::tiny();  // issue width 2, 8 warp slots
  dev.cycles_block_overhead = 0.0;
  dev.block_dispatch_per_cycle = 1e9;  // disable gating for this test
  // One block of 8 warps x 1000 cycles: total 8000 warp-cycles at width 2
  // -> 4000 cycles, not 1000.
  KernelLaunch launch = uniform_launch(1, 8, 1000.0);
  const SimReport r = simulate_launch(dev, launch);
  EXPECT_NEAR(r.cycles, 4000.0, 10.0);
}

TEST(Scheduler, WorkConservation) {
  const DeviceModel dev = DeviceModel::tiny();
  const KernelLaunch launch = uniform_launch(50, 4, 500.0);
  const SimReport r = simulate_launch(dev, launch);
  // Total work cannot exceed SMs x issue width x makespan.
  const double capacity = r.cycles * dev.num_sms * dev.sm_issue_width;
  const double work =
      50.0 * 4.0 * (500.0 + dev.cycles_block_overhead);
  EXPECT_GE(capacity * (1.0 + 1e-9), work);
}

TEST(Scheduler, MetricBounds) {
  const DeviceModel dev = DeviceModel::tiny();
  const SimReport r = simulate_launch(dev, uniform_launch(37, 3, 321.0));
  EXPECT_GT(r.cycles, 0.0);
  EXPECT_GE(r.achieved_occupancy_pct, 0.0);
  EXPECT_LE(r.achieved_occupancy_pct, 100.0);
  EXPECT_GE(r.sm_efficiency_pct, 0.0);
  EXPECT_LE(r.sm_efficiency_pct, 100.0);
}

TEST(Scheduler, Deterministic) {
  const DeviceModel dev = DeviceModel::tiny();
  const KernelLaunch launch = uniform_launch(23, 4, 777.0);
  const SimReport a = simulate_launch(dev, launch);
  const SimReport b = simulate_launch(dev, launch);
  EXPECT_DOUBLE_EQ(a.cycles, b.cycles);
  EXPECT_DOUBLE_EQ(a.achieved_occupancy_pct, b.achieved_occupancy_pct);
}

TEST(Scheduler, MoreWorkNeverFinishesSooner) {
  const DeviceModel dev = DeviceModel::tiny();
  const SimReport small = simulate_launch(dev, uniform_launch(10, 4, 100.0));
  const SimReport large = simulate_launch(dev, uniform_launch(40, 4, 100.0));
  EXPECT_GE(large.cycles, small.cycles);
}

TEST(Scheduler, OneGiantBlockTanksSmEfficiency) {
  DeviceModel dev = DeviceModel::tiny(8, 8);
  dev.block_dispatch_per_cycle = 1e9;
  // 63 tiny blocks + 1 enormous block: the tail pins one SM while the
  // other seven idle -- the darpa signature.
  KernelLaunch launch = uniform_launch(63, 2, 10.0);
  BlockWork giant;
  giant.warp_cycles.assign(2, 50000.0);
  launch.blocks.push_back(giant);
  launch.warps_per_block = 2;
  const SimReport r = simulate_launch(dev, launch);
  EXPECT_LT(r.sm_efficiency_pct, 25.0);
  const SimReport balanced = simulate_launch(dev, uniform_launch(64, 2, 10.0 + 50000.0 / 64));
  EXPECT_GT(balanced.sm_efficiency_pct, 2.0 * r.sm_efficiency_pct);
}

TEST(Scheduler, IntraBlockImbalanceExtendsBlock) {
  DeviceModel dev = DeviceModel::tiny();
  dev.cycles_block_overhead = 0.0;
  dev.block_dispatch_per_cycle = 1e9;
  // 4 warps totalling 4000 cycles, but one warp owns almost all of it:
  // the block cannot finish before that warp does (inter-warp imbalance).
  KernelLaunch skewed;
  skewed.warps_per_block = 4;
  BlockWork bw;
  bw.warp_cycles = {3700.0, 100.0, 100.0, 100.0};
  skewed.blocks.push_back(bw);
  const SimReport r = simulate_launch(dev, skewed);
  EXPECT_GE(r.cycles, 3700.0 - 1.0);
  // The balanced version of the same work finishes at width 2: 2000.
  const SimReport balanced = simulate_launch(dev, uniform_launch(1, 4, 1000.0));
  EXPECT_LT(balanced.cycles, r.cycles);
}

TEST(Scheduler, DispatchGateStarvesTinyBlocks) {
  DeviceModel dev = DeviceModel::tiny(4, 16);
  dev.block_dispatch_per_cycle = 0.005;  // very slow dispatcher
  const SimReport slow = simulate_launch(dev, uniform_launch(500, 1, 5.0));
  dev.block_dispatch_per_cycle = 1e9;
  const SimReport fast = simulate_launch(dev, uniform_launch(500, 1, 5.0));
  EXPECT_GT(slow.cycles, 10.0 * fast.cycles);
  EXPECT_LT(slow.sm_efficiency_pct, 50.0);
}

TEST(Scheduler, PassthroughCounters) {
  KernelLaunch launch = uniform_launch(2, 2, 10.0);
  launch.atomic_ops = 42;
  launch.l2_hit_rate_pct = 33.0;
  const SimReport r = simulate_launch(DeviceModel::tiny(), launch);
  EXPECT_EQ(r.atomic_ops, 42u);
  EXPECT_DOUBLE_EQ(r.l2_hit_rate_pct, 33.0);
  EXPECT_EQ(r.num_blocks, 2u);
  EXPECT_EQ(r.num_warps, 4u);
}

TEST(Scheduler, RejectsOverwideBlock) {
  KernelLaunch launch;
  launch.warps_per_block = 2;
  BlockWork bw;
  bw.warp_cycles.assign(5, 1.0);  // more warps than declared
  launch.blocks.push_back(bw);
  EXPECT_THROW(simulate_launch(DeviceModel::tiny(), launch), Error);
}

TEST(SimReport, CombineWeightsByTime) {
  SimReport a;
  a.kernel = "a";
  a.seconds = 1.0;
  a.sm_efficiency_pct = 100.0;
  a.achieved_occupancy_pct = 80.0;
  a.total_flops = 100.0;
  a.l2_hit_rate_pct = 100.0;
  SimReport b;
  b.kernel = "b";
  b.seconds = 3.0;
  b.sm_efficiency_pct = 20.0;
  b.achieved_occupancy_pct = 40.0;
  b.total_flops = 300.0;
  b.l2_hit_rate_pct = 0.0;
  a += b;
  EXPECT_DOUBLE_EQ(a.seconds, 4.0);
  EXPECT_DOUBLE_EQ(a.sm_efficiency_pct, 40.0);   // (100*1 + 20*3)/4
  EXPECT_DOUBLE_EQ(a.achieved_occupancy_pct, 50.0);
  EXPECT_DOUBLE_EQ(a.l2_hit_rate_pct, 25.0);     // flop-weighted
  EXPECT_DOUBLE_EQ(a.gflops, 100.0 / 1e9);
}

TEST(Device, Presets) {
  const DeviceModel p100 = DeviceModel::p100();
  EXPECT_EQ(p100.num_sms, 56u);           // SS VI-A
  EXPECT_EQ(p100.warps_per_block(), 16u); // 512-thread blocks
  EXPECT_EQ(p100.l2_bytes, 4096u * 1024u);
  const DeviceModel v100 = DeviceModel::v100();
  EXPECT_EQ(v100.num_sms, 80u);
  EXPECT_GT(v100.clock_ghz, p100.clock_ghz);
  EXPECT_GT(v100.l2_bytes, p100.l2_bytes);
  const DeviceModel tiny = DeviceModel::tiny(3, 4);
  EXPECT_EQ(tiny.num_sms, 3u);
  EXPECT_EQ(tiny.max_warps_per_sm, 4u);
}

TEST(Device, V100FasterThanP100OnSameLaunch) {
  KernelLaunch launch = uniform_launch(200, 8, 400.0);
  launch.warps_per_block = 8;
  launch.total_flops = 1e9;
  const SimReport p = simulate_launch(DeviceModel::p100(), launch);
  const SimReport v = simulate_launch(DeviceModel::v100(), launch);
  EXPECT_LT(v.seconds, p.seconds);  // more SMs + higher clock
}

}  // namespace
}  // namespace bcsf
