// Tests for CPD-ALS (Algorithm 1): convergence on low-rank data,
// backend agreement, and option handling.
#include <gtest/gtest.h>

#include "cpd/cpd_als.hpp"
#include "tensor/generator.hpp"
#include "util/error.hpp"

namespace bcsf {
namespace {

SparseTensor low_rank_tensor(value_t noise = 0.0F) {
  // Fully-dense sampling: a *sparse* sample of a CP model is not low-rank
  // (the implicit zeros off the support break the structure), so ALS can
  // only be validated for near-exact fit on a dense low-rank tensor.
  return generate_low_rank({12, 10, 8}, 4, 12 * 10 * 8, noise, 81);
}

TEST(CpdAls, FitIncreasesAndConverges) {
  CpdOptions opts;
  opts.rank = 4;
  opts.max_iterations = 30;
  opts.format = "cpu-csf";
  const CpdResult r = cpd_als(low_rank_tensor(), opts);
  ASSERT_GE(r.fit_history.size(), 2u);
  // Fit is non-decreasing up to fp noise after the first iterations.
  for (std::size_t i = 1; i < r.fit_history.size(); ++i) {
    EXPECT_GT(r.fit_history[i], r.fit_history[i - 1] - 1e-3);
  }
  // Exact-rank noiseless data: ALS should model it well.
  EXPECT_GT(r.final_fit, 0.85);
}

TEST(CpdAls, NoisyDataStillFitsReasonably) {
  CpdOptions opts;
  opts.rank = 4;
  opts.max_iterations = 25;
  const CpdResult r = cpd_als(low_rank_tensor(0.05F), opts);
  EXPECT_GT(r.final_fit, 0.7);
}

TEST(CpdAls, BackendsAgreeOnFit) {
  CpdOptions base;
  base.rank = 3;
  base.max_iterations = 8;
  base.fit_tolerance = 0.0;  // fixed iteration count for comparability
  base.seed = 5;
  const SparseTensor x = low_rank_tensor();

  base.format = "reference";
  const double ref_fit = cpd_als(x, base).final_fit;
  base.format = "cpu-csf";
  const double cpu_fit = cpd_als(x, base).final_fit;
  base.format = "hbcsf";
  base.device = DeviceModel::tiny();
  const CpdResult gpu = cpd_als(x, base);

  EXPECT_NEAR(cpu_fit, ref_fit, 0.02);
  EXPECT_NEAR(gpu.final_fit, ref_fit, 0.02);
  EXPECT_GT(gpu.simulated_mttkrp_seconds, 0.0);
}

TEST(CpdAls, FactorsHaveUnitColumns) {
  CpdOptions opts;
  opts.rank = 3;
  opts.max_iterations = 5;
  const CpdResult r = cpd_als(low_rank_tensor(), opts);
  ASSERT_EQ(r.factors.size(), 3u);
  ASSERT_EQ(r.lambda.size(), 3u);
  // The last-normalized factor has unit columns.
  const DenseMatrix& last = r.factors.back();
  for (rank_t c = 0; c < last.cols(); ++c) {
    double norm = 0.0;
    for (index_t row = 0; row < last.rows(); ++row) {
      norm += static_cast<double>(last(row, c)) * last(row, c);
    }
    EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-3);
  }
}

TEST(CpdAls, StopsEarlyOnTolerance) {
  CpdOptions opts;
  opts.rank = 4;
  opts.max_iterations = 50;
  opts.fit_tolerance = 1e-3;
  const CpdResult r = cpd_als(low_rank_tensor(), opts);
  EXPECT_LT(r.iterations, 50u);
  EXPECT_EQ(r.fit_history.size(), r.iterations);
}

TEST(CpdAls, RespectsIterationCap) {
  CpdOptions opts;
  opts.rank = 2;
  opts.max_iterations = 3;
  opts.fit_tolerance = 0.0;
  const CpdResult r = cpd_als(low_rank_tensor(), opts);
  EXPECT_EQ(r.iterations, 3u);
}

TEST(CpdAls, RejectsEmptyTensorAndZeroRank) {
  const SparseTensor empty({3, 3, 3});
  EXPECT_THROW(cpd_als(empty, CpdOptions{}), Error);
  CpdOptions zero;
  zero.rank = 0;
  EXPECT_THROW(cpd_als(low_rank_tensor(), zero), Error);
}

TEST(CpdAls, Order4Decomposition) {
  const SparseTensor x =
      generate_low_rank({8, 7, 6, 5}, 3, 8 * 7 * 6 * 5, 0.0F, 82);
  CpdOptions opts;
  opts.rank = 3;
  opts.max_iterations = 20;
  const CpdResult r = cpd_als(x, opts);
  ASSERT_EQ(r.factors.size(), 4u);
  EXPECT_GT(r.final_fit, 0.8);
}

}  // namespace
}  // namespace bcsf
