// Tests for the SPLATT baseline wrapper (ALLMODE, tiled traversal) and
// the cross-format storage accounting of SS III / Fig. 16.
#include <gtest/gtest.h>

#include "core/factors.hpp"
#include "formats/storage.hpp"
#include "kernels/mttkrp.hpp"
#include "kernels/splatt.hpp"
#include "tensor/generator.hpp"
#include "util/error.hpp"

namespace bcsf {
namespace {

SparseTensor test_tensor() {
  PowerLawConfig cfg;
  cfg.dims = {60, 80, 200};
  cfg.target_nnz = 4000;
  cfg.fiber_alpha = 0.7;
  cfg.max_fiber_len = 100;
  cfg.seed = 91;
  return generate_power_law(cfg);
}

TEST(Splatt, AllmodeKeepsOneCsfPerMode) {
  const SparseTensor x = test_tensor();
  const SplattAllmode splatt(x);
  EXPECT_EQ(splatt.order(), 3u);
  for (index_t m = 0; m < 3; ++m) {
    EXPECT_EQ(splatt.csf(m).root_mode(), m);
    EXPECT_EQ(splatt.csf(m).nnz(), x.nnz());
  }
  EXPECT_GT(splatt.preprocessing_seconds(), 0.0);
}

TEST(Splatt, TiledMatchesUntiled) {
  const SparseTensor x = test_tensor();
  const auto factors = make_random_factors(x.dims(), 8, 92);
  const SplattAllmode nt(x, SplattOptions{.tiling = false});
  const SplattAllmode t(x, SplattOptions{.tiling = true, .leaf_tiles = 8});
  for (index_t mode = 0; mode < 3; ++mode) {
    const DenseMatrix a = nt.mttkrp(mode, factors);
    const DenseMatrix b = t.mttkrp(mode, factors);
    EXPECT_LT(a.max_abs_diff(b), 1e-2) << "mode " << mode;
  }
}

TEST(Splatt, OneTileIsUntiled) {
  const SparseTensor x = test_tensor();
  const auto factors = make_random_factors(x.dims(), 8, 93);
  const CsfTensor csf = build_csf(x, 0);
  const DenseMatrix a = mttkrp_csf_cpu(csf, factors);
  const DenseMatrix b = mttkrp_csf_cpu_tiled(csf, factors, 1);
  EXPECT_LT(a.max_abs_diff(b), 1e-3);
}

TEST(Splatt, MoreTilesThanLeafDimStillCorrect) {
  SparseTensor x({10, 10, 4});
  std::vector<index_t> c(3);
  for (index_t i = 0; i < 10; ++i) {
    c = {i, i, static_cast<index_t>(i % 4)};
    x.push_back(c, 1.0F);
  }
  const auto factors = make_random_factors(x.dims(), 4, 94);
  const CsfTensor csf = build_csf(x, 0);
  const DenseMatrix a = mttkrp_csf_cpu(csf, factors);
  const DenseMatrix b = mttkrp_csf_cpu_tiled(csf, factors, 16);
  EXPECT_LT(a.max_abs_diff(b), 1e-4);
}

TEST(Splatt, TiledOrder4Correct) {
  PowerLawConfig cfg;
  cfg.dims = {20, 15, 10, 60};
  cfg.target_nnz = 1200;
  cfg.seed = 95;
  const SparseTensor x = generate_power_law(cfg);
  const auto factors = make_random_factors(x.dims(), 4, 96);
  const CsfTensor csf = build_csf(x, 1);
  const DenseMatrix a = mttkrp_csf_cpu(csf, factors);
  const DenseMatrix b = mttkrp_csf_cpu_tiled(csf, factors, 4);
  EXPECT_LT(a.max_abs_diff(b), 1e-2);
}

TEST(Storage, CooClosedForm) {
  const SparseTensor x = test_tensor();
  EXPECT_EQ(coo_storage(x).bytes, coo_storage_formula(3, x.nnz()));
  EXPECT_EQ(coo_storage(x).bytes, 3u * x.nnz() * kIndexBytes);
}

TEST(Storage, CsfMatchesClosedForm) {
  const SparseTensor x = test_tensor();
  const CsfTensor csf = build_csf(x, 0);
  EXPECT_EQ(csf_storage(x, 0).bytes,
            csf_storage_formula(csf.num_slices(), csf.num_fibers(), csf.nnz()));
}

TEST(Storage, CsfBoundsFromPaper) {
  // SS III-B: CSF storage lies in [~1M, 5M] words for a 3-order tensor.
  const SparseTensor x = test_tensor();
  const std::size_t csf = csf_storage(x, 0).bytes;
  EXPECT_GE(csf, x.nnz() * kIndexBytes);
  EXPECT_LE(csf, 5u * x.nnz() * kIndexBytes);
}

TEST(Storage, HbcsfRangeFromPaper) {
  // SS V: HB-CSF storage is 4 x (1M ~ 3M) bytes.
  PowerLawConfig cfg;
  cfg.dims = {500, 300, 100};
  cfg.target_nnz = 5000;
  cfg.singleton_slice_frac = 0.3;
  cfg.fixed_fiber_len = 1;
  cfg.seed = 97;
  const SparseTensor x = generate_power_law(cfg);
  const std::size_t hb = hbcsf_storage(x, 0).bytes;
  EXPECT_GE(hb, x.nnz() * kIndexBytes);
  EXPECT_LE(hb, 3u * x.nnz() * kIndexBytes + 64);
}

TEST(Storage, WordsPerNnzNormalization) {
  const SparseTensor x = test_tensor();
  const StorageReport coo = coo_storage(x);
  EXPECT_NEAR(coo.words_per_nnz, 3.0, 1e-9);  // order-3 COO = 3 words/nnz
}

TEST(Storage, AllModesSumsAcrossModes) {
  const SparseTensor x = test_tensor();
  std::size_t manual = 0;
  for (index_t m = 0; m < 3; ++m) manual += csf_storage(x, m).bytes;
  EXPECT_EQ(csf_storage_all_modes(x), manual);
}

TEST(Storage, BcsfAddsSegmentsOverCsf) {
  PowerLawConfig cfg;
  cfg.dims = {30, 30, 500};
  cfg.target_nnz = 4000;
  cfg.fiber_alpha = 0.3;
  cfg.max_fiber_len = 400;
  cfg.seed = 98;
  const SparseTensor x = generate_power_law(cfg);
  // Splitting adds (index, pointer) pairs for the extra segments, so
  // B-CSF storage >= CSF storage.
  EXPECT_GE(bcsf_storage(x, 0).bytes, csf_storage(x, 0).bytes);
}

}  // namespace
}  // namespace bcsf
