// Unit tests for the util substrate: arithmetic helpers, statistics,
// random samplers, CLI parsing, and the error macros.
#include <gtest/gtest.h>

#include <cmath>

#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"
#include "util/types.hpp"

namespace bcsf {
namespace {

TEST(Types, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(1, 3), 1);
  EXPECT_EQ(ceil_div<offset_t>(0, 5), 0u);
}

TEST(Types, RoundUp) {
  EXPECT_EQ(round_up(10, 4), 12);
  EXPECT_EQ(round_up(8, 4), 8);
  EXPECT_EQ(round_up(1, 128), 128);
}

TEST(Error, CheckThrowsWithMessage) {
  try {
    BCSF_CHECK(1 == 2, "custom context " << 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("custom context 42"),
              std::string::npos);
  }
}

TEST(Error, AssertThrows) {
  EXPECT_THROW(BCSF_ASSERT(false, "bug"), Error);
  EXPECT_NO_THROW(BCSF_ASSERT(true, "fine"));
}

TEST(Stats, KnownSample) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const SampleStats s = compute_stats(xs);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);  // classic textbook sample
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Stats, EmptySample) {
  const SampleStats s = compute_stats(std::span<const double>{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, SingleElement) {
  const std::vector<offset_t> xs = {7};
  const SampleStats s = compute_stats(std::span<const offset_t>(xs));
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.p50, 7.0);
}

TEST(Stats, GiniUniformIsZero) {
  const std::vector<double> xs(100, 3.0);
  EXPECT_NEAR(compute_stats(xs).gini, 0.0, 1e-9);
}

TEST(Stats, GiniConcentratedIsHigh) {
  std::vector<double> xs(100, 0.0);
  xs.back() = 1000.0;
  EXPECT_GT(compute_stats(xs).gini, 0.95);
}

TEST(Stats, MedianInterpolates) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(compute_stats(xs).p50, 2.5);
}

TEST(Stats, Log2Histogram) {
  const std::vector<offset_t> xs = {0, 1, 1, 2, 3, 4, 7, 8, 1000};
  const Log2Histogram h = log2_histogram(xs);
  EXPECT_EQ(h.zeros, 1u);
  ASSERT_GE(h.buckets.size(), 10u);
  EXPECT_EQ(h.buckets[0], 2u);  // {1, 1}
  EXPECT_EQ(h.buckets[1], 2u);  // {2, 3}
  EXPECT_EQ(h.buckets[2], 2u);  // {4, 7}
  EXPECT_EQ(h.buckets[3], 1u);  // {8}
  EXPECT_EQ(h.buckets[9], 1u);  // {1000}
}

TEST(Rng, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, UniformBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
  EXPECT_THROW(rng.uniform(5, 4), Error);
}

TEST(Rng, UniformIndexCoversDomain) {
  Rng rng(6);
  std::vector<bool> seen(8, false);
  for (int i = 0; i < 2000; ++i) seen[rng.uniform_index(8)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
  EXPECT_THROW(rng.uniform_index(0), Error);
}

TEST(Rng, ParetoBounded) {
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.pareto(1.5, 1.0, 100.0);
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 100.0);
  }
  EXPECT_THROW(rng.pareto(0.0, 1.0, 2.0), Error);
  EXPECT_THROW(rng.pareto(1.0, 2.0, 1.0), Error);
}

TEST(Rng, ParetoHeavierTailWithSmallerAlpha) {
  Rng rng(8);
  auto mean = [&](double alpha) {
    double acc = 0.0;
    for (int i = 0; i < 20000; ++i) acc += rng.pareto(alpha, 1.0, 10000.0);
    return acc / 20000.0;
  };
  EXPECT_GT(mean(0.5), mean(2.5) * 3.0);
}

TEST(Zipf, FirstElementMostLikely) {
  Rng rng(9);
  ZipfSampler zipf(100, 1.1, rng);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.sample()];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[99] * 5);
}

TEST(Zipf, StaysInDomain) {
  Rng rng(10);
  ZipfSampler zipf(5, 2.0, rng);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.sample(), 5u);
}

TEST(Cli, ParsesAllForms) {
  const char* argv[] = {"prog",       "--alpha=1.5", "--name", "foo",
                        "positional", "--flag",      "--count", "42"};
  const CliParser cli(8, argv);
  EXPECT_EQ(cli.program(), "prog");
  EXPECT_DOUBLE_EQ(cli.get_double("alpha", 0.0), 1.5);
  EXPECT_EQ(cli.get_string("name", ""), "foo");
  EXPECT_TRUE(cli.get_bool("flag", false));
  EXPECT_EQ(cli.get_int("count", 0), 42);
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "positional");
}

TEST(Cli, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  const CliParser cli(1, argv);
  EXPECT_EQ(cli.get_int("missing", -3), -3);
  EXPECT_EQ(cli.get_string("missing", "d"), "d");
  EXPECT_FALSE(cli.has("missing"));
}

TEST(Cli, BoolForms) {
  const char* argv[] = {"prog", "--a=true", "--b=false", "--c=1", "--d=0"};
  const CliParser cli(5, argv);
  EXPECT_TRUE(cli.get_bool("a", false));
  EXPECT_FALSE(cli.get_bool("b", true));
  EXPECT_TRUE(cli.get_bool("c", false));
  EXPECT_FALSE(cli.get_bool("d", true));
}

TEST(Cli, RejectsBadBool) {
  const char* argv[] = {"prog", "--x=maybe"};
  const CliParser cli(2, argv);
  EXPECT_THROW(cli.get_bool("x", false), Error);
}

TEST(Timer, MeasuresElapsed) {
  Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + std::sqrt(static_cast<double>(i));
  }
  EXPECT_GT(t.seconds(), 0.0);
  EXPECT_GT(t.milliseconds(), 0.0);
}

TEST(Logging, LevelRoundTrip) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(before);
}

}  // namespace
}  // namespace bcsf
