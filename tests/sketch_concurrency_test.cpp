// Concurrency suite for the streaming sketches (DESIGN.md §12), run
// under TSan in CI (`concurrency` label): writers applying update
// batches and compactions race readers of sketch()/base_sketch()/
// sketch_scalars(), and the serving layer's kStats path races updates
// and traversal queries.  Assertions check the sketches stay internally
// consistent at every observation, not just at quiescence.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "serve/tensor_op_service.hpp"
#include "tensor/dynamic_tensor.hpp"
#include "tensor/generator.hpp"
#include "tensor/sketch.hpp"
#include "serve_test_util.hpp"

namespace bcsf {
namespace {

using serve_test::run_threads;

TEST(SketchConcurrency, ReadersRaceAppliersAndCompactions) {
  const std::vector<index_t> dims{150, 120, 90};
  DynamicSparseTensor dyn(share_tensor(generate_uniform(dims, 6000, 3)));

  constexpr int kWriters = 2;
  constexpr int kReaders = 3;
  constexpr int kBatches = 12;
  std::atomic<int> writers_done{0};

  run_threads(kWriters + kReaders + 1, [&](int i) {
    if (i < kWriters) {
      for (int b = 0; b < kBatches; ++b) {
        dyn.apply(generate_uniform(dims, 300,
                                   1000 + static_cast<std::uint64_t>(i) * 100 +
                                       static_cast<std::uint64_t>(b)));
      }
      writers_done.fetch_add(1);
    } else if (i < kWriters + kReaders) {
      while (writers_done.load() < kWriters) {
        const TensorSketch merged = dyn.sketch();
        const TensorSketch base = dyn.base_sketch();
        const SketchScalars scalars = dyn.sketch_scalars();
        // Internal consistency of each observation: the merged sketch
        // never shrinks below the base, every mode agrees on nnz, and
        // the scalar view's split sums to a finite norm.
        ASSERT_GE(merged.nnz(), base.nnz());
        for (index_t m = 0; m < merged.order(); ++m) {
          ASSERT_EQ(merged.mode(m).nnz(), merged.nnz());
          ASSERT_LE(merged.mode(m).num_slices(), merged.nnz());
        }
        ASSERT_GE(scalars.norm_sq(), 0.0);
        ASSERT_GE(scalars.norm_sq_error_bound(), 0.0);
      }
    } else {
      // Compactor: merge + 3-arg replace_base against live writers.
      for (int round = 0; round < 4; ++round) {
        const TensorSnapshot snap = dyn.snapshot();
        if (snap.delta_nnz == 0) continue;
        TensorPtr merged = share_tensor(snap.merged(/*coalesce=*/true));
        TensorSketch sketch = TensorSketch::build(*merged);
        dyn.replace_base(merged, snap.version, std::move(sketch));
      }
    }
  });

  // Quiescent check: incremental state == from-scratch over the stored
  // entries, after all the racing applies and base swaps.
  const TensorSnapshot snap = dyn.snapshot();
  TensorSketch scratch = TensorSketch::build(*snap.base);
  for (const TensorPtr& chunk : snap.deltas) scratch.add_tensor(*chunk);
  const TensorSketch incremental = dyn.sketch();
  EXPECT_EQ(incremental.nnz(), scratch.nnz());
  for (index_t m = 0; m < incremental.order(); ++m) {
    EXPECT_EQ(incremental.mode(m).num_slices(), scratch.mode(m).num_slices());
    EXPECT_EQ(incremental.mode(m).sum_sq_slice_nnz(),
              scratch.mode(m).sum_sq_slice_nnz());
    EXPECT_EQ(incremental.mode(m).estimate_fibers(),
              scratch.mode(m).estimate_fibers());
  }
}

TEST(SketchConcurrency, StatsOpRacesUpdatesAndQueries) {
  ServeOptions opts;
  opts.workers = 4;
  opts.shards = 3;
  opts.compact_min_nnz = 128;
  opts.compact_threshold = 0.05;
  TensorOpService service(opts);

  const std::vector<index_t> dims{120, 100, 80};
  service.register_tensor("t", share_tensor(generate_uniform(dims, 8000, 7)));
  const auto factors = std::make_shared<const std::vector<DenseMatrix>>([&] {
    std::vector<DenseMatrix> f;
    for (index_t m = 0; m < 3; ++m) f.emplace_back(dims[m], 4);
    for (auto& mat : f) mat.randomize(11);
    return f;
  }());

  std::atomic<int> updaters_done{0};
  run_threads(6, [&](int i) {
    if (i < 2) {
      // Updaters: trip compactions (and the post-compaction sketch
      // re-decision) while stats queries are in flight.
      for (int b = 0; b < 10; ++b) {
        service.apply_updates(
            "t", generate_uniform(dims, 400,
                                  500 + static_cast<std::uint64_t>(i) * 50 +
                                      static_cast<std::uint64_t>(b)));
      }
      updaters_done.fetch_add(1);
    } else if (i < 4) {
      while (updaters_done.load() < 2) {
        const ServeResponse r =
            service.submit(ServeRequest("t", 0, nullptr, OpKind::kStats))
                .get();
        ASSERT_EQ(r.served_format, "sketch");
        ASSERT_EQ(r.output.rows(), 4);
        // Monotone lower bound: the tensor only ever grows here.
        ASSERT_GE(static_cast<offset_t>(r.output(0, 0)), 8000u);
        ASSERT_GT(r.scalar, 0.0);
      }
    } else {
      while (updaters_done.load() < 2) {
        const ServeResponse r =
            service.submit(ServeRequest("t", i % 3, factors)).get();
        ASSERT_EQ(r.output.rows(), dims[i % 3]);
      }
    }
  });
  service.wait_idle();

  // Final stats answer agrees with a from-scratch sketch of the final
  // stored state, shard-merged == whole (the merge contract).
  const ServeResponse final_stats =
      service.submit(ServeRequest("t", 0, nullptr, OpKind::kStats)).get();
  offset_t stored = 0;
  for (std::size_t s = 0; s < service.shard_count("t"); ++s) {
    const TensorSnapshot snap = service.shard_snapshot("t", s);
    stored += snap.base->nnz();
    for (const TensorPtr& chunk : snap.deltas) stored += chunk->nnz();
  }
  EXPECT_EQ(static_cast<offset_t>(final_stats.output(0, 0)), stored);
}

}  // namespace
}  // namespace bcsf
