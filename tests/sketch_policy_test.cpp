// Sketch-backed planning tests (DESIGN.md §12): the sketch overload of
// auto_select_format must reproduce the exact policy's decisions across
// the registry corpus generators, and the serving path must do ZERO
// O(nnz) exact-stats work once sketches exist -- asserted through the
// exact_stat_scan_count() hook across a full register/query/update/
// upgrade/compact lifecycle.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/auto_policy.hpp"
#include "serve/tensor_op_service.hpp"
#include "tensor/generator.hpp"
#include "tensor/sketch.hpp"
#include "tensor/sparse_tensor.hpp"
#include "tensor/tensor_stats.hpp"

namespace bcsf {
namespace {

/// The decision corpus: one scaled-down twin per structural regime the §V
/// policy distinguishes (uniform/ultra-sparse COO, all-singleton-fiber
/// CSL, heavy-slice CSF/B-CSF, mixed HB-CSF), over several seeds.
std::vector<SparseTensor> decision_corpus() {
  std::vector<SparseTensor> corpus;
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    corpus.push_back(generate_uniform({400, 300, 200}, 5000, seed));

    PowerLawConfig csl;
    csl.dims = {300, 250, 200};
    csl.target_nnz = 20000;
    csl.fixed_fiber_len = 1;
    csl.seed = seed;
    corpus.push_back(generate_power_law(csl));

    PowerLawConfig heavy;
    heavy.dims = {400, 300, 200};
    heavy.target_nnz = 40000;
    heavy.slice_alpha = 1.1;
    heavy.fiber_alpha = 1.3;
    heavy.seed = seed;
    corpus.push_back(generate_power_law(heavy));

    PowerLawConfig mixed;
    mixed.dims = {500, 300, 200};
    mixed.target_nnz = 30000;
    mixed.singleton_slice_frac = 0.3;
    mixed.seed = seed;
    corpus.push_back(generate_power_law(mixed));
  }
  return corpus;
}

TEST(SketchPolicy, ReproducesExactDecisionsOnCorpus) {
  // Tolerance band (documented in DESIGN.md §12): a mismatch is accepted
  // only when BOTH paths sit within 2% of the dominant_fraction gate --
  // i.e. the estimated CSL fraction straddles the 0.95 knife edge, where
  // the two formats are within noise of each other anyway.  Everywhere
  // else the sketch must reproduce the exact format verbatim.
  AutoPolicyOptions policy;
  int compared = 0;
  for (const SparseTensor& t : decision_corpus()) {
    const TensorSketch sketch = TensorSketch::build(t);
    for (index_t mode = 0; mode < t.order(); ++mode) {
      const AutoDecision exact = auto_select_format(t, mode, policy);
      const AutoDecision approx = auto_select_format(sketch, mode, policy);
      ++compared;
      if (approx.format == exact.format) continue;
      const double gate = policy.dominant_fraction;
      const auto near_gate = [gate](const AutoDecision& d) {
        return std::abs(d.coo_slice_fraction - gate) < 0.02 ||
               std::abs(d.coo_slice_fraction + d.csl_slice_fraction - gate) <
                   0.02;
      };
      EXPECT_TRUE(near_gate(exact) && near_gate(approx))
          << "mode " << mode << ": sketch chose '" << approx.format
          << "', exact chose '" << exact.format
          << "' away from the dominance gate\nexact: " << exact.to_string()
          << "\nsketch: " << approx.to_string();
    }
  }
  EXPECT_GE(compared, 36);  // 12 tensors x 3 modes
}

TEST(SketchPolicy, BreakevenAgreesWhenFormatsAgree) {
  const SparseTensor t = generate_uniform({200, 200, 200}, 20000, 9);
  const TensorSketch sketch = TensorSketch::build(t);
  const AutoDecision exact = auto_select_format(t, 0);
  const AutoDecision approx = auto_select_format(sketch, 0);
  ASSERT_EQ(approx.format, exact.format);
  if (std::isfinite(exact.breakeven_calls)) {
    // Break-even depends on S, F and nnz; only F is estimated (~1.6%).
    EXPECT_NEAR(approx.breakeven_calls, exact.breakeven_calls,
                0.1 * exact.breakeven_calls + 1.0);
  } else {
    EXPECT_FALSE(std::isfinite(approx.breakeven_calls));
  }
}

/// Drives a full serving lifecycle and returns how many exact O(nnz)
/// stat scans it triggered.
std::uint64_t scans_during_lifecycle(bool sketch_policy) {
  const std::uint64_t before = exact_stat_scan_count();
  {
    ServeOptions opts;
    opts.workers = 2;
    opts.shards = 3;
    opts.upgrade_threshold = 2.0;
    opts.compact_min_nnz = 64;
    opts.compact_threshold = 0.05;
    opts.sketch_policy = sketch_policy;
    TensorOpService service(opts);

    PowerLawConfig config;
    config.dims = {200, 150, 100};
    config.target_nnz = 12000;
    config.slice_alpha = 1.2;
    config.seed = 17;
    service.register_tensor("t", share_tensor(generate_power_law(config)));

    auto factors = std::make_shared<const std::vector<DenseMatrix>>([] {
      std::vector<DenseMatrix> f;
      f.emplace_back(200, 8);
      f.emplace_back(150, 8);
      f.emplace_back(100, 8);
      for (auto& m : f) m.randomize(5);
      return f;
    }());

    for (int round = 0; round < 3; ++round) {
      // Queries on every mode (drives policy resolution + upgrades)...
      std::vector<ServeRequest> batch;
      for (index_t mode = 0; mode < 3; ++mode) {
        batch.emplace_back("t", mode, factors);
      }
      for (auto& f : service.submit_batch(std::move(batch))) f.get();
      // ...updates big enough to trip compaction (re-decision path)...
      service.apply_updates(
          "t", generate_uniform({200, 150, 100}, 2000, 900 + round));
      // ...and the approximate-stats op.
      ServeRequest stats("t", 0, nullptr, OpKind::kStats);
      service.submit(std::move(stats)).get();
      service.wait_idle();
    }
    service.wait_idle();
  }
  return exact_stat_scan_count() - before;
}

TEST(SketchPolicy, ServingPathDoesZeroExactScansWithSketches) {
  // The counting hook must actually count (otherwise the zero below is
  // vacuous): the exact-policy service performs O(nnz) scans...
  EXPECT_GT(scans_during_lifecycle(/*sketch_policy=*/false), 0u);
  // ...and the sketch-backed service performs NONE, anywhere in the
  // lifecycle: registration, policy resolution, upgrades, compactions,
  // and kStats queries all read sketches.
  EXPECT_EQ(scans_during_lifecycle(/*sketch_policy=*/true), 0u);
}

TEST(SketchPolicy, StatsOpAnswersFromSketches) {
  ServeOptions opts;
  opts.workers = 2;
  opts.shards = 4;
  TensorOpService service(opts);

  const SparseTensor tensor = generate_uniform({120, 100, 80}, 9000, 21);
  const double true_norm_sq = tensor.norm() * tensor.norm();
  service.register_tensor("t", share_tensor(SparseTensor(tensor)));

  ServeResponse response =
      service.submit(ServeRequest("t", 0, nullptr, OpKind::kStats)).get();
  EXPECT_EQ(response.served_format, "sketch");
  EXPECT_EQ(response.op, OpKind::kStats);
  EXPECT_EQ(response.shards, 4u);
  ASSERT_EQ(response.output.rows(), 4);
  ASSERT_EQ(response.output.cols(), 8);

  // Slice-level row fields are exact.  Fiber counts: the shard merge
  // keeps the exact count on the partition mode (ascending disjoint
  // slice ranges); the other modes interleave across shards and fall
  // back to the HLL estimate, so they get the estimator's bound.
  const TensorSketch reference = TensorSketch::build(tensor);
  for (index_t m = 0; m < 3; ++m) {
    const ModeStats expect = reference.approx_mode_stats(m);
    EXPECT_EQ(static_cast<offset_t>(response.output(m, 0)), expect.nnz);
    EXPECT_EQ(static_cast<offset_t>(response.output(m, 1)),
              expect.num_slices);
    if (m == 0) {
      EXPECT_EQ(static_cast<offset_t>(response.output(m, 2)),
                expect.num_fibers);
    } else {
      const double truth = static_cast<double>(expect.num_fibers);
      EXPECT_NEAR(response.output(m, 2), truth, 0.08 * truth)
          << "mode " << m;
    }
    EXPECT_NEAR(response.output(m, 3), expect.singleton_slice_fraction,
                1e-6);
  }
  // Clean (uncoalesced-delta-free) tensor: norm exact, error bound 0.
  EXPECT_NEAR(response.scalar, true_norm_sq, 1e-6 * true_norm_sq);
  EXPECT_DOUBLE_EQ(response.output(3, 1), 0.0F);
  EXPECT_EQ(static_cast<offset_t>(response.output(3, 2)), 0u);  // delta
  EXPECT_EQ(static_cast<offset_t>(response.output(3, 3)), tensor.nnz());

  // After updates the norm error bound covers the coalesced truth.
  service.apply_updates("t", generate_uniform({120, 100, 80}, 1500, 99));
  ServeResponse after =
      service.submit(ServeRequest("t", 0, nullptr, OpKind::kStats)).get();
  EXPECT_GT(after.delta_nnz, 0u);
  SparseTensor merged = tensor;
  const SparseTensor extra = generate_uniform({120, 100, 80}, 1500, 99);
  std::vector<index_t> coords(3);
  for (offset_t z = 0; z < extra.nnz(); ++z) {
    for (index_t m = 0; m < 3; ++m) coords[m] = extra.coord(m, z);
    merged.push_back(coords, extra.value(z));
  }
  merged.coalesce();
  const double merged_norm_sq = merged.norm() * merged.norm();
  EXPECT_LE(std::abs(merged_norm_sq - after.scalar),
            static_cast<double>(after.output(3, 1)) +
                1e-4 * merged_norm_sq);
}

TEST(SketchPolicy, PolicyLatencyCountersAdvance) {
  ServeOptions opts;
  opts.workers = 2;
  TensorOpService service(opts);
  service.register_tensor(
      "t", share_tensor(generate_uniform({100, 80, 60}, 5000, 5)));
  EXPECT_EQ(service.policy_resolution_count(), 0u);

  auto factors = std::make_shared<const std::vector<DenseMatrix>>([] {
    std::vector<DenseMatrix> f;
    f.emplace_back(100, 4);
    f.emplace_back(80, 4);
    f.emplace_back(60, 4);
    for (auto& m : f) m.randomize(7);
    return f;
  }());
  service.submit(ServeRequest("t", 0, factors)).get();
  service.wait_idle();
  EXPECT_GE(service.policy_resolution_count(), 1u);
  EXPECT_GE(service.policy_seconds(), 0.0);
}

}  // namespace
}  // namespace bcsf
