// Tests for the two baseline formats: F-COO (flag consistency with the
// CSF fiber/slice structure) and HiCOO (block decomposition and
// coordinate reconstruction).
#include <gtest/gtest.h>

#include "formats/csf.hpp"
#include "formats/fcoo.hpp"
#include "formats/hicoo.hpp"
#include "tensor/generator.hpp"
#include "util/error.hpp"

namespace bcsf {
namespace {

SparseTensor test_tensor() {
  PowerLawConfig cfg;
  cfg.dims = {50, 60, 300};
  cfg.target_nnz = 3000;
  cfg.fiber_alpha = 0.8;
  cfg.max_fiber_len = 120;
  cfg.seed = 51;
  return generate_power_law(cfg);
}

TEST(Fcoo, FlagCountsMatchCsfStructure) {
  const SparseTensor x = test_tensor();
  for (index_t mode = 0; mode < 3; ++mode) {
    const FcooTensor f = build_fcoo(x, mode);
    const CsfTensor csf = build_csf(x, mode);
    f.validate();
    offset_t slice_flags = 0;
    offset_t fiber_flags = 0;
    for (offset_t z = 0; z < f.nnz(); ++z) {
      slice_flags += f.starts_slice(z) ? 1 : 0;
      fiber_flags += f.starts_fiber(z) ? 1 : 0;
    }
    EXPECT_EQ(slice_flags, csf.num_slices()) << "mode " << mode;
    EXPECT_EQ(fiber_flags, csf.num_fibers()) << "mode " << mode;
    EXPECT_EQ(f.num_slices(), csf.num_slices());
  }
}

TEST(Fcoo, SliceIndexListMatchesCsf) {
  const SparseTensor x = test_tensor();
  const FcooTensor f = build_fcoo(x, 1);
  const CsfTensor csf = build_csf(x, 1);
  ASSERT_EQ(f.num_slices(), csf.num_slices());
  for (offset_t s = 0; s < f.num_slices(); ++s) {
    EXPECT_EQ(f.slice_index(s), csf.node_index(0, s));
  }
}

TEST(Fcoo, PartitionOrdinalsRecoverRows) {
  FcooOptions opts;
  opts.partition_size = 64;
  const SparseTensor x = test_tensor();
  const FcooTensor f = build_fcoo(x, 0, opts);
  // Replaying flags from each partition start must land on the right
  // slice: the segmented-scan bookkeeping a GPU thread performs.
  offset_t ordinal = 0;
  for (offset_t z = 0; z < f.nnz(); ++z) {
    if (f.starts_slice(z) && z > 0) ++ordinal;
    if (z % opts.partition_size == 0) {
      EXPECT_EQ(f.partition_slice_ordinal(z / opts.partition_size), ordinal);
    }
  }
}

TEST(Fcoo, StorageSmallerThanCooFor3Order) {
  // F-COO drops one index array in exchange for two bit arrays: for a
  // 3-order tensor that is ~2M words vs COO's 3M.
  const SparseTensor x = test_tensor();
  const FcooTensor f = build_fcoo(x, 0);
  EXPECT_LT(f.index_storage_bytes(), x.index_storage_bytes());
}

TEST(Fcoo, RejectsBadPartitionSize) {
  FcooOptions opts;
  opts.partition_size = 0;
  EXPECT_THROW(build_fcoo(test_tensor(), 0, opts), Error);
}

TEST(Fcoo, EmptyTensor) {
  const FcooTensor f = build_fcoo(SparseTensor({2, 2, 2}), 0);
  EXPECT_EQ(f.nnz(), 0u);
  EXPECT_NO_THROW(f.validate());
}

TEST(Hicoo, BlocksPartitionAndReconstruct) {
  const SparseTensor x = test_tensor();
  const HicooTensor h = build_hicoo(x);
  h.validate();
  EXPECT_EQ(h.nnz(), x.nnz());
  EXPECT_GT(h.num_blocks(), 0u);
  // Every nonzero's reconstructed coordinate stays within its block's
  // 2^b-aligned box.
  const index_t bits = h.block_bits();
  for (offset_t b = 0; b < h.num_blocks(); ++b) {
    for (offset_t z = h.block_begin(b); z < h.block_end(b); ++z) {
      for (index_t m = 0; m < h.order(); ++m) {
        EXPECT_EQ(h.coord(m, b, z) >> bits, h.block_coord(m, b));
      }
    }
  }
}

TEST(Hicoo, SmallerBlocksMeanMoreBlocks) {
  const SparseTensor x = test_tensor();
  HicooOptions small;
  small.block_bits = 2;
  HicooOptions large;
  large.block_bits = 7;
  EXPECT_GT(build_hicoo(x, small).num_blocks(),
            build_hicoo(x, large).num_blocks());
}

TEST(Hicoo, RejectsBadBlockBits) {
  HicooOptions opts;
  opts.block_bits = 0;
  EXPECT_THROW(build_hicoo(test_tensor(), opts), Error);
  opts.block_bits = 9;  // element offsets are one byte
  EXPECT_THROW(build_hicoo(test_tensor(), opts), Error);
}

TEST(Hicoo, CompressedStorageBeatsCooWhenBlocksAreDense) {
  // A tensor confined to one 128-box: 1 block, order bytes per nnz.
  SparseTensor t({128, 128, 128});
  Rng rng(5);
  std::vector<index_t> c(3);
  for (int i = 0; i < 500; ++i) {
    c = {rng.uniform_index(128), rng.uniform_index(128),
         rng.uniform_index(128)};
    t.push_back(c, 1.0F);
  }
  t.coalesce();
  const HicooTensor h = build_hicoo(t);
  EXPECT_EQ(h.num_blocks(), 1u);
  EXPECT_LT(h.index_storage_bytes(), t.index_storage_bytes());
}

TEST(Hicoo, Order4) {
  PowerLawConfig cfg;
  cfg.dims = {40, 30, 20, 50};
  cfg.target_nnz = 1500;
  cfg.seed = 52;
  const SparseTensor x = generate_power_law(cfg);
  const HicooTensor h = build_hicoo(x);
  EXPECT_NO_THROW(h.validate());
  EXPECT_EQ(h.nnz(), x.nnz());
}

}  // namespace
}  // namespace bcsf
