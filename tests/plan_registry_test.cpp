// FormatRegistry / MttkrpPlan / PlanCache contract tests, plus the
// `auto` selection policy: §V slice binning and the Fig-10 break-even
// gate must pick HB-CSF on a large high-stddev mixed tensor and COO on a
// tensor too small to amortize any build.
#include <gtest/gtest.h>

#include "bcsf/bcsf.hpp"

namespace bcsf {
namespace {

SparseTensor small_tensor() { return generate_uniform({20, 20, 20}, 500, 9); }

TEST(FormatRegistry, CatalogueHasTheFormatZoo) {
  const FormatRegistry& r = FormatRegistry::instance();
  for (const char* name : {"gpu-csf", "bcsf", "csl", "hbcsf", "coo", "fcoo",
                           "cpu-coo", "cpu-csf", "cpu-csf-tiled", "cpu-csl",
                           "cpu-hicoo", "reference", "auto"}) {
    EXPECT_TRUE(r.contains(name)) << name;
  }
  EXPECT_EQ(r.names().size(), r.names(PlanKind::kGpu).size() +
                                  r.names(PlanKind::kCpu).size() +
                                  r.names(PlanKind::kMeta).size());
  EXPECT_EQ(r.at("hbcsf").display_name, "HB-CSF");
  EXPECT_FALSE(r.at("coo").mode_oriented);
  EXPECT_TRUE(r.at("bcsf").mode_oriented);
}

TEST(FormatRegistry, UnknownFormatThrowsWithCatalogue) {
  const SparseTensor x = small_tensor();
  try {
    FormatRegistry::instance().create("no-such-format", x, 0);
    FAIL() << "expected bcsf::Error";
  } catch (const Error& e) {
    // The message must list the catalogue so users can self-serve.
    EXPECT_NE(std::string(e.what()).find("hbcsf"), std::string::npos);
  }
}

TEST(FormatRegistry, RejectsDuplicateAndOutOfRangeMode) {
  FormatRegistry& r = FormatRegistry::instance();
  FormatRegistry::Entry dup = r.at("coo");
  EXPECT_THROW(r.add(dup), Error);
  EXPECT_THROW(r.create("coo", small_tensor(), 3), Error);
}

TEST(FormatRegistry, GpuCatalogueCarriesThePaperNames) {
  const std::map<std::string, std::string> display = {
      {"gpu-csf", "GPU-CSF"}, {"bcsf", "B-CSF"}, {"hbcsf", "HB-CSF"},
      {"coo", "ParTI-COO"},   {"fcoo", "F-COO"}, {"csl", "CSL"}};
  for (const auto& [name, paper_name] : display) {
    const auto& entry = FormatRegistry::instance().at(name);
    EXPECT_EQ(entry.display_name, paper_name);
    EXPECT_EQ(entry.kind, PlanKind::kGpu);
  }
}

TEST(FormatRegistry, EveryFormatDeclaresFullOpSupport) {
  const FormatRegistry& r = FormatRegistry::instance();
  for (const std::string& name : r.names()) {
    for (OpKind op : kAllOps) {
      EXPECT_TRUE(r.supports(name, op)) << name << " " << op_name(op);
    }
    EXPECT_EQ(r.at(name).ops, kAllOpsMask) << name;
  }
  for (OpKind op : kAllOps) {
    EXPECT_EQ(r.names(op), r.names()) << op_name(op);
  }
  EXPECT_FALSE(r.supports("no-such-format", OpKind::kMttkrp));
}

TEST(OpProtocol, NamesRoundTrip) {
  for (OpKind op : kAllOps) {
    EXPECT_EQ(op_from_name(op_name(op)), op);
  }
  EXPECT_THROW(op_from_name("spmv"), Error);
}

TEST(PlanCache, BuildsOncePerFormatModePair) {
  ConcurrentPlanCache cache(share_tensor(small_tensor()));
  const SharedPlan a = cache.get("hbcsf", 0);
  const SharedPlan b = cache.get("hbcsf", 0);
  EXPECT_EQ(a.get(), b.get());  // cached, not rebuilt
  EXPECT_EQ(cache.size(), 1u);
  cache.get("hbcsf", 1);
  cache.get("coo", 0);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_GE(cache.total_build_seconds(), 0.0);
  EXPECT_EQ(cache.try_get("hbcsf", 1), cache.get("hbcsf", 1));
  EXPECT_EQ(cache.try_get("bcsf", 2), nullptr);  // never requested
}

TEST(CpdAlsFormats, RunsWithAnyRegisteredFormat) {
  const SparseTensor x = generate_low_rank({12, 10, 8}, 4, 12 * 10 * 8, 0.0F, 81);
  CpdOptions ref_opts;
  ref_opts.rank = 3;
  ref_opts.max_iterations = 5;
  ref_opts.fit_tolerance = 0.0;
  ref_opts.format = "reference";
  const double ref_fit = cpd_als(x, ref_opts).final_fit;

  for (const std::string& name : FormatRegistry::instance().names()) {
    SCOPED_TRACE(name);
    CpdOptions opts = ref_opts;
    opts.format = name;
    opts.device = DeviceModel::tiny();
    const CpdResult r = cpd_als(x, opts);
    EXPECT_NEAR(r.final_fit, ref_fit, 0.02);
    ASSERT_EQ(r.mode_formats.size(), 3u);
    if (name != "auto") {
      for (const std::string& f : r.mode_formats) EXPECT_EQ(f, name);
    } else {
      // "auto" must report what it resolved to, not itself.
      for (const std::string& f : r.mode_formats) {
        EXPECT_NE(f, "auto");
        EXPECT_TRUE(FormatRegistry::instance().contains(f)) << f;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// The auto policy (§V binning + Fig-10 break-even)
// ---------------------------------------------------------------------------

PowerLawConfig high_stddev_config() {
  // Heavy-tailed slices AND a singleton-slice population: the §V mixed
  // case the hybrid format exists for.
  PowerLawConfig c;
  c.dims = {150, 200, 250};
  c.target_nnz = 40000;
  c.slice_alpha = 0.3;
  c.max_slice_frac = 0.3;
  c.fiber_alpha = 0.5;
  c.max_fiber_len = 200;
  c.singleton_slice_frac = 0.15;
  c.seed = 77;
  return c;
}

TEST(AutoPolicy, PicksHbcsfOnHighStddevMixedTensor) {
  const SparseTensor x = generate_power_law(high_stddev_config());
  const ModeStats s = compute_mode_stats(x, 0);
  // Sanity: this really is a high-variance mixed tensor.
  ASSERT_GT(s.nnz_per_slice.stddev, s.nnz_per_slice.mean);
  ASSERT_GT(s.singleton_slice_fraction, 0.05);

  const AutoDecision d = auto_select_format(x, 0);
  EXPECT_EQ(d.format, "hbcsf") << d.to_string();
  EXPECT_LE(d.breakeven_calls, AutoPolicyOptions{}.expected_mttkrp_calls);
  EXPECT_FALSE(d.rationale.empty());
}

TEST(AutoPolicy, PicksCooOnTinyTensor) {
  const SparseTensor x = small_tensor();  // 500 nnz: build never amortizes
  const AutoDecision d = auto_select_format(x, 0);
  EXPECT_EQ(d.format, "coo") << d.to_string();
  EXPECT_GT(d.breakeven_calls, AutoPolicyOptions{}.expected_mttkrp_calls);
}

TEST(AutoPolicy, BreakEvenGateRespectsExpectedCalls) {
  // The same mid-size tensor flips from structured to COO as the caller's
  // expected call count shrinks below the break-even point (Fig. 10).
  const SparseTensor x = generate_power_law(high_stddev_config());
  AutoPolicyOptions many;
  many.expected_mttkrp_calls = 1000.0;
  AutoPolicyOptions once;
  once.expected_mttkrp_calls = 0.5;
  EXPECT_NE(auto_select_format(x, 0, many).format, "coo");
  EXPECT_EQ(auto_select_format(x, 0, once).format, "coo");
}

TEST(AutoPolicy, DominantPopulationsPickPureFormats) {
  // All-singleton fibers, no singleton slices -> CSL dominant.
  PowerLawConfig csl_cfg;
  csl_cfg.dims = {100, 150, 200};
  csl_cfg.target_nnz = 30000;
  csl_cfg.fixed_fiber_len = 1;
  csl_cfg.seed = 31;
  const SparseTensor csl_like = generate_power_law(csl_cfg);
  const ModeStats s = compute_mode_stats(csl_like, 0);
  if (s.csl_slice_fraction >= 0.95) {
    EXPECT_EQ(auto_select_format(csl_like, 0).format, "csl");
  }

  // Uniformly CSF material -> bcsf (uber-like: no COO/CSL slices).
  PowerLawConfig csf_cfg;
  csf_cfg.dims = {60, 200, 300};
  csf_cfg.target_nnz = 50000;
  csf_cfg.slice_alpha = 1.2;
  csf_cfg.fiber_alpha = 1.0;
  csf_cfg.max_fiber_len = 64;
  csf_cfg.seed = 32;
  const SparseTensor csf_like = generate_power_law(csf_cfg);
  const ModeStats s2 = compute_mode_stats(csf_like, 0);
  if (s2.singleton_slice_fraction + s2.csl_slice_fraction <= 0.05) {
    EXPECT_EQ(auto_select_format(csf_like, 0).format, "bcsf");
  }
}

TEST(AutoPolicy, AutoPlanDelegatesAndReportsDecision) {
  const SparseTensor x = generate_power_law(high_stddev_config());
  const auto factors = make_random_factors(x.dims(), 4, 5);
  PlanOptions opts;
  opts.device = DeviceModel::tiny();
  const PlanPtr plan = FormatRegistry::instance().create("auto", x, 0, opts);
  EXPECT_EQ(plan->format(), "auto");
  EXPECT_NE(plan->detail().find("hbcsf"), std::string::npos);
  const DenseMatrix ref = mttkrp_reference(x, 0, factors);
  double scale = 1.0;
  for (value_t v : ref.data()) {
    scale = std::max(scale, static_cast<double>(std::abs(v)));
  }
  EXPECT_LT(ref.max_abs_diff(plan->run(factors).output), 1e-4 * scale);
}

}  // namespace
}  // namespace bcsf
