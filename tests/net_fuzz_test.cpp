// Frame/payload fuzzing for the tensord wire protocol (net/frame.hpp +
// net/wire.hpp, DESIGN.md §9).  The contract under test: feeding the
// reader ANY corruption of a valid request/reply stream -- truncation at
// an arbitrary byte, random bit flips, frame splicing/reordering, forged
// length and type fields -- must end in a ProtocolError or a clean EOF.
// Never a crash, never an over-read, never an unbounded allocation.
//
// The corpus is deterministic (fixed mt19937 seeds), so a failure
// reproduces from the seed printed with it.  The suite earns its keep in
// the asan-ubsan CI job, where an over-read that happens to land in
// mapped memory still aborts the run instead of passing silently.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "net/wire.hpp"
#include "serve_test_util.hpp"
#include "trace/trace.hpp"

namespace bcsf::net {
namespace {

enum class Outcome { kClean, kProtocolError, kOther };

/// Runs the full server-side parse pipeline over a byte stream: frame
/// extraction via read_frame (through a real fd, exactly like a
/// connection or a trace file), then the per-type payload decoder.
Outcome parse_stream(const std::vector<std::uint8_t>& bytes,
                     std::string* what = nullptr) {
  std::FILE* f = std::tmpfile();
  EXPECT_NE(f, nullptr);
  if (!bytes.empty()) {
    EXPECT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  }
  std::rewind(f);
  const int fd = ::fileno(f);
  Outcome outcome = Outcome::kClean;
  try {
    Frame frame;
    while (read_frame(fd, frame)) {
      switch (frame.type) {
        case MsgType::kRegister:
          decode_register(frame.payload);
          break;
        case MsgType::kUpdate:
          decode_update(frame.payload);
          break;
        case MsgType::kQuery:
          decode_query(frame.payload);
          break;
        case MsgType::kShutdown:
        case MsgType::kPing:
          decode_id(frame.payload);
          break;
        case MsgType::kAck:
          decode_ack(frame.payload);
          break;
        case MsgType::kResult:
          decode_result(frame.payload);
          break;
        case MsgType::kError:
        case MsgType::kOverloaded:
          decode_error(frame.payload);
          break;
        case MsgType::kTraceHeader:
          trace::check_trace_header(frame);
          break;
        default:
          // Unknown-but-well-framed tag: the server answers kError and
          // keeps the connection; not a parse fault.
          break;
      }
    }
  } catch (const ProtocolError& e) {
    if (what != nullptr) *what = e.what();
    outcome = Outcome::kProtocolError;
  } catch (const std::exception& e) {
    if (what != nullptr) *what = e.what();
    outcome = Outcome::kOther;
  }
  std::fclose(f);
  return outcome;
}

/// One frame's exact on-wire bytes.
std::vector<std::uint8_t> frame_bytes(MsgType type,
                                      const std::vector<std::uint8_t>& p) {
  std::vector<std::uint8_t> out;
  append_frame(out, type, p);
  return out;
}

/// A representative valid dialogue covering every frame type, as a list
/// of individual frames (for splicing) -- concatenate for the stream.
std::vector<std::vector<std::uint8_t>> valid_frames() {
  const std::vector<index_t> dims{12, 9, 7};
  const SparseTensor tensor = serve_test::exact_tensor(dims, 150, 11);
  const auto factors = serve_test::exact_factors(dims, 4, 12);
  std::mt19937 rng(13);
  const SparseTensor batch = serve_test::exact_batch(dims, 40, rng);

  std::vector<std::vector<std::uint8_t>> frames;
  frames.push_back(
      frame_bytes(MsgType::kTraceHeader, trace::encode_trace_header()));

  RegisterMsg reg;
  reg.id = 1;
  reg.name = "fuzz";
  reg.tensor = tensor;
  frames.push_back(frame_bytes(MsgType::kRegister, encode_register(reg)));

  frames.push_back(frame_bytes(MsgType::kAck, encode_ack(make_ack(1, 0))));

  UpdateMsg upd;
  upd.id = 2;
  upd.name = "fuzz";
  upd.updates = batch;
  frames.push_back(frame_bytes(MsgType::kUpdate, encode_update(upd)));

  QueryMsg query;
  query.id = 3;
  query.tensor = "fuzz";
  query.mode = 1;
  query.op = OpKind::kMttkrp;
  query.factors = *factors;
  frames.push_back(frame_bytes(MsgType::kQuery, encode_query(query)));

  ResultMsg res;
  res.id = 3;
  res.op = OpKind::kMttkrp;
  res.output = DenseMatrix(dims[1], 4, 0.5F);
  res.sequence = 1;
  res.snapshot_version = 1;
  res.served_format = "coo";
  frames.push_back(frame_bytes(MsgType::kResult, encode_result(res)));

  AckMsg stats;
  stats.id = 4;
  stats.version = 7;
  stats.budget_bytes = 1 << 20;
  stats.resident_bytes = 123456;
  stats.evictions = 3;
  stats.tenants.push_back({"fuzz", 1000, 200, 42, 30, 1});
  frames.push_back(frame_bytes(MsgType::kAck, encode_ack(stats)));

  frames.push_back(
      frame_bytes(MsgType::kError, encode_error({5, "synthetic failure"})));
  frames.push_back(
      frame_bytes(MsgType::kOverloaded, encode_error({6, "busy"})));
  frames.push_back(frame_bytes(MsgType::kPing, encode_id(7)));
  frames.push_back(frame_bytes(MsgType::kShutdown, encode_id(8)));
  return frames;
}

std::vector<std::uint8_t> concat(
    const std::vector<std::vector<std::uint8_t>>& frames) {
  std::vector<std::uint8_t> out;
  for (const auto& f : frames) out.insert(out.end(), f.begin(), f.end());
  return out;
}

/// The fuzz oracle: parse and accept only clean EOF or ProtocolError.
void expect_safe(const std::vector<std::uint8_t>& bytes,
                 const std::string& context) {
  std::string what;
  const Outcome outcome = parse_stream(bytes, &what);
  EXPECT_NE(outcome, Outcome::kOther)
      << context << ": non-protocol exception escaped: " << what;
}

TEST(NetFuzz, ValidStreamParsesClean) {
  std::string what;
  EXPECT_EQ(parse_stream(concat(valid_frames()), &what), Outcome::kClean)
      << what;
}

TEST(NetFuzz, TruncationAtEveryPrefixIsSafe) {
  const std::vector<std::uint8_t> stream = concat(valid_frames());
  // Every prefix short enough to cut a header, plus a sampled set of
  // longer cuts (the stream is a few KB; checking all O(n) prefixes with
  // an O(n) parse each would dominate the suite's runtime).
  std::mt19937 rng(101);
  std::vector<std::size_t> cuts;
  for (std::size_t i = 0; i < std::min<std::size_t>(64, stream.size()); ++i) {
    cuts.push_back(i);
  }
  for (int i = 0; i < 256; ++i) {
    cuts.push_back(rng() % stream.size());
  }
  for (const std::size_t cut : cuts) {
    expect_safe({stream.begin(), stream.begin() + static_cast<long>(cut)},
                "truncate@" + std::to_string(cut));
  }
}

TEST(NetFuzz, BitFlipsAreSafe) {
  const std::vector<std::uint8_t> stream = concat(valid_frames());
  for (std::uint32_t seed = 0; seed < 300; ++seed) {
    std::mt19937 rng(2000 + seed);
    std::vector<std::uint8_t> mutated = stream;
    const int flips = 1 + static_cast<int>(rng() % 8);
    for (int i = 0; i < flips; ++i) {
      const std::size_t pos = rng() % mutated.size();
      mutated[pos] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
    }
    expect_safe(mutated, "bitflip seed=" + std::to_string(seed));
  }
}

TEST(NetFuzz, ByteCorruptionIsSafe) {
  const std::vector<std::uint8_t> stream = concat(valid_frames());
  for (std::uint32_t seed = 0; seed < 300; ++seed) {
    std::mt19937 rng(3000 + seed);
    std::vector<std::uint8_t> mutated = stream;
    const int edits = 1 + static_cast<int>(rng() % 4);
    for (int i = 0; i < edits; ++i) {
      mutated[rng() % mutated.size()] = static_cast<std::uint8_t>(rng());
    }
    expect_safe(mutated, "bytes seed=" + std::to_string(seed));
  }
}

TEST(NetFuzz, HeaderFieldForgeryIsSafe) {
  // Target the 5 header bytes specifically: forged lengths (including
  // kMaxFramePayload boundaries) and forged type tags on every frame.
  const std::vector<std::vector<std::uint8_t>> frames = valid_frames();
  std::mt19937 rng(41);
  for (std::size_t victim = 0; victim < frames.size(); ++victim) {
    for (const std::uint32_t forged_len :
         {0u, 1u, 4u, 0xFFFFu, kMaxFramePayload, kMaxFramePayload + 1,
          0xFFFFFFFFu, static_cast<std::uint32_t>(rng())}) {
      auto mutated = frames;
      mutated[victim][0] = static_cast<std::uint8_t>(forged_len);
      mutated[victim][1] = static_cast<std::uint8_t>(forged_len >> 8);
      mutated[victim][2] = static_cast<std::uint8_t>(forged_len >> 16);
      mutated[victim][3] = static_cast<std::uint8_t>(forged_len >> 24);
      expect_safe(concat(mutated), "len=" + std::to_string(forged_len) +
                                       " frame=" + std::to_string(victim));
    }
    for (int t = 0; t < 256; t += 7) {
      auto mutated = frames;
      mutated[victim][4] = static_cast<std::uint8_t>(t);
      expect_safe(concat(mutated), "type=" + std::to_string(t) + " frame=" +
                                       std::to_string(victim));
    }
  }
}

TEST(NetFuzz, FrameSplicingIsSafe) {
  // Reorder, duplicate, and mid-frame-splice whole frames: the framing
  // layer must never desynchronize silently -- each spliced stream ends
  // clean or with ProtocolError.
  const std::vector<std::vector<std::uint8_t>> frames = valid_frames();
  for (std::uint32_t seed = 0; seed < 200; ++seed) {
    std::mt19937 rng(5000 + seed);
    std::vector<std::uint8_t> stream;
    const int pieces = 1 + static_cast<int>(rng() % 8);
    for (int i = 0; i < pieces; ++i) {
      const auto& frame = frames[rng() % frames.size()];
      switch (rng() % 3) {
        case 0:  // whole frame
          stream.insert(stream.end(), frame.begin(), frame.end());
          break;
        case 1: {  // leading fragment (cuts header or payload)
          const std::size_t cut = rng() % frame.size();
          stream.insert(stream.end(), frame.begin(),
                        frame.begin() + static_cast<long>(cut));
          break;
        }
        default: {  // trailing fragment (desynchronizes the boundary)
          const std::size_t cut = rng() % frame.size();
          stream.insert(stream.end(),
                        frame.begin() + static_cast<long>(cut), frame.end());
          break;
        }
      }
    }
    expect_safe(stream, "splice seed=" + std::to_string(seed));
  }
}

}  // namespace
}  // namespace bcsf::net
