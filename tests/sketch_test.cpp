// Tests for the streaming structural sketches (DESIGN.md §12): exactness
// of the slice-occupancy fields, accuracy bounds of the fiber estimators
// on uniform and power-law (Zipf-tailed) tensors, merge associativity
// (shard-merged == whole-tensor, bitwise on the integer state),
// incremental == from-scratch across apply/compact cycles, the sketched
// partitioner's cut equivalence, and the approximate norm's error bound.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/auto_policy.hpp"
#include "tensor/dynamic_tensor.hpp"
#include "tensor/generator.hpp"
#include "tensor/partitioner.hpp"
#include "tensor/sketch.hpp"
#include "tensor/sparse_tensor.hpp"
#include "tensor/tensor_stats.hpp"

namespace bcsf {
namespace {

/// The Fig. 4 tensor (same worked example as tensor_stats_test): S = 3,
/// F = 5, M = 8, one COO slice, one CSL slice, one CSF slice.
SparseTensor fig4_tensor() {
  SparseTensor t({3, 5, 6});
  const index_t coords[][3] = {
      {0, 1, 2},
      {1, 0, 0}, {1, 2, 3}, {1, 4, 1},
      {2, 1, 0}, {2, 1, 2}, {2, 1, 4}, {2, 1, 5},
  };
  value_t v = 1.0F;
  for (const auto& c : coords) t.push_back({c, 3}, v++);
  return t;
}

SparseTensor zipf_tensor(offset_t nnz, std::uint64_t seed) {
  PowerLawConfig config;
  config.dims = {600, 400, 300};
  config.target_nnz = nnz;
  config.slice_alpha = 1.1;  // heavy Zipf-like slice tail
  config.fiber_alpha = 1.4;
  config.seed = seed;
  return generate_power_law(config);
}

/// Structural (integer) state equality: the fields the merge contract
/// promises are bitwise-associative.
void expect_same_structure(const ModeSketch& a, const ModeSketch& b) {
  EXPECT_EQ(a.nnz(), b.nnz());
  EXPECT_EQ(a.num_slices(), b.num_slices());
  EXPECT_EQ(a.singleton_slices(), b.singleton_slices());
  EXPECT_EQ(a.max_slice_nnz(), b.max_slice_nnz());
  EXPECT_EQ(a.sum_sq_slice_nnz(), b.sum_sq_slice_nnz());
  EXPECT_EQ(a.fibers_exact(), b.fibers_exact());
  EXPECT_EQ(a.estimate_fibers(), b.estimate_fibers());
  // AMS counters are integers, so the derived double is bit-identical.
  EXPECT_DOUBLE_EQ(a.estimate_fiber_sq_sum(), b.estimate_fiber_sq_sum());
}

void expect_same_structure(const TensorSketch& a, const TensorSketch& b) {
  ASSERT_EQ(a.order(), b.order());
  EXPECT_EQ(a.nnz(), b.nnz());
  for (index_t m = 0; m < a.order(); ++m) {
    expect_same_structure(a.mode(m), b.mode(m));
  }
}

TEST(Sketch, ExactFieldsMatchExactStatsOnFig4) {
  const SparseTensor t = fig4_tensor();
  const TensorSketch sketch = TensorSketch::build(t);
  for (index_t m = 0; m < 3; ++m) {
    const ModeStats exact = compute_mode_stats(t, m);
    const ModeStats approx = sketch.approx_mode_stats(m);
    EXPECT_EQ(approx.nnz, exact.nnz) << "mode " << m;
    EXPECT_EQ(approx.num_slices, exact.num_slices) << "mode " << m;
    EXPECT_DOUBLE_EQ(approx.singleton_slice_fraction,
                     exact.singleton_slice_fraction)
        << "mode " << m;
    EXPECT_NEAR(approx.nnz_per_slice.mean, exact.nnz_per_slice.mean, 1e-12);
    EXPECT_NEAR(approx.nnz_per_slice.stddev, exact.nnz_per_slice.stddev,
                1e-9);
    EXPECT_DOUBLE_EQ(approx.nnz_per_slice.max, exact.nnz_per_slice.max);
  }
  // One-shot builds carry the exact fiber count...
  EXPECT_TRUE(sketch.mode(0).fibers_exact());
  EXPECT_EQ(sketch.approx_mode_stats(0).num_fibers, 5u);
  // ...and even a streamed (add-by-add) sketch recovers F exactly here:
  // small-cardinality HLL falls back to linear counting.
  TensorSketch streamed(t.dims());
  std::vector<index_t> coords(3);
  for (offset_t z = 0; z < t.nnz(); ++z) {
    for (index_t m = 0; m < 3; ++m) coords[m] = t.coord(m, z);
    streamed.add(coords, t.value(z));
  }
  EXPECT_FALSE(streamed.mode(0).fibers_exact());
  EXPECT_EQ(streamed.approx_mode_stats(0).num_fibers, 5u);
}

/// Streams every entry through TensorSketch::add -- the incremental path,
/// which never gets the one-shot exact fiber count and so exercises the
/// HLL estimator the bounds tests below are about.
TensorSketch streamed_sketch(const SparseTensor& t) {
  TensorSketch sketch(t.dims());
  std::vector<index_t> coords(t.order());
  for (offset_t z = 0; z < t.nnz(); ++z) {
    for (index_t m = 0; m < t.order(); ++m) coords[m] = t.coord(m, z);
    sketch.add(coords, t.value(z));
  }
  return sketch;
}

TEST(Sketch, FiberEstimateWithinBoundsUniform) {
  // A uniform tensor's fiber count is near-distinct: with 40k nonzeros in
  // 200^3 cells almost every (i, j) pair is unique.  HLL at p = 12 has
  // ~1.6% standard error; assert 5 sigma.
  const SparseTensor t = generate_uniform({200, 200, 200}, 40000, 7);
  const TensorSketch streamed = streamed_sketch(t);
  const TensorSketch built = TensorSketch::build(t);
  for (index_t m = 0; m < 3; ++m) {
    const ModeStats exact = compute_mode_stats(t, m);
    const double est =
        static_cast<double>(streamed.approx_mode_stats(m).num_fibers);
    const double truth = static_cast<double>(exact.num_fibers);
    EXPECT_NEAR(est, truth, 0.08 * truth) << "mode " << m;
    // The one-shot build is exact, not merely within bounds.
    EXPECT_EQ(built.approx_mode_stats(m).num_fibers, exact.num_fibers)
        << "mode " << m;
  }
}

TEST(Sketch, FiberEstimateWithinBoundsZipf) {
  const SparseTensor t = zipf_tensor(60000, 11);
  const TensorSketch streamed = streamed_sketch(t);
  const TensorSketch built = TensorSketch::build(t);
  for (index_t m = 0; m < 3; ++m) {
    const ModeStats exact = compute_mode_stats(t, m);
    const double est =
        static_cast<double>(streamed.approx_mode_stats(m).num_fibers);
    const double truth = static_cast<double>(exact.num_fibers);
    EXPECT_NEAR(est, truth, 0.08 * truth) << "mode " << m;
    EXPECT_EQ(built.approx_mode_stats(m).num_fibers, exact.num_fibers)
        << "mode " << m;
  }
}

TEST(Sketch, CslFractionIsALowerBoundAndExactWhenFibersAreSingletons) {
  // All-singleton fibers: nnz == F, so the bound (S - S1 - (nnz - F))/S
  // collapses to the exact CSL fraction (every non-singleton slice is a
  // CSL slice).  The HLL estimate of F is clamped to <= nnz, so the
  // bound stays a lower bound even with estimator error.
  PowerLawConfig config;
  config.dims = {500, 300, 200};
  config.target_nnz = 30000;
  config.fixed_fiber_len = 1;
  config.seed = 3;
  const SparseTensor t = generate_power_law(config);
  const ModeStats exact = compute_mode_stats(t, 0);
  const ModeStats approx = TensorSketch::build(t).approx_mode_stats(0);
  EXPECT_LE(approx.csl_slice_fraction, exact.csl_slice_fraction + 1e-12);
  // A one-shot build has the exact F, so the bound collapses exactly.
  EXPECT_DOUBLE_EQ(approx.csl_slice_fraction, exact.csl_slice_fraction);
  // The streamed sketch only has the HLL F (clamped to <= nnz), so its
  // fraction stays a lower bound -- never an overestimate that could
  // misroute a CSF tensor to CSL.
  const ModeStats hll = streamed_sketch(t).approx_mode_stats(0);
  EXPECT_LE(hll.csl_slice_fraction, exact.csl_slice_fraction + 1e-12);
}

TEST(Sketch, MergeMatchesWholeTensorBitwise) {
  const SparseTensor t = zipf_tensor(20000, 19);
  const TensorSketch whole = TensorSketch::build(t);
  const TensorSketch streamed = streamed_sketch(t);

  // Split the nonzeros three ways round-robin (deliberately NOT by slice
  // range: merge must not care how the shards partition the stream).
  std::vector<SparseTensor> parts(3, SparseTensor(t.dims()));
  std::vector<index_t> coords(t.order());
  for (offset_t z = 0; z < t.nnz(); ++z) {
    for (index_t m = 0; m < t.order(); ++m) coords[m] = t.coord(m, z);
    parts[z % 3].push_back(coords, t.value(z));
  }
  std::vector<TensorSketch> sketches;
  sketches.reserve(parts.size());
  for (const SparseTensor& p : parts) {
    sketches.push_back(TensorSketch::build(p));
  }

  // Two different association orders are bitwise-identical to each other.
  // Overlapping slice ranges lapse the exact-fiber shortcut (in every
  // association), so against the whole-tensor sketch the merged state
  // matches on everything EXCEPT that shortcut: compare after streaming,
  // which holds only HLL state on both sides.
  TensorSketch left(t.dims());
  left.merge(sketches[0]);
  left.merge(sketches[1]);
  left.merge(sketches[2]);
  TensorSketch right(t.dims());
  right.merge(sketches[2]);
  right.merge(sketches[0]);
  right.merge(sketches[1]);
  expect_same_structure(left, right);
  EXPECT_FALSE(left.mode(0).fibers_exact());
  expect_same_structure(left, streamed);
  // The merged HLL estimate still lands within bounds of the whole
  // tensor's exact count.
  for (index_t m = 0; m < t.order(); ++m) {
    const double truth =
        static_cast<double>(whole.mode(m).estimate_fibers());
    EXPECT_NEAR(static_cast<double>(left.mode(m).estimate_fibers()), truth,
                0.08 * truth)
        << "mode " << m;
    EXPECT_EQ(left.mode(m).nnz(), whole.mode(m).nnz());
    EXPECT_EQ(left.mode(m).num_slices(), whole.mode(m).num_slices());
    EXPECT_EQ(left.mode(m).sum_sq_slice_nnz(),
              whole.mode(m).sum_sq_slice_nnz());
  }
}

TEST(Sketch, ExactFibersSurviveAscendingSliceDisjointMerges) {
  // The shard path: contiguous slice ranges on the partition mode, merged
  // in shard order.  The partition-mode sketch keeps the exact count of
  // its one-shot shard builds; the other modes (whose slice ranges
  // interleave across shards) lapse to HLL.
  const SparseTensor t = zipf_tensor(15000, 47);
  const TensorSketch whole = TensorSketch::build(t);
  const TensorPartition partition = partition_tensor(t, 0, 4);

  TensorSketch merged(t.dims());
  for (const TensorShard& shard : partition.shards) {
    merged.merge(TensorSketch::build(*shard.tensor));
  }
  EXPECT_TRUE(merged.mode(0).fibers_exact());
  EXPECT_EQ(merged.mode(0).estimate_fibers(),
            whole.mode(0).estimate_fibers());

  // Merging out of order must lapse (the ascending rule), never produce
  // a wrong "exact" count.
  TensorSketch reversed(t.dims());
  for (std::size_t s = partition.size(); s > 0; --s) {
    reversed.merge(TensorSketch::build(*partition.shards[s - 1].tensor));
  }
  EXPECT_FALSE(reversed.mode(0).fibers_exact());
}

TEST(Sketch, IncrementalMatchesFromScratchAcrossApplyAndCompact) {
  SparseTensor base = generate_uniform({120, 90, 70}, 8000, 23);
  DynamicSparseTensor dyn(share_tensor(std::move(base)));

  std::uint64_t version = 0;
  for (int round = 0; round < 4; ++round) {
    version = dyn.apply(
        generate_uniform({120, 90, 70}, 700, 100 + round));
    // From-scratch over the STORED entries: the base plus each frozen
    // chunk (delta duplicates intentionally count per stored entry).
    const TensorSnapshot snap = dyn.snapshot();
    TensorSketch scratch = TensorSketch::build(*snap.base);
    for (const TensorPtr& chunk : snap.deltas) {
      scratch.add_tensor(*chunk);
    }
    expect_same_structure(dyn.sketch(), scratch);
  }

  // Compact: the 2-arg replace_base rebuilds the base sketch inline; the
  // merged tensor is coalesced, so stored == logical afterwards.
  const TensorSnapshot snap = dyn.snapshot();
  TensorPtr merged = share_tensor(snap.merged(/*coalesce=*/true));
  dyn.replace_base(merged, version);
  expect_same_structure(dyn.sketch(), TensorSketch::build(*merged));

  // And the cycle continues cleanly after the swap.
  dyn.apply(generate_uniform({120, 90, 70}, 500, 777));
  const TensorSnapshot after = dyn.snapshot();
  TensorSketch scratch = TensorSketch::build(*after.base);
  for (const TensorPtr& chunk : after.deltas) scratch.add_tensor(*chunk);
  expect_same_structure(dyn.sketch(), scratch);
}

TEST(Sketch, NormTracksStoredEntriesWithBoundedCoalescedError) {
  SparseTensor base({64, 64, 64});
  // Power-of-two grid values: every sum below is exact in double, so the
  // identities hold to EQ, not NEAR (the repo's standard FP trick).
  const std::vector<std::vector<index_t>> base_coords{
      {1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  const std::vector<value_t> base_values{0.5F, 1.0F, 2.0F};
  for (std::size_t z = 0; z < base_coords.size(); ++z) {
    base.push_back(base_coords[z], base_values[z]);
  }
  DynamicSparseTensor dyn(share_tensor(std::move(base)));
  EXPECT_DOUBLE_EQ(dyn.sketch_scalars().norm_sq(), 0.25 + 1.0 + 4.0);
  EXPECT_DOUBLE_EQ(dyn.sketch_scalars().norm_sq_error_bound(), 0.0);

  // An update overlapping an existing coordinate: stored-entry norm now
  // differs from the coalesced norm by the cross term, which the bound
  // 2*sqrt(B*D) must cover.
  SparseTensor update({64, 64, 64});
  const std::vector<index_t> overlap{1, 2, 3};  // coalesces to 1.0 here
  const std::vector<index_t> fresh{9, 9, 9};
  update.push_back(overlap, 0.5F);
  update.push_back(fresh, 1.0F);
  const std::uint64_t version = dyn.apply(std::move(update));

  const SketchScalars scalars = dyn.sketch_scalars();
  const double stored = scalars.norm_sq();
  EXPECT_DOUBLE_EQ(stored, 5.25 + 0.25 + 1.0);
  const double coalesced = 1.0 + 1.0 + 4.0 + 1.0;  // (1,2,3) is now 1.0
  EXPECT_LE(std::abs(coalesced - stored), scalars.norm_sq_error_bound());

  // Compaction coalesces; the estimate becomes exact and the bound 0.
  const TensorSnapshot snap = dyn.snapshot();
  dyn.replace_base(share_tensor(snap.merged(/*coalesce=*/true)), version);
  EXPECT_DOUBLE_EQ(dyn.sketch_scalars().norm_sq(), coalesced);
  EXPECT_DOUBLE_EQ(dyn.sketch_scalars().norm_sq_error_bound(), 0.0);
}

/// Per-shard histogram of partition-mode coordinates: what the cut
/// equivalence check compares (intra-slice assignment order may differ
/// between the sorting and bucketing materializations, but identical
/// cuts force identical per-shard slice populations).
std::vector<std::vector<offset_t>> shard_slice_histograms(
    const TensorPartition& p) {
  std::vector<std::vector<offset_t>> out;
  for (const TensorShard& shard : p.shards) {
    std::vector<offset_t> hist(p.dims[p.mode], 0);
    for (offset_t z = 0; z < shard.tensor->nnz(); ++z) {
      ++hist[shard.tensor->coord(p.mode, z)];
    }
    out.push_back(std::move(hist));
  }
  return out;
}

TEST(Sketch, PartitionerCutsMatchExactPath) {
  const SparseTensor t = zipf_tensor(30000, 31);
  const TensorSketch sketch = TensorSketch::build(t);
  for (unsigned k : {2u, 3u, 5u, 8u, 16u}) {
    const TensorPartition exact = partition_tensor(t, 0, k);
    const TensorPartition fast = partition_tensor(t, 0, k, sketch.mode(0));
    ASSERT_EQ(fast.size(), exact.size()) << "k=" << k;
    EXPECT_EQ(fast.slice_begins, exact.slice_begins) << "k=" << k;
    for (std::size_t s = 0; s < exact.size(); ++s) {
      EXPECT_EQ(fast.shards[s].nnz(), exact.shards[s].nnz())
          << "k=" << k << " shard " << s;
      EXPECT_EQ(fast.shards[s].slice_begin, exact.shards[s].slice_begin);
      EXPECT_EQ(fast.shards[s].slice_end, exact.shards[s].slice_end);
    }
    EXPECT_EQ(shard_slice_histograms(fast), shard_slice_histograms(exact))
        << "k=" << k;
    EXPECT_EQ(fast.disjoint_slice_ranges(), exact.disjoint_slice_ranges());
  }
}

TEST(Sketch, PartitionerCutsMatchOnUniformAndSortedInput) {
  SparseTensor t = generate_uniform({100, 80, 60}, 12000, 41);
  const TensorSketch sketch = TensorSketch::build(t);
  const TensorPartition exact = partition_tensor(t, 0, 4);
  const TensorPartition fast = partition_tensor(t, 0, 4, sketch.mode(0));
  EXPECT_EQ(fast.slice_begins, exact.slice_begins);
  EXPECT_EQ(shard_slice_histograms(fast), shard_slice_histograms(exact));

  // Pre-sorted input exercises the exact path's no-copy branch; cuts
  // must still agree.
  t.sort(mode_order_for(0, 3));
  const TensorPartition exact2 = partition_tensor(t, 0, 6);
  const TensorPartition fast2 =
      partition_tensor(t, 0, 6, TensorSketch::build(t).mode(0));
  EXPECT_EQ(fast2.slice_begins, exact2.slice_begins);
  EXPECT_EQ(shard_slice_histograms(fast2), shard_slice_histograms(exact2));
}

TEST(Sketch, ShardPricingDropsReduceTermWhenCutsProvablySnap) {
  AutoPolicyOptions opts;
  // Flat slices: max slice well under a quarter of any per-shard budget,
  // so every cut snaps to a slice boundary and the reduce term vanishes.
  const ShardPricing flat = price_shard_count(1u << 22, 4096, opts, 4);
  // Same size with one dominant slice: cuts may land mid-slice, so the
  // pricing must keep charging the K-way merge.
  const ShardPricing skewed =
      price_shard_count(1u << 22, 4096, opts, offset_t{1} << 21);
  if (flat.shards > 1) {
    EXPECT_DOUBLE_EQ(flat.reduce_cost, 0.0);
  }
  if (skewed.shards > 1) {
    EXPECT_GT(skewed.reduce_cost, 0.0);
  }
  // Cheaper overhead can only widen the economic range: the skew-free
  // pricing never recommends FEWER shards.
  EXPECT_GE(flat.shards, skewed.shards);
}

TEST(Sketch, DeterministicAcrossBuilds) {
  // Replay safety: two builds over the same stream are identical, and
  // insertion order does not matter (the stream is a multiset).
  const SparseTensor t = zipf_tensor(10000, 53);
  const TensorSketch a = TensorSketch::build(t);
  const TensorSketch b = TensorSketch::build(t);
  expect_same_structure(a, b);

  SparseTensor reversed(t.dims());
  std::vector<index_t> coords(t.order());
  for (offset_t z = t.nnz(); z > 0; --z) {
    for (index_t m = 0; m < t.order(); ++m) coords[m] = t.coord(m, z - 1);
    reversed.push_back(coords, t.value(z - 1));
  }
  expect_same_structure(TensorSketch::build(reversed), a);
}

}  // namespace
}  // namespace bcsf
