// Mixed-op serving correctness under dynamic updates (DESIGN.md §6-§7):
// MTTKRP, TTV and FIT requests interleave through TensorOpService while
// apply_updates, async format upgrades and background compactions fire
// underneath.  Every response must be BITWISE-equal to the sequential
// reference of its op on the merged tensor at the snapshot version the
// response names.
//
// Bitwise comparison across ops, formats and racy interleavings is
// possible because every input lives on the exact power-of-two grid of
// serve_test_util.hpp: all float and double arithmetic in every kernel
// is rounding-free, so any accumulation order, any base/delta split and
// any coalescing produce the identical bit pattern -- for the FIT scalar
// the double is compared with EXPECT_EQ outright.
//
// Like the other `concurrency`-labeled suites, the format pool is
// simulated-GPU formats plus the sequential reference so the suite is
// ThreadSanitizer-clean by construction.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "bcsf/bcsf.hpp"
#include "serve_test_util.hpp"

namespace bcsf {
namespace {

using serve_test::append_nonzeros;
using serve_test::bitwise_equal;
using serve_test::exact_batch;
using serve_test::exact_factors;
using serve_test::exact_tensor;
using serve_test::run_threads;

/// Ground truth for every op at every recorded snapshot version:
/// reconstructs "base + all batches with version <= v" and applies the
/// sequential reference of the op.  Thread-safe recording; lookups happen
/// after the parallel phase.  Exact arithmetic makes the results
/// independent of batch order and of service-side compaction.
class MixedOpOracle {
 public:
  MixedOpOracle(SparseTensor base, FactorsPtr factors, FactorsPtr vectors,
                LambdaPtr lambda)
      : base_(std::move(base)),
        factors_(std::move(factors)),
        vectors_(std::move(vectors)),
        lambda_(std::move(lambda)) {}

  void record(std::uint64_t version, SparseTensor batch) {
    std::lock_guard<std::mutex> lock(m_);
    batches_.emplace_back(version, std::move(batch));
  }

  const DenseMatrix& expected_matrix(OpKind op, std::uint64_t version,
                                     index_t mode) {
    std::lock_guard<std::mutex> lock(m_);
    const auto key = std::make_tuple(op, version, mode);
    auto it = matrix_cache_.find(key);
    if (it != matrix_cache_.end()) return it->second;
    const SparseTensor merged = merged_at(version);
    DenseMatrix expected =
        op == OpKind::kMttkrp ? mttkrp_reference(merged, mode, *factors_)
                              : ttv_reference(merged, mode, *vectors_);
    return matrix_cache_.emplace(key, std::move(expected)).first->second;
  }

  double expected_fit(std::uint64_t version) {
    std::lock_guard<std::mutex> lock(m_);
    auto it = fit_cache_.find(version);
    if (it != fit_cache_.end()) return it->second;
    const double inner =
        fit_inner_reference(merged_at(version), *factors_, lambda_.get());
    return fit_cache_.emplace(version, inner).first->second;
  }

 private:
  SparseTensor merged_at(std::uint64_t version) const {
    SparseTensor merged(base_.dims());
    append_nonzeros(merged, base_);
    for (const auto& [v, batch] : batches_) {
      if (v <= version) append_nonzeros(merged, batch);
    }
    return merged;
  }

  std::mutex m_;
  SparseTensor base_;
  FactorsPtr factors_;
  FactorsPtr vectors_;
  LambdaPtr lambda_;
  std::vector<std::pair<std::uint64_t, SparseTensor>> batches_;
  std::map<std::tuple<OpKind, std::uint64_t, index_t>, DenseMatrix>
      matrix_cache_;
  std::map<std::uint64_t, double> fit_cache_;
};

ServeRequest make_request(const std::string& tensor, OpKind op, index_t mode,
                          const FactorsPtr& factors, const FactorsPtr& vectors,
                          const LambdaPtr& lambda) {
  ServeRequest request;
  request.tensor = tensor;
  request.mode = mode;
  request.op = op;
  request.factors = op == OpKind::kTtv ? vectors : factors;
  if (op == OpKind::kFit) request.lambda = lambda;
  return request;
}

void check_response(MixedOpOracle& oracle, const ServeResponse& r,
                    index_t mode) {
  if (r.op == OpKind::kFit) {
    EXPECT_EQ(r.output.rows(), 0u);
    EXPECT_EQ(r.scalar, oracle.expected_fit(r.snapshot_version))
        << "sequence " << r.sequence << " version " << r.snapshot_version
        << " served by " << r.served_format;
  } else {
    EXPECT_TRUE(bitwise_equal(
        oracle.expected_matrix(r.op, r.snapshot_version, mode), r.output))
        << op_name(r.op) << " sequence " << r.sequence << " version "
        << r.snapshot_version << " served by " << r.served_format;
  }
}

/// Exact-grid lambda: multiples of 0.5 in [0.5, 2].
LambdaPtr exact_lambda(rank_t rank, std::uint64_t seed) {
  std::mt19937 rng(seed);
  auto lambda = std::make_shared<std::vector<value_t>>(rank);
  for (value_t& v : *lambda) {
    v = 0.5F * static_cast<value_t>(1 + rng() % 4);
  }
  return lambda;
}

// ---------------------------------------------------------------------------
// Deterministic walkthrough: mixed-op waves observe the upgrade swap and
// the update -> compaction lifecycle, every response bitwise-checked.
// ---------------------------------------------------------------------------

TEST(MixedOpServe, MixedBatchesStayExactAcrossUpgradeAndCompaction) {
  const std::vector<index_t> dims = {24, 30, 36};
  SparseTensor base = exact_tensor(dims, 1800, 19);
  FactorsPtr factors = exact_factors(dims, 8, 23);
  FactorsPtr vectors = exact_factors(dims, 1, 29);
  LambdaPtr lambda = exact_lambda(8, 31);
  MixedOpOracle oracle(SparseTensor(base), factors, vectors, lambda);
  std::mt19937 rng(37);

  ServeOptions opts;
  opts.workers = 4;
  opts.initial_format = "coo";
  opts.upgrade_format = "bcsf";
  // The trigger is gain-weighted: 12 calls/mode in wave 1 = 4 MTTKRP +
  // 4 FIT + 4 TTV -> effective 8.125, comfortably past 6.
  opts.upgrade_threshold = 6;
  opts.compact_threshold = 0.2;
  opts.compact_min_nnz = 64;
  TensorOpService service(opts);
  service.register_tensor("t", share_tensor(std::move(base)));

  auto run_wave = [&](int n) {
    std::vector<ServeRequest> batch;
    std::vector<std::pair<OpKind, index_t>> keys;
    for (int i = 0; i < n; ++i) {
      // Round-robin ops and modes so every mode sees the same mixed
      // traffic (deterministic effective-calls accounting above).
      const OpKind op = kAllOps[static_cast<std::size_t>(i) % kAllOps.size()];
      const index_t mode =
          static_cast<index_t>((static_cast<std::size_t>(i) / kAllOps.size()) %
                               dims.size());
      batch.push_back(make_request("t", op, mode, factors, vectors, lambda));
      keys.emplace_back(op, mode);
    }
    auto futures = service.submit_batch(std::move(batch));
    for (std::size_t i = 0; i < futures.size(); ++i) {
      const ServeResponse r = futures[i].get();
      EXPECT_EQ(r.op, keys[i].first);
      check_response(oracle, r, keys[i].second);
    }
  };

  // Phase 1: static serving; mixed traffic jointly crosses the per-mode
  // threshold (all ops count) and the structured build lands.
  run_wave(36);
  service.wait_idle();
  for (index_t m = 0; m < dims.size(); ++m) {
    EXPECT_TRUE(service.upgraded("t", static_cast<index_t>(m)));
    EXPECT_EQ(service.current_format("t", static_cast<index_t>(m)), "bcsf");
  }

  // Phase 2: updates stream in; every op folds the delta contribution on
  // top of the structured base plan.
  for (int i = 0; i < 3; ++i) {
    SparseTensor batch = exact_batch(dims, 90, rng);
    oracle.record(service.snapshot_version("t") + 1, SparseTensor(batch));
    service.apply_updates("t", std::move(batch));
  }
  EXPECT_EQ(service.snapshot_version("t"), 3u);
  run_wave(18);

  // Phase 3: push past the compaction threshold; post-compaction mixed
  // traffic re-upgrades and serves pure base again.
  for (int i = 0; i < 2; ++i) {
    SparseTensor batch = exact_batch(dims, 150, rng);
    oracle.record(service.snapshot_version("t") + 1, SparseTensor(batch));
    service.apply_updates("t", std::move(batch));
  }
  service.wait_idle();
  EXPECT_GE(service.compaction_count("t"), 1u);
  run_wave(18);
  service.wait_idle();

  auto fit_future = service.submit(
      make_request("t", OpKind::kFit, 0, factors, vectors, lambda));
  const ServeResponse fit = fit_future.get();
  EXPECT_EQ(fit.delta_nnz, 0u) << "post-compaction serving is pure base";
  EXPECT_EQ(fit.scalar, oracle.expected_fit(fit.snapshot_version));
}

// The upgrade trigger is gain-weighted: rank-1 TTV calls recoup ~1/R of
// an MTTKRP call's build cost, so a TTV-only stream counts at
// ttv_gain_fraction weight and must NOT launch the structured build at
// an MTTKRP-equivalent threshold -- while a handful of full-rank calls
// on top tips it over.
TEST(MixedOpServe, TtvOnlyTrafficDiscountsTowardUpgrade) {
  const std::vector<index_t> dims = {20, 24, 28};
  SparseTensor base = exact_tensor(dims, 1200, 41);
  FactorsPtr factors = exact_factors(dims, 8, 43);
  FactorsPtr vectors = exact_factors(dims, 1, 47);

  ServeOptions opts;
  opts.workers = 2;
  opts.upgrade_format = "bcsf";
  opts.upgrade_threshold = 8;
  TensorOpService service(opts);
  service.register_tensor("t", share_tensor(std::move(base)));

  // 60 TTV calls on mode 0: effective traffic 60/32 < 2, far under 8.
  std::vector<ServeRequest> ttv_batch(
      60, make_request("t", OpKind::kTtv, 0, factors, vectors, nullptr));
  for (auto& f : service.submit_batch(std::move(ttv_batch))) f.get();
  service.wait_idle();
  EXPECT_FALSE(service.upgraded("t", 0))
      << "rank-1 traffic alone must not pay for a structured build";

  // 7 full-rank MTTKRP calls push effective past 8 (7 + 60/32 = 8.875).
  std::vector<ServeRequest> mttkrp_batch(
      7, make_request("t", OpKind::kMttkrp, 0, factors, vectors, nullptr));
  for (auto& f : service.submit_batch(std::move(mttkrp_batch))) f.get();
  service.wait_idle();
  EXPECT_TRUE(service.upgraded("t", 0));
  EXPECT_EQ(service.current_format("t", 0), "bcsf");
}

// ---------------------------------------------------------------------------
// Randomized interleavings: query threads submit a random op stream while
// updater threads race them and upgrades/compactions fire underneath.
// ---------------------------------------------------------------------------

TEST(MixedOpServe, RacingMixedOpsUpdatesAndCompactionsStayExact) {
  const std::vector<std::string> upgrade_pool = {"bcsf", "csl", "auto",
                                                 "gpu-csf"};
  for (int trial = 0; trial < 3; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const index_t order = (trial % 2 == 0) ? 3 : 4;
    std::vector<index_t> dims;
    for (index_t m = 0; m < order; ++m) {
      dims.push_back(16 + 6 * ((trial + m) % 3));
    }
    const rank_t rank = (trial % 2) ? 4 : 8;
    SparseTensor base = exact_tensor(dims, 1400, 200 + trial);
    FactorsPtr factors = exact_factors(dims, rank, 11 * trial + 1);
    FactorsPtr vectors = exact_factors(dims, 1, 13 * trial + 2);
    // Alternate between explicit exact weights and the all-ones default.
    LambdaPtr lambda =
        (trial % 2 == 0) ? exact_lambda(rank, 17 * trial + 3) : nullptr;
    MixedOpOracle oracle(SparseTensor(base), factors, vectors, lambda);

    ServeOptions opts;
    opts.workers = 2 + trial;
    opts.initial_format = (trial % 2) ? "reference" : "coo";
    opts.upgrade_format = upgrade_pool[trial % upgrade_pool.size()];
    opts.upgrade_threshold = 5 + trial;
    opts.compact_threshold = 0.12;
    opts.compact_min_nnz = 32;
    TensorOpService service(opts);
    service.register_tensor("x", share_tensor(std::move(base)));

    constexpr int kQueryThreads = 4;
    constexpr int kUpdateThreads = 2;
    constexpr int kQueriesPerThread = 15;
    constexpr int kBatchesPerThread = 7;

    struct Observed {
      OpKind op;
      index_t mode;
      std::uint64_t version;
      DenseMatrix output;
      double scalar;
    };
    std::vector<std::vector<Observed>> observed(kQueryThreads);
    std::atomic<bool> version_zero_seen{false};

    run_threads(kQueryThreads + kUpdateThreads, [&](int i) {
      std::mt19937 rng(7000 + 41 * trial + i);
      if (i < kQueryThreads) {
        for (int q = 0; q < kQueriesPerThread; ++q) {
          const OpKind op = kAllOps[rng() % kAllOps.size()];
          const index_t mode = static_cast<index_t>(rng() % order);
          ServeResponse r =
              service.submit(make_request("x", op, mode, factors, vectors,
                                          lambda))
                  .get();
          observed[i].push_back({op, mode, r.snapshot_version,
                                 std::move(r.output), r.scalar});
        }
      } else {
        for (int b = 0; b < kBatchesPerThread; ++b) {
          SparseTensor batch = exact_batch(dims, 20 + rng() % 50, rng);
          SparseTensor copy(batch);
          const std::uint64_t version =
              service.apply_updates("x", std::move(batch));
          oracle.record(version, std::move(copy));
          if (version == 0) version_zero_seen.store(true);
        }
      }
    });
    service.wait_idle();
    EXPECT_FALSE(version_zero_seen.load());

    std::uint64_t max_version_seen = 0;
    for (int i = 0; i < kQueryThreads; ++i) {
      std::uint64_t previous = 0;
      for (std::size_t q = 0; q < observed[i].size(); ++q) {
        const Observed& o = observed[i][q];
        SCOPED_TRACE("thread " + std::to_string(i) + " query " +
                     std::to_string(q) + " op " + op_name(o.op));
        EXPECT_GE(o.version, previous)
            << "versions must be monotone along a serial submit->get chain";
        previous = o.version;
        max_version_seen = std::max(max_version_seen, o.version);
        if (o.op == OpKind::kFit) {
          EXPECT_EQ(o.scalar, oracle.expected_fit(o.version));
        } else {
          EXPECT_TRUE(bitwise_equal(
              oracle.expected_matrix(o.op, o.version, o.mode), o.output));
        }
      }
    }
    // The interleaving genuinely exercised the dynamic path.
    EXPECT_GT(max_version_seen, 0u);
    EXPECT_GE(service.snapshot_version("x"),
              static_cast<std::uint64_t>(kUpdateThreads * kBatchesPerThread));
  }
}

}  // namespace
}  // namespace bcsf
