// Property suite for MttkrpService (DESIGN.md §5): random batched
// workloads -- random shapes, formats, modes, worker counts, and upgrade
// thresholds -- flow through the service, and EVERY response must match
// the sequential mttkrp_reference for its (mode, factors), including
// responses served while an async format upgrade swaps the delegate
// underneath them.
//
// Like concurrent_cache_test, the format pool is simulated-GPU formats
// plus the sequential reference so the suite is ThreadSanitizer-clean by
// construction (no OpenMP runtime in the loop).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "bcsf/bcsf.hpp"
#include "serve_test_util.hpp"

namespace bcsf {
namespace {

using serve_test::ref_scale;

/// Reference outputs per (mode, factor-set) for one tensor.
struct References {
  std::vector<std::vector<DenseMatrix>> by_factors;  // [factor_set][mode]
  std::vector<FactorsPtr> factor_sets;

  References(const SparseTensor& x, rank_t rank, int sets,
             std::uint64_t seed) {
    for (int s = 0; s < sets; ++s) {
      auto factors = std::make_shared<const std::vector<DenseMatrix>>(
          make_random_factors(x.dims(), rank, seed + 101 * s));
      std::vector<DenseMatrix> per_mode;
      for (index_t m = 0; m < x.order(); ++m) {
        per_mode.push_back(mttkrp_reference(x, m, *factors));
      }
      factor_sets.push_back(std::move(factors));
      by_factors.push_back(std::move(per_mode));
    }
  }
};

// The acceptance scenario: a deterministic run that OBSERVES the upgrade
// swap -- early responses served by the zero-preprocessing COO plan, late
// responses by the structured plan (different plan identity), and every
// single one equal to the reference.
TEST(MttkrpService, AsyncUpgradeSwapsPlanWhileResultsStayCorrect) {
  PowerLawConfig config;
  config.dims = {50, 40, 60};
  config.target_nnz = 4000;
  config.slice_alpha = 0.8;
  config.fiber_alpha = 0.8;
  config.max_fiber_len = 32;
  config.seed = 1234;
  SparseTensor x = generate_power_law(config);
  const index_t mode = 0;
  References refs(x, 16, 1, 77);

  ServeOptions opts;
  opts.workers = 4;
  opts.initial_format = "coo";
  opts.upgrade_format = "bcsf";
  opts.upgrade_threshold = 8;  // break-even crossed inside wave 1
  MttkrpService service(opts);
  service.register_tensor("t", share_tensor(std::move(x)));
  EXPECT_EQ(service.current_format("t", mode), "coo");

  const DenseMatrix& ref = refs.by_factors[0][mode];
  const double tol = 1e-4 * ref_scale(ref);
  std::set<const MttkrpPlan*> identities;
  std::set<std::string> formats;
  int checked = 0;
  // Three waves with drain points so the background upgrade task (queued
  // FIFO behind wave-1 requests) gets scheduled between waves; wave 2
  // typically straddles the swap, wave 3 is fully post-swap.
  auto run_wave = [&](int n) {
    std::vector<MttkrpRequest> batch(
        static_cast<std::size_t>(n),
        MttkrpRequest{"t", mode, refs.factor_sets[0]});
    for (auto& future : service.submit_batch(std::move(batch))) {
      MttkrpResponse r = future.get();
      identities.insert(r.plan.get());
      formats.insert(r.served_format);
      EXPECT_LT(ref.max_abs_diff(r.output), tol)
          << "sequence " << r.sequence << " served by " << r.served_format;
      ++checked;
    }
  };
  run_wave(16);  // crosses the threshold; serves from COO meanwhile
  run_wave(16);  // swap lands somewhere in here
  service.wait_idle();  // background build definitely finished
  EXPECT_TRUE(service.upgraded("t", mode));
  EXPECT_EQ(service.current_format("t", mode), "bcsf");
  run_wave(16);  // entirely on the structured delegate

  // The swap was observed in-stream: both delegates served traffic under
  // exactly two plan identities, and every response above was correct.
  EXPECT_EQ(identities.size(), 2u) << "expected exactly old + new plan";
  EXPECT_TRUE(formats.count("coo")) << "no response rode the initial plan";
  EXPECT_TRUE(formats.count("bcsf")) << "no response rode the upgrade";
  EXPECT_EQ(checked, 48);
  EXPECT_EQ(service.call_count("t"), 48u);
}

TEST(MttkrpService, RandomBatchedWorkloadsMatchReference) {
  std::mt19937 rng(20260731);
  const std::vector<std::string> upgrade_pool = {"bcsf", "csl", "gpu-csf",
                                                 "hbcsf", "auto"};
  const std::vector<std::string> initial_pool = {"coo", "reference"};

  for (int trial = 0; trial < 6; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const index_t order = (trial % 2 == 0) ? 3 : 4;
    std::uniform_int_distribution<index_t> dim_dist(8, 32);
    std::vector<index_t> dims;
    for (index_t m = 0; m < order; ++m) dims.push_back(dim_dist(rng));
    // Clamp to half the cell count so the draw can never exceed what
    // generate_uniform can place, whatever the stdlib's RNG mapping.
    offset_t cells = 1;
    for (index_t d : dims) cells *= d;
    std::uniform_int_distribution<offset_t> nnz_dist(400, 2500);
    const offset_t nnz = std::min<offset_t>(nnz_dist(rng), cells / 2);
    SparseTensor x = generate_uniform(dims, nnz, 1000 + 7 * trial);

    const rank_t rank = (trial % 3 == 0) ? 4 : 8;
    References refs(x, rank, /*sets=*/2, 5000 + trial);

    ServeOptions opts;
    opts.workers = 1 + (rng() % 8);
    opts.initial_format = initial_pool[rng() % initial_pool.size()];
    opts.upgrade_format = upgrade_pool[rng() % upgrade_pool.size()];
    // Threshold 0 defers to the Fig-10 policy (which may say "never" for
    // these small tensors); otherwise upgrade somewhere mid-workload.
    opts.upgrade_threshold =
        (trial % 3 == 2) ? 0.0 : static_cast<double>(1 + rng() % 16);
    MttkrpService service(opts);
    service.register_tensor("x", share_tensor(std::move(x)));

    // Several batches so later ones straddle/follow the upgrade swap.
    std::uniform_int_distribution<index_t> mode_dist(0, order - 1);
    for (int wave = 0; wave < 4; ++wave) {
      std::vector<MttkrpRequest> batch;
      std::vector<std::pair<int, index_t>> expected_key;  // (set, mode)
      for (int i = 0; i < 12; ++i) {
        const int set = static_cast<int>(rng() % refs.factor_sets.size());
        const index_t mode = mode_dist(rng);
        batch.push_back({"x", mode, refs.factor_sets[set]});
        expected_key.emplace_back(set, mode);
      }
      auto futures = service.submit_batch(std::move(batch));
      for (std::size_t i = 0; i < futures.size(); ++i) {
        MttkrpResponse r = futures[i].get();
        const auto [set, mode] = expected_key[i];
        const DenseMatrix& ref = refs.by_factors[set][mode];
        EXPECT_LT(ref.max_abs_diff(r.output), 1e-4 * ref_scale(ref))
            << "wave " << wave << " req " << i << " mode " << mode
            << " served by " << r.served_format;
      }
    }
    service.wait_idle();
    EXPECT_EQ(service.call_count("x"), 48u);
  }
}

TEST(MttkrpService, ServesMultipleTensorsIndependently) {
  SparseTensor a = generate_uniform({20, 20, 20}, 900, 3);
  SparseTensor b = generate_uniform({12, 18, 24, 10}, 1200, 4);
  References refs_a(a, 8, 1, 11);
  References refs_b(b, 8, 1, 22);

  ServeOptions opts;
  opts.workers = 4;
  opts.upgrade_format = "gpu-csf";
  opts.upgrade_threshold = 4;
  MttkrpService service(opts);
  service.register_tensor("a", share_tensor(std::move(a)));
  service.register_tensor("b", share_tensor(std::move(b)));
  EXPECT_TRUE(service.has_tensor("a"));
  EXPECT_FALSE(service.has_tensor("c"));
  EXPECT_THROW(service.submit({"c", 0, refs_a.factor_sets[0]}), Error);
  EXPECT_THROW(service.submit({"b", 4, refs_b.factor_sets[0]}), Error);

  std::vector<MttkrpRequest> batch;
  for (int i = 0; i < 10; ++i) {
    batch.push_back({"a", static_cast<index_t>(i % 3), refs_a.factor_sets[0]});
    batch.push_back({"b", static_cast<index_t>(i % 4), refs_b.factor_sets[0]});
  }
  auto futures = service.submit_batch(std::move(batch));
  for (std::size_t i = 0; i < futures.size(); ++i) {
    MttkrpResponse r = futures[i].get();
    const bool is_a = (i % 2 == 0);
    const index_t mode = static_cast<index_t>((i / 2) % (is_a ? 3 : 4));
    const DenseMatrix& ref =
        is_a ? refs_a.by_factors[0][mode] : refs_b.by_factors[0][mode];
    EXPECT_LT(ref.max_abs_diff(r.output), 1e-4 * ref_scale(ref));
  }
  service.wait_idle();
  EXPECT_EQ(service.call_count("a"), 10u);
  EXPECT_EQ(service.call_count("b"), 10u);
}

// The service refuses a non-COO initial format: the whole point of the
// serve-then-upgrade design is that the first request never waits on a
// structured build.
TEST(MttkrpService, RejectsPreprocessedInitialFormat) {
  ServeOptions opts;
  opts.initial_format = "bcsf";
  EXPECT_THROW(MttkrpService{opts}, Error);
}

// Destroying the service while accepted requests are still draining must
// complete every one of them -- including requests that cross the upgrade
// threshold mid-drain, whose background-build submission races the pool
// shutdown (regression: the service's own upgrade submit used to throw
// into the request handler and poison the response future).
TEST(MttkrpService, DestructionCompletesAcceptedRequests) {
  SparseTensor x = generate_uniform({20, 20, 20}, 800, 17);
  References refs(x, 4, 1, 44);
  const DenseMatrix& ref = refs.by_factors[0][0];
  const double tol = 1e-4 * ref_scale(ref);

  for (int attempt = 0; attempt < 8; ++attempt) {
    std::vector<std::future<MttkrpResponse>> futures;
    {
      ServeOptions opts;
      opts.workers = 1;
      opts.upgrade_format = "bcsf";
      opts.upgrade_threshold = 1;  // every request wants to launch a build
      MttkrpService service(opts);
      service.register_tensor("x", share_tensor(SparseTensor(x)));
      futures = service.submit_batch(
          std::vector<MttkrpRequest>(8, MttkrpRequest{"x", 0,
                                                      refs.factor_sets[0]}));
    }  // destructor drains the queue while futures are outstanding
    for (auto& future : futures) {
      MttkrpResponse r = future.get();  // must not throw
      EXPECT_LT(ref.max_abs_diff(r.output), tol) << "sequence " << r.sequence;
    }
  }
}

// Upgrades can also be disabled outright: the delegate never swaps.
TEST(MttkrpService, DisabledUpgradeStaysOnInitialPlan) {
  SparseTensor x = generate_uniform({25, 25, 25}, 1500, 9);
  References refs(x, 8, 1, 33);
  ServeOptions opts;
  opts.workers = 2;
  opts.enable_upgrade = false;
  opts.upgrade_threshold = 1;
  MttkrpService service(opts);
  service.register_tensor("x", share_tensor(std::move(x)));

  std::vector<MttkrpRequest> batch(20,
                                   MttkrpRequest{"x", 0, refs.factor_sets[0]});
  for (auto& f : service.submit_batch(std::move(batch))) {
    EXPECT_EQ(f.get().served_format, "coo");
  }
  service.wait_idle();
  EXPECT_FALSE(service.upgraded("x", 0));
  EXPECT_EQ(service.current_format("x", 0), "coo");
}

}  // namespace
}  // namespace bcsf
