// Sharded serving (DESIGN.md §8): racing queries, updates routed to
// shards by slice range, and independent per-shard upgrades/compactions
// through TensorOpService.
//
// Runs on the exact power-of-two grid (serve_test_util.hpp), where every
// kernel's arithmetic is rounding-free: a response must match the
// sequential reference of its op on the ACCUMULATED tensor BITWISE
// (matrix ops) or exactly (FIT's double scalar), for every shard count.
// Racing phases check each response against the two states a concurrent
// single-shard update batch allows.  The suite carries the `concurrency`
// ctest label, so CI runs it under ThreadSanitizer; kernels here are
// single-threaded inside (simulated-GPU "coo"/"bcsf" and the sequential
// reference), so every TSan report indicts serve/, util/, or tensor/.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "bcsf/bcsf.hpp"
#include "serve_test_util.hpp"

namespace bcsf {
namespace {

using serve_test::append_nonzeros;
using serve_test::bitwise_equal;
using serve_test::exact_batch;
using serve_test::exact_factors;
using serve_test::exact_tensor;
using serve_test::run_threads;

constexpr rank_t kRank = 4;

struct Fixture {
  std::vector<index_t> dims{24, 20, 16};
  SparseTensor oracle;  ///< base + every applied update, append order
  std::shared_ptr<const std::vector<DenseMatrix>> factors;
  std::shared_ptr<const std::vector<DenseMatrix>> vectors;
  std::shared_ptr<const std::vector<value_t>> lambda;

  explicit Fixture(std::uint64_t seed, offset_t nnz = 1600)
      : oracle(exact_tensor(dims, nnz, seed)),
        factors(exact_factors(dims, kRank, seed + 1)),
        vectors(exact_factors(dims, 1, seed + 2)),
        lambda(std::make_shared<const std::vector<value_t>>(kRank, 0.5F)) {}

  ServeRequest request(index_t mode, OpKind op) const {
    ServeRequest r;
    r.tensor = "t";
    r.mode = mode;
    r.op = op;
    r.factors = op == OpKind::kTtv ? vectors : factors;
    if (op == OpKind::kFit) r.lambda = lambda;
    return r;
  }

  /// Checks `response` against the reference of its op on `state`.
  void expect_exact(const ServeResponse& response, const SparseTensor& state,
                    index_t mode, OpKind op) const {
    switch (op) {
      case OpKind::kMttkrp:
        EXPECT_TRUE(
            bitwise_equal(mttkrp_reference(state, mode, *factors),
                          response.output));
        break;
      case OpKind::kTtv:
        EXPECT_TRUE(bitwise_equal(ttv_reference(state, mode, *vectors),
                                  response.output));
        break;
      case OpKind::kFit:
        EXPECT_EQ(response.scalar,
                  fit_inner_reference(state, *factors, lambda.get()));
        break;
    }
  }
};

ServeOptions sharded_options(unsigned shards, double threshold = 3.0) {
  ServeOptions opts;
  opts.workers = 4;
  opts.shards = shards;
  opts.upgrade_format = "bcsf";
  opts.upgrade_threshold = threshold;
  opts.compact_threshold = 0.2;
  opts.compact_min_nnz = 64;
  opts.plan.device = DeviceModel::tiny();
  return opts;
}

/// An update batch confined to ONE root-mode slice, so the whole batch
/// routes to a single shard.
SparseTensor single_slice_batch(const std::vector<index_t>& dims,
                                index_t slice, offset_t nnz,
                                std::mt19937& rng) {
  SparseTensor batch(dims);
  std::vector<index_t> coords(dims.size());
  for (offset_t i = 0; i < nnz; ++i) {
    coords[0] = slice;
    for (std::size_t m = 1; m < dims.size(); ++m) {
      coords[m] = static_cast<index_t>(rng() % dims[m]);
    }
    batch.push_back(coords, static_cast<value_t>(1 + rng() % 3));
  }
  return batch;
}

// ---------------------------------------------------------------------------
// Quiesced exactness: every shard count, every op, across updates,
// upgrades, and compactions.
// ---------------------------------------------------------------------------

TEST(ShardedServe, ExactAcrossShardCountsAndOps) {
  for (unsigned shards : {1u, 2u, 4u, 7u}) {
    SCOPED_TRACE(shards);
    Fixture fx(500 + shards);
    TensorOpService service(sharded_options(shards));
    service.register_tensor("t", share_tensor(SparseTensor(fx.oracle)));
    EXPECT_EQ(service.shard_count("t"), shards);

    std::mt19937 rng(900 + shards);
    for (int wave = 0; wave < 4; ++wave) {
      std::vector<ServeRequest> batch;
      std::vector<std::pair<index_t, OpKind>> meta;
      for (index_t mode = 0; mode < 3; ++mode) {
        for (OpKind op : kAllOps) {
          batch.push_back(fx.request(mode, op));
          meta.emplace_back(mode, op);
        }
      }
      auto futures = service.submit_batch(std::move(batch));
      for (std::size_t i = 0; i < futures.size(); ++i) {
        const ServeResponse response = futures[i].get();
        EXPECT_EQ(response.shards, shards);
        fx.expect_exact(response, fx.oracle, meta[i].first, meta[i].second);
      }
      // Updates between waves (multi-shard batches): split by slice
      // range, applied while no query is in flight, visible to the next
      // wave in full.
      const SparseTensor update = exact_batch(fx.dims, 120, rng);
      append_nonzeros(fx.oracle, update);
      service.apply_updates("t", update);
    }
    service.wait_idle();
    // Traffic crossed the threshold: every shard upgraded (possibly
    // recompacted and re-upgraded along the way is fine too -- quiesced
    // responses stayed exact above either way).
    const std::uint64_t version = service.snapshot_version("t");
    EXPECT_GT(version, 0u);
    auto last = service.submit(fx.request(0, OpKind::kMttkrp)).get();
    fx.expect_exact(last, fx.oracle, 0, OpKind::kMttkrp);
    EXPECT_GE(last.snapshot_version, version);
  }
}

// ---------------------------------------------------------------------------
// Racing: queries vs a concurrent single-shard update batch.  Each
// response must equal the op on the pre-batch or post-batch tensor --
// nothing in between exists, because the batch lands in exactly one
// shard's dynamic tensor and a query pairs each shard's plans and deltas
// under that shard's lock.
// ---------------------------------------------------------------------------

TEST(ShardedServe, RacingQueriesObserveAtomicShardUpdates) {
  Fixture fx(600);
  TensorOpService service(sharded_options(4, /*threshold=*/6.0));
  service.register_tensor("t", share_tensor(SparseTensor(fx.oracle)));

  std::mt19937 rng(1234);
  for (int round = 0; round < 6; ++round) {
    const index_t slice = static_cast<index_t>(rng() % fx.dims[0]);
    const SparseTensor batch =
        single_slice_batch(fx.dims, slice, 96, rng);
    SparseTensor after = fx.oracle;
    append_nonzeros(after, batch);

    const index_t mode = static_cast<index_t>(round % 3);
    const OpKind op = kAllOps[static_cast<std::size_t>(round) % 3];
    // Fire queries and the update concurrently: responses may capture
    // the shard before or after the batch, never a torn state.
    std::vector<std::future<ServeResponse>> futures;
    for (int q = 0; q < 6; ++q) futures.push_back(service.submit(fx.request(mode, op)));
    SparseTensor update_copy = batch;  // apply_updates consumes its arg
    service.apply_updates("t", std::move(update_copy));
    for (auto& f : futures) {
      const ServeResponse response = f.get();
      bool matches_before = false;
      bool matches_after = false;
      switch (op) {
        case OpKind::kMttkrp: {
          const DenseMatrix rb = mttkrp_reference(fx.oracle, mode, *fx.factors);
          const DenseMatrix ra = mttkrp_reference(after, mode, *fx.factors);
          matches_before = static_cast<bool>(bitwise_equal(rb, response.output));
          matches_after = static_cast<bool>(bitwise_equal(ra, response.output));
          break;
        }
        case OpKind::kTtv: {
          const DenseMatrix rb = ttv_reference(fx.oracle, mode, *fx.vectors);
          const DenseMatrix ra = ttv_reference(after, mode, *fx.vectors);
          matches_before = static_cast<bool>(bitwise_equal(rb, response.output));
          matches_after = static_cast<bool>(bitwise_equal(ra, response.output));
          break;
        }
        case OpKind::kFit: {
          const double rb =
              fit_inner_reference(fx.oracle, *fx.factors, fx.lambda.get());
          const double ra =
              fit_inner_reference(after, *fx.factors, fx.lambda.get());
          matches_before = response.scalar == rb;
          matches_after = response.scalar == ra;
          break;
        }
      }
      EXPECT_TRUE(matches_before || matches_after)
          << "round " << round << ": response at version "
          << response.snapshot_version
          << " matches neither pre- nor post-update state";
    }
    fx.oracle = std::move(after);
    service.wait_idle();  // let upgrades/compactions from this round land
  }
}

// ---------------------------------------------------------------------------
// Update routing and independent per-shard compaction.
// ---------------------------------------------------------------------------

TEST(ShardedServe, UpdatesRouteToShardsAndCompactIndependently) {
  Fixture fx(700, /*nnz=*/1200);
  ServeOptions opts = sharded_options(2);
  opts.enable_upgrade = false;  // isolate the compaction machinery
  TensorOpService service(opts);
  service.register_tensor("t", share_tensor(SparseTensor(fx.oracle)));
  ASSERT_EQ(service.shard_count("t"), 2u);

  // Pick a slice owned by shard 1 and hammer it with updates.
  const auto status0 = service.shard_status("t", 0);
  ASSERT_EQ(status0.size(), 2u);
  const index_t hot_slice = status0[1].slice_begin;
  ASSERT_EQ(service.shard_for_slice("t", hot_slice), 1u);

  std::mt19937 rng(4321);
  while (service.compaction_count("t") == 0) {
    SparseTensor batch = single_slice_batch(fx.dims, hot_slice, 128, rng);
    append_nonzeros(fx.oracle, batch);
    service.apply_updates("t", std::move(batch));
    service.wait_idle();
  }

  const auto status = service.shard_status("t", 0);
  EXPECT_EQ(status[0].compactions, 0u) << "cold shard must not compact";
  EXPECT_EQ(status[0].snapshot_version, 0u)
      << "cold shard must not even version-bump";
  EXPECT_EQ(status[0].delta_nnz, 0u);
  EXPECT_GE(status[1].compactions, 1u) << "hot shard must compact";
  EXPECT_GT(status[1].base_nnz, status0[1].base_nnz)
      << "compaction folds the delta into the hot shard's base";

  // Post-compaction queries stay exact.
  const ServeResponse response =
      service.submit(fx.request(0, OpKind::kMttkrp)).get();
  fx.expect_exact(response, fx.oracle, 0, OpKind::kMttkrp);
}

// ---------------------------------------------------------------------------
// Hot-shard lifecycle: upgrade everywhere, compact ONE shard (its
// generation resets to COO), observe "mixed", re-upgrade, all exact.
// Runs on the exact-policy oracle path (sketch_policy = false): with
// sketches on, the compaction itself re-decides and re-lands the
// structured build (DESIGN.md §12) and the "mixed" window closes before
// wait_idle returns -- that eager lifecycle is pinned by
// DynamicUpdates.UpdateCompactReupgradeLifecycle; this test keeps the
// request-driven re-upgrade observable.
// ---------------------------------------------------------------------------

TEST(ShardedServe, HotShardCompactsAndReupgradesWhileColdStaysStructured) {
  Fixture fx(800, /*nnz=*/1400);
  ServeOptions opts = sharded_options(2, /*threshold=*/2.0);
  opts.sketch_policy = false;
  TensorOpService service(opts);
  service.register_tensor("t", share_tensor(SparseTensor(fx.oracle)));

  // Phase 1: traffic upgrades BOTH shards on mode 0.
  for (int i = 0; i < 4; ++i) {
    fx.expect_exact(service.submit(fx.request(0, OpKind::kMttkrp)).get(),
                    fx.oracle, 0, OpKind::kMttkrp);
    service.wait_idle();
  }
  ASSERT_TRUE(service.upgraded("t", 0));
  ASSERT_EQ(service.current_format("t", 0), "bcsf");

  // Phase 2: updates into shard 1 until it compacts.  Its fresh
  // generation serves COO again while shard 0 keeps its structured plan:
  // the formats MIX until re-upgrade -- the §8 incremental story.
  const index_t hot_slice = service.shard_status("t", 0)[1].slice_begin;
  std::mt19937 rng(5678);
  while (service.compaction_count("t") == 0) {
    SparseTensor batch = single_slice_batch(fx.dims, hot_slice, 128, rng);
    append_nonzeros(fx.oracle, batch);
    service.apply_updates("t", std::move(batch));
    service.wait_idle();
  }
  EXPECT_FALSE(service.upgraded("t", 0));
  EXPECT_EQ(service.current_format("t", 0), "mixed");
  const auto mixed_status = service.shard_status("t", 0);
  EXPECT_TRUE(mixed_status[0].upgraded);
  EXPECT_EQ(mixed_status[0].format, "bcsf");
  EXPECT_FALSE(mixed_status[1].upgraded);

  // Phase 3: carried-over counters re-launch the hot shard's build on
  // the next request; responses stay exact before, during, and after.
  while (!service.upgraded("t", 0)) {
    fx.expect_exact(service.submit(fx.request(0, OpKind::kMttkrp)).get(),
                    fx.oracle, 0, OpKind::kMttkrp);
    service.wait_idle();
  }
  EXPECT_EQ(service.current_format("t", 0), "bcsf");
  fx.expect_exact(service.submit(fx.request(0, OpKind::kFit)).get(),
                  fx.oracle, 0, OpKind::kFit);
}

// ---------------------------------------------------------------------------
// Chaos: concurrent queries, multi-shard updates, and introspection from
// raw threads.  Invariant checks are structural; the value of this test
// is TSan coverage of the sharded fan-out, routing, and per-shard
// generation swaps racing each other.
// ---------------------------------------------------------------------------

TEST(ShardedServe, RacingChaosKeepsInvariants) {
  Fixture fx(900, /*nnz=*/2000);
  TensorOpService service(sharded_options(4, /*threshold=*/5.0));
  service.register_tensor("t", share_tensor(SparseTensor(fx.oracle)));

  std::atomic<bool> bad{false};
  std::vector<SparseTensor> applied[2];  // per-updater logs, joined below
  run_threads(8, [&](int tid) {
    std::mt19937 rng(10'000 + tid);
    if (tid < 2) {
      // Updaters: multi-shard batches race everything else.
      for (int i = 0; i < 10; ++i) {
        SparseTensor batch = exact_batch(fx.dims, 64, rng);
        applied[tid].push_back(batch);
        service.apply_updates("t", std::move(batch));
      }
    } else if (tid < 7) {
      // Queriers: mixed ops; per-thread snapshot versions are monotone.
      std::uint64_t last_version = 0;
      for (int i = 0; i < 12; ++i) {
        const index_t mode = static_cast<index_t>(rng() % 3);
        const OpKind op = kAllOps[rng() % 3];
        const ServeResponse r = service.submit(fx.request(mode, op)).get();
        if (r.shards != 4 || r.snapshot_version < last_version) bad = true;
        last_version = r.snapshot_version;
        if (op == OpKind::kFit) {
          if (!r.output.data().empty()) bad = true;
        } else {
          const rank_t want = op == OpKind::kTtv ? 1 : kRank;
          if (r.output.rows() != fx.dims[mode] || r.output.cols() != want) {
            bad = true;
          }
        }
      }
    } else {
      // Observer: introspection races the swaps it reports on.
      for (int i = 0; i < 30; ++i) {
        (void)service.current_format("t", static_cast<index_t>(i % 3));
        (void)service.delta_fraction("t");
        (void)service.shard_status("t", 0);
        (void)service.snapshot_version("t");
      }
    }
  });
  EXPECT_FALSE(bad.load());
  service.wait_idle();

  // Quiesced: the accumulated tensor (updates commute -- addition) must
  // be served exactly, races, compactions, and upgrades notwithstanding.
  for (const auto& log : applied) {
    for (const SparseTensor& batch : log) append_nonzeros(fx.oracle, batch);
  }
  for (OpKind op : kAllOps) {
    fx.expect_exact(service.submit(fx.request(1, op)).get(), fx.oracle, 1, op);
  }

  // Single-shard tensors still expose the §6 snapshot API; sharded ones
  // direct callers to shard_snapshot.
  EXPECT_THROW(service.snapshot("t"), Error);
}

}  // namespace
}  // namespace bcsf
