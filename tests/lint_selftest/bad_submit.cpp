// lint-selftest-path: src/serve/bad_submit.cpp
// lint-selftest-expect: bare-pool-submit
//
// Deliberate violation: a bare pool submit() with no try_submit +
// inline-drain fallback -- the PR-7 shutdown-race bug class.  A task
// racing the pool's destructor makes this throw and kills the process.
#include <functional>

struct FakePool {
  void submit(std::function<void()>) {}
  bool try_submit(std::function<void()>) { return true; }
};

void launch_upgrade(FakePool* pool) {
  pool->submit([] { /* rebuild the structured format */ });
}
