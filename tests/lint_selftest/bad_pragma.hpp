// lint-selftest-path: src/util/bad_pragma.hpp
// lint-selftest-expect: include-hygiene
//
// Deliberate violation: a header without #pragma once before its first
// code line.  Double inclusion of this header is an ODR violation
// waiting for the right include order to trigger it.
#include <cstddef>

inline std::size_t answer() { return 42; }
