// lint-selftest-path: src/trace/bad_random.cpp
// lint-selftest-expect: trace-determinism
//
// Deliberate violation: ambient nondeterminism in the trace layer.
// std::random_device seeds differently every run, so a replayed trace
// would diverge from the recording and the deterministic-replay CI
// gate (PR-6) would stop meaning anything.
#include <cstdint>
#include <random>

std::uint64_t jitter_id() {
  std::random_device rd;
  return rd();
}
