// lint-selftest-path: src/tensor/sketch_seed.cpp
// lint-selftest-expect: sketch-determinism
//
// Deliberate violation: ambient nondeterminism in the sketch layer.
// A wall-clock-derived seed makes two builds over the same entries
// differ bitwise, breaking the merge-associativity tests and making
// replayed runs plan differently than the recording.
#include <cstdint>
#include <ctime>

std::uint64_t ambient_seed() {
  return static_cast<std::uint64_t>(time(nullptr));
}
