// lint-selftest-path: src/util/bad_order.cpp
// lint-selftest-aux: src/util/bad_order.hpp
// lint-selftest-expect: include-hygiene
//
// Deliberate violation: this .cpp has a matching own header (the aux
// fixture file) but includes something else first, hiding any
// transitive-include dependency the header may have grown.
#include <vector>

#include "util/bad_order.hpp"

int touch() { return static_cast<int>(std::vector<int>{1}.size()); }
