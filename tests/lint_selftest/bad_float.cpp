// lint-selftest-path: src/core/bad_float.cpp
// lint-selftest-expect: float-accumulate
//
// Deliberate violation: a stray single-precision accumulator in a
// reduce path.  Shard partials accumulate in double with ONE cast back
// to value_t inside reduce_shard_partials(); a float accumulator makes
// sharded results diverge from unsharded ones.
#include <vector>

float sum_partials(const std::vector<float>& partial) {
  float acc = 0.0f;
  for (float v : partial) acc += v;
  return acc;
}
