// lint-selftest-path: src/tensor/stats_helper.cpp
// lint-selftest-expect: none
//
// Scope control: the sketch-determinism rule covers only
// src/tensor/sketch*.{cpp,hpp}.  The same time() call that fires in
// bad_sketch_seed.cpp must stay silent in a sibling src/tensor/ file,
// proving the glob does not leak onto the rest of the tensor layer.
#include <cstdint>
#include <ctime>

std::uint64_t wall_seconds() {
  return static_cast<std::uint64_t>(time(nullptr));
}
