// lint-selftest-path: src/net/bad_cast.cpp
// lint-selftest-expect: net-reinterpret-cast
//
// Deliberate violation: binding a typed span over raw payload bytes
// with reinterpret_cast -- the PR-8 fuzz-caught bug class.  On an odd
// payload offset this is a misaligned read (UB); the wire codec's
// WireReader does the byte-wise, bounds-checked decode instead.
#include <cstdint>
#include <vector>

std::uint32_t first_word(const std::vector<std::uint8_t>& payload) {
  const auto* words = reinterpret_cast<const std::uint32_t*>(payload.data());
  return words[0];
}
