// lint-selftest-path: src/serve/clean.cpp
// lint-selftest-expect: none
//
// The clean control: idiomatic spellings of everything the rules watch
// for.  try_submit with inline-drain fallback, double accumulation,
// and mentions of float / submit( / reinterpret_cast inside comments
// and string literals, which the comment-stripping pass must ignore:
// a float accumulator, pool->submit(task), reinterpret_cast<int*>(p).
#include <functional>
#include <vector>

struct FakePool {
  bool try_submit(std::function<void()>) { return false; }
};

void launch(FakePool* pool) {
  auto task = [] {};
  if (!pool->try_submit(task)) task();  // inline-drain fallback
}

double sum(const std::vector<double>& xs) {
  double acc = 0.0;  // accumulate in double, not float
  const char* note = "reinterpret_cast<const std::uint32_t*> is banned";
  (void)note;
  for (double x : xs) acc += x;
  return acc;
}
