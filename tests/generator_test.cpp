// Tests for the synthetic tensor generators: structural guarantees
// (distinct coordinates, dimension bounds, determinism) and the knobs that
// produce the paper's dataset signatures (power-law tails, singleton
// fibers, singleton slices).
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "tensor/generator.hpp"
#include "tensor/tensor_stats.hpp"
#include "util/error.hpp"

namespace bcsf {
namespace {

PowerLawConfig base_config() {
  PowerLawConfig cfg;
  cfg.dims = {100, 200, 150};
  cfg.target_nnz = 5000;
  cfg.seed = 11;
  return cfg;
}

offset_t count_duplicates(const SparseTensor& t) {
  std::set<std::tuple<index_t, index_t, index_t, index_t>> seen;
  offset_t dups = 0;
  for (offset_t z = 0; z < t.nnz(); ++z) {
    const auto key = std::make_tuple(
        t.coord(0, z), t.order() > 1 ? t.coord(1, z) : 0,
        t.order() > 2 ? t.coord(2, z) : 0, t.order() > 3 ? t.coord(3, z) : 0);
    if (!seen.insert(key).second) ++dups;
  }
  return dups;
}

TEST(PowerLaw, HitsTargetApproximately) {
  const SparseTensor t = generate_power_law(base_config());
  EXPECT_GT(t.nnz(), 4000u);
  EXPECT_LT(t.nnz(), 7000u);
  EXPECT_NO_THROW(t.validate());
}

TEST(PowerLaw, NoDuplicateCoordinates) {
  EXPECT_EQ(count_duplicates(generate_power_law(base_config())), 0u);
}

TEST(PowerLaw, Deterministic) {
  const SparseTensor a = generate_power_law(base_config());
  const SparseTensor b = generate_power_law(base_config());
  ASSERT_EQ(a.nnz(), b.nnz());
  for (offset_t z = 0; z < a.nnz(); ++z) {
    for (index_t m = 0; m < a.order(); ++m) {
      EXPECT_EQ(a.coord(m, z), b.coord(m, z));
    }
    EXPECT_FLOAT_EQ(a.value(z), b.value(z));
  }
}

TEST(PowerLaw, DifferentSeedDiffers) {
  PowerLawConfig cfg = base_config();
  const SparseTensor a = generate_power_law(cfg);
  cfg.seed = 12;
  const SparseTensor b = generate_power_law(cfg);
  bool differs = a.nnz() != b.nnz();
  if (!differs) {
    for (offset_t z = 0; z < a.nnz() && !differs; ++z) {
      differs = a.coord(0, z) != b.coord(0, z);
    }
  }
  EXPECT_TRUE(differs);
}

TEST(PowerLaw, FixedFiberLenOneMakesSingletonFibers) {
  PowerLawConfig cfg = base_config();
  cfg.fixed_fiber_len = 1;
  const SparseTensor t = generate_power_law(cfg);
  const ModeStats s = compute_mode_stats(t, 0);
  EXPECT_DOUBLE_EQ(s.nnz_per_fiber.max, 1.0);
  EXPECT_DOUBLE_EQ(s.nnz_per_fiber.stddev, 0.0);  // the freebase signature
}

TEST(PowerLaw, SingletonSliceFraction) {
  PowerLawConfig cfg = base_config();
  cfg.dims = {4000, 200, 150};
  cfg.singleton_slice_frac = 0.5;
  const SparseTensor t = generate_power_law(cfg);
  const ModeStats s = compute_mode_stats(t, 0);
  // At least the requested share of *nonzeros* sits in singleton slices;
  // as slice counts those dominate.
  EXPECT_GT(s.singleton_slice_fraction, 0.5);
}

TEST(PowerLaw, HeavierSliceTailRaisesStddev) {
  PowerLawConfig light = base_config();
  light.dims = {2000, 400, 300};
  light.target_nnz = 20000;
  light.slice_alpha = 3.0;
  light.max_slice_frac = 0.001;
  PowerLawConfig heavy = light;
  heavy.slice_alpha = 0.3;
  heavy.max_slice_frac = 0.3;
  const ModeStats ls = compute_mode_stats(generate_power_law(light), 0);
  const ModeStats hs = compute_mode_stats(generate_power_law(heavy), 0);
  EXPECT_GT(hs.nnz_per_slice.stddev, 3.0 * ls.nnz_per_slice.stddev);
}

TEST(PowerLaw, SmallSliceDimStillReachesTarget) {
  PowerLawConfig cfg = base_config();
  cfg.dims = {8, 200, 150};  // forces the proportional top-up path
  cfg.target_nnz = 4000;
  const SparseTensor t = generate_power_law(cfg);
  EXPECT_GT(t.nnz(), 3000u);
  EXPECT_EQ(count_duplicates(t), 0u);
}

TEST(PowerLaw, Order2) {
  PowerLawConfig cfg;
  cfg.dims = {50, 80};
  cfg.target_nnz = 800;
  const SparseTensor t = generate_power_law(cfg);
  EXPECT_EQ(t.order(), 2u);
  EXPECT_GT(t.nnz(), 300u);
  EXPECT_EQ(count_duplicates(t), 0u);
}

TEST(PowerLaw, Order4) {
  PowerLawConfig cfg;
  cfg.dims = {40, 30, 20, 10};
  cfg.target_nnz = 2000;
  const SparseTensor t = generate_power_law(cfg);
  EXPECT_EQ(t.order(), 4u);
  EXPECT_GT(t.nnz(), 1200u);
  EXPECT_EQ(count_duplicates(t), 0u);
  EXPECT_NO_THROW(t.validate());
}

TEST(PowerLaw, RejectsBadConfig) {
  PowerLawConfig cfg = base_config();
  cfg.target_nnz = 0;
  EXPECT_THROW(generate_power_law(cfg), Error);
  PowerLawConfig one_dim;
  one_dim.dims = {10};
  one_dim.target_nnz = 5;
  EXPECT_THROW(generate_power_law(one_dim), Error);
}

TEST(Uniform, ExactCountDistinct) {
  const SparseTensor t = generate_uniform({30, 30, 30}, 1000, 3);
  EXPECT_EQ(t.nnz(), 1000u);
  EXPECT_EQ(count_duplicates(t), 0u);
}

TEST(Uniform, RejectsOverfull) {
  EXPECT_THROW(generate_uniform({2, 2}, 5, 1), Error);
}

TEST(Uniform, FullTensorPossible) {
  const SparseTensor t = generate_uniform({2, 2}, 4, 1);
  EXPECT_EQ(t.nnz(), 4u);
}

TEST(LowRank, ValuesReflectRankOneStructure) {
  // Rank-1, no noise: value(i,j,k) = a_i * b_j * c_k, so the value is a
  // product of per-coordinate weights; check multiplicativity via ratios.
  const SparseTensor t = generate_low_rank({20, 20, 20}, 1, 400, 0.0F, 5);
  EXPECT_EQ(t.nnz(), 400u);
  for (offset_t z = 0; z < t.nnz(); ++z) {
    EXPECT_GT(t.value(z), 0.0F);  // nonnegative factors
  }
}

TEST(LowRank, NoiseChangesValuesOnly) {
  const SparseTensor clean = generate_low_rank({15, 15, 15}, 2, 300, 0.0F, 6);
  const SparseTensor noisy = generate_low_rank({15, 15, 15}, 2, 300, 0.1F, 6);
  ASSERT_EQ(clean.nnz(), noisy.nnz());
  for (offset_t z = 0; z < clean.nnz(); ++z) {
    for (index_t m = 0; m < 3; ++m) {
      EXPECT_EQ(clean.coord(m, z), noisy.coord(m, z));
    }
  }
}

}  // namespace
}  // namespace bcsf
