// Parameterized property sweeps over configuration knobs: no matter how
// the device geometry, block capacities, fiber thresholds, F-COO
// partition sizes or HiCOO block bits are chosen, (a) results equal the
// reference and (b) the simulator's accounting invariants hold.
#include <gtest/gtest.h>

#include "bcsf/bcsf.hpp"

namespace bcsf {
namespace {

const SparseTensor& sweep_tensor() {
  static const SparseTensor x = [] {
    PowerLawConfig cfg;
    cfg.dims = {60, 50, 250};
    cfg.target_nnz = 4000;
    cfg.slice_alpha = 0.5;
    cfg.max_slice_frac = 0.2;
    cfg.fiber_alpha = 0.6;
    cfg.max_fiber_len = 200;
    cfg.singleton_slice_frac = 0.1;
    cfg.seed = 301;
    return generate_power_law(cfg);
  }();
  return x;
}

const std::vector<DenseMatrix>& sweep_factors() {
  static const std::vector<DenseMatrix> f =
      make_random_factors(sweep_tensor().dims(), 8, 302);
  return f;
}

const DenseMatrix& sweep_reference() {
  static const DenseMatrix ref =
      mttkrp_reference(sweep_tensor(), 0, sweep_factors());
  return ref;
}

// ---------------------------------------------------------------------------

class DeviceGeometrySweep
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned, double>> {
};

TEST_P(DeviceGeometrySweep, ResultAndInvariantsHold) {
  const auto [sms, warps_per_sm, issue_width] = GetParam();
  DeviceModel dev = DeviceModel::tiny(sms, warps_per_sm);
  dev.sm_issue_width = issue_width;
  const HbcsfTensor h = build_hbcsf(sweep_tensor(), 0);
  const GpuMttkrpResult r = mttkrp_hbcsf_gpu(h, sweep_factors(), dev);
  EXPECT_LT(sweep_reference().max_abs_diff(r.output), 1e-2);
  EXPECT_GT(r.report.cycles, 0.0);
  EXPECT_LE(r.report.achieved_occupancy_pct, 100.0);
  EXPECT_LE(r.report.sm_efficiency_pct, 100.0);
}

INSTANTIATE_TEST_SUITE_P(
    Geometry, DeviceGeometrySweep,
    ::testing::Combine(::testing::Values(1u, 4u, 56u),
                       ::testing::Values(4u, 16u, 64u),
                       ::testing::Values(1.0, 4.0)));

/// More parallel hardware never slows the simulated kernel down.
TEST(DeviceGeometry, MoreSmsNeverSlower) {
  const BcsfTensor b = build_bcsf(sweep_tensor(), 0);
  double prev = std::numeric_limits<double>::infinity();
  for (unsigned sms : {1u, 2u, 8u, 32u}) {
    DeviceModel dev = DeviceModel::tiny(sms, 16);
    const double cycles =
        mttkrp_bcsf_gpu(b, sweep_factors(), dev).report.cycles;
    EXPECT_LE(cycles, prev * 1.05);  // small tolerance for dispatch ties
    prev = cycles;
  }
}

// ---------------------------------------------------------------------------

class BcsfOptionSweep
    : public ::testing::TestWithParam<std::tuple<offset_t, offset_t>> {};

TEST_P(BcsfOptionSweep, SemanticsAndStructure) {
  const auto [threshold, capacity] = GetParam();
  BcsfOptions opts;
  opts.fiber_threshold = threshold;
  opts.block_nnz_capacity = capacity;
  const BcsfTensor b = build_bcsf(sweep_tensor(), 0, opts);
  b.validate();
  const GpuMttkrpResult r =
      mttkrp_bcsf_gpu(b, sweep_factors(), DeviceModel::tiny());
  EXPECT_LT(sweep_reference().max_abs_diff(r.output), 1e-2);
  // Smaller capacity can only produce at least as many blocks.
  EXPECT_GE(b.blocks().size(), b.csf().num_slices());
}

INSTANTIATE_TEST_SUITE_P(Options, BcsfOptionSweep,
                         ::testing::Combine(::testing::Values<offset_t>(1, 8,
                                                                        128,
                                                                        100000),
                                            ::testing::Values<offset_t>(16, 512,
                                                                        100000)));

TEST(BcsfOptionProperty, TighterThresholdMoreSegments) {
  offset_t prev_segments = 0;
  for (offset_t threshold : {100000u, 128u, 16u, 2u, 1u}) {
    BcsfOptions opts;
    opts.fiber_threshold = threshold;
    const BcsfTensor b = build_bcsf(sweep_tensor(), 0, opts);
    EXPECT_GE(b.num_fiber_segments(), prev_segments);
    prev_segments = b.num_fiber_segments();
  }
  // threshold 1: one segment per nonzero.
  EXPECT_EQ(prev_segments, sweep_tensor().nnz());
}

// ---------------------------------------------------------------------------

class FcooPartitionSweep : public ::testing::TestWithParam<offset_t> {};

TEST_P(FcooPartitionSweep, SemanticsHold) {
  FcooOptions opts;
  opts.partition_size = GetParam();
  const FcooTensor f = build_fcoo(sweep_tensor(), 0, opts);
  f.validate();
  const GpuMttkrpResult r =
      mttkrp_fcoo_gpu(f, sweep_factors(), DeviceModel::tiny());
  EXPECT_LT(sweep_reference().max_abs_diff(r.output), 1e-2);
}

INSTANTIATE_TEST_SUITE_P(Partitions, FcooPartitionSweep,
                         ::testing::Values<offset_t>(1, 7, 64, 4096, 1 << 20));

// ---------------------------------------------------------------------------

class HicooBitsSweep : public ::testing::TestWithParam<index_t> {};

TEST_P(HicooBitsSweep, SemanticsHold) {
  HicooOptions opts;
  opts.block_bits = GetParam();
  const HicooTensor h = build_hicoo(sweep_tensor(), opts);
  h.validate();
  const DenseMatrix out = mttkrp_hicoo_cpu(h, 0, sweep_factors());
  EXPECT_LT(sweep_reference().max_abs_diff(out), 1e-2);
}

INSTANTIATE_TEST_SUITE_P(Bits, HicooBitsSweep,
                         ::testing::Values<index_t>(1, 3, 5, 7, 8));

// ---------------------------------------------------------------------------

class ThreadsPerBlockSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(ThreadsPerBlockSweep, SemanticsHold) {
  DeviceModel dev = DeviceModel::p100();
  dev.threads_per_block = GetParam();
  const HbcsfTensor h = build_hbcsf(sweep_tensor(), 0);
  const GpuMttkrpResult r = mttkrp_hbcsf_gpu(h, sweep_factors(), dev);
  EXPECT_LT(sweep_reference().max_abs_diff(r.output), 1e-2);
}

INSTANTIATE_TEST_SUITE_P(Blocks, ThreadsPerBlockSweep,
                         ::testing::Values(32u, 128u, 512u, 1024u));

}  // namespace
}  // namespace bcsf
