// Racing writers on the disjoint-output path (DESIGN.md §8).
//
// The disjoint-output execution has K shard tasks writing CONCURRENTLY
// into one shared DenseMatrix with no lock and no reduce -- correct only
// because each shard's owned row window is provably private.  This suite
// carries the `concurrency` ctest label so CI replays exactly that claim
// under ThreadSanitizer, at both layers:
//
//   * plan layer: concurrent execute() calls on one ShardedPlan over one
//     pool (shared scratch arena, shared inner plans, per-call shared
//     outputs);
//   * serving layer: partition-mode requests taking the disjoint path
//     (reduce_path == "disjoint") racing non-partition-mode merges,
//     FIT scalars, and shard-routed updates.
//
// Values ride the power-of-two grid of serve_test_util.hpp, so every
// response must also match the sequential reference BITWISE -- a torn or
// misrouted write is a hard mismatch even when TSan is not watching.
#include <gtest/gtest.h>

#include <atomic>
#include <utility>
#include <vector>

#include "bcsf/bcsf.hpp"
#include "serve_test_util.hpp"

namespace bcsf {
namespace {

using serve_test::append_nonzeros;
using serve_test::bitwise_equal;
using serve_test::exact_batch;
using serve_test::exact_factors;
using serve_test::exact_tensor;
using serve_test::run_threads;

constexpr std::uint64_t kSeed = 7100;

TEST(DisjointRace, PlanLevelRacingWritersStayExact) {
  const SparseTensor x = exact_tensor({64, 24, 20}, 6400, kSeed);
  const auto factors = exact_factors(x.dims(), 8, kSeed + 1);
  const auto vectors = exact_factors(x.dims(), 1, kSeed + 2);
  const DenseMatrix mttkrp_ref = mttkrp_reference(x, 0, *factors);
  const DenseMatrix ttv_ref = ttv_reference(x, 0, *vectors);

  ThreadPool pool(4);
  PlanOptions opts;
  opts.device = DeviceModel::tiny();
  opts.sharding.shards = 4;
  opts.sharding.shard_format = "coo";
  opts.sharding.pool = &pool;
  const PlanPtr plan = FormatRegistry::instance().create("sharded", x, 0, opts);
  auto* sharded = dynamic_cast<const ShardedPlan*>(plan.get());
  ASSERT_NE(sharded, nullptr);
  ASSERT_TRUE(sharded->disjoint_output(0))
      << "fixture must actually exercise the disjoint writers";

  // Six threads x eight calls: every call fans four racing window-writers
  // into its own shared output, all calls share the plan, pool, and
  // scratch arena.
  std::atomic<int> mismatches{0};
  run_threads(6, [&](int tid) {
    for (int i = 0; i < 8; ++i) {
      if ((tid + i) % 3 == 2) {
        OpRequest ttv;
        ttv.kind = OpKind::kTtv;
        ttv.mode = 0;
        ttv.factors = vectors.get();
        if (!bitwise_equal(ttv_ref, plan->execute(ttv).output)) ++mismatches;
      } else {
        if (!bitwise_equal(mttkrp_ref, plan->run(*factors).output)) {
          ++mismatches;
        }
      }
    }
  });
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(DisjointRace, ServeReportsReducePathAndOverheadTimings) {
  const std::vector<index_t> dims{48, 20, 16};
  const SparseTensor x = exact_tensor(dims, 2400, kSeed + 10);
  const auto factors = exact_factors(dims, 4, kSeed + 11);
  const auto vectors = exact_factors(dims, 1, kSeed + 12);
  const auto lambda = std::make_shared<const std::vector<value_t>>(4, 0.5F);

  ServeOptions opts;
  opts.workers = 4;
  opts.shards = 4;
  opts.enable_upgrade = false;
  opts.plan.device = DeviceModel::tiny();
  TensorOpService service(opts);
  service.register_tensor("t", share_tensor(SparseTensor(x)));

  auto make = [&](index_t mode, OpKind op) {
    ServeRequest r;
    r.tensor = "t";
    r.mode = mode;
    r.op = op;
    r.factors = op == OpKind::kTtv ? vectors : factors;
    if (op == OpKind::kFit) r.lambda = lambda;
    return r;
  };

  std::vector<ServeRequest> batch;
  std::vector<std::pair<index_t, OpKind>> meta;
  for (index_t mode = 0; mode < 3; ++mode) {
    for (OpKind op : kAllOps) {
      batch.push_back(make(mode, op));
      meta.emplace_back(mode, op);
    }
  }
  auto futures = service.submit_batch(std::move(batch));
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const auto [mode, op] = meta[i];
    SCOPED_TRACE(testing::Message() << "mode=" << mode << " op="
                                    << static_cast<int>(op));
    const ServeResponse r = futures[i].get();
    EXPECT_EQ(r.shards, 4u);
    // Partition-mode matrix ops skip the reduce; everything else merges.
    const bool disjoint = mode == 0 && op != OpKind::kFit;
    EXPECT_EQ(r.reduce_path, disjoint ? "disjoint" : "merge");
    EXPECT_GE(r.fanout_ms, 0.0);
    EXPECT_GE(r.reduce_ms, 0.0);
    switch (op) {
      case OpKind::kMttkrp:
        EXPECT_TRUE(
            bitwise_equal(mttkrp_reference(x, mode, *factors), r.output));
        break;
      case OpKind::kTtv:
        EXPECT_TRUE(bitwise_equal(ttv_reference(x, mode, *vectors), r.output));
        break;
      case OpKind::kFit:
        EXPECT_EQ(r.scalar, fit_inner_reference(x, *factors, lambda.get()));
        break;
    }
  }

  // A monolithic tensor never fans out: its one-shard fast path reports
  // "single" and zero reduce time by construction.
  ServeOptions mono = opts;
  mono.shards = 1;
  TensorOpService single(mono);
  single.register_tensor("t", share_tensor(SparseTensor(x)));
  ServeRequest req = make(0, OpKind::kMttkrp);
  req.tensor = "t";
  const ServeResponse r = single.submit(std::move(req)).get();
  EXPECT_EQ(r.reduce_path, "single");
  EXPECT_TRUE(bitwise_equal(mttkrp_reference(x, 0, *factors), r.output));
}

TEST(DisjointRace, RacingDisjointQueriesUpdatesAndMerges) {
  const std::vector<index_t> dims{32, 24, 16};
  SparseTensor oracle = exact_tensor(dims, 2000, kSeed + 20);
  const auto factors = exact_factors(dims, 4, kSeed + 21);

  ServeOptions opts;
  opts.workers = 4;
  opts.shards = 4;
  opts.upgrade_format = "bcsf";
  opts.upgrade_threshold = 6.0;
  opts.plan.device = DeviceModel::tiny();
  TensorOpService service(opts);
  service.register_tensor("t", share_tensor(SparseTensor(oracle)));

  auto make = [&](index_t mode) {
    ServeRequest r;
    r.tensor = "t";
    r.mode = mode;
    r.op = OpKind::kMttkrp;
    r.factors = factors;
    return r;
  };

  // Disjoint-path queries (mode 0), merge-path queries (mode 1), and
  // multi-shard updates race: TSan watches the shared-output window
  // writes interleave with generation swaps and arena recycling.
  std::atomic<bool> bad{false};
  std::vector<SparseTensor> applied[2];
  run_threads(6, [&](int tid) {
    std::mt19937 rng(20'000 + tid);
    if (tid < 2) {
      for (int i = 0; i < 8; ++i) {
        SparseTensor batch = exact_batch(dims, 48, rng);
        applied[tid].push_back(batch);
        service.apply_updates("t", std::move(batch));
      }
    } else {
      const index_t mode = tid % 2 == 0 ? 0 : 1;
      for (int i = 0; i < 10; ++i) {
        const ServeResponse r = service.submit(make(mode)).get();
        const char* want = mode == 0 ? "disjoint" : "merge";
        if (r.reduce_path != want) bad = true;
        if (r.output.rows() != dims[mode] || r.output.cols() != 4) bad = true;
      }
    }
  });
  EXPECT_FALSE(bad.load()) << "reduce_path or shape drifted under race";
  service.wait_idle();

  // Quiesced exactness: addition commutes, so the accumulated tensor is
  // the only admissible final state on BOTH paths.
  for (const auto& log : applied) {
    for (const SparseTensor& batch : log) append_nonzeros(oracle, batch);
  }
  for (index_t mode = 0; mode < 3; ++mode) {
    const ServeResponse r = service.submit(make(mode)).get();
    EXPECT_TRUE(
        bitwise_equal(mttkrp_reference(oracle, mode, *factors), r.output));
  }
}

}  // namespace
}  // namespace bcsf
