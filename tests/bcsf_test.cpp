// Tests for B-CSF (the paper's first contribution): fbr-split and
// slc-split structure, semantics preservation, and the block schedule
// invariants.
#include <gtest/gtest.h>

#include "core/factors.hpp"
#include "formats/bcsf.hpp"
#include "kernels/mttkrp.hpp"
#include "tensor/generator.hpp"
#include "util/error.hpp"

namespace bcsf {
namespace {

SparseTensor heavy_fiber_tensor() {
  // One slice with a single 40-nonzero fiber plus a few small slices:
  // exercises both splits with hand-checkable numbers.
  SparseTensor t({5, 5, 64});
  std::vector<index_t> c(3);
  for (index_t k = 0; k < 40; ++k) {
    c = {0, 0, k};
    t.push_back(c, 1.0F);
  }
  for (index_t i = 1; i < 5; ++i) {
    c = {i, 1, static_cast<index_t>(i)};
    t.push_back(c, 2.0F);
  }
  return t;
}

TEST(Bcsf, FiberSplitRespectsThreshold) {
  BcsfOptions opts;
  opts.fiber_threshold = 16;
  const BcsfTensor b = build_bcsf(heavy_fiber_tensor(), 0, opts);
  EXPECT_NO_THROW(b.validate());
  // 40 nonzeros with threshold 16 -> segments of 16, 16, 8.
  EXPECT_EQ(b.split_fiber_count(), 1u);
  EXPECT_EQ(b.num_fiber_segments(), 3u + 4u);  // 3 segments + 4 small fibers
  const index_t fiber_level = b.csf().node_levels() - 1;
  for (offset_t f = 0; f < b.num_fiber_segments(); ++f) {
    EXPECT_LE(b.csf().child_end(fiber_level, f) -
                  b.csf().child_begin(fiber_level, f),
              16u);
  }
}

TEST(Bcsf, SegmentsRepeatFiberIndex) {
  BcsfOptions opts;
  opts.fiber_threshold = 16;
  const BcsfTensor b = build_bcsf(heavy_fiber_tensor(), 0, opts);
  const index_t fiber_level = b.csf().node_levels() - 1;
  // The three segments of the heavy fiber all carry j = 0.
  EXPECT_EQ(b.csf().node_index(fiber_level, 0), 0u);
  EXPECT_EQ(b.csf().node_index(fiber_level, 1), 0u);
  EXPECT_EQ(b.csf().node_index(fiber_level, 2), 0u);
}

TEST(Bcsf, SliceSplitProducesAtomicBlocks) {
  BcsfOptions opts;
  opts.fiber_threshold = 8;
  opts.block_nnz_capacity = 16;
  const BcsfTensor b = build_bcsf(heavy_fiber_tensor(), 0, opts);
  EXPECT_NO_THROW(b.validate());
  EXPECT_EQ(b.split_slice_count(), 1u);  // only the 40-nonzero slice
  offset_t atomic_blocks = 0;
  for (const auto& blk : b.blocks()) {
    if (blk.atomic_output) {
      ++atomic_blocks;
      EXPECT_EQ(blk.slice, 0u);
    }
  }
  EXPECT_GE(atomic_blocks, 2u);
}

TEST(Bcsf, NoSplitMeansOneBlockPerSlice) {
  BcsfOptions opts;
  opts.fiber_split = false;
  opts.slice_split = false;
  const BcsfTensor b = build_bcsf(heavy_fiber_tensor(), 0, opts);
  EXPECT_EQ(b.blocks().size(), b.csf().num_slices());
  EXPECT_EQ(b.split_fiber_count(), 0u);
  EXPECT_EQ(b.split_slice_count(), 0u);
  for (const auto& blk : b.blocks()) EXPECT_FALSE(blk.atomic_output);
}

TEST(Bcsf, SplittingPreservesMttkrpSemantics) {
  PowerLawConfig cfg;
  cfg.dims = {40, 50, 200};
  cfg.target_nnz = 6000;
  cfg.fiber_alpha = 0.5;
  cfg.max_fiber_len = 150;
  cfg.seed = 31;
  const SparseTensor x = generate_power_law(cfg);
  const auto factors = make_random_factors(x.dims(), 8, 77);
  const DeviceModel device = DeviceModel::tiny();

  for (index_t mode = 0; mode < 3; ++mode) {
    const DenseMatrix ref = mttkrp_reference(x, mode, factors);
    for (offset_t threshold : {4u, 32u, 1024u}) {
      BcsfOptions opts;
      opts.fiber_threshold = threshold;
      opts.block_nnz_capacity = 64;
      const BcsfTensor b = build_bcsf(x, mode, opts);
      b.validate();
      const GpuMttkrpResult r = mttkrp_bcsf_gpu(b, factors, device);
      EXPECT_LT(ref.max_abs_diff(r.output), 2e-2)
          << "mode " << mode << " threshold " << threshold;
    }
  }
}

TEST(Bcsf, BlocksPartitionNonzeros) {
  const BcsfTensor b = build_bcsf(heavy_fiber_tensor(), 0, BcsfOptions{});
  offset_t covered = 0;
  for (const auto& blk : b.blocks()) covered += blk.nnz;
  EXPECT_EQ(covered, b.nnz());
}

TEST(Bcsf, FiberCoordsMatchTreeWalk) {
  PowerLawConfig cfg;
  cfg.dims = {20, 15, 10, 25};
  cfg.target_nnz = 1500;
  cfg.seed = 32;
  const SparseTensor x = generate_power_law(cfg);
  const BcsfTensor b = build_bcsf(x, 2, BcsfOptions{});
  const CsfTensor& csf = b.csf();
  const index_t fiber_level = csf.node_levels() - 1;

  // Walk the tree and check each fiber's recorded ancestor coordinates.
  for (offset_t s = 0; s < csf.num_slices(); ++s) {
    offset_t n1_begin = csf.child_begin(0, s);
    offset_t n1_end = csf.child_end(0, s);
    for (offset_t n1 = n1_begin; n1 < n1_end; ++n1) {
      for (offset_t f = csf.child_begin(1, n1); f < csf.child_end(1, n1);
           ++f) {
        EXPECT_EQ(b.fiber_coord(0, f), csf.node_index(0, s));
        EXPECT_EQ(b.fiber_coord(1, f), csf.node_index(1, n1));
        EXPECT_EQ(b.fiber_coord(fiber_level, f),
                  csf.node_index(fiber_level, f));
      }
    }
  }
}

TEST(Bcsf, Order4SplitKeepsParentPointersConsistent) {
  PowerLawConfig cfg;
  cfg.dims = {10, 8, 12, 300};
  cfg.target_nnz = 3000;
  cfg.fiber_alpha = 0.4;
  cfg.max_fiber_len = 250;
  cfg.seed = 33;
  const SparseTensor x = generate_power_law(cfg);
  BcsfOptions opts;
  opts.fiber_threshold = 16;
  const BcsfTensor b = build_bcsf(x, 0, opts);
  EXPECT_NO_THROW(b.validate());  // validates the whole remapped tree
  EXPECT_GT(b.split_fiber_count(), 0u);

  const auto factors = make_random_factors(x.dims(), 4, 55);
  const DenseMatrix ref = mttkrp_reference(x, 0, factors);
  const GpuMttkrpResult r = mttkrp_bcsf_gpu(b, factors, DeviceModel::tiny());
  EXPECT_LT(ref.max_abs_diff(r.output), 2e-2);
}

TEST(Bcsf, RejectsZeroThreshold) {
  BcsfOptions opts;
  opts.fiber_threshold = 0;
  EXPECT_THROW(build_bcsf(heavy_fiber_tensor(), 0, opts), Error);
  BcsfOptions opts2;
  opts2.block_nnz_capacity = 0;
  EXPECT_THROW(build_bcsf(heavy_fiber_tensor(), 0, opts2), Error);
}

TEST(Bcsf, EmptyTensor) {
  const SparseTensor t({3, 3, 3});
  const BcsfTensor b = build_bcsf(t, 0);
  EXPECT_EQ(b.blocks().size(), 0u);
  EXPECT_NO_THROW(b.validate());
}

}  // namespace
}  // namespace bcsf
