// Tests for the dense linear algebra surrounding CPD-ALS: Gram, Hadamard,
// Khatri-Rao, SPD solves and the sparse CP fit identity.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/dense_matrix.hpp"
#include "linalg/ops.hpp"
#include "linalg/spd_solve.hpp"
#include "tensor/generator.hpp"
#include "util/error.hpp"

namespace bcsf {
namespace {

DenseMatrix from_rows(std::initializer_list<std::initializer_list<value_t>> rows) {
  const auto r = static_cast<index_t>(rows.size());
  const auto c = static_cast<rank_t>(rows.begin()->size());
  DenseMatrix m(r, c);
  index_t i = 0;
  for (const auto& row : rows) {
    rank_t j = 0;
    for (value_t v : row) m(i, j++) = v;
    ++i;
  }
  return m;
}

TEST(DenseMatrix, RowAccessAndFill) {
  DenseMatrix m(3, 4, 1.5F);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_FLOAT_EQ(m(2, 3), 1.5F);
  m.row(1)[2] = 7.0F;
  EXPECT_FLOAT_EQ(m(1, 2), 7.0F);
  m.fill(0.0F);
  EXPECT_DOUBLE_EQ(m.frob_norm(), 0.0);
}

TEST(DenseMatrix, MaxAbsDiffChecksShape) {
  DenseMatrix a(2, 2);
  DenseMatrix b(2, 3);
  EXPECT_THROW((void)a.max_abs_diff(b), Error);
}

TEST(DenseMatrix, RandomizeDeterministic) {
  DenseMatrix a(5, 5);
  DenseMatrix b(5, 5);
  a.randomize(9);
  b.randomize(9);
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 0.0);
}

TEST(Ops, GramKnown) {
  const DenseMatrix a = from_rows({{1, 2}, {3, 4}, {5, 6}});
  const DenseMatrix g = gram(a);
  EXPECT_FLOAT_EQ(g(0, 0), 35.0F);   // 1+9+25
  EXPECT_FLOAT_EQ(g(0, 1), 44.0F);   // 2+12+30
  EXPECT_FLOAT_EQ(g(1, 0), 44.0F);   // symmetric
  EXPECT_FLOAT_EQ(g(1, 1), 56.0F);   // 4+16+36
}

TEST(Ops, HadamardKnown) {
  const DenseMatrix a = from_rows({{1, 2}, {3, 4}});
  const DenseMatrix b = from_rows({{5, 6}, {7, 8}});
  const DenseMatrix h = hadamard(a, b);
  EXPECT_FLOAT_EQ(h(0, 0), 5.0F);
  EXPECT_FLOAT_EQ(h(1, 1), 32.0F);
  EXPECT_THROW(hadamard(a, DenseMatrix(3, 2)), Error);
}

TEST(Ops, KhatriRaoKnown) {
  const DenseMatrix a = from_rows({{1, 2}, {3, 4}});
  const DenseMatrix b = from_rows({{5, 6}, {7, 8}, {9, 10}});
  const DenseMatrix kr = khatri_rao(a, b);
  ASSERT_EQ(kr.rows(), 6u);
  ASSERT_EQ(kr.cols(), 2u);
  // Row (i=0, j=0) = a(0,:) * b(0,:) = (5, 12); row (1,2) = (27, 40).
  EXPECT_FLOAT_EQ(kr(0, 0), 5.0F);
  EXPECT_FLOAT_EQ(kr(0, 1), 12.0F);
  EXPECT_FLOAT_EQ(kr(5, 0), 27.0F);
  EXPECT_FLOAT_EQ(kr(5, 1), 40.0F);
}

TEST(Ops, MatmulKnown) {
  const DenseMatrix a = from_rows({{1, 2}, {3, 4}});
  const DenseMatrix b = from_rows({{5, 6}, {7, 8}});
  const DenseMatrix c = matmul(a, b);
  EXPECT_FLOAT_EQ(c(0, 0), 19.0F);
  EXPECT_FLOAT_EQ(c(1, 1), 50.0F);
}

TEST(Ops, GramHadamardExceptSkipsMode) {
  std::vector<DenseMatrix> factors;
  factors.push_back(from_rows({{2, 0}, {0, 2}}));  // gram = 4I
  factors.push_back(from_rows({{3, 0}, {0, 3}}));  // gram = 9I
  factors.push_back(from_rows({{5, 0}, {0, 5}}));  // gram = 25I
  const DenseMatrix v = gram_hadamard_except(factors, 1);
  EXPECT_FLOAT_EQ(v(0, 0), 100.0F);  // 4 * 25
  EXPECT_FLOAT_EQ(v(0, 1), 0.0F);
}

TEST(Ops, NormalizeColumns) {
  DenseMatrix a = from_rows({{3, 0}, {4, 0}});
  const auto lambda = normalize_columns(a);
  ASSERT_EQ(lambda.size(), 2u);
  EXPECT_FLOAT_EQ(lambda[0], 5.0F);
  EXPECT_FLOAT_EQ(lambda[1], 0.0F);  // zero column untouched
  EXPECT_FLOAT_EQ(a(0, 0), 0.6F);
  EXPECT_FLOAT_EQ(a(1, 0), 0.8F);
}

TEST(SpdSolve, CholeskyKnown) {
  const DenseMatrix v = from_rows({{4, 2}, {2, 3}});
  DenseMatrix lower;
  ASSERT_TRUE(cholesky(v, lower));
  EXPECT_FLOAT_EQ(lower(0, 0), 2.0F);
  EXPECT_FLOAT_EQ(lower(1, 0), 1.0F);
  EXPECT_NEAR(lower(1, 1), std::sqrt(2.0), 1e-6);
}

TEST(SpdSolve, CholeskyRejectsIndefinite) {
  const DenseMatrix v = from_rows({{1, 2}, {2, 1}});  // eigenvalues 3, -1
  DenseMatrix lower;
  EXPECT_FALSE(cholesky(v, lower));
}

TEST(SpdSolve, SolveRightRecoversKnownSolution) {
  const DenseMatrix v = from_rows({{4, 2}, {2, 3}});
  const DenseMatrix x_true = from_rows({{1, 2}, {-1, 0.5}, {0, 3}});
  const DenseMatrix b = matmul(x_true, v);  // B = X V
  const DenseMatrix x = solve_spd_right(v, b);
  EXPECT_LT(x.max_abs_diff(x_true), 1e-4);
}

TEST(SpdSolve, InverseTimesSelfIsIdentity) {
  DenseMatrix v(4, 4);
  v.randomize(3, 0.1F, 1.0F);
  DenseMatrix spd = gram(v);  // SPD with probability 1
  for (rank_t i = 0; i < 4; ++i) spd(i, i) += 1.0F;
  const DenseMatrix inv = spd_inverse(spd);
  const DenseMatrix prod = matmul(spd, inv);
  for (rank_t i = 0; i < 4; ++i) {
    for (rank_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(prod(i, j), i == j ? 1.0F : 0.0F, 1e-3);
    }
  }
}

TEST(SpdSolve, SingularFallsBackToJitter) {
  // Rank-deficient Gram (duplicate columns): plain Cholesky fails, the
  // regularized path must still return finite numbers.
  const DenseMatrix a = from_rows({{1, 1}, {2, 2}, {3, 3}});
  const DenseMatrix v = gram(a);
  const DenseMatrix b = from_rows({{1, 1}});
  const DenseMatrix x = solve_spd_right(v, b);
  EXPECT_TRUE(std::isfinite(x(0, 0)));
  EXPECT_TRUE(std::isfinite(x(0, 1)));
}

TEST(Fit, ExactModelHasFitOne) {
  // Build tensor whose entries are exactly a rank-2 CP model sampled at
  // random coordinates; cp_fit with those factors must be ~1.
  const rank_t rank = 2;
  std::vector<DenseMatrix> factors;
  for (index_t m = 0; m < 3; ++m) {
    DenseMatrix f(10, rank);
    f.randomize(40 + m, 0.1F, 1.0F);
    factors.push_back(std::move(f));
  }
  SparseTensor x = generate_uniform({10, 10, 10}, 300, 8);
  for (offset_t z = 0; z < x.nnz(); ++z) {
    value_t acc = 0.0F;
    for (rank_t r = 0; r < rank; ++r) {
      acc += factors[0](x.coord(0, z), r) * factors[1](x.coord(1, z), r) *
             factors[2](x.coord(2, z), r);
    }
    x.value(z) = acc;
  }
  const std::vector<value_t> lambda(rank, 1.0F);
  // The fit identity only reaches 1 when the model is zero off-support;
  // restrict the check to the inner-product consistency instead.
  const double inner = cp_inner_product(x, factors, lambda);
  const double norm2 = x.norm() * x.norm();
  EXPECT_NEAR(inner, norm2, norm2 * 1e-3);
}

TEST(Fit, ZeroFactorsGiveZeroFit) {
  SparseTensor x = generate_uniform({5, 5, 5}, 20, 9);
  std::vector<DenseMatrix> factors;
  for (index_t m = 0; m < 3; ++m) factors.emplace_back(5, 2);
  const std::vector<value_t> lambda(2, 1.0F);
  EXPECT_NEAR(cp_fit(x, factors, lambda), 0.0, 1e-6);
}

}  // namespace
}  // namespace bcsf
