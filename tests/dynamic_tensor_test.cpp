// Unit tests for DynamicSparseTensor (DESIGN.md §6): versioned
// snapshots over an immutable base plus append-only delta chunks, the
// additive-update semantics, merge/coalesce, compaction via
// replace_base, and the linearity contract of mttkrp_delta_accumulate
// that the serving layer's base + delta decomposition rests on.
#include <gtest/gtest.h>

#include <random>
#include <utility>
#include <vector>

#include "bcsf/bcsf.hpp"
#include "serve_test_util.hpp"

namespace bcsf {
namespace {

using serve_test::ref_scale;

SparseTensor base_tensor() { return generate_uniform({20, 25, 30}, 1500, 5); }

/// One-nonzero update batch helper.
SparseTensor batch(const std::vector<index_t>& dims,
                   std::vector<index_t> coords, value_t value) {
  SparseTensor b(dims);
  b.push_back(coords, value);
  return b;
}

TEST(DynamicSparseTensor, VersionsAndSnapshotsAreImmutable) {
  DynamicSparseTensor dyn(share_tensor(base_tensor()));
  EXPECT_EQ(dyn.version(), 0u);
  EXPECT_EQ(dyn.delta_nnz(), 0u);

  const TensorSnapshot snap0 = dyn.snapshot();
  EXPECT_EQ(snap0.version, 0u);
  EXPECT_EQ(snap0.base_version, 0u);
  EXPECT_EQ(snap0.delta_nnz, 0u);
  EXPECT_EQ(snap0.delta_fraction(), 0.0);

  EXPECT_EQ(dyn.apply(batch(dyn.dims(), {1, 2, 3}, 2.0F)), 1u);
  EXPECT_EQ(dyn.apply(batch(dyn.dims(), {4, 5, 6}, -1.0F)), 2u);
  EXPECT_EQ(dyn.delta_nnz(), 2u);

  // The old snapshot still describes version 0.
  EXPECT_EQ(snap0.deltas.size(), 0u);
  EXPECT_EQ(snap0.nnz(), snap0.base->nnz());

  const TensorSnapshot snap2 = dyn.snapshot();
  EXPECT_EQ(snap2.version, 2u);
  EXPECT_EQ(snap2.deltas.size(), 2u);
  EXPECT_EQ(snap2.delta_nnz, 2u);
  EXPECT_EQ(snap2.base.get(), snap0.base.get()) << "base must be shared";

  // Empty batches are a no-op, not a version bump.
  EXPECT_EQ(dyn.apply(SparseTensor(dyn.dims())), 2u);
}

TEST(DynamicSparseTensor, RejectsMismatchedDims) {
  DynamicSparseTensor dyn(share_tensor(base_tensor()));
  EXPECT_THROW(dyn.apply(SparseTensor({20, 25})), Error);
  EXPECT_THROW(dyn.apply(SparseTensor({20, 25, 31})), Error);
  EXPECT_THROW(
      dyn.replace_base(share_tensor(SparseTensor({9, 9, 9})), 0), Error);
  EXPECT_THROW(dyn.replace_base(share_tensor(base_tensor()), 7), Error)
      << "future version must be rejected";
}

TEST(DynamicSparseTensor, MergedCoalescesAdditiveDuplicates) {
  SparseTensor base({4, 4, 4});
  base.push_back(std::vector<index_t>{0, 0, 0}, 1.0F);
  base.push_back(std::vector<index_t>{1, 1, 1}, 2.0F);
  DynamicSparseTensor dyn(share_tensor(std::move(base)));
  dyn.apply(batch(dyn.dims(), {0, 0, 0}, 3.0F));   // hits existing coord
  dyn.apply(batch(dyn.dims(), {2, 2, 2}, -1.0F));  // new coord

  const TensorSnapshot snap = dyn.snapshot();
  EXPECT_EQ(snap.nnz(), 4u);

  const SparseTensor concat = snap.merged(/*coalesce=*/false);
  EXPECT_EQ(concat.nnz(), 4u);

  const SparseTensor merged = snap.merged(/*coalesce=*/true);
  EXPECT_EQ(merged.nnz(), 3u) << "duplicate coordinate must coalesce";
  // Sorted identity order: (0,0,0) first, with 1 + 3 summed.
  EXPECT_EQ(merged.coord(0, 0), 0u);
  EXPECT_FLOAT_EQ(merged.value(0), 4.0F);
}

TEST(DynamicSparseTensor, ReplaceBaseKeepsChunksAppliedAfterCapture) {
  DynamicSparseTensor dyn(share_tensor(base_tensor()));
  dyn.apply(batch(dyn.dims(), {1, 1, 1}, 1.0F));  // version 1
  dyn.apply(batch(dyn.dims(), {2, 2, 2}, 1.0F));  // version 2

  const TensorSnapshot captured = dyn.snapshot();  // version 2
  dyn.apply(batch(dyn.dims(), {3, 3, 3}, 1.0F));   // version 3: post-capture

  TensorPtr new_base = share_tensor(captured.merged(/*coalesce=*/true));
  const std::uint64_t v = dyn.replace_base(new_base, captured.version);
  EXPECT_EQ(v, 4u);

  const TensorSnapshot after = dyn.snapshot();
  EXPECT_EQ(after.base_version, 4u);
  EXPECT_EQ(after.base.get(), new_base.get());
  ASSERT_EQ(after.deltas.size(), 1u) << "post-capture chunk must survive";
  EXPECT_EQ(after.delta_nnz, 1u);
  EXPECT_EQ(after.deltas[0]->coord(0, 0), 3u);
  EXPECT_EQ(after.nnz(), new_base->nnz() + 1);
}

// The decomposition the serving layer relies on: base-plan result plus
// mttkrp_delta_accumulate over the chunks equals the reference MTTKRP of
// the merged tensor, for every mode.
TEST(DynamicSparseTensor, DeltaAccumulateMatchesMergedReference) {
  DynamicSparseTensor dyn(share_tensor(base_tensor()));
  SparseTensor updates(dyn.dims());
  SparseTensor more(dyn.dims());
  {
    std::mt19937 rng(99);
    std::vector<index_t> coords(3);
    for (int i = 0; i < 400; ++i) {
      for (int m = 0; m < 3; ++m) {
        coords[m] = static_cast<index_t>(rng() % dyn.dims()[m]);
      }
      (i % 2 ? updates : more)
          .push_back(coords, static_cast<value_t>(1 + rng() % 3));
    }
  }
  dyn.apply(std::move(updates));
  dyn.apply(std::move(more));

  const TensorSnapshot snap = dyn.snapshot();
  const SparseTensor merged = snap.merged(/*coalesce=*/true);
  const auto factors = make_random_factors(merged.dims(), 8, 31);

  for (index_t mode = 0; mode < merged.order(); ++mode) {
    SCOPED_TRACE("mode " + std::to_string(mode));
    const DenseMatrix expected = mttkrp_reference(merged, mode, factors);
    // Batch overload (what the service uses: one promote/demote over all
    // chunks) and per-chunk chaining must both land within tolerance.
    DenseMatrix composed = mttkrp_reference(*snap.base, mode, factors);
    mttkrp_delta_accumulate(snap.deltas, mode, factors, composed);
    EXPECT_LT(expected.max_abs_diff(composed), 1e-4 * ref_scale(expected));

    DenseMatrix chained = mttkrp_reference(*snap.base, mode, factors);
    for (const TensorPtr& chunk : snap.deltas) {
      mttkrp_delta_accumulate(*chunk, mode, factors, chained);
    }
    EXPECT_LT(expected.max_abs_diff(chained), 1e-4 * ref_scale(expected));
  }
}

TEST(DynamicSparseTensor, DeltaAccumulateValidatesShapes) {
  const std::vector<index_t> dims = {6, 7, 8};
  const auto factors = make_random_factors(dims, 4, 1);
  SparseTensor delta(dims);
  delta.push_back(std::vector<index_t>{1, 2, 3}, 1.0F);

  DenseMatrix ok(6, 4);
  mttkrp_delta_accumulate(delta, 0, factors, ok);  // fits: no throw

  DenseMatrix wrong_rows(5, 4);
  EXPECT_THROW(mttkrp_delta_accumulate(delta, 0, factors, wrong_rows), Error);
  DenseMatrix wrong_rank(6, 3);
  EXPECT_THROW(mttkrp_delta_accumulate(delta, 0, factors, wrong_rank), Error);
  EXPECT_THROW(mttkrp_delta_accumulate(delta, 3, factors, ok), Error);
}

}  // namespace
}  // namespace bcsf
