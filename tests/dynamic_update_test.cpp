// Dynamic-update correctness for MttkrpService (DESIGN.md §6): queries
// racing apply_updates and background compaction must return a result
// BITWISE-equal to the reference MTTKRP of the merged tensor at the
// snapshot version the response names -- a version the service held
// while the query was in flight.
//
// Bitwise comparison across formats and racy interleavings is possible
// because every input lives on a coarse power-of-two grid: tensor and
// update values are small integers, factor entries are multiples of 0.5
// with |entry| <= 1.  Each product then carries <= 8 mantissa bits and
// every partial sum stays far below 2^18, so ALL float and double
// arithmetic in every kernel is exact -- no rounding anywhere, hence any
// accumulation order, any base/delta split, and any coalescing produce
// the identical bit pattern.  A single wrong or missing nonzero, by the
// same token, shows up as a hard bitwise mismatch.
//
// Like the other `concurrency`-labeled suites, the format pool is
// simulated-GPU formats plus the sequential reference so the suite is
// ThreadSanitizer-clean by construction.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "bcsf/bcsf.hpp"
#include "serve_test_util.hpp"

namespace bcsf {
namespace {

using serve_test::run_threads;

using serve_test::append_nonzeros;
using serve_test::bitwise_equal;
using serve_test::exact_batch;
using serve_test::exact_factors;
using serve_test::exact_tensor;

/// Computes (and memoizes) the reference MTTKRP of "base + every update
/// batch with version <= v" -- the ground truth for a response naming
/// snapshot version v.  Thread-safe recording; lookups happen after the
/// parallel phase.  Exact arithmetic makes the result independent of
/// batch order and of whether the service compacted in between.
class SnapshotOracle {
 public:
  SnapshotOracle(SparseTensor base, FactorsPtr factors)
      : base_(std::move(base)), factors_(std::move(factors)) {}

  void record(std::uint64_t version, SparseTensor batch) {
    std::lock_guard<std::mutex> lock(m_);
    batches_.emplace_back(version, std::move(batch));
  }

  const DenseMatrix& expected(std::uint64_t version, index_t mode) {
    std::lock_guard<std::mutex> lock(m_);
    const auto key = std::make_pair(version, mode);
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
    SparseTensor merged(base_.dims());
    append_nonzeros(merged, base_);
    for (const auto& [v, batch] : batches_) {
      if (v <= version) append_nonzeros(merged, batch);
    }
    return cache_.emplace(key, mttkrp_reference(merged, mode, *factors_))
        .first->second;
  }

 private:
  std::mutex m_;
  SparseTensor base_;
  FactorsPtr factors_;
  std::vector<std::pair<std::uint64_t, SparseTensor>> batches_;
  std::map<std::pair<std::uint64_t, index_t>, DenseMatrix> cache_;
};

// ---------------------------------------------------------------------------
// Deterministic protocol walkthrough: update -> query -> compact ->
// re-upgrade, every response bitwise-checked.
// ---------------------------------------------------------------------------

TEST(DynamicUpdates, UpdateCompactReupgradeLifecycle) {
  const std::vector<index_t> dims = {24, 30, 36};
  SparseTensor base = exact_tensor(dims, 2000, 11);
  FactorsPtr factors = exact_factors(dims, 8, 22);
  SnapshotOracle oracle(SparseTensor(base), factors);
  std::mt19937 rng(33);

  ServeOptions opts;
  opts.workers = 4;
  opts.initial_format = "coo";
  opts.upgrade_format = "bcsf";
  opts.upgrade_threshold = 6;
  opts.compact_threshold = 0.2;
  opts.compact_min_nnz = 64;
  MttkrpService service(opts);
  service.register_tensor("t", share_tensor(std::move(base)));

  auto run_wave = [&](int n, index_t mode) {
    std::vector<MttkrpRequest> batch(static_cast<std::size_t>(n),
                                     MttkrpRequest{"t", mode, factors});
    for (auto& future : service.submit_batch(std::move(batch))) {
      MttkrpResponse r = future.get();
      EXPECT_TRUE(bitwise_equal(oracle.expected(r.snapshot_version, mode),
                                r.output))
          << "sequence " << r.sequence << " version " << r.snapshot_version
          << " served by " << r.served_format;
    }
  };

  // Phase 1: static serving, upgrade lands as in PR 2.
  run_wave(12, 0);
  service.wait_idle();
  EXPECT_TRUE(service.upgraded("t", 0));
  EXPECT_EQ(service.current_format("t", 0), "bcsf");
  EXPECT_EQ(service.snapshot_version("t"), 0u);

  // Phase 2: updates stream in; the structured base plan keeps serving,
  // responses fold the delta in and name the version they saw.
  for (int i = 0; i < 3; ++i) {
    SparseTensor batch = exact_batch(dims, 100, rng);
    oracle.record(service.snapshot_version("t") + 1, SparseTensor(batch));
    service.apply_updates("t", std::move(batch));
  }
  EXPECT_EQ(service.snapshot_version("t"), 3u);
  EXPECT_EQ(service.compaction_count("t"), 0u) << "still below threshold";
  EXPECT_GT(service.delta_fraction("t"), 0.1);
  run_wave(8, 0);
  service.wait_idle();
  {
    // Post-upgrade, pre-compaction: responses must ride the structured
    // plan AND carry the delta.
    auto future = service.submit({"t", 0, factors});
    MttkrpResponse r = future.get();
    EXPECT_EQ(r.served_format, "bcsf");
    EXPECT_EQ(r.snapshot_version, 3u);
    EXPECT_EQ(r.delta_nnz, 300u);
    EXPECT_TRUE(bitwise_equal(oracle.expected(3, 0), r.output));
  }

  // Phase 3: two more batches push the delta fraction over 0.2 and the
  // apply itself triggers the background compaction.
  for (int i = 0; i < 2; ++i) {
    SparseTensor batch = exact_batch(dims, 150, rng);
    oracle.record(service.snapshot_version("t") + 1, SparseTensor(batch));
    service.apply_updates("t", std::move(batch));
  }
  service.wait_idle();
  EXPECT_EQ(service.compaction_count("t"), 1u);
  EXPECT_EQ(service.delta_fraction("t"), 0.0) << "delta folded into base";
  EXPECT_EQ(service.snapshot_version("t"), 6u) << "5 applies + 1 base swap";
  const TensorSnapshot merged = service.snapshot("t");
  EXPECT_EQ(merged.deltas.size(), 0u);
  EXPECT_EQ(merged.base_version, 6u);

  // Re-decision on every compaction (DESIGN.md §12): the merged base's
  // sketch is installed with the commit, the §V policy re-ran on it
  // inside the compaction task, and -- the carried call counts already
  // clear the threshold -- the structured build re-landed before idle,
  // with no request in between.
  EXPECT_TRUE(service.upgraded("t", 0));
  EXPECT_EQ(service.current_format("t", 0), "bcsf");
  run_wave(8, 0);
  service.wait_idle();
  EXPECT_TRUE(service.upgraded("t", 0));
  EXPECT_EQ(service.current_format("t", 0), "bcsf");
  {
    auto future = service.submit({"t", 0, factors});
    MttkrpResponse r = future.get();
    EXPECT_EQ(r.delta_nnz, 0u) << "post-compaction serving is pure base";
    EXPECT_TRUE(bitwise_equal(oracle.expected(6, 0), r.output));
  }
}

// ---------------------------------------------------------------------------
// Randomized interleavings: query threads race updater threads while
// upgrades and compactions fire underneath.  Every response must be
// bitwise-correct for the version it names, and versions must be
// monotone along each serial submit->get chain.
// ---------------------------------------------------------------------------

TEST(DynamicUpdates, RacingQueriesUpdatesAndCompactionsStayExact) {
  const std::vector<std::string> upgrade_pool = {"bcsf", "csl", "auto",
                                                 "gpu-csf"};
  for (int trial = 0; trial < 3; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const index_t order = (trial % 2 == 0) ? 3 : 4;
    std::vector<index_t> dims;
    for (index_t m = 0; m < order; ++m) {
      dims.push_back(16 + 6 * ((trial + m) % 3));
    }
    SparseTensor base = exact_tensor(dims, 1500, 100 + trial);
    FactorsPtr factors = exact_factors(dims, (trial % 2) ? 4 : 8, 7 * trial);
    SnapshotOracle oracle(SparseTensor(base), factors);

    ServeOptions opts;
    opts.workers = 2 + trial;
    opts.initial_format = (trial % 2) ? "reference" : "coo";
    opts.upgrade_format = upgrade_pool[trial % upgrade_pool.size()];
    opts.upgrade_threshold = 4 + trial;
    opts.compact_threshold = 0.12;
    opts.compact_min_nnz = 32;
    MttkrpService service(opts);
    service.register_tensor("x", share_tensor(std::move(base)));

    constexpr int kQueryThreads = 4;
    constexpr int kUpdateThreads = 2;
    constexpr int kQueriesPerThread = 18;
    constexpr int kBatchesPerThread = 8;

    struct Observed {
      index_t mode;
      std::uint64_t version;
      DenseMatrix output;
    };
    std::vector<std::vector<Observed>> observed(kQueryThreads);
    std::atomic<bool> failed{false};

    run_threads(kQueryThreads + kUpdateThreads, [&](int i) {
      std::mt19937 rng(9000 + 31 * trial + i);
      if (i < kQueryThreads) {
        for (int q = 0; q < kQueriesPerThread; ++q) {
          const index_t mode = static_cast<index_t>(rng() % order);
          MttkrpResponse r = service.submit({"x", mode, factors}).get();
          observed[i].push_back(
              {mode, r.snapshot_version, std::move(r.output)});
        }
      } else {
        for (int b = 0; b < kBatchesPerThread; ++b) {
          SparseTensor batch =
              exact_batch(dims, 20 + rng() % 60, rng);
          SparseTensor copy(batch);
          const std::uint64_t version =
              service.apply_updates("x", std::move(batch));
          // Versions are assigned under the tensor's own lock, so the
          // recorded (version, batch) pairs reconstruct every snapshot.
          oracle.record(version, std::move(copy));
          if (version == 0) failed.store(true);
        }
      }
    });
    service.wait_idle();
    EXPECT_FALSE(failed.load());

    std::uint64_t max_version_seen = 0;
    for (int i = 0; i < kQueryThreads; ++i) {
      std::uint64_t previous = 0;
      for (std::size_t q = 0; q < observed[i].size(); ++q) {
        const Observed& o = observed[i][q];
        EXPECT_GE(o.version, previous)
            << "versions must be monotone along a serial submit->get chain";
        previous = o.version;
        max_version_seen = std::max(max_version_seen, o.version);
        EXPECT_TRUE(bitwise_equal(oracle.expected(o.version, o.mode), o.output))
            << "thread " << i << " query " << q << " mode " << o.mode
            << " version " << o.version;
      }
    }
    // The interleaving genuinely exercised the dynamic path: updates were
    // observed mid-stream and the final version covers all batches.
    EXPECT_GT(max_version_seen, 0u);
    EXPECT_GE(service.snapshot_version("x"),
              static_cast<std::uint64_t>(kUpdateThreads * kBatchesPerThread));
  }
}

// Compaction alone (update-heavy, query-light): applies must trigger the
// merge without any query traffic, and a query afterwards sees the
// compacted base with an empty delta.
TEST(DynamicUpdates, UpdateOnlyWorkloadCompactsWithoutQueries) {
  const std::vector<index_t> dims = {20, 22, 24};
  SparseTensor base = exact_tensor(dims, 600, 5);
  FactorsPtr factors = exact_factors(dims, 8, 6);
  SnapshotOracle oracle(SparseTensor(base), factors);
  std::mt19937 rng(8);

  ServeOptions opts;
  opts.workers = 2;
  opts.enable_upgrade = false;
  opts.compact_threshold = 0.3;
  opts.compact_min_nnz = 100;
  MttkrpService service(opts);
  service.register_tensor("u", share_tensor(std::move(base)));

  for (int i = 0; i < 6; ++i) {
    SparseTensor batch = exact_batch(dims, 80, rng);
    oracle.record(service.snapshot_version("u") + 1, SparseTensor(batch));
    service.apply_updates("u", std::move(batch));
  }
  service.wait_idle();
  EXPECT_GE(service.compaction_count("u"), 1u);

  MttkrpResponse r = service.submit({"u", 1, factors}).get();
  EXPECT_TRUE(bitwise_equal(oracle.expected(r.snapshot_version, 1), r.output));
  EXPECT_EQ(r.served_format, "coo");
}

}  // namespace
}  // namespace bcsf
