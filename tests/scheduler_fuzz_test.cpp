// Randomized stress tests of the scheduler: for many random launch
// shapes and device geometries, the invariants that make the simulator a
// valid costing substrate must hold -- determinism, work conservation,
// metric bounds, and monotonicity in hardware resources.
#include <gtest/gtest.h>

#include "gpusim/device.hpp"
#include "gpusim/scheduler.hpp"
#include "util/rng.hpp"

namespace bcsf {
namespace {

KernelLaunch random_launch(Rng& rng) {
  KernelLaunch launch;
  launch.name = "fuzz";
  const unsigned wpb = 1 + static_cast<unsigned>(rng.uniform(0, 7));
  launch.warps_per_block = wpb;
  const auto blocks = static_cast<offset_t>(rng.uniform(1, 120));
  for (offset_t b = 0; b < blocks; ++b) {
    BlockWork bw;
    const unsigned warps = 1 + static_cast<unsigned>(rng.uniform(0, wpb - 1));
    for (unsigned w = 0; w < warps; ++w) {
      // Heavy-tailed warp costs to exercise the imbalance paths.
      bw.warp_cycles.push_back(rng.pareto(0.7, 1.0, 20000.0));
    }
    launch.blocks.push_back(std::move(bw));
  }
  launch.total_flops = 1e6;
  return launch;
}

DeviceModel random_device(Rng& rng) {
  DeviceModel dev = DeviceModel::tiny(
      1 + static_cast<unsigned>(rng.uniform(0, 15)),
      8 * (1 + static_cast<unsigned>(rng.uniform(0, 7))));
  dev.sm_issue_width = 1.0 + rng.uniform_real(0.0, 7.0);
  dev.max_blocks_per_sm = 1 + static_cast<unsigned>(rng.uniform(0, 15));
  dev.block_dispatch_per_cycle = rng.uniform_real(0.01, 2.0);
  dev.cycles_block_overhead = rng.uniform_real(0.0, 200.0);
  return dev;
}

TEST(SchedulerFuzz, InvariantsOverRandomLaunches) {
  Rng rng(20240612);
  for (int trial = 0; trial < 60; ++trial) {
    const KernelLaunch launch = random_launch(rng);
    const DeviceModel dev = random_device(rng);
    SCOPED_TRACE("trial " + std::to_string(trial));

    const SimReport r = simulate_launch(dev, launch);

    // Bounds.
    EXPECT_GE(r.cycles, 0.0);
    EXPECT_GE(r.achieved_occupancy_pct, 0.0);
    EXPECT_LE(r.achieved_occupancy_pct, 100.0);
    EXPECT_GE(r.sm_efficiency_pct, 0.0);
    EXPECT_LE(r.sm_efficiency_pct, 100.0);

    // The makespan is at least the single longest warp (with overhead)
    // and at most serial execution of everything on one warp slot.
    double longest = 0.0;
    double total = 0.0;
    for (const auto& b : launch.blocks) {
      for (double c : b.warp_cycles) {
        longest = std::max(longest, c + dev.cycles_block_overhead);
        total += c + dev.cycles_block_overhead;
      }
    }
    EXPECT_GE(r.cycles * (1.0 + 1e-9), longest);
    EXPECT_LE(r.cycles, total + launch.blocks.size() /
                                    dev.block_dispatch_per_cycle + 1.0);

    // Work conservation: the machine cannot have done more warp-cycles
    // than capacity allows.
    const double capacity =
        r.cycles * dev.num_sms *
        std::min<double>(dev.sm_issue_width, dev.max_warps_per_sm);
    EXPECT_GE(capacity * (1.0 + 1e-6) + 1.0, total);

    // Determinism.
    const SimReport again = simulate_launch(dev, launch);
    EXPECT_DOUBLE_EQ(r.cycles, again.cycles);
    EXPECT_DOUBLE_EQ(r.sm_efficiency_pct, again.sm_efficiency_pct);
  }
}

// Greedy list scheduling is famously *not* monotone in resources (Graham's
// anomalies: adding capacity can re-order placements and lengthen the
// makespan of an individual schedule, bounded by a factor of 2).  The
// per-trial checks therefore allow the Graham factor, and monotonicity is
// asserted in aggregate across trials.

TEST(SchedulerFuzz, MoreIssueWidthFasterInAggregate) {
  Rng rng(77);
  double narrow_total = 0.0;
  double wide_total = 0.0;
  for (int trial = 0; trial < 20; ++trial) {
    const KernelLaunch launch = random_launch(rng);
    DeviceModel dev = random_device(rng);
    dev.sm_issue_width = 1.0;
    const double narrow = simulate_launch(dev, launch).cycles;
    dev.sm_issue_width = 8.0;
    const double wide = simulate_launch(dev, launch).cycles;
    EXPECT_LE(wide, narrow * 2.0 + 1.0) << "trial " << trial;  // Graham bound
    narrow_total += narrow;
    wide_total += wide;
  }
  EXPECT_LT(wide_total, narrow_total);
}

TEST(SchedulerFuzz, FasterDispatchFasterInAggregate) {
  Rng rng(78);
  double slow_total = 0.0;
  double fast_total = 0.0;
  for (int trial = 0; trial < 20; ++trial) {
    const KernelLaunch launch = random_launch(rng);
    DeviceModel dev = random_device(rng);
    dev.block_dispatch_per_cycle = 0.02;
    const double slow = simulate_launch(dev, launch).cycles;
    dev.block_dispatch_per_cycle = 10.0;
    const double fast = simulate_launch(dev, launch).cycles;
    EXPECT_LE(fast, slow * 2.0 + 1.0) << "trial " << trial;  // Graham bound
    slow_total += slow;
    fast_total += fast;
  }
  EXPECT_LT(fast_total, slow_total);
}

}  // namespace
}  // namespace bcsf
