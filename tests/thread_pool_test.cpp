// Direct unit tests for util/thread_pool.hpp: submit/try_submit under a
// shutdown race, task-exception propagation, wait_idle semantics, and
// the caller-participating run_tasks fan-out the sharded plan layer
// (DESIGN.md §8) builds on.  The pool serves two critical clients now --
// request serving AND parallel shard builds -- so its contract gets its
// own suite instead of being exercised only through the service.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace bcsf {
namespace {

TEST(ThreadPool, RunsEveryAcceptedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&ran] { ran.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, ZeroDefaultsToHardwareAndAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  auto result = pool.async([] { return 41 + 1; });
  EXPECT_EQ(result.get(), 42);
}

TEST(ThreadPool, AsyncPropagatesTaskException) {
  ThreadPool pool(2);
  auto result = pool.async([]() -> int {
    throw std::runtime_error("task boom");
  });
  EXPECT_THROW(result.get(), std::runtime_error);
  // The worker survives the throwing task and keeps serving.
  EXPECT_EQ(pool.async([] { return 7; }).get(), 7);
}

TEST(ThreadPool, TasksMaySubmitTasksAndWaitIdleCoversThem) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.submit([&pool, &ran] {
    ran.fetch_add(1);
    pool.submit([&pool, &ran] {
      ran.fetch_add(1);
      pool.submit([&ran] { ran.fetch_add(1); });
    });
  });
  pool.wait_idle();  // must count queued AND mid-task work
  EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPool, RejectsEmptyTask) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(std::function<void()>{}), Error);
  EXPECT_THROW(pool.try_submit(std::function<void()>{}), Error);
}

// The shutdown race of the serving layer's background upgrades: a task
// still RUNNING while the destructor drains must see try_submit refuse
// (returning false) and submit throw -- never a crash, never a silently
// dropped-but-accepted task.
TEST(ThreadPool, SubmitDuringShutdownThrowsAndTrySubmitRefuses) {
  std::promise<void> entered;
  std::atomic<int> accepted{0};
  std::atomic<int> ran{0};
  std::atomic<bool> submit_threw{false};

  auto pool = std::make_unique<ThreadPool>(1);
  pool->submit([&, raw = pool.get()] {
    entered.set_value();
    // Keep offering background work until shutdown begins -- the
    // service's upgrade-task pattern.  Every ACCEPTED task must still
    // run: the destructor drains the queue before joining.
    while (raw->try_submit([&ran] { ran.fetch_add(1); })) {
      accepted.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // try_submit refused, so shutdown has begun: submit must throw.
    try {
      raw->submit([&ran] { ran.fetch_add(1); });
    } catch (const Error&) {
      submit_threw = true;
    }
  });

  entered.get_future().wait();
  pool.reset();  // sets the stop flag, drains accepted tasks, joins
  EXPECT_TRUE(submit_threw.load()) << "submit must throw at shutdown";
  EXPECT_EQ(ran.load(), accepted.load())
      << "accepted tasks may not be dropped by shutdown";
}

// The explicit drain hook the serving layer's shutdown path uses
// (DESIGN.md §9): shutdown() before destruction, observable via
// stopping(), draining every accepted task exactly like the destructor.
TEST(ThreadPool, ShutdownIsIdempotentAndObservable) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.stopping());
  std::atomic<int> ran{0};
  for (int i = 0; i < 32; ++i) {
    pool.submit([&ran] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ran.fetch_add(1);
    });
  }
  pool.shutdown();
  EXPECT_TRUE(pool.stopping());
  EXPECT_EQ(ran.load(), 32) << "shutdown() must drain accepted tasks";
  EXPECT_FALSE(pool.try_submit([] {}));
  EXPECT_THROW(pool.submit([] {}), Error);
  pool.shutdown();  // idempotent; the destructor will be the third call
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPool, ConcurrentShutdownCallsAreSafe) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 32; ++i) {
    pool.submit([&ran] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ran.fetch_add(1);
    });
  }
  std::vector<std::thread> stoppers;
  for (int i = 0; i < 4; ++i) {
    stoppers.emplace_back([&pool] { pool.shutdown(); });
  }
  for (auto& t : stoppers) t.join();
  EXPECT_TRUE(pool.stopping());
  EXPECT_EQ(ran.load(), 32) << "racing shutdowns may not drop tasks";
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 16; ++i) {
      pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ran.fetch_add(1);
      });
    }
  }  // destructor: accepted tasks may not be dropped
  EXPECT_EQ(ran.load(), 16);
}

// ---------------------------------------------------------------------------
// Affinity hints, steal fallback, and the observability counters (§8).
// ---------------------------------------------------------------------------

TEST(ThreadPool, AffinityRunsOnHintedWorkerWhenFree) {
  // One hinted task at a time against an otherwise idle pool: the hinted
  // worker is the ONLY one allowed to drain its own local queue while it
  // is not busy, so the placement is deterministic -- and no steal fires.
  ThreadPool pool(4);
  EXPECT_EQ(pool.current_worker(), -1) << "callers outside the pool";
  for (std::size_t i = 0; i < 8; ++i) {
    int ran_on = -2;
    pool.submit([&pool, &ran_on] { ran_on = pool.current_worker(); },
                /*affinity=*/i);
    pool.wait_idle();
    EXPECT_EQ(ran_on, static_cast<int>(i % pool.size()))
        << "affinity " << i << " must land on worker " << i % pool.size();
  }
  EXPECT_EQ(pool.steal_count(), 0u)
      << "idle hinted workers leave nothing to steal";
}

TEST(ThreadPool, BusyHintedWorkerExposesTasksToStealing) {
  // Pin worker 0 inside a long task, then hint more work at it: the
  // tasks must NOT serialize behind the stuck worker -- its peer steals
  // them, and every such fallback shows up in steal_count().
  constexpr int kTasks = 6;
  ThreadPool pool(2);
  std::promise<void> entered;
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  pool.submit([&entered, gate] {
    entered.set_value();
    gate.wait();
  }, /*affinity=*/0);
  entered.get_future().wait();  // worker 0 is now mid-task (stealable)

  std::atomic<int> ran{0};
  std::vector<int> ran_on(kTasks, -2);
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&pool, &ran, &ran_on, i] {
      ran_on[static_cast<std::size_t>(i)] = pool.current_worker();
      ran.fetch_add(1);
    }, /*affinity=*/0);
  }
  // All hinted tasks complete WHILE worker 0 is still blocked.
  while (ran.load() < kTasks) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  release.set_value();
  pool.wait_idle();

  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(ran_on[static_cast<std::size_t>(i)], 1)
        << "task " << i << " had to be stolen by worker 1";
  }
  EXPECT_GE(pool.steal_count(), static_cast<std::uint64_t>(kTasks));
}

TEST(ThreadPool, QueueDepthTracksPendingTasks) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.queue_depth(), 0u);
  std::promise<void> entered;
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  pool.submit([&entered, gate] {
    entered.set_value();
    gate.wait();
  });
  entered.get_future().wait();

  // The gate task is RUNNING (not queued); these three are pending.
  for (int i = 0; i < 3; ++i) pool.submit([] {});
  EXPECT_EQ(pool.queue_depth(), 3u);
  release.set_value();
  pool.wait_idle();
  EXPECT_EQ(pool.queue_depth(), 0u);
}

// ---------------------------------------------------------------------------
// run_tasks: the caller-participating fan-out primitive.
// ---------------------------------------------------------------------------

TEST(RunTasks, RunsAllTasksWithAndWithoutPool) {
  for (const bool with_pool : {false, true}) {
    SCOPED_TRACE(with_pool);
    std::optional<ThreadPool> pool;
    if (with_pool) pool.emplace(3);
    std::vector<int> hits(17, 0);
    std::vector<std::function<void()>> tasks;
    for (std::size_t i = 0; i < hits.size(); ++i) {
      tasks.push_back([&hits, i] { hits[i] += 1; });
    }
    run_tasks(with_pool ? &*pool : nullptr, std::move(tasks));
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i], 1) << "task " << i;
    }
  }
}

TEST(RunTasks, NestsInsideSingleWorkerPoolWithoutDeadlock) {
  // A pool task fanning out on its own pool: with one worker no helper
  // can ever run, so the calling task must drain everything itself.
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  auto done = pool.async([&pool, &ran] {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 8; ++i) {
      tasks.push_back([&ran] { ran.fetch_add(1); });
    }
    run_tasks(&pool, std::move(tasks));
    return ran.load();
  });
  EXPECT_EQ(done.get(), 8);
}

TEST(RunTasks, PropagatesFirstExceptionAfterAllTasksRan) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 6; ++i) {
    tasks.push_back([&ran, i] {
      ran.fetch_add(1);
      if (i == 2) throw std::runtime_error("shard boom");
    });
  }
  EXPECT_THROW(run_tasks(&pool, std::move(tasks)), std::runtime_error);
  // Siblings are NOT cancelled: partial state must stay safe to read.
  EXPECT_EQ(ran.load(), 6);
}

TEST(RunTasks, EmptyAndSingleTaskFastPaths) {
  run_tasks(nullptr, {});
  int hits = 0;
  std::vector<std::function<void()>> one;
  one.push_back([&hits] { ++hits; });
  run_tasks(nullptr, std::move(one));
  EXPECT_EQ(hits, 1);
}

}  // namespace
}  // namespace bcsf
