// End-to-end smoke test: generate a small power-law tensor, build every
// format, run every kernel, and check all outputs agree with the
// reference.  Details are covered by the per-module suites; this test
// exists so a broken pipeline fails fast and obviously.
#include <gtest/gtest.h>

#include "bcsf/bcsf.hpp"

namespace bcsf {
namespace {

TEST(Smoke, AllKernelsAgreeOnPowerLawTensor) {
  PowerLawConfig cfg;
  cfg.dims = {50, 60, 70};
  cfg.target_nnz = 3000;
  cfg.seed = 1;
  const SparseTensor x = generate_power_law(cfg);
  ASSERT_GT(x.nnz(), 1000u);
  x.validate();

  const rank_t rank = 8;
  const auto factors = make_random_factors(x.dims(), rank, 99);
  const DeviceModel device = DeviceModel::p100();

  PlanOptions opts;
  opts.device = device;
  for (index_t mode = 0; mode < x.order(); ++mode) {
    const DenseMatrix ref = mttkrp_reference(x, mode, factors);
    for (const std::string& name :
         FormatRegistry::instance().names(PlanKind::kGpu)) {
      const PlanPtr plan = FormatRegistry::instance().create(name, x, mode,
                                                             opts);
      const PlanRunResult r = plan->run(factors);
      EXPECT_LT(ref.max_abs_diff(r.output), 1e-2)
          << plan->display_name() << " mode " << mode;
      EXPECT_GT(r.report.gflops, 0.0) << plan->display_name();
    }
  }
}

}  // namespace
}  // namespace bcsf
