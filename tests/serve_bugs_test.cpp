// Regression tests for the PR-7 serving-path bug sweep (DESIGN.md §8):
//
//   * merge-path scratch leases must return to the arena when a shard's
//     execute throws (they used to leak: the explicit release lived only
//     on the success path);
//   * submit/dispatch racing a pool shutdown must resolve EVERY future
//     with a value or a bcsf::Error -- never broken_promise (dispatch
//     used to call the throwing submit mid-loop, stranding the promises
//     of partially dispatched batches);
//   * fanout_ms must measure the fan-out (first shard task start to last
//     shard finish), not pool queue wait ahead of the batch (it used to
//     be dispatch-relative, so a busy pool inflated it).
//
// The first and third tests need misbehaving plans, so the file
// registers two test-only formats: one that throws in execute() on
// shards containing mode-0 slice 0, one that sleeps in execute().
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/format_registry.hpp"
#include "core/tensor_op_plan.hpp"
#include "serve/tensor_op_service.hpp"
#include "serve_test_util.hpp"
#include "tensor/sparse_tensor.hpp"
#include "util/error.hpp"

namespace bcsf {
namespace {

/// Delegates everything to an inner cpu-coo plan, with a hook run before
/// each execution -- the hook is where a test format misbehaves.
class HookedPlan : public TensorOpPlan {
 public:
  using Hook = void (*)(bool flagged);

  HookedPlan(std::string format, PlanPtr inner, Hook hook, bool flagged)
      : TensorOpPlan(format, format, inner->mode()),
        inner_(std::move(inner)),
        hook_(hook),
        flagged_(flagged) {}

  std::size_t storage_bytes() const override {
    return inner_->storage_bytes();
  }
  bool is_gpu() const override { return inner_->is_gpu(); }
  PlanRunResult run(const std::vector<DenseMatrix>& factors) const override {
    hook_(flagged_);
    return inner_->run(factors);
  }
  OpResult execute(const OpRequest& request) const override {
    hook_(flagged_);
    return inner_->execute(request);
  }

 private:
  PlanPtr inner_;
  Hook hook_;
  bool flagged_;  ///< shard-specific condition computed at build time
};

bool touches_slice_zero(const SparseTensor& t) {
  for (offset_t z = 0; z < t.nnz(); ++z) {
    if (t.coord(0, z) == 0) return true;
  }
  return false;
}

FormatRegistry::Factory hooked_factory(const char* name, HookedPlan::Hook hook) {
  return [name, hook](const SparseTensor& t, index_t mode,
                      const PlanOptions& opts) -> PlanPtr {
    return std::make_unique<HookedPlan>(
        name, FormatRegistry::instance().create("cpu-coo", t, mode, opts),
        hook, touches_slice_zero(t));
  };
}

/// Throws on shards whose sub-tensor contains mode-0 slice 0 -- in a
/// K-way partition exactly shard 0, so the sibling shards succeed and
/// their leases are the ones at stake.
FormatRegistrar flaky_registrar{{
    "flaky-serve-test", "FlakyServeTest",
    "test-only: execute() throws on shards containing mode-0 slice 0",
    PlanKind::kCpu, true,
    hooked_factory("flaky-serve-test", [](bool flagged) {
      if (flagged) throw Error("flaky-serve-test: poisoned shard");
    })}};

constexpr int kSleepMs = 120;

/// Sleeps in execute() -- a controllable stand-in for a slow shard kernel.
FormatRegistrar sleepy_registrar{{
    "sleepy-serve-test", "SleepyServeTest",
    "test-only: execute() sleeps to occupy the worker pool",
    PlanKind::kCpu, true,
    hooked_factory("sleepy-serve-test", [](bool) {
      std::this_thread::sleep_for(std::chrono::milliseconds(kSleepMs));
    })}};

// ---------------------------------------------------------------------------
// Bug 1: merge-path leases must survive a failing sibling shard.
// ---------------------------------------------------------------------------

TEST(ServeBugs, MergePathLeasesReturnWhenAShardThrows) {
  ServeOptions opts;
  opts.workers = 2;
  opts.shards = 4;
  opts.upgrade_format = "flaky-serve-test";
  opts.upgrade_threshold = 1;
  opts.enable_compaction = false;
  TensorOpService service(opts);

  const std::vector<index_t> dims{64, 32, 16};
  SparseTensor x = serve_test::exact_tensor(dims, 4000, 11);
  const index_t origin[] = {0, 0, 0};
  x.push_back(origin, 1.0F);  // guarantee shard 0 is poisoned
  service.register_tensor("t", share_tensor(std::move(x)));
  const auto factors = serve_test::exact_factors(dims, 8, 12);

  // Prime mode 1 (the merge path: mode != partition mode): the first
  // query serves COO and crosses the threshold, launching the flaky
  // upgrade on every shard.
  ServeResponse primed = service.submit({"t", 1, factors}).get();
  EXPECT_EQ(primed.reduce_path, "merge");
  service.wait_idle();
  ASSERT_TRUE(service.upgraded("t", 1));
  const std::size_t pooled = service.scratch_pooled();
  EXPECT_GE(pooled, 4u) << "the priming query's partials must be pooled";

  // Shard 0 now throws in execute(); shards 1-3 still take merge-path
  // leases.  Every failing request must hand those leases back -- the
  // leak left the arena empty and steady-state traffic reallocating.
  for (int i = 0; i < 5; ++i) {
    auto future = service.submit({"t", 1, factors});
    EXPECT_THROW(future.get(), Error);
    service.wait_idle();
    EXPECT_EQ(service.scratch_pooled(), pooled)
        << "iteration " << i << " leaked merge-path leases";
  }

  // The failure is per (shard, mode): a mode still serving COO answers.
  const ServeResponse ok = service.submit({"t", 2, factors}).get();
  EXPECT_EQ(ok.op, OpKind::kMttkrp);
  EXPECT_FALSE(ok.upgraded);
}

// ---------------------------------------------------------------------------
// Bug 2: dispatch racing shutdown must never strand a future.
// ---------------------------------------------------------------------------

TEST(ServeBugs, SubmitRacingShutdownResolvesEveryFuture) {
  // Alternate shard counts so both the monolithic packaged-task path and
  // the sharded dispatch path race the drain.
  for (const unsigned shards : {1u, 2u, 1u, 2u}) {
    SCOPED_TRACE(shards);
    ServeOptions opts;
    opts.workers = 2;
    opts.shards = shards;
    opts.enable_upgrade = false;
    opts.enable_compaction = false;
    TensorOpService service(opts);

    const std::vector<index_t> dims{32, 24, 16};
    service.register_tensor(
        "t", share_tensor(serve_test::exact_tensor(dims, 1500, 21)));
    const auto factors = serve_test::exact_factors(dims, 4, 22);

    constexpr int kThreads = 3;
    constexpr int kBatches = 12;
    std::vector<std::vector<std::future<ServeResponse>>> futures(kThreads);
    serve_test::run_threads(kThreads, [&](int ti) {
      for (int b = 0; b < kBatches; ++b) {
        std::vector<ServeRequest> batch;
        for (int r = 0; r < 4; ++r) {
          batch.emplace_back("t", static_cast<index_t>(r % dims.size()),
                             factors);
        }
        auto got = service.submit_batch(std::move(batch));
        for (auto& f : got) futures[ti].push_back(std::move(f));
        if (ti == 0 && b == kBatches / 2) {
          service.shutdown();  // mid-stream drain, racing the submitters
        }
      }
    });

    int resolved = 0;
    for (auto& per_thread : futures) {
      for (auto& f : per_thread) {
        try {
          const ServeResponse response = f.get();
          EXPECT_GT(response.sequence, 0u);
          ++resolved;
        } catch (const Error&) {
          ++resolved;  // a real serve error is an acceptable resolution
        } catch (const std::future_error& e) {
          ADD_FAILURE() << "stranded future (broken promise): " << e.what();
        }
      }
    }
    EXPECT_EQ(resolved, kThreads * kBatches * 4);
  }
}

// ---------------------------------------------------------------------------
// Bug 3: fanout_ms excludes pool queue wait ahead of the batch.
// ---------------------------------------------------------------------------

TEST(ServeBugs, FanoutExcludesQueueWaitAheadOfTheBatch) {
  ServeOptions opts;
  opts.workers = 1;  // strict FIFO: the gate group runs before "fast"
  opts.shards = 2;
  opts.upgrade_format = "sleepy-serve-test";
  opts.upgrade_threshold = 1;
  opts.enable_compaction = false;
  TensorOpService service(opts);

  const std::vector<index_t> dims{32, 24, 16};
  service.register_tensor(
      "gate", share_tensor(serve_test::exact_tensor(dims, 1200, 31)));
  service.register_tensor(
      "fast", share_tensor(serve_test::exact_tensor(dims, 1200, 32)));
  const auto factors = serve_test::exact_factors(dims, 4, 33);

  // Land the sleepy upgrade on "gate" only; "fast" keeps serving COO.
  service.submit({"gate", 1, factors}).get();
  service.wait_idle();
  ASSERT_TRUE(service.upgraded("gate", 1));

  // One batch, gate first: its two shard sweeps sleep kSleepMs each on
  // the single worker before the fast request's sweeps even START.
  std::vector<ServeRequest> batch;
  batch.emplace_back("gate", 1, factors);
  batch.emplace_back("fast", 1, factors);
  const auto t0 = std::chrono::steady_clock::now();
  auto futures = service.submit_batch(std::move(batch));
  const ServeResponse fast = futures[1].get();
  const double fast_latency_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  const ServeResponse gate = futures[0].get();

  // The fast request WAITED behind ~2 * kSleepMs of gate work...
  EXPECT_GE(fast_latency_ms, 2 * kSleepMs * 0.8);
  // ...but its fan-out is just its own two cheap COO sweeps.  The old
  // dispatch-relative stamp billed the whole queue wait here.
  EXPECT_LT(fast.fanout_ms, kSleepMs * 0.8)
      << "fanout_ms is billing pool queue wait again";
  // The gate request's fan-out legitimately spans its two sleeps.
  EXPECT_GE(gate.fanout_ms, 2 * kSleepMs * 0.8);
}

}  // namespace
}  // namespace bcsf
